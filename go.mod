module nda

go 1.22
