#!/bin/sh
# fuzz-smoke: run the differential soundness fuzzer over a pinned seed
# range under a coarse wall-clock budget. Run by `make fuzz-smoke` and the
# CI fuzz-smoke job.
#
# The seed range is pinned — ndalint expands (seed, n) into the seeds
# seed..seed+n-1 and the program generator is deterministic per seed — so
# a CI failure replays locally with the same command, or one seed at a
# time with `go run ./cmd/ndalint -fuzz 1 -seed <k>`. The budget only
# guards against a hang or a catastrophic slowdown; the full-depth sweep
# is the diffuzz package test's job.
set -eu

cd "$(dirname "$0")/.."

SEED=${FUZZ_SMOKE_SEED:-1}
N=${FUZZ_SMOKE_N:-500}
BUDGET=${FUZZ_SMOKE_BUDGET:-300}

start=$(date +%s)
go run ./cmd/ndalint -fuzz "$N" -seed "$SEED"
elapsed=$(( $(date +%s) - start ))
echo "fuzz-smoke: ${elapsed}s (budget ${BUDGET}s)"
[ "$elapsed" -le "$BUDGET" ] || {
	echo "fuzz-smoke: exceeded ${BUDGET}s budget" >&2
	exit 1
}
