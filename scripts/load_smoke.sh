#!/bin/sh
# load-smoke: black-box check of the multi-tenant serving path, run by
# `make load-smoke` and the CI load-smoke job.
#
# Asserts, over plain HTTP against real ndaserve processes:
#   1. byte identity across schedulers: the same sweep answered by an
#      untenanted (FIFO) server and a tenanted (fair-share) server is
#      byte-for-byte identical — scheduling decides when, never what,
#   2. authentication: the tenanted server 401s keyless submissions,
#   3. warm-path SLO: a greedy + light tenant mix against the warm cache
#      holds p99 under the SLO and the light tenant completes work
#      (ndaload exit 1 on violation gates this),
#   4. contention phase: long-tail + cancel mixes under SSE observation
#      run without errors and both tenants appear in /metrics,
#   5. SIGTERM drains the tenanted server cleanly.
set -eu

cd "$(dirname "$0")/.."

ADDR_FIFO=127.0.0.1:18093
ADDR_FAIR=127.0.0.1:18094
BASE_FIFO=http://$ADDR_FIFO
BASE_FAIR=http://$ADDR_FAIR
WARM_P99=${LOAD_SMOKE_WARM_P99:-10ms}
TMP=$(mktemp -d)
FIFO_PID=
FAIR_PID=

cleanup() {
    [ -n "$FIFO_PID" ] && kill "$FIFO_PID" 2>/dev/null || true
    [ -n "$FAIR_PID" ] && kill "$FAIR_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "load-smoke: FAIL: $*" >&2
    for log in fifo.log fair.log; do
        [ -f "$TMP/$log" ] && sed "s/^/load-smoke:   $log: /" "$TMP/$log" >&2
    done
    exit 1
}

go build -o "$TMP/ndaserve" ./cmd/ndaserve
go build -o "$TMP/ndaload" ./cmd/ndaload

"$TMP/ndaserve" -addr "$ADDR_FIFO" -drain-timeout 30s >"$TMP/fifo.log" 2>&1 &
FIFO_PID=$!
"$TMP/ndaserve" -addr "$ADDR_FAIR" -drain-timeout 30s \
    -tenants 'greedy:smoke-key-g:3,light:smoke-key-l:1' >"$TMP/fair.log" 2>&1 &
FAIR_PID=$!

waitup() { # $1 base url, $2 pid
    i=0
    until curl -fsS "$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ $i -ge 100 ] && fail "server $1 did not come up"
        kill -0 "$2" 2>/dev/null || fail "server $1 exited early"
        sleep 0.1
    done
}
waitup "$BASE_FIFO" "$FIFO_PID"
waitup "$BASE_FAIR" "$FAIR_PID"

# 1. FIFO vs fair-share byte identity on the same sweep.
REQ='{"workloads":["exchange2"],"policies":["OoO"],"sampling":{"quick":true,"warm_insts":2000,"measure_insts":2000,"skip_insts":1000,"intervals":3}}'
curl -fsS -X POST -d "$REQ" "$BASE_FIFO/v1/sweep?wait=1" >"$TMP/fifo.json" || fail "FIFO sweep failed"
curl -fsS -X POST -H 'X-API-Key: smoke-key-g' -d "$REQ" "$BASE_FAIR/v1/sweep?wait=1" >"$TMP/fair.json" \
    || fail "fair-share sweep failed"
cmp -s "$TMP/fifo.json" "$TMP/fair.json" || fail "fair-share result differs from FIFO result"
echo "load-smoke: FIFO and fair-share results byte-identical"

# 2. Keyless submissions are refused by the tenanted server.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d "$REQ" "$BASE_FAIR/v1/sweep")
[ "$CODE" = "401" ] || fail "keyless submission answered $CODE, want 401"
echo "load-smoke: keyless submission refused (401)"

# 3. Warm-path SLO under multi-tenant contention: the sweep above warmed
# the hot mix's baseline cells; ndaload re-warms the rest, then a greedy
# and a light tenant hammer the cached sweep. Gates: warm p99 under the
# SLO, the light tenant completes work, fairness stays above floor.
"$TMP/ndaload" -target "$BASE_FAIR" \
    -load 'greedy:smoke-key-g:2:hot:0:3,light:smoke-key-l:1:hot:0:1' \
    -duration 3s -slo-warm-p99 "$WARM_P99" -min-tenant-completed 5 -min-jain 0.3 \
    || fail "warm-path SLO run failed (p99 over $WARM_P99, starved tenant, or unfair share)"
echo "load-smoke: warm p99 within $WARM_P99, light tenant served"

# 4. Contention phase: long-tail simulation plus a cancellation stream,
# observed over SSE. Ungated on latency (fresh cells simulate); asserts
# clean completion and per-tenant accounting on /metrics.
"$TMP/ndaload" -target "$BASE_FAIR" \
    -load 'greedy:smoke-key-g:2:longtail,light:smoke-key-l:1:cancel' \
    -duration 3s -stream sse -min-tenant-completed 1 \
    || fail "contention phase failed"
curl -fsS "$BASE_FAIR/metrics" >"$TMP/metrics.txt" || fail "metrics fetch failed"
for series in 'nda_tenant_dispatched_total{tenant="greedy"}' 'nda_tenant_dispatched_total{tenant="light"}' \
    'nda_jobs_cancelled_total'; do
    grep -qF "$series" "$TMP/metrics.txt" || fail "metrics missing $series"
done
echo "load-smoke: contention phase ok, per-tenant metrics present"

# 5. Drain both servers.
for pid in $FIFO_PID $FAIR_PID; do
    kill -TERM "$pid"
    wait "$pid" || fail "server (pid $pid) exited non-zero on SIGTERM"
done
FIFO_PID=
FAIR_PID=
grep -q "drained cleanly" "$TMP/fair.log" || fail "tenanted server did not drain cleanly"
echo "load-smoke: PASS"
