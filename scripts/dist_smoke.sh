#!/bin/sh
# dist-smoke: black-box check of the distributed sweep fleet, run by
# `make dist-smoke` and the CI dist-smoke job.
#
# Starts a coordinator over two local ndaserve workers, then asserts:
#   1. a sweep sharded across the fleet — with one worker SIGKILLed while
#      its cells are still in flight — completes anyway,
#   2. the merged JSON is byte-identical to a golden single-process run,
#   3. the fleet metrics show the recovery: retries happened and the dead
#      worker was evicted from the rotation.
set -eu

W1=127.0.0.1:18191
W2=127.0.0.1:18192
COORD=127.0.0.1:18193
LOCAL=127.0.0.1:18194
TMP=$(mktemp -d)
PIDS=""

cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "dist-smoke: FAIL: $*" >&2
    for f in "$TMP"/*.log; do
        [ -f "$f" ] && sed "s|^|dist-smoke:   $(basename "$f" .log): |" "$f" >&2
    done
    exit 1
}

wait_up() {
    i=0
    until curl -fsS "http://$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ $i -ge 100 ] && fail "server on $1 did not come up"
        sleep 0.1
    done
}

go build -o "$TMP/ndaserve" ./cmd/ndaserve

# All 23 workloads under OoO plus the in-order bound: 46 cells, enough to
# guarantee the kill below lands with cells still outstanding.
REQ='{"policies":["OoO"],"sampling":{"quick":true,"warm_insts":2000,"measure_insts":2000,"skip_insts":1000,"intervals":3}}'

# Golden: the same sweep on a plain single-process server.
"$TMP/ndaserve" -addr "$LOCAL" -drain-timeout 30s >"$TMP/local.log" 2>&1 &
LOCAL_PID=$!
PIDS="$PIDS $LOCAL_PID"
wait_up "$LOCAL"
curl -fsS -X POST -d "$REQ" "http://$LOCAL/v1/sweep?wait=1" >"$TMP/golden.json" \
    || fail "golden single-process sweep failed"
kill -TERM "$LOCAL_PID" && wait "$LOCAL_PID" || fail "golden server did not drain"
echo "dist-smoke: golden single-process sweep ok"

# The fleet: two workers and a coordinator in front of them.
"$TMP/ndaserve" -addr "$W1" >"$TMP/worker1.log" 2>&1 &
W1_PID=$!
"$TMP/ndaserve" -addr "$W2" >"$TMP/worker2.log" 2>&1 &
W2_PID=$!
PIDS="$PIDS $W1_PID $W2_PID"
wait_up "$W1"
wait_up "$W2"
"$TMP/ndaserve" -addr "$COORD" -workers "http://$W1,http://$W2" \
    -cell-retries 6 -cell-timeout 60s >"$TMP/coord.log" 2>&1 &
COORD_PID=$!
PIDS="$PIDS $COORD_PID"
wait_up "$COORD"

# Submit asynchronously so the job is observable while it runs.
JOB=$(curl -fsS -X POST -d "$REQ" "http://$COORD/v1/sweep" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])') \
    || fail "sweep submission failed"

status() { curl -fsS "http://$COORD/v1/jobs/$JOB"; }
field() { python3 -c "import json,sys; print(json.load(sys.stdin).get('$1', 0))"; }

# Let the fleet make some progress, then SIGKILL worker 2 with its share
# of the sweep still in flight.
i=0
while :; do
    DONE=$(status | field done_cells)
    [ "$DONE" -ge 3 ] && break
    i=$((i + 1))
    [ $i -ge 300 ] && fail "sweep never progressed past $DONE cells"
    sleep 0.1
done
kill -KILL "$W2_PID"
echo "dist-smoke: killed worker 2 at $DONE/46 cells"

i=0
while :; do
    STATE=$(status | field state)
    case "$STATE" in
    done) break ;;
    failed | cancelled) fail "job reached state $STATE after the kill" ;;
    esac
    i=$((i + 1))
    [ $i -ge 600 ] && fail "job stuck in state $STATE"
    sleep 0.1
done

curl -fsS "http://$COORD/v1/jobs/$JOB/result" >"$TMP/merged.json" || fail "result fetch failed"
cmp -s "$TMP/golden.json" "$TMP/merged.json" \
    || fail "fleet-merged sweep is not byte-identical to the single-process run"
echo "dist-smoke: merged sweep byte-identical to single-process run"

# The recovery must be visible on /metrics: retries happened, and the
# dead worker leaves the rotation (possibly a probe or two after the job).
metric_sum() { curl -fsS "http://$COORD/metrics" | awk -v m="$1" 'index($1, m"{")==1 {s+=$2} END {print s+0}'; }
[ "$(metric_sum nda_dist_retried_total)" -gt 0 ] || fail "kill caused no retries"
i=0
until [ "$(metric_sum nda_dist_evicted_total)" -gt 0 ]; do
    i=$((i + 1))
    [ $i -ge 100 ] && fail "dead worker was never evicted"
    sleep 0.1
done
echo "dist-smoke: retries and eviction visible on /metrics"

kill -TERM "$COORD_PID" && wait "$COORD_PID" || fail "coordinator did not drain cleanly"
kill -TERM "$W1_PID" && wait "$W1_PID" || fail "worker 1 did not drain cleanly"
echo "dist-smoke: PASS"
