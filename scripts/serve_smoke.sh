#!/bin/sh
# serve-smoke: black-box check of cmd/ndaserve, run by `make serve-smoke`
# and the CI serve-smoke job.
#
# Starts the server on a private port, then asserts over plain HTTP:
#   1. /healthz answers 200 with valid JSON,
#   2. a small quick sweep (?wait=1) answers 200 with valid JSON,
#   3. the identical sweep repeated is served from the cache byte-for-byte
#      (nda_cache_hits_total moves, nda_simulations_total does not),
#   4. SIGTERM drains and the process exits 0.
set -eu

ADDR=127.0.0.1:18090
BASE=http://$ADDR
TMP=$(mktemp -d)
SERVER_PID=

cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    [ -f "$TMP/server.log" ] && sed 's/^/serve-smoke:   server: /' "$TMP/server.log" >&2
    exit 1
}

go build -o "$TMP/ndaserve" ./cmd/ndaserve
"$TMP/ndaserve" -addr "$ADDR" -drain-timeout 30s >"$TMP/server.log" 2>&1 &
SERVER_PID=$!

# Wait for the listener (up to ~10s).
i=0
until curl -fsS "$BASE/healthz" >"$TMP/health.json" 2>/dev/null; do
    i=$((i + 1))
    [ $i -ge 100 ] && fail "server did not come up"
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited early"
    sleep 0.1
done
python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); assert d["status"]=="ok", d' "$TMP/health.json" \
    || fail "/healthz body invalid"
echo "serve-smoke: healthz ok"

REQ='{"workloads":["exchange2"],"policies":["OoO"],"sampling":{"quick":true,"warm_insts":2000,"measure_insts":2000,"skip_insts":1000,"intervals":3}}'
curl -fsS -X POST -d "$REQ" "$BASE/v1/sweep?wait=1" >"$TMP/cold.json" || fail "cold sweep request failed"
python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); assert d["sweep"]["Cells"]["OoO"]["exchange2"], d' "$TMP/cold.json" \
    || fail "cold sweep body invalid"
echo "serve-smoke: cold sweep ok"

metric() { curl -fsS "$BASE/metrics" | awk -v m="$1" '$1==m{print $2}'; }
SIMS=$(metric nda_simulations_total)
HITS=$(metric nda_cache_hits_total)
[ "$SIMS" -gt 0 ] || fail "cold sweep simulated nothing"

curl -fsS -X POST -d "$REQ" "$BASE/v1/sweep?wait=1" >"$TMP/warm.json" || fail "warm sweep request failed"
cmp -s "$TMP/cold.json" "$TMP/warm.json" || fail "cached response is not byte-identical to the cold run"
[ "$(metric nda_simulations_total)" = "$SIMS" ] || fail "warm sweep re-simulated"
[ "$(metric nda_cache_hits_total)" -gt "$HITS" ] || fail "warm sweep did not hit the cache"
echo "serve-smoke: warm sweep served from cache, byte-identical"

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "server exited non-zero on SIGTERM"
SERVER_PID=
grep -q "drained cleanly" "$TMP/server.log" || fail "server did not drain cleanly"
echo "serve-smoke: PASS"
