#!/bin/sh
# golden-identity: regenerate the two checked-in result goldens and fail on
# any byte of drift.
#
#   testdata/golden/sweep_quick.json    ndabench -quick -experiments fig7 -json
#   testdata/golden/attack_matrix.json  ndattack -matrix -json
#
# Each golden is regenerated at two worker counts (1 and GOLDEN_WORKERS,
# default 2) and cmp'd against the checked-in file, so the gate catches both
# simulator-output drift and any scheduling-order leak in the parallel sweep
# or matrix engines. Refresh the goldens deliberately with:
#
#   go run ./cmd/ndabench -quick -experiments fig7 -json testdata/golden/sweep_quick.json
#   go run ./cmd/ndattack -matrix -json testdata/golden/attack_matrix.json
set -eu

cd "$(dirname "$0")/.."

WORKERS=${GOLDEN_WORKERS:-2}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail=0
check() { # check <golden-file> <fresh-file> <label>
    if cmp -s "$1" "$2"; then
        echo "golden-identity: $3: byte-identical"
    else
        echo "golden-identity: $3: DRIFT from $1" >&2
        cmp "$1" "$2" >&2 || true
        fail=1
    fi
}

for w in 1 "$WORKERS"; do
    go run ./cmd/ndabench -quick -experiments fig7 -workers "$w" \
        -json "$TMP/sweep_$w.json" >/dev/null
    check testdata/golden/sweep_quick.json "$TMP/sweep_$w.json" "quick sweep (workers=$w)"

    go run ./cmd/ndattack -matrix -workers "$w" \
        -json "$TMP/matrix_$w.json" >/dev/null
    check testdata/golden/attack_matrix.json "$TMP/matrix_$w.json" "attack matrix (workers=$w)"
done

exit "$fail"
