#!/bin/sh
# bench-json: run the performance benchmarks and emit one machine-readable
# trajectory point (the BENCH_<n>.json format, see cmd/benchjson).
#
#   sh scripts/bench_json.sh                # print to stdout, next free index
#   sh scripts/bench_json.sh out.json       # write to a file
#   BENCH_INDEX=3 sh scripts/bench_json.sh  # force the trajectory index
#   BENCH_NOTE="post-refactor" ...          # stamp a note
#
# The bench set is the root package's Fig/Table benchmarks plus the
# simulator micro-benchmarks (bench_test.go); -benchtime=1x keeps one run
# per benchmark — exact for allocs/op (the gated number) and good enough
# for the informational timing columns.
#
# Two serving-path points ride along via ndaload against an in-process
# server: the warm hot mix with a saturation search (BenchmarkLoadHot +
# BenchmarkLoadHotSaturation) and a two-tenant contention mix
# (BenchmarkLoadMultiTenant, whose jain column tracks fair-share quality).
# Their latency/throughput columns are informational like ns/op; they
# carry no alloc columns, so the regression gate treats them as presence
# checks only.
set -eu

cd "$(dirname "$0")/.."

OUT=${1:-}
INDEX=${BENCH_INDEX:-}
NOTE=${BENCH_NOTE:-}

if [ -z "$INDEX" ]; then
    # Next free index after the highest checked-in BENCH_<n>.json.
    INDEX=0
    for f in BENCH_*.json; do
        [ -f "$f" ] || continue
        n=${f#BENCH_}
        n=${n%.json}
        case "$n" in *[!0-9]*) continue ;; esac
        [ "$n" -ge "$INDEX" ] && INDEX=$((n + 1))
    done
fi

TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

go test -run='^$' -bench=. -benchmem -benchtime=1x . >"$TMP"

LOAD_DUR=${BENCH_LOAD_DURATION:-2s}
go run ./cmd/ndaload -inproc -duration "$LOAD_DUR" -load 'local::2:hot' \
    -saturation -saturation-max-workers 8 -bench Hot >>"$TMP"
go run ./cmd/ndaload -inproc -tenants 'greedy:bench-kg:3,light:bench-kl:1' \
    -load 'greedy:bench-kg:2:hot:0:3,light:bench-kl:1:hot:0:1' \
    -duration "$LOAD_DUR" -bench MultiTenant >>"$TMP"

if [ -n "$OUT" ]; then
    go run ./cmd/benchjson -index "$INDEX" -note "$NOTE" <"$TMP" >"$OUT"
    echo "bench-json: wrote $OUT (index $INDEX)" >&2
else
    go run ./cmd/benchjson -index "$INDEX" -note "$NOTE" <"$TMP"
fi
