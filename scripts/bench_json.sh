#!/bin/sh
# bench-json: run the performance benchmarks and emit one machine-readable
# trajectory point (the BENCH_<n>.json format, see cmd/benchjson).
#
#   sh scripts/bench_json.sh                # print to stdout, next free index
#   sh scripts/bench_json.sh out.json       # write to a file
#   BENCH_INDEX=3 sh scripts/bench_json.sh  # force the trajectory index
#   BENCH_NOTE="post-refactor" ...          # stamp a note
#
# The bench set is the root package's Fig/Table benchmarks plus the
# simulator micro-benchmarks (bench_test.go); -benchtime=1x keeps one run
# per benchmark — exact for allocs/op (the gated number) and good enough
# for the informational timing columns.
set -eu

cd "$(dirname "$0")/.."

OUT=${1:-}
INDEX=${BENCH_INDEX:-}
NOTE=${BENCH_NOTE:-}

if [ -z "$INDEX" ]; then
    # Next free index after the highest checked-in BENCH_<n>.json.
    INDEX=0
    for f in BENCH_*.json; do
        [ -f "$f" ] || continue
        n=${f#BENCH_}
        n=${n%.json}
        case "$n" in *[!0-9]*) continue ;; esac
        [ "$n" -ge "$INDEX" ] && INDEX=$((n + 1))
    done
fi

TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

go test -run='^$' -bench=. -benchmem -benchtime=1x . >"$TMP"

if [ -n "$OUT" ]; then
    go run ./cmd/benchjson -index "$INDEX" -note "$NOTE" <"$TMP" >"$OUT"
    echo "bench-json: wrote $OUT (index $INDEX)" >&2
else
    go run ./cmd/benchjson -index "$INDEX" -note "$NOTE" <"$TMP"
fi
