#!/bin/sh
# bench-trajectory: regenerate the benchmark trajectory point and compare it
# against the newest checked-in BENCH_<n>.json. An allocs/op or B/op
# regression in any benchmark — or a benchmark that disappeared — fails;
# ns/op deltas are reported but never gate (CI timing is too noisy).
set -eu

cd "$(dirname "$0")/.."

BASE=""
best=-1
for f in BENCH_*.json; do
    [ -f "$f" ] || continue
    n=${f#BENCH_}
    n=${n%.json}
    case "$n" in *[!0-9]*) continue ;; esac
    if [ "$n" -gt "$best" ]; then
        best=$n
        BASE=$f
    fi
done
if [ -z "$BASE" ]; then
    echo "bench-trajectory: no checked-in BENCH_<n>.json baseline" >&2
    exit 1
fi

TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

echo "bench-trajectory: baseline $BASE" >&2
BENCH_INDEX=$((best + 1)) BENCH_NOTE="ci candidate" sh scripts/bench_json.sh "$TMP"
go run ./cmd/benchjson -compare "$BASE" "$TMP"
