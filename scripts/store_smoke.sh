#!/bin/sh
# store-smoke: black-box check of the persistent result store, run by
# `make store-smoke` and the CI store-smoke job.
#
# Boots ndaserve with -store-dir, runs the full 92-cell quick sweep, kills
# the process with SIGKILL (no shutdown path runs), restarts it over the
# same store directory with -warm-from, and asserts:
#   1. the warm job replays every cell from disk (tiers.disk == 92),
#   2. the simulation counter never moves on the warmed process,
#   3. the replayed sweep response is byte-identical to the cold run,
#   4. SIGTERM still drains the restarted server cleanly.
set -eu

ADDR=127.0.0.1:18092
BASE=http://$ADDR
TMP=$(mktemp -d)
STORE="$TMP/store"
SERVER_PID=

cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "store-smoke: FAIL: $*" >&2
    [ -f "$TMP/server.log" ] && sed 's/^/store-smoke:   server: /' "$TMP/server.log" >&2
    exit 1
}

wait_up() {
    i=0
    until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ $i -ge 100 ] && fail "server did not come up"
        kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited early"
        sleep 0.1
    done
}

metric() { curl -fsS "$BASE/metrics" | awk -v m="$1" '$1==m{print $2}'; }

go build -o "$TMP/ndaserve" ./cmd/ndaserve

# The paper's 92-cell grid (23 workloads x 3 policies + in-order) under the
# reduced quick methodology, so the cold pass takes seconds, not hours.
REQ='{"policies":["OoO","Permissive","Permissive+BR"],"sampling":{"quick":true,"warm_insts":2000,"measure_insts":2000,"skip_insts":1000,"intervals":3}}'

"$TMP/ndaserve" -addr "$ADDR" -store-dir "$STORE" -drain-timeout 30s >"$TMP/server.log" 2>&1 &
SERVER_PID=$!
wait_up

curl -fsS -X POST -d "$REQ" "$BASE/v1/sweep?wait=1" >"$TMP/cold.json" || fail "cold sweep failed"
[ "$(metric nda_simulations_total)" = 92 ] || fail "cold sweep ran $(metric nda_simulations_total) simulations, want 92"
[ "$(metric nda_store_puts_total)" = 92 ] || fail "store holds $(metric nda_store_puts_total) puts, want 92"
echo "store-smoke: cold 92-cell sweep simulated and persisted"

# kill -9: no drain, no Close, no flush. Durability must already be on disk.
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=

printf '{"sweeps":[%s]}' "$REQ" >"$TMP/warm_req.json"
"$TMP/ndaserve" -addr "$ADDR" -store-dir "$STORE" -warm-from "$TMP/warm_req.json" -drain-timeout 30s >"$TMP/server.log" 2>&1 &
SERVER_PID=$!
wait_up

# The boot-time warm job is the restarted server's first job.
i=0
while :; do
    curl -fsS "$BASE/v1/jobs/job-000001" >"$TMP/warmjob.json" || fail "warm job poll failed"
    state=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["state"])' "$TMP/warmjob.json")
    [ "$state" = done ] && break
    [ "$state" = failed ] && fail "warm job failed: $(cat "$TMP/warmjob.json")"
    i=$((i + 1))
    [ $i -ge 600 ] && fail "warm job stuck: $(cat "$TMP/warmjob.json")"
    sleep 0.1
done
python3 -c '
import json, sys
st = json.load(open(sys.argv[1]))
t = st["tiers"]
assert t["disk"] == 92 and t["computed"] == 0, t
' "$TMP/warmjob.json" || fail "warm job did not replay all 92 cells from disk: $(cat "$TMP/warmjob.json")"
[ "$(metric nda_simulations_total)" = 0 ] || fail "warm replay simulated ($(metric nda_simulations_total) != 0)"
echo "store-smoke: post-kill warm job replayed 92/92 cells from disk, zero simulations"

curl -fsS -X POST -d "$REQ" "$BASE/v1/sweep?wait=1" >"$TMP/replay.json" || fail "replay sweep failed"
cmp -s "$TMP/cold.json" "$TMP/replay.json" || fail "replayed sweep is not byte-identical to the pre-kill run"
[ "$(metric nda_simulations_total)" = 0 ] || fail "replay sweep simulated"
echo "store-smoke: replayed sweep byte-identical to the pre-kill response"

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "server exited non-zero on SIGTERM"
SERVER_PID=
grep -q "drained cleanly" "$TMP/server.log" || fail "server did not drain cleanly"
echo "store-smoke: PASS"
