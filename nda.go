// Package nda is a from-scratch reproduction of "NDA: Preventing
// Speculative Execution Attacks at Their Source" (Weisse, Neal, Loughlin,
// Wenisch, Kasikci — MICRO-52, 2019) as a self-contained Go library.
//
// The package bundles:
//
//   - a cycle-level out-of-order core (rename, ROB, issue queue, LSQ,
//     branch prediction, wrong-path execution, precise exceptions) over a
//     RISC-style 64-bit ISA with an assembler and a reference emulator;
//   - the six NDA speculative-data-propagation policies of the paper
//     (permissive/strict, ±bypass restriction, load restriction, full
//     protection), plus InvisiSpec-style comparators and an in-order
//     baseline;
//   - executable proofs-of-concept for six speculative execution attacks
//     (Spectre v1 over the D-cache and over the BTB, Meltdown, speculative
//     store bypass, a LazyFP analogue, and the hypothetical GPR-steering
//     attack), with leak verdicts checked against the paper's Table 2;
//   - 23 SPEC CPU 2017 proxy workloads and a SMARTS-style sampling harness
//     that regenerates every table and figure of the paper's evaluation.
//
// # Quick start
//
//	prog, err := nda.Assemble(`
//	main:   li   t0, 1
//	        li   t1, 10
//	loop:   add  t0, t0, t0
//	        addi t1, t1, -1
//	        bne  t1, zero, loop
//	        halt
//	`)
//	core := nda.NewCore(prog, nda.FullProtection(), nda.DefaultParams())
//	err = core.Run(1_000_000)
//	fmt.Println(core.Stats().CPI())
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every experiment.
package nda

import (
	"io"

	"nda/internal/asm"
	"nda/internal/attack"
	"nda/internal/checkpoint"
	"nda/internal/core"
	"nda/internal/harness"
	"nda/internal/inorder"
	"nda/internal/isa"
	"nda/internal/ooo"
	"nda/internal/trace"
	"nda/internal/workload"
)

// ---- ISA and programs ----

// Program is an assembled or generated program.
type Program = isa.Program

// Inst is one decoded instruction.
type Inst = isa.Inst

// Assemble translates assembler source into a Program. See package
// internal/asm for the accepted syntax.
func Assemble(source string) (*Program, error) { return asm.Assemble(source) }

// MustAssemble is Assemble but panics on error.
func MustAssemble(source string) *Program { return asm.MustAssemble(source) }

// ---- policies (the paper's Table 2 rows) ----

// Policy is one NDA propagation policy / evaluated configuration.
type Policy = core.Policy

// The evaluated configurations.
func Baseline() Policy                         { return core.Baseline() }
func Permissive() Policy                       { return core.Permissive() }
func PermissiveBR() Policy                     { return core.PermissiveBR() }
func Strict() Policy                           { return core.Strict() }
func StrictBR() Policy                         { return core.StrictBR() }
func LoadRestrict() Policy                     { return core.LoadRestrict() }
func FullProtection() Policy                   { return core.FullProtection() }
func InvisiSpecSpectre() Policy                { return core.InvisiSpecSpectre() }
func InvisiSpecFuture() Policy                 { return core.InvisiSpecFuture() }
func Policies() []Policy                       { return core.All() }
func PolicyByName(name string) (Policy, error) { return core.ByName(name) }

// ---- cores ----

// Params configures the out-of-order core; DefaultParams is the paper's
// Table 3 machine.
type Params = ooo.Params

// DefaultParams returns the Table 3 configuration.
func DefaultParams() Params { return ooo.DefaultParams() }

// Core is a cycle-level out-of-order core.
type Core = ooo.Core

// NewCore builds an OoO core running prog under the given policy, with a
// fresh memory initialized from the program's data segments.
func NewCore(prog *Program, pol Policy, p Params) *Core {
	return ooo.NewFromProgram(prog, pol, p)
}

// InOrder is the blocking in-order baseline core.
type InOrder = inorder.Machine

// InOrderParams configures the in-order core.
type InOrderParams = inorder.Params

// DefaultInOrderParams returns the standard in-order latencies.
func DefaultInOrderParams() InOrderParams { return inorder.DefaultParams() }

// NewInOrder builds an in-order core running prog.
func NewInOrder(prog *Program, p InOrderParams) *InOrder {
	return inorder.NewFromProgram(prog, p)
}

// ---- attacks ----

// AttackKind names one attack proof-of-concept.
type AttackKind = attack.Kind

// The implemented attacks.
const (
	SpectreV1Cache     = attack.SpectreV1Cache
	SpectreV1BTB       = attack.SpectreV1BTB
	SpectreV2          = attack.SpectreV2
	Ret2spec           = attack.Ret2spec
	Meltdown           = attack.Meltdown
	SSB                = attack.SSB
	LazyFP             = attack.LazyFP
	GPRSteering        = attack.GPRSteering
	GPRSteeringSpecOff = attack.GPRSteeringSpecOff
)

// AttackOutcome is the timing series and leak verdict of one attack run.
type AttackOutcome = attack.Outcome

// Attacks lists every implemented attack.
func Attacks() []AttackKind { return attack.All() }

// RunAttack executes one attack PoC under a policy and analyzes the leak.
func RunAttack(kind AttackKind, pol Policy, p Params) (*AttackOutcome, error) {
	return attack.Run(kind, pol, p)
}

// AttackCell is one (attack, policy) matrix entry with the paper-expected
// verdict.
type AttackCell = attack.Cell

// AttackMatrix runs every attack under every configuration — the dynamic
// reproduction of the paper's Table 2 security columns.
func AttackMatrix(p Params) ([]AttackCell, error) { return attack.Matrix(p) }

// ---- workloads & evaluation harness ----

// Benchmark is one named workload generator.
type Benchmark = workload.Spec

// Benchmarks returns the 23 SPEC CPU 2017 proxies.
func Benchmarks() []Benchmark { return workload.SPEC() }

// GenericWorkloads returns the standalone single-kernel workloads.
func GenericWorkloads() []Benchmark { return workload.Generic() }

// BenchmarkByName finds any workload by name.
func BenchmarkByName(name string) (Benchmark, error) { return workload.ByName(name) }

// RandomProgram generates a seeded terminating program (differential-test
// fodder).
func RandomProgram(seed int64, segments int) *Program { return workload.Random(seed, segments) }

// HarnessConfig controls the sampling methodology.
type HarnessConfig = harness.Config

// DefaultHarnessConfig returns the standard methodology; QuickHarnessConfig
// a reduced one for smoke runs.
func DefaultHarnessConfig() HarnessConfig { return harness.DefaultConfig() }
func QuickHarnessConfig() HarnessConfig   { return harness.Quick() }

// Measurement is one (benchmark, configuration) performance cell.
type Measurement = harness.Measurement

// Sweep is the full evaluation grid.
type Sweep = harness.Sweep

// Measure runs one benchmark under one policy.
func Measure(b Benchmark, pol Policy, cfg HarnessConfig) (*Measurement, error) {
	return harness.MeasureOoO(b, pol, cfg)
}

// MeasureInOrder runs one benchmark on the in-order core.
func MeasureInOrder(b Benchmark, cfg HarnessConfig) (*Measurement, error) {
	return harness.MeasureInOrder(b, cfg)
}

// RunEvaluation measures every benchmark under every policy (and the
// in-order baseline when includeInOrder is set).
func RunEvaluation(bs []Benchmark, pols []Policy, includeInOrder bool, cfg HarnessConfig, progress func(string)) (*Sweep, error) {
	return harness.RunSweep(bs, pols, includeInOrder, cfg, progress)
}

// PipelineTrace collects per-instruction life-cycle records from a Core and
// renders Konata-style text pipeline diagrams (see cmd/ndasim -pipeline).
type PipelineTrace = trace.Collector

// TraceEvent is one instruction's milestone record.
type TraceEvent = ooo.TraceEvent

// Checkpoint is an architectural snapshot (the Lapidary analogue); take one
// by fast-forwarding the functional emulator and build any core from it.
type Checkpoint = checkpoint.Checkpoint

// TakeCheckpoint fast-forwards prog functionally by skipInsts and captures
// the architectural state there.
func TakeCheckpoint(prog *Program, skipInsts uint64) (*Checkpoint, error) {
	return checkpoint.Take(prog, skipInsts)
}

// LoadCheckpoint deserializes a checkpoint written with Checkpoint.Save.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) { return checkpoint.Load(r) }

// Fig5Result is the BTB misprediction-overhead micro-measurement.
type Fig5Result = harness.Fig5Result

// MeasureFig5 measures the BTB misprediction penalty (paper Fig. 5).
func MeasureFig5(p Params) (Fig5Result, error) { return harness.MeasureFig5(p) }

// Fig9eResult is one point of the NDA logic-latency sensitivity study.
type Fig9eResult = harness.Fig9eResult

// RunFig9e measures CPI sensitivity to extra NDA wake-up latency.
func RunFig9e(policy string, delays []int, benchmarks []string, cfg HarnessConfig) ([]Fig9eResult, error) {
	return harness.RunFig9e(policy, delays, benchmarks, cfg)
}

// Renderers for the paper's tables and figures.
func RenderFig5(r Fig5Result) string      { return harness.RenderFig5(r) }
func RenderFig9e(rs []Fig9eResult) string { return harness.RenderFig9e(rs) }
func RenderFig7(s *Sweep) string          { return harness.RenderFig7(s) }
func RenderTable2(s *Sweep) string        { return harness.RenderTable2(s) }
func RenderTable3(p Params) string        { return harness.RenderTable3(p) }
func RenderFig9a(s *Sweep) string         { return harness.RenderFig9a(s) }
func RenderFig9bcd(s *Sweep) string       { return harness.RenderFig9bcd(s) }
