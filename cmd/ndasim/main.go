// Command ndasim assembles and runs one program on the simulated cores and
// prints its statistics.
//
// Usage:
//
//	ndasim [flags] program.s        # run an assembly file
//	ndasim [flags] -bench mcf       # run a named benchmark workload
//
// Flags select the propagation policy (-policy, see -list), the core
// (-inorder), and diagnostics (-trace).
package main

import (
	"flag"
	"fmt"
	"os"

	"nda/internal/asm"
	"nda/internal/cliutil"
	"nda/internal/core"
	"nda/internal/inorder"
	"nda/internal/isa"
	"nda/internal/ooo"
	"nda/internal/trace"
	"nda/internal/workload"
)

func main() {
	var (
		policyName = flag.String("policy", "OoO", "propagation policy (see -list)")
		benchName  = flag.String("bench", "", "run a named benchmark instead of a file")
		iters      = flag.Uint64("iters", 50, "benchmark loop iterations (with -bench)")
		inOrder    = flag.Bool("inorder", false, "run on the in-order core instead")
		maxCycles  = flag.Uint64("max-cycles", 500_000_000, "simulation cycle budget")
		traceFlag  = flag.Bool("trace", false, "print every committed instruction")
		disasm     = flag.Bool("disasm", false, "print the program's disassembly and exit")
		pipeline   = flag.Int("pipeline", 0, "render a pipeline diagram of the first N committed instructions")
		regs       = flag.Bool("regs", false, "print non-zero architectural registers at halt")
		list       = flag.Bool("list", false, "list policies and benchmarks, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("policies:")
		for _, p := range core.All() {
			fmt.Printf("  %s\n", p.Name)
		}
		fmt.Println("benchmarks:")
		for _, s := range workload.All() {
			fmt.Printf("  %-12s %-8s %s\n", s.Name, s.Suite, s.Description)
		}
		return
	}

	prog, err := loadProgram(*benchName, *iters, flag.Args())
	if err != nil {
		fatal(err)
	}

	if *disasm {
		fmt.Print(asm.Disassemble(prog))
		return
	}

	if *inOrder {
		m := inorder.NewFromProgram(prog, inorder.DefaultParams())
		if err := m.Run(*maxCycles); err != nil {
			fatal(err)
		}
		s := m.Stats()
		fmt.Printf("in-order: %d instructions, %d cycles, CPI %.3f\n",
			m.Retired(), m.Cycles(), s.CPI())
		return
	}

	pol, err := core.ByName(*policyName)
	if err != nil {
		fatal(err)
	}
	c := ooo.NewFromProgram(prog, pol, ooo.DefaultParams())
	var col *trace.Collector
	if *pipeline > 0 {
		col = &trace.Collector{Limit: *pipeline}
		col.Attach(c)
	}
	if *traceFlag {
		c.TraceCommit = func(pc uint64, inst isa.Inst) {
			fmt.Printf("%#08x  %v\n", pc, inst)
		}
	}
	if err := c.Run(*maxCycles); err != nil {
		fatal(err)
	}
	if col != nil {
		fmt.Print(col.Render(120))
		fmt.Printf("mean complete->broadcast deferral: %.1f cycles\n\n", col.BroadcastDeferral())
	}
	if *regs {
		for i := isa.Reg(1); i < isa.NumGPR; i++ {
			if v := c.Reg(i); v != 0 {
				fmt.Printf("  %-4s = %-20d (%#x)\n", regName(i), v, v)
			}
		}
	}
	printStats(c, pol)
}

// regName renders the conventional alias for a register number.
func regName(r isa.Reg) string {
	names := []string{"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
		"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
		"s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
		"t3", "t4", "t5", "t6"}
	return names[r]
}

func loadProgram(bench string, iters uint64, args []string) (*isa.Program, error) {
	if bench != "" {
		spec, err := workload.ByName(bench)
		if err != nil {
			return nil, err
		}
		return spec.Build(iters), nil
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("usage: ndasim [flags] program.s (or -bench NAME; see -list)")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	return asm.Assemble(string(src))
}

func printStats(c *ooo.Core, pol core.Policy) {
	s := c.Stats()
	fmt.Printf("policy %s: %d instructions, %d cycles\n", pol.Name, c.Retired(), c.Cycles())
	fmt.Printf("  CPI %.3f (IPC %.3f)\n", s.CPI(), s.IPC())
	fmt.Printf("  cycles: %.1f%% commit, %.1f%% memory stall, %.1f%% backend stall, %.1f%% frontend stall\n",
		pct(s.CommitCycles, s.Cycles), pct(s.MemStallCycles, s.Cycles),
		pct(s.BackendStalls, s.Cycles), pct(s.FrontendStalls, s.Cycles))
	fmt.Printf("  MLP %.2f, ILP %.2f, dispatch->issue %.1f cycles\n", s.MLP(), s.ILP(), s.DispatchToIssue())
	fmt.Printf("  branches: %d resolved, %d mispredicted (%.1f%%), %d squashes, %d squashed instructions\n",
		s.BranchesResolved, s.Mispredicts, 100*s.MispredictRate(), s.Squashes, s.SquashedInsts)
	fmt.Printf("  memory: %d forwards, %d replays, %d bypassed loads, %d order violations\n",
		s.LoadForwards, s.LoadReplays, s.BypassedLoads, s.OrderViolations)
	if s.DeferredBroadcasts > 0 {
		fmt.Printf("  NDA: %d deferred broadcasts, %.1f cycles mean deferral\n",
			s.DeferredBroadcasts, float64(s.DeferralCycles)/float64(s.DeferredBroadcasts))
	}
	h := c.Hierarchy()
	fmt.Printf("  caches: L1I %.1f%% miss, L1D %.1f%% miss, L2 %.1f%% miss\n",
		100*h.L1I.Stats().MissRate(), 100*h.L1D.Stats().MissRate(), 100*h.L2.Stats().MissRate())
}

func pct(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

func fatal(err error) { cliutil.Check("ndasim", err) }
