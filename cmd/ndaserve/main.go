// Command ndaserve runs the simulator as a long-lived HTTP service: a job
// queue with backpressure, a content-addressed result cache that serves
// repeated sweeps, attack matrices, and gadget censuses without
// re-simulation, and Prometheus-style metrics.
//
//	ndaserve                          # listen on :8090
//	ndaserve -addr :9000 -queue 32 -job-workers 4
//
//	curl localhost:8090/healthz
//	curl -X POST 'localhost:8090/v1/sweep?wait=1' -d '{"workloads":["gcc"],"sampling":{"quick":true}}'
//	curl -X POST localhost:8090/v1/attack -d '{"attacks":["meltdown"]}'
//	curl localhost:8090/v1/jobs/job-000002
//	curl localhost:8090/metrics
//
// With -workers the process becomes a fleet coordinator instead of a
// simulator: jobs are decomposed into cells exactly as before, but cells
// that miss the local result cache are dispatched to the listed ndaserve
// workers over POST /v1/cell, with bounded per-worker in-flight windows,
// per-cell retry with backoff, health-based eviction/re-admission, and
// hedged dispatch for stragglers. The merged result is byte-identical to
// a local run.
//
//	ndaserve -addr :8090 -workers http://sim1:8090,http://sim2:8090
//
// With -store-dir the result cache gains a persistent disk tier: every
// completed cell is written durably (atomic temp-file + rename), so a
// restarted — or kill -9'd — process serves earlier results from disk,
// byte-identically and without re-simulation. -store-max-bytes bounds the
// directory; least-recently-used cells are evicted beyond it. A
// coordinator can additionally share a store across replicas with
// -shared-store-dir: cells found there are never dispatched to a worker.
// -warm-from submits a precompute job at boot ("standard" or a JSON file),
// which replays straight from the store after a restart.
//
//	ndaserve -store-dir /var/lib/nda -warm-from standard
//
// On SIGINT/SIGTERM the server stops accepting work and drains: queued and
// in-flight jobs finish (bounded by -drain-timeout, after which they are
// cancelled), then the process exits.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"nda/internal/cliutil"
	"nda/internal/dist"
	"nda/internal/serve"
	"nda/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8090", "listen address")
		queueDepth   = flag.Int("queue", 16, "bounded job queue depth; a full queue answers 429")
		jobWorkers   = flag.Int("job-workers", 2, "jobs executing concurrently")
		simWorkers   = flag.Int("sim-workers", 0, "simulation goroutines per job (0 = one per CPU)")
		cacheMax     = flag.Int("cache-max-entries", serve.DefaultCacheMaxEntries, "result-cache LRU capacity in entries; evictions show on /metrics")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "how long shutdown waits for jobs to drain before cancelling them")
		tenantsFlag  = flag.String("tenants", "", "comma-separated API-key tenants name:key:weight[:rate[:burst[:inflight]]]; empty = single-tenant, no auth")

		// Persistent store tiers.
		storeDir      = flag.String("store-dir", "", "directory for the persistent result store (disk tier under the RAM cache); empty disables persistence")
		storeMaxBytes = flag.Int64("store-max-bytes", store.DefaultMaxBytes, "byte budget for the persistent store; least-recently-used entries beyond it are evicted")
		sharedDir     = flag.String("shared-store-dir", "", "coordinator mode: directory of the fleet-shared result store (reuses -store-dir's store when equal)")
		warmFrom      = flag.String("warm-from", "", `submit a cache-warming job at boot: "standard" for the paper's figure set, or a path to a WarmRequest JSON file`)

		// Coordinator mode.
		workers      = flag.String("workers", "", "comma-separated worker ndaserve URLs; non-empty enables coordinator mode")
		workerWindow = flag.Int("worker-window", dist.DefaultWindow, "max in-flight cells per worker")
		cellTimeout  = flag.Duration("cell-timeout", dist.DefaultCellTimeout, "per-attempt timeout for one remote cell")
		cellRetries  = flag.Int("cell-retries", dist.DefaultRetries, "re-dispatches of a failed cell before the job fails")
		hedgeAfter   = flag.Duration("hedge-after", 15*time.Second, "dispatch a straggling cell to a second worker after this long (0 disables)")
	)
	flag.Parse()
	fatal := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "ndaserve: %v\n", err)
			os.Exit(2)
		}
	}

	simN, err := cliutil.WorkerCount(*simWorkers)
	fatal(err)
	if *queueDepth < 1 {
		fatal(fmt.Errorf("-queue %d invalid: want a positive depth", *queueDepth))
	}
	if *jobWorkers < 1 {
		fatal(fmt.Errorf("-job-workers %d invalid: want a positive count", *jobWorkers))
	}
	if *cacheMax < 1 {
		fatal(fmt.Errorf("-cache-max-entries %d invalid: want a positive capacity", *cacheMax))
	}
	urls, err := cliutil.WorkerURLs(*workers)
	fatal(err)
	tenants, err := cliutil.Tenants(*tenantsFlag)
	fatal(err)

	// Open the persistent tiers before anything can enqueue work. The two
	// flags may name the same directory — then one store instance serves
	// as both the local disk tier and the fleet-shared tier (a single
	// store must never be opened twice in one process).
	var diskStore *store.Store
	if *storeDir != "" {
		if *storeMaxBytes < 1 {
			fatal(fmt.Errorf("-store-max-bytes %d invalid: want a positive budget", *storeMaxBytes))
		}
		diskStore, err = store.Open(*storeDir, store.Options{MaxBytes: *storeMaxBytes})
		fatal(err)
		defer diskStore.Close()
		c := diskStore.Counters()
		fmt.Fprintf(os.Stderr, "ndaserve: store %s: %d entries, %d bytes (budget %d)\n", *storeDir, c.Entries, c.Bytes, c.MaxBytes)
		if c.DroppedOnOpen > 0 {
			fmt.Fprintf(os.Stderr, "ndaserve: store recovery dropped %d invalid entries\n", c.DroppedOnOpen)
		}
	}
	var sharedStore *store.Store
	switch {
	case *sharedDir == "":
	case len(urls) == 0:
		fatal(fmt.Errorf("-shared-store-dir requires coordinator mode (-workers)"))
	case *sharedDir == *storeDir:
		sharedStore = diskStore
	default:
		sharedStore, err = store.Open(*sharedDir, store.Options{MaxBytes: *storeMaxBytes})
		fatal(err)
		defer sharedStore.Close()
	}

	var fleet *dist.Coordinator
	if len(urls) > 0 {
		if *workerWindow < 1 {
			fatal(fmt.Errorf("-worker-window %d invalid: want a positive window", *workerWindow))
		}
		if _, err := cliutil.PositiveDuration("-cell-timeout", *cellTimeout); err != nil {
			fatal(err)
		}
		if *cellRetries < 0 {
			fatal(fmt.Errorf("-cell-retries %d invalid: want 0 or more", *cellRetries))
		}
		if *hedgeAfter < 0 {
			fatal(fmt.Errorf("-hedge-after %v invalid: want 0 (disabled) or a positive duration", *hedgeAfter))
		}
		opts := dist.Options{
			Window:      *workerWindow,
			CellTimeout: *cellTimeout,
			Retries:     *cellRetries,
			HedgeAfter:  *hedgeAfter,
		}
		// Assign only a live store: boxing a nil *store.Store into the
		// interface field would defeat the coordinator's nil check.
		if sharedStore != nil {
			opts.SharedStore = sharedStore
		}
		fleet, err = dist.New(urls, opts)
		fatal(err)
		defer fleet.Close()
		fmt.Fprintf(os.Stderr, "ndaserve: coordinating %d workers (window %d/worker)\n", len(urls), *workerWindow)
	}

	mgr := serve.NewManager(serve.Config{
		QueueDepth:      *queueDepth,
		JobWorkers:      *jobWorkers,
		SimWorkers:      simN,
		CacheMaxEntries: *cacheMax,
		Fleet:           fleet,
		Store:           diskStore,
		Tenants:         tenants,
	})
	srv := &http.Server{Addr: *addr, Handler: serve.NewHandler(mgr)}
	if len(tenants) > 0 {
		fmt.Fprintf(os.Stderr, "ndaserve: fair-share scheduling across %d tenants (API keys required)\n", len(tenants))
	}

	if *warmFrom != "" {
		req, err := loadWarmRequest(*warmFrom)
		fatal(err)
		j, err := mgr.SubmitWarm(req)
		fatal(err)
		fmt.Fprintf(os.Stderr, "ndaserve: warming cache (%s, job %s)\n", *warmFrom, j.ID())
	}

	// The signal context governs the serving phase only: once it fires we
	// stop listening, then drain the manager on its own budget.
	ctx, stop := cliutil.Context(0)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "ndaserve: listening on %s\n", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		cliutil.Check("ndaserve", err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "ndaserve: draining (new submissions rejected)...")
	drainCtx, cancel := cliutil.Context(*drainTimeout)
	defer cancel()
	// Stop accepting connections first, then drain jobs.
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "ndaserve: http shutdown: %v\n", err)
	}
	if err := mgr.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "ndaserve: drain incomplete, jobs cancelled: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "ndaserve: drained cleanly")
}

// loadWarmRequest resolves the -warm-from argument: the literal "standard"
// selects the built-in figure set (an empty WarmRequest — the manager
// substitutes serve.StandardWarm), anything else is a path to a
// WarmRequest JSON file.
func loadWarmRequest(arg string) (serve.WarmRequest, error) {
	var req serve.WarmRequest
	if arg == "standard" {
		return req, nil
	}
	b, err := os.ReadFile(arg)
	if err != nil {
		return req, fmt.Errorf("-warm-from: %w", err)
	}
	if err := json.Unmarshal(b, &req); err != nil {
		return req, fmt.Errorf("-warm-from %s: %w", arg, err)
	}
	return req, nil
}
