// Command ndaserve runs the simulator as a long-lived HTTP service: a job
// queue with backpressure, a content-addressed result cache that serves
// repeated sweeps, attack matrices, and gadget censuses without
// re-simulation, and Prometheus-style metrics.
//
//	ndaserve                          # listen on :8090
//	ndaserve -addr :9000 -queue 32 -job-workers 4
//
//	curl localhost:8090/healthz
//	curl -X POST 'localhost:8090/v1/sweep?wait=1' -d '{"workloads":["gcc"],"sampling":{"quick":true}}'
//	curl -X POST localhost:8090/v1/attack -d '{"attacks":["meltdown"]}'
//	curl localhost:8090/v1/jobs/job-000002
//	curl localhost:8090/metrics
//
// On SIGINT/SIGTERM the server stops accepting work and drains: queued and
// in-flight jobs finish (bounded by -drain-timeout, after which they are
// cancelled), then the process exits.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"nda/internal/cliutil"
	"nda/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8090", "listen address")
		queueDepth   = flag.Int("queue", 16, "bounded job queue depth; a full queue answers 429")
		jobWorkers   = flag.Int("job-workers", 2, "jobs executing concurrently")
		simWorkers   = flag.Int("sim-workers", 0, "simulation goroutines per job (0 = one per CPU)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "how long shutdown waits for jobs to drain before cancelling them")
	)
	flag.Parse()

	mgr := serve.NewManager(serve.Config{
		QueueDepth: *queueDepth,
		JobWorkers: *jobWorkers,
		SimWorkers: *simWorkers,
	})
	srv := &http.Server{Addr: *addr, Handler: serve.NewHandler(mgr)}

	// The signal context governs the serving phase only: once it fires we
	// stop listening, then drain the manager on its own budget.
	ctx, stop := cliutil.Context(0)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "ndaserve: listening on %s\n", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		cliutil.Check("ndaserve", err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "ndaserve: draining (new submissions rejected)...")
	drainCtx, cancel := cliutil.Context(*drainTimeout)
	defer cancel()
	// Stop accepting connections first, then drain jobs.
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "ndaserve: http shutdown: %v\n", err)
	}
	if err := mgr.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "ndaserve: drain incomplete, jobs cancelled: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "ndaserve: drained cleanly")
}
