// Command ndattack runs the speculative-execution-attack proofs-of-concept
// and reproduces the paper's security results:
//
//	ndattack -matrix           # Table 2 security columns: 9 attacks x 10 configs
//	ndattack -fig4             # Spectre v1 leak series on insecure OoO (cache + BTB)
//	ndattack -fig5             # BTB misprediction penalty
//	ndattack -fig8             # the same series under NDA permissive propagation
//	ndattack -attack meltdown -policy RestrictedLoads
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"nda/internal/attack"
	"nda/internal/cliutil"
	"nda/internal/core"
	"nda/internal/harness"
	"nda/internal/ooo"
)

func main() {
	var (
		matrix     = flag.Bool("matrix", false, "run every attack under every configuration (Tables 1 & 2)")
		fig4       = flag.Bool("fig4", false, "Spectre v1 guess series on insecure OoO (Fig. 4)")
		fig5       = flag.Bool("fig5", false, "BTB misprediction penalty (Fig. 5)")
		fig8       = flag.Bool("fig8", false, "Spectre v1 guess series under NDA permissive (Fig. 8)")
		attackName = flag.String("attack", "", "run one attack (spectre-v1-cache, spectre-v1-btb, meltdown, ssb, lazyfp-rdmsr, gpr-steering)")
		policyName = flag.String("policy", "OoO", "policy for -attack")
		workers    = flag.Int("workers", 0, "parallel matrix workers (0 = one per CPU); verdicts are identical for any value")
		timeout    = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit); SIGINT/SIGTERM cancel the same way")
		jsonOut    = flag.String("json", "", "with -matrix: also write the raw cells (verdicts and timing series) to this file as JSON")
	)
	flag.Parse()
	params := ooo.DefaultParams()

	nworkers, err := cliutil.WorkerCount(*workers)
	check(err)
	tmo, err := cliutil.Timeout(*timeout)
	check(err)

	// The context reaches every PoC core: on timeout or signal, queued
	// matrix cells never start and in-flight PoCs stop mid-simulation.
	ctx, cancel := cliutil.Context(tmo)
	defer cancel()

	ran := false
	if *matrix {
		runMatrix(ctx, params, nworkers, *jsonOut)
		ran = true
	}
	if *fig4 {
		fmt.Println("Fig. 4 — Spectre v1 on insecure OoO (cycles per guess; dip = leaked byte)")
		series(ctx, attack.SpectreV1Cache, core.Baseline(), params)
		series(ctx, attack.SpectreV1BTB, core.Baseline(), params)
		ran = true
	}
	if *fig5 {
		r, err := harness.MeasureFig5(params)
		check(err)
		fmt.Print(harness.RenderFig5(r))
		ran = true
	}
	if *fig8 {
		fmt.Println("Fig. 8 — Spectre v1 under NDA permissive propagation (series flat: no leak)")
		series(ctx, attack.SpectreV1Cache, core.Permissive(), params)
		series(ctx, attack.SpectreV1BTB, core.Permissive(), params)
		ran = true
	}
	if *attackName != "" {
		pol, err := core.ByName(*policyName)
		check(err)
		out, err := attack.RunCtx(ctx, attack.Kind(*attackName), pol, params)
		check(err)
		fmt.Println(out)
		plot(out)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func runMatrix(ctx context.Context, params ooo.Params, workers int, jsonOut string) {
	cells, err := attack.MatrixCtx(ctx, params, workers)
	check(err)
	if jsonOut != "" {
		// The raw grid, timing series included: the golden-identity CI job
		// byte-diffs this against a checked-in golden, so any change to the
		// cycle model that shifts an attack's timing shows up here even if
		// every verdict still matches the paper.
		buf, err := json.MarshalIndent(cells, "", "  ")
		check(err)
		check(os.WriteFile(jsonOut, buf, 0o644))
		fmt.Fprintf(os.Stderr, "wrote %s\n", jsonOut)
	}
	fmt.Println("Attack x configuration matrix (paper Table 2 security columns).")
	fmt.Println("LEAKED = secret byte recovered; blocked = timing series flat.")
	fmt.Println()
	fmt.Printf("%-18s %-16s %-8s", "attack", "class", "channel")
	configs := []string{}
	for _, p := range core.All() {
		configs = append(configs, p.Name)
	}
	configs = append(configs, "In-Order")
	for _, c := range configs {
		fmt.Printf(" %8.8s", c)
	}
	fmt.Println()

	byAttack := map[attack.Kind]map[string]attack.Cell{}
	mismatches := 0
	for _, c := range cells {
		if byAttack[c.Attack] == nil {
			byAttack[c.Attack] = map[string]attack.Cell{}
		}
		byAttack[c.Attack][c.Policy] = c
		if !c.Matches() {
			mismatches++
		}
	}
	for _, k := range attack.All() {
		fmt.Printf("%-18s %-16s %-8s", k, k.Class(), k.Channel())
		for _, cfg := range configs {
			c := byAttack[k][cfg]
			mark := "."
			if c.Outcome != nil && c.Outcome.Leaked {
				mark = "LEAK"
			}
			if c.Outcome != nil && !c.Matches() {
				mark += "!"
			}
			fmt.Printf(" %8s", mark)
		}
		fmt.Println()
	}
	fmt.Println()
	if mismatches == 0 {
		fmt.Println("all verdicts match the paper's Table 2")
	} else {
		fmt.Printf("%d verdicts DIVERGE from the paper (marked with !)\n", mismatches)
		os.Exit(1)
	}
}

func series(ctx context.Context, kind attack.Kind, pol core.Policy, params ooo.Params) {
	out, err := attack.RunCtx(ctx, kind, pol, params)
	check(err)
	fmt.Println()
	fmt.Println(out)
	plot(out)
}

// plot prints a coarse text plot of the 256-guess series, 8 guesses per
// bucket, marking the secret's bucket.
func plot(out *attack.Outcome) {
	max := 0.0
	for _, v := range out.Series {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return
	}
	fmt.Printf("  guess:   min cycles per 8-guess bucket (secret byte %d marked *)\n", out.Secret)
	for b := 0; b < attack.NumGuesses; b += 8 {
		lo := out.Series[b]
		for g := b; g < b+8; g++ {
			if out.Series[g] < lo {
				lo = out.Series[g]
			}
		}
		bar := int(lo / max * 50)
		mark := " "
		if int(out.Secret) >= b && int(out.Secret) < b+8 {
			mark = "*"
		}
		fmt.Printf("  %3d-%3d%s %6.0f |%s\n", b, b+7, mark, lo, bars(bar))
	}
}

func bars(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "#"
	}
	return s
}

func check(err error) { cliutil.Check("ndattack", err) }
