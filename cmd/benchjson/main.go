// Command benchjson converts `go test -bench` output into the repo's
// machine-readable BENCH_<n>.json trajectory format, and compares two such
// files for allocation regressions.
//
//	go test -bench=. -benchmem . | benchjson -index 2 > BENCH_2.json
//	benchjson -compare BENCH_1.json candidate.json
//
// The trajectory convention: BENCH_0.json is the pre-event-loop baseline,
// every later index is one PR's measured state. The bench-trajectory CI
// job regenerates the current numbers and compares them against the
// highest checked-in index: allocs/op and B/op may not regress (hard gate,
// exact for zero-alloc baselines, with a sliver of slack otherwise for
// runtime jitter in the parallel harnesses); timing is reported but not
// gated, so shared-runner noise cannot block a merge.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's measured numbers.
type Benchmark struct {
	Name        string  `json:"name"`          // without the -GOMAXPROCS suffix
	Iterations  int64   `json:"iterations"`    // b.N
	NsPerOp     float64 `json:"ns_per_op"`     // wall time per iteration
	BytesPerOp  float64 `json:"bytes_per_op"`  // -benchmem
	AllocsPerOp float64 `json:"allocs_per_op"` // -benchmem; the CI gate
	// Metrics holds every custom b.ReportMetric unit (sim-inst/s,
	// sim-cycles/s, leak-margin-cycles, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is one BENCH_<n>.json: a point on the perf trajectory.
type File struct {
	Index      int         `json:"index"`
	GoVersion  string      `json:"go_version,omitempty"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		index   = flag.Int("index", -1, "trajectory index to stamp into the output")
		note    = flag.String("note", "", "free-form note stamped into the output")
		compare = flag.String("compare", "", "baseline BENCH_<n>.json: compare a candidate file (second arg) instead of parsing bench output")
	)
	flag.Parse()

	if *compare != "" {
		if flag.NArg() != 1 {
			fatal("usage: benchjson -compare BASELINE.json CANDIDATE.json")
		}
		if err := compareFiles(*compare, flag.Arg(0)); err != nil {
			fatal(err.Error())
		}
		return
	}

	f, err := parse(os.Stdin, *index, *note)
	if err != nil {
		fatal(err.Error())
	}
	if len(f.Benchmarks) == 0 {
		fatal("no benchmark lines found on stdin (want `go test -bench` output)")
	}
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal(err.Error())
	}
	fmt.Println(string(out))
}

// parse reads `go test -bench` output. A benchmark line looks like:
//
//	BenchmarkName-8   100   12345 ns/op   67 custom-unit   8 B/op   2 allocs/op
//
// i.e. the benchmark name, the iteration count, then (value, unit) pairs.
func parse(r *os.File, index int, note string) (*File, error) {
	f := &File{Index: index, Note: note}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "go: ") || strings.HasPrefix(line, "goversion:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the -GOMAXPROCS suffix
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // not a result line (e.g. a benchmark's log output)
		}
		b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				b.Metrics[unit] = val
			}
		}
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		f.Benchmarks = append(f.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(f.Benchmarks, func(i, j int) bool { return f.Benchmarks[i].Name < f.Benchmarks[j].Name })
	return f, nil
}

func load(path string) (*File, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// Gate slack. A zero baseline is gated exactly: a benchmark that measured
// 0 allocs/op must stay at 0 — that is the invariant the trajectory exists
// to pin. Nonzero baselines get a sliver of relative slack plus a small
// absolute floor, because the macro benchmarks drive parallel sweep workers
// and runtime-internal allocations (goroutine stacks, channel internals)
// jitter by a few counts with goroutine interleaving. The slack is far
// below any real regression: one extra allocation per simulated sample
// shows up as thousands of allocs/op.
const (
	relTolerance = 0.005 // 0.5% relative, allocs/op and B/op alike
	allocsFloor  = 2     // absolute slack, allocs/op, nonzero baselines
	bytesFloor   = 512   // absolute slack, B/op, nonzero baselines
)

// limit computes the gated ceiling for a baseline value: exact at zero,
// relative slack plus an absolute floor otherwise.
func limit(old, floor float64) float64 {
	if old == 0 {
		return 0
	}
	return old*(1+relTolerance) + floor
}

// compareFiles enforces the trajectory gate: every benchmark present in
// both files must not regress in allocs/op or bytes/op beyond the slack
// above, and no benchmark from the baseline may disappear. Timing deltas
// are printed for the log but never fail the comparison.
func compareFiles(basePath, candPath string) error {
	base, err := load(basePath)
	if err != nil {
		return err
	}
	cand, err := load(candPath)
	if err != nil {
		return err
	}
	candidates := map[string]Benchmark{}
	for _, b := range cand.Benchmarks {
		candidates[b.Name] = b
	}
	var failures []string
	for _, old := range base.Benchmarks {
		now, ok := candidates[old.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in %s but missing from candidate", old.Name, basePath))
			continue
		}
		if lim := limit(old.AllocsPerOp, allocsFloor); now.AllocsPerOp > lim {
			failures = append(failures, fmt.Sprintf("%s: allocs/op regressed %v -> %v (limit %.0f)", old.Name, old.AllocsPerOp, now.AllocsPerOp, lim))
		}
		if lim := limit(old.BytesPerOp, bytesFloor); now.BytesPerOp > lim {
			failures = append(failures, fmt.Sprintf("%s: B/op regressed %v -> %v (limit %.0f)", old.Name, old.BytesPerOp, now.BytesPerOp, lim))
		}
		delta := "n/a"
		if old.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", (now.NsPerOp/old.NsPerOp-1)*100)
		}
		fmt.Printf("%-40s ns/op %12.0f -> %12.0f  (%s, informational)  allocs/op %v -> %v\n",
			old.Name, old.NsPerOp, now.NsPerOp, delta, old.AllocsPerOp, now.AllocsPerOp)
	}
	if len(failures) > 0 {
		return fmt.Errorf("allocation regression vs %s (index %d):\n  %s",
			basePath, base.Index, strings.Join(failures, "\n  "))
	}
	fmt.Printf("no allocation regressions vs %s (index %d, %d benchmarks)\n", basePath, base.Index, len(base.Benchmarks))
	return nil
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "benchjson:", msg)
	os.Exit(1)
}
