// Command ndalint runs the static speculative-gadget analyzer over every
// built-in program — the attack proof-of-concept snippets and the workload
// kernels — and reports each gadget with its per-policy verdict:
//
//	ndalint                    # census table: programs x policies
//	ndalint -json              # full machine-readable report
//	ndalint -program meltdown  # one program's gadgets with verdict reasons
//	ndalint -check             # CI gate: static verdicts must match Table 2,
//	                           # and workloads must have no chosen-code gadget
package main

import (
	"flag"
	"fmt"
	"os"

	"nda/internal/cliutil"
	"nda/internal/gadget"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit the full report as JSON (stable across worker counts)")
		check   = flag.Bool("check", false, "fail on unexpected findings (attack verdicts vs Table 2; chosen-code gadgets in workloads)")
		program = flag.String("program", "", "detail one built-in program's gadgets and verdict reasons")
		workers = flag.Int("workers", 0, "analysis workers (0 = one per CPU); output is identical for any value")
	)
	flag.Parse()

	ins, err := gadget.Builtins()
	checkErr(err)
	if *program != "" {
		filtered := ins[:0]
		for _, in := range ins {
			if in.Name == *program {
				// Keep the full gadget list even for workloads in detail mode.
				in.Group = "attack"
				filtered = append(filtered, in)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "ndalint: unknown program %q\n", *program)
			os.Exit(2)
		}
		ins = filtered
	}

	report, err := gadget.BuildReport(ins, *workers)
	checkErr(err)

	switch {
	case *jsonOut:
		out, err := report.JSON()
		checkErr(err)
		os.Stdout.Write(out)
	case *program != "":
		for i := range report.Programs {
			fmt.Print(gadget.Detail(&report.Programs[i]))
		}
	default:
		fmt.Print(report.Text())
	}

	if *check {
		if *program != "" {
			fmt.Fprintln(os.Stderr, "ndalint: -check requires the full built-in set (omit -program)")
			os.Exit(2)
		}
		fails := gadget.Check(report)
		if len(fails) > 0 {
			fmt.Fprintf(os.Stderr, "\nndalint: %d unexpected findings:\n", len(fails))
			for i := range fails {
				fmt.Fprintln(os.Stderr, "  "+fails[i].String())
			}
			os.Exit(1)
		}
		fmt.Println("\nndalint: all static verdicts match Table 2; workloads free of chosen-code gadgets")
	}
}

func checkErr(err error) { cliutil.Check("ndalint", err) }
