// Command ndalint runs the static speculative-gadget analyzer over every
// built-in program — the attack proof-of-concept snippets and the workload
// kernels — and reports each gadget with its per-policy verdict:
//
//	ndalint                    # census table: programs x policies
//	ndalint -json              # full machine-readable report
//	ndalint -program meltdown  # one program's gadgets with verdict reasons
//	ndalint -check             # CI gate: static verdicts must match Table 2,
//	                           # and workloads must have no chosen-code gadget
//	ndalint -fuzz 500 -seed 1  # differential soundness sweep: static verdicts
//	                           # vs dynamic simulation over generated programs
//
// Exit codes follow the shared analysis convention: 0 clean, 1 when the
// run surfaces findings — -check mismatches, or any fuzz soundness
// violation or failed program — also under -json, and 2 when the tool
// itself fails (unknown program, contradictory flags).
package main

import (
	"flag"
	"fmt"
	"os"

	"nda/internal/analysis"
	"nda/internal/diffuzz"
	"nda/internal/gadget"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit the full report as JSON (stable across worker counts)")
		check   = flag.Bool("check", false, "fail on unexpected findings (attack verdicts vs Table 2; chosen-code gadgets in workloads)")
		program = flag.String("program", "", "detail one built-in program's gadgets and verdict reasons")
		workers = flag.Int("workers", 0, "analysis workers (0 = one per CPU); output is identical for any value")
		fuzz    = flag.Int("fuzz", 0, "run the differential soundness fuzzer over this many generated programs")
		seed    = flag.Int64("seed", 1, "base seed for -fuzz; seeds are base..base+n-1, so a run is pinned by (seed, fuzz)")
	)
	flag.Parse()

	if *fuzz > 0 {
		if *check || *program != "" {
			fmt.Fprintln(os.Stderr, "ndalint: -fuzz does not combine with -check or -program")
			os.Exit(analysis.ExitToolError)
		}
		runFuzz(*fuzz, *seed, *workers, *jsonOut)
		return
	}

	ins, err := gadget.Builtins()
	toolErr(err)
	if *program != "" {
		filtered := ins[:0]
		for _, in := range ins {
			if in.Name == *program {
				// Keep the full gadget list even for workloads in detail mode.
				in.Group = "attack"
				filtered = append(filtered, in)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "ndalint: unknown program %q\n", *program)
			os.Exit(analysis.ExitToolError)
		}
		ins = filtered
	}

	report, err := gadget.BuildReport(ins, *workers)
	toolErr(err)

	switch {
	case *jsonOut:
		out, err := report.JSON()
		toolErr(err)
		os.Stdout.Write(out)
	case *program != "":
		for i := range report.Programs {
			fmt.Print(gadget.Detail(&report.Programs[i]))
		}
	default:
		fmt.Print(report.Text())
	}

	if *check {
		if *program != "" {
			fmt.Fprintln(os.Stderr, "ndalint: -check requires the full built-in set (omit -program)")
			os.Exit(analysis.ExitToolError)
		}
		fails := gadget.Check(report)
		if len(fails) > 0 {
			fmt.Fprintf(os.Stderr, "\nndalint: %d unexpected findings:\n", len(fails))
			for i := range fails {
				fmt.Fprintln(os.Stderr, "  "+fails[i].String())
			}
			os.Exit(analysis.ExitFindings)
		}
		fmt.Println("\nndalint: all static verdicts match Table 2; workloads free of chosen-code gadgets")
	}
}

// runFuzz drives the differential soundness harness: any failed program
// or soundness violation (static SAFE, dynamic leak) is a finding.
func runFuzz(n int, seed int64, workers int, jsonOut bool) {
	s := diffuzz.Fuzz(diffuzz.Seeds(seed, n), workers)
	if jsonOut {
		out, err := analysis.MarshalReport(s)
		toolErr(err)
		os.Stdout.Write(out)
	} else {
		fmt.Print(s.String())
	}

	bad := s.Failed
	for _, c := range s.Policies {
		bad += c.Unsound
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "ndalint: fuzz sweep over %d programs: %d failed, soundness violations present\n",
			s.Programs, s.Failed)
		for _, f := range s.Failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(analysis.ExitFindings)
	}
	if !jsonOut {
		fmt.Printf("ndalint: fuzz sweep clean — %d programs, zero soundness violations\n", s.Programs)
	}
}

// toolErr reports a tool failure — as opposed to a finding — and exits
// with the shared tool-error code.
func toolErr(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndalint:", err)
		os.Exit(analysis.ExitToolError)
	}
}
