// Command ndavet runs the repo's source-level static analyzer: four
// passes over the whole module proving the determinism and layering
// invariants the golden sweep tests check at runtime.
//
//	ndavet               # run all passes; exit 1 on any unallowed finding
//	ndavet -json         # full machine-readable report (allowed findings included)
//	ndavet -pass detlint # run a subset of passes (comma-separated)
//	ndavet -contract     # print the layer-contract markdown table (README sync)
//	ndavet -C dir        # analyze the module containing dir (default ".")
//
// Passes: detlint (map-iteration order into ordering-sensitive sinks;
// wall-clock and global-randomness reads), layerlint (the declared import
// DAG), locklint (mutexes held across blocking calls in serve/dist/par),
// globlint (mutable package-level state in deterministic packages).
// Sanctioned exceptions carry //ndavet:allow <pass> <reason> annotations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nda/internal/analysis"
	"nda/internal/cliutil"
)

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "emit the full report as JSON, allowed findings included")
		passes   = flag.String("pass", "", "comma-separated subset of passes to run (default: all)")
		contract = flag.Bool("contract", false, "print the layer-contract markdown table and exit")
		dir      = flag.String("C", ".", "directory inside the module to analyze")
	)
	flag.Parse()

	if *contract {
		fmt.Print(analysis.ContractTable(analysis.DefaultContract))
		return
	}

	cfg := analysis.Config{}
	if *passes != "" {
		for _, p := range strings.Split(*passes, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Passes = append(cfg.Passes, p)
			}
		}
	}

	mod, err := analysis.Load(*dir)
	checkErr(err)
	report, err := analysis.RunAll(mod, cfg)
	checkErr(err)

	if *jsonOut {
		out, err := report.JSON()
		checkErr(err)
		os.Stdout.Write(out)
	} else {
		fmt.Print(report.Text())
	}

	open := report.Open()
	allowed := len(report.Findings) - len(open)
	if len(open) > 0 {
		fmt.Fprintf(os.Stderr, "ndavet: %d findings (%d allowed by annotation) over %d packages\n",
			len(open), allowed, len(mod.Pkgs))
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Printf("ndavet: clean — %d packages, %d sanctioned exceptions\n", len(mod.Pkgs), allowed)
	}
}

func checkErr(err error) { cliutil.Check("ndavet", err) }
