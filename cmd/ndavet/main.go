// Command ndavet runs the repo's source-level static analyzer: eight
// passes over the whole module proving the determinism, layering,
// allocation, and cancellation invariants the golden sweep tests check
// at runtime.
//
//	ndavet               # run all passes; exit 1 on any unallowed finding
//	ndavet -json         # full machine-readable report (allowed findings included)
//	ndavet -pass detlint # run a subset of passes (comma-separated)
//	ndavet -list-passes  # print the pass names with one-line descriptions
//	ndavet -contract     # print the layer-contract markdown table (README sync)
//	ndavet -C dir        # analyze the module containing dir (default ".")
//
// Run ndavet -list-passes for the pass roster; the interprocedural
// passes (alloclint, ctxlint, leaklint, and locklint's transitive
// events) share one call graph with bottom-up dataflow summaries.
// Sanctioned exceptions carry //ndavet:allow <pass>[:<kind>] <reason>
// annotations.
//
// Exit codes follow the shared analysis convention: 0 clean, 1 when open
// findings remain (also under -json), 2 when the tool itself fails.
package main

import (
	"flag"
	"fmt"
	"os"

	"nda/internal/analysis"
	"nda/internal/cliutil"
)

func main() {
	var (
		jsonOut    = flag.Bool("json", false, "emit the full report as JSON, allowed findings included")
		passes     = flag.String("pass", "", "comma-separated subset of passes to run (default: all)")
		listPasses = flag.Bool("list-passes", false, "print the pass names with one-line descriptions and exit")
		contract   = flag.Bool("contract", false, "print the layer-contract markdown table and exit")
		dir        = flag.String("C", ".", "directory inside the module to analyze")
	)
	flag.Parse()

	if *listPasses {
		for _, name := range analysis.PassNames {
			fmt.Printf("%-10s %s\n", name, analysis.PassDocs[name])
		}
		return
	}
	if *contract {
		fmt.Print(analysis.ContractTable(analysis.DefaultContract))
		return
	}

	cfg := analysis.Config{}
	sel, err := cliutil.Passes(*passes, analysis.PassNames)
	toolErr(err)
	cfg.Passes = sel

	mod, err := analysis.Load(*dir)
	toolErr(err)
	report, err := analysis.RunAll(mod, cfg)
	toolErr(err)

	if *jsonOut {
		out, err := report.JSON()
		toolErr(err)
		os.Stdout.Write(out)
	} else {
		fmt.Print(report.Text())
	}

	open := report.Open()
	allowed := len(report.Findings) - len(open)
	if len(open) > 0 {
		fmt.Fprintf(os.Stderr, "ndavet: %d findings (%d allowed by annotation) over %d packages\n",
			len(open), allowed, len(mod.Pkgs))
	} else if !*jsonOut {
		fmt.Printf("ndavet: clean — %d packages, %d sanctioned exceptions\n", len(mod.Pkgs), allowed)
	}
	os.Exit(report.ExitCode())
}

// toolErr reports a tool failure — as opposed to a finding — and exits
// with the shared tool-error code.
func toolErr(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndavet:", err)
		os.Exit(analysis.ExitToolError)
	}
}
