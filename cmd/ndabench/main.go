// Command ndabench runs the paper's performance evaluation and prints each
// table and figure as text:
//
//	ndabench                    # everything (Fig 7, Table 2/3, Fig 9a-e)
//	ndabench -quick             # reduced sampling for a fast smoke run
//	ndabench -experiments fig7,table2
//	ndabench -workloads mcf,gcc,bwaves
//	ndabench -timeout 5m        # abort (with cores stopped mid-cell) after 5 minutes
//	ndabench -remote http://coordinator:8090   # sweep served by ndaserve (or a fleet)
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"nda/internal/cliutil"
	"nda/internal/core"
	"nda/internal/dist"
	"nda/internal/harness"
	"nda/internal/ooo"
	"nda/internal/serve"
	"nda/internal/workload"
)

func main() {
	var (
		quick       = flag.Bool("quick", false, "reduced sampling (faster, noisier)")
		experiments = flag.String("experiments", "table3,fig5,fig7,table2,fig9a,fig9bcd,fig9e", "comma-separated list")
		workloads   = flag.String("workloads", "", "benchmark subset (default: all 23 SPEC proxies)")
		verbose     = flag.Bool("v", false, "print per-cell progress")
		jsonOut     = flag.String("json", "", "also write the raw sweep measurements to this file as JSON")
		checkpoints = flag.Bool("checkpoints", false, "sample via functional-fast-forward checkpoints (Lapidary/SMARTS style)")
		workers     = flag.Int("workers", 0, "parallel simulation workers (0 = one per CPU); results are identical for any value")
		timeout     = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit); SIGINT/SIGTERM cancel the same way")
		remote      = flag.String("remote", "", "fetch the sweep from this ndaserve URL (a single server or a fleet coordinator) instead of simulating in-process; sweep results are byte-compatible either way")
	)
	flag.Parse()

	nworkers, err := cliutil.WorkerCount(*workers)
	check(err)
	tmo, err := cliutil.Timeout(*timeout)
	check(err)
	if *remote != "" {
		_, err := dist.ParseWorkerURL(*remote)
		check(err)
	}

	// The context reaches every simulation core: on timeout or signal,
	// queued cells never start, in-flight cells stop within a few thousand
	// simulated cycles, and no further progress lines are printed.
	ctx, cancel := cliutil.Context(tmo)
	defer cancel()

	cfg := harness.DefaultConfig()
	if *quick {
		cfg = harness.Quick()
	}
	cfg.UseCheckpoints = *checkpoints
	cfg.Workers = nworkers

	specs, err := cliutil.Specs(*workloads)
	check(err)

	want := map[string]bool{}
	for _, e := range strings.Split(*experiments, ",") {
		want[strings.TrimSpace(e)] = true
	}

	if want["table3"] {
		fmt.Println(harness.RenderTable3(ooo.DefaultParams()))
	}
	if want["fig5"] {
		r, err := harness.MeasureFig5(ooo.DefaultParams())
		check(err)
		fmt.Println(harness.RenderFig5(r))
	}

	var sw *harness.Sweep
	if want["fig7"] || want["table2"] || want["fig9a"] || want["fig9bcd"] {
		if *remote != "" {
			sw, err = remoteSweep(ctx, *remote, specs, *quick, *checkpoints)
		} else {
			var progress func(string)
			if *verbose {
				progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
			}
			sw, err = harness.RunSweepCtx(ctx, specs, core.All(), true, cfg, progress)
		}
		check(err)
	}
	if sw != nil && *jsonOut != "" {
		buf, err := json.MarshalIndent(sw, "", "  ")
		check(err)
		check(os.WriteFile(*jsonOut, buf, 0o644))
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
	if want["fig7"] {
		fmt.Println(harness.RenderFig7(sw))
	}
	if want["table2"] {
		fmt.Println(harness.RenderTable2(sw))
	}
	if want["fig9a"] {
		fmt.Println(harness.RenderFig9a(sw))
	}
	if want["fig9bcd"] {
		fmt.Println(harness.RenderFig9bcd(sw))
	}
	if want["fig9e"] {
		names := []string{"gcc", "deepsjeng", "xalancbmk", "perlbench"}
		if *workloads != "" {
			names = nil
			for _, s := range specs {
				names = append(names, s.Name)
			}
		}
		rs, err := harness.RunFig9eCtx(ctx, "Permissive", []int{0, 1, 2}, names, cfg)
		check(err)
		fmt.Println(harness.RenderFig9e(rs))
	}
}

// remoteSweep fetches the sweep from a running ndaserve — a single server
// or a fleet coordinator; the returned grid is the same one a local
// harness.RunSweep builds, so every renderer downstream is unchanged.
// Table 3, Fig. 5, and Fig. 9e still run in-process: they are single
// measurements, not sweeps.
func remoteSweep(ctx context.Context, base string, specs []workload.Spec, quick, checkpoints bool) (*harness.Sweep, error) {
	req := serve.SweepRequest{Sampling: serve.SamplingSpec{Quick: quick, Checkpoints: checkpoints}}
	for _, s := range specs {
		req.Workloads = append(req.Workloads, s.Name)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/sweep?wait=1", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("remote sweep: %w", err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("remote sweep: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("remote sweep: %s: %s", resp.Status, strings.TrimSpace(string(out)))
	}
	var sr serve.SweepResponse
	if err := json.Unmarshal(out, &sr); err != nil {
		return nil, fmt.Errorf("remote sweep: undecodable response: %w", err)
	}
	return sr.Sweep, nil
}

func check(err error) { cliutil.Check("ndabench", err) }
