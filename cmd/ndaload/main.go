// Command ndaload is the serving-layer load generator: it replays
// realistic multi-tenant request mixes against an ndaserve instance and
// reports per-tenant latency quantiles (p50/p95/p99), throughput, and
// Jain's fairness index, with optional saturation search and
// benchjson-compatible output for the BENCH_<n>.json trajectory.
//
//	ndaload -target http://127.0.0.1:8090 -duration 10s
//	ndaload -inproc -load 'greedy:kg:8:hot,light:kl:1:hot' \
//	        -tenants 'greedy:kg:1,light:kl:1' -duration 5s -min-jain 0.5
//	ndaload -inproc -saturation -bench Hot
//
// Each -load entry is name:key:workers[:mix[:rate[:weight]]]: a tenant's
// closed-loop worker count (or open-loop arrival rate), the request mix it
// replays (hot, longtail, attack, gadgets, cancel), and its fair-share
// weight for the weighted Jain index. With -inproc the server runs in this
// process on a loopback port — the load still flows over real HTTP — which
// is how the bench trajectory measures the serving path without external
// orchestration.
//
// Exit status: 0 on success, 1 if an SLO gate (-slo-warm-p99, -min-jain,
// -min-tenant-completed) fails, 2 on configuration or run errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"nda/internal/cliutil"
	"nda/internal/load"
	"nda/internal/serve"
)

func main() {
	var (
		target  = flag.String("target", "", "ndaserve base URL to load (or use -inproc)")
		inproc  = flag.Bool("inproc", false, "start an in-process server on a loopback port and load that")
		tenants = flag.String("tenants", "", "-inproc only: server tenant config name:key:weight[:rate[:burst[:inflight]]]; empty = single-tenant")

		loads    = flag.String("load", "local::2", "tenant load list name:key:workers[:mix[:rate[:weight]]]")
		mix      = flag.String("mix", "hot", "default mix for -load entries that omit one (hot, longtail, attack, gadgets, cancel)")
		rate     = flag.Float64("rate", 0, "override every tenant's open-loop arrival rate in requests/s (0 = keep per-entry rates)")
		duration = flag.Duration("duration", 5*time.Second, "measured window")
		seed     = flag.Int64("seed", 1, "request-stream seed")
		stream   = flag.String("stream", "wait", "completion observation: wait, poll, or sse")
		warmup   = flag.Bool("warmup", true, "replay each warmable mix once, unmeasured, before the clock starts")

		saturation = flag.Bool("saturation", false, "after the mix run, search for saturation throughput by doubling closed-loop workers")
		satMax     = flag.Int("saturation-max-workers", 32, "worker cap for the saturation search")

		bench   = flag.String("bench", "", "emit benchjson-parseable result lines labelled BenchmarkLoad<name> on stdout")
		jsonOut = flag.Bool("json", false, "emit the full report as JSON on stdout")

		sloWarmP99 = flag.Duration("slo-warm-p99", 0, "fail (exit 1) if aggregate p99 latency exceeds this (0 = no gate)")
		minJain    = flag.Float64("min-jain", 0, "fail (exit 1) if the weighted Jain index falls below this (0 = no gate)")
		minTenant  = flag.Int64("min-tenant-completed", 0, "fail (exit 1) if any tenant completes fewer requests than this (0 = no gate)")

		// -inproc server shape (mirrors ndaserve's flags).
		queueDepth = flag.Int("queue", 16, "-inproc: bounded job queue depth")
		jobWorkers = flag.Int("job-workers", 2, "-inproc: jobs executing concurrently")
		simWorkers = flag.Int("sim-workers", 0, "-inproc: simulation goroutines per job (0 = one per CPU)")
	)
	flag.Parse()
	fatal := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "ndaload: %v\n", err)
			os.Exit(2)
		}
	}

	mode, err := cliutil.StreamMode(*stream)
	fatal(err)
	rateOverride, err := cliutil.Rate(*rate)
	fatal(err)
	if _, err := cliutil.PositiveDuration("-duration", *duration); err != nil {
		fatal(err)
	}
	defMix, err := load.ParseMix(*mix)
	fatal(err)
	tls, err := load.ParseLoads(*loads, defMix)
	fatal(err)
	if rateOverride > 0 {
		for i := range tls {
			tls[i].Rate = rateOverride
		}
	}

	base := *target
	switch {
	case *inproc && base != "":
		fatal(fmt.Errorf("-target and -inproc are mutually exclusive"))
	case *inproc:
		simN, err := cliutil.WorkerCount(*simWorkers)
		fatal(err)
		serverTenants, err := cliutil.Tenants(*tenants)
		fatal(err)
		var shutdown func()
		base, _, shutdown, err = load.StartLocal(serve.Config{
			QueueDepth: *queueDepth,
			JobWorkers: *jobWorkers,
			SimWorkers: simN,
			Tenants:    serverTenants,
		})
		fatal(err)
		defer shutdown()
		fmt.Fprintf(os.Stderr, "ndaload: in-process server on %s\n", base)
	case base == "":
		fatal(fmt.Errorf("need -target URL or -inproc"))
	}

	ctx, stop := cliutil.Context(0)
	defer stop()

	cfg := load.Config{
		BaseURL:  base,
		Loads:    tls,
		Duration: *duration,
		Seed:     *seed,
		Await:    load.Await(mode),
		Warmup:   *warmup,
	}
	rep, err := load.Run(ctx, cfg)
	fatal(err)
	printReport(rep)

	var sat *load.Saturation
	if *saturation {
		satCfg := cfg
		satCfg.Loads = tls[:1]
		satCfg.Warmup = false // the mix run already warmed the cache
		sat, err = load.Saturate(ctx, satCfg, *satMax)
		fatal(err)
		fmt.Fprintf(os.Stderr, "saturation: %.1f req/s at %d workers", sat.Throughput, sat.Workers)
		for _, p := range sat.Points {
			fmt.Fprintf(os.Stderr, "  [%d: %.1f]", p.Workers, p.Throughput)
		}
		fmt.Fprintln(os.Stderr)
	}

	if *jsonOut {
		out := struct {
			*load.Report
			Saturation *load.Saturation `json:"saturation,omitempty"`
		}{rep, sat}
		buf, err := json.MarshalIndent(out, "", "  ")
		fatal(err)
		fmt.Println(string(buf))
	}
	if *bench != "" {
		fmt.Println(load.BenchLine(*bench, rep))
		if sat != nil {
			fmt.Printf("BenchmarkLoad%sSaturation 1 0 ns/op %.1f req/s %d sat-workers\n",
				*bench, sat.Throughput, sat.Workers)
		}
	}

	failed := false
	gate := func(ok bool, format string, args ...any) {
		if !ok {
			failed = true
			fmt.Fprintf(os.Stderr, "ndaload: SLO FAIL: "+format+"\n", args...)
		}
	}
	if *sloWarmP99 > 0 {
		p99 := time.Duration(rep.Latency.P99 * float64(time.Millisecond))
		gate(rep.Completed > 0 && p99 <= *sloWarmP99, "p99 %.2fms over %v (completed %d)", rep.Latency.P99, *sloWarmP99, rep.Completed)
	}
	if *minJain > 0 {
		gate(rep.JainWeighted >= *minJain, "weighted Jain %.3f below %.3f", rep.JainWeighted, *minJain)
	}
	if *minTenant > 0 {
		for _, tr := range rep.Tenants {
			gate(tr.Completed >= *minTenant, "tenant %s completed %d < %d", tr.Name, tr.Completed, *minTenant)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// printReport writes the human-readable run summary to stderr (stdout is
// reserved for -json and -bench output).
func printReport(r *load.Report) {
	fmt.Fprintf(os.Stderr, "ndaload: %.1fs %s: %d requests, %d completed, %d rejected, %d errors, %.1f req/s\n",
		r.DurationSec, r.Await, r.Requests, r.Completed, r.Rejected, r.Errors, r.Throughput)
	fmt.Fprintf(os.Stderr, "  latency ms: p50 %.2f  p95 %.2f  p99 %.2f  max %.2f   jain %.3f (weighted %.3f)\n",
		r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.Max, r.Jain, r.JainWeighted)
	for _, tr := range r.Tenants {
		fmt.Fprintf(os.Stderr, "  %-10s %-8s w%-3d %5d done %4d rej %4d quota %3d err  %7.1f req/s  p99 %.2fms\n",
			tr.Name, tr.Mix, tr.Weight, tr.Completed, tr.Rejected, tr.Quota, tr.Errors, tr.Throughput, tr.Latency.P99)
	}
}
