package nda_test

import (
	"fmt"
	"strings"
	"testing"

	"nda"
)

func TestPublicQuickstart(t *testing.T) {
	prog, err := nda.Assemble(`
main:   li   t0, 1
        li   t1, 10
loop:   add  t0, t0, t0
        addi t1, t1, -1
        bne  t1, zero, loop
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	c := nda.NewCore(prog, nda.FullProtection(), nda.DefaultParams())
	if err := c.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := c.Reg(5); got != 1024 {
		t.Errorf("t0 = %d, want 1024", got)
	}
	if c.Stats().CPI() <= 0 {
		t.Error("no CPI")
	}
}

func TestPublicPolicies(t *testing.T) {
	if len(nda.Policies()) != 9 {
		t.Errorf("expected 9 configurations, got %d", len(nda.Policies()))
	}
	p, err := nda.PolicyByName("Strict+BR")
	if err != nil || p.Name != "Strict+BR" {
		t.Errorf("PolicyByName: %v %v", p, err)
	}
	if nda.Baseline().Secure() || !nda.FullProtection().Secure() {
		t.Error("Secure() flags wrong")
	}
}

func TestPublicAttack(t *testing.T) {
	out, err := nda.RunAttack(nda.SpectreV1Cache, nda.Baseline(), nda.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Leaked {
		t.Error("insecure baseline must leak")
	}
	out, err = nda.RunAttack(nda.SpectreV1Cache, nda.Permissive(), nda.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if out.Leaked {
		t.Error("NDA must block the attack")
	}
}

func TestPublicBenchmarks(t *testing.T) {
	if len(nda.Benchmarks()) != 23 {
		t.Errorf("expected 23 SPEC proxies, got %d", len(nda.Benchmarks()))
	}
	if len(nda.GenericWorkloads()) == 0 {
		t.Error("no generic workloads")
	}
	b, err := nda.BenchmarkByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	cfg := nda.QuickHarnessConfig()
	cfg.WarmInsts, cfg.MeasureInsts, cfg.SkipInsts, cfg.Intervals = 2000, 2000, 1000, 2
	m, err := nda.Measure(b, nda.Baseline(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.CPI.Mean <= 0 {
		t.Error("no measurement")
	}
}

func TestPublicInOrder(t *testing.T) {
	prog := nda.MustAssemble("main: li t0, 7\nhalt")
	m := nda.NewInOrder(prog, nda.DefaultInOrderParams())
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if m.Emu().Regs[5] != 7 {
		t.Error("in-order result wrong")
	}
}

func TestPublicRandomProgram(t *testing.T) {
	p := nda.RandomProgram(1, 50)
	if len(p.Insts) == 0 {
		t.Error("empty random program")
	}
}

func TestPublicFig5(t *testing.T) {
	r, err := nda.MeasureFig5(nda.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Penalty() <= 0 {
		t.Errorf("penalty = %d", r.Penalty())
	}
	if !strings.Contains(nda.RenderFig5(r), "mispredicted") {
		t.Error("render incomplete")
	}
}

// ExampleAssemble demonstrates the assembler and the reference run flow.
func ExampleAssemble() {
	prog := nda.MustAssemble(`
main:   li   a0, 6
        li   a1, 7
        mul  a0, a0, a1
        halt
`)
	c := nda.NewCore(prog, nda.Baseline(), nda.DefaultParams())
	if err := c.Run(100_000); err != nil {
		panic(err)
	}
	fmt.Println(c.Reg(10))
	// Output: 42
}

// ExampleRunAttack shows the Spectre v1 verdict under two policies.
func ExampleRunAttack() {
	for _, pol := range []nda.Policy{nda.Baseline(), nda.FullProtection()} {
		out, err := nda.RunAttack(nda.SpectreV1Cache, pol, nda.DefaultParams())
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s leaked=%v\n", pol.Name, out.Leaked)
	}
	// Output:
	// OoO leaked=true
	// FullProtection leaked=false
}
