package attack

import (
	"nda/internal/inorder"
	"nda/internal/isa"
	"nda/internal/ooo"
)

// specMeltdown builds the Listing 2 PoC: a user-mode load of a kernel byte.
// On vulnerable hardware (Params.MeltdownVulnerable) the loaded value flows
// to wrong-path dependents before the permission fault is taken at commit;
// the dependents transmit it through the D-cache. A cold load ahead of the
// faulting load keeps it away from the ROB head long enough for the
// transmit to land (the standard Meltdown retirement-delay trick).
func specMeltdown() (*spec, error) {
	src := `
        .data
        .org 0x100000
cold:   .word64 7            # flushed, to delay the fault at commit
        .org 0x102000
        .kernel
ksecret: .byte 42            # kernel-only page
` + dataCommon + `
        .text
main:   la   t0, handler
        wrmsr 0x0, t0        # install the fault handler
` + flushProbe + `
        la   s2, cold
        clflush (s2)
        la   s3, ksecret
        la   s4, probe
        ld   t6, (s2)        # cold: blocks retirement for ~140 cycles
        lbu  t1, (s3)        # ACCESS: faulting kernel load (data forwards!)
        slli t1, t1, 9
        add  t2, s4, t1
        lbu  t3, (t2)        # TRANSMIT: lands before the fault commits
        halt                 # never reached: the fault vectors to handler

handler:
` + recoverCache + `
        halt
`
	return &spec{
		prog:        mustBuild(src),
		resultsAddr: 0x240000,
		threshold:   40,
		setup: func(c *ooo.Core) {
			// The kernel recently touched its own secret: the line is warm
			// (Meltdown reads leak from the cache, not from DRAM).
			c.Hierarchy().Data(0x102000)
		},
	}, nil
}

// specLazyFP builds the LazyFP / Meltdown-v3a analogue: a privileged RDMSR
// whose value flows to wrong-path dependents before the privilege fault is
// taken. NDA treats RDMSR like a load (§4.3), so load restriction blocks it.
func specLazyFP() (*spec, error) {
	src := `
        .data
        .org 0x100000
cold:   .word64 7
` + dataCommon + `
        .text
main:   la   t0, handler
        wrmsr 0x0, t0
` + flushProbe + `
        la   s2, cold
        clflush (s2)
        la   s4, probe
        ld   t6, (s2)        # blocks retirement
        rdmsr t1, 0x10       # ACCESS: privileged MSR read, faults at commit
        andi t1, t1, 0xff
        slli t1, t1, 9
        add  t2, s4, t1
        lbu  t3, (t2)        # TRANSMIT
        halt

handler:
` + recoverCache + `
        halt
`
	return &spec{
		prog:        mustBuild(src),
		resultsAddr: 0x240000,
		threshold:   40,
		setup: func(c *ooo.Core) {
			c.SetMSR(isa.MSRSecretKey, SecretByte)
		},
		setupInOrder: func(m *inorder.Machine) {
			m.Emu().MSR[isa.MSRSecretKey] = SecretByte
		},
	}, nil
}

// specSSB builds the Speculative Store Bypass (Spectre v4) PoC: a
// sanitizing store's address resolves slowly, a younger load to the same
// location speculatively bypasses it and reads the stale secret, and the
// dependents transmit it before the memory-order violation squashes them.
func specSSB() (*spec, error) {
	src := `
        .data
        .org 0x100000
slot:   .word64 42           # stale secret still in the slot
        .word64 0            # slot+8: same line, no secret
        .org 0x101000
cold:   .word64 7
` + dataCommon + `
        .text
main:   la   s4, slot
        ld   t4, 8(s4)       # victim activity keeps the slot's line warm
` + flushProbe + `
        la   s3, slot        # (after flushProbe: it clobbers s1-s3)
        la   s2, cold
        clflush (s2)
        la   s4, probe
        # Sanitizing store whose address depends on a cold load:
        ld   t6, (s2)        # ~140 cycles
        andi t6, t6, 0       # == 0, but dependent on the cold load
        add  t5, s3, t6      # t5 = slot, resolved late
        sd   zero, (t5)      # store: address unresolved for ~140 cycles
        # The victim's subsequent use of the slot:
        ld   t1, (s3)        # ACCESS: bypasses the store, reads stale 42
        andi t1, t1, 0xff
        slli t1, t1, 9
        add  t2, s4, t1
        lbu  t3, (t2)        # TRANSMIT (squashed later, trace remains)
` + recoverCache + `
        halt
`
	return &spec{
		prog:        mustBuild(src),
		resultsAddr: 0x240000,
		threshold:   40,
	}, nil
}
