package attack

import (
	"fmt"
	"strings"
)

// specSpectreV1Cache builds the Listing 1 PoC: a bounds-check-bypass read
// of a secret byte, transmitted through the D-cache and recovered by timing
// probe-array loads.
//
// Layout: array is 16 bytes (size=16); the secret byte sits at array+48,
// inside array's cache line (so the victim's ordinary activity keeps it
// warm) but outside the architecturally permitted bounds.
func specSpectreV1Cache() (*spec, error) {
	src := `
        .data
        .org 0x100000
size:   .word64 16           # own cache line: flushing it leaves array warm
        .align 64
array:  .space 48
secret: .byte 42             # array+48: same line as array, out of bounds
` + dataCommon + `
        .text
main:
` + uniq(trainVictim(16), 1) + flushProbe + `
        la   s2, size
        clflush (s2)         # slow bounds check = wide speculation window
        li   a0, 48          # out-of-bounds index reaching the secret
        call victim
` + recoverCache + `
        halt

# victim(a0 = x): if (x < size) { t = probe[array[x] * 512]; }
victim: la   t0, size
        ld   t1, (t0)        # flushed by the attacker: resolves late
        bge  a0, t1, vend    # bounds check, mis-trained not-taken
        la   t2, array
        add  t2, t2, a0
        lbu  t3, (t2)        # ACCESS: read the secret
        slli t3, t3, 9       # pre-process: *512
        la   t4, probe
        add  t4, t4, t3
        lbu  t5, (t4)        # TRANSMIT: touch probe[secret*512]
vend:   ret
`
	return &spec{
		prog:        mustBuild(src),
		resultsAddr: 0x240000,
		threshold:   40, // D-cache hit vs DRAM miss: ~140 cycles apart
	}, nil
}

// specSpectreV1BTB builds the Listing 3 PoC: the same bounds-check bypass,
// but the secret is transmitted through the branch target buffer. The
// wrong-path victim calls jumpToTarget(secret), installing
// targets[secret] as the predicted target of the single fixed-PC indirect
// call; the recover phase times jumpToTarget(guess) — only the correct
// guess predicts right and skips the ~16-cycle squash.
func specSpectreV1BTB() (*spec, error) {
	var b strings.Builder
	b.WriteString(`
        .data
        .org 0x100000
size:   .word64 16           # own cache line: flushing it leaves array warm
        .align 64
array:  .space 48
secret: .byte 42
        .org 0x100fc0
dummy:  .word64 0            # flush target for training iterations
        .org 0x110000
inputs: .byte 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 48
        # Padding indices stay out-of-bounds: the mispredicted phantom
        # iteration after loop exit then re-transmits the secret instead of
        # clobbering the BTB entry with targets[array[0]].
        .byte 48, 48, 48, 48, 48, 48, 48, 48
        .align 64
targets:
`)
	// The 256 distinct target functions.
	b.WriteString("        .word64 ")
	for i := 0; i < NumGuesses; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "f%d", i)
	}
	b.WriteString("\n")
	b.WriteString(`
        .org 0x240000
results: .space 2048
        .text
main:   li   sp, 0x280000    # small stack for jumpToTarget
        # Warm the table, the target functions, and the BTB machinery.
        li   s1, 0
warm:   mv   a0, s1
        call jmp2t
        addi s1, s1, 1
        slti s3, s1, 256
        bne  s3, zero, warm

        li   s5, 0           # guess
        la   s6, results
        # Each round runs 15 in-bounds training calls and then the
        # out-of-bounds attack call through the SAME loop, so every call
        # sees an identical global-history context: the attack call
        # inherits the trained not-taken prediction and cannot self-train
        # the predictor against the attacker across rounds.
round:  li   s1, 0
        # Flush "size" only on the attack iteration (branchless select, so
        # the history context stays identical): training calls then resolve
        # their bounds check quickly and drain before the attack call, which
        # keeps their architectural jumpToTarget(0) BTB updates from landing
        # after the attack's wrong-path transmit.
iter:   slti s4, s1, 15      # 1 while training, 0 on the attack iteration
        addi s4, s4, -1      # 0 while training, -1 on the attack iteration
        la   s2, dummy
        la   s3, size
        sub  s3, s3, s2
        and  s3, s3, s4      # 0 or (size - dummy)
        add  s2, s2, s3      # dummy or size
        clflush (s2)
        fence                # order the flush before the victim's size load
        la   s2, inputs
        add  s2, s2, s1
        lbu  a0, (s2)
        call victim          # last iteration TRANSMITs via the BTB
        addi s1, s1, 1
        slti s3, s1, 16
        bne  s3, zero, iter

        rdcycle s8
        xor  a0, s8, s8
        add  a0, a0, s5      # a0 = guess, serialized behind rdcycle
        call jmp2t           # RECOVER: correct guess -> BTB predicts right
        rdcycle s7
        sub  s7, s7, s8
        sd   s7, (s6)
        fence                # keep next-round run-ahead from touching the
                             # BTB before the measured call resolves

        addi s6, s6, 8
        addi s5, s5, 1
        slti s3, s5, 256
        bne  s3, zero, round
        halt

# jumpToTarget(a0 = index): targets[index]() from one fixed call site.
jmp2t:  la   t0, targets
        slli t1, a0, 3
        add  t0, t0, t1
        ld   t2, (t0)
        addi sp, sp, -8
        sd   ra, (sp)
        callr t2             # the single BTB entry the channel lives in
        ld   ra, (sp)
        addi sp, sp, 8
        ret

# victim(a0 = x): if (x < size) { jumpToTarget(array[x]); }
victim: mv   s11, ra         # the nested call below clobbers ra
        la   t0, size
        ld   t1, (t0)
        bge  a0, t1, vend
        la   t2, array
        add  t2, t2, a0
        lbu  t3, (t2)        # ACCESS
        mv   a0, t3
        call jmp2t           # TRANSMIT via BTB update
vend:   mv   ra, s11
        ret
`)
	for i := 0; i < NumGuesses; i++ {
		fmt.Fprintf(&b, "f%d:    ret\n", i)
	}
	return &spec{
		prog:        mustBuild(b.String()),
		resultsAddr: 0x240000,
		threshold:   6, // BTB mispredict penalty: ~16 cycles
	}, nil
}

// specGPRSteering builds the hypothetical §4.2 attack: the secret already
// sits in a victim GPR (s5); the mis-steered wrong path pre-processes and
// transmits it with no access-phase load at all. Permissive propagation
// cannot stop it (non-loads stay safe); strict propagation breaks the
// pre-processing chain.
func specGPRSteering() (*spec, error) {
	src := `
        .data
        .org 0x100000
size:   .word64 16
        .align 64
array:  .space 16
` + dataCommon + `
        .text
main:   li   s5, 42           # the victim legitimately holds a secret GPR
` + uniq(trainVictim(16), 1) + flushProbe + `
        la   s2, size
        clflush (s2)
        li   a0, 48
        call victim
` + recoverCache + `
        halt

victim: la   t0, size
        ld   t1, (t0)
        bge  a0, t1, vend
        andi t3, s5, 0xff    # pre-process the GPR-resident secret
        slli t3, t3, 9
        la   t4, probe
        add  t4, t4, t3
        lbu  t5, (t4)        # TRANSMIT
vend:   ret
`
	return &spec{
		prog:        mustBuild(src),
		resultsAddr: 0x240000,
		threshold:   40,
	}, nil
}

// specGPRSteeringSpecOff is the §8 / Listing 4 software defense applied to
// the GPR-steering attack: the victim disables speculation (SPECOFF) for
// the window in which the secret lives in a register and re-enables it
// afterwards. With the front end serialized at every branch, there is no
// wrong path to steer — the attack fails under every policy, including the
// insecure baseline. (The paper notes this defense is only meaningful in
// addition to NDA: without NDA an attacker could steer execution around the
// SPECOFF itself in victims with richer control flow.)
func specGPRSteeringSpecOff() (*spec, error) {
	src := `
        .data
        .org 0x100000
size:   .word64 16
        .align 64
array:  .space 16
` + dataCommon + `
        .text
main:   li   s5, 42
` + uniq(trainVictim(16), 1) + flushProbe + `
        la   s2, size
        clflush (s2)
        li   a0, 48
        call victim
` + recoverCache + `
        halt

victim: specoff              # Listing 4: close the speculation window
        la   t0, size
        ld   t1, (t0)
        bge  a0, t1, vend    # no prediction: fetch waits for resolution
        andi t3, s5, 0xff
        slli t3, t3, 9
        la   t4, probe
        add  t4, t4, t3
        lbu  t5, (t4)
vend:   specon
        ret
`
	return &spec{
		prog:        mustBuild(src),
		resultsAddr: 0x240000,
		threshold:   40,
	}, nil
}
