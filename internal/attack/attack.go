// Package attack implements proofs-of-concept for the speculative execution
// attacks the paper analyzes, as programs for the simulated ISA:
//
//   - Spectre v1 with the classic D-cache covert channel (Listing 1);
//   - Spectre v1 with the paper's new BTB covert channel (§3, Listing 3);
//   - Spectre v2 (branch target injection through the BTB) and ret2spec
//     (return stack buffer mis-steering), the remaining control-steering
//     rows of Table 1;
//   - Meltdown: a faulting kernel load whose data flows to wrong-path
//     dependents before the fault commits (Listing 2);
//   - Speculative Store Bypass (Spectre v4): a load speculatively reading
//     stale data past a store with an unresolved address;
//   - a LazyFP / Meltdown-v3a analogue: a privileged RDMSR leaking a
//     special register;
//   - the hypothetical single-gadget GPR-steering attack of §4.2, which
//     transmits a register-resident secret with no access-phase load.
//
// Every PoC plants the secret byte 42, runs the three phases
// (access/transmit/recover) on a simulated core, and returns the per-guess
// timing series the paper plots in Fig. 4 / Fig. 8 plus a leak verdict. The
// expected leak/block outcome for every (attack, policy) pair — Table 2's
// security columns — is encoded in Expected and verified by the integration
// tests.
package attack

import (
	"context"
	"fmt"
	"sort"

	"nda/internal/asm"
	"nda/internal/core"
	"nda/internal/inorder"
	"nda/internal/isa"
	"nda/internal/ooo"
)

// SecretByte is the value every PoC plants and tries to exfiltrate.
const SecretByte = 42

// NumGuesses is the size of the guess space (one byte).
const NumGuesses = 256

// Common data-layout constants shared by the PoC programs.
const (
	probeStride = 512 // bytes between probe entries, as in the paper's PoCs
)

// Kind identifies one attack PoC.
type Kind string

// The implemented attacks.
const (
	SpectreV1Cache Kind = "spectre-v1-cache"
	SpectreV1BTB   Kind = "spectre-v1-btb"
	SpectreV2      Kind = "spectre-v2"
	Ret2spec       Kind = "ret2spec"
	Meltdown       Kind = "meltdown"
	SSB            Kind = "ssb"
	LazyFP         Kind = "lazyfp-rdmsr"
	GPRSteering    Kind = "gpr-steering"
	// GPRSteeringSpecOff is GPRSteering against a victim hardened with the
	// paper's §8 Listing 4 software defense (a no-speculation window).
	GPRSteeringSpecOff Kind = "gpr-steering-specoff"
)

// All returns every implemented attack, in Table 1 order.
func All() []Kind {
	return []Kind{SpectreV1Cache, SpectreV1BTB, SpectreV2, Ret2spec, Meltdown, SSB, LazyFP, GPRSteering, GPRSteeringSpecOff}
}

// Class returns the attack's taxonomy class (Table 1).
func (k Kind) Class() string {
	switch k {
	case SpectreV1Cache, SpectreV1BTB, SpectreV2, Ret2spec, SSB, GPRSteering, GPRSteeringSpecOff:
		return "control-steering"
	default:
		return "chosen-code"
	}
}

// Channel returns the covert channel the attack transmits over.
func (k Kind) Channel() string {
	if k == SpectreV1BTB {
		return "btb"
	}
	return "d-cache"
}

// spec is a built PoC: the program plus the addresses the runner needs.
type spec struct {
	prog        *isa.Program
	resultsAddr uint64
	// threshold is the minimum timing margin (cycles) that counts as a
	// leak for this attack's channel.
	threshold float64
	// setup runs before simulation (e.g. planting the MSR secret).
	setup func(c *ooo.Core)
	// setupInOrder mirrors setup for the in-order core.
	setupInOrder func(m *inorder.Machine)
}

// Outcome is the result of one attack run.
type Outcome struct {
	Attack Kind
	Policy string

	// Series holds the measured cycles per guess (Fig. 4 / Fig. 8).
	Series [NumGuesses]float64
	// Secret is the planted byte.
	Secret byte
	// BestGuess is the guess with the fastest timing.
	BestGuess int
	// Margin is how many cycles faster the secret's own guess is than the
	// median guess; it must exceed the channel threshold to count as a
	// leak. (Keying on the secret rather than the arg-min is robust to
	// benign dips, e.g. SSB's architectural re-execution transmitting the
	// sanitized value.)
	Margin float64
	// Leaked reports whether the attack recovered the secret.
	Leaked bool

	// Cycles is the total simulation length (diagnostics).
	Cycles uint64

	// SanitizerViolations counts runtime propagation-invariant violations
	// observed by the ooo sanitizer during the run; always 0 unless
	// Params.Sanitize was set.
	SanitizerViolations uint64
}

func (o *Outcome) String() string {
	verdict := "blocked"
	if o.Leaked {
		verdict = "LEAKED"
	}
	return fmt.Sprintf("%-18s under %-18s: %s (best=%d secret=%d margin=%.1f cycles)",
		string(o.Attack), o.Policy, verdict, o.BestGuess, o.Secret, o.Margin)
}

func build(kind Kind) (*spec, error) {
	switch kind {
	case SpectreV1Cache:
		return specSpectreV1Cache()
	case SpectreV1BTB:
		return specSpectreV1BTB()
	case SpectreV2:
		return specSpectreV2()
	case Ret2spec:
		return specRet2spec()
	case Meltdown:
		return specMeltdown()
	case SSB:
		return specSSB()
	case LazyFP:
		return specLazyFP()
	case GPRSteering:
		return specGPRSteering()
	case GPRSteeringSpecOff:
		return specGPRSteeringSpecOff()
	}
	return nil, fmt.Errorf("attack: unknown kind %q", kind)
}

// Run executes the PoC on an OoO core under the given policy and analyzes
// the timing series. Params usually come from ooo.DefaultParams (with
// MeltdownVulnerable true, the paper's baseline hardware).
func Run(kind Kind, pol core.Policy, params ooo.Params) (*Outcome, error) {
	return RunCtx(context.Background(), kind, pol, params)
}

// RunCtx is Run with cancellation: the core polls ctx.Done() while it runs,
// so a timeout or job cancellation stops the PoC mid-simulation.
func RunCtx(ctx context.Context, kind Kind, pol core.Policy, params ooo.Params) (*Outcome, error) {
	s, err := build(kind)
	if err != nil {
		return nil, err
	}
	c := ooo.NewFromProgram(s.prog, pol, params)
	c.Cancel = ctx.Done()
	if s.setup != nil {
		s.setup(c)
	}
	if err := c.Run(30_000_000); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("attack %s under %s: %w", kind, pol.Name, err)
	}
	out := analyze(kind, pol.Name, s, func(addr uint64) uint64 { return c.Memory().Read(addr, 8) })
	out.Cycles = c.Cycles()
	out.SanitizerViolations = c.SanitizerViolations()
	return out, nil
}

// Program returns the PoC program for static analysis (internal/gadget and
// cmd/ndalint run the analyzer over every snippet).
func Program(kind Kind) (*isa.Program, error) {
	s, err := build(kind)
	if err != nil {
		return nil, err
	}
	return s.prog, nil
}

// SecretRegs returns the registers the PoC plants a secret in
// architecturally (the §4.2 GPR-steering variants); nil for attacks whose
// secret lives in memory or an MSR.
func SecretRegs(kind Kind) []isa.Reg {
	switch kind {
	case GPRSteering, GPRSteeringSpecOff:
		return []isa.Reg{isa.RegS5}
	}
	return nil
}

// RunInOrder executes the PoC on the in-order baseline core, which is
// trivially immune: there is no wrong path at all.
func RunInOrder(kind Kind) (*Outcome, error) {
	return RunInOrderCtx(context.Background(), kind)
}

// RunInOrderCtx is RunInOrder with cancellation (see RunCtx).
func RunInOrderCtx(ctx context.Context, kind Kind) (*Outcome, error) {
	s, err := build(kind)
	if err != nil {
		return nil, err
	}
	m := inorder.NewFromProgram(s.prog, inorder.DefaultParams())
	m.Cancel = ctx.Done()
	if s.setupInOrder != nil {
		s.setupInOrder(m)
	}
	if err := m.Run(100_000_000); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("attack %s in-order: %w", kind, err)
	}
	out := analyze(kind, "In-Order", s, func(addr uint64) uint64 { return m.Emu().Mem.Read(addr, 8) })
	out.Cycles = m.Cycles()
	return out, nil
}

// analyze reads the per-guess timing array the PoC left in memory and
// decides whether the secret leaked: the fastest guess must equal the
// planted secret and beat the median by the channel threshold.
func analyze(kind Kind, policy string, s *spec, read func(uint64) uint64) *Outcome {
	out := &Outcome{Attack: kind, Policy: policy, Secret: SecretByte}
	vals := make([]float64, NumGuesses)
	best := 0
	for g := 0; g < NumGuesses; g++ {
		v := float64(read(s.resultsAddr + uint64(g)*8))
		out.Series[g] = v
		vals[g] = v
		if v < out.Series[best] {
			best = g
		}
	}
	sort.Float64s(vals)
	median := vals[NumGuesses/2]
	out.BestGuess = best
	out.Margin = median - out.Series[SecretByte]
	out.Leaked = out.Margin >= s.threshold
	return out
}

// mustBuild assembles PoC source, panicking on generator bugs.
func mustBuild(src string) *isa.Program { return asm.MustAssemble(src) }
