package attack

import "fmt"

// Shared assembly fragments for the PoC programs. Register conventions in
// these snippets: s1-s4 are loop/setup scratch, s6-s11 belong to the
// recovery loop, a0 carries the victim argument.

// dataCommon lays out the probe array and the results array every PoC uses.
const dataCommon = `
        .org 0x200000
probe:  .space 131072        # 256 entries x 512B stride
        .org 0x240000
results: .space 2048         # 256 x 8B measured cycles
`

// flushProbe emits the channel-priming loop: clflush every probe entry.
const flushProbe = `
        li   s1, 0
        la   s2, probe
prime:  clflush (s2)
        addi s2, s2, 512
        addi s1, s1, 1
        slti s3, s1, 256
        bne  s3, zero, prime
`

// recoverCache emits the recover phase for the D-cache channel: time a load
// of each probe entry (Listing 1 lines 13-20). The xor chains the probed
// load behind the first rdcycle so the measured window brackets the access.
const recoverCache = `
        li   s10, 0
        la   s11, probe
        la   s9, results
recov:  rdcycle s8
        xor  s7, s8, s8
        add  s7, s7, s11
        lbu  s7, (s7)
        rdcycle s6
        sub  s6, s6, s8
        sd   s6, (s9)
        addi s11, s11, 512
        addi s9, s9, 8
        addi s10, s10, 1
        slti s7, s10, 256
        bne  s7, zero, recov
`

// trainVictim emits n in-bounds calls to "victim" so the bounds-check
// branch predicts not-taken (i.e. "index is valid") when attacked.
func trainVictim(n int) string {
	return fmt.Sprintf(`
        li   s1, %d
train%%[1]d:  li   a0, 0
        call victim
        addi s1, s1, -1
        bne  s1, zero, train%%[1]d
`, n)
}

// uniq instantiates a snippet containing %[1]d placeholders with a unique
// integer so labels do not collide when a snippet is used twice.
func uniq(snippet string, id int) string {
	return fmt.Sprintf(snippet, id)
}
