package attack

import (
	"testing"

	"nda/internal/core"
	"nda/internal/ooo"
)

// TestMatrixMatchesPaper runs every attack under every policy (plus the
// in-order core) and checks the leak verdicts against the paper's Table 2
// security columns, encoded in Expected. This is the headline security
// reproduction: 6 attacks x 10 configurations.
func TestMatrixMatchesPaper(t *testing.T) {
	cells, err := Matrix(ooo.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(All())*(len(core.All())+1) {
		t.Fatalf("matrix has %d cells", len(cells))
	}
	for _, c := range cells {
		if !c.Matches() {
			t.Errorf("%-18s under %-18s: leaked=%v, paper says %v (margin %.1f)",
				c.Attack, c.Policy, c.Outcome.Leaked, c.Expected, c.Outcome.Margin)
		}
	}
}

// TestFig4CacheSeries checks the Fig. 4 cache-channel shape on the insecure
// baseline: a ~140-cycle dip exactly at the secret byte.
func TestFig4CacheSeries(t *testing.T) {
	out, err := Run(SpectreV1Cache, core.Baseline(), ooo.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Leaked || out.BestGuess != SecretByte {
		t.Fatalf("baseline must leak the secret: %v", out)
	}
	if out.Margin < 100 {
		t.Errorf("cache-channel margin = %.1f, expected ~140 cycles", out.Margin)
	}
	for g, v := range out.Series {
		if g != SecretByte && v < out.Series[SecretByte]+50 {
			t.Errorf("guess %d (%.0f cycles) not separated from the secret (%.0f)",
				g, v, out.Series[SecretByte])
		}
	}
}

// TestFig4BTBSeries checks the BTB-channel shape: a dip on the order of the
// ~16-cycle mispredict penalty at the secret byte, and only there.
func TestFig4BTBSeries(t *testing.T) {
	out, err := Run(SpectreV1BTB, core.Baseline(), ooo.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Leaked || out.BestGuess != SecretByte {
		t.Fatalf("baseline must leak via the BTB: %v", out)
	}
	if out.Margin < 6 || out.Margin > 40 {
		t.Errorf("BTB margin = %.1f, expected on the order of the ~16-cycle penalty", out.Margin)
	}
}

// TestFig8FlatUnderNDA checks the Fig. 8 claim: under permissive
// propagation both covert channels go flat — the secret is
// indistinguishable from the other 255 candidates.
func TestFig8FlatUnderNDA(t *testing.T) {
	for _, kind := range []Kind{SpectreV1Cache, SpectreV1BTB} {
		out, err := Run(kind, core.Permissive(), ooo.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if out.Leaked {
			t.Errorf("%s must be blocked by permissive propagation: %v", kind, out)
		}
		if out.Margin > 5 {
			t.Errorf("%s series not flat under NDA: margin %.1f", kind, out.Margin)
		}
	}
}

// TestMeltdownNeedsTheHardwareFlaw verifies the MeltdownVulnerable ablation:
// with the implementation flaw fixed (faulting loads forward zero), the
// attack fails even on the insecure baseline.
func TestMeltdownNeedsTheHardwareFlaw(t *testing.T) {
	p := ooo.DefaultParams()
	p.MeltdownVulnerable = false
	for _, kind := range []Kind{Meltdown, LazyFP} {
		out, err := Run(kind, core.Baseline(), p)
		if err != nil {
			t.Fatal(err)
		}
		if out.Leaked {
			t.Errorf("%s must fail on fixed hardware: %v", kind, out)
		}
	}
}

// TestBTBChannelNeedsSpeculativeUpdates verifies the design-decision
// ablation from DESIGN.md: without speculative BTB updates the BTB covert
// channel disappears (at the cost of extra mispredicts).
func TestBTBChannelNeedsSpeculativeUpdates(t *testing.T) {
	p := ooo.DefaultParams()
	p.SpeculativeBTBUpdate = false
	out, err := Run(SpectreV1BTB, core.Baseline(), p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Leaked {
		t.Errorf("BTB channel must vanish without speculative updates: %v", out)
	}
}

// TestSpectreStillLeaksWithoutBTBSpeculation: the cache channel does not
// depend on the BTB update policy.
func TestSpectreStillLeaksWithoutBTBSpeculation(t *testing.T) {
	p := ooo.DefaultParams()
	p.SpeculativeBTBUpdate = false
	out, err := Run(SpectreV1Cache, core.Baseline(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Leaked {
		t.Errorf("cache channel must be independent of BTB update policy: %v", out)
	}
}

func TestKindMetadata(t *testing.T) {
	if len(All()) != 9 {
		t.Fatalf("expected 9 attacks, got %d", len(All()))
	}
	for _, k := range All() {
		if k.Class() != "control-steering" && k.Class() != "chosen-code" {
			t.Errorf("%s class = %q", k, k.Class())
		}
	}
	if Meltdown.Class() != "chosen-code" || SpectreV1Cache.Class() != "control-steering" {
		t.Error("taxonomy classes wrong")
	}
	if SpectreV1BTB.Channel() != "btb" || SSB.Channel() != "d-cache" {
		t.Error("channels wrong")
	}
}

func TestRunUnknownKind(t *testing.T) {
	if _, err := Run(Kind("nope"), core.Baseline(), ooo.DefaultParams()); err == nil {
		t.Error("unknown attack must error")
	}
}

func TestOutcomeString(t *testing.T) {
	out, err := Run(GPRSteering, core.Strict(), ooo.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if s := out.String(); s == "" || out.Leaked {
		t.Errorf("outcome: %q leaked=%v", s, out.Leaked)
	}
}

// TestListing4SpecOffDefense verifies §8: the SPECOFF window closes the
// GPR-steering attack even on the insecure baseline and under permissive
// propagation (which on its own cannot protect GPR-resident secrets).
func TestListing4SpecOffDefense(t *testing.T) {
	for _, pol := range []core.Policy{core.Baseline(), core.Permissive()} {
		out, err := Run(GPRSteeringSpecOff, pol, ooo.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if out.Leaked {
			t.Errorf("SPECOFF window must block GPR steering under %s: %v", pol.Name, out)
		}
	}
	// Sanity: the unhardened victim does leak under permissive.
	out, err := Run(GPRSteering, core.Permissive(), ooo.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Leaked {
		t.Error("unhardened GPR steering must leak under permissive propagation")
	}
}
