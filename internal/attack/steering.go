package attack

// Spectre v2 (branch target injection) and ret2spec (return stack buffer
// mis-steering) — the remaining control-steering rows of the paper's
// Table 1. Both leak through the D-cache, so their expected verdicts match
// spectre-v1-cache: they defeat nothing but the insecure baseline.

// specSpectreV2 builds a branch-target-injection PoC. The victim exposes a
// dispatcher that indirect-calls a handler from a table. The attacker first
// invokes the dispatcher with an index that selects the *disclosure gadget*
// (training the BTB entry of the dispatcher's single call site), then
// invokes it with a benign index whose handler pointer loads slowly
// (flushed): the front end speculates into the gadget, which reads the
// secret and transmits it through the probe array before the indirect call
// resolves and squashes.
func specSpectreV2() (*spec, error) {
	src := `
        .data
        .org 0x100000
secret: .byte 42
        .align 64
        # handlers[0] = benign, handlers[1] = gadget. The benign pointer is
        # flushed before the victim call to widen the speculation window.
handlers: .word64 benign, gadget
` + dataCommon + `
        .text
main:   li   sp, 0x280000
        # Train: the attacker legitimately invokes the dispatcher with the
        # gadget index a few times, installing gadget as the predicted
        # target of the dispatcher's call site.
        li   s1, 8
train:  li   a0, 1           # a0 = handler index (gadget)
        li   a1, 0           # benign argument: gadget reads nothing secret
        call dispatch
        addi s1, s1, -1
        bne  s1, zero, train
` + flushProbe + `
        # Attack: flush the handler table so the benign pointer resolves
        # slowly, then make the victim dispatch the benign handler with the
        # secret-adjacent argument.
        la   s2, handlers
        clflush (s2)
        fence
        li   a0, 0           # benign index...
        la   a1, secret      # ...but the gadget (speculatively) gets this
        call dispatch
` + recoverCache + `
        halt

# dispatch(a0 = index, a1 = arg): handlers[index](a1)
dispatch:
        mv   s11, ra
        la   t0, handlers
        slli t1, a0, 3
        add  t0, t0, t1
        ld   t2, (t0)        # flushed on the attack call: resolves late
        callr t2             # BTB-predicted: speculates into the gadget
        mv   ra, s11
        ret

benign: li   t3, 0
        ret

# gadget(a1 = pointer): t = probe[*a1 * 512] — the disclosure sequence the
# attacker steered into.
gadget: lbu  t3, (a1)        # ACCESS
        slli t3, t3, 9
        la   t4, probe
        add  t4, t4, t3
        lbu  t5, (t4)        # TRANSMIT
        ret
`
	return &spec{
		prog:        mustBuild(src),
		resultsAddr: 0x240000,
		threshold:   40,
	}, nil
}

// specRet2spec builds a return-stack-buffer mis-steering PoC (ret2spec /
// Spectre-RSB). The victim function replaces its return address — as a
// context switch or stack rewrite would — with a value that resolves only
// after a long dependency chain. The RAS still predicts the original call
// site, whose following instructions are the disclosure gadget: the gadget
// runs on the wrong path for the whole window and transmits the secret.
func specRet2spec() (*spec, error) {
	src := `
        .data
        .org 0x100000
pub:    .word64 7            # victim data sharing the secret's cache line
secret: .byte 42             # pub+8
        .org 0x101000
far:    .word64 0
` + dataCommon + `
        .text
main:   li   sp, 0x280000
` + flushProbe + `
        la   s3, pub
        la   s4, probe
        ld   t6, (s3)        # ordinary victim activity warms the line
        call victim
        # The RAS predicted a return to HERE, so this gadget is
        # speculatively executed after the victim's mis-steered ret...
        lbu  t3, 8(s3)       # ACCESS the secret (wrong-path only)
        slli t3, t3, 9
        add  t4, s4, t3
        lbu  t5, (t4)        # TRANSMIT
        halt                 # (never reached architecturally)

cont:   # ...while the architectural return lands here.
` + recoverCache + `
        halt

# victim: replaces its return address through a slow dependency chain, so
# the stale RAS prediction stands for the whole speculation window.
victim: la   t0, far
        clflush (t0)
        fence
        ld   t1, (t0)        # cold: ~145 cycles
        andi t1, t1, 0
        la   t2, cont
        add  ra, t1, t2      # ra = cont, resolved very late
        ret                  # RAS predicts main's call site -> gadget runs
`
	return &spec{
		prog:        mustBuild(src),
		resultsAddr: 0x240000,
		threshold:   40,
	}, nil
}
