package attack_test

import (
	"testing"

	"nda/internal/attack"
	"nda/internal/gadget"
	"nda/internal/ooo"
)

// TestStaticDynamicCrossValidation ties the repo's three oracles together:
//
//   - the static analyzer (internal/gadget) predicts, per attack and policy,
//     whether the measured channel leaks;
//   - the dynamic attack matrix measures whether the PoC actually recovers
//     the secret on a simulated core;
//   - the runtime propagation sanitizer (ooo.Params.Sanitize) asserts,
//     cycle by cycle, that no consumer ever issued on a value whose
//     producer was unsafe at broadcast-defer time.
//
// The test requires exact agreement between the first two for every
// (attack, policy) cell, and zero sanitizer violations everywhere — i.e.
// every "blocked" verdict is enforced by the pipeline mechanism the policy
// claims, not by accident.
func TestStaticDynamicCrossValidation(t *testing.T) {
	params := ooo.DefaultParams()
	params.Sanitize = true
	cells, err := attack.MatrixParallel(params, 0)
	if err != nil {
		t.Fatal(err)
	}

	static := map[attack.Kind]map[string]bool{}
	for _, k := range attack.All() {
		p, err := attack.Program(k)
		if err != nil {
			t.Fatal(err)
		}
		an := gadget.Analyze(p, gadget.Config{SecretRegs: attack.SecretRegs(k)})
		static[k] = an.LeaksByChannel[k.Channel()]
	}

	for _, c := range cells {
		if c.Outcome.SanitizerViolations != 0 {
			t.Errorf("%s under %s: %d sanitizer violations", c.Attack, c.Policy, c.Outcome.SanitizerViolations)
		}
		if c.Policy == "In-Order" {
			continue // the in-order core has no speculation for the analyzer to model
		}
		if got := static[c.Attack][c.Policy]; got != c.Outcome.Leaked {
			t.Errorf("%s under %s: static analyzer says leaks=%v, dynamic PoC measured leaked=%v",
				c.Attack, c.Policy, got, c.Outcome.Leaked)
		}
	}
}
