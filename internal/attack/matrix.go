package attack

import (
	"context"
	"fmt"

	"nda/internal/core"
	"nda/internal/ooo"
	"nda/internal/par"
)

// Expected encodes the paper's Table 2 security columns: for each attack,
// the set of policies under which the attack still succeeds. Policies not
// listed are expected to block the attack. The integration tests and
// cmd/ndattack verify the simulator reproduces exactly this matrix.
var Expected = map[Kind]map[string]bool{
	// The classic cache-channel Spectre is blocked by every defense.
	SpectreV1Cache: {
		"OoO": true,
	},
	// Branch-target injection and RSB mis-steering use the cache channel,
	// so (like v1) every defense stops them.
	SpectreV2: {
		"OoO": true,
	},
	Ret2spec: {
		"OoO": true,
	},
	// The paper's BTB channel defeats cache-only defenses (InvisiSpec) but
	// no NDA policy: the dependence chain feeding the indirect call never
	// wakes.
	SpectreV1BTB: {
		"OoO":                true,
		"InvisiSpec-Spectre": true,
		"InvisiSpec-Future":  true,
	},
	// Meltdown is a chosen-code attack: steering policies do not apply (no
	// mis-steered branch), so only load restriction — and InvisiSpec's
	// futuristic variant, for the cache channel specifically — stops it.
	Meltdown: {
		"OoO":                true,
		"Permissive":         true,
		"Permissive+BR":      true,
		"Strict":             true,
		"Strict+BR":          true,
		"InvisiSpec-Spectre": true,
	},
	// Speculative store bypass needs Bypass Restriction (or load
	// restriction / InvisiSpec-Future); rows 1 and 3 of Table 2 leave it
	// open.
	SSB: {
		"OoO":                true,
		"Permissive":         true,
		"Strict":             true,
		"InvisiSpec-Spectre": true,
	},
	// The LazyFP/v3a analogue behaves like Meltdown with RDMSR as the
	// load-like access.
	LazyFP: {
		"OoO":                true,
		"Permissive":         true,
		"Permissive+BR":      true,
		"Strict":             true,
		"Strict+BR":          true,
		"InvisiSpec-Spectre": true,
	},
	// The hypothetical GPR attack has no access-phase load, so permissive
	// propagation and load restriction cannot see it; only strict
	// propagation breaks the transmit chain. InvisiSpec hides its cache
	// channel.
	GPRSteering: {
		"OoO":             true,
		"Permissive":      true,
		"Permissive+BR":   true,
		"RestrictedLoads": true,
	},
	// Listing 4 (§8): with the victim's no-speculation window, the attack
	// fails everywhere — there is no wrong path to steer.
	GPRSteeringSpecOff: {},
}

// Cell is one (attack, policy) evaluation.
type Cell struct {
	Attack   Kind
	Policy   string
	Outcome  *Outcome
	Expected bool
}

// Matches reports whether the measured verdict equals the paper's.
func (c Cell) Matches() bool { return c.Outcome.Leaked == c.Expected }

// Matrix runs every attack under every policy (plus the in-order core) and
// returns the full grid — the dynamic reproduction of Table 2's security
// columns and Table 1's "demonstrated" checkmarks — using one worker per
// CPU.
func Matrix(params ooo.Params) ([]Cell, error) {
	return MatrixParallel(params, 0)
}

// MatrixParallel is Matrix with an explicit worker bound (0 = one per CPU).
// Every (attack, policy) PoC builds its own program, memory image, and
// core, and each verdict lands in the slot its tuple indexes, so the
// returned grid is identical — in content and order — for any worker
// count.
func MatrixParallel(params ooo.Params, workers int) ([]Cell, error) {
	return MatrixCtx(context.Background(), params, workers)
}

// MatrixCtx is MatrixParallel with cancellation: once ctx is done, no
// queued (attack, policy) cell starts and in-flight PoCs stop
// mid-simulation; the ctx error is returned unless a cell failed first.
func MatrixCtx(ctx context.Context, params ooo.Params, workers int) ([]Cell, error) {
	kinds := All()
	pols := core.All()
	perKind := len(pols) + 1 // every policy, then the in-order core
	cells := make([]Cell, len(kinds)*perKind)
	err := par.RunCtx(ctx, len(cells), workers, func(i int) error {
		kind := kinds[i/perKind]
		pi := i % perKind
		if pi == len(pols) {
			out, err := RunInOrderCtx(ctx, kind)
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
				return fmt.Errorf("matrix: %w", err)
			}
			cells[i] = Cell{Attack: kind, Policy: "In-Order", Outcome: out, Expected: false}
			return nil
		}
		pol := pols[pi]
		out, err := RunCtx(ctx, kind, pol, params)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			return fmt.Errorf("matrix: %w", err)
		}
		cells[i] = Cell{
			Attack:   kind,
			Policy:   pol.Name,
			Outcome:  out,
			Expected: Expected[kind][pol.Name],
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}
