package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"nda/internal/store"
)

// newStoreManager builds a manager over a persistent store in dir. No
// cleanup is registered for the manager on purpose when abandon is true:
// the restart tests simulate kill -9, which runs no shutdown path.
func newStoreManager(t *testing.T, dir string, abandon bool) *Manager {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{QueueDepth: 8, JobWorkers: 2, SimWorkers: 4, Store: st})
	if !abandon {
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = m.Shutdown(ctx)
			_ = st.Close()
		})
	}
	return m
}

func runSweepJob(t *testing.T, m *Manager, req SweepRequest) (*Job, []byte) {
	t.Helper()
	j, err := m.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	res, ok := j.Result()
	if !ok {
		t.Fatalf("sweep job did not finish: %+v", j.Status())
	}
	return j, res
}

// TestStoreRestartByteIdenticalReplay is the PR's acceptance test: a cold
// process runs the full 92-cell sweep grid into a persistent store, dies
// without any shutdown path (kill -9 never calls Close), and a fresh
// process over the same directory replays the sweep byte-identically from
// disk — the simulation counter stays at zero and every cell reports the
// disk tier.
func TestStoreRestartByteIdenticalReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("92-cell sweep")
	}
	dir := t.TempDir()
	// All 23 workloads x (3 headline policies + in-order) = 92 cells.
	req := SweepRequest{
		Policies: []string{"OoO", "Permissive", "Permissive+BR"},
		Sampling: tinySampling(),
	}

	m1 := newStoreManager(t, dir, true)
	j1, cold := runSweepJob(t, m1, req)
	if st := j1.Status(); st.TotalCells != 92 || st.Tiers.Computed != 92 {
		t.Fatalf("cold pass: %+v, want 92 computed cells", st.Tiers)
	}
	if sims := m1.Metrics().Simulations.Load(); sims != 92 {
		t.Fatalf("cold pass ran %d simulations, want 92", sims)
	}
	// No Shutdown, no Close: the first process is now "dead". Every Put
	// was fsync+renamed at completion time, so the store is complete.

	m2 := newStoreManager(t, dir, false)
	j2, warm := runSweepJob(t, m2, req)
	if !bytes.Equal(cold, warm) {
		t.Errorf("replayed sweep differs from the cold run:\ncold: %.200s\nwarm: %.200s", cold, warm)
	}
	if sims := m2.Metrics().Simulations.Load(); sims != 0 {
		t.Errorf("warm replay ran %d simulations, want 0", sims)
	}
	if st := j2.Status(); st.Tiers.Disk != 92 || st.Tiers.Computed != 0 {
		t.Errorf("warm pass tiers = %+v, want 92 disk / 0 computed", st.Tiers)
	}
	if hits := m2.Metrics().CacheDiskHits.Load(); hits != 92 {
		t.Errorf("CacheDiskHits = %d, want 92", hits)
	}

	// A third pass in the same process is pure RAM.
	j3, _ := runSweepJob(t, m2, req)
	if st := j3.Status(); st.Tiers.RAM != 92 {
		t.Errorf("third pass tiers = %+v, want 92 RAM", st.Tiers)
	}
}

// TestWarmEndpoint: POST /v1/warm precomputes the requested set; an
// identical sweep afterwards is all RAM hits. Over a restarted store the
// warm job itself is all disk hits — warming is how a rebooted service
// refills RAM without simulating.
func TestWarmEndpoint(t *testing.T) {
	dir := t.TempDir()
	warmReq := WarmRequest{
		Sweeps:  []SweepRequest{{Workloads: []string{"exchange2"}, Policies: []string{"OoO"}, Sampling: tinySampling()}},
		Gadgets: []GadgetsRequest{{Programs: []string{"meltdown"}}},
	}

	m1 := newStoreManager(t, dir, true)
	srv1 := startServer(t, m1)
	resp, body := post(t, srv1.URL+"/v1/warm?wait=1", warmReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm = %d: %s", resp.StatusCode, body)
	}
	var wr WarmResponse
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	// exchange2 x (OoO + in-order) + one gadget census entry.
	if wr.Cells != 3 || wr.Tiers.Computed != 3 {
		t.Fatalf("cold warm response = %+v, want 3 computed cells", wr)
	}
	sims := m1.Metrics().Simulations.Load()

	// The warmed sweep is now free.
	resp, _ = post(t, srv1.URL+"/v1/sweep?wait=1", warmReq.Sweeps[0])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-warm sweep = %d", resp.StatusCode)
	}
	if got := m1.Metrics().Simulations.Load(); got != sims {
		t.Errorf("post-warm sweep simulated: %d -> %d", sims, got)
	}
	srv1.Close() // the manager is abandoned, crash-style

	// Restart: the same warm request replays entirely from disk.
	m2 := newStoreManager(t, dir, false)
	srv2 := startServer(t, m2)
	resp, body = post(t, srv2.URL+"/v1/warm?wait=1", warmReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replayed warm = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Tiers.Disk != 3 || wr.Tiers.Computed != 0 {
		t.Errorf("replayed warm tiers = %+v, want 3 disk / 0 computed", wr.Tiers)
	}
	if sims := m2.Metrics().Simulations.Load(); sims != 0 {
		t.Errorf("replayed warm ran %d simulations, want 0", sims)
	}
}

// TestWarmValidation: an invalid sub-request fails at submission, and an
// empty request resolves to the standard set without error.
func TestWarmValidation(t *testing.T) {
	m, srv := newTestServer(t)
	resp, body := post(t, srv.URL+"/v1/warm", WarmRequest{
		Sweeps: []SweepRequest{{Workloads: []string{"no-such-workload"}}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid warm = %d: %s", resp.StatusCode, body)
	}
	j, err := m.SubmitWarm(WarmRequest{})
	if err != nil {
		t.Fatalf("standard warm rejected: %v", err)
	}
	// Don't run the full standard set here — submission validated it.
	m.Cancel(j.ID())
}

// TestMetricsStoreBlock: a store-backed manager exposes the store and
// RAM-tier series on /metrics.
func TestMetricsStoreBlock(t *testing.T) {
	m := newStoreManager(t, t.TempDir(), false)
	srv := startServer(t, m)
	resp, _ := post(t, srv.URL+"/v1/gadgets?wait=1", GadgetsRequest{Programs: []string{"meltdown"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gadgets = %d", resp.StatusCode)
	}
	_, body := get(t, srv.URL+"/metrics")
	for _, want := range []string{
		"nda_store_entries 1",
		"nda_store_puts_total 1",
		"nda_cache_entries 1",
		"nda_cache_bytes ",
		"nda_cache_disk_hits_total 0",
		"nda_cache_evicted_bytes_total 0",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// startServer serves an existing manager over HTTP. Unlike newTestServer
// it does not own the manager's lifecycle — the restart tests manage (or
// deliberately abandon) that themselves.
func startServer(t *testing.T, m *Manager) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(srv.Close)
	return srv
}
