package serve

import (
	"fmt"

	"nda/internal/attack"
	"nda/internal/core"
	"nda/internal/harness"
	"nda/internal/workload"
)

// SamplingSpec selects the SMARTS methodology for a sweep request. The
// zero value means the standard methodology (harness.DefaultConfig); Quick
// switches to the reduced smoke-run methodology; any explicitly non-zero
// window overrides the corresponding field. The resolved harness.Config —
// not the spec as written — is what the cache key hashes, so a request
// that spells out the default values verbatim hits the same cache entries
// as one that leaves them blank.
type SamplingSpec struct {
	Quick            bool   `json:"quick,omitempty"`
	Checkpoints      bool   `json:"checkpoints,omitempty"`
	CheckpointStride uint64 `json:"checkpoint_stride,omitempty"`
	WarmInsts        uint64 `json:"warm_insts,omitempty"`
	MeasureInsts     uint64 `json:"measure_insts,omitempty"`
	SkipInsts        uint64 `json:"skip_insts,omitempty"`
	Intervals        int    `json:"intervals,omitempty"`
	MaxCycles        uint64 `json:"max_cycles,omitempty"`
}

// resolve maps the spec onto a concrete harness.Config. Workers stays 0 —
// parallelism is the manager's concern and must never reach a cache key.
func (s SamplingSpec) resolve() harness.Config {
	cfg := harness.DefaultConfig()
	if s.Quick {
		cfg = harness.Quick()
	}
	cfg.UseCheckpoints = s.Checkpoints
	if s.CheckpointStride > 0 {
		cfg.CheckpointStride = s.CheckpointStride
	}
	if s.WarmInsts > 0 {
		cfg.WarmInsts = s.WarmInsts
	}
	if s.MeasureInsts > 0 {
		cfg.MeasureInsts = s.MeasureInsts
	}
	if s.SkipInsts > 0 {
		cfg.SkipInsts = s.SkipInsts
	}
	if s.Intervals > 0 {
		cfg.Intervals = s.Intervals
	}
	if s.MaxCycles > 0 {
		cfg.MaxCycles = s.MaxCycles
	}
	return cfg
}

// SweepRequest asks for the paper's performance sweep: every listed
// workload measured under every listed policy (plus the in-order bound
// unless disabled). Empty lists mean "all".
type SweepRequest struct {
	Workloads []string     `json:"workloads,omitempty"` // empty = all 23 SPEC proxies
	Policies  []string     `json:"policies,omitempty"`  // empty = all configurations
	NoInOrder bool         `json:"no_in_order,omitempty"`
	Sampling  SamplingSpec `json:"sampling,omitempty"`
}

// sweepTask is the validated, name-resolved form of a SweepRequest. It
// keeps the sampling spec as written alongside the resolved config: cache
// keys hash the resolved config, while fleet dispatch forwards the spec so
// workers resolve it to the identical config themselves.
type sweepTask struct {
	specs    []workload.Spec
	pols     []core.Policy
	inOrder  bool
	cfg      harness.Config
	sampling SamplingSpec
}

func (r SweepRequest) task() (*sweepTask, error) {
	t := &sweepTask{inOrder: !r.NoInOrder, cfg: r.Sampling.resolve(), sampling: r.Sampling}
	if len(r.Workloads) == 0 {
		t.specs = workload.SPEC()
	} else {
		for _, name := range r.Workloads {
			s, err := workload.ByName(name)
			if err != nil {
				return nil, err
			}
			t.specs = append(t.specs, s)
		}
	}
	if len(r.Policies) == 0 {
		t.pols = core.All()
	} else {
		for _, name := range r.Policies {
			p, err := core.ByName(name)
			if err != nil {
				return nil, err
			}
			t.pols = append(t.pols, p)
		}
	}
	if len(t.specs) == 0 || (len(t.pols) == 0 && !t.inOrder) {
		return nil, fmt.Errorf("serve: empty sweep (no workloads or no configurations)")
	}
	return t, nil
}

// SweepResponse is the sweep result: the full measurement grid plus the
// headline overhead-vs-OoO percentages (Table 2's overhead column) for
// every configuration, when the insecure baseline is part of the request.
type SweepResponse struct {
	Sweep     *harness.Sweep     `json:"sweep"`
	Overheads map[string]float64 `json:"overheads_pct,omitempty"`
}

// AttackRequest asks for (a subset of) the security matrix: every listed
// attack run under every listed policy, plus the in-order core unless
// disabled. Empty lists mean "all" — the full Table 2 reproduction.
type AttackRequest struct {
	Attacks   []string `json:"attacks,omitempty"`
	Policies  []string `json:"policies,omitempty"`
	NoInOrder bool     `json:"no_in_order,omitempty"`
}

type attackTask struct {
	kinds   []attack.Kind
	pols    []core.Policy
	inOrder bool
}

func (r AttackRequest) task() (*attackTask, error) {
	t := &attackTask{inOrder: !r.NoInOrder}
	if len(r.Attacks) == 0 {
		t.kinds = attack.All()
	} else {
		known := map[attack.Kind]bool{}
		for _, k := range attack.All() {
			known[k] = true
		}
		for _, name := range r.Attacks {
			k := attack.Kind(name)
			if !known[k] {
				return nil, fmt.Errorf("serve: unknown attack %q", name)
			}
			t.kinds = append(t.kinds, k)
		}
	}
	if len(r.Policies) == 0 {
		t.pols = core.All()
	} else {
		for _, name := range r.Policies {
			p, err := core.ByName(name)
			if err != nil {
				return nil, err
			}
			t.pols = append(t.pols, p)
		}
	}
	if len(t.pols) == 0 && !t.inOrder {
		return nil, fmt.Errorf("serve: empty attack matrix (no configurations)")
	}
	return t, nil
}

// AttackResponse is the evaluated (attack, policy) grid plus the count of
// verdicts that diverge from the paper's Table 2.
type AttackResponse struct {
	Cells      []attack.Cell `json:"cells"`
	Mismatches int           `json:"mismatches"`
}

// GadgetsRequest asks for the static gadget census over the named built-in
// programs (attack snippets and workload kernels); empty means all.
type GadgetsRequest struct {
	Programs []string `json:"programs,omitempty"`
}

type gadgetsTask struct {
	ins []gadgetInput
}

// gadgetInput pairs one census input with its position in the request.
type gadgetInput struct {
	name string
}

func (r GadgetsRequest) task() (*gadgetsTask, error) {
	t := &gadgetsTask{}
	if len(r.Programs) == 0 {
		for _, name := range builtinNames() {
			t.ins = append(t.ins, gadgetInput{name: name})
		}
		return t, nil
	}
	known := map[string]bool{}
	for _, name := range builtinNames() {
		known[name] = true
	}
	for _, name := range r.Programs {
		if !known[name] {
			return nil, fmt.Errorf("serve: unknown program %q", name)
		}
		t.ins = append(t.ins, gadgetInput{name: name})
	}
	return t, nil
}

// builtinNames lists the census programs in their fixed order: attacks in
// Table 1 order, then workloads in Fig. 7 order.
func builtinNames() []string {
	var names []string
	for _, k := range attack.All() {
		names = append(names, string(k))
	}
	for _, s := range workload.All() {
		names = append(names, s.Name)
	}
	return names
}
