package serve

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"nda/internal/tenant"
)

// Metrics is the service's counter block, exposed as Prometheus-style text
// on GET /metrics. All counters are atomics so job workers, cell
// simulations, and the HTTP handlers update them without locking.
type Metrics struct {
	start time.Time

	JobsQueued    atomic.Int64 // jobs accepted into the queue (lifetime)
	JobsRejected  atomic.Int64 // submissions bounced on a full queue (429s)
	QuotaRejected atomic.Int64 // submissions bounced by a tenant rate quota (429s)
	JobsRunning   atomic.Int64 // jobs currently executing (gauge)
	JobsDone      atomic.Int64 // jobs finished successfully
	JobsFailed    atomic.Int64 // jobs finished with an error
	JobsCancelled atomic.Int64 // jobs ended by cancellation or timeout

	// AdmissionStoreServed counts jobs accepted past a saturated queue
	// because every cell was already resolvable from the RAM/disk tiers.
	AdmissionStoreServed atomic.Int64

	CacheHits         atomic.Int64 // cells served without leaving this process (RAM or disk)
	CacheMisses       atomic.Int64 // cells that had to simulate or dispatch
	CacheDiskHits     atomic.Int64 // subset of CacheHits served from the persistent store
	CacheEvictions    atomic.Int64 // ready entries dropped by the LRU cap
	CacheEvictedBytes atomic.Int64 // approximate encoded bytes those evictions released

	CellsServed atomic.Int64 // worker-side /v1/cell requests completed

	Simulations     atomic.Int64 // detailed simulations actually run
	CyclesSimulated atomic.Int64 // total measured cycles across them
}

// NewMetrics returns a counter block anchored at the current time (the
// cycles-per-second rate and uptime are measured from here).
func NewMetrics() *Metrics {
	//ndavet:allow detlint uptime anchor for /metrics; never reaches simulation results
	return &Metrics{start: time.Now()}
}

// CyclesPerSecond is the lifetime average simulation throughput.
func (m *Metrics) CyclesPerSecond() float64 {
	//ndavet:allow detlint throughput gauge on /metrics; observability only, not in any result
	secs := time.Since(m.start).Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(m.CyclesSimulated.Load()) / secs
}

// Render emits the Prometheus text exposition format.
func (m *Metrics) Render() string {
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("nda_jobs_queued_total", "jobs accepted into the queue", m.JobsQueued.Load())
	counter("nda_jobs_rejected_total", "submissions rejected because the queue was full", m.JobsRejected.Load())
	counter("nda_jobs_quota_rejected_total", "submissions rejected by a tenant rate quota", m.QuotaRejected.Load())
	counter("nda_admission_store_served_total", "jobs admitted past a saturated queue because the store held every cell", m.AdmissionStoreServed.Load())
	counter("nda_jobs_done_total", "jobs finished successfully", m.JobsDone.Load())
	counter("nda_jobs_failed_total", "jobs finished with an error", m.JobsFailed.Load())
	counter("nda_jobs_cancelled_total", "jobs ended by cancellation or timeout", m.JobsCancelled.Load())
	counter("nda_cache_hits_total", "simulation cells served from the result cache", m.CacheHits.Load())
	counter("nda_cache_misses_total", "simulation cells that had to simulate", m.CacheMisses.Load())
	counter("nda_cache_disk_hits_total", "result-cache hits served by the persistent store tier", m.CacheDiskHits.Load())
	counter("nda_cache_evictions_total", "result-cache entries evicted by the LRU cap", m.CacheEvictions.Load())
	counter("nda_cache_evicted_bytes_total", "approximate encoded bytes released by those evictions", m.CacheEvictedBytes.Load())
	counter("nda_cells_served_total", "worker-side /v1/cell requests completed", m.CellsServed.Load())
	counter("nda_simulations_total", "detailed simulations run", m.Simulations.Load())
	counter("nda_cycles_simulated_total", "measured cycles across all simulations", m.CyclesSimulated.Load())
	fmt.Fprintf(&b, "# HELP nda_jobs_running jobs currently executing\n# TYPE nda_jobs_running gauge\nnda_jobs_running %d\n", m.JobsRunning.Load())
	fmt.Fprintf(&b, "# HELP nda_cycles_per_second lifetime average simulated cycles per second\n# TYPE nda_cycles_per_second gauge\nnda_cycles_per_second %.1f\n", m.CyclesPerSecond())
	//ndavet:allow detlint uptime gauge on /metrics; observability only, not in any result
	fmt.Fprintf(&b, "# HELP nda_uptime_seconds seconds since the service started\n# TYPE nda_uptime_seconds gauge\nnda_uptime_seconds %.1f\n", time.Since(m.start).Seconds())
	return b.String()
}

// RenderMetrics composes the full /metrics payload: the counter block,
// live RAM-tier gauges, the persistent store's counters when one is
// configured, and the fleet block when running as a coordinator.
func (m *Manager) RenderMetrics() string {
	var b strings.Builder
	b.WriteString(m.metrics.Render())
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gauge("nda_cache_entries", "result-cache entries resident in RAM (ready or in flight)", int64(m.cache.Len()))
	gauge("nda_cache_bytes", "approximate encoded bytes of ready RAM-tier entries", m.cache.Bytes())
	if s := m.cfg.Store; s != nil {
		c := s.Counters()
		gauge("nda_store_entries", "entries resident in the persistent store", int64(c.Entries))
		gauge("nda_store_bytes", "bytes held by the persistent store (headers and keys included)", c.Bytes)
		gauge("nda_store_max_bytes", "the persistent store's byte budget", c.MaxBytes)
		counter := func(name, help string, v int64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
		}
		counter("nda_store_hits_total", "lookups the persistent store served", c.Hits)
		counter("nda_store_misses_total", "lookups the persistent store did not hold", c.Misses)
		counter("nda_store_puts_total", "entries written to the persistent store", c.Puts)
		counter("nda_store_put_errors_total", "writes the persistent store could not complete", c.PutErrors)
		counter("nda_store_evictions_total", "entries evicted by the store's byte budget", c.Evictions)
		counter("nda_store_evicted_bytes_total", "bytes released by those evictions", c.EvictedBytes)
		counter("nda_store_dropped_on_open_total", "invalid entries dropped during open-time recovery", c.DroppedOnOpen)
	}
	if f := m.cfg.Fleet; f != nil {
		b.WriteString(f.RenderMetrics())
	}
	if stats := m.TenantStats(); len(stats) > 0 {
		series := func(name, help, typ string, v func(tenant string) int64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
			for _, s := range stats {
				fmt.Fprintf(&b, "%s{tenant=%q} %d\n", name, s.Name, v(s.Name))
			}
		}
		byName := make(map[string]tenant.Stats, len(stats))
		for _, s := range stats {
			byName[s.Name] = s
		}
		series("nda_tenant_queued", "jobs waiting in the fair-share queue per tenant", "gauge",
			func(t string) int64 { return int64(byName[t].Queued) })
		series("nda_tenant_running", "jobs currently dispatched per tenant", "gauge",
			func(t string) int64 { return int64(byName[t].Running) })
		series("nda_tenant_admitted_total", "submissions admitted past the rate quota per tenant", "counter",
			func(t string) int64 { return int64(byName[t].Admitted) })
		series("nda_tenant_dispatched_total", "jobs dispatched to workers per tenant", "counter",
			func(t string) int64 { return int64(byName[t].Dispatched) })
		series("nda_tenant_dropped_total", "submissions dropped by quota or queue bound per tenant", "counter",
			func(t string) int64 { return int64(byName[t].Dropped) })
	}
	return b.String()
}
