// Package serve turns the NDA simulator into a long-lived service: a job
// manager with a bounded queue and per-job cancellation, a
// content-addressed result cache with singleflight deduplication, and the
// handlers behind cmd/ndaserve's HTTP API.
//
// The CLI drivers (ndabench, ndattack, ndalint) recompute everything from
// scratch on every invocation. The service amortizes that cost the way
// gem5-style evaluation pipelines amortize theirs with checkpoint reuse:
// every unit of simulation work — a (workload, policy, sampling-spec)
// sweep cell, an (attack, policy) matrix cell, a workload's checkpoint
// series, a program's gadget census — is keyed by a stable hash of its
// full input description and memoized, so identical work is simulated
// once per process no matter how many requests, jobs, or clients ask for
// it. Because every cell derives its result from its key's inputs alone,
// a cache hit is byte-for-byte the response a fresh simulation would have
// produced.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"nda/internal/dist"
	"nda/internal/ooo"
	"nda/internal/par"
	"nda/internal/store"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull is returned by Submit* when the bounded job queue has no
	// free slot — the backpressure signal behind HTTP 429.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining is returned by Submit* once shutdown has begun (503).
	ErrDraining = errors.New("serve: shutting down")
)

// JobState is a job's position in its lifecycle.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Job is one queued or running unit of API work. All fields are private
// and accessed through snapshot methods so HTTP handlers can read a job
// the workers are still mutating.
type Job struct {
	id   string
	kind string

	// Progress counters, written by cell simulations as they finish. The
	// tier counters split every resolved cell by the level that served it;
	// the legacy hits/misses pair in Status is derived from them.
	total, done                                 atomic.Int64
	tierRAM, tierDisk, tierShared, tierComputed atomic.Int64

	mu        sync.Mutex
	state     JobState
	errMsg    string
	result    []byte // canonical JSON, set once on success
	cancel    context.CancelFunc
	perWorker map[string]*WorkerCells // distributed jobs: per-worker cell counts

	doneCh chan struct{} // closed when the job reaches a terminal state

	run func(ctx context.Context, j *Job) (any, error)
}

// WorkerCells is one worker's share of a distributed job: how many cell
// attempts it was sent, how many cells it completed, and how many of its
// attempts were retries or hedges.
type WorkerCells struct {
	Worker     string `json:"worker"`
	Dispatched int64  `json:"dispatched"`
	Done       int64  `json:"done"`
	Retried    int64  `json:"retried"`
	Hedged     int64  `json:"hedged"`
}

// noteDispatch folds one distributed cell's dispatch record into the job's
// per-worker counts. Safe on a nil job (the /v1/cell worker path has no
// job behind it).
func (j *Job) noteDispatch(stat dist.Stat) {
	if j == nil || len(stat.Attempts) == 0 {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.perWorker == nil {
		j.perWorker = make(map[string]*WorkerCells)
	}
	for _, a := range stat.Attempts {
		wc := j.perWorker[a.Worker]
		if wc == nil {
			wc = &WorkerCells{Worker: a.Worker}
			j.perWorker[a.Worker] = wc
		}
		wc.Dispatched++
		if a.OK {
			wc.Done++
		}
		if a.Retry {
			wc.Retried++
		}
		if a.Hedge {
			wc.Hedged++
		}
	}
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// TierCounts splits a job's resolved cells by the level that served each
// one: the in-process RAM cache, the local disk store, the fleet-shared
// store (coordinator hit — no worker was touched), or an actual
// computation (a local simulation, or a dispatch a worker simulated).
type TierCounts struct {
	RAM         int64 `json:"ram"`
	Disk        int64 `json:"disk"`
	FleetShared int64 `json:"fleet_shared"`
	Computed    int64 `json:"computed"`
}

// Status is a consistent snapshot of a job for the API. It deliberately
// carries no wall-clock fields: identical requests must produce identical
// response bytes whether they simulated or hit the cache.
type Status struct {
	ID         string   `json:"id"`
	Kind       string   `json:"kind"`
	State      JobState `json:"state"`
	DoneCells  int64    `json:"done_cells"`
	TotalCells int64    `json:"total_cells"`
	// CacheHits counts cells served without work leaving this process
	// (RAM + disk); CacheMisses counts the rest (fleet-shared + computed).
	// Tiers carries the full four-way breakdown.
	CacheHits   int64      `json:"cache_hits"`
	CacheMisses int64      `json:"cache_misses"`
	Tiers       TierCounts `json:"tiers"`
	Error       string     `json:"error,omitempty"`
	// Workers breaks a distributed job's progress down per fleet worker,
	// sorted by worker URL; empty for locally-simulated jobs.
	Workers []WorkerCells `json:"workers,omitempty"`
}

// Status returns a point-in-time snapshot.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	tiers := TierCounts{
		RAM:         j.tierRAM.Load(),
		Disk:        j.tierDisk.Load(),
		FleetShared: j.tierShared.Load(),
		Computed:    j.tierComputed.Load(),
	}
	st := Status{
		ID:          j.id,
		Kind:        j.kind,
		State:       j.state,
		DoneCells:   j.done.Load(),
		TotalCells:  j.total.Load(),
		CacheHits:   tiers.RAM + tiers.Disk,
		CacheMisses: tiers.FleetShared + tiers.Computed,
		Tiers:       tiers,
		Error:       j.errMsg,
	}
	for _, wc := range j.perWorker {
		st.Workers = append(st.Workers, *wc)
	}
	sort.Slice(st.Workers, func(a, b int) bool { return st.Workers[a].Worker < st.Workers[b].Worker })
	return st
}

// Result returns the job's result JSON and whether it is available yet.
func (j *Job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state == JobDone
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// Wait blocks until the job finishes or ctx ends.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Config sizes the manager.
type Config struct {
	// QueueDepth bounds how many jobs may wait for a worker; submissions
	// beyond it are rejected with ErrQueueFull. 0 means 16.
	QueueDepth int
	// JobWorkers bounds how many jobs execute concurrently. 0 means 2.
	JobWorkers int
	// SimWorkers bounds the goroutines each job fans its cells out over
	// (via internal/par). 0 means one per available CPU.
	SimWorkers int
	// Params is the micro-architecture the attack matrix runs on; the zero
	// value means ooo.DefaultParams (sweeps carry their own Params inside
	// the sampling config).
	Params ooo.Params
	// CacheMaxEntries caps the result cache (LRU eviction beyond it);
	// 0 means DefaultCacheMaxEntries.
	CacheMaxEntries int
	// Store, when non-nil, is the persistent disk tier under the RAM
	// cache: cell results that miss RAM are looked up here before
	// simulating (or dispatching), and computed cells are written back, so
	// a restarted process replays earlier sweeps from disk without running
	// a single simulation. Checkpoint series are deliberately not
	// persisted — only client-visible cell results are.
	Store *store.Store
	// Fleet, when non-nil, turns the manager into a coordinator: cells
	// that miss the result cache are dispatched to the fleet's workers
	// over /v1/cell instead of simulating in this process. The cache
	// stays in front, so repeated and overlapping requests are still
	// served locally without touching the fleet.
	Fleet *dist.Coordinator
}

// Manager owns the queue, the workers, and the result cache.
type Manager struct {
	cfg     Config
	cache   *Cache
	metrics *Metrics

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	draining bool
	jobs     map[string]*Job
	order    []string // job IDs in submission order

	queue  chan *Job
	wg     sync.WaitGroup
	nextID atomic.Int64
}

// NewManager starts a manager and its worker pool.
func NewManager(cfg Config) *Manager {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 2
	}
	if cfg.Params == (ooo.Params{}) {
		cfg.Params = ooo.DefaultParams()
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		metrics:    NewMetrics(),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		queue:      make(chan *Job, cfg.QueueDepth),
	}
	m.cache = NewCache(cfg.CacheMaxEntries, func(sizeBytes int) {
		m.metrics.CacheEvictions.Add(1)
		m.metrics.CacheEvictedBytes.Add(int64(sizeBytes))
	})
	for i := 0; i < cfg.JobWorkers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Metrics exposes the counter block.
func (m *Manager) Metrics() *Metrics { return m.metrics }

// Cache exposes the result cache (tests and diagnostics).
func (m *Manager) Cache() *Cache { return m.cache }

// Fleet exposes the distributed backend; nil when simulating locally.
func (m *Manager) Fleet() *dist.Coordinator { return m.cfg.Fleet }

// Store exposes the persistent disk tier; nil when running RAM-only.
func (m *Manager) Store() *store.Store { return m.cfg.Store }

// tier2 adapts the configured store to the cache's Tier interface. The
// nil check must happen on the concrete pointer — a nil *store.Store boxed
// into a Tier would pass DoTiered's interface nil check and crash.
func (m *Manager) tier2() Tier {
	if m.cfg.Store == nil {
		return nil
	}
	return m.cfg.Store
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns snapshots of every job in submission order.
func (m *Manager) Jobs() []Status {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// SubmitSweep validates and enqueues a sweep job.
func (m *Manager) SubmitSweep(req SweepRequest) (*Job, error) {
	t, err := req.task()
	if err != nil {
		return nil, err
	}
	return m.enqueue("sweep", func(ctx context.Context, j *Job) (any, error) {
		return m.runSweep(ctx, j, t)
	})
}

// SubmitAttack validates and enqueues an attack-matrix job.
func (m *Manager) SubmitAttack(req AttackRequest) (*Job, error) {
	t, err := req.task()
	if err != nil {
		return nil, err
	}
	return m.enqueue("attack", func(ctx context.Context, j *Job) (any, error) {
		return m.runAttack(ctx, j, t)
	})
}

// SubmitGadgets validates and enqueues a gadget-census job.
func (m *Manager) SubmitGadgets(req GadgetsRequest) (*Job, error) {
	t, err := req.task()
	if err != nil {
		return nil, err
	}
	return m.enqueue("gadgets", func(ctx context.Context, j *Job) (any, error) {
		return m.runGadgets(ctx, j, t)
	})
}

// enqueue registers a job and offers it to the queue without blocking:
// a full queue is the client's backpressure signal, not a wait.
func (m *Manager) enqueue(kind string, run func(context.Context, *Job) (any, error)) (*Job, error) {
	j := &Job{
		id:     fmt.Sprintf("job-%06d", m.nextID.Add(1)),
		kind:   kind,
		state:  JobQueued,
		doneCh: make(chan struct{}),
		run:    run,
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	select {
	case m.queue <- j:
	default:
		m.metrics.JobsRejected.Add(1)
		return nil, ErrQueueFull
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.metrics.JobsQueued.Add(1)
	return j, nil
}

// Cancel stops a job: a queued job is skipped when a worker reaches it, a
// running job has its context cancelled (the cores notice within a few
// thousand simulated cycles). Returns false for unknown IDs.
func (m *Manager) Cancel(id string) bool {
	j, ok := m.Get(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case JobQueued:
		j.state = JobCancelled
		j.errMsg = context.Canceled.Error()
		m.metrics.JobsCancelled.Add(1)
		close(j.doneCh)
	case JobRunning:
		j.cancel()
	}
	return true
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

func (m *Manager) runJob(j *Job) {
	j.mu.Lock()
	if j.state != JobQueued { // cancelled while queued
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	j.state = JobRunning
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()

	m.metrics.JobsRunning.Add(1)
	v, err := j.run(ctx, j)
	m.metrics.JobsRunning.Add(-1)

	var result []byte
	if err == nil {
		result, err = json.Marshal(v)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case err == nil:
		j.state = JobDone
		j.result = result
		m.metrics.JobsDone.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = JobCancelled
		j.errMsg = err.Error()
		m.metrics.JobsCancelled.Add(1)
	default:
		j.state = JobFailed
		j.errMsg = err.Error()
		m.metrics.JobsFailed.Add(1)
	}
	close(j.doneCh)
}

// Shutdown drains the service: new submissions are rejected with
// ErrDraining immediately, queued and in-flight jobs run to completion,
// and Shutdown returns when the workers have exited. If ctx ends first,
// the remaining jobs are cancelled (they finish as JobCancelled, never
// silently dropped) and ctx's error is returned.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	alreadyDraining := m.draining
	if !alreadyDraining {
		m.draining = true
		close(m.queue)
	}
	m.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		if alreadyDraining {
			return nil
		}
		m.baseCancel()
		return nil
	case <-ctx.Done():
		m.baseCancel()
		<-idle
		return ctx.Err()
	}
}

// simWorkers resolves the per-job fan-out width: locally one goroutine per
// configured sim worker; as a coordinator, enough to fill every worker's
// in-flight window (the goroutines mostly block on I/O, not simulate).
func (m *Manager) simWorkers() int {
	if m.cfg.Fleet != nil {
		return m.cfg.Fleet.Capacity()
	}
	return par.Workers(m.cfg.SimWorkers)
}
