// Package serve turns the NDA simulator into a long-lived service: a job
// manager with a bounded queue and per-job cancellation, a
// content-addressed result cache with singleflight deduplication, and the
// handlers behind cmd/ndaserve's HTTP API.
//
// The CLI drivers (ndabench, ndattack, ndalint) recompute everything from
// scratch on every invocation. The service amortizes that cost the way
// gem5-style evaluation pipelines amortize theirs with checkpoint reuse:
// every unit of simulation work — a (workload, policy, sampling-spec)
// sweep cell, an (attack, policy) matrix cell, a workload's checkpoint
// series, a program's gadget census — is keyed by a stable hash of its
// full input description and memoized, so identical work is simulated
// once per process no matter how many requests, jobs, or clients ask for
// it. Because every cell derives its result from its key's inputs alone,
// a cache hit is byte-for-byte the response a fresh simulation would have
// produced.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nda/internal/dist"
	"nda/internal/ooo"
	"nda/internal/par"
	"nda/internal/store"
	"nda/internal/tenant"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull is returned by Submit* when the bounded job queue has no
	// free slot — the backpressure signal behind HTTP 429.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining is returned by Submit* once shutdown has begun (503).
	ErrDraining = errors.New("serve: shutting down")
)

// JobState is a job's position in its lifecycle.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Job is one queued or running unit of API work. All fields are private
// and accessed through snapshot methods so HTTP handlers can read a job
// the workers are still mutating.
type Job struct {
	id     string
	kind   string
	tenant string       // accounting owner; tenant.LocalName when untenanted
	class  tenant.Class // scheduling class the job was submitted under

	// Progress counters, written by cell simulations as they finish. The
	// tier counters split every resolved cell by the level that served it;
	// the legacy hits/misses pair in Status is derived from them.
	total, done                                 atomic.Int64
	tierRAM, tierDisk, tierShared, tierComputed atomic.Int64

	// version increments on every observable status change (cell done,
	// state transition, worker attempt). It invalidates the cached status
	// snapshot and numbers SSE events for Last-Event-ID resume.
	version    atomic.Int64
	snapBuilds atomic.Int64 // snapshots actually marshalled (test observability)

	mu        sync.Mutex
	state     JobState
	errMsg    string
	result    []byte // canonical JSON, set once on success
	cancel    context.CancelFunc
	perWorker map[string]*WorkerCells // distributed jobs: per-worker cell counts
	snap      []byte                  // cached marshalled Status, valid while snapVer == version
	snapVer   int64
	subs      map[chan struct{}]struct{} // SSE subscribers, notified (latest-wins) per bump

	doneCh chan struct{} // closed when the job reaches a terminal state

	run func(ctx context.Context, j *Job) (any, error)
}

// WorkerCells is one worker's share of a distributed job: how many cell
// attempts it was sent, how many cells it completed, and how many of its
// attempts were retries or hedges.
type WorkerCells struct {
	Worker     string `json:"worker"`
	Dispatched int64  `json:"dispatched"`
	Done       int64  `json:"done"`
	Retried    int64  `json:"retried"`
	Hedged     int64  `json:"hedged"`
}

// noteDispatch folds one distributed cell's dispatch record into the job's
// per-worker counts. Safe on a nil job (the /v1/cell worker path has no
// job behind it).
func (j *Job) noteDispatch(stat dist.Stat) {
	if j == nil || len(stat.Attempts) == 0 {
		return
	}
	j.mu.Lock()
	if j.perWorker == nil {
		j.perWorker = make(map[string]*WorkerCells)
	}
	for _, a := range stat.Attempts {
		wc := j.perWorker[a.Worker]
		if wc == nil {
			wc = &WorkerCells{Worker: a.Worker}
			j.perWorker[a.Worker] = wc
		}
		wc.Dispatched++
		if a.OK {
			wc.Done++
		}
		if a.Retry {
			wc.Retried++
		}
		if a.Hedge {
			wc.Hedged++
		}
	}
	j.mu.Unlock()
	j.bump()
}

// bump marks the job's status changed: the next StatusJSON rebuilds its
// snapshot, and every SSE subscriber is poked (non-blocking, latest-wins —
// a slow consumer coalesces updates instead of backing up the fold path).
func (j *Job) bump() {
	j.version.Add(1)
	j.mu.Lock()
	j.notifyLocked()
	j.mu.Unlock()
}

// notifyLocked pokes every subscriber without blocking. Called with j.mu
// held. Each subscriber channel has capacity 1: a pending poke already
// says "re-read the snapshot", so dropping further pokes loses nothing.
func (j *Job) notifyLocked() {
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// subscribe registers an SSE consumer's wake-up channel.
func (j *Job) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	if j.subs == nil {
		j.subs = make(map[chan struct{}]struct{})
	}
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch
}

// unsubscribe removes a consumer registered with subscribe.
func (j *Job) unsubscribe(ch chan struct{}) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// TierCounts splits a job's resolved cells by the level that served each
// one: the in-process RAM cache, the local disk store, the fleet-shared
// store (coordinator hit — no worker was touched), or an actual
// computation (a local simulation, or a dispatch a worker simulated).
type TierCounts struct {
	RAM         int64 `json:"ram"`
	Disk        int64 `json:"disk"`
	FleetShared int64 `json:"fleet_shared"`
	Computed    int64 `json:"computed"`
}

// Status is a consistent snapshot of a job for the API. It deliberately
// carries no wall-clock fields: identical requests must produce identical
// response bytes whether they simulated or hit the cache.
type Status struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Tenant and Class appear only on tenanted deployments (jobs owned by
	// the implicit local tenant omit both), so single-tenant responses are
	// byte-identical to earlier releases.
	Tenant     string       `json:"tenant,omitempty"`
	Class      tenant.Class `json:"class,omitempty"`
	State      JobState     `json:"state"`
	DoneCells  int64        `json:"done_cells"`
	TotalCells int64        `json:"total_cells"`
	// CacheHits counts cells served without work leaving this process
	// (RAM + disk); CacheMisses counts the rest (fleet-shared + computed).
	// Tiers carries the full four-way breakdown.
	CacheHits   int64      `json:"cache_hits"`
	CacheMisses int64      `json:"cache_misses"`
	Tiers       TierCounts `json:"tiers"`
	Error       string     `json:"error,omitempty"`
	// Workers breaks a distributed job's progress down per fleet worker,
	// sorted by worker URL; empty for locally-simulated jobs.
	Workers []WorkerCells `json:"workers,omitempty"`
}

// Status returns a point-in-time snapshot.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// StatusJSON returns the job's status marshalled once per version: polls
// and SSE events between cell completions share the same cached bytes
// instead of re-marshalling the full per-worker/tier breakdown each time.
// The returned slice must not be modified.
func (j *Job) StatusJSON() []byte {
	ver := j.version.Load()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.snap != nil && j.snapVer == ver {
		return j.snap
	}
	// Counters may advance between the version load and this marshal; the
	// snapshot is then newer than ver and simply rebuilt again on the next
	// poll after the matching bump — never stale.
	b, err := json.Marshal(j.statusLocked())
	if err != nil { // Status has no unmarshalable fields
		return []byte("{}")
	}
	j.snap, j.snapVer = b, ver
	j.snapBuilds.Add(1)
	return b
}

// Version returns the job's status version (SSE event IDs).
func (j *Job) Version() int64 { return j.version.Load() }

// statusLocked builds the snapshot. Called with j.mu held.
func (j *Job) statusLocked() Status {
	tiers := TierCounts{
		RAM:         j.tierRAM.Load(),
		Disk:        j.tierDisk.Load(),
		FleetShared: j.tierShared.Load(),
		Computed:    j.tierComputed.Load(),
	}
	st := Status{
		ID:          j.id,
		Kind:        j.kind,
		State:       j.state,
		DoneCells:   j.done.Load(),
		TotalCells:  j.total.Load(),
		CacheHits:   tiers.RAM + tiers.Disk,
		CacheMisses: tiers.FleetShared + tiers.Computed,
		Tiers:       tiers,
		Error:       j.errMsg,
	}
	if j.tenant != "" && j.tenant != tenant.LocalName {
		st.Tenant = j.tenant
		st.Class = j.class
	}
	for _, wc := range j.perWorker {
		st.Workers = append(st.Workers, *wc)
	}
	sort.Slice(st.Workers, func(a, b int) bool { return st.Workers[a].Worker < st.Workers[b].Worker })
	return st
}

// Result returns the job's result JSON and whether it is available yet.
func (j *Job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state == JobDone
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// Wait blocks until the job finishes or ctx ends.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Config sizes the manager.
type Config struct {
	// QueueDepth bounds how many jobs may wait for a worker; submissions
	// beyond it are rejected with ErrQueueFull. 0 means 16.
	QueueDepth int
	// JobWorkers bounds how many jobs execute concurrently. 0 means 2.
	JobWorkers int
	// SimWorkers bounds the goroutines each job fans its cells out over
	// (via internal/par). 0 means one per available CPU.
	SimWorkers int
	// Params is the micro-architecture the attack matrix runs on; the zero
	// value means ooo.DefaultParams (sweeps carry their own Params inside
	// the sampling config).
	Params ooo.Params
	// CacheMaxEntries caps the result cache (LRU eviction beyond it);
	// 0 means DefaultCacheMaxEntries.
	CacheMaxEntries int
	// Store, when non-nil, is the persistent disk tier under the RAM
	// cache: cell results that miss RAM are looked up here before
	// simulating (or dispatching), and computed cells are written back, so
	// a restarted process replays earlier sweeps from disk without running
	// a single simulation. Checkpoint series are deliberately not
	// persisted — only client-visible cell results are.
	Store *store.Store
	// Fleet, when non-nil, turns the manager into a coordinator: cells
	// that miss the result cache are dispatched to the fleet's workers
	// over /v1/cell instead of simulating in this process. The cache
	// stays in front, so repeated and overlapping requests are still
	// served locally without touching the fleet.
	Fleet *dist.Coordinator
	// Tenants declares the service's API-key tenants. Empty means
	// single-tenant: every submission runs as the implicit local tenant
	// and the fair-share scheduler degenerates to FIFO. An invalid list
	// panics in NewManager — CLI input is validated by cliutil first.
	Tenants []tenant.Tenant
	// StreamHeartbeat is the SSE keep-alive interval on
	// GET /v1/jobs/{id}?stream=1. 0 means 15s.
	StreamHeartbeat time.Duration
	// AdmissionBypass bounds how many store-served jobs may run
	// concurrently outside the worker pool when the queue is saturated
	// (store-aware admission). 0 means 2; negative disables the bypass.
	// Bypass jobs still count toward their tenant's rate quota and
	// MaxInFlight cap — the cap is a hard concurrency bound either way.
	AdmissionBypass int
}

// Manager owns the queue, the workers, and the result cache.
type Manager struct {
	cfg     Config
	cache   *Cache
	metrics *Metrics

	baseCtx    context.Context
	baseCancel context.CancelFunc

	// mu guards the scheduler, the job registry, and draining; cond wakes
	// workers when a job is enqueued or an in-flight slot frees up. Lock
	// order is always m.mu before j.mu.
	mu        sync.Mutex
	cond      *sync.Cond
	draining  bool
	bypassing int // store-admission jobs currently running outside the pool
	jobs      map[string]*Job
	order     []string // job IDs in submission order

	sched  *tenant.Scheduler
	wg     sync.WaitGroup
	nextID atomic.Int64
}

// NewManager starts a manager and its worker pool.
func NewManager(cfg Config) *Manager {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 2
	}
	if cfg.Params == (ooo.Params{}) {
		cfg.Params = ooo.DefaultParams()
	}
	if cfg.AdmissionBypass == 0 {
		cfg.AdmissionBypass = 2
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		metrics:    NewMetrics(),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		sched:      tenant.NewScheduler(cfg.Tenants, cfg.QueueDepth),
	}
	m.cond = sync.NewCond(&m.mu)
	m.cache = NewCache(cfg.CacheMaxEntries, func(sizeBytes int) {
		m.metrics.CacheEvictions.Add(1)
		m.metrics.CacheEvictedBytes.Add(int64(sizeBytes))
	})
	for i := 0; i < cfg.JobWorkers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Metrics exposes the counter block.
func (m *Manager) Metrics() *Metrics { return m.metrics }

// Cache exposes the result cache (tests and diagnostics).
func (m *Manager) Cache() *Cache { return m.cache }

// Fleet exposes the distributed backend; nil when simulating locally.
func (m *Manager) Fleet() *dist.Coordinator { return m.cfg.Fleet }

// Store exposes the persistent disk tier; nil when running RAM-only.
func (m *Manager) Store() *store.Store { return m.cfg.Store }

// tier2 adapts the configured store to the cache's Tier interface. The
// nil check must happen on the concrete pointer — a nil *store.Store boxed
// into a Tier would pass DoTiered's interface nil check and crash.
func (m *Manager) tier2() Tier {
	if m.cfg.Store == nil {
		return nil
	}
	return m.cfg.Store
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns snapshots of every job in submission order.
func (m *Manager) Jobs() []Status { return m.JobsFor("") }

// JobsFor returns snapshots of the named tenant's jobs in submission
// order; the empty name (untenanted deployments) returns every job.
func (m *Manager) JobsFor(tenantName string) []Status {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		if j := m.jobs[id]; tenantName == "" || j.tenant == tenantName {
			jobs = append(jobs, j)
		}
	}
	m.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// SubmitOpts attributes a submission to a tenant and scheduling class.
// The zero value — the implicit local tenant, batch class — reproduces the
// pre-tenancy behavior exactly.
type SubmitOpts struct {
	Tenant string       // accounting owner; "" means tenant.LocalName
	Class  tenant.Class // scheduling class; "" means tenant.Batch
}

func resolveOpts(opts []SubmitOpts) SubmitOpts {
	var o SubmitOpts
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.Tenant == "" {
		o.Tenant = tenant.LocalName
	}
	if o.Class == "" {
		o.Class = tenant.Batch
	}
	return o
}

// SubmitSweep validates and enqueues a sweep job.
func (m *Manager) SubmitSweep(req SweepRequest, opts ...SubmitOpts) (*Job, error) {
	t, err := req.task()
	if err != nil {
		return nil, err
	}
	return m.enqueueAs("sweep", resolveOpts(opts), t.cellKeys(), func(ctx context.Context, j *Job) (any, error) {
		return m.runSweep(ctx, j, t)
	})
}

// SubmitAttack validates and enqueues an attack-matrix job.
func (m *Manager) SubmitAttack(req AttackRequest, opts ...SubmitOpts) (*Job, error) {
	t, err := req.task()
	if err != nil {
		return nil, err
	}
	return m.enqueueAs("attack", resolveOpts(opts), t.cellKeys(m.cfg.Params), func(ctx context.Context, j *Job) (any, error) {
		return m.runAttack(ctx, j, t)
	})
}

// SubmitGadgets validates and enqueues a gadget-census job.
func (m *Manager) SubmitGadgets(req GadgetsRequest, opts ...SubmitOpts) (*Job, error) {
	t, err := req.task()
	if err != nil {
		return nil, err
	}
	return m.enqueueAs("gadgets", resolveOpts(opts), t.cellKeys(), func(ctx context.Context, j *Job) (any, error) {
		return m.runGadgets(ctx, j, t)
	})
}

// TenantForKey resolves an API key to its tenant (the HTTP auth path).
func (m *Manager) TenantForKey(key string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sched.TenantForKey(key)
}

// Tenanted reports whether the manager runs with configured tenants (and
// therefore requires API keys on submissions).
func (m *Manager) Tenanted() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sched.Tenanted()
}

// TenantStats snapshots the per-tenant scheduler accounting for /metrics.
func (m *Manager) TenantStats() []tenant.Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sched.TenantStats()
}

// enqueue is the untenanted path: local tenant, batch class, no admission
// keys (tests and internal submissions).
func (m *Manager) enqueue(kind string, run func(context.Context, *Job) (any, error)) (*Job, error) {
	return m.enqueueAs(kind, resolveOpts(nil), nil, run)
}

// enqueueAs admits a submission against its tenant's quota and offers it
// to the fair-share queue without blocking: a full queue is the client's
// backpressure signal, not a wait — unless every one of the job's cells is
// already resolvable from the RAM or disk tier, in which case the job runs
// outside the worker pool instead of bouncing (store-aware admission: a
// saturated simulation queue is no reason to refuse work that needs no
// simulation).
func (m *Manager) enqueueAs(kind string, o SubmitOpts, keys []string, run func(context.Context, *Job) (any, error)) (*Job, error) {
	j := &Job{
		id:     fmt.Sprintf("job-%06d", m.nextID.Add(1)),
		kind:   kind,
		tenant: o.Tenant,
		class:  o.Class,
		state:  JobQueued,
		doneCh: make(chan struct{}),
		run:    run,
	}
	//ndavet:allow detlint admission wall clock feeds rate quotas and Retry-After only, never results
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	if m.sched.Full() {
		// Queue saturated. Before 429ing, try the bypass: quota and the
		// tenant's in-flight cap still apply (the tenant is consuming
		// service either way), but the job never occupies a queue slot or
		// a sim worker.
		if !m.storeResolvable(keys) || m.bypassing >= m.cfg.AdmissionBypass || !m.sched.HasSlot(o.Tenant) {
			m.metrics.JobsRejected.Add(1)
			return nil, ErrQueueFull
		}
		if err := m.sched.Admit(o.Tenant, now); err != nil {
			m.metrics.QuotaRejected.Add(1)
			return nil, err
		}
		// Cannot exceed the cap: HasSlot was true and m.mu is held
		// throughout.
		m.sched.Reserve(o.Tenant)
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		m.metrics.JobsQueued.Add(1)
		m.metrics.AdmissionStoreServed.Add(1)
		m.bypassing++
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.runJob(j)
			m.mu.Lock()
			m.bypassing--
			m.sched.Release(o.Tenant)
			// The freed slot may make a capped tenant's queued job
			// eligible for a parked worker.
			m.cond.Broadcast()
			m.mu.Unlock()
		}()
		return j, nil
	}
	if err := m.sched.Admit(o.Tenant, now); err != nil {
		m.metrics.QuotaRejected.Add(1)
		return nil, err
	}
	// Cannot fail: Full() was false and m.mu is held throughout.
	if err := m.sched.Enqueue(o.Tenant, o.Class, j); err != nil {
		m.metrics.JobsRejected.Add(1)
		return nil, ErrQueueFull
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.metrics.JobsQueued.Add(1)
	m.cond.Signal()
	return j, nil
}

// storeResolvable reports whether every key is already a guaranteed RAM
// hit or present in the disk store — a job over these cells completes
// without simulating or dispatching. Called with m.mu held; false when
// keys are unknown (warm jobs) or empty.
func (m *Manager) storeResolvable(keys []string) bool {
	if len(keys) == 0 || m.cfg.AdmissionBypass < 0 {
		return false
	}
	for _, k := range keys {
		if m.cache.Contains(k) {
			continue
		}
		if m.cfg.Store != nil && m.cfg.Store.Has(k) {
			continue
		}
		return false
	}
	return true
}

// Cancel stops a job: a queued job is pulled out of the fair-share queue
// immediately, a running job has its context cancelled (the cores notice
// within a few thousand simulated cycles). Returns false for unknown IDs.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return false
	}
	j.mu.Lock()
	switch j.state {
	case JobQueued:
		// Best-effort removal: a worker may have dispatched the job
		// between our locks, in which case runJob sees the cancelled
		// state and returns without running it.
		m.sched.Remove(j.tenant, j.class, j)
		j.state = JobCancelled
		j.errMsg = context.Canceled.Error()
		m.metrics.JobsCancelled.Add(1)
		j.version.Add(1)
		j.notifyLocked()
		close(j.doneCh)
		// A drain waiting on QueuedLen()==0 may now be able to finish.
		m.cond.Broadcast()
	case JobRunning:
		j.cancel()
	}
	j.mu.Unlock()
	m.mu.Unlock()
	return true
}

// worker pulls jobs off the fair-share scheduler until drain completes.
// Dispatch order is the scheduler's; a worker parks when nothing is
// eligible (empty queue, or every backlogged tenant at its in-flight cap)
// and is woken by Enqueue or by another worker's Release.
func (m *Manager) worker() {
	defer m.wg.Done()
	m.mu.Lock()
	for {
		if v, name, _, ok := m.sched.Next(); ok {
			m.mu.Unlock()
			m.runJob(v.(*Job))
			m.mu.Lock()
			m.sched.Release(name)
			// The release may make a capped tenant's next job eligible
			// for a parked sibling.
			m.cond.Broadcast()
			continue
		}
		if m.draining && m.sched.QueuedLen() == 0 {
			m.mu.Unlock()
			return
		}
		m.cond.Wait()
	}
}

func (m *Manager) runJob(j *Job) {
	j.mu.Lock()
	if j.state != JobQueued { // cancelled while queued
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	j.state = JobRunning
	j.cancel = cancel
	j.version.Add(1)
	j.notifyLocked()
	j.mu.Unlock()
	defer cancel()

	m.metrics.JobsRunning.Add(1)
	v, err := j.run(ctx, j)
	m.metrics.JobsRunning.Add(-1)

	var result []byte
	if err == nil {
		result, err = json.Marshal(v)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case err == nil:
		j.state = JobDone
		j.result = result
		m.metrics.JobsDone.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = JobCancelled
		j.errMsg = err.Error()
		m.metrics.JobsCancelled.Add(1)
	default:
		j.state = JobFailed
		j.errMsg = err.Error()
		m.metrics.JobsFailed.Add(1)
	}
	j.version.Add(1)
	j.notifyLocked()
	close(j.doneCh)
}

// Shutdown drains the service: new submissions are rejected with
// ErrDraining immediately, queued and in-flight jobs run to completion,
// and Shutdown returns when the workers have exited. If ctx ends first,
// the remaining jobs are cancelled (they finish as JobCancelled, never
// silently dropped) and ctx's error is returned.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	alreadyDraining := m.draining
	if !alreadyDraining {
		m.draining = true
		// Wake every parked worker so it can re-check the drain condition
		// (and keep draining the remaining queued jobs).
		m.cond.Broadcast()
	}
	m.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		if alreadyDraining {
			return nil
		}
		m.baseCancel()
		return nil
	case <-ctx.Done():
		m.baseCancel()
		<-idle
		return ctx.Err()
	}
}

// simWorkers resolves the per-job fan-out width: locally one goroutine per
// configured sim worker; as a coordinator, enough to fill every worker's
// in-flight window (the goroutines mostly block on I/O, not simulate).
func (m *Manager) simWorkers() int {
	if m.cfg.Fleet != nil {
		return m.cfg.Fleet.Capacity()
	}
	return par.Workers(m.cfg.SimWorkers)
}
