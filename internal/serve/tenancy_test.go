package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"nda/internal/tenant"
)

// newTenantServer is newTestServer with a caller-chosen config (tenants,
// queue shape, heartbeat).
func newTenantServer(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	m := NewManager(cfg)
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return m, srv
}

// postKey posts a JSON body with an X-API-Key header.
func postKey(t *testing.T, url, key string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var b bytes.Buffer
	_, err := b.ReadFrom(resp.Body)
	return b.Bytes(), err
}

func twoTenants() []tenant.Tenant {
	return []tenant.Tenant{
		{Name: "alice", Key: "key-a", Weight: 5},
		{Name: "bob", Key: "key-b", Weight: 1},
	}
}

// TestFIFOVsFairShareByteIdentical is the tentpole's determinism
// acceptance: the scheduler decides only *when* a job runs, never *what* it
// computes, so an untenanted FIFO manager and a tenanted fair-share one
// produce byte-identical sweep results.
func TestFIFOVsFairShareByteIdentical(t *testing.T) {
	req := SweepRequest{
		Workloads: []string{"exchange2"},
		Policies:  []string{"OoO", "Permissive"},
		Sampling:  tinySampling(),
	}
	run := func(cfg Config, opts ...SubmitOpts) []byte {
		m := NewManager(cfg)
		defer m.Shutdown(context.Background())
		j, err := m.SubmitSweep(req, opts...)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, j, JobDone)
		res, ok := j.Result()
		if !ok {
			t.Fatal("done job has no result")
		}
		return res
	}
	fifo := run(Config{QueueDepth: 4, JobWorkers: 1, SimWorkers: 2})
	fair := run(Config{QueueDepth: 4, JobWorkers: 2, SimWorkers: 2, Tenants: twoTenants()},
		SubmitOpts{Tenant: "alice", Class: tenant.Interactive})
	if !bytes.Equal(fifo, fair) {
		t.Errorf("fair-share result differs from FIFO result:\nfifo: %s\nfair: %s", fifo, fair)
	}
}

// TestFairShareDispatchOrder pins the serve-layer dispatch sequence: with
// one worker held and a 3:1 weight split backlogged behind it, jobs leave
// the queue in the stride order, not submission order.
func TestFairShareDispatchOrder(t *testing.T) {
	m := NewManager(Config{QueueDepth: 16, JobWorkers: 1, Tenants: []tenant.Tenant{
		{Name: "heavy", Key: "kh", Weight: 3},
		{Name: "light", Key: "kl", Weight: 1},
	}})
	defer m.Shutdown(context.Background())

	release := make(chan struct{})
	blocker := blockingJob(t, m, release)
	waitRunning(t, blocker)

	var mu sync.Mutex
	var got []string
	jobs := make([]*Job, 0, 8)
	submit := func(name string) {
		j, err := m.enqueueAs("test", SubmitOpts{Tenant: name, Class: tenant.Batch}, nil,
			func(ctx context.Context, j *Job) (any, error) {
				mu.Lock()
				got = append(got, name[:1])
				mu.Unlock()
				return "ok", nil
			})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	// Submission order is light-first; dispatch order must not be.
	for i := 0; i < 4; i++ {
		submit("light")
	}
	for i := 0; i < 4; i++ {
		submit("heavy")
	}
	close(release)
	for _, j := range jobs {
		waitState(t, j, JobDone)
	}

	// Stride trace for weights 3:1, both batch, heavy first in scan order:
	// tie at 0 goes to heavy, then light, then heavy pulls ahead 3:1 until
	// its backlog drains and the remaining light jobs run.
	want := "h,l,h,h,h,l,l,l"
	mu.Lock()
	order := strings.Join(got, ",")
	mu.Unlock()
	if order != want {
		t.Errorf("dispatch order = %s, want %s", order, want)
	}
}

// TestTenantAuthOverHTTP: tenanted deployments require a key on every
// submission; both header forms work; unknown keys and missing keys are
// 401s; the job status carries the owning tenant.
func TestTenantAuthOverHTTP(t *testing.T) {
	_, srv := newTenantServer(t, Config{QueueDepth: 8, JobWorkers: 2, Tenants: twoTenants()})
	req := GadgetsRequest{Programs: []string{"meltdown"}}

	resp, body := postKey(t, srv.URL+"/v1/gadgets", "", req)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("missing key = %d: %s", resp.StatusCode, body)
	}
	resp, body = postKey(t, srv.URL+"/v1/gadgets", "no-such-key", req)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unknown key = %d: %s", resp.StatusCode, body)
	}

	resp, body = postKey(t, srv.URL+"/v1/gadgets", "key-a", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("X-API-Key submit = %d: %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "alice" || st.Class != tenant.Batch {
		t.Errorf("status tenant/class = %q/%q, want alice/batch", st.Tenant, st.Class)
	}

	// Authorization: Bearer is equivalent; ?wait=1 defaults to interactive.
	hr, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/gadgets?wait=1", strings.NewReader(`{"programs":["meltdown"]}`))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Authorization", "Bearer key-b")
	resp2, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	if body, _ := readAll(resp2); resp2.StatusCode != http.StatusOK {
		t.Fatalf("Bearer wait submit = %d: %s", resp2.StatusCode, body)
	}

	// A bad class name is a 400, not a silent default.
	resp, body = postKey(t, srv.URL+"/v1/gadgets?class=bogus", "key-a", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad class = %d: %s", resp.StatusCode, body)
	}

	// Health and metrics stay unauthenticated.
	if resp, _ := get(t, srv.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz behind auth: %d", resp.StatusCode)
	}
}

// TestQuotaRejectsWithRetryAfter: a tenant past its token bucket gets a 429
// carrying a Retry-After hint, and the drop is visible in the quota counter
// and the per-tenant metrics block.
func TestQuotaRejectsWithRetryAfter(t *testing.T) {
	m, srv := newTenantServer(t, Config{QueueDepth: 8, JobWorkers: 2, Tenants: []tenant.Tenant{
		{Name: "alice", Key: "key-a", Weight: 1, Rate: 1, Burst: 1},
		{Name: "bob", Key: "key-b", Weight: 1},
	}})
	req := GadgetsRequest{Programs: []string{"meltdown"}}

	resp, body := postKey(t, srv.URL+"/v1/gadgets", "key-a", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d: %s", resp.StatusCode, body)
	}
	resp, body = postKey(t, srv.URL+"/v1/gadgets", "key-a", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %d: %s", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e["error"], "quota") {
		t.Errorf("429 body %q (%v)", body, err)
	}
	if got := m.Metrics().QuotaRejected.Load(); got != 1 {
		t.Errorf("QuotaRejected = %d, want 1", got)
	}

	// An unlimited tenant is unaffected by alice's exhaustion.
	if resp, body := postKey(t, srv.URL+"/v1/gadgets", "key-b", req); resp.StatusCode != http.StatusAccepted {
		t.Errorf("bob submit = %d: %s", resp.StatusCode, body)
	}

	// The per-tenant series render with the drop attributed to alice.
	_, metrics := get(t, srv.URL+"/metrics")
	for _, want := range []string{
		`nda_tenant_dropped_total{tenant="alice"} 1`,
		`nda_tenant_dropped_total{tenant="bob"} 0`,
		`nda_tenant_queued{tenant="alice"}`,
		"nda_jobs_quota_rejected_total 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestStoreAwareAdmission: a saturated queue still admits a job whose every
// cell is already resolvable from the cache — it runs outside the worker
// pool, counts toward the admission counter, and answers byte-identically —
// while an uncached job keeps getting the 429 signal.
func TestStoreAwareAdmission(t *testing.T) {
	m := NewManager(Config{QueueDepth: 1, JobWorkers: 1, SimWorkers: 2})
	release := make(chan struct{})
	t.Cleanup(func() {
		close(release)
		m.Shutdown(context.Background())
	})
	req := SweepRequest{Workloads: []string{"exchange2"}, Policies: []string{"OoO"}, Sampling: tinySampling()}

	// Warm the cache with the sweep's cells.
	j1, err := m.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, JobDone)
	cold, _ := j1.Result()

	// Saturate: one job running, one filling the single queue slot.
	running := blockingJob(t, m, release)
	waitRunning(t, running)
	blockingJob(t, m, release)

	// An uncached job bounces...
	_, err = m.SubmitSweep(SweepRequest{Workloads: []string{"xz"}, Policies: []string{"OoO"}, Sampling: tinySampling()})
	if err != ErrQueueFull {
		t.Fatalf("uncached submit on full queue = %v, want ErrQueueFull", err)
	}
	// ...the fully-cached repeat does not.
	j2, err := m.SubmitSweep(req)
	if err != nil {
		t.Fatalf("cached submit on full queue = %v, want admission", err)
	}
	waitState(t, j2, JobDone)
	warm, _ := j2.Result()
	if !bytes.Equal(cold, warm) {
		t.Errorf("bypass-admitted result differs from cold run:\ncold: %s\nwarm: %s", cold, warm)
	}
	if got := m.Metrics().AdmissionStoreServed.Load(); got != 1 {
		t.Errorf("AdmissionStoreServed = %d, want 1", got)
	}
	if got := m.Metrics().JobsRejected.Load(); got != 1 {
		t.Errorf("JobsRejected = %d, want 1 (the uncached submission)", got)
	}
}

// TestSlowSubscriberNeverBlocksJob: a subscriber that never drains its
// channel must not slow the fold path — every bump is a non-blocking poke.
func TestSlowSubscriberNeverBlocksJob(t *testing.T) {
	m := NewManager(Config{QueueDepth: 4, JobWorkers: 1})
	defer m.Shutdown(context.Background())

	gate := make(chan struct{})
	j, err := m.enqueue("test", func(ctx context.Context, j *Job) (any, error) {
		<-gate
		for i := 0; i < 10_000; i++ {
			j.bump() // a cell completion's status change
		}
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ch := j.subscribe() // never drained
	defer j.unsubscribe(ch)
	close(gate)
	waitState(t, j, JobDone) // would time out if bump ever blocked
	if len(ch) > 1 {
		t.Errorf("subscriber channel holds %d pokes, want coalesced <= 1", len(ch))
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	id    int64
	event string
	data  string
}

// readSSE consumes a stream until a done event (or EOF) and returns the
// events seen. Comment heartbeats are counted, not returned.
func readSSE(t *testing.T, resp *http.Response) (events []sseEvent, heartbeats int) {
	t.Helper()
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	cur := sseEvent{id: -1}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" {
				events = append(events, cur)
				if cur.event == "done" {
					return events, heartbeats
				}
			}
			cur = sseEvent{id: -1}
		case strings.HasPrefix(line, ": "):
			heartbeats++
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				t.Fatalf("bad event id line %q", line)
			}
			cur.id = n
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return events, heartbeats
}

// TestSSEStream: ?stream=1 pushes progress events with monotonically
// increasing ids and valid status payloads, ends with an explicit done
// event, and Last-Event-ID resume replays nothing the client already saw.
func TestSSEStream(t *testing.T) {
	_, srv := newTenantServer(t, Config{QueueDepth: 8, JobWorkers: 2, SimWorkers: 2})
	resp, body := post(t, srv.URL+"/v1/sweep", SweepRequest{
		Workloads: []string{"exchange2"},
		Policies:  []string{"OoO", "Permissive"},
		Sampling:  tinySampling(),
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	sresp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type = %q", ct)
	}
	events, _ := readSSE(t, sresp)
	if len(events) < 2 {
		t.Fatalf("stream delivered %d events, want >= 2 (progress + done)", len(events))
	}
	last := events[len(events)-1]
	if last.event != "done" || !strings.Contains(last.data, string(JobDone)) {
		t.Fatalf("final event = %+v, want done", last)
	}
	prevID := int64(-1)
	for _, ev := range events[:len(events)-1] {
		if ev.event != "progress" {
			t.Errorf("unexpected event %q before done", ev.event)
		}
		if ev.id <= prevID {
			t.Errorf("event ids not increasing: %d after %d", ev.id, prevID)
		}
		prevID = ev.id
		var ps Status
		if err := json.Unmarshal([]byte(ev.data), &ps); err != nil || ps.ID != st.ID {
			t.Errorf("progress payload %q (%v)", ev.data, err)
		}
	}
	final := events[len(events)-2]
	var ps Status
	if err := json.Unmarshal([]byte(final.data), &ps); err != nil {
		t.Fatal(err)
	}
	if ps.State != JobDone || ps.DoneCells != ps.TotalCells {
		t.Errorf("final progress snapshot %+v, want done with all cells", ps)
	}

	// Resume past the end: a client that saw everything gets only the done
	// marker, no replayed progress.
	rreq, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs/"+st.ID+"?stream=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	rreq.Header.Set("Last-Event-ID", strconv.FormatInt(last.id, 10))
	rresp, err := http.DefaultClient.Do(rreq)
	if err != nil {
		t.Fatal(err)
	}
	revents, _ := readSSE(t, rresp)
	if len(revents) != 1 || revents[0].event != "done" {
		t.Errorf("resume replayed %+v, want exactly one done event", revents)
	}
}

// TestStatusSnapshotCached: polls between status changes share one
// marshalled snapshot; the build counter does not move with poll volume.
func TestStatusSnapshotCached(t *testing.T) {
	m := NewManager(Config{QueueDepth: 4, JobWorkers: 1})
	defer m.Shutdown(context.Background())
	j, err := m.enqueue("test", func(ctx context.Context, j *Job) (any, error) { return "ok", nil })
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, JobDone)

	first := j.StatusJSON()
	builds := j.snapBuilds.Load()
	for i := 0; i < 100; i++ {
		if b := j.StatusJSON(); !bytes.Equal(b, first) {
			t.Fatalf("snapshot changed between polls: %s vs %s", first, b)
		}
	}
	if got := j.snapBuilds.Load(); got != builds {
		t.Errorf("snapshot rebuilt %d times across idle polls, want 0", got-builds)
	}
	want, err := json.Marshal(j.Status())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, want) {
		t.Errorf("cached snapshot %s != fresh marshal %s", first, want)
	}
}

// doKey performs a bodyless exchange with an optional X-API-Key header.
func doKey(t *testing.T, method, url, key string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestJobEndpointsTenantScoped: on a tenanted deployment the read side is
// authenticated too — job listing, status, stream, result, and cancel all
// 401 without a key, and another tenant's job IDs answer 404 exactly like
// IDs that were never issued, so the sequential job namespace leaks
// nothing across tenants.
func TestJobEndpointsTenantScoped(t *testing.T) {
	_, srv := newTenantServer(t, Config{QueueDepth: 8, JobWorkers: 2, Tenants: twoTenants()})
	resp, body := postKey(t, srv.URL+"/v1/gadgets", "key-a", GadgetsRequest{Programs: []string{"meltdown"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	jobURL := srv.URL + "/v1/jobs/" + st.ID

	// Keyless reads are 401s, same as keyless submissions.
	for _, c := range []struct{ method, url string }{
		{http.MethodGet, srv.URL + "/v1/jobs"},
		{http.MethodGet, jobURL},
		{http.MethodGet, jobURL + "?stream=1"},
		{http.MethodGet, jobURL + "/result"},
		{http.MethodDelete, jobURL},
	} {
		if resp, body := doKey(t, c.method, c.url, ""); resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("keyless %s %s = %d: %s", c.method, c.url, resp.StatusCode, body)
		}
	}
	// Another tenant's key sees alice's job ID as never issued.
	for _, c := range []struct{ method, url string }{
		{http.MethodGet, jobURL},
		{http.MethodGet, jobURL + "?stream=1"},
		{http.MethodGet, jobURL + "/result"},
		{http.MethodDelete, jobURL},
	} {
		if resp, body := doKey(t, c.method, c.url, "key-b"); resp.StatusCode != http.StatusNotFound {
			t.Errorf("cross-tenant %s %s = %d: %s", c.method, c.url, resp.StatusCode, body)
		}
	}

	// The owner polls until done, then reads the result.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body = doKey(t, http.MethodGet, jobURL, "key-a")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("owner poll = %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == JobDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	if resp, body := doKey(t, http.MethodGet, jobURL+"/result", "key-a"); resp.StatusCode != http.StatusOK {
		t.Errorf("owner result = %d: %s", resp.StatusCode, body)
	}

	// The listing is scoped: alice sees her job, bob sees an empty list.
	var jobs []Status
	_, body = doKey(t, http.MethodGet, srv.URL+"/v1/jobs", "key-a")
	if err := json.Unmarshal(body, &jobs); err != nil || len(jobs) != 1 || jobs[0].ID != st.ID {
		t.Errorf("alice's listing = %s (%v), want exactly her job", body, err)
	}
	_, body = doKey(t, http.MethodGet, srv.URL+"/v1/jobs", "key-b")
	if err := json.Unmarshal(body, &jobs); err != nil || len(jobs) != 0 {
		t.Errorf("bob's listing = %s (%v), want empty", body, err)
	}

	// The owner's stream works and ends with the done event.
	sreq, err := http.NewRequest(http.MethodGet, jobURL+"?stream=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	sreq.Header.Set("X-API-Key", "key-a")
	sresp, err := http.DefaultClient.Do(sreq)
	if err != nil {
		t.Fatal(err)
	}
	if sresp.StatusCode != http.StatusOK || sresp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("owner stream = %d %q", sresp.StatusCode, sresp.Header.Get("Content-Type"))
	}
	events, _ := readSSE(t, sresp)
	if len(events) == 0 || events[len(events)-1].event != "done" {
		t.Errorf("owner stream events %+v, want a done event", events)
	}

	// The owner may cancel (a no-op on a finished job, but authorized).
	if resp, body := doKey(t, http.MethodDelete, jobURL, "key-a"); resp.StatusCode != http.StatusOK {
		t.Errorf("owner cancel = %d: %s", resp.StatusCode, body)
	}
}

// TestBypassRespectsInFlightCap: store-admission bypass jobs count toward
// their tenant's MaxInFlight — a tenant at its cap gets the 429 signal
// even for fully-cached work, while an uncapped tenant still bypasses,
// and the slot frees again when the running job finishes.
func TestBypassRespectsInFlightCap(t *testing.T) {
	m := NewManager(Config{QueueDepth: 1, JobWorkers: 1, SimWorkers: 2, Tenants: []tenant.Tenant{
		{Name: "capped", Key: "kc", MaxInFlight: 1},
		{Name: "free", Key: "kf"},
	}})
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	t.Cleanup(func() {
		unblock()
		m.Shutdown(context.Background())
	})
	req := SweepRequest{Workloads: []string{"exchange2"}, Policies: []string{"OoO"}, Sampling: tinySampling()}

	// Warm the cache so the sweep is fully store-resolvable.
	j1, err := m.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, JobDone)

	// The capped tenant's one allowed job occupies the only worker...
	blocker, err := m.enqueueAs("test", SubmitOpts{Tenant: "capped", Class: tenant.Batch}, nil,
		func(ctx context.Context, j *Job) (any, error) {
			select {
			case <-release:
				return "ok", nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, blocker)
	// ...and a local job fills the single queue slot: the queue is full.
	blockingJob(t, m, release)

	// At its cap, the capped tenant cannot bypass even fully-cached work.
	if _, err := m.SubmitSweep(req, SubmitOpts{Tenant: "capped"}); err != ErrQueueFull {
		t.Fatalf("capped tenant bypass = %v, want ErrQueueFull", err)
	}
	// An uncapped tenant's identical submission bypasses fine.
	j2, err := m.SubmitSweep(req, SubmitOpts{Tenant: "free"})
	if err != nil {
		t.Fatalf("uncapped tenant bypass = %v, want admission", err)
	}
	waitState(t, j2, JobDone)

	// Finishing the capped tenant's running job frees its slot: the same
	// submission is admitted again once the release lands.
	unblock()
	waitState(t, blocker, JobDone)
	deadline := time.Now().Add(10 * time.Second)
	for {
		j3, err := m.SubmitSweep(req, SubmitOpts{Tenant: "capped"})
		if err == nil {
			waitState(t, j3, JobDone)
			return
		}
		if err != ErrQueueFull || time.Now().After(deadline) {
			t.Fatalf("capped resubmission after release: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
}
