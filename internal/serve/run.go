package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"nda/internal/attack"
	"nda/internal/core"
	"nda/internal/gadget"
	"nda/internal/harness"
	"nda/internal/ooo"
	"nda/internal/par"
	"nda/internal/workload"
)

// cachedBuiltins memoizes gadget.Builtins for the life of the process:
// assembling every builtin attack and workload program costs far more than
// serving a cache-resolved census cell, and the set is immutable (census
// goroutines already share Input values read-only, see gadget.BuildReport).
var cachedBuiltins = sync.OnceValues(gadget.Builtins)

// This file is where jobs meet the cache: every runner decomposes its
// request into independent cells, fans the cells out over the par pool,
// and resolves each cell through Cache.Do under a content-addressed key.
// A repeated request — or a different request that shares cells with an
// earlier one (a sweep over a workload subset, say, after a full sweep) —
// is assembled from memory without re-simulation.
//
// With a fleet configured (Config.Fleet), the cache-miss path dispatches
// the cell to a remote worker instead of simulating here; everything else
// — decomposition, keys, merge order, error semantics — is shared with the
// local path, which is why a fleet-merged result is byte-identical to a
// single-process run.

// sweepCellKey describes everything a sweep cell's result depends on. The
// embedded harness.Config carries the full sampling spec and ooo.Params;
// Workers is zeroed before hashing because parallelism must never change
// identity.
type sweepCellKey struct {
	Workload string         `json:"workload"`
	InOrder  bool           `json:"in_order"`
	Policy   core.Policy    `json:"policy"`
	Config   harness.Config `json:"config"`
}

// seriesKey identifies a workload's checkpoint series: the sampling spec
// determines where the sampling points fall, nothing else does.
type seriesKey struct {
	Workload string         `json:"workload"`
	Config   harness.Config `json:"config"`
}

// attackCellKey describes one (attack, policy) security-matrix cell.
type attackCellKey struct {
	Attack  attack.Kind `json:"attack"`
	InOrder bool        `json:"in_order"`
	Policy  core.Policy `json:"policy"`
	Params  ooo.Params  `json:"params"`
}

// gadgetKey identifies one program's static census entry.
type gadgetKey struct {
	Program string `json:"program"`
	Window  int    `json:"window"`
}

// sweepCellID builds a sweep cell's cache key. Workers is zeroed before
// hashing because parallelism must never change identity. Shared by the
// measure path and the admission probe so the two can never drift.
func sweepCellID(wl string, pol core.Policy, inOrder bool, cfg harness.Config) string {
	cfg.Workers = 0
	return Key("sweep-cell", sweepCellKey{Workload: wl, InOrder: inOrder, Policy: pol, Config: cfg})
}

// attackCellID builds an attack-matrix cell's cache key.
func attackCellID(kind attack.Kind, pol core.Policy, inOrder bool, params ooo.Params) string {
	return Key("attack-cell", attackCellKey{Attack: kind, InOrder: inOrder, Policy: pol, Params: params})
}

// gadgetCellID builds a gadget-census entry's cache key.
func gadgetCellID(program string) string {
	return Key("gadget", gadgetKey{Program: program, Window: gadget.DefaultWindow})
}

// cellKeys enumerates every cache key the sweep will resolve — the
// store-aware admission probe: if all of them are already resident, the
// job needs no simulation.
func (t *sweepTask) cellKeys() []string {
	keys := make([]string, 0, len(t.specs)*(len(t.pols)+1))
	for _, spec := range t.specs {
		for _, pol := range t.pols {
			keys = append(keys, sweepCellID(spec.Name, pol, false, t.cfg))
		}
		if t.inOrder {
			keys = append(keys, sweepCellID(spec.Name, core.Policy{}, true, t.cfg))
		}
	}
	return keys
}

// cellKeys enumerates the attack matrix's cache keys.
func (t *attackTask) cellKeys(params ooo.Params) []string {
	keys := make([]string, 0, len(t.kinds)*(len(t.pols)+1))
	for _, kind := range t.kinds {
		for _, pol := range t.pols {
			keys = append(keys, attackCellID(kind, pol, false, params))
		}
		if t.inOrder {
			keys = append(keys, attackCellID(kind, core.Policy{}, true, params))
		}
	}
	return keys
}

// cellKeys enumerates the census's cache keys.
func (t *gadgetsTask) cellKeys() []string {
	keys := make([]string, 0, len(t.ins))
	for _, in := range t.ins {
		keys = append(keys, gadgetCellID(in.name))
	}
	return keys
}

// runSweep evaluates the request's (workload, config) grid cell by cell
// through the cache and assembles the same Sweep table harness.RunSweep
// builds, so served results are interchangeable with CLI results.
func (m *Manager) runSweep(ctx context.Context, j *Job, t *sweepTask) (any, error) {
	type cellSpec struct {
		spec    workload.Spec
		pol     core.Policy
		inOrder bool
	}
	var cells []cellSpec
	for _, spec := range t.specs {
		for _, pol := range t.pols {
			cells = append(cells, cellSpec{spec: spec, pol: pol})
		}
		if t.inOrder {
			cells = append(cells, cellSpec{spec: spec, inOrder: true})
		}
	}
	// Add, not Store: a warm job runs several sub-requests through this
	// runner and accumulates one combined progress total.
	j.total.Add(int64(len(cells)))
	j.bump()

	// Cells saturate the pool on their own; per-sample fan-out inside a
	// checkpointed cell stays serial, exactly as in harness.RunSweep.
	cellCfg := t.cfg
	cellCfg.Workers = 1

	results := make([]*harness.Measurement, len(cells))
	err := par.RunCtx(ctx, len(cells), m.simWorkers(), func(i int) error {
		c := cells[i]
		mres, err := m.measureCell(ctx, j, c.spec, c.pol, c.inOrder, cellCfg, t.sampling)
		if err != nil {
			return err
		}
		results[i] = mres
		j.done.Add(1)
		j.bump()
		return nil
	})
	if err != nil {
		return nil, err
	}

	var workloads, configs []string
	for _, spec := range t.specs {
		workloads = append(workloads, spec.Name)
	}
	for _, pol := range t.pols {
		configs = append(configs, pol.Name)
	}
	if t.inOrder {
		configs = append(configs, harness.InOrderName)
	}
	sw := harness.NewSweep(workloads, configs)
	for i, c := range cells {
		name := harness.InOrderName
		if !c.inOrder {
			name = c.pol.Name
		}
		sw.Set(name, c.spec.Name, results[i])
	}

	resp := &SweepResponse{Sweep: sw}
	if sw.Baseline(sw.Workloads[0]) != nil {
		resp.Overheads = make(map[string]float64, len(sw.Configs))
		for _, cfgName := range sw.Configs {
			if cfgName == core.Baseline().Name {
				continue
			}
			resp.Overheads[cfgName] = sw.Overhead(cfgName)
		}
	}
	return resp, nil
}

// measureCell resolves one sweep cell through the cache, simulating on a
// miss — or, with a fleet configured, dispatching the miss to a remote
// worker carrying the original sampling spec (the worker resolves it to
// the identical harness.Config). In local checkpoint mode the workload's
// sample series is itself cache-resolved first, so the functional
// fast-forward and checkpoint capture also happen once per (workload,
// sampling spec) per process; in fleet mode the series lives and is
// reused on whichever workers simulate that workload's cells.
func (m *Manager) measureCell(ctx context.Context, j *Job, spec workload.Spec, pol core.Policy, inOrder bool, cfg harness.Config, sampling SamplingSpec) (*harness.Measurement, error) {
	key := sweepCellID(spec.Name, pol, inOrder, cfg)
	shared := false
	decode := func(b []byte) (any, error) {
		var mres harness.Measurement
		if err := json.Unmarshal(b, &mres); err != nil {
			return nil, err
		}
		return &mres, nil
	}
	v, tier, err := m.cache.DoTiered(ctx, key, m.tier2(), decode, func() (any, error) {
		if m.cfg.Fleet != nil {
			req := CellRequest{Kind: "sweep", Workload: spec.Name, InOrder: inOrder, Sampling: sampling}
			if !inOrder {
				req.Policy = pol.Name
			}
			var mres harness.Measurement
			var err error
			if shared, err = m.remoteCell(ctx, j, key, req, &mres); err != nil {
				return nil, err
			}
			return &mres, nil
		}
		var mres *harness.Measurement
		var err error
		switch {
		case cfg.UseCheckpoints:
			ss, serr := m.samples(ctx, spec, cfg)
			if serr != nil {
				return nil, serr
			}
			if inOrder {
				mres, err = harness.MeasureInOrderSamples(ctx, spec, cfg, ss)
			} else {
				mres, err = harness.MeasureOoOSamples(ctx, spec, pol, cfg, ss)
			}
		case inOrder:
			mres, err = harness.MeasureInOrderCtx(ctx, spec, cfg)
		default:
			mres, err = harness.MeasureOoOCtx(ctx, spec, pol, cfg)
		}
		if err != nil {
			return nil, err
		}
		m.metrics.Simulations.Add(1)
		m.metrics.CyclesSimulated.Add(int64(mres.Cycles))
		return mres, nil
	})
	if err != nil {
		return nil, err
	}
	m.noteTier(j, tier, shared)
	return v.(*harness.Measurement), nil
}

// samples cache-resolves a workload's checkpoint series. Series reuse is
// not counted in the cell hit/miss metrics: the series is an intermediate,
// not a client-visible result.
func (m *Manager) samples(ctx context.Context, spec workload.Spec, cfg harness.Config) (*harness.SampleSeries, error) {
	keyCfg := cfg
	keyCfg.Workers = 0
	key := Key("series", seriesKey{Workload: spec.Name, Config: keyCfg})
	v, _, err := m.cache.Do(ctx, key, func() (any, error) {
		return harness.TakeSamples(spec, cfg)
	})
	if err != nil {
		return nil, err
	}
	return v.(*harness.SampleSeries), nil
}

// runAttack evaluates the request's (attack, config) grid cell by cell
// through the cache, mirroring attack.MatrixCtx's layout: for each attack,
// every policy in order, then the in-order core.
func (m *Manager) runAttack(ctx context.Context, j *Job, t *attackTask) (any, error) {
	perKind := len(t.pols)
	if t.inOrder {
		perKind++
	}
	cells := make([]attack.Cell, len(t.kinds)*perKind)
	j.total.Add(int64(len(cells)))
	j.bump()

	err := par.RunCtx(ctx, len(cells), m.simWorkers(), func(i int) error {
		kind := t.kinds[i/perKind]
		pi := i % perKind
		inOrder := t.inOrder && pi == len(t.pols)
		var pol core.Policy
		if !inOrder {
			pol = t.pols[pi]
		}
		out, err := m.attackCell(ctx, j, kind, pol, inOrder)
		if err != nil {
			return err
		}
		cell := attack.Cell{Attack: kind, Policy: out.Policy, Outcome: out}
		if !inOrder {
			cell.Expected = attack.Expected[kind][pol.Name]
		}
		cells[i] = cell
		j.done.Add(1)
		j.bump()
		return nil
	})
	if err != nil {
		return nil, err
	}

	resp := &AttackResponse{Cells: cells}
	for _, c := range cells {
		if !c.Matches() {
			resp.Mismatches++
		}
	}
	return resp, nil
}

// attackCell resolves one (attack, policy) outcome through the cache,
// simulating locally or dispatching to the fleet on a miss.
func (m *Manager) attackCell(ctx context.Context, j *Job, kind attack.Kind, pol core.Policy, inOrder bool) (*attack.Outcome, error) {
	key := attackCellID(kind, pol, inOrder, m.cfg.Params)
	shared := false
	decode := func(b []byte) (any, error) {
		var out attack.Outcome
		if err := json.Unmarshal(b, &out); err != nil {
			return nil, err
		}
		return &out, nil
	}
	v, tier, err := m.cache.DoTiered(ctx, key, m.tier2(), decode, func() (any, error) {
		if m.cfg.Fleet != nil {
			req := CellRequest{Kind: "attack", Attack: string(kind), InOrder: inOrder}
			if !inOrder {
				req.Policy = pol.Name
			}
			var out attack.Outcome
			var err error
			if shared, err = m.remoteCell(ctx, j, key, req, &out); err != nil {
				return nil, err
			}
			return &out, nil
		}
		var out *attack.Outcome
		var err error
		if inOrder {
			out, err = attack.RunInOrderCtx(ctx, kind)
		} else {
			out, err = attack.RunCtx(ctx, kind, pol, m.cfg.Params)
		}
		if err != nil {
			return nil, err
		}
		m.metrics.Simulations.Add(1)
		m.metrics.CyclesSimulated.Add(int64(out.Cycles))
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	m.noteTier(j, tier, shared)
	return v.(*attack.Outcome), nil
}

// runGadgets builds the static census for the requested programs, one
// cache-resolved ProgramReport per program.
func (m *Manager) runGadgets(ctx context.Context, j *Job, t *gadgetsTask) (any, error) {
	builtins, err := cachedBuiltins()
	if err != nil {
		return nil, err
	}
	byName := make(map[string]gadget.Input, len(builtins))
	for _, in := range builtins {
		byName[in.Name] = in
	}
	j.total.Add(int64(len(t.ins)))
	j.bump()

	report := &gadget.Report{Window: gadget.DefaultWindow, Programs: make([]gadget.ProgramReport, len(t.ins))}
	err = par.RunCtx(ctx, len(t.ins), m.simWorkers(), func(i int) error {
		in, ok := byName[t.ins[i].name]
		if !ok {
			return fmt.Errorf("serve: unknown program %q", t.ins[i].name)
		}
		pr, err := m.gadgetCell(ctx, j, in)
		if err != nil {
			return err
		}
		report.Programs[i] = pr
		j.done.Add(1)
		j.bump()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return report, nil
}

// gadgetCell resolves one program's census entry through the cache,
// analyzing locally or dispatching to the fleet on a miss.
func (m *Manager) gadgetCell(ctx context.Context, j *Job, in gadget.Input) (gadget.ProgramReport, error) {
	key := gadgetCellID(in.Name)
	shared := false
	decode := func(b []byte) (any, error) {
		var pr gadget.ProgramReport
		if err := json.Unmarshal(b, &pr); err != nil {
			return nil, err
		}
		return pr, nil
	}
	v, tier, err := m.cache.DoTiered(ctx, key, m.tier2(), decode, func() (any, error) {
		if m.cfg.Fleet != nil {
			var pr gadget.ProgramReport
			var err error
			if shared, err = m.remoteCell(ctx, j, key, CellRequest{Kind: "gadget", Program: in.Name}, &pr); err != nil {
				return nil, err
			}
			return pr, nil
		}
		an := gadget.Analyze(in.Prog, in.Cfg)
		return gadget.NewProgramReport(in.Name, in.Group, an, in.Group == "attack"), nil
	})
	if err != nil {
		return gadget.ProgramReport{}, err
	}
	m.noteTier(j, tier, shared)
	return v.(gadget.ProgramReport), nil
}

// noteTier folds one cell's resolution tier into the job's and the
// service's counters. shared marks a compute that the fleet-shared store
// absorbed before any worker was dispatched (only the coordinator's
// remoteCell path sets it). j may be nil: the worker-side /v1/cell path
// serves cells with no job behind them.
func (m *Manager) noteTier(j *Job, tier HitTier, shared bool) {
	switch {
	case tier == HitRAM:
		if j != nil {
			j.tierRAM.Add(1)
		}
		m.metrics.CacheHits.Add(1)
	case tier == HitDisk:
		if j != nil {
			j.tierDisk.Add(1)
		}
		m.metrics.CacheHits.Add(1)
		m.metrics.CacheDiskHits.Add(1)
	case shared:
		if j != nil {
			j.tierShared.Add(1)
		}
		m.metrics.CacheMisses.Add(1)
	default:
		if j != nil {
			j.tierComputed.Add(1)
		}
		m.metrics.CacheMisses.Add(1)
	}
}
