package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"

	"nda/internal/store"
)

// Key derives the content address for a unit of simulation work: a stable
// SHA-256 over the kind tag, the store format version, and the canonical
// JSON encoding of the inputs that determine the result. Two requests
// that would simulate the same thing — the same program, ooo.Params,
// policy, and sample spec — hash to the same key no matter which API
// call, job, or client they arrive through, which is what lets the cache
// serve repeated sweeps, repeated attack cells, and shared checkpoint
// series without re-simulation.
//
// The encoding is canonical because every key payload is a struct of
// scalars, slices, and string-keyed maps: encoding/json emits struct fields
// in declaration order and sorts map keys, so identical values yield
// identical bytes. Anything that must not affect identity (worker counts,
// progress hooks) is stripped before hashing.
//
// store.FormatVersion is folded into the preimage so that bumping it
// invalidates every tier at once: RAM entries, disk entries, and the
// fleet-shared tier all key off this hash, and results persisted under an
// old format version become unreachable instead of being decoded wrong.
// TestKeyGolden pins today's hashes — an accidental bump (or any drift in
// the preimage layout) shows up there as a golden diff.
func Key(kind string, payload any) string {
	b, err := json.Marshal(payload)
	if err != nil {
		// Key payloads are internal structs of plain data; failing to
		// encode one is a programming error, not an input error.
		panic(fmt.Sprintf("serve: unencodable key payload for %q: %v", kind, err))
	}
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(store.FormatVersion)))
	h.Write([]byte{0})
	h.Write(b)
	return kind + ":" + hex.EncodeToString(h.Sum(nil)[:16])
}
