package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// SSE progress streaming: GET /v1/jobs/{id}?stream=1 pushes a `progress`
// event per observable status change (cell completions, state
// transitions) instead of making clients re-poll the whole status blob.
//
// Backpressure contract: the sweep fold path never blocks on a consumer.
// Cell completions poke a capacity-1 channel per subscriber (bump /
// notifyLocked in serve.go); a consumer that is slow to drain its poke
// simply coalesces — the next event it renders carries the latest
// snapshot, versions in between are skipped. Event ids are the job's
// status version, so a dropped connection resumes with Last-Event-ID and
// receives only what changed since.

// DefaultStreamHeartbeat is the keep-alive comment interval when
// Config.StreamHeartbeat is unset: frequent enough to hold typical proxy
// idle timeouts open across long simulation gaps.
const DefaultStreamHeartbeat = 15 * time.Second

// serveStream writes the job's status event stream until the job reaches
// a terminal state or the client goes away.
func (m *Manager) serveStream(w http.ResponseWriter, r *http.Request, j *Job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported by this connection")
		return
	}
	// Last-Event-ID resume: events at or below the client's last seen
	// version are already rendered on its side; skip straight past them.
	var lastSent int64 = -1
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			lastSent = n
		}
	}
	hb := m.cfg.StreamHeartbeat
	if hb <= 0 {
		hb = DefaultStreamHeartbeat
	}

	ch := j.subscribe()
	defer j.unsubscribe(ch)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	// send emits one progress event carrying the current snapshot, unless
	// the client has already seen this version. Returns false once the
	// client connection is gone.
	send := func() bool {
		ver := j.Version()
		if ver <= lastSent {
			return true
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: progress\ndata: %s\n\n", ver, j.StatusJSON()); err != nil {
			return false
		}
		fl.Flush()
		lastSent = ver
		return true
	}
	if !send() {
		return
	}

	tick := time.NewTicker(hb)
	defer tick.Stop()
	for {
		select {
		case <-ch:
			if !send() {
				return
			}
		case <-j.doneCh:
			// Final snapshot, then an explicit done event so clients can
			// stop without inspecting payloads.
			if !send() {
				return
			}
			st := j.Status()
			if _, err := fmt.Fprintf(w, "id: %d\nevent: done\ndata: {\"state\":%q}\n\n", j.Version(), st.State); err != nil {
				return
			}
			fl.Flush()
			return
		case <-tick.C:
			// Comment heartbeat: ignored by EventSource parsers, keeps
			// idle connections from being reaped mid-simulation.
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
