package serve

import "testing"

// TestKeyGolden pins the exact key strings produced for fixed payloads.
// The key preimage folds in store.FormatVersion, so these literals break —
// loudly, as a golden diff — if anyone bumps the format version or changes
// the preimage layout without meaning to. An intentional bump updates the
// literals here in the same change, which is exactly the review surface we
// want: key migration is a decision, not an accident.
func TestKeyGolden(t *testing.T) {
	type payload struct {
		Workload string `json:"workload"`
		InOrder  bool   `json:"in_order"`
		Policy   string `json:"policy"`
	}
	cases := []struct {
		kind    string
		payload any
		want    string
	}{
		{"sweep-cell", payload{Workload: "ptrchase", Policy: "OoO"}, "sweep-cell:ee99a26ebba7eecac6f84c9734d75a01"},
		{"sweep-cell", payload{Workload: "ptrchase", Policy: "Permissive"}, "sweep-cell:7764b90792ae6bcd3ba901436c980451"},
		{"sweep-cell", payload{Workload: "ptrchase", InOrder: true}, "sweep-cell:81bac65a42ddd439e1ebfd4c3d586525"},
		{"attack-cell", payload{Workload: "spectre-v1", Policy: "OoO"}, "attack-cell:1c824e5bfa187820ae1efa2fd907708a"},
		{"gadget", struct {
			Program string `json:"program"`
			Window  int    `json:"window"`
		}{"leak_loop", 8}, "gadget:9be0a570eb5b0ce4984572f3124a2c89"},
	}
	for _, c := range cases {
		if got := Key(c.kind, c.payload); got != c.want {
			t.Errorf("Key(%q, %+v)\n  got  %s\n  want %s", c.kind, c.payload, got, c.want)
		}
	}
}

// TestKeyDistinguishes proves the properties the golden pins rely on: the
// kind tag and every payload field participate in the hash, and equal
// inputs collide (that collision is the whole caching scheme).
func TestKeyDistinguishes(t *testing.T) {
	type p struct{ A, B string }
	base := Key("k", p{"x", "y"})
	if Key("k", p{"x", "y"}) != base {
		t.Fatal("identical inputs produced different keys")
	}
	for name, other := range map[string]string{
		"kind":  Key("k2", p{"x", "y"}),
		"field": Key("k", p{"x", "z"}),
	} {
		if other == base {
			t.Fatalf("changing %s did not change the key", name)
		}
	}
}
