package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// tinySampling is the reduced methodology the e2e tests run under; small
// enough that a sweep cell takes milliseconds, explicit enough that it
// exercises every override field.
func tinySampling() SamplingSpec {
	return SamplingSpec{
		Quick:        true,
		WarmInsts:    2_000,
		MeasureInsts: 2_000,
		SkipInsts:    1_000,
		Intervals:    3,
	}
}

func newTestServer(t *testing.T) (*Manager, *httptest.Server) {
	t.Helper()
	m := NewManager(Config{QueueDepth: 8, JobWorkers: 2, SimWorkers: 2})
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return m, srv
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestHealthzAndMetrics(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d: %s", resp.StatusCode, body)
	}
	var health map[string]string
	if err := json.Unmarshal(body, &health); err != nil || health["status"] != "ok" {
		t.Fatalf("healthz body %q (%v)", body, err)
	}
	resp, body = get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	for _, name := range []string{"nda_jobs_queued_total", "nda_cache_hits_total", "nda_cycles_per_second"} {
		if !strings.Contains(string(body), name) {
			t.Errorf("metrics output missing %s", name)
		}
	}
}

// TestSweepSubmitPollResult is the async e2e path: submit, watch the job
// progress through the status endpoint, fetch the result when done.
func TestSweepSubmitPollResult(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := post(t, srv.URL+"/v1/sweep", SweepRequest{
		Workloads: []string{"exchange2"},
		Policies:  []string{"OoO", "Permissive"},
		Sampling:  tinySampling(),
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Kind != "sweep" {
		t.Fatalf("submit status = %+v", st)
	}

	deadline := time.Now().Add(60 * time.Second)
	for st.State != JobDone {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", st)
		}
		if st.State == JobFailed || st.State == JobCancelled {
			t.Fatalf("job ended %s: %s", st.State, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
		resp, body = get(t, srv.URL+"/v1/jobs/"+st.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll = %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
	}
	// 3 cells: two policies plus the in-order bound.
	if st.TotalCells != 3 || st.DoneCells != 3 {
		t.Errorf("cells = %d/%d, want 3/3", st.DoneCells, st.TotalCells)
	}

	resp, body = get(t, srv.URL+"/v1/jobs/"+st.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d: %s", resp.StatusCode, body)
	}
	var sweep SweepResponse
	if err := json.Unmarshal(body, &sweep); err != nil {
		t.Fatal(err)
	}
	if sweep.Sweep == nil || sweep.Sweep.Get("OoO", "exchange2") == nil || sweep.Sweep.Get("In-Order", "exchange2") == nil {
		t.Fatalf("sweep result incomplete: %s", body)
	}
	if sweep.Overheads["Permissive"] == 0 && sweep.Overheads["In-Order"] == 0 {
		t.Errorf("overheads missing: %+v", sweep.Overheads)
	}

	// The job index lists it; an unknown ID is a 404.
	resp, body = get(t, srv.URL+"/v1/jobs")
	var all []Status
	if err := json.Unmarshal(body, &all); err != nil || len(all) != 1 {
		t.Errorf("job listing = %s (%v)", body, err)
	}
	if resp, _ := get(t, srv.URL+"/v1/jobs/job-999999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", resp.StatusCode)
	}
}

// TestSweepCachedResponseByteIdentical is the PR's acceptance test: a
// repeated identical sweep is served from the cache — the simulation
// counter does not move, the hit counter does — and its response bytes are
// identical to the cold run's.
func TestSweepCachedResponseByteIdentical(t *testing.T) {
	m, srv := newTestServer(t)
	req := SweepRequest{
		Workloads: []string{"exchange2", "xz"},
		Policies:  []string{"OoO"},
		Sampling:  tinySampling(),
	}

	resp, cold := post(t, srv.URL+"/v1/sweep?wait=1", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold run = %d: %s", resp.StatusCode, cold)
	}
	sims := m.Metrics().Simulations.Load()
	misses := m.Metrics().CacheMisses.Load()
	if sims == 0 || misses != sims {
		t.Fatalf("cold run: %d simulations, %d misses", sims, misses)
	}

	resp, warm := post(t, srv.URL+"/v1/sweep?wait=1", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm run = %d: %s", resp.StatusCode, warm)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("cached response differs from cold run:\ncold: %s\nwarm: %s", cold, warm)
	}
	if got := m.Metrics().Simulations.Load(); got != sims {
		t.Errorf("warm run re-simulated: %d -> %d simulations", sims, got)
	}
	if hits := m.Metrics().CacheHits.Load(); hits != sims {
		t.Errorf("CacheHits = %d, want %d (every cold cell reused)", hits, sims)
	}

	// Cross-request cell reuse: a subset sweep after the full one is all
	// hits too — the cache is per cell, not per request.
	resp, _ = post(t, srv.URL+"/v1/sweep?wait=1", SweepRequest{
		Workloads: []string{"xz"},
		Policies:  []string{"OoO"},
		Sampling:  tinySampling(),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subset run = %d", resp.StatusCode)
	}
	if got := m.Metrics().Simulations.Load(); got != sims {
		t.Errorf("subset sweep re-simulated shared cells: %d -> %d", sims, got)
	}
}

// TestGadgetsEndpoint: the census path end to end, with the second request
// served from the cache.
func TestGadgetsEndpoint(t *testing.T) {
	m, srv := newTestServer(t)
	req := GadgetsRequest{Programs: []string{"spectre-v1-cache", "meltdown"}}
	resp, cold := post(t, srv.URL+"/v1/gadgets?wait=1", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gadgets = %d: %s", resp.StatusCode, cold)
	}
	var report struct {
		Programs []struct {
			Name string `json:"name"`
		} `json:"programs"`
	}
	if err := json.Unmarshal(cold, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Programs) != 2 || report.Programs[0].Name != "spectre-v1-cache" {
		t.Fatalf("census incomplete: %s", cold)
	}
	resp, warm := post(t, srv.URL+"/v1/gadgets?wait=1", req)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(cold, warm) {
		t.Errorf("cached census differs (status %d)", resp.StatusCode)
	}
	if m.Metrics().CacheHits.Load() != 2 {
		t.Errorf("CacheHits = %d, want 2", m.Metrics().CacheHits.Load())
	}
}

// TestAttackEndpoint: one security-matrix cell end to end; the verdict must
// match the paper's table (zero mismatches).
func TestAttackEndpoint(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := post(t, srv.URL+"/v1/attack?wait=1", AttackRequest{
		Attacks:   []string{"spectre-v1-cache"},
		Policies:  []string{"OoO"},
		NoInOrder: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("attack = %d: %s", resp.StatusCode, body)
	}
	var ar AttackResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if len(ar.Cells) != 1 || ar.Mismatches != 0 {
		t.Fatalf("attack response = %d cells, %d mismatches: %s", len(ar.Cells), ar.Mismatches, body)
	}
	if ar.Cells[0].Outcome == nil || !ar.Cells[0].Outcome.Leaked {
		t.Error("spectre v1 on insecure OoO must leak")
	}
}

// TestBadRequests: malformed bodies and unknown names answer 400 without
// creating a job.
func TestBadRequests(t *testing.T) {
	m, srv := newTestServer(t)
	cases := []struct {
		path string
		body string
	}{
		{"/v1/sweep", `{"workloads":["no-such-workload"]}`},
		{"/v1/sweep", `{"unknown_field":1}`},
		{"/v1/sweep", `{"policies":["NoSuchPolicy"]}`},
		{"/v1/attack", `{"attacks":["no-such-attack"]}`},
		{"/v1/gadgets", `{"programs":["no-such-program"]}`},
		{"/v1/sweep", `not json`},
	}
	for _, c := range cases {
		resp, err := http.Post(srv.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %s = %d, want 400", c.path, c.body, resp.StatusCode)
		}
	}
	if n := len(m.Jobs()); n != 0 {
		t.Errorf("%d jobs created by invalid requests", n)
	}
}

// TestQueueFullAnswers429: with the workers parked and the queue full, a
// new submission gets the backpressure status, not a hang.
func TestQueueFullAnswers429(t *testing.T) {
	m := NewManager(Config{QueueDepth: 1, JobWorkers: 1})
	srv := httptest.NewServer(NewHandler(m))
	release := make(chan struct{})
	t.Cleanup(func() {
		srv.Close()
		close(release)
		m.Shutdown(context.Background())
	})
	running := blockingJob(t, m, release)
	waitRunning(t, running)
	blockingJob(t, m, release) // fills the single queue slot

	resp, body := post(t, srv.URL+"/v1/sweep", SweepRequest{Workloads: []string{"exchange2"}, Sampling: tinySampling()})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue = %d: %s", resp.StatusCode, body)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
		t.Errorf("429 body %q (%v)", body, err)
	}
}

// TestWaitResultMatchesPolledResult: the ?wait=1 body and the result
// endpoint serve the same stored bytes.
func TestWaitResultMatchesPolledResult(t *testing.T) {
	_, srv := newTestServer(t)
	req := GadgetsRequest{Programs: []string{"meltdown"}}
	resp, waited := post(t, srv.URL+"/v1/gadgets?wait=1", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait = %d", resp.StatusCode)
	}
	var all []Status
	_, body := get(t, srv.URL+"/v1/jobs")
	if err := json.Unmarshal(body, &all); err != nil || len(all) != 1 {
		t.Fatalf("listing = %s (%v)", body, err)
	}
	_, polled := get(t, srv.URL+"/v1/jobs/"+all[0].ID+"/result")
	if !bytes.Equal(waited, polled) {
		t.Errorf("wait body and result endpoint differ:\n%s\n%s", waited, polled)
	}
}
