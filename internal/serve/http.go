package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"nda/internal/tenant"
)

// NewHandler builds the service's HTTP API on top of a manager:
//
//	POST /v1/sweep     submit a performance sweep        (body: SweepRequest)
//	POST /v1/attack    submit a security-matrix run      (body: AttackRequest)
//	POST /v1/gadgets   submit a static gadget census     (body: GadgetsRequest)
//	POST /v1/warm      precompute a request set          (body: WarmRequest)
//	POST /v1/cell      evaluate one cell synchronously   (body: CellRequest)
//	GET  /v1/jobs      list jobs in submission order
//	GET  /v1/jobs/{id} job status and progress
//	GET  /v1/jobs/{id}/result  the result JSON (409 until done)
//	DELETE /v1/jobs/{id}       cancel a queued or running job
//	GET  /healthz      liveness
//	GET  /metrics      Prometheus-style counters
//
// Submissions return 202 with the job status; add ?wait=1 to block until
// the job finishes and receive the result body directly — the result
// bytes are identical whether the cells simulated or hit the cache. A
// full queue answers 429, a draining server 503.
//
// On tenanted deployments every job endpoint requires an API key, not
// just submissions: the listing shows only the caller's jobs, and
// status/stream/result/cancel answer 404 for another tenant's job IDs.
// Only /healthz and /metrics stay unauthenticated.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		submit(m, w, r, func(req SweepRequest, o SubmitOpts) (*Job, error) { return m.SubmitSweep(req, o) })
	})
	mux.HandleFunc("POST /v1/attack", func(w http.ResponseWriter, r *http.Request) {
		submit(m, w, r, func(req AttackRequest, o SubmitOpts) (*Job, error) { return m.SubmitAttack(req, o) })
	})
	mux.HandleFunc("POST /v1/gadgets", func(w http.ResponseWriter, r *http.Request) {
		submit(m, w, r, func(req GadgetsRequest, o SubmitOpts) (*Job, error) { return m.SubmitGadgets(req, o) })
	})
	// Cache warming: precompute a request set so later submissions are
	// tier hits. An empty body warms the standard figure set.
	mux.HandleFunc("POST /v1/warm", func(w http.ResponseWriter, r *http.Request) {
		submit(m, w, r, func(req WarmRequest, o SubmitOpts) (*Job, error) { return m.SubmitWarm(req, o) })
	})
	// The fleet's work unit: one cell, evaluated synchronously through
	// this worker's cache, bypassing the job queue (coordinators bound
	// their own dispatch with per-worker windows).
	mux.HandleFunc("POST /v1/cell", func(w http.ResponseWriter, r *http.Request) {
		var req CellRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		t, err := req.task()
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		v, err := m.runCell(r.Context(), t)
		switch {
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			// The coordinator hung up (hedge lost, retry timeout): the
			// status is never seen, but close the exchange cleanly.
			writeError(w, http.StatusRequestTimeout, err.Error())
			return
		case err != nil:
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		m.Metrics().CellsServed.Add(1)
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		caller, ok := authTenant(m, w, r)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, m.JobsFor(caller))
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := jobForRequest(m, w, r)
		if !ok {
			return
		}
		if s := r.URL.Query().Get("stream"); s == "1" || s == "true" {
			m.serveStream(w, r, j)
			return
		}
		// Polls between cell completions share one cached snapshot
		// instead of re-marshalling the status on every request.
		b := j.StatusJSON()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(b)
		_, _ = w.Write([]byte("\n"))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		j, ok := jobForRequest(m, w, r)
		if !ok {
			return
		}
		writeResult(w, j)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := jobForRequest(m, w, r)
		if !ok {
			return
		}
		// The job is registered forever, so a found job always cancels.
		m.Cancel(j.ID())
		writeJSON(w, http.StatusOK, map[string]string{"status": "cancelling"})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = fmt.Fprint(w, m.RenderMetrics())
	})
	return mux
}

// maxBodyBytes bounds request bodies; every request type is a small list
// of names and knobs.
const maxBodyBytes = 1 << 20

// authTenant resolves the request's tenant from its API key
// (Authorization: Bearer or X-API-Key). On a single-tenant deployment the
// implicit local tenant is used and no key is required. Writes the 401
// itself and reports false when authentication fails.
func authTenant(m *Manager, w http.ResponseWriter, r *http.Request) (string, bool) {
	if !m.Tenanted() {
		return "", true
	}
	key := r.Header.Get("X-API-Key")
	if key == "" {
		if ah := r.Header.Get("Authorization"); strings.HasPrefix(ah, "Bearer ") {
			key = strings.TrimPrefix(ah, "Bearer ")
		}
	}
	if key == "" {
		writeError(w, http.StatusUnauthorized, "missing API key: pass Authorization: Bearer <key> or X-API-Key")
		return "", false
	}
	name, ok := m.TenantForKey(key)
	if !ok {
		writeError(w, http.StatusUnauthorized, "unknown API key")
		return "", false
	}
	return name, true
}

// jobForRequest authenticates the caller and resolves the {id} path value
// to a job the caller may see. On tenanted deployments a job owned by a
// different tenant answers 404 — indistinguishable from an ID that was
// never issued, so the sequential job namespace leaks nothing across
// tenants. Writes the error response itself and reports false on failure.
func jobForRequest(m *Manager, w http.ResponseWriter, r *http.Request) (*Job, bool) {
	caller, ok := authTenant(m, w, r)
	if !ok {
		return nil, false
	}
	j, ok := m.Get(r.PathValue("id"))
	if !ok || (caller != "" && j.tenant != caller) {
		writeError(w, http.StatusNotFound, "unknown job")
		return nil, false
	}
	return j, true
}

// submit decodes a typed request body, enqueues it, and answers 202 (or,
// with ?wait=1, blocks and answers with the result itself).
func submit[R any](m *Manager, w http.ResponseWriter, r *http.Request, enqueue func(R, SubmitOpts) (*Job, error)) {
	tenantName, ok := authTenant(m, w, r)
	if !ok {
		return
	}
	wait := r.URL.Query().Get("wait")
	waiting := wait == "1" || wait == "true"
	// Scheduling class: explicit ?class= wins; otherwise blocking
	// submissions default to interactive, fire-and-forget ones to batch.
	class, err := tenant.ParseClass(r.URL.Query().Get("class"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if r.URL.Query().Get("class") == "" && waiting {
		class = tenant.Interactive
	}
	var req R
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	// An empty body is a valid request: every field has a default.
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	j, err := enqueue(req, SubmitOpts{Tenant: tenantName, Class: class})
	var quotaErr *tenant.QuotaError
	switch {
	case errors.As(err, &quotaErr):
		// Quota exhaustion tells the client exactly when to come back.
		secs := int(quotaErr.RetryAfter.Seconds()) + 1
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if waiting {
		if err := j.Wait(r.Context()); err != nil {
			// The client went away; the job keeps running for later polls.
			writeError(w, http.StatusRequestTimeout, "wait aborted: "+err.Error())
			return
		}
		writeResult(w, j)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

// writeResult answers with a finished job's raw result bytes. The bytes
// are stored marshalled once at completion, so two jobs for identical
// requests — one simulated, one cache-served — answer byte-identically.
func writeResult(w http.ResponseWriter, j *Job) {
	st := j.Status()
	switch st.State {
	case JobDone:
		res, _ := j.Result()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(res)
	case JobFailed:
		writeError(w, http.StatusInternalServerError, st.Error)
	case JobCancelled:
		writeError(w, http.StatusConflict, "job cancelled: "+st.Error)
	default:
		writeJSON(w, http.StatusConflict, st)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf)
	_, _ = w.Write([]byte("\n"))
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
