package serve

import (
	"container/list"
	"context"
	"sync"
)

// Cache is the content-addressed result store with singleflight
// deduplication and an LRU entry cap. Values are keyed by Key(...) hashes
// of their full input description, so a hit is by construction the same
// result a fresh simulation would produce.
//
// Concurrency contract: the first caller of Do for a key computes the
// value; concurrent callers for the same key block until that computation
// finishes and then share the result (a dedup hit — the work ran once).
// Failed computations are not cached: the entry is removed before waiters
// wake, and each waiter retries, so a job cancelled mid-flight never
// poisons the cache for later requests.
//
// Bounding: a long-lived coordinator sees an unbounded stream of distinct
// cells, so ready entries beyond the cap are evicted least-recently-used.
// In-flight entries are pinned (they are not results yet and other callers
// may be joined on them); they enter the LRU order when they complete.
// Eviction affects only memory and future hit rates — a re-asked evicted
// cell recomputes to the identical value.
type Cache struct {
	mu      sync.Mutex
	max     int // > 0; ready entries beyond this are evicted LRU
	m       map[string]*cacheEntry
	lru     list.List // ready entries, front = most recently used
	onEvict func()    // optional eviction hook (metrics)
}

type cacheEntry struct {
	key   string
	ready chan struct{} // closed when val/err are final
	val   any
	err   error
	elem  *list.Element // nil while in flight
}

// DefaultCacheMaxEntries is the generous default cap: far above any single
// evaluation's cell count, small enough that a coordinator serving heavy
// traffic for months stays bounded.
const DefaultCacheMaxEntries = 1 << 16

// NewCache returns an empty cache holding at most max ready entries
// (max <= 0 means DefaultCacheMaxEntries). onEvict, if non-nil, is called
// once per evicted entry.
func NewCache(max int, onEvict func()) *Cache {
	if max <= 0 {
		max = DefaultCacheMaxEntries
	}
	return &Cache{max: max, m: make(map[string]*cacheEntry), onEvict: onEvict}
}

// Len returns the number of cached (successful) or in-flight entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Do returns the cached value for key, joining an in-flight computation if
// one exists, or computes it by calling compute. hit reports whether the
// value was served without running compute in this call — a warm cache
// entry or a join on another caller's flight. Waiting is bounded by ctx;
// compute itself is responsible for observing ctx (the simulation runners
// pass it down to the cores).
func (c *Cache) Do(ctx context.Context, key string, compute func() (any, error)) (v any, hit bool, err error) {
	for {
		c.mu.Lock()
		if e, ok := c.m[key]; ok {
			c.touch(e)
			c.mu.Unlock()
			select {
			case <-e.ready:
				if e.err == nil {
					return e.val, true, nil
				}
				// The owner failed (possibly its own cancellation). The
				// entry is already gone; retry under our context.
				if cerr := ctx.Err(); cerr != nil {
					return nil, false, cerr
				}
				continue
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		e := &cacheEntry{key: key, ready: make(chan struct{})}
		c.m[key] = e
		c.mu.Unlock()

		e.val, e.err = compute()
		c.mu.Lock()
		if e.err != nil {
			delete(c.m, key)
		} else {
			e.elem = c.lru.PushFront(e)
			c.evictOver()
		}
		c.mu.Unlock()
		close(e.ready)
		return e.val, false, e.err
	}
}

// touch marks a ready entry most-recently-used. Called with c.mu held.
func (c *Cache) touch(e *cacheEntry) {
	if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
}

// evictOver drops least-recently-used ready entries until the cap holds.
// Called with c.mu held. Waiters already joined on an evicted entry keep
// their reference and still receive its value; only the map loses it.
func (c *Cache) evictOver() {
	for c.lru.Len() > c.max {
		back := c.lru.Back()
		if back == nil {
			return
		}
		e := c.lru.Remove(back).(*cacheEntry)
		e.elem = nil
		delete(c.m, e.key)
		if c.onEvict != nil {
			c.onEvict()
		}
	}
}
