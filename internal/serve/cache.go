package serve

import (
	"context"
	"sync"
)

// Cache is the content-addressed result store with singleflight
// deduplication. Values are keyed by Key(...) hashes of their full input
// description, so a hit is by construction the same result a fresh
// simulation would produce.
//
// Concurrency contract: the first caller of Do for a key computes the
// value; concurrent callers for the same key block until that computation
// finishes and then share the result (a dedup hit — the work ran once).
// Failed computations are not cached: the entry is removed before waiters
// wake, and each waiter retries, so a job cancelled mid-flight never
// poisons the cache for later requests.
type Cache struct {
	mu sync.Mutex
	m  map[string]*cacheEntry
}

type cacheEntry struct {
	ready chan struct{} // closed when val/err are final
	val   any
	err   error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{m: make(map[string]*cacheEntry)}
}

// Len returns the number of cached (successful) or in-flight entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Do returns the cached value for key, joining an in-flight computation if
// one exists, or computes it by calling compute. hit reports whether the
// value was served without running compute in this call — a warm cache
// entry or a join on another caller's flight. Waiting is bounded by ctx;
// compute itself is responsible for observing ctx (the simulation runners
// pass it down to the cores).
func (c *Cache) Do(ctx context.Context, key string, compute func() (any, error)) (v any, hit bool, err error) {
	for {
		c.mu.Lock()
		if e, ok := c.m[key]; ok {
			c.mu.Unlock()
			select {
			case <-e.ready:
				if e.err == nil {
					return e.val, true, nil
				}
				// The owner failed (possibly its own cancellation). The
				// entry is already gone; retry under our context.
				if cerr := ctx.Err(); cerr != nil {
					return nil, false, cerr
				}
				continue
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		e := &cacheEntry{ready: make(chan struct{})}
		c.m[key] = e
		c.mu.Unlock()

		e.val, e.err = compute()
		if e.err != nil {
			c.mu.Lock()
			delete(c.m, key)
			c.mu.Unlock()
		}
		close(e.ready)
		return e.val, false, e.err
	}
}
