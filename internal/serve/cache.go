package serve

import (
	"container/list"
	"context"
	"encoding/json"
	"sync"
)

// Tier is a second cache level consulted under the in-RAM LRU: the disk
// store (internal/store) in this process, or any other persistent
// key/value layer keyed by the same Key(...) hashes. Both methods are
// best-effort — a tier that misses or fails simply pushes the request to
// the next level (compute).
type Tier interface {
	Get(key string) ([]byte, bool)
	Put(key string, val []byte)
}

// HitTier reports which level served a cache lookup.
type HitTier int

const (
	// Computed: every tier missed; the compute callback ran (locally or
	// as a fleet dispatch).
	Computed HitTier = iota
	// HitRAM: served from the in-process LRU, including joins on another
	// caller's in-flight computation (the work ran once, not per caller).
	HitRAM
	// HitDisk: missed RAM, served from the persistent tier, and installed
	// back into RAM for the next caller.
	HitDisk
)

// Cache is the content-addressed result store with singleflight
// deduplication and an LRU entry cap. Values are keyed by Key(...) hashes
// of their full input description, so a hit is by construction the same
// result a fresh simulation would produce.
//
// Concurrency contract: the first caller of Do for a key computes the
// value; concurrent callers for the same key block until that computation
// finishes and then share the result (a dedup hit — the work ran once).
// Failed computations are not cached: the entry is removed before waiters
// wake, and each waiter retries, so a job cancelled mid-flight never
// poisons the cache for later requests.
//
// Bounding: a long-lived coordinator sees an unbounded stream of distinct
// cells, so ready entries beyond the cap are evicted least-recently-used.
// In-flight entries are pinned (they are not results yet and other callers
// may be joined on them); they enter the LRU order when they complete.
// Eviction affects only memory and future hit rates — a re-asked evicted
// cell recomputes to the identical value, or reloads from the disk tier
// for free when one is configured.
type Cache struct {
	mu      sync.Mutex
	max     int // > 0; ready entries beyond this are evicted LRU
	m       map[string]*cacheEntry
	lru     list.List           // ready entries, front = most recently used
	bytes   int64               // sum of ready entries' encoded sizes (0 when unknown)
	onEvict func(sizeBytes int) // optional eviction hook (metrics)
}

type cacheEntry struct {
	key   string
	ready chan struct{} // closed when val/err are final
	val   any
	err   error
	size  int           // encoded-bytes size, 0 when never encoded (untiered entries)
	elem  *list.Element // nil while in flight
}

// DefaultCacheMaxEntries is the generous default cap: far above any single
// evaluation's cell count, small enough that a coordinator serving heavy
// traffic for months stays bounded.
const DefaultCacheMaxEntries = 1 << 16

// NewCache returns an empty cache holding at most max ready entries
// (max <= 0 means DefaultCacheMaxEntries). onEvict, if non-nil, is called
// once per evicted entry with the entry's approximate byte size — the
// encoded (persisted-format) size when known, 0 for entries that were
// never encoded — so the metrics layer can account the RAM tier in bytes
// as well as entries, mirroring the disk tier.
func NewCache(max int, onEvict func(sizeBytes int)) *Cache {
	if max <= 0 {
		max = DefaultCacheMaxEntries
	}
	return &Cache{max: max, m: make(map[string]*cacheEntry), onEvict: onEvict}
}

// Len returns the number of cached (successful) or in-flight entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Bytes returns the approximate total encoded size of ready entries.
// Entries resolved through the untiered Do path have unknown (zero) size,
// so this is a floor, not an exact heap figure; for store-backed managers
// every cell entry is encoded and counted.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Contains reports whether key is resident and ready (a guaranteed RAM
// hit) without touching recency or joining a flight. In-flight entries
// report false: a caller probing for admission cannot count on a
// computation that may still fail or be cancelled.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	return ok && e.elem != nil
}

// Do returns the cached value for key, joining an in-flight computation if
// one exists, or computes it by calling compute. hit reports whether the
// value was served without running compute in this call — a warm cache
// entry or a join on another caller's flight. Waiting is bounded by ctx;
// compute itself is responsible for observing ctx (the simulation runners
// pass it down to the cores).
func (c *Cache) Do(ctx context.Context, key string, compute func() (any, error)) (v any, hit bool, err error) {
	v, tier, err := c.DoTiered(ctx, key, nil, nil, compute)
	return v, tier == HitRAM, err
}

// DoTiered is Do with a persistent second level underneath the RAM tier.
// On a RAM miss it consults tier2 (when non-nil): a stored value is
// decoded with decode, installed into RAM, and served as HitDisk. When
// every tier misses, compute runs; its result is canonically JSON-encoded
// once — for the RAM tier's byte accounting and, when tier2 is present,
// persisted so the next process start finds it. decode must be the
// inverse of that encoding for the value's concrete type; a decode
// failure (a corrupt or alien stored value) falls through to compute and
// the recomputed value overwrites nothing (keys are content-addressed, so
// the bytes would be identical anyway).
func (c *Cache) DoTiered(ctx context.Context, key string, tier2 Tier, decode func([]byte) (any, error), compute func() (any, error)) (v any, tier HitTier, err error) {
	for {
		c.mu.Lock()
		if e, ok := c.m[key]; ok {
			c.touch(e)
			c.mu.Unlock()
			select {
			case <-e.ready:
				if e.err == nil {
					return e.val, HitRAM, nil
				}
				// The owner failed (possibly its own cancellation). The
				// entry is already gone; retry under our context.
				if cerr := ctx.Err(); cerr != nil {
					return nil, Computed, cerr
				}
				continue
			case <-ctx.Done():
				return nil, Computed, ctx.Err()
			}
		}
		e := &cacheEntry{key: key, ready: make(chan struct{})}
		c.m[key] = e
		c.mu.Unlock()

		tier = Computed
		if tier2 != nil && decode != nil {
			if b, ok := tier2.Get(key); ok {
				if dv, derr := decode(b); derr == nil {
					e.val, e.size, tier = dv, len(b), HitDisk
				}
			}
		}
		if tier == Computed {
			e.val, e.err = compute()
			if e.err == nil && tier2 != nil {
				// One canonical encoding serves both needs: the disk
				// tier's value bytes and the RAM tier's size accounting.
				if b, merr := json.Marshal(e.val); merr == nil {
					e.size = len(b)
					tier2.Put(key, b)
				}
			}
		}

		c.mu.Lock()
		if e.err != nil {
			delete(c.m, key)
		} else {
			e.elem = c.lru.PushFront(e)
			c.bytes += int64(e.size)
			c.evictOver()
		}
		c.mu.Unlock()
		close(e.ready)
		return e.val, tier, e.err
	}
}

// touch marks a ready entry most-recently-used. Called with c.mu held.
func (c *Cache) touch(e *cacheEntry) {
	if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
}

// evictOver drops least-recently-used ready entries until the cap holds.
// Called with c.mu held. Waiters already joined on an evicted entry keep
// their reference and still receive its value; only the map loses it.
func (c *Cache) evictOver() {
	for c.lru.Len() > c.max {
		back := c.lru.Back()
		if back == nil {
			return
		}
		e := c.lru.Remove(back).(*cacheEntry)
		e.elem = nil
		delete(c.m, e.key)
		c.bytes -= int64(e.size)
		if c.onEvict != nil {
			c.onEvict(e.size)
		}
	}
}
