package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestKeyDeterministic: the content hash is a pure function of the kind tag
// and the payload, and any change to either changes the key.
func TestKeyDeterministic(t *testing.T) {
	type payload struct {
		A string
		B int
	}
	k1 := Key("cell", payload{"x", 1})
	k2 := Key("cell", payload{"x", 1})
	if k1 != k2 {
		t.Errorf("identical payloads hashed differently: %s vs %s", k1, k2)
	}
	if Key("cell", payload{"x", 2}) == k1 {
		t.Error("payload change did not change the key")
	}
	if Key("other", payload{"x", 1}) == k1 {
		t.Error("kind change did not change the key")
	}
}

// TestCacheSingleflight: concurrent callers for one key run the computation
// exactly once; everyone shares the result and all but the owner report a
// hit.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(0, nil)
	var computes, hits atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			v, hit, err := c.Do(context.Background(), "k", func() (any, error) {
				computes.Add(1)
				time.Sleep(10 * time.Millisecond) // let the others pile up
				return 42, nil
			})
			if err != nil || v.(int) != 42 {
				t.Errorf("Do = %v, %v", v, err)
			}
			if hit {
				hits.Add(1)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if computes.Load() != 1 {
		t.Errorf("computation ran %d times", computes.Load())
	}
	if hits.Load() != 15 {
		t.Errorf("%d hits, want 15", hits.Load())
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries", c.Len())
	}
}

// TestCacheErrorNotCached: a failed computation (a cancelled job, say) must
// not poison the key — the next caller computes afresh.
func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(0, nil)
	boom := errors.New("boom")
	if _, _, err := c.Do(context.Background(), "k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed entry left in the cache")
	}
	v, hit, err := c.Do(context.Background(), "k", func() (any, error) { return "fresh", nil })
	if err != nil || hit || v.(string) != "fresh" {
		t.Fatalf("retry = %v hit=%v err=%v", v, hit, err)
	}
}

// TestCacheWaiterHonorsContext: a caller waiting on someone else's flight
// gives up when its own context dies; the flight itself is unaffected.
func TestCacheWaiterHonorsContext(t *testing.T) {
	c := NewCache(0, nil)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do(context.Background(), "k", func() (any, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Do(ctx, "k", func() (any, error) { return 2, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	close(release)
	<-done
	v, hit, err := c.Do(context.Background(), "k", nil)
	if err != nil || !hit || v.(int) != 1 {
		t.Fatalf("owner's result lost: %v hit=%v err=%v", v, hit, err)
	}
}

// blockingJob enqueues a job that parks until release closes (or its
// context dies), so tests can hold a worker or the queue occupied.
func blockingJob(t *testing.T, m *Manager, release chan struct{}) *Job {
	t.Helper()
	j, err := m.enqueue("test", func(ctx context.Context, j *Job) (any, error) {
		select {
		case <-release:
			return map[string]string{"ok": "yes"}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func waitState(t *testing.T, j *Job, want JobState) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s stuck in %s waiting for %s", j.ID(), j.Status().State, want)
	}
	if st := j.Status(); st.State != want {
		t.Fatalf("job %s ended %s (%s), want %s", j.ID(), st.State, st.Error, want)
	}
}

// waitRunning spins until the job leaves the queue.
func waitRunning(t *testing.T, j *Job) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := j.Status(); st.State == JobRunning {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started running", j.ID())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueueFullRejects: with the single worker busy and the single queue
// slot taken, the next submission bounces with ErrQueueFull and the
// rejection counter moves; it never silently blocks.
func TestQueueFullRejects(t *testing.T) {
	m := NewManager(Config{QueueDepth: 1, JobWorkers: 1})
	release := make(chan struct{})
	running := blockingJob(t, m, release)
	waitRunning(t, running)
	queued := blockingJob(t, m, release)

	if _, err := m.enqueue("test", func(context.Context, *Job) (any, error) { return nil, nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if got := m.Metrics().JobsRejected.Load(); got != 1 {
		t.Errorf("JobsRejected = %d", got)
	}

	close(release)
	waitState(t, running, JobDone)
	waitState(t, queued, JobDone)
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestCancelQueuedAndRunning: cancelling a queued job skips it entirely;
// cancelling a running job ends it as cancelled via its context.
func TestCancelQueuedAndRunning(t *testing.T) {
	m := NewManager(Config{QueueDepth: 4, JobWorkers: 1})
	release := make(chan struct{})
	running := blockingJob(t, m, release)
	waitRunning(t, running)
	queued := blockingJob(t, m, release)

	if !m.Cancel(queued.ID()) {
		t.Fatal("Cancel(queued) = false")
	}
	waitState(t, queued, JobCancelled)
	if !m.Cancel(running.ID()) {
		t.Fatal("Cancel(running) = false")
	}
	waitState(t, running, JobCancelled)
	if m.Cancel("job-999999") {
		t.Error("Cancel must report unknown IDs")
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownDrainsInFlight is the graceful-shutdown contract: draining
// rejects new work immediately but the in-flight job runs to completion
// and keeps its result.
func TestShutdownDrainsInFlight(t *testing.T) {
	m := NewManager(Config{QueueDepth: 4, JobWorkers: 1})
	release := make(chan struct{})
	j := blockingJob(t, m, release)
	waitRunning(t, j)

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- m.Shutdown(context.Background()) }()

	// Draining must reject promptly, well before the in-flight job ends.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := m.enqueue("test", func(context.Context, *Job) (any, error) { return nil, nil })
		if errors.Is(err, ErrDraining) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submissions not rejected while draining: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v before the in-flight job finished", err)
	default:
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	waitState(t, j, JobDone)
	if res, ok := j.Result(); !ok || len(res) == 0 {
		t.Error("drained job lost its result")
	}
}

// TestShutdownDeadlineCancels: when the drain budget runs out, remaining
// jobs are cancelled — they finish as JobCancelled, never dropped — and
// Shutdown reports the deadline.
func TestShutdownDeadlineCancels(t *testing.T) {
	m := NewManager(Config{QueueDepth: 4, JobWorkers: 1})
	j := blockingJob(t, m, make(chan struct{})) // never released: only ctx can end it
	waitRunning(t, j)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	waitState(t, j, JobCancelled)
	if got := m.Metrics().JobsCancelled.Load(); got != 1 {
		t.Errorf("JobsCancelled = %d", got)
	}
}
