package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nda/internal/harness"
)

// TestCellEndpoint: the worker side of the fleet protocol. One cell per
// kind round-trips with a decodable, deterministic body, and a repeated
// cell is served from the cache with identical bytes.
func TestCellEndpoint(t *testing.T) {
	m, srv := newTestServer(t)

	sweepCell := CellRequest{Kind: "sweep", Workload: "exchange2", Policy: "Permissive", Sampling: tinySampling()}
	resp, cold := post(t, srv.URL+"/v1/cell", sweepCell)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep cell = %d: %s", resp.StatusCode, cold)
	}
	var meas harness.Measurement
	if err := json.Unmarshal(cold, &meas); err != nil {
		t.Fatal(err)
	}
	if meas.Cycles == 0 || meas.Committed == 0 {
		t.Fatalf("sweep cell measured nothing: %+v", meas)
	}
	resp, warm := post(t, srv.URL+"/v1/cell", sweepCell)
	if resp.StatusCode != http.StatusOK || string(warm) != string(cold) {
		t.Fatalf("cached cell differs from cold cell (code %d)", resp.StatusCode)
	}
	if m.Metrics().CellsServed.Load() != 2 {
		t.Errorf("CellsServed = %d, want 2", m.Metrics().CellsServed.Load())
	}

	for _, c := range []CellRequest{
		{Kind: "sweep", Workload: "exchange2", InOrder: true, Sampling: tinySampling()},
		{Kind: "gadget", Program: "meltdown"},
		{Kind: "attack", Attack: "spectre-v1-cache", Policy: "OoO"},
	} {
		if resp, body := post(t, srv.URL+"/v1/cell", c); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s cell = %d: %s", c.Kind, resp.StatusCode, body)
		}
	}
}

// TestCellEndpointRejects: malformed cells are 400s with a reason, never
// 500s — a coordinator must be able to tell its own bugs (bad request)
// from a worker's (failed simulation).
func TestCellEndpointRejects(t *testing.T) {
	_, srv := newTestServer(t)

	cases := []struct {
		name string
		req  CellRequest
		want string
	}{
		{"unknown kind", CellRequest{Kind: "matrix"}, "unknown cell kind"},
		{"unknown workload", CellRequest{Kind: "sweep", Workload: "nope", Policy: "OoO"}, "unknown benchmark"},
		{"unknown policy", CellRequest{Kind: "sweep", Workload: "gcc", Policy: "nope"}, "unknown policy"},
		{"in-order with policy", CellRequest{Kind: "sweep", Workload: "gcc", InOrder: true, Policy: "OoO"}, "must not name a policy"},
		{"unknown attack", CellRequest{Kind: "attack", Attack: "nope"}, "unknown attack"},
		{"unknown program", CellRequest{Kind: "gadget", Program: "nope"}, "unknown program"},
	}
	for _, c := range cases {
		resp, body := post(t, srv.URL+"/v1/cell", c.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: code = %d, want 400 (%s)", c.name, resp.StatusCode, body)
			continue
		}
		if !strings.Contains(string(body), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, body, c.want)
		}
	}
}

// TestCacheLRUEviction: the cache holds its cap, evicts least-recently
// used first, reports evictions, and recomputes an evicted key.
func TestCacheLRUEviction(t *testing.T) {
	var evictions int
	c := NewCache(2, func(int) { evictions++ })
	compute := func(v int) func() (any, error) {
		return func() (any, error) { return v, nil }
	}
	ctx := context.Background()
	c.Do(ctx, "a", compute(1))
	c.Do(ctx, "b", compute(2))
	c.Do(ctx, "a", nil) // touch: "b" is now the eviction candidate
	c.Do(ctx, "c", compute(3))
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want cap 2", c.Len())
	}
	if evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
	if _, hit, _ := c.Do(ctx, "a", compute(10)); !hit {
		t.Error("recently-touched entry was evicted instead of the LRU one")
	}
	v, hit, _ := c.Do(ctx, "b", compute(20))
	if hit || v.(int) != 20 {
		t.Errorf("evicted key: v=%v hit=%v, want recompute to 20", v, hit)
	}
}

// TestCacheEvictionMetric: a capped manager cache reports evictions on
// /metrics as nda_cache_evictions_total.
func TestCacheEvictionMetric(t *testing.T) {
	m := NewManager(Config{QueueDepth: 8, JobWorkers: 1, CacheMaxEntries: 1})
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})

	for _, prog := range []string{"meltdown", "ssb"} {
		resp, body := post(t, srv.URL+"/v1/cell", CellRequest{Kind: "gadget", Program: prog})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("gadget cell %s = %d: %s", prog, resp.StatusCode, body)
		}
	}
	if got := m.Metrics().CacheEvictions.Load(); got != 1 {
		t.Errorf("CacheEvictions = %d, want 1 with a 1-entry cache and 2 distinct cells", got)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "nda_cache_evictions_total 1") {
		t.Error("/metrics does not report nda_cache_evictions_total 1")
	}
}
