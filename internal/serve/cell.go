package serve

import (
	"context"
	"encoding/json"
	"fmt"

	"nda/internal/attack"
	"nda/internal/core"
	"nda/internal/gadget"
	"nda/internal/harness"
	"nda/internal/workload"
)

// CellRequest is the fleet's unit of work: exactly one simulation cell,
// shipped by a coordinator to a worker as POST /v1/cell and answered with
// the cell's canonical JSON (a harness.Measurement, an attack.Outcome, or
// a gadget.ProgramReport, by kind). It deliberately mirrors the result
// cache's cell keys — a cell's response is a pure function of this request
// — which is what makes a fleet-merged table byte-identical to a local
// run: the coordinator assembles the same values into the same slots.
//
// The attack kind carries no ooo.Params: workers simulate attack cells
// under their own configured params, so a fleet must be homogeneous (every
// worker started with the same build and defaults), exactly as a batch
// cluster's array jobs assume a uniform image.
type CellRequest struct {
	Kind string `json:"kind"` // "sweep", "attack", or "gadget"

	// Sweep cells.
	Workload string       `json:"workload,omitempty"`
	InOrder  bool         `json:"in_order,omitempty"`
	Sampling SamplingSpec `json:"sampling,omitempty"`

	// Sweep (when InOrder is false) and attack cells.
	Policy string `json:"policy,omitempty"`

	// Attack cells.
	Attack string `json:"attack,omitempty"`

	// Gadget cells.
	Program string `json:"program,omitempty"`
}

// cellTask is the validated, name-resolved form of a CellRequest.
type cellTask struct {
	kind string

	spec workload.Spec
	pol  core.Policy
	in   bool
	cfg  harness.Config
	spl  SamplingSpec

	attack attack.Kind
	gadget gadget.Input
}

func (r CellRequest) task() (*cellTask, error) {
	t := &cellTask{kind: r.Kind}
	switch r.Kind {
	case "sweep":
		s, err := workload.ByName(r.Workload)
		if err != nil {
			return nil, err
		}
		t.spec, t.in, t.spl = s, r.InOrder, r.Sampling
		t.cfg = r.Sampling.resolve()
		if r.InOrder {
			if r.Policy != "" {
				return nil, fmt.Errorf("serve: in-order cell must not name a policy (got %q)", r.Policy)
			}
		} else {
			if t.pol, err = core.ByName(r.Policy); err != nil {
				return nil, err
			}
		}
	case "attack":
		known := false
		for _, k := range attack.All() {
			known = known || k == attack.Kind(r.Attack)
		}
		if !known {
			return nil, fmt.Errorf("serve: unknown attack %q", r.Attack)
		}
		t.attack, t.in = attack.Kind(r.Attack), r.InOrder
		if !r.InOrder {
			var err error
			if t.pol, err = core.ByName(r.Policy); err != nil {
				return nil, err
			}
		}
	case "gadget":
		builtins, err := cachedBuiltins()
		if err != nil {
			return nil, err
		}
		found := false
		for _, in := range builtins {
			if in.Name == r.Program {
				t.gadget, found = in, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("serve: unknown program %q", r.Program)
		}
	default:
		return nil, fmt.Errorf("serve: unknown cell kind %q (want sweep, attack, or gadget)", r.Kind)
	}
	return t, nil
}

// RunCell evaluates one validated cell synchronously (no job queue: cells
// are the fleet's smallest work unit, bounded by the coordinator's
// per-worker windows, not by this worker's job queue). The result is
// resolved through this worker's cache like any local cell, so a fleet in
// front of warmed workers costs one HTTP round-trip per cell and nothing
// else.
func (m *Manager) runCell(ctx context.Context, t *cellTask) (any, error) {
	switch t.kind {
	case "sweep":
		return m.measureCell(ctx, nil, t.spec, t.pol, t.in, t.cfg, t.spl)
	case "attack":
		return m.attackCell(ctx, nil, t.attack, t.pol, t.in)
	default:
		return m.gadgetCell(ctx, nil, t.gadget)
	}
}

// remoteCell resolves one cell through the fleet and decodes the winning
// response into out. The coordinator consults its fleet-shared store under
// the cell's cache key first — sharedHit reports that the result came from
// there and no worker was touched. On a real dispatch, the job's
// per-worker progress counters absorb the dispatch record (retries,
// hedges, the worker that served it).
func (m *Manager) remoteCell(ctx context.Context, j *Job, key string, req CellRequest, out any) (sharedHit bool, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return false, err
	}
	raw, stat, err := m.cfg.Fleet.Do(ctx, "/v1/cell", key, body)
	j.noteDispatch(stat)
	if err != nil {
		return false, err
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("serve: undecodable cell response from %s: %w", stat.Worker, err)
	}
	return stat.SharedHit, nil
}
