package serve

import (
	"context"

	"nda/internal/tenant"
)

// Cache warming: POST /v1/warm (or ndaserve -warm-from at boot) submits
// one job that pushes a set of standard requests through the normal
// runners. Every cell resolves through the usual tier stack, so warming a
// store-backed service after a restart replays the persisted results into
// RAM without running a single simulation, and warming a cold service
// performs the simulations once so every later request is a hit.

// WarmRequest lists the work to precompute. An empty request (no sweeps,
// attacks, or gadget censuses) means StandardWarm: the paper's standard
// figure set.
type WarmRequest struct {
	Sweeps  []SweepRequest   `json:"sweeps,omitempty"`
	Attacks []AttackRequest  `json:"attacks,omitempty"`
	Gadgets []GadgetsRequest `json:"gadgets,omitempty"`
}

func (r WarmRequest) empty() bool {
	return len(r.Sweeps) == 0 && len(r.Attacks) == 0 && len(r.Gadgets) == 0
}

// StandardWarm is the default warming set: the full performance sweep
// (every workload under every configuration, standard sampling), the full
// security matrix, and the complete gadget census — the cells behind the
// paper's headline figures, exactly as the API defaults produce them.
func StandardWarm() WarmRequest {
	return WarmRequest{
		Sweeps:  []SweepRequest{{}},
		Attacks: []AttackRequest{{}},
		Gadgets: []GadgetsRequest{{}},
	}
}

// WarmResponse summarizes a finished warm job: how many cells were
// resolved and which tier served each one. After a restart over a
// populated store, Tiers.Disk equals Cells and the simulation counter on
// /metrics has not moved.
type WarmResponse struct {
	Cells int64      `json:"cells"`
	Tiers TierCounts `json:"tiers"`
}

// SubmitWarm validates and enqueues a warm job. Sub-requests run
// sequentially in request order (each one fans its own cells out over the
// simulation pool, so there is no parallelism left on the table), under a
// single job whose progress counters accumulate across all of them.
// Warm jobs always run in the warm scheduling class: precomputation yields
// to every tenant's interactive and batch traffic.
func (m *Manager) SubmitWarm(req WarmRequest, opts ...SubmitOpts) (*Job, error) {
	if req.empty() {
		req = StandardWarm()
	}
	// Validate every sub-request up front: a warm job must fail at submit
	// time, not midway through hours of precomputation.
	var runs []func(ctx context.Context, j *Job) (any, error)
	for _, r := range req.Sweeps {
		t, err := r.task()
		if err != nil {
			return nil, err
		}
		runs = append(runs, func(ctx context.Context, j *Job) (any, error) { return m.runSweep(ctx, j, t) })
	}
	for _, r := range req.Attacks {
		t, err := r.task()
		if err != nil {
			return nil, err
		}
		runs = append(runs, func(ctx context.Context, j *Job) (any, error) { return m.runAttack(ctx, j, t) })
	}
	for _, r := range req.Gadgets {
		t, err := r.task()
		if err != nil {
			return nil, err
		}
		runs = append(runs, func(ctx context.Context, j *Job) (any, error) { return m.runGadgets(ctx, j, t) })
	}
	o := resolveOpts(opts)
	o.Class = tenant.Warm
	return m.enqueueAs("warm", o, nil, func(ctx context.Context, j *Job) (any, error) {
		for _, run := range runs {
			if _, err := run(ctx, j); err != nil {
				return nil, err
			}
		}
		st := j.Status()
		return &WarmResponse{Cells: st.DoneCells, Tiers: st.Tiers}, nil
	})
}
