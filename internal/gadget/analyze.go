package gadget

import (
	"encoding/binary"
	"sort"

	"nda/internal/core"
	"nda/internal/isa"
)

// DefaultWindow bounds how far past a steering point the analyzer follows a
// transient path, in instructions. It matches the ROB size of
// ooo.DefaultParams: the window within which wrong-path instructions can be
// in flight.
const DefaultWindow = 192

const (
	maxChainSites = 12 // representative-chain cap in reports
	maxBypassScan = 64 // straight-line distance a load may bypass a store
)

// Config parameterizes an analysis.
type Config struct {
	// SecretRegs designates registers holding a secret architecturally at
	// region entry, enabling detection of the §4.2 register-steering gadget
	// (secret already in a GPR, no load needed).
	SecretRegs []isa.Reg
	// Window bounds the transient window in instructions; 0 = DefaultWindow.
	Window int
}

// Analyze runs the static gadget analysis over one program.
func Analyze(p *isa.Program, cfg Config) *Analysis {
	a := newAnalyzer(p, cfg)
	a.harvest()
	a.constProp()
	a.liveness()
	guards := 0
	for i := range a.insts {
		if isa.ClassOf(a.insts[i]) != isa.ClassBranch || !a.liveOn[i] {
			continue
		}
		guards++
		a.analyzeSteering(i)
	}
	a.analyzeChosenCode()
	a.analyzeBypass()

	gs := make([]Gadget, 0, len(a.found))
	for _, g := range a.found {
		gs = append(gs, *g)
	}
	sortGadgets(gs)
	leaks := make(map[string]bool, 9)
	for _, pol := range core.All() {
		leaks[pol.Name] = false
	}
	byChannel := map[string]map[string]bool{}
	for i := range gs {
		fillVerdicts(&gs[i])
		if gs[i].Advisory {
			continue
		}
		ch := string(gs[i].Channel)
		if byChannel[ch] == nil {
			m := make(map[string]bool, 9)
			for _, pol := range core.All() {
				m[pol.Name] = false
			}
			byChannel[ch] = m
		}
		for name, v := range gs[i].Verdicts {
			if !v.Blocked {
				leaks[name] = true
				byChannel[ch][name] = true
			}
		}
	}
	return &Analysis{Insts: a.n, Guards: guards, Gadgets: gs, Leaks: leaks, LeaksByChannel: byChannel}
}

// ---------------------------------------------------------------------------
// analyzer state and the preparatory passes

type analyzer struct {
	p      *isa.Program
	cfg    Config
	insts  []isa.Inst
	n      int
	window int

	retSites  []int // indices following call instructions: RAS mis-targets
	harvested []int // code addresses found in data: BTB mis-targets
	barrier   []bool
	loadAddr  map[int]uint64
	storeAddr map[int]uint64
	slowStore []bool
	liveOn    []bool // arch-reachable with speculation enabled
	liveAny   []bool // arch-reachable in either speculation state
	syms      []symEntry

	found map[gadgetKey]*Gadget
}

type symEntry struct {
	addr uint64
	name string
}

type gadgetKey struct {
	kind     Kind
	channel  Channel
	transmit int
	flavor   flavorKey
}

func newAnalyzer(p *isa.Program, cfg Config) *analyzer {
	w := cfg.Window
	if w <= 0 {
		w = DefaultWindow
	}
	a := &analyzer{
		p:         p,
		cfg:       cfg,
		insts:     p.Insts,
		n:         len(p.Insts),
		window:    w,
		barrier:   make([]bool, len(p.Insts)),
		loadAddr:  map[int]uint64{},
		storeAddr: map[int]uint64{},
		slowStore: make([]bool, len(p.Insts)),
		found:     map[gadgetKey]*Gadget{},
	}
	for name, addr := range p.Symbols {
		if addr >= p.TextBase && addr < p.End() {
			a.syms = append(a.syms, symEntry{addr, name})
		}
	}
	sort.Slice(a.syms, func(i, j int) bool {
		if a.syms[i].addr != a.syms[j].addr {
			return a.syms[i].addr < a.syms[j].addr
		}
		return a.syms[i].name < a.syms[j].name
	})
	return a
}

func (a *analyzer) idx(pc uint64) (int, bool) {
	if pc < a.p.TextBase || (pc-a.p.TextBase)%isa.InstBytes != 0 {
		return 0, false
	}
	i := int((pc - a.p.TextBase) / isa.InstBytes)
	if i >= a.n {
		return 0, false
	}
	return i, true
}

func (a *analyzer) pc(i int) uint64 { return a.p.TextBase + uint64(i)*isa.InstBytes }

// harvest scans data segments for aligned words that decode to text
// addresses: the indirect-branch targets an attacker can plant for the BTB
// to mispredict to (function-pointer tables, vtables). It also records the
// return sites the RAS can mispredict to.
func (a *analyzer) harvest() {
	seen := map[int]bool{}
	for _, seg := range a.p.Data {
		for off := 0; off+8 <= len(seg.Bytes); off++ {
			if (seg.Addr+uint64(off))%8 != 0 {
				continue
			}
			w := binary.LittleEndian.Uint64(seg.Bytes[off : off+8])
			if i, ok := a.idx(w); ok && !seen[i] {
				seen[i] = true
				a.harvested = append(a.harvested, i)
			}
		}
	}
	sort.Ints(a.harvested)
	for i := range a.insts {
		if a.insts[i].IsCall() && i+1 < a.n {
			a.retSites = append(a.retSites, i+1)
		}
	}
}

// constProp runs one linear constant-propagation pass (invalidated at every
// control-transfer target and after every control instruction) to resolve
// statically known load/store addresses — kernel-segment accesses for the
// chosen-code analysis, alias checks for the bypass analysis — and marks
// "slow stores": stores whose address chain contains a load and therefore
// resolves late enough for a younger load to bypass (§4.1, Spectre v4).
func (a *analyzer) constProp() {
	for i := range a.insts {
		inst := a.insts[i]
		if inst.IsCondBranch() || inst.Op == isa.OpJal {
			if t, ok := a.idx(uint64(inst.Imm)); ok {
				a.barrier[t] = true
			}
		}
	}
	for _, t := range a.harvested {
		a.barrier[t] = true
	}
	for _, t := range a.retSites {
		a.barrier[t] = true
	}

	consts := map[isa.Reg]uint64{}
	var der [isa.NumGPR]bool
	reset := func() {
		consts = map[isa.Reg]uint64{}
		der = [isa.NumGPR]bool{}
	}
	val := func(r isa.Reg) (uint64, bool) {
		if r == isa.RegZero {
			return 0, true
		}
		v, ok := consts[r]
		return v, ok
	}
	for i := 0; i < a.n; i++ {
		if a.barrier[i] {
			reset()
		}
		inst := a.insts[i]
		if inst.IsLoad() {
			if base, ok := val(inst.Rs1); ok {
				a.loadAddr[i] = base + uint64(inst.Imm)
			}
		}
		if inst.IsStore() {
			a.slowStore[i] = inst.Rs1 != isa.RegZero && der[inst.Rs1]
			if base, ok := val(inst.Rs1); ok {
				a.storeAddr[i] = base + uint64(inst.Imm)
			}
		}
		if rd, writes := inst.WritesReg(); writes {
			switch {
			case inst.Op == isa.OpLui:
				consts[rd] = uint64(inst.Imm)
				der[rd] = false
			case isa.IsALU(inst.Op):
				_, nsrc := inst.SrcRegs()
				av, aok := val(inst.Rs1)
				bv, bok := uint64(inst.Imm), true
				d := der[inst.Rs1]
				if nsrc == 2 {
					bv, bok = val(inst.Rs2)
					d = d || der[inst.Rs2]
				}
				if aok && bok {
					consts[rd] = isa.EvalALU(inst.Op, av, bv)
				} else {
					delete(consts, rd)
				}
				der[rd] = d
			case inst.IsLoad() || inst.Op == isa.OpRdmsr:
				delete(consts, rd)
				der[rd] = true
			default: // jal/jalr link, rdcycle
				delete(consts, rd)
				der[rd] = false
			}
		}
		if inst.IsControl() {
			reset()
		}
	}
}

// liveness computes architectural reachability over (pc, speculation-enabled)
// states, starting from the entry with speculation on. A guard that is only
// reachable inside a specoff/specon bracket can never mis-steer: the front
// end fetches past unresolved branches only when speculation is enabled.
func (a *analyzer) liveness() {
	a.liveOn = make([]bool, a.n)
	a.liveAny = make([]bool, a.n)
	seen := make([]bool, a.n*2)
	entry, ok := a.idx(a.p.Entry)
	if !ok {
		return
	}
	type st struct {
		i  int
		on bool
	}
	stack := []st{{entry, true}}
	push := func(i int, on bool) {
		k := i*2 + 1
		if !on {
			k = i * 2
		}
		if i < a.n && !seen[k] {
			seen[k] = true
			stack = append(stack, st{i, on})
		}
	}
	seen[entry*2+1] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		inst := a.insts[s.i]
		switch {
		case inst.Op == isa.OpHalt || inst.Op == isa.OpInvalid:
		case inst.Op == isa.OpSpecOff:
			push(s.i+1, false)
		case inst.Op == isa.OpSpecOn:
			push(s.i+1, true)
		case inst.IsCondBranch():
			push(s.i+1, s.on)
			if t, ok := a.idx(uint64(inst.Imm)); ok {
				push(t, s.on)
			}
		case inst.Op == isa.OpJal:
			if t, ok := a.idx(uint64(inst.Imm)); ok {
				push(t, s.on)
			}
		case inst.Op == isa.OpJalr:
			if inst.IsReturn() {
				for _, t := range a.retSites {
					push(t, s.on)
				}
			} else {
				for _, t := range a.harvested {
					push(t, s.on)
				}
			}
		default:
			push(s.i+1, s.on)
		}
	}
	for i := 0; i < a.n; i++ {
		a.liveOn[i] = seen[i*2+1]
		a.liveAny[i] = seen[i*2] || seen[i*2+1]
	}
}

// ---------------------------------------------------------------------------
// transient regions: the code a mis-steered front end can fetch

// specSuccs returns the indices fetch can reach right after instruction i on
// a speculative path. Fetch stops dead at halt/invalid/specoff; it also
// stops at fence because younger instructions cannot issue before the fence
// completes, and the fence itself waits for every older instruction —
// including the unresolved guard, whose resolution squashes the path first.
func (a *analyzer) specSuccs(i int) []int {
	inst := a.insts[i]
	next := func() []int {
		if i+1 < a.n {
			return []int{i + 1}
		}
		return nil
	}
	switch {
	case inst.Op == isa.OpHalt || inst.Op == isa.OpInvalid ||
		inst.Op == isa.OpSpecOff || inst.Op == isa.OpFence:
		return nil
	case inst.IsCondBranch():
		succs := next()
		if t, ok := a.idx(uint64(inst.Imm)); ok {
			succs = append(succs, t)
		}
		return succs
	case inst.Op == isa.OpJal:
		if t, ok := a.idx(uint64(inst.Imm)); ok {
			return []int{t}
		}
		return nil
	case inst.Op == isa.OpJalr:
		if inst.IsReturn() {
			return a.retSites
		}
		return a.harvested
	default:
		return next()
	}
}

// region is the set of instructions within the transient window of one or
// more entry points, with each member's minimum fetch distance.
type region struct {
	member  map[int]int
	entries []int
	order   []int
}

func (a *analyzer) buildRegion(starts []int) *region {
	r := &region{member: map[int]int{}}
	queue := []int{}
	for _, s := range starts {
		if _, ok := r.member[s]; !ok {
			r.member[s] = 1
			r.entries = append(r.entries, s)
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		d := r.member[i]
		if d >= a.window {
			continue
		}
		for _, s := range a.specSuccs(i) {
			if _, ok := r.member[s]; !ok {
				r.member[s] = d + 1
				queue = append(queue, s)
			}
		}
	}
	for i := range r.member {
		r.order = append(r.order, i)
	}
	sort.Ints(r.order)
	sort.Ints(r.entries)
	return r
}

// ---------------------------------------------------------------------------
// taint dataflow over a region

// flavorKey collapses the taint lattice per register: what kind of source
// the value derives from and which chain properties the verdict table needs.
// Keeping one representative chain per flavor (instead of one gadget per
// source×path) bounds the output without losing any verdict-distinct gadget.
type flavorKey struct {
	gpr       bool // derives from a register-resident secret seed
	loadFree  bool // no load anywhere on the chain
	directUse bool // no producer at all between seed and consumer
}

var allFlavorKeys = []flavorKey{
	{false, false, false},
	{false, false, true},
	{false, true, false},
	{false, true, true},
	{true, false, false},
	{true, false, true},
	{true, true, false},
	{true, true, true},
}

// rep is the representative source and chain for one flavor.
type rep struct {
	srcIdx int // instruction index of the access, or -1 for a GPR seed
	srcReg isa.Reg
	chain  []int
}

// repLess is a total order on representatives; joins keep the minimum, which
// makes the fixpoint independent of evaluation order.
func repLess(x, y rep) bool {
	if x.srcIdx != y.srcIdx {
		return x.srcIdx < y.srcIdx
	}
	if x.srcReg != y.srcReg {
		return x.srcReg < y.srcReg
	}
	if len(x.chain) != len(y.chain) {
		return len(x.chain) < len(y.chain)
	}
	for i := range x.chain {
		if x.chain[i] != y.chain[i] {
			return x.chain[i] < y.chain[i]
		}
	}
	return false
}

type flavors map[flavorKey]rep

// memCell is the pseudo-register modeling memory taint through store-to-load
// forwarding. One conservative cell stands for all of memory: a store of
// tainted data joins its flavors (chain extended by the store) into the
// cell, and every later in-region load reads them back (chain extended by
// the load). No address discrimination is attempted — any tainted store may
// feed any later load — which can only add gadgets, never hide one.
const memCell = isa.Reg(isa.NumGPR)

type regState map[isa.Reg]flavors

func sortedKeys(m flavors) []flavorKey {
	ks := make([]flavorKey, 0, len(m))
	for _, k := range allFlavorKeys {
		if _, ok := m[k]; ok {
			ks = append(ks, k)
		}
	}
	return ks
}

func extendChain(r rep, i int) rep {
	if len(r.chain) >= maxChainSites {
		return r
	}
	nc := make([]int, len(r.chain), len(r.chain)+1)
	copy(nc, r.chain)
	r.chain = append(nc, i)
	return r
}

// joinInto merges src into dst (owned by the caller), keeping the minimum
// representative per flavor. Reports whether dst changed.
func joinInto(dst, src regState) bool {
	changed := false
	for r, fl := range src {
		d := dst[r]
		for k, rp := range fl {
			old, ok := d[k]
			if ok && !repLess(rp, old) {
				continue
			}
			if d == nil {
				d = flavors{}
				dst[r] = d
			}
			d[k] = rp
			changed = true
		}
	}
	return changed
}

// transfer applies instruction i to the incoming taint state. In guardMode
// (steering analysis) every load is additionally a fresh secret source: on a
// mis-steered path, any reachable load can read an attacker-chosen address.
func (a *analyzer) transfer(in regState, i int, guardMode bool) regState {
	inst := a.insts[i]
	if inst.IsStore() {
		fl := in[inst.Rs2]
		if len(fl) == 0 {
			return in
		}
		// Tainted store data flows into the memory cell. The flavor is
		// normalized to its seed kind: once laundered through memory the
		// chain necessarily contains a producer (the store) and, on read-
		// back, a load.
		out := make(regState, len(in)+1)
		for r, f := range in {
			out[r] = f
		}
		d := make(flavors, len(in[memCell])+1)
		for k, rp := range in[memCell] {
			d[k] = rp
		}
		for _, k := range sortedKeys(fl) {
			nk := flavorKey{gpr: k.gpr}
			rp := extendChain(fl[k], i)
			if old, ok := d[nk]; !ok || repLess(rp, old) {
				d[nk] = rp
			}
		}
		out[memCell] = d
		return out
	}
	rd, writes := inst.WritesReg()
	if !writes {
		return in
	}
	derived := flavors{}
	add := func(k flavorKey, r rep) {
		if old, ok := derived[k]; !ok || repLess(r, old) {
			derived[k] = r
		}
	}
	switch {
	case inst.Op == isa.OpLui:
		// immediate overwrite: kills taint
	case isa.IsALU(inst.Op):
		srcs, nsrc := inst.SrcRegs()
		for s := 0; s < nsrc; s++ {
			fl := in[srcs[s]]
			for _, k := range sortedKeys(fl) {
				nk := k
				nk.directUse = false
				add(nk, extendChain(fl[k], i))
			}
		}
	case inst.IsLoad():
		fl := in[inst.Rs1]
		for _, k := range sortedKeys(fl) {
			add(flavorKey{gpr: k.gpr}, extendChain(fl[k], i))
		}
		// Store-to-load forwarding: the load may read back any tainted
		// value a prior in-region store put in memory.
		mfl := in[memCell]
		for _, k := range sortedKeys(mfl) {
			add(flavorKey{gpr: k.gpr}, extendChain(mfl[k], i))
		}
		if guardMode {
			add(flavorKey{}, rep{srcIdx: i, chain: []int{i}})
		}
	case inst.Op == isa.OpRdmsr:
		if guardMode {
			add(flavorKey{}, rep{srcIdx: i, chain: []int{i}})
		}
		// rdcycle, jal/jalr link writes: untainted
	}
	out := make(regState, len(in)+1)
	for r, fl := range in {
		if r != rd {
			out[r] = fl
		}
	}
	if len(derived) > 0 {
		out[rd] = derived
	}
	return out
}

// dataflow runs the taint worklist to fixpoint over the region and returns
// each member's incoming state.
func (a *analyzer) dataflow(reg *region, seed regState, guardMode bool) map[int]regState {
	in := make(map[int]regState, len(reg.member))
	for _, e := range reg.entries {
		if in[e] == nil {
			in[e] = regState{}
		}
		joinInto(in[e], seed)
	}
	// Every member enters the worklist once: taint is GENERATED inside the
	// region (guard-mode load sources), not only injected at the entries.
	wl := append([]int{}, reg.order...)
	inWL := map[int]bool{}
	for _, e := range wl {
		inWL[e] = true
	}
	for _, i := range reg.order {
		if in[i] == nil {
			in[i] = regState{}
		}
	}
	for len(wl) > 0 {
		i := wl[0]
		wl = wl[1:]
		inWL[i] = false
		out := a.transfer(in[i], i, guardMode)
		for _, s := range a.specSuccs(i) {
			if _, ok := reg.member[s]; !ok {
				continue
			}
			if in[s] == nil {
				in[s] = regState{}
			}
			if joinInto(in[s], out) && !inWL[s] {
				wl = append(wl, s)
				inWL[s] = true
			}
		}
	}
	return in
}

// ---------------------------------------------------------------------------
// the three gadget analyses

func (a *analyzer) analyzeSteering(guard int) {
	reg := a.buildRegion(a.specSuccs(guard))
	seed := regState{}
	for _, r := range a.cfg.SecretRegs {
		if r == isa.RegZero {
			continue
		}
		seed[r] = flavors{
			{gpr: true, loadFree: true, directUse: true}: {srcIdx: -1, srcReg: r},
		}
	}
	in := a.dataflow(reg, seed, true)
	a.emit(reg, in, KindSteering, guard)
}

func (a *analyzer) analyzeChosenCode() {
	for i := range a.insts {
		if !a.liveAny[i] {
			continue
		}
		inst := a.insts[i]
		source := false
		if inst.IsLoad() {
			if addr, ok := a.loadAddr[i]; ok && a.inKernel(addr) {
				source = true
			}
		}
		if inst.Op == isa.OpRdmsr && isa.PrivilegedMSR(uint16(inst.Imm)) {
			source = true
		}
		if !source {
			continue
		}
		rd, writes := inst.WritesReg()
		if !writes {
			continue
		}
		reg := a.buildRegion(a.specSuccs(i))
		seed := regState{rd: flavors{{}: {srcIdx: i, chain: []int{i}}}}
		in := a.dataflow(reg, seed, false)
		a.emit(reg, in, KindChosenCode, -1)
	}
}

func (a *analyzer) analyzeBypass() {
	for s := range a.insts {
		if !a.slowStore[s] || !a.liveAny[s] {
			continue
		}
		for j := s + 1; j < a.n && j <= s+maxBypassScan; j++ {
			inst := a.insts[j]
			if inst.IsControl() || inst.Op == isa.OpHalt || inst.Op == isa.OpInvalid ||
				inst.Op == isa.OpFence || inst.Op == isa.OpSpecOff {
				break
			}
			if !inst.IsLoad() || !a.mayAlias(s, j) {
				continue
			}
			rd, writes := inst.WritesReg()
			if !writes {
				continue
			}
			reg := a.buildRegion(a.specSuccs(j))
			seed := regState{rd: flavors{{}: {srcIdx: j, chain: []int{s, j}}}}
			in := a.dataflow(reg, seed, false)
			a.emit(reg, in, KindBypass, -1)
		}
	}
}

func (a *analyzer) inKernel(addr uint64) bool {
	for _, seg := range a.p.Data {
		if seg.Kernel && addr >= seg.Addr && addr < seg.Addr+uint64(len(seg.Bytes)) {
			return true
		}
	}
	return false
}

// mayAlias reports whether store s and load j can touch the same bytes.
// Unknown addresses are conservatively assumed to alias — that is exactly
// the situation that lets the load bypass the store in the first place.
func (a *analyzer) mayAlias(s, j int) bool {
	sa, sok := a.storeAddr[s]
	la, lok := a.loadAddr[j]
	if !sok || !lok {
		return true
	}
	sw := uint64(a.insts[s].MemBytes())
	lw := uint64(a.insts[j].MemBytes())
	return sa < la+lw && la < sa+sw
}

// ---------------------------------------------------------------------------
// gadget emission

// emit scans the region's fixpoint states for transmitters and records one
// gadget per (kind, channel, transmitter, flavor), keeping the shortest
// fetch distance.
func (a *analyzer) emit(reg *region, in map[int]regState, kind Kind, guard int) {
	for _, i := range reg.order {
		st := in[i]
		if st == nil {
			continue
		}
		inst := a.insts[i]
		switch {
		case inst.IsLoad():
			fl := st[inst.Rs1]
			for _, k := range sortedKeys(fl) {
				a.record(kind, ChannelDCache, false, guard, k, fl[k], i, reg.member[i])
			}
		case inst.Op == isa.OpJalr:
			fl := st[inst.Rs1]
			for _, k := range sortedKeys(fl) {
				a.record(kind, ChannelBTB, false, guard, k, fl[k], i, reg.member[i])
			}
		case inst.IsCondBranch():
			srcs, nsrc := inst.SrcRegs()
			for s := 0; s < nsrc; s++ {
				fl := st[srcs[s]]
				for _, k := range sortedKeys(fl) {
					a.record(kind, ChannelBranch, true, guard, k, fl[k], i, reg.member[i])
				}
			}
		}
	}
}

func (a *analyzer) record(kind Kind, ch Channel, advisory bool, guard int, k flavorKey, rp rep, transmit, depth int) {
	key := gadgetKey{kind, ch, transmit, k}
	if old, ok := a.found[key]; ok && !a.candidateLess(depth, guard, rp, old) {
		return
	}
	g := &Gadget{
		Kind:      kind,
		Channel:   ch,
		Advisory:  advisory,
		Transmit:  a.site(transmit),
		LoadFree:  k.loadFree,
		DirectUse: k.directUse,
		depth:     depth,
	}
	if guard >= 0 {
		s := a.site(guard)
		g.Guard = &s
	}
	if rp.srcIdx >= 0 {
		s := a.site(rp.srcIdx)
		g.Source = &s
	} else {
		g.SourceReg = rp.srcReg.String()
	}
	for _, ci := range rp.chain {
		g.Chain = append(g.Chain, a.site(ci))
	}
	if len(g.Chain) == 0 || g.Chain[len(g.Chain)-1].PC != a.pc(transmit) {
		if len(g.Chain) < maxChainSites {
			g.Chain = append(g.Chain, a.site(transmit))
		}
	}
	a.found[key] = g
}

// candidateLess prefers the shallowest fetch distance, then the lowest guard
// address, then the lowest source address/register — a total order on
// everything that distinguishes candidates within one dedup key, so the
// winner is independent of analysis order.
func (a *analyzer) candidateLess(depth, guard int, rp rep, old *Gadget) bool {
	if depth != old.depth {
		return depth < old.depth
	}
	ng, og := int64(-1), int64(-1)
	if guard >= 0 {
		ng = int64(a.pc(guard))
	}
	if old.Guard != nil {
		og = int64(old.Guard.PC)
	}
	if ng != og {
		return ng < og
	}
	ns, os := int64(-1), int64(-1)
	if rp.srcIdx >= 0 {
		ns = int64(a.pc(rp.srcIdx))
	}
	if old.Source != nil {
		os = int64(old.Source.PC)
	}
	if ns != os {
		return ns < os
	}
	return rp.srcIdx < 0 && rp.srcReg.String() < old.SourceReg
}

func (a *analyzer) site(i int) Site {
	pc := a.pc(i)
	return Site{PC: pc, Asm: a.insts[i].String(), Sym: a.symFor(pc)}
}

func (a *analyzer) symFor(pc uint64) string {
	lo, hi := 0, len(a.syms)
	for lo < hi {
		mid := (lo + hi) / 2
		if a.syms[mid].addr <= pc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return ""
	}
	s := a.syms[lo-1]
	if s.addr == pc {
		return s.name
	}
	return s.name + "+" + hexOff(pc-s.addr)
}

func hexOff(v uint64) string {
	const digits = "0123456789abcdef"
	if v == 0 {
		return "0x0"
	}
	var buf [16]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v&0xf]
		v >>= 4
	}
	return "0x" + string(buf[i:])
}
