package gadget

import (
	"fmt"

	"nda/internal/core"
)

// The semantic verdict engine.
//
// Verdicts are no longer hand-written per policy: each core.Policy exposes
// its propagation-gating rules as a []core.Gate (which dataflow edge class
// it cuts, on which chains, until which release event), and the engine
// interprets that spec against the gadget's dependence chain. A gadget is
// blocked iff some gate (a) has its edge present on the chain, (b) covers
// the chain's scope, and (c) releases no earlier than the event that
// squashes this chain kind — i.e. the gated edge provably cannot fire while
// the path is still transient.

// squashEvent is the pipeline event that kills a transient chain of the
// given kind: the mis-steered guard resolving, the faulting access reaching
// eldest (where the fault delivers instead of the data), or the bypassed
// store's address resolving (the order violation).
func squashEvent(k Kind) core.ReleaseEvent {
	switch k {
	case KindChosenCode:
		return core.ReleaseEldest
	case KindBypass:
		return core.ReleaseStoreAddrsResolve
	default: // KindSteering
		return core.ReleaseGuardsResolve
	}
}

// outlasts reports whether a gate released at `until` provably holds until
// the squash event fires. The release events form a chain-relative order:
// guard resolution and store-address resolution race each other in general,
// but each squash event is itself the matching release (a gate released
// exactly at the squash never fires transiently), and eldest/retire strictly
// follow every squash — a squashed instruction never becomes the retiring
// eldest.
func outlasts(until, squash core.ReleaseEvent) bool {
	switch until {
	case core.ReleaseRetire:
		return true
	case core.ReleaseEldest:
		// Eldest-unretired is reached only after every older guard and
		// store address resolved; all three squash events precede it.
		return true
	default:
		return until == squash
	}
}

// edgePresent reports whether the gadget's chain contains an edge of the
// gate's kind.
func edgePresent(e core.EdgeKind, g *Gadget) bool {
	switch e {
	case core.EdgeLoadUse:
		return !g.LoadFree
	case core.EdgeAnyUse:
		return !g.DirectUse
	case core.EdgeFill:
		return g.Channel == ChannelDCache
	}
	return false
}

// scopeCovers reports whether the gate's scope includes this chain. The
// chain kind encodes the speculation primitive: steering chains run under an
// unresolved guard, bypass chains are sourced at a store-bypassing load, and
// chosen-code chains run under neither (the faulting access is
// architecturally reached).
func scopeCovers(s core.GateScope, g *Gadget) bool {
	switch s {
	case core.ScopeUnderGuard:
		return g.Kind == KindSteering
	case core.ScopeBypassingLoad:
		return g.Kind == KindBypass
	case core.ScopeAlways:
		return true
	}
	return false
}

// verdictFromGates interprets the policy's gate spec over one gadget. gates
// is passed explicitly (rather than calling pol.Gates() here) so tests can
// prove the engine consumes the spec: stripping a policy's gates must flip
// its verdicts.
func verdictFromGates(pol core.Policy, gates []core.Gate, g *Gadget) Verdict {
	if !pol.Secure() {
		return Verdict{Reason: "baseline OoO: completed results broadcast immediately, so the whole chain runs transiently"}
	}
	squash := squashEvent(g.Kind)
	for _, gate := range gates {
		if edgePresent(gate.Edge, g) && scopeCovers(gate.Scope, g) && outlasts(gate.Until, squash) {
			return Verdict{Blocked: true, Reason: blockReason(gate, g)}
		}
	}
	return Verdict{Reason: openReason(g)}
}

// blockReason renders why the blocking gate cuts this chain. The texts for
// the knob-derived gates match the analyzer's historical wording so censuses
// stay readable; a gate outside that set gets a generic rendering.
func blockReason(gate core.Gate, g *Gadget) string {
	switch g.Kind {
	case KindSteering:
		switch {
		case gate.Edge == core.EdgeLoadUse && gate.Until == core.ReleaseGuardsResolve:
			return "a load in the chain executes under an unresolved guard; its tag broadcast is deferred until the guard resolves, and a mis-steered guard squashes first"
		case gate.Edge == core.EdgeAnyUse:
			return "strict propagation defers every wrong-path producer, so the register-resident secret cannot be pre-processed for transmission before the squash"
		case gate.Edge == core.EdgeLoadUse && gate.Until == core.ReleaseEldest:
			return "load restriction defers the access load's broadcast until it is eldest unretired; the older mis-steered guard resolves and squashes first"
		case gate.Edge == core.EdgeFill && gate.Until == core.ReleaseGuardsResolve:
			return "speculative fills are invisible while the guard is unresolved, so the wrong-path access leaves no d-cache signal"
		case gate.Edge == core.EdgeFill && gate.Until == core.ReleaseRetire:
			return "speculative fills are invisible until retirement, and the wrong-path access never retires, so it leaves no d-cache signal"
		}
	case KindChosenCode:
		switch {
		case gate.Edge == core.EdgeLoadUse && gate.Until == core.ReleaseEldest:
			return "load restriction: the illegal access broadcasts only when eldest unretired, where its fault squashes the dependents instead"
		case gate.Edge == core.EdgeFill && gate.Until == core.ReleaseRetire:
			return "fills are invisible until retirement and the faulting access never retires, so the transmitter leaves no d-cache signal"
		}
	case KindBypass:
		switch {
		case gate.Edge == core.EdgeLoadUse && gate.Until == core.ReleaseStoreAddrsResolve:
			return "bypass restriction: the load bypassed a store with an unresolved address and defers broadcast until that address resolves, where the order violation squashes it"
		case gate.Edge == core.EdgeLoadUse && gate.Until == core.ReleaseEldest:
			return "load restriction: the bypassing load broadcasts only when eldest unretired, by which point the older store's address resolved and squashed it"
		case gate.Edge == core.EdgeFill && gate.Until == core.ReleaseRetire:
			return "fills are invisible until retirement; the order-violation squash reaches the bypassing load first"
		}
	}
	return fmt.Sprintf("gated: %s edges (%s) defer until %s, which the chain's squash event (%s) cannot outrun",
		gate.Edge, gate.Scope, gate.Until, squashEvent(g.Kind))
}

// openReason explains why no gate cuts the chain, in terms of the edge the
// policy would have needed to gate.
func openReason(g *Gadget) string {
	switch g.Kind {
	case KindSteering:
		switch {
		case g.LoadFree && g.DirectUse:
			return "the transmitter reads the register-resident secret directly; there is no deferred producer between access and transmit"
		case g.LoadFree:
			return "the chain is load-free: only ALU producers process the register-resident secret, and this policy does not restrict them under a guard"
		case g.Channel == ChannelBTB:
			return "the BTB insertion happens at execute and is not hidden or deferred by this policy"
		default:
			return "the wrong-path load's result broadcasts before the guard resolves, waking the transmitter inside the transient window"
		}
	case KindChosenCode:
		return "no guard shadows the illegal access, so steering restrictions never engage and the faulting data broadcasts before the fault commits"
	case KindBypass:
		return "no branch guard shadows the bypass, so steering restrictions never engage and the stale value broadcasts before the store's address resolves"
	}
	return "unknown gadget kind"
}

// fillVerdicts computes the per-policy verdict map for every configuration
// in core.All by interpreting each policy's gate spec.
func fillVerdicts(g *Gadget) {
	g.Verdicts = make(map[string]Verdict, 9)
	for _, pol := range core.All() {
		g.Verdicts[pol.Name] = verdictFromGates(pol, pol.Gates(), g)
	}
}
