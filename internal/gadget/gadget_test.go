package gadget_test

import (
	"reflect"
	"testing"

	"nda/internal/attack"
	"nda/internal/core"
	"nda/internal/gadget"
	"nda/internal/isa"
)

func analyzeAttack(t *testing.T, k attack.Kind) *gadget.Analysis {
	t.Helper()
	p, err := attack.Program(k)
	if err != nil {
		t.Fatalf("building %s: %v", k, err)
	}
	return gadget.Analyze(p, gadget.Config{SecretRegs: attack.SecretRegs(k)})
}

// has reports whether the analysis found a non-advisory gadget of the given
// kind on the given channel.
func has(an *gadget.Analysis, kind gadget.Kind, ch gadget.Channel) bool {
	for i := range an.Gadgets {
		g := &an.Gadgets[i]
		if !g.Advisory && g.Kind == kind && g.Channel == ch {
			return true
		}
	}
	return false
}

// TestAttackVerdictsMatchTable2 is the static half of the cross-validation:
// for every attack PoC, the analyzer's per-policy verdict on the channel the
// PoC measures must equal Table 2's leak/block cell.
func TestAttackVerdictsMatchTable2(t *testing.T) {
	for _, k := range attack.All() {
		an := analyzeAttack(t, k)
		leaks := an.LeaksByChannel[k.Channel()]
		exp := attack.Expected[k]
		for _, pol := range core.All() {
			if leaks[pol.Name] != exp[pol.Name] {
				t.Errorf("%s under %s (%s channel): static leaks=%v, Table 2 says %v",
					k, pol.Name, k.Channel(), leaks[pol.Name], exp[pol.Name])
			}
		}
	}
}

// TestGadgetTaxonomy checks that each PoC is classified into the §4 taxonomy
// class its construction implements.
func TestGadgetTaxonomy(t *testing.T) {
	cases := []struct {
		kind attack.Kind
		k    gadget.Kind
		ch   gadget.Channel
	}{
		{attack.SpectreV1Cache, gadget.KindSteering, gadget.ChannelDCache},
		{attack.SpectreV1BTB, gadget.KindSteering, gadget.ChannelBTB},
		{attack.SpectreV2, gadget.KindSteering, gadget.ChannelDCache},
		{attack.Ret2spec, gadget.KindSteering, gadget.ChannelDCache},
		{attack.Meltdown, gadget.KindChosenCode, gadget.ChannelDCache},
		{attack.SSB, gadget.KindBypass, gadget.ChannelDCache},
		{attack.LazyFP, gadget.KindChosenCode, gadget.ChannelDCache},
		{attack.GPRSteering, gadget.KindSteering, gadget.ChannelDCache},
	}
	for _, c := range cases {
		an := analyzeAttack(t, c.kind)
		if !has(an, c.k, c.ch) {
			t.Errorf("%s: no %s/%s gadget found (got %d gadgets)", c.kind, c.k, c.ch, len(an.Gadgets))
		}
	}
}

// TestGPRSteeringIsLoadFree verifies the §4.2 single-gadget attack is
// recognized as register-resident: its chain must contain no load, sourcing
// from the designated GPR directly.
func TestGPRSteeringIsLoadFree(t *testing.T) {
	an := analyzeAttack(t, attack.GPRSteering)
	found := false
	for i := range an.Gadgets {
		g := &an.Gadgets[i]
		if g.Advisory || g.Kind != gadget.KindSteering {
			continue
		}
		found = true
		if !g.LoadFree {
			t.Errorf("gpr-steering gadget must be load-free: %s", g.String())
		}
		if g.SourceReg != isa.RegS5.String() {
			t.Errorf("gpr-steering source = %q, want register %s", g.SourceReg, isa.RegS5)
		}
	}
	if !found {
		t.Fatal("no steering gadget found in gpr-steering")
	}
}

// TestSpecOffKillsSpeculationLiveness verifies the liveness pass: with the
// victim's Listing 4 no-speculation window (specoff), no guard is
// speculation-live across the secret use, so the analyzer must report zero
// non-advisory gadgets — matching the empty Expected row.
func TestSpecOffKillsSpeculationLiveness(t *testing.T) {
	an := analyzeAttack(t, attack.GPRSteeringSpecOff)
	for i := range an.Gadgets {
		if !an.Gadgets[i].Advisory {
			t.Errorf("gpr-steering-specoff must have no gadgets, found %s", an.Gadgets[i].String())
		}
	}
	for pol, leaks := range an.Leaks {
		if leaks {
			t.Errorf("gpr-steering-specoff must not leak under %s", pol)
		}
	}
}

// TestAnalyzeDeterministic re-analyzes the largest PoC and requires an
// identical result, including gadget order and chains.
func TestAnalyzeDeterministic(t *testing.T) {
	a := analyzeAttack(t, attack.SpectreV1BTB)
	b := analyzeAttack(t, attack.SpectreV1BTB)
	if !reflect.DeepEqual(a, b) {
		t.Error("repeated analysis of spectre-v1-btb differs")
	}
}

// TestBuiltinCheckPasses is the CI gate ndalint -check runs: the full
// built-in census must match Table 2 and keep workloads chosen-code-free.
func TestBuiltinCheckPasses(t *testing.T) {
	ins, err := gadget.Builtins()
	if err != nil {
		t.Fatal(err)
	}
	r, err := gadget.BuildReport(ins, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range gadget.Check(r) {
		t.Error(f.String())
	}
}
