package gadget_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"nda/internal/gadget"
)

var update = flag.Bool("update", false, "rewrite the golden census file")

// TestCensusGolden builds the full JSON census twice — single-threaded and
// with eight workers — and requires both to be byte-identical to each other
// and to testdata/census.golden.json. The golden file pins the analyzer's
// output across worker counts, map-iteration orders, and Go versions
// (encoding/json sorts map keys; every slice has a deterministic sort).
// Regenerate with: go test ./internal/gadget -run TestCensusGolden -update
func TestCensusGolden(t *testing.T) {
	ins, err := gadget.Builtins()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := gadget.BuildReport(ins, 1)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	r8, err := gadget.BuildReport(ins, 8)
	if err != nil {
		t.Fatal(err)
	}
	j8, err := r8.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j8) {
		t.Fatal("census JSON differs between 1 and 8 workers")
	}

	golden := filepath.Join("testdata", "census.golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, j1, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(j1))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(j1, want) {
		t.Errorf("census JSON deviates from %s at byte %d (regenerate with -update if the change is intended)",
			golden, diffAt(j1, want))
	}
}

func diffAt(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
