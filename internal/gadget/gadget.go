// Package gadget is a static speculative-leakage analyzer over isa.Program.
//
// It walks the control-flow graph the way the OoO front end would on a
// mispredicted path, tracks register taint from secret-access sources
// (loads, privileged RDMSR, attacker-designated GPRs) to transmitters
// (dependent loads and indirect jumps), and emits the resulting gadgets —
// the access→transmit dependence chains of the paper's §4 taxonomy:
//
//   - steering (§4.1): a mis-steered guard (conditional branch, indirect
//     jump, or return) transiently executes code that accesses a secret and
//     forwards it into a covert channel (Spectre v1/v2/ret2spec, and the
//     §4.2 GPR variant where the secret is already register-resident).
//   - chosen-code (§4.3): the access itself is illegal — a load from a
//     kernel-only segment or a privileged RDMSR — and the core forwards the
//     faulting data before the fault commits (Meltdown, LazyFP).
//   - bypass (§4.1): a load issues past an older store whose address is not
//     yet computed and transiently reads stale data (Spectre v4 / SSB).
//
// Each gadget carries a per-policy Verdict derived by the semantic verdict
// engine (engine.go): every core.Policy exposes its propagation-gating
// rules as a declarative spec — []core.Gate, naming which dataflow edge
// class the policy cuts (load→use wakeups, any-producer wakeups, d-cache
// fills), over which chains (under a guard, bypassing a store, always), and
// until which release event (guards resolve, store addresses resolve,
// eldest, retire) — and the engine interprets that spec over the gadget's
// chain: the chain is blocked iff some applicable gate provably holds past
// the event that squashes the transient path. No per-policy verdict code
// exists here, so a policy added to internal/core gets static verdicts for
// free, and the spec is cross-validated against the dynamic attack matrix,
// the runtime propagation sanitizer, and the differential fuzzing harness
// (internal/diffuzz) in tests.
//
// Scope and soundness notes, matching what the simulator can measure:
//
//   - Transmitters are d-cache fills (loads) and BTB insertions (indirect
//     jumps), the two channels the attack harness's recover phases read.
//     Secret-dependent conditional branches are detected but reported as
//     advisory (Channel "branch") and excluded from program verdicts.
//   - Wrong-path stores do not transmit directly: the simulated d-cache
//     installs store data at retirement. But store DATA does propagate:
//     the dataflow tracks memory taint through store-to-load forwarding
//     with a single conservative memory cell (any tainted store may feed
//     any later in-region load), so a chain laundered through memory —
//     store the secret, load it back, transmit — is still a gadget.
//   - The transient window is bounded by Config.Window (default: the ROB
//     size used by ooo.DefaultParams).
package gadget

import (
	"fmt"
	"sort"
)

// Kind classifies a gadget by how the secret enters the transient chain.
type Kind string

const (
	KindSteering   Kind = "steering"
	KindChosenCode Kind = "chosen-code"
	KindBypass     Kind = "bypass"
)

// Channel names the covert channel the transmitter modulates.
type Channel string

const (
	ChannelDCache Channel = "d-cache"
	ChannelBTB    Channel = "btb"
	// ChannelBranch marks secret-dependent conditional branches. The
	// simulator's recover phases do not read a directional-predictor
	// channel, so these gadgets are advisory and excluded from program
	// verdicts.
	ChannelBranch Channel = "branch"
)

// Verdict is the static judgement for one gadget under one policy.
type Verdict struct {
	Blocked bool   `json:"blocked"`
	Reason  string `json:"reason"`
}

// Site is one instruction location in a gadget, rendered for reports.
type Site struct {
	PC  uint64 `json:"pc"`
	Asm string `json:"asm"`
	Sym string `json:"sym,omitempty"`
}

// Gadget is one access→transmit chain.
type Gadget struct {
	Kind     Kind    `json:"kind"`
	Channel  Channel `json:"channel"`
	Advisory bool    `json:"advisory,omitempty"`

	// Guard is the mis-steered branch for steering gadgets; nil otherwise.
	Guard *Site `json:"guard,omitempty"`
	// Source is the secret access: the load/RDMSR, or nil when the secret
	// starts register-resident (SourceReg set instead).
	Source    *Site  `json:"source,omitempty"`
	SourceReg string `json:"source_reg,omitempty"`
	// Transmit is the instruction that modulates the covert channel.
	Transmit Site `json:"transmit"`
	// Chain is a representative dependence path from source to transmitter
	// (capped; for context, not exhaustive).
	Chain []Site `json:"chain,omitempty"`

	// LoadFree is set when the chain from secret to transmitter contains no
	// load: the secret is register-resident and only ALU-processed (§4.2).
	LoadFree bool `json:"load_free,omitempty"`
	// DirectUse is set when the transmitter reads the secret register with
	// no intervening producer at all — nothing for propagation policies to
	// defer.
	DirectUse bool `json:"direct_use,omitempty"`

	// Verdicts maps policy name → static verdict.
	Verdicts map[string]Verdict `json:"verdicts"`

	depth int // fetch distance from the steering point; dedup preference
}

// Analysis is the result of analyzing one program.
type Analysis struct {
	Insts   int      `json:"insts"`
	Guards  int      `json:"guards"` // speculation-live steering points examined
	Gadgets []Gadget `json:"gadgets"`
	// Leaks maps policy name → whether any non-advisory gadget leaks under
	// that policy (the program-level verdict).
	Leaks map[string]bool `json:"leaks"`
	// LeaksByChannel resolves the verdict per covert channel ("d-cache",
	// "btb"): the dynamic attack harness measures exactly one channel per
	// PoC, so cross-validation compares against the matching entry. A
	// channel with no gadgets has no entry (everything blocked).
	LeaksByChannel map[string]map[string]bool `json:"leaks_by_channel,omitempty"`
}

// sortGadgets orders gadgets deterministically for reports and golden files.
func sortGadgets(gs []Gadget) {
	sort.Slice(gs, func(i, j int) bool {
		a, b := &gs[i], &gs[j]
		if a.Transmit.PC != b.Transmit.PC {
			return a.Transmit.PC < b.Transmit.PC
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Channel != b.Channel {
			return a.Channel < b.Channel
		}
		ap, bp := sitePC(a.Source), sitePC(b.Source)
		if ap != bp {
			return ap < bp
		}
		if a.SourceReg != b.SourceReg {
			return a.SourceReg < b.SourceReg
		}
		if a.LoadFree != b.LoadFree {
			return !a.LoadFree
		}
		if a.DirectUse != b.DirectUse {
			return !a.DirectUse
		}
		return sitePC(a.Guard) < sitePC(b.Guard)
	})
}

func sitePC(s *Site) uint64 {
	if s == nil {
		return 0
	}
	return s.PC
}

// String renders a one-line summary of the gadget.
func (g *Gadget) String() string {
	s := fmt.Sprintf("%s/%s", g.Kind, g.Channel)
	if g.Advisory {
		s += " (advisory)"
	}
	if g.Guard != nil {
		s += fmt.Sprintf(" guard=%s", siteStr(g.Guard))
	}
	if g.Source != nil {
		s += fmt.Sprintf(" source=%s", siteStr(g.Source))
	} else if g.SourceReg != "" {
		s += fmt.Sprintf(" source=reg:%s", g.SourceReg)
	}
	s += fmt.Sprintf(" transmit=%s", siteStr(&g.Transmit))
	if g.LoadFree {
		s += " load-free"
	}
	if g.DirectUse {
		s += " direct-use"
	}
	return s
}

func siteStr(s *Site) string {
	if s.Sym != "" {
		return fmt.Sprintf("%#x<%s>", s.PC, s.Sym)
	}
	return fmt.Sprintf("%#x", s.PC)
}
