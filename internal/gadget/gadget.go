// Package gadget is a static speculative-leakage analyzer over isa.Program.
//
// It walks the control-flow graph the way the OoO front end would on a
// mispredicted path, tracks register taint from secret-access sources
// (loads, privileged RDMSR, attacker-designated GPRs) to transmitters
// (dependent loads and indirect jumps), and emits the resulting gadgets —
// the access→transmit dependence chains of the paper's §4 taxonomy:
//
//   - steering (§4.1): a mis-steered guard (conditional branch, indirect
//     jump, or return) transiently executes code that accesses a secret and
//     forwards it into a covert channel (Spectre v1/v2/ret2spec, and the
//     §4.2 GPR variant where the secret is already register-resident).
//   - chosen-code (§4.3): the access itself is illegal — a load from a
//     kernel-only segment or a privileged RDMSR — and the core forwards the
//     faulting data before the fault commits (Meltdown, LazyFP).
//   - bypass (§4.1): a load issues past an older store whose address is not
//     yet computed and transiently reads stale data (Spectre v4 / SSB).
//
// Each gadget carries a per-policy Verdict: whether the NDA propagation
// policy (or InvisiSpec comparator) from internal/core provably cuts the
// chain, with the reason. The verdict table is the static mirror of
// core.Policy.Unsafe and is cross-validated against the dynamic attack
// matrix and the runtime propagation sanitizer (internal/ooo) in tests.
//
// Scope and soundness notes, matching what the simulator can measure:
//
//   - Transmitters are d-cache fills (loads) and BTB insertions (indirect
//     jumps), the two channels the attack harness's recover phases read.
//     Secret-dependent conditional branches are detected but reported as
//     advisory (Channel "branch") and excluded from program verdicts.
//   - Stores do not transmit: the simulated d-cache installs store data at
//     retirement, so wrong-path stores leave no trace. Memory taint through
//     store-to-load forwarding is likewise out of scope.
//   - The transient window is bounded by Config.Window (default: the ROB
//     size used by ooo.DefaultParams).
package gadget

import (
	"fmt"
	"sort"

	"nda/internal/core"
)

// Kind classifies a gadget by how the secret enters the transient chain.
type Kind string

const (
	KindSteering   Kind = "steering"
	KindChosenCode Kind = "chosen-code"
	KindBypass     Kind = "bypass"
)

// Channel names the covert channel the transmitter modulates.
type Channel string

const (
	ChannelDCache Channel = "d-cache"
	ChannelBTB    Channel = "btb"
	// ChannelBranch marks secret-dependent conditional branches. The
	// simulator's recover phases do not read a directional-predictor
	// channel, so these gadgets are advisory and excluded from program
	// verdicts.
	ChannelBranch Channel = "branch"
)

// Verdict is the static judgement for one gadget under one policy.
type Verdict struct {
	Blocked bool   `json:"blocked"`
	Reason  string `json:"reason"`
}

// Site is one instruction location in a gadget, rendered for reports.
type Site struct {
	PC  uint64 `json:"pc"`
	Asm string `json:"asm"`
	Sym string `json:"sym,omitempty"`
}

// Gadget is one access→transmit chain.
type Gadget struct {
	Kind     Kind    `json:"kind"`
	Channel  Channel `json:"channel"`
	Advisory bool    `json:"advisory,omitempty"`

	// Guard is the mis-steered branch for steering gadgets; nil otherwise.
	Guard *Site `json:"guard,omitempty"`
	// Source is the secret access: the load/RDMSR, or nil when the secret
	// starts register-resident (SourceReg set instead).
	Source    *Site  `json:"source,omitempty"`
	SourceReg string `json:"source_reg,omitempty"`
	// Transmit is the instruction that modulates the covert channel.
	Transmit Site `json:"transmit"`
	// Chain is a representative dependence path from source to transmitter
	// (capped; for context, not exhaustive).
	Chain []Site `json:"chain,omitempty"`

	// LoadFree is set when the chain from secret to transmitter contains no
	// load: the secret is register-resident and only ALU-processed (§4.2).
	LoadFree bool `json:"load_free,omitempty"`
	// DirectUse is set when the transmitter reads the secret register with
	// no intervening producer at all — nothing for propagation policies to
	// defer.
	DirectUse bool `json:"direct_use,omitempty"`

	// Verdicts maps policy name → static verdict.
	Verdicts map[string]Verdict `json:"verdicts"`

	depth int // fetch distance from the steering point; dedup preference
}

// Analysis is the result of analyzing one program.
type Analysis struct {
	Insts   int      `json:"insts"`
	Guards  int      `json:"guards"` // speculation-live steering points examined
	Gadgets []Gadget `json:"gadgets"`
	// Leaks maps policy name → whether any non-advisory gadget leaks under
	// that policy (the program-level verdict).
	Leaks map[string]bool `json:"leaks"`
	// LeaksByChannel resolves the verdict per covert channel ("d-cache",
	// "btb"): the dynamic attack harness measures exactly one channel per
	// PoC, so cross-validation compares against the matching entry. A
	// channel with no gadgets has no entry (everything blocked).
	LeaksByChannel map[string]map[string]bool `json:"leaks_by_channel,omitempty"`
}

// verdictFor statically mirrors core.Policy.Unsafe for one gadget: it asks
// whether some link of the access→transmit chain provably cannot broadcast
// (or, for InvisiSpec, whether the channel carries no signal) before the
// transient window closes.
func verdictFor(pol core.Policy, g *Gadget) Verdict {
	if !pol.Secure() {
		return Verdict{Reason: "baseline OoO: completed results broadcast immediately, so the whole chain runs transiently"}
	}
	switch g.Kind {
	case KindSteering:
		if pol.PropagationRestricted && !g.LoadFree {
			return Verdict{Blocked: true, Reason: "a load in the chain executes under an unresolved guard; its tag broadcast is deferred until the guard resolves, and a mis-steered guard squashes first"}
		}
		if pol.PropagationRestricted && pol.RestrictAll && !g.DirectUse {
			return Verdict{Blocked: true, Reason: "strict propagation defers every wrong-path producer, so the register-resident secret cannot be pre-processed for transmission before the squash"}
		}
		if pol.LoadRestriction && !g.LoadFree {
			return Verdict{Blocked: true, Reason: "load restriction defers the access load's broadcast until it is eldest unretired; the older mis-steered guard resolves and squashes first"}
		}
		if g.Channel == ChannelDCache && pol.LoadVisibility != core.VisibleAlways {
			return Verdict{Blocked: true, Reason: "speculative fills are invisible while the guard is unresolved, so the wrong-path access leaves no d-cache signal"}
		}
		switch {
		case g.LoadFree && g.DirectUse:
			return Verdict{Reason: "the transmitter reads the register-resident secret directly; there is no deferred producer between access and transmit"}
		case g.LoadFree:
			return Verdict{Reason: "the chain is load-free: only ALU producers process the register-resident secret, and this policy does not restrict them under a guard"}
		case g.Channel == ChannelBTB:
			return Verdict{Reason: "the BTB insertion happens at execute and is not hidden or deferred by this policy"}
		default:
			return Verdict{Reason: "the wrong-path load's result broadcasts before the guard resolves, waking the transmitter inside the transient window"}
		}
	case KindChosenCode:
		if pol.LoadRestriction {
			return Verdict{Blocked: true, Reason: "load restriction: the illegal access broadcasts only when eldest unretired, where its fault squashes the dependents instead"}
		}
		if g.Channel == ChannelDCache && pol.LoadVisibility == core.InvisibleUntilRetire {
			return Verdict{Blocked: true, Reason: "fills are invisible until retirement and the faulting access never retires, so the transmitter leaves no d-cache signal"}
		}
		return Verdict{Reason: "no guard shadows the illegal access, so steering restrictions never engage and the faulting data broadcasts before the fault commits"}
	case KindBypass:
		if pol.BypassRestriction {
			return Verdict{Blocked: true, Reason: "bypass restriction: the load bypassed a store with an unresolved address and defers broadcast until that address resolves, where the order violation squashes it"}
		}
		if pol.LoadRestriction {
			return Verdict{Blocked: true, Reason: "load restriction: the bypassing load broadcasts only when eldest unretired, by which point the older store's address resolved and squashed it"}
		}
		if g.Channel == ChannelDCache && pol.LoadVisibility == core.InvisibleUntilRetire {
			return Verdict{Blocked: true, Reason: "fills are invisible until retirement; the order-violation squash reaches the bypassing load first"}
		}
		return Verdict{Reason: "no branch guard shadows the bypass, so steering restrictions never engage and the stale value broadcasts before the store's address resolves"}
	}
	return Verdict{Reason: "unknown gadget kind"}
}

// fillVerdicts computes the per-policy verdict map for every configuration
// in core.All.
func fillVerdicts(g *Gadget) {
	g.Verdicts = make(map[string]Verdict, 9)
	for _, pol := range core.All() {
		g.Verdicts[pol.Name] = verdictFor(pol, g)
	}
}

// sortGadgets orders gadgets deterministically for reports and golden files.
func sortGadgets(gs []Gadget) {
	sort.Slice(gs, func(i, j int) bool {
		a, b := &gs[i], &gs[j]
		if a.Transmit.PC != b.Transmit.PC {
			return a.Transmit.PC < b.Transmit.PC
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Channel != b.Channel {
			return a.Channel < b.Channel
		}
		ap, bp := sitePC(a.Source), sitePC(b.Source)
		if ap != bp {
			return ap < bp
		}
		if a.SourceReg != b.SourceReg {
			return a.SourceReg < b.SourceReg
		}
		if a.LoadFree != b.LoadFree {
			return !a.LoadFree
		}
		if a.DirectUse != b.DirectUse {
			return !a.DirectUse
		}
		return sitePC(a.Guard) < sitePC(b.Guard)
	})
}

func sitePC(s *Site) uint64 {
	if s == nil {
		return 0
	}
	return s.PC
}

// String renders a one-line summary of the gadget.
func (g *Gadget) String() string {
	s := fmt.Sprintf("%s/%s", g.Kind, g.Channel)
	if g.Advisory {
		s += " (advisory)"
	}
	if g.Guard != nil {
		s += fmt.Sprintf(" guard=%s", siteStr(g.Guard))
	}
	if g.Source != nil {
		s += fmt.Sprintf(" source=%s", siteStr(g.Source))
	} else if g.SourceReg != "" {
		s += fmt.Sprintf(" source=reg:%s", g.SourceReg)
	}
	s += fmt.Sprintf(" transmit=%s", siteStr(&g.Transmit))
	if g.LoadFree {
		s += " load-free"
	}
	if g.DirectUse {
		s += " direct-use"
	}
	return s
}

func siteStr(s *Site) string {
	if s.Sym != "" {
		return fmt.Sprintf("%#x<%s>", s.PC, s.Sym)
	}
	return fmt.Sprintf("%#x", s.PC)
}
