package gadget_test

import (
	"fmt"
	"strings"
	"testing"

	"nda/internal/asm"
	"nda/internal/gadget"
	"nda/internal/isa"
)

// steeringAt assembles a minimal steering gadget whose transmit sits at
// fetch distance fillers+1 past the guard branch: the guard's fall-through
// is `fillers` taint-preserving producers on the secret register followed
// by a secret-addressed load.
func steeringAt(t *testing.T, fillers int) *isa.Program {
	t.Helper()
	var b strings.Builder
	b.WriteString(".text\nmain:\n\tbeq t0, zero, skip\n")
	for i := 0; i < fillers; i++ {
		b.WriteString("\taddi t1, t1, 0\n")
	}
	b.WriteString("\tlbu t2, 0(t1)\n\tfence\nskip:\n\thalt\n")
	p, err := asm.Assemble(b.String())
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func analyzeWindow(t *testing.T, p *isa.Program, window int) *gadget.Analysis {
	t.Helper()
	return gadget.Analyze(p, gadget.Config{SecretRegs: []isa.Reg{isa.RegT1}, Window: window})
}

// TestWindowBoundary pins the inclusive boundary: an entry past the guard
// has fetch distance 1, and the region contains exactly the instructions
// with distance <= Window. A transmit exactly at the window edge is a
// gadget; one instruction further is invisible.
func TestWindowBoundary(t *testing.T) {
	const w = 8
	for _, c := range []struct {
		fillers int
		want    bool
	}{
		{w - 2, true},  // distance w-1: inside
		{w - 1, true},  // distance w: exactly at the edge, still inside
		{w, false},     // distance w+1: one past the edge
		{w + 5, false}, // well past
	} {
		t.Run(fmt.Sprintf("fillers=%d", c.fillers), func(t *testing.T) {
			an := analyzeWindow(t, steeringAt(t, c.fillers), w)
			got := has(an, gadget.KindSteering, gadget.ChannelDCache)
			if got != c.want {
				t.Errorf("fillers=%d window=%d: steering d-cache gadget found=%v, want %v",
					c.fillers, w, got, c.want)
			}
		})
	}
}

// TestWindowDefaultApplies proves Window=0 means DefaultWindow, not zero:
// a transmit just inside DefaultWindow is found, and the same analysis
// with a 1-instruction window misses it.
func TestWindowDefaultApplies(t *testing.T) {
	p := steeringAt(t, gadget.DefaultWindow-2)
	if !has(analyzeWindow(t, p, 0), gadget.KindSteering, gadget.ChannelDCache) {
		t.Errorf("Window=0: transmit at distance %d not found under DefaultWindow=%d",
			gadget.DefaultWindow-1, gadget.DefaultWindow)
	}
	if has(analyzeWindow(t, p, 1), gadget.KindSteering, gadget.ChannelDCache) {
		t.Errorf("Window=1: transmit at distance %d should be out of reach", gadget.DefaultWindow-1)
	}
}

// TestLoopRevisitsSteeringPoint makes the wrong path re-enter its own
// guard: the back edge of a loop is a steering point whose taken path
// walks the loop body — including the guard itself — again. Region
// construction must terminate, keep minimum distances, and still reach
// the transmit on the fall-through.
func TestLoopRevisitsSteeringPoint(t *testing.T) {
	src := `
.text
main:
loop:
	addi t2, t2, 1
	bne t2, t0, loop
	lbu t3, 0(t1)
	fence
	halt
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	an := analyzeWindow(t, p, 6)
	if !has(an, gadget.KindSteering, gadget.ChannelDCache) {
		t.Fatalf("loop guard: no steering d-cache gadget found (gadgets: %d)", len(an.Gadgets))
	}
	// The transmit the analyzer reports must be the secret-addressed load,
	// not something invented by the loop traversal.
	for i := range an.Gadgets {
		g := &an.Gadgets[i]
		if g.Advisory || g.Kind != gadget.KindSteering || g.Channel != gadget.ChannelDCache {
			continue
		}
		if !strings.HasPrefix(g.Transmit.Asm, "lbu") {
			t.Errorf("steering transmit is %q at pc %#x, want the lbu", g.Transmit.Asm, g.Transmit.PC)
		}
	}
}

// TestFenceCutsChain places a fence between the steering point and the
// transmit: speculative fetch cannot cross it, so the same program that
// leaks without the fence must analyze clean with it.
func TestFenceCutsChain(t *testing.T) {
	build := func(fenced bool) *isa.Program {
		fence := ""
		if fenced {
			fence = "\tfence\n"
		}
		src := ".text\nmain:\n\tbeq t0, zero, skip\n\taddi t1, t1, 0\n" +
			fence + "\tlbu t2, 0(t1)\n\tfence\nskip:\n\thalt\n"
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("assemble: %v", err)
		}
		return p
	}
	if !has(analyzeWindow(t, build(false), 16), gadget.KindSteering, gadget.ChannelDCache) {
		t.Fatal("control program without fence shows no gadget; the test is vacuous")
	}
	if has(analyzeWindow(t, build(true), 16), gadget.KindSteering, gadget.ChannelDCache) {
		t.Error("fence between guard and transmit: steering gadget still reported")
	}
}
