package gadget

import (
	"fmt"
	"sort"
	"strings"

	"nda/internal/analysis"
	"nda/internal/attack"
	"nda/internal/isa"
	"nda/internal/par"
	"nda/internal/workload"
)

// builtinIters is the loop count workload kernels are built with for static
// analysis. The iteration count only changes one loop-bound immediate, never
// the instruction structure, so any fixed value yields the same gadgets;
// fixing it keeps the golden census byte-stable.
const builtinIters = 4

// Input is one named program for the census.
type Input struct {
	Name  string
	Group string // "attack" or "workload"
	Prog  *isa.Program
	Cfg   Config
}

// Builtins returns every attack snippet and every workload kernel, in a
// fixed order: attacks in Table 1 order, then workloads in Fig. 7 order.
func Builtins() ([]Input, error) {
	var ins []Input
	for _, k := range attack.All() {
		p, err := attack.Program(k)
		if err != nil {
			return nil, fmt.Errorf("gadget: building attack %s: %w", k, err)
		}
		ins = append(ins, Input{
			Name:  string(k),
			Group: "attack",
			Prog:  p,
			Cfg:   Config{SecretRegs: attack.SecretRegs(k)},
		})
	}
	for _, s := range workload.All() {
		ins = append(ins, Input{
			Name:  s.Name,
			Group: "workload",
			Prog:  s.Build(builtinIters),
		})
	}
	return ins, nil
}

// BuildReport analyzes every input on up to workers goroutines. Each result
// lands in the slot its index addresses, so the report is identical for any
// worker count.
func BuildReport(ins []Input, workers int) (*Report, error) {
	r := &Report{Window: DefaultWindow, Programs: make([]ProgramReport, len(ins))}
	err := par.Run(len(ins), workers, func(i int) error {
		in := ins[i]
		an := Analyze(in.Prog, in.Cfg)
		r.Programs[i] = NewProgramReport(in.Name, in.Group, an, in.Group == "attack")
		return nil
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Check validates the census against the repo's ground truth: every attack
// snippet's static per-policy verdict must match attack.Expected (Table 2),
// and no workload kernel may contain a chosen-code gadget (workloads never
// touch kernel memory or privileged MSRs). Failures come back as findings
// in the shared analysis format, so ndalint and ndavet report identically.
func Check(r *Report) []analysis.Finding {
	var fails []analysis.Finding
	fail := func(pass, program, msg string) {
		fails = append(fails, analysis.Finding{
			File:    program,
			Tool:    "ndalint",
			Pass:    pass,
			Message: msg,
		})
	}
	for i := range r.Programs {
		pr := &r.Programs[i]
		switch pr.Group {
		case "attack":
			// Compare on the channel the PoC's recover phase measures: a
			// d-cache PoC can statically expose a BTB gadget too (e.g.
			// spectre-v2's indirect call), which the dynamic harness does
			// not time.
			kind := attack.Kind(pr.Name)
			exp := attack.Expected[kind]
			leaks := pr.ChannelLeaks[kind.Channel()]
			for _, pol := range policyOrder() {
				if leaks[pol] != exp[pol] {
					fail("table2", pr.Name, fmt.Sprintf(
						"under %s (%s channel): static analysis says leaks=%v, Table 2 says %v",
						pol, kind.Channel(), leaks[pol], exp[pol]))
				}
			}
		case "workload":
			keys := make([]string, 0, len(pr.Counts))
			for key := range pr.Counts {
				keys = append(keys, key)
			}
			sort.Strings(keys)
			for _, key := range keys {
				if pr.Counts[key] > 0 && strings.HasPrefix(key, "chosen-code/") {
					fail("workload", pr.Name, fmt.Sprintf(
						"%d chosen-code gadgets in a workload that never touches privileged state", pr.Counts[key]))
				}
			}
		}
	}
	return fails
}
