package gadget

import (
	"fmt"
	"sort"
	"strings"

	"nda/internal/analysis"
	"nda/internal/core"
)

// ProgramReport is the analysis result for one named program.
type ProgramReport struct {
	Name   string `json:"name"`
	Group  string `json:"group"` // "attack" or "workload"
	Insts  int    `json:"insts"`
	Guards int    `json:"guards"`
	// Counts maps "kind/channel" to the number of non-advisory gadgets.
	Counts map[string]int `json:"counts"`
	// Advisory counts the branch-channel findings excluded from verdicts.
	Advisory int `json:"advisory"`
	// Leaks maps policy name to the program-level verdict.
	Leaks map[string]bool `json:"leaks"`
	// ChannelLeaks resolves the verdict per covert channel (see
	// Analysis.LeaksByChannel).
	ChannelLeaks map[string]map[string]bool `json:"channel_leaks,omitempty"`
	// Gadgets carries the full gadget list for attack snippets; elided for
	// workloads, whose census is the counts above.
	Gadgets []Gadget `json:"gadgets,omitempty"`
}

// Report is the full gadget census over a set of programs.
type Report struct {
	Window   int             `json:"window"`
	Programs []ProgramReport `json:"programs"`
}

// NewProgramReport summarizes one analysis.
func NewProgramReport(name, group string, an *Analysis, keepGadgets bool) ProgramReport {
	pr := ProgramReport{
		Name:         name,
		Group:        group,
		Insts:        an.Insts,
		Guards:       an.Guards,
		Counts:       map[string]int{},
		Leaks:        an.Leaks,
		ChannelLeaks: an.LeaksByChannel,
	}
	for i := range an.Gadgets {
		g := &an.Gadgets[i]
		if g.Advisory {
			pr.Advisory++
			continue
		}
		pr.Counts[string(g.Kind)+"/"+string(g.Channel)]++
	}
	if keepGadgets {
		pr.Gadgets = an.Gadgets
	}
	return pr
}

// JSON renders the report deterministically (Go's encoder sorts map keys),
// through the same renderer ndavet uses so both tools emit one format.
func (r *Report) JSON() ([]byte, error) {
	return analysis.MarshalReport(r)
}

// policyOrder is the column order of the text census: core.All order.
func policyOrder() []string {
	names := make([]string, 0, 9)
	for _, p := range core.All() {
		names = append(names, p.Name)
	}
	return names
}

// Text renders a human-readable census table plus per-attack gadget detail.
func (r *Report) Text() string {
	var b strings.Builder
	pols := policyOrder()
	fmt.Fprintf(&b, "Gadget census (window = %d instructions). Columns: policies; x = some\n", r.Window)
	fmt.Fprintf(&b, "gadget leaks under that policy, . = every gadget provably blocked.\n\n")
	fmt.Fprintf(&b, "%-22s %6s %7s %9s %9s", "program", "insts", "guards", "gadgets", "advisory")
	for _, p := range pols {
		fmt.Fprintf(&b, " %8.8s", p)
	}
	b.WriteString("\n")
	for _, pr := range r.Programs {
		total := 0
		for _, n := range pr.Counts {
			total += n
		}
		fmt.Fprintf(&b, "%-22s %6d %7d %9d %9d", pr.Name, pr.Insts, pr.Guards, total, pr.Advisory)
		for _, p := range pols {
			mark := "."
			if pr.Leaks[p] {
				mark = "x"
			}
			fmt.Fprintf(&b, " %8s", mark)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Detail renders one program's full gadget list with per-policy verdicts.
func Detail(pr *ProgramReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s): %d instructions, %d live guards, %d gadgets (%d advisory)\n",
		pr.Name, pr.Group, pr.Insts, pr.Guards, len(pr.Gadgets), pr.Advisory)
	for i := range pr.Gadgets {
		g := &pr.Gadgets[i]
		fmt.Fprintf(&b, "\n  [%d] %s\n", i, g.String())
		if len(g.Chain) > 0 {
			b.WriteString("      chain:")
			for _, s := range g.Chain {
				fmt.Fprintf(&b, " %s", siteStr(&s))
			}
			b.WriteString("\n")
		}
		names := make([]string, 0, len(g.Verdicts))
		for n := range g.Verdicts {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			v := g.Verdicts[n]
			verdict := "LEAKS "
			if v.Blocked {
				verdict = "blocks"
			}
			fmt.Fprintf(&b, "      %-18s %s: %s\n", n, verdict, v.Reason)
		}
	}
	return b.String()
}
