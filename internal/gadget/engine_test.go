package gadget

import (
	"testing"

	"nda/internal/attack"
	"nda/internal/core"
)

// Every secure policy's gate set must be load-bearing: re-deriving the
// builtin attacks' verdicts with one policy's gates deleted has to break
// the Table 2 cross-validation for that policy. If it does not, the
// declarative spec has drifted into dead weight and the engine is passing
// the table for some other reason.
func TestGateSpecsLoadBearing(t *testing.T) {
	ins, err := Builtins()
	if err != nil {
		t.Fatal(err)
	}
	type att struct {
		kind attack.Kind
		an   *Analysis
	}
	var atts []att
	for _, in := range ins {
		if in.Group != "attack" {
			continue
		}
		atts = append(atts, att{attack.Kind(in.Name), Analyze(in.Prog, in.Cfg)})
	}
	if len(atts) == 0 {
		t.Fatal("no builtin attacks")
	}

	for _, pol := range core.All() {
		if !pol.Secure() {
			continue
		}
		mismatches := 0
		for _, a := range atts {
			ch := a.kind.Channel()
			leaks := false
			for i := range a.an.Gadgets {
				g := &a.an.Gadgets[i]
				if g.Advisory || string(g.Channel) != ch {
					continue
				}
				if !verdictFromGates(pol, nil, g).Blocked {
					leaks = true
				}
			}
			if leaks != attack.Expected[a.kind][pol.Name] {
				mismatches++
			}
		}
		if mismatches == 0 {
			t.Errorf("%s: deleting its gate spec leaves Table 2 cross-validation passing", pol.Name)
		}
	}
}
