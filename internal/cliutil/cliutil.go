// Package cliutil is the config plumbing the cmd/ binaries share: signal-
// and timeout-aware contexts, workload-list parsing, and uniform fatal
// error reporting. Keeping it in one place means every driver cancels the
// same way (SIGINT/SIGTERM and -timeout both flow into one context that
// the simulation cores poll) and spells errors the same way.
package cliutil

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nda/internal/workload"
)

// Context returns a context cancelled by SIGINT/SIGTERM and, when timeout
// is positive, by the deadline. The returned stop function releases the
// signal handler; call it when the run finishes.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() {
		cancel()
		stop()
	}
}

// Specs resolves a comma-separated workload list; the empty string means
// every SPEC CPU 2017 proxy.
func Specs(csv string) ([]workload.Spec, error) {
	if csv == "" {
		return workload.SPEC(), nil
	}
	var specs []workload.Spec
	for _, name := range strings.Split(csv, ",") {
		s, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// ExplainErr rewrites context cancellation errors into the message the
// drivers print ("timed out" / "interrupted"); other errors pass through.
func ExplainErr(err error) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return errors.New("timed out (-timeout exceeded); partial work discarded")
	case errors.Is(err, context.Canceled):
		return errors.New("interrupted; partial work discarded")
	}
	return err
}

// Check exits with "tool: err" on a non-nil error.
func Check(tool string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, ExplainErr(err))
		os.Exit(1)
	}
}
