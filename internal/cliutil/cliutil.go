// Package cliutil is the config plumbing the cmd/ binaries share: signal-
// and timeout-aware contexts, workload-list parsing, and uniform fatal
// error reporting. Keeping it in one place means every driver cancels the
// same way (SIGINT/SIGTERM and -timeout both flow into one context that
// the simulation cores poll) and spells errors the same way.
package cliutil

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nda/internal/dist"
	"nda/internal/tenant"
	"nda/internal/workload"
)

// Context returns a context cancelled by SIGINT/SIGTERM and, when timeout
// is positive, by the deadline. The returned stop function releases the
// signal handler; call it when the run finishes.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() {
		cancel()
		stop()
	}
}

// Specs resolves a comma-separated workload list; the empty string means
// every SPEC CPU 2017 proxy.
func Specs(csv string) ([]workload.Spec, error) {
	if csv == "" {
		return workload.SPEC(), nil
	}
	var specs []workload.Spec
	for _, name := range strings.Split(csv, ",") {
		s, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// WorkerURLs parses a comma-separated -workers fleet list. The empty
// string means "no fleet" (local simulation) and returns nil; otherwise
// every entry must be a valid absolute http/https worker URL, duplicates
// are rejected, and at least one URL must survive trimming — "-workers ,"
// is an error, not an accidental empty fleet.
func WorkerURLs(csv string) ([]string, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	var urls []string
	seen := make(map[string]bool)
	for _, raw := range strings.Split(csv, ",") {
		if strings.TrimSpace(raw) == "" {
			continue
		}
		u, err := dist.ParseWorkerURL(raw)
		if err != nil {
			return nil, err
		}
		if seen[u] {
			return nil, fmt.Errorf("duplicate worker URL %q", u)
		}
		seen[u] = true
		urls = append(urls, u)
	}
	if len(urls) < 1 {
		return nil, errors.New("-workers given but no worker URLs in it")
	}
	return urls, nil
}

// WorkerCount validates a parallel-worker count flag: 0 means "one per
// CPU", positive counts pass through, negative counts are an error rather
// than a silent fallback.
func WorkerCount(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("worker count %d invalid: want 0 (one per CPU) or a positive count", n)
	}
	return n, nil
}

// Timeout validates a -timeout style duration: 0 means "no limit",
// positive durations pass through, negative durations are an error.
func Timeout(d time.Duration) (time.Duration, error) {
	if d < 0 {
		return 0, fmt.Errorf("timeout %v invalid: want 0 (no limit) or a positive duration", d)
	}
	return d, nil
}

// PositiveDuration validates a duration flag that must be strictly
// positive (per-attempt timeouts, drain budgets). name labels the error.
func PositiveDuration(name string, d time.Duration) (time.Duration, error) {
	if d <= 0 {
		return 0, fmt.Errorf("%s %v invalid: want a positive duration", name, d)
	}
	return d, nil
}

// Tenants parses a -tenants flag: a comma-separated list of
// name:key:weight[:rate[:burst[:inflight]]] entries. The empty string
// means single-tenant mode and returns nil. Every entry is normalized and
// validated (bounds, reserved names, duplicate names and keys) before any
// server starts with it.
func Tenants(csv string) ([]tenant.Tenant, error) {
	return tenant.ParseList(csv)
}

// Rate validates a requests-per-second flag: 0 means unlimited, positive
// finite rates pass through, everything else is an error.
func Rate(v float64) (float64, error) {
	if v < 0 || v != v || v > 1e9 { // v != v catches NaN without importing math
		return 0, fmt.Errorf("rate %v invalid: want 0 (unlimited) or a positive requests/s", v)
	}
	return v, nil
}

// StreamMode validates a -stream flag: how a client observes job
// completion. The empty string means "wait".
func StreamMode(s string) (string, error) {
	switch s {
	case "", "wait":
		return "wait", nil
	case "poll", "sse":
		return s, nil
	}
	return "", fmt.Errorf("stream mode %q invalid: want wait, poll, or sse", s)
}

// Passes parses a comma-separated -pass list against the known pass
// names. The empty string means "all" and returns nil; otherwise every
// entry must name a known pass, duplicates are rejected, and at least
// one name must survive trimming — "-pass ," is an error, not an
// accidental full run. Results keep the caller's order.
func Passes(csv string, known []string) ([]string, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	valid := make(map[string]bool, len(known))
	for _, n := range known {
		valid[n] = true
	}
	var out []string
	seen := make(map[string]bool)
	for _, raw := range strings.Split(csv, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		if !valid[name] {
			return nil, fmt.Errorf("unknown pass %q: want one of %s", name, strings.Join(known, ", "))
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate pass %q", name)
		}
		seen[name] = true
		out = append(out, name)
	}
	if len(out) < 1 {
		return nil, errors.New("-pass given but no pass names in it")
	}
	return out, nil
}

// ExplainErr rewrites context cancellation errors into the message the
// drivers print ("timed out" / "interrupted"); other errors pass through.
func ExplainErr(err error) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return errors.New("timed out (-timeout exceeded); partial work discarded")
	case errors.Is(err, context.Canceled):
		return errors.New("interrupted; partial work discarded")
	}
	return err
}

// Check exits with "tool: err" on a non-nil error.
func Check(tool string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, ExplainErr(err))
		os.Exit(1)
	}
}
