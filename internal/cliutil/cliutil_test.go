package cliutil

import (
	"strings"
	"testing"
	"time"
)

// TestWorkerURLs: the -workers parser accepts real fleets, means "local"
// on the empty string, and turns every malformed form into a clear error
// instead of a silently wrong fleet.
func TestWorkerURLs(t *testing.T) {
	urls, err := WorkerURLs("http://a:8090, https://b.example/ ,http://127.0.0.1:9000")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:8090", "https://b.example", "http://127.0.0.1:9000"}
	if len(urls) != len(want) {
		t.Fatalf("urls = %v, want %v", urls, want)
	}
	for i := range want {
		if urls[i] != want[i] {
			t.Errorf("urls[%d] = %q, want %q", i, urls[i], want[i])
		}
	}

	if urls, err := WorkerURLs(""); err != nil || urls != nil {
		t.Errorf("empty -workers = %v, %v; want nil, nil (local mode)", urls, err)
	}

	bad := []struct{ csv, wantSub string }{
		{",", "no worker URLs"},
		{" , ", "no worker URLs"},
		{"localhost:8090", "scheme"},   // url.Parse reads "localhost" as the scheme
		{"ftp://a:8090", "scheme"},     // wrong scheme
		{"http://", "missing host"},    // no host
		{"/just/a/path", "scheme"},     // relative
		{"http://a:8090?x=1", "query"}, // query strings never belong in a base URL
		{"http://a:8090,http://a:8090", "duplicate"},
	}
	for _, c := range bad {
		_, err := WorkerURLs(c.csv)
		if err == nil {
			t.Errorf("WorkerURLs(%q) accepted, want error", c.csv)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("WorkerURLs(%q) error %q, want mention of %q", c.csv, err, c.wantSub)
		}
	}
}

// TestWorkerCount: 0 = auto and positives pass; negatives are refused.
func TestWorkerCount(t *testing.T) {
	for _, ok := range []int{0, 1, 64} {
		if n, err := WorkerCount(ok); err != nil || n != ok {
			t.Errorf("WorkerCount(%d) = %d, %v", ok, n, err)
		}
	}
	if _, err := WorkerCount(-1); err == nil {
		t.Error("WorkerCount(-1) accepted, want error")
	}
}

// TestTimeout: 0 = no limit and positives pass; negatives are refused, and
// strictly-positive flags refuse zero too.
func TestTimeout(t *testing.T) {
	for _, ok := range []time.Duration{0, time.Second, time.Hour} {
		if d, err := Timeout(ok); err != nil || d != ok {
			t.Errorf("Timeout(%v) = %v, %v", ok, d, err)
		}
	}
	if _, err := Timeout(-time.Second); err == nil {
		t.Error("Timeout(-1s) accepted, want error")
	}
	if d, err := PositiveDuration("-cell-timeout", time.Minute); err != nil || d != time.Minute {
		t.Errorf("PositiveDuration(1m) = %v, %v", d, err)
	}
	for _, bad := range []time.Duration{0, -time.Second} {
		if _, err := PositiveDuration("-cell-timeout", bad); err == nil {
			t.Errorf("PositiveDuration(%v) accepted, want error", bad)
		} else if !strings.Contains(err.Error(), "-cell-timeout") {
			t.Errorf("PositiveDuration error %q does not name the flag", err)
		}
	}
}

// TestSpecs: the workload-list parser resolves names and rejects unknowns.
func TestSpecs(t *testing.T) {
	specs, err := Specs("gcc, mcf")
	if err != nil || len(specs) != 2 || specs[0].Name != "gcc" || specs[1].Name != "mcf" {
		t.Fatalf("Specs = %v, %v", specs, err)
	}
	all, err := Specs("")
	if err != nil || len(all) < 20 {
		t.Fatalf("Specs(\"\") = %d workloads, %v; want the full SPEC set", len(all), err)
	}
	if _, err := Specs("no-such-workload"); err == nil {
		t.Error("unknown workload accepted")
	}
}
