package cliutil

import (
	"strings"
	"testing"
	"time"
)

// TestWorkerURLs: the -workers parser accepts real fleets, means "local"
// on the empty string, and turns every malformed form into a clear error
// instead of a silently wrong fleet.
func TestWorkerURLs(t *testing.T) {
	urls, err := WorkerURLs("http://a:8090, https://b.example/ ,http://127.0.0.1:9000")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:8090", "https://b.example", "http://127.0.0.1:9000"}
	if len(urls) != len(want) {
		t.Fatalf("urls = %v, want %v", urls, want)
	}
	for i := range want {
		if urls[i] != want[i] {
			t.Errorf("urls[%d] = %q, want %q", i, urls[i], want[i])
		}
	}

	if urls, err := WorkerURLs(""); err != nil || urls != nil {
		t.Errorf("empty -workers = %v, %v; want nil, nil (local mode)", urls, err)
	}

	bad := []struct{ csv, wantSub string }{
		{",", "no worker URLs"},
		{" , ", "no worker URLs"},
		{"localhost:8090", "scheme"},   // url.Parse reads "localhost" as the scheme
		{"ftp://a:8090", "scheme"},     // wrong scheme
		{"http://", "missing host"},    // no host
		{"/just/a/path", "scheme"},     // relative
		{"http://a:8090?x=1", "query"}, // query strings never belong in a base URL
		{"http://a:8090,http://a:8090", "duplicate"},
	}
	for _, c := range bad {
		_, err := WorkerURLs(c.csv)
		if err == nil {
			t.Errorf("WorkerURLs(%q) accepted, want error", c.csv)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("WorkerURLs(%q) error %q, want mention of %q", c.csv, err, c.wantSub)
		}
	}
}

// TestWorkerCount: 0 = auto and positives pass; negatives are refused.
func TestWorkerCount(t *testing.T) {
	for _, ok := range []int{0, 1, 64} {
		if n, err := WorkerCount(ok); err != nil || n != ok {
			t.Errorf("WorkerCount(%d) = %d, %v", ok, n, err)
		}
	}
	if _, err := WorkerCount(-1); err == nil {
		t.Error("WorkerCount(-1) accepted, want error")
	}
}

// TestTimeout: 0 = no limit and positives pass; negatives are refused, and
// strictly-positive flags refuse zero too.
func TestTimeout(t *testing.T) {
	for _, ok := range []time.Duration{0, time.Second, time.Hour} {
		if d, err := Timeout(ok); err != nil || d != ok {
			t.Errorf("Timeout(%v) = %v, %v", ok, d, err)
		}
	}
	if _, err := Timeout(-time.Second); err == nil {
		t.Error("Timeout(-1s) accepted, want error")
	}
	if d, err := PositiveDuration("-cell-timeout", time.Minute); err != nil || d != time.Minute {
		t.Errorf("PositiveDuration(1m) = %v, %v", d, err)
	}
	for _, bad := range []time.Duration{0, -time.Second} {
		if _, err := PositiveDuration("-cell-timeout", bad); err == nil {
			t.Errorf("PositiveDuration(%v) accepted, want error", bad)
		} else if !strings.Contains(err.Error(), "-cell-timeout") {
			t.Errorf("PositiveDuration error %q does not name the flag", err)
		}
	}
}

// TestSpecs: the workload-list parser resolves names and rejects unknowns.
func TestSpecs(t *testing.T) {
	specs, err := Specs("gcc, mcf")
	if err != nil || len(specs) != 2 || specs[0].Name != "gcc" || specs[1].Name != "mcf" {
		t.Fatalf("Specs = %v, %v", specs, err)
	}
	all, err := Specs("")
	if err != nil || len(all) < 20 {
		t.Fatalf("Specs(\"\") = %d workloads, %v; want the full SPEC set", len(all), err)
	}
	if _, err := Specs("no-such-workload"); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestTenants: the -tenants parser round-trips a full spec, defaults the
// optional fields, means single-tenant on the empty string, and refuses
// malformed or duplicate entries.
func TestTenants(t *testing.T) {
	list, err := Tenants("alice:ka:5:2:4:3, bob:kb")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("parsed %d tenants, want 2", len(list))
	}
	a := list[0]
	if a.Name != "alice" || a.Key != "ka" || a.Weight != 5 || a.Rate != 2 || a.Burst != 4 || a.MaxInFlight != 3 {
		t.Errorf("alice = %+v", a)
	}
	if b := list[1]; b.Weight != 1 || b.Rate != 0 {
		t.Errorf("bob defaults = %+v", b)
	}
	if list, err := Tenants(""); err != nil || list != nil {
		t.Errorf("empty -tenants = %v, %v; want nil, nil (single-tenant)", list, err)
	}
	bad := []struct{ csv, wantSub string }{
		{"alice", "want name:key"},
		{"alice:ka,alice:kb", "duplicate tenant name"},
		{"alice:ka,bob:ka", "duplicate API key"},
		{"local:ka", "reserved"},
		{"alice:ka:2000", "weight"},
		{"alice:ka:1:-1", "rate"},
	}
	for _, c := range bad {
		_, err := Tenants(c.csv)
		if err == nil {
			t.Errorf("Tenants(%q) accepted, want error", c.csv)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Tenants(%q) error %q, want mention of %q", c.csv, err, c.wantSub)
		}
	}
}

// TestRate: 0 = unlimited; positive finite rates pass; negatives, NaN,
// and absurd magnitudes are refused.
func TestRate(t *testing.T) {
	for _, ok := range []float64{0, 0.5, 100} {
		if r, err := Rate(ok); err != nil || r != ok {
			t.Errorf("Rate(%v) = %v, %v", ok, r, err)
		}
	}
	nan := 0.0
	nan = nan / nan
	for _, bad := range []float64{-1, nan, 1e12} {
		if _, err := Rate(bad); err == nil {
			t.Errorf("Rate(%v) accepted, want error", bad)
		}
	}
}

// TestStreamMode: empty means wait; poll and sse pass; anything else is
// an error naming the valid set.
func TestStreamMode(t *testing.T) {
	for in, want := range map[string]string{"": "wait", "wait": "wait", "poll": "poll", "sse": "sse"} {
		if got, err := StreamMode(in); err != nil || got != want {
			t.Errorf("StreamMode(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := StreamMode("push"); err == nil || !strings.Contains(err.Error(), "sse") {
		t.Errorf("StreamMode(push) = %v, want error naming the valid modes", err)
	}
}

// TestPasses: empty means all (nil); known names pass in caller order;
// unknown names, duplicates, and all-blank lists are refused.
func TestPasses(t *testing.T) {
	known := []string{"alpha", "beta", "gamma"}
	if got, err := Passes("", known); err != nil || got != nil {
		t.Errorf("Passes(\"\") = %v, %v; want nil, nil", got, err)
	}
	got, err := Passes(" gamma, alpha ", known)
	if err != nil || len(got) != 2 || got[0] != "gamma" || got[1] != "alpha" {
		t.Errorf("Passes(gamma,alpha) = %v, %v", got, err)
	}
	if _, err := Passes("alpha,delta", known); err == nil || !strings.Contains(err.Error(), "delta") {
		t.Errorf("unknown pass accepted: %v", err)
	}
	if _, err := Passes("alpha,alpha", known); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate pass accepted: %v", err)
	}
	if _, err := Passes(" , ", known); err == nil {
		t.Error("all-blank pass list accepted, want error")
	}
}
