package mem

import (
	"testing"
	"testing/quick"
)

func TestUnmappedReadsZero(t *testing.T) {
	m := New()
	if m.Read(0xDEADBEEF, 8) != 0 {
		t.Error("unmapped memory must read zero")
	}
	if m.MappedPages() != 0 {
		t.Error("reads must not allocate pages")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	m.Write(0x1000, 8, 0x1122334455667788)
	if got := m.Read(0x1000, 8); got != 0x1122334455667788 {
		t.Errorf("Read = %#x", got)
	}
	// Little-endian byte order.
	if m.LoadByte(0x1000) != 0x88 || m.LoadByte(0x1007) != 0x11 {
		t.Error("memory must be little-endian")
	}
	if got := m.Read(0x1000, 4); got != 0x55667788 {
		t.Errorf("4-byte Read = %#x", got)
	}
	if got := m.Read(0x1004, 4); got != 0x11223344 {
		t.Errorf("upper 4-byte Read = %#x", got)
	}
}

func TestPageStraddle(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 4)
	m.Write(addr, 8, 0xAABBCCDD11223344)
	if got := m.Read(addr, 8); got != 0xAABBCCDD11223344 {
		t.Errorf("straddling read = %#x", got)
	}
	if m.MappedPages() != 2 {
		t.Errorf("straddling write should touch 2 pages, got %d", m.MappedPages())
	}
}

func TestWriteTruncation(t *testing.T) {
	m := New()
	m.Write(0, 8, ^uint64(0))
	m.Write(0, 1, 0x1234) // only low byte lands
	if got := m.Read(0, 8); got != 0xFFFFFFFFFFFFFF34 {
		t.Errorf("byte overwrite = %#x", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	m := New()
	f := func(addr uint64, v uint64, sz uint8) bool {
		size := []int{1, 4, 8}[sz%3]
		addr %= 1 << 30
		m.Write(addr, size, v)
		got := m.Read(addr, size)
		switch size {
		case 1:
			return got == v&0xFF
		case 4:
			return got == v&0xFFFFFFFF
		default:
			return got == v
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermissions(t *testing.T) {
	m := New()
	m.SetKernel(0x3000, 0x1000)
	if m.UserAccessOK(0x3000, 8) {
		t.Error("kernel page must reject user access")
	}
	if m.UserAccessOK(0x2FFC, 8) {
		t.Error("access straddling into a kernel page must be rejected")
	}
	if !m.UserAccessOK(0x2FF8, 8) {
		t.Error("access fully below the kernel page must be allowed")
	}
	if !m.KernelOnly(0x3FFF) || m.KernelOnly(0x4000) {
		t.Error("kernel range must cover exactly its pages")
	}
	m.SetUser(0x3000, 0x1000)
	if !m.UserAccessOK(0x3000, 8) {
		t.Error("SetUser must restore access")
	}
}

func TestSetKernelZeroSize(t *testing.T) {
	m := New()
	m.SetKernel(0x5000, 0)
	if m.KernelOnly(0x5000) {
		t.Error("zero-size SetKernel must mark nothing")
	}
}

func TestClone(t *testing.T) {
	m := New()
	m.Write(0x100, 8, 42)
	m.SetKernel(0x9000, 16)
	c := m.Clone()
	if c.Read(0x100, 8) != 42 || !c.KernelOnly(0x9000) {
		t.Error("clone must copy contents and permissions")
	}
	c.Write(0x100, 8, 7)
	if m.Read(0x100, 8) != 42 {
		t.Error("clone must be independent of the original")
	}
	m.Write(0x200, 8, 9)
	if c.Read(0x200, 8) != 0 {
		t.Error("original writes must not appear in the clone")
	}
}

func TestBytesHelpers(t *testing.T) {
	m := New()
	m.StoreBytes(0x40, []byte{1, 2, 3, 4})
	got := m.LoadBytes(0x40, 4)
	for i, b := range []byte{1, 2, 3, 4} {
		if got[i] != b {
			t.Fatalf("LoadBytes[%d] = %d, want %d", i, got[i], b)
		}
	}
}

func TestInvalidSizePanics(t *testing.T) {
	m := New()
	defer func() {
		if recover() == nil {
			t.Error("Read with invalid size must panic")
		}
	}()
	m.Read(0, 3)
}
