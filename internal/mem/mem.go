// Package mem implements the simulated physical memory: a sparse, paged,
// byte-addressed 64-bit address space with per-page protection bits.
//
// Protection is deliberately simple — each page is either user-accessible or
// kernel-only — because the only protection property the NDA reproduction
// needs is the one Meltdown-class attacks violate: a user-mode load of a
// kernel page must architecturally fault, while micro-architecturally the
// data may (on vulnerable cores) still flow to dependents before the fault
// is taken at commit.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// PageBits is log2 of the page size.
const PageBits = 12

// PageSize is the size of a page in bytes.
const PageSize = 1 << PageBits

// Memory is a sparse physical memory. The zero value is not usable; call New.
// Unmapped addresses read as zero (pages are allocated on first write), which
// matches how speculative wrong-path accesses to arbitrary addresses behave
// in the simulator: they never fault the host, they just observe zeros.
type Memory struct {
	pages  map[uint64]*[PageSize]byte
	kernel map[uint64]bool // page number -> kernel-only
}

// New returns an empty memory with every page user-accessible and zero.
func New() *Memory {
	return &Memory{
		pages:  make(map[uint64]*[PageSize]byte),
		kernel: make(map[uint64]bool),
	}
}

// Clone returns a deep copy of the memory, used to run the same initial
// image on several cores (e.g. the differential tests and the per-policy
// attack sweeps).
func (m *Memory) Clone() *Memory {
	c := New()
	for pn, pg := range m.pages {
		cp := *pg
		c.pages[pn] = &cp
	}
	for pn, k := range m.kernel {
		c.kernel[pn] = k
	}
	return c
}

func pageNum(addr uint64) uint64 { return addr >> PageBits }

// SetKernel marks every page overlapping [addr, addr+size) as kernel-only.
func (m *Memory) SetKernel(addr, size uint64) {
	if size == 0 {
		return
	}
	for pn := pageNum(addr); pn <= pageNum(addr+size-1); pn++ {
		m.kernel[pn] = true
	}
}

// SetUser marks every page overlapping [addr, addr+size) as user-accessible.
func (m *Memory) SetUser(addr, size uint64) {
	if size == 0 {
		return
	}
	for pn := pageNum(addr); pn <= pageNum(addr+size-1); pn++ {
		delete(m.kernel, pn)
	}
}

// KernelOnly reports whether the page containing addr is kernel-only.
func (m *Memory) KernelOnly(addr uint64) bool { return m.kernel[pageNum(addr)] }

// UserAccessOK reports whether a user-mode access of size bytes at addr is
// architecturally permitted.
func (m *Memory) UserAccessOK(addr uint64, size int) bool {
	if size <= 0 {
		return true
	}
	for pn := pageNum(addr); pn <= pageNum(addr+uint64(size)-1); pn++ {
		if m.kernel[pn] {
			return false
		}
	}
	return true
}

func (m *Memory) page(addr uint64, alloc bool) *[PageSize]byte {
	pn := pageNum(addr)
	pg := m.pages[pn]
	if pg == nil && alloc {
		//ndavet:allow alloclint:op first touch of a page allocates its backing; steady-state stores hit mapped pages
		pg = new([PageSize]byte)
		//ndavet:allow alloclint:op page-table insert happens once per touched page, not per store
		m.pages[pn] = pg
	}
	return pg
}

// LoadByte returns the byte at addr. Unmapped memory reads as zero.
func (m *Memory) LoadByte(addr uint64) byte {
	pg := m.page(addr, false)
	if pg == nil {
		return 0
	}
	return pg[addr&(PageSize-1)]
}

// StoreByte stores one byte at addr, allocating the page if needed.
func (m *Memory) StoreByte(addr uint64, v byte) {
	m.page(addr, true)[addr&(PageSize-1)] = v
}

// Read returns size bytes starting at addr as a little-endian unsigned value.
// size must be 1, 4, or 8. Accesses may straddle page boundaries.
func (m *Memory) Read(addr uint64, size int) uint64 {
	switch size {
	case 1:
		return uint64(m.LoadByte(addr))
	case 4, 8:
		var buf [8]byte
		for i := 0; i < size; i++ {
			buf[i] = m.LoadByte(addr + uint64(i))
		}
		if size == 4 {
			return uint64(binary.LittleEndian.Uint32(buf[:4]))
		}
		return binary.LittleEndian.Uint64(buf[:])
	default:
		panic(fmt.Sprintf("mem: unsupported read size %d", size))
	}
}

// Write stores the low size bytes of v at addr, little-endian.
// size must be 1, 4, or 8.
func (m *Memory) Write(addr uint64, size int, v uint64) {
	switch size {
	case 1:
		m.StoreByte(addr, byte(v))
	case 4, 8:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		for i := 0; i < size; i++ {
			m.StoreByte(addr+uint64(i), buf[i])
		}
	default:
		panic(fmt.Sprintf("mem: unsupported write size %d", size))
	}
}

// StoreBytes copies b into memory starting at addr.
func (m *Memory) StoreBytes(addr uint64, b []byte) {
	for i, v := range b {
		m.StoreByte(addr+uint64(i), v)
	}
}

// LoadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) LoadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.LoadByte(addr + uint64(i))
	}
	return out
}

// MappedPages returns the number of pages that have been allocated.
func (m *Memory) MappedPages() int { return len(m.pages) }

// PageNums returns the numbers of all allocated pages in ascending order;
// used by checkpoint serialization.
func (m *Memory) PageNums() []uint64 {
	out := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		out = append(out, pn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PageData returns a copy of the page's contents (nil if unmapped).
func (m *Memory) PageData(pn uint64) []byte {
	pg := m.pages[pn]
	if pg == nil {
		return nil
	}
	out := make([]byte, PageSize)
	copy(out, pg[:])
	return out
}

// SetPageData installs a full page of data at the given page number.
func (m *Memory) SetPageData(pn uint64, data []byte) {
	pg := new([PageSize]byte)
	copy(pg[:], data)
	m.pages[pn] = pg
}

// KernelPages returns the numbers of kernel-only pages in ascending order.
func (m *Memory) KernelPages() []uint64 {
	out := make([]uint64, 0, len(m.kernel))
	for pn, k := range m.kernel {
		if k {
			out = append(out, pn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
