// Package core implements the paper's contribution: NDA (Non-speculative
// Data Access) propagation policies for an out-of-order processor, plus the
// two InvisiSpec visibility variants used as comparators.
//
// NDA's mechanism lives at a single choke point of the OoO life-cycle
// (paper Fig. 2): an instruction that has completed execution writes its
// result to its destination physical register, but the *tag broadcast* that
// marks the register ready and wakes dependent instructions is deferred
// until the instruction is "safe". Because dependents cannot issue before
// the broadcast, potentially wrong-path values never propagate, which
// breaks the access→transmit dependence chains that every known speculative
// execution attack requires.
//
// A Policy defines (a) which instructions are considered unsafe at dispatch
// and (b) the event that makes them safe:
//
//   - Steering policies (Permissive/Strict, §5.1–5.2) treat instructions
//     dispatched after an unresolved branch as unsafe until every older
//     branch has resolved. Permissive restricts only load-like
//     instructions; Strict restricts everything.
//   - Bypass Restriction (BR, §5.2) additionally marks a load unsafe while
//     any older store it bypassed still has an unresolved address.
//   - Load Restriction (§5.3) treats every load-like instruction as unsafe
//     until it is the eldest unretired instruction, defeating chosen-code
//     attacks (Meltdown/Foreshadow/LazyFP/MDS) even on cores that forward
//     faulting data.
//   - Full Protection (§5.4) composes Strict+BR with Load Restriction.
//
// The package is written against a minimal per-instruction Node embedded in
// the simulator's ROB entries, so the policy logic is independent of the
// pipeline implementation and can be unit-tested in isolation.
package core

import (
	"fmt"

	"nda/internal/isa"
)

// Visibility selects how speculative loads interact with the cache
// hierarchy. It models InvisiSpec-style defenses, which leave NDA's
// propagation path untouched and instead hide the cache side effects of
// speculative loads.
type Visibility uint8

const (
	// VisibleAlways is conventional behaviour: loads install lines
	// immediately, speculative or not.
	VisibleAlways Visibility = iota
	// InvisibleUntilResolved hides a load's fill while any older branch is
	// unresolved (InvisiSpec-Spectre).
	InvisibleUntilResolved
	// InvisibleUntilRetire hides a load's fill until the load retires
	// (InvisiSpec-Future).
	InvisibleUntilRetire
)

// Policy is one point in the NDA design space (a row of Table 2).
// The zero value is the insecure baseline OoO design.
type Policy struct {
	Name string

	// GuardBranches makes unresolved conditional branches and indirect
	// jumps guards: instructions dispatched after a guard carry
	// Node.UnderGuard until every older guard resolves.
	GuardBranches bool

	// PropagationRestricted defers tag broadcast of UnderGuard
	// instructions (loads only, or all instructions when RestrictAll).
	PropagationRestricted bool

	// RestrictAll extends the restriction from load-like instructions to
	// every instruction class (Strict propagation, §5.1). Meaningful only
	// with PropagationRestricted.
	RestrictAll bool

	// BypassRestriction marks loads that bypassed stores with unresolved
	// addresses unsafe until those addresses resolve (§5.2).
	BypassRestriction bool

	// LoadRestriction defers a load-like instruction's broadcast until it
	// is the eldest unretired instruction (§5.3).
	LoadRestriction bool

	// LoadVisibility models InvisiSpec; orthogonal to the NDA fields.
	LoadVisibility Visibility

	// ExtraBroadcastDelay adds d cycles between an instruction becoming
	// safe *after* completion and its tag broadcast, modelling NDA wake-up
	// logic that misses the critical path (Fig. 9e sensitivity study).
	// Instructions that are already safe when they complete broadcast
	// without this delay, as in the paper.
	ExtraBroadcastDelay int
}

// The ten evaluated configurations. Baseline is insecure OoO; the six NDA
// rows correspond to Table 2 rows 1–6; the InvisiSpec pair are rows 7–8.
func Baseline() Policy { return Policy{Name: "OoO"} }

// Permissive is Table 2 row 1: loads after an unresolved branch do not wake
// dependents until all older branches resolve. Protects secrets in memory
// and special registers against control-steering attacks.
func Permissive() Policy {
	return Policy{Name: "Permissive", GuardBranches: true, PropagationRestricted: true}
}

// PermissiveBR is Table 2 row 2: Permissive plus Bypass Restriction,
// additionally defeating Speculative Store Bypass (Spectre v4).
func PermissiveBR() Policy {
	p := Permissive()
	p.Name = "Permissive+BR"
	p.BypassRestriction = true
	return p
}

// Strict is Table 2 row 3: every instruction after an unresolved branch is
// restricted, additionally hindering exfiltration of GPR-resident secrets.
func Strict() Policy {
	return Policy{Name: "Strict", GuardBranches: true, PropagationRestricted: true, RestrictAll: true}
}

// StrictBR is Table 2 row 4: Strict plus Bypass Restriction.
func StrictBR() Policy {
	p := Strict()
	p.Name = "Strict+BR"
	p.BypassRestriction = true
	return p
}

// LoadRestrict is Table 2 row 5: loads wake dependents only at retirement,
// defeating all chosen-code attacks (Meltdown/Foreshadow/LazyFP/MDS).
func LoadRestrict() Policy {
	return Policy{Name: "RestrictedLoads", LoadRestriction: true}
}

// FullProtection is Table 2 row 6: StrictBR composed with LoadRestrict; the
// most defensive design point.
func FullProtection() Policy {
	p := StrictBR()
	p.Name = "FullProtection"
	p.LoadRestriction = true
	return p
}

// InvisiSpecSpectre models InvisiSpec's Spectre threat model: speculative
// loads are invisible to the cache until all older branches resolve.
func InvisiSpecSpectre() Policy {
	return Policy{Name: "InvisiSpec-Spectre", GuardBranches: true, LoadVisibility: InvisibleUntilResolved}
}

// InvisiSpecFuture models InvisiSpec's futuristic threat model: speculative
// loads are invisible to the cache until they retire.
func InvisiSpecFuture() Policy {
	return Policy{Name: "InvisiSpec-Future", GuardBranches: true, LoadVisibility: InvisibleUntilRetire}
}

// All returns the ten evaluated configurations in Fig. 7 order (the
// in-order core is driven separately by the harness).
func All() []Policy {
	return []Policy{
		Baseline(),
		Permissive(), PermissiveBR(),
		Strict(), StrictBR(),
		LoadRestrict(), FullProtection(),
		InvisiSpecSpectre(), InvisiSpecFuture(),
	}
}

// ByName returns the policy with the given Name.
func ByName(name string) (Policy, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Policy{}, fmt.Errorf("core: unknown policy %q", name)
}

// Secure reports whether the policy restricts speculation at all.
func (p Policy) Secure() bool {
	return p.PropagationRestricted || p.BypassRestriction || p.LoadRestriction ||
		p.LoadVisibility != VisibleAlways
}

// Node is the per-instruction safety state NDA adds to each ROB entry: the
// paper's unsafe/exec/bcast bits plus bypass-guard bookkeeping. The pipeline
// owns the entries; this package owns their interpretation.
type Node struct {
	// Class is the instruction's NDA class, fixed at dispatch.
	Class isa.Class

	// GuardResolved is meaningful for ClassBranch nodes: it is set when the
	// branch's direction and target are known (execution complete).
	GuardResolved bool

	// UnderGuard is the paper's "unsafe" bit for steering policies: the
	// instruction follows a still-unresolved guard. Maintained by
	// Policy.RecomputeGuards.
	UnderGuard bool

	// BypassGuards counts older stores with unresolved addresses that this
	// load bypassed; >0 blocks broadcast under Bypass Restriction.
	BypassGuards int

	// Completed is the paper's "exec" bit: execution finished and the
	// result has been written to the destination physical register.
	Completed bool

	// Broadcast is the paper's "bcast" bit: the destination tag has been
	// broadcast and dependents woken.
	Broadcast bool
}

// RecomputeGuards performs the resolve-walk of §5.1 over the ROB in age
// order (eldest first): each node's UnderGuard bit is set iff some older
// unresolved guard exists. Clearing happens implicitly when the eldest
// unresolved guard resolves — exactly "mark instructions safe until the
// next eldest unresolved branch".
//
// The walk also serves policies that only *track* speculation depth without
// restricting propagation (InvisiSpec), which use UnderGuard to decide when
// a speculative load's fill may become visible.
func (p Policy) RecomputeGuards(nodes []*Node) {
	if !p.GuardBranches {
		return
	}
	under := false
	for _, n := range nodes {
		n.UnderGuard = under
		if n.Class == isa.ClassBranch && !n.GuardResolved {
			under = true
		}
	}
}

// steeringUnsafe reports whether the steering restriction currently blocks
// the node's broadcast.
func (p Policy) steeringUnsafe(n *Node) bool {
	if !p.PropagationRestricted || !n.UnderGuard {
		return false
	}
	return p.RestrictAll || n.Class == isa.ClassLoad
}

// Unsafe reports whether any NDA restriction currently blocks the node's
// broadcast. atHead must be true iff the node's instruction is the eldest
// unretired instruction.
func (p Policy) Unsafe(n *Node, atHead bool) bool {
	if p.steeringUnsafe(n) {
		return true
	}
	if p.BypassRestriction && n.BypassGuards > 0 {
		return true
	}
	if p.LoadRestriction && n.Class == isa.ClassLoad && !atHead {
		return true
	}
	return false
}

// MayBroadcast reports whether the node is eligible to broadcast its tag
// this cycle: it has completed, has not already broadcast, and no NDA
// restriction applies.
func (p Policy) MayBroadcast(n *Node, atHead bool) bool {
	return n.Completed && !n.Broadcast && !p.Unsafe(n, atHead)
}
