package core

import (
	"testing"

	"nda/internal/isa"
)

func TestPolicyTable2Matrix(t *testing.T) {
	// Each policy's flags must match its Table 2 row.
	cases := []struct {
		p                              Policy
		prop, restrictAll, br, loadRes bool
		vis                            Visibility
	}{
		{Baseline(), false, false, false, false, VisibleAlways},
		{Permissive(), true, false, false, false, VisibleAlways},
		{PermissiveBR(), true, false, true, false, VisibleAlways},
		{Strict(), true, true, false, false, VisibleAlways},
		{StrictBR(), true, true, true, false, VisibleAlways},
		{LoadRestrict(), false, false, false, true, VisibleAlways},
		{FullProtection(), true, true, true, true, VisibleAlways},
		{InvisiSpecSpectre(), false, false, false, false, InvisibleUntilResolved},
		{InvisiSpecFuture(), false, false, false, false, InvisibleUntilRetire},
	}
	for _, c := range cases {
		if c.p.PropagationRestricted != c.prop || c.p.RestrictAll != c.restrictAll ||
			c.p.BypassRestriction != c.br || c.p.LoadRestriction != c.loadRes ||
			c.p.LoadVisibility != c.vis {
			t.Errorf("%s flags = %+v", c.p.Name, c.p)
		}
	}
}

func TestSecure(t *testing.T) {
	if Baseline().Secure() {
		t.Error("baseline must not claim security")
	}
	for _, p := range All()[1:] {
		if !p.Secure() {
			t.Errorf("%s must be secure", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, p := range All() {
		got, err := ByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Errorf("ByName(%q) = %v, %v", p.Name, got.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name must error")
	}
}

// mkNodes builds a ROB view from a class string: b=branch (unresolved),
// B=branch (resolved), l=load, s=store, a=alu.
func mkNodes(spec string) []*Node {
	nodes := make([]*Node, len(spec))
	for i, ch := range spec {
		n := &Node{}
		switch ch {
		case 'b':
			n.Class = isa.ClassBranch
		case 'B':
			n.Class = isa.ClassBranch
			n.GuardResolved = true
		case 'l':
			n.Class = isa.ClassLoad
		case 's':
			n.Class = isa.ClassStore
		case 'a':
			n.Class = isa.ClassOther
		}
		nodes[i] = n
	}
	return nodes
}

func TestRecomputeGuardsWalk(t *testing.T) {
	p := Strict()
	nodes := mkNodes("aBlbal")
	p.RecomputeGuards(nodes)
	want := []bool{false, false, false, false, true, true}
	for i, n := range nodes {
		if n.UnderGuard != want[i] {
			t.Errorf("node %d UnderGuard = %v, want %v", i, n.UnderGuard, want[i])
		}
	}
}

func TestRecomputeGuardsResolutionClears(t *testing.T) {
	p := Permissive()
	nodes := mkNodes("blal")
	p.RecomputeGuards(nodes)
	if !nodes[1].UnderGuard || !nodes[3].UnderGuard {
		t.Fatal("loads after unresolved branch must be under guard")
	}
	nodes[0].GuardResolved = true // branch resolves
	p.RecomputeGuards(nodes)
	for i, n := range nodes {
		if n.UnderGuard {
			t.Errorf("node %d still under guard after resolution", i)
		}
	}
}

func TestRecomputeGuardsStopsAtNextUnresolved(t *testing.T) {
	// "mark safe until the NEXT eldest unresolved branch" (§5.1).
	p := Strict()
	nodes := mkNodes("Bababa")
	p.RecomputeGuards(nodes)
	want := []bool{false, false, false, true, true, true}
	for i, n := range nodes {
		if n.UnderGuard != want[i] {
			t.Errorf("node %d UnderGuard = %v, want %v", i, n.UnderGuard, want[i])
		}
	}
}

func TestBaselineNeverRestricts(t *testing.T) {
	p := Baseline()
	n := &Node{Class: isa.ClassLoad, UnderGuard: true, BypassGuards: 3, Completed: true}
	if p.Unsafe(n, false) {
		t.Error("baseline must never mark anything unsafe")
	}
	if !p.MayBroadcast(n, false) {
		t.Error("baseline must broadcast completed instructions")
	}
}

func TestPermissiveRestrictsOnlyLoads(t *testing.T) {
	p := Permissive()
	load := &Node{Class: isa.ClassLoad, UnderGuard: true, Completed: true}
	alu := &Node{Class: isa.ClassOther, UnderGuard: true, Completed: true}
	if !p.Unsafe(load, false) {
		t.Error("permissive must restrict a load under guard")
	}
	if p.Unsafe(alu, false) {
		t.Error("permissive must not restrict ALU ops (§5.2)")
	}
	load.UnderGuard = false
	if p.Unsafe(load, false) {
		t.Error("guard-free load must be safe")
	}
}

func TestStrictRestrictsEverything(t *testing.T) {
	p := Strict()
	for _, cls := range []isa.Class{isa.ClassLoad, isa.ClassOther, isa.ClassStore, isa.ClassBranch} {
		n := &Node{Class: cls, UnderGuard: true, Completed: true}
		if !p.Unsafe(n, false) {
			t.Errorf("strict must restrict class %d under guard", cls)
		}
	}
}

func TestBypassRestriction(t *testing.T) {
	n := &Node{Class: isa.ClassLoad, BypassGuards: 1, Completed: true}
	if !PermissiveBR().Unsafe(n, false) {
		t.Error("BR must restrict a load with outstanding bypass guards")
	}
	if Permissive().Unsafe(n, false) {
		t.Error("plain permissive must ignore bypass guards (does not block SSB)")
	}
	n.BypassGuards = 0
	if PermissiveBR().Unsafe(n, false) {
		t.Error("cleared guards must release the load")
	}
}

func TestLoadRestriction(t *testing.T) {
	p := LoadRestrict()
	load := &Node{Class: isa.ClassLoad, Completed: true}
	if !p.Unsafe(load, false) {
		t.Error("load restriction must hold a non-head load")
	}
	if p.Unsafe(load, true) {
		t.Error("the eldest load must be safe (about to retire)")
	}
	alu := &Node{Class: isa.ClassOther, UnderGuard: true, Completed: true}
	if p.Unsafe(alu, false) {
		t.Error("load restriction must not touch non-loads")
	}
}

func TestFullProtectionComposes(t *testing.T) {
	p := FullProtection()
	load := &Node{Class: isa.ClassLoad, Completed: true}
	if !p.Unsafe(load, false) {
		t.Error("full protection must load-restrict")
	}
	alu := &Node{Class: isa.ClassOther, UnderGuard: true, Completed: true}
	if !p.Unsafe(alu, false) {
		t.Error("full protection must strict-restrict")
	}
	headLoad := &Node{Class: isa.ClassLoad, Completed: true}
	if p.Unsafe(headLoad, true) {
		t.Error("eldest guard-free load must broadcast under full protection")
	}
}

func TestMayBroadcastRequiresCompletion(t *testing.T) {
	p := Baseline()
	n := &Node{Class: isa.ClassOther}
	if p.MayBroadcast(n, false) {
		t.Error("incomplete instruction must not broadcast")
	}
	n.Completed = true
	n.Broadcast = true
	if p.MayBroadcast(n, false) {
		t.Error("already-broadcast instruction must not broadcast again")
	}
}

func TestInvisiSpecDoesNotRestrictPropagation(t *testing.T) {
	for _, p := range []Policy{InvisiSpecSpectre(), InvisiSpecFuture()} {
		n := &Node{Class: isa.ClassLoad, UnderGuard: true, Completed: true}
		if p.Unsafe(n, false) {
			t.Errorf("%s must not defer broadcasts (it hides fills instead)", p.Name)
		}
	}
}

func TestRdmsrIsLoadClass(t *testing.T) {
	// §4.3: special-register reads are treated like loads by every policy.
	n := &Node{Class: isa.ClassOf(isa.Inst{Op: isa.OpRdmsr}), Completed: true}
	if !LoadRestrict().Unsafe(n, false) {
		t.Error("rdmsr must be load-restricted")
	}
}

func TestBypassRestrictionMultipleStores(t *testing.T) {
	// A load can bypass several older stores whose addresses are all still
	// unresolved. Bypass Restriction must hold its broadcast until the LAST
	// guard clears, and resolving them one at a time must not release it
	// early — not even from the ROB head, where Load Restriction alone
	// would let it go.
	n := &Node{Class: isa.ClassLoad, Completed: true, BypassGuards: 2}
	for _, p := range []Policy{PermissiveBR(), StrictBR(), FullProtection()} {
		n.BypassGuards = 2
		if !p.Unsafe(n, false) || !p.Unsafe(n, true) {
			t.Errorf("%s: two outstanding bypass guards must restrict, head or not", p.Name)
		}
		n.BypassGuards-- // first store address resolves
		if !p.Unsafe(n, false) || !p.Unsafe(n, true) {
			t.Errorf("%s: one remaining bypass guard must still restrict", p.Name)
		}
		n.BypassGuards-- // last store address resolves
		if p.Unsafe(n, true) {
			t.Errorf("%s: all bypass guards cleared; eldest load must be releasable", p.Name)
		}
	}
}

func TestLoadRestrictionStatelessAfterSquash(t *testing.T) {
	// The eldest-unretired check is positional and stateless: after a
	// squash re-steers fetch and the load lands at the ROB head, the same
	// node that was restricted a cycle earlier must become
	// broadcast-eligible with no other state change — no latch may
	// remember the earlier denial.
	p := LoadRestrict()
	n := &Node{Class: isa.ClassLoad, Completed: true}
	if !p.Unsafe(n, false) {
		t.Fatal("non-head load must be restricted")
	}
	if p.Unsafe(n, true) || !p.MayBroadcast(n, true) {
		t.Error("the instant the load is eldest unretired it must broadcast")
	}

	// Under Full Protection the same flip needs the guard bit cleared too:
	// a recompute over the post-squash ROB (no older unresolved branch
	// left) must release the head load in one pass.
	fp := FullProtection()
	nodes := mkNodes("bl")
	nodes[1].Completed = true
	fp.RecomputeGuards(nodes)
	if !fp.Unsafe(nodes[1], false) {
		t.Fatal("load under an unresolved guard must be restricted")
	}
	post := nodes[1:] // the branch resolved and retired; load is now eldest
	fp.RecomputeGuards(post)
	if fp.Unsafe(post[0], true) {
		t.Error("post-squash recompute must release the eldest guard-free load")
	}
}
