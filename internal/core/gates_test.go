package core

import (
	"reflect"
	"testing"
)

// The gate sets are the policies' semantic contract with the static
// analyzer; pin them exactly so a knob edit shows up here before it shows up
// as a census drift.
func TestGatesPerPolicy(t *testing.T) {
	want := map[string][]Gate{
		"OoO":        nil,
		"Permissive": {{EdgeLoadUse, ScopeUnderGuard, ReleaseGuardsResolve}},
		"Permissive+BR": {
			{EdgeLoadUse, ScopeUnderGuard, ReleaseGuardsResolve},
			{EdgeLoadUse, ScopeBypassingLoad, ReleaseStoreAddrsResolve},
		},
		"Strict": {
			{EdgeLoadUse, ScopeUnderGuard, ReleaseGuardsResolve},
			{EdgeAnyUse, ScopeUnderGuard, ReleaseGuardsResolve},
		},
		"Strict+BR": {
			{EdgeLoadUse, ScopeUnderGuard, ReleaseGuardsResolve},
			{EdgeAnyUse, ScopeUnderGuard, ReleaseGuardsResolve},
			{EdgeLoadUse, ScopeBypassingLoad, ReleaseStoreAddrsResolve},
		},
		"RestrictedLoads": {{EdgeLoadUse, ScopeAlways, ReleaseEldest}},
		"FullProtection": {
			{EdgeLoadUse, ScopeUnderGuard, ReleaseGuardsResolve},
			{EdgeAnyUse, ScopeUnderGuard, ReleaseGuardsResolve},
			{EdgeLoadUse, ScopeBypassingLoad, ReleaseStoreAddrsResolve},
			{EdgeLoadUse, ScopeAlways, ReleaseEldest},
		},
		"InvisiSpec-Spectre": {{EdgeFill, ScopeUnderGuard, ReleaseGuardsResolve}},
		"InvisiSpec-Future":  {{EdgeFill, ScopeAlways, ReleaseRetire}},
	}
	for _, p := range All() {
		w, ok := want[p.Name]
		if !ok {
			t.Errorf("%s: new policy with no pinned gate set — add it here and to the fuzz census", p.Name)
			continue
		}
		if got := p.Gates(); !reflect.DeepEqual(got, w) {
			t.Errorf("%s: Gates() = %v, want %v", p.Name, got, w)
		}
	}
	if len(want) != len(All()) {
		t.Fatalf("pinned %d gate sets for %d policies", len(want), len(All()))
	}
}

// An insecure baseline must gate nothing; every secure policy must gate
// something. The verdict engine leans on this: no gates ⇒ every chain fires.
func TestGatesSecureIffNonEmpty(t *testing.T) {
	for _, p := range All() {
		if got := len(p.Gates()) > 0; got != p.Secure() {
			t.Errorf("%s: len(Gates())>0 = %v, Secure() = %v", p.Name, got, p.Secure())
		}
	}
}
