package core

// The declarative propagation-gating spec.
//
// NDA's mechanism (§5) and both comparison schemes reduce to the same shape:
// a policy blocks certain dataflow edges of a speculative dependence chain
// until a resolution event fires. A Gate names one such rule — which edge
// class it cuts, over which chains it applies, and which pipeline event
// releases it. Policy.Gates derives the rule set from the policy's knobs, so
// the static gadget analyzer (internal/gadget) interprets the same spec the
// simulator enforces instead of carrying a hand-written verdict table per
// policy. A future policy added to this package gets static verdicts for
// free: give it knobs (or extend Gates), and the engine derives the rest.

// EdgeKind names a class of dataflow edge in an access→transmit chain.
type EdgeKind uint8

const (
	// EdgeLoadUse is the wakeup edge from a load-class producer (loads and
	// RDMSR) to any dependent. Chains whose every producer is a non-load
	// (plain ALU flow from an architectural register) have no such edge.
	EdgeLoadUse EdgeKind = iota
	// EdgeAnyUse is the wakeup edge from any unsafe producer to a
	// dependent. Chains where the transmitter consumes the tainted value
	// directly from an architectural register (no intermediate producer)
	// have no such edge.
	EdgeAnyUse
	// EdgeFill is the cache-visibility edge of a d-cache transmitter: the
	// line install that makes the access observable to a later timing
	// probe. Non-d-cache transmitters (BTB updates, branch-direction
	// advisories) have no fill edge.
	EdgeFill
)

// GateScope restricts which speculative chains a gate covers.
type GateScope uint8

const (
	// ScopeUnderGuard covers edges shadowed by an unresolved control or
	// address guard (a predicted branch or an unretired store address).
	ScopeUnderGuard GateScope = iota
	// ScopeBypassingLoad covers chains sourced at a load that bypassed an
	// older store with an unresolved address.
	ScopeBypassingLoad
	// ScopeAlways covers every in-flight speculative chain.
	ScopeAlways
)

// ReleaseEvent is the pipeline event that lifts a gate, allowing the gated
// edge to fire.
type ReleaseEvent uint8

const (
	// ReleaseGuardsResolve lifts when every guard shadowing the producer
	// has resolved.
	ReleaseGuardsResolve ReleaseEvent = iota
	// ReleaseStoreAddrsResolve lifts when every older store address is
	// known.
	ReleaseStoreAddrsResolve
	// ReleaseEldest lifts when the producer is the eldest unretired
	// instruction.
	ReleaseEldest
	// ReleaseRetire lifts only at retirement.
	ReleaseRetire
)

// Gate is one edge-gating rule: edges of kind Edge, on chains within Scope,
// do not fire until Until.
type Gate struct {
	Edge  EdgeKind
	Scope GateScope
	Until ReleaseEvent
}

// Gates derives the policy's edge-gating rules from its knobs. The order is
// significant only for reporting: the first applicable gate names the reason
// a chain is blocked, and the order here mirrors the precedence of the
// paper's prose (propagation restrictions, then bypass, then load
// restriction, then load visibility).
func (p Policy) Gates() []Gate {
	var gs []Gate
	if p.PropagationRestricted {
		gs = append(gs, Gate{EdgeLoadUse, ScopeUnderGuard, ReleaseGuardsResolve})
		if p.RestrictAll {
			gs = append(gs, Gate{EdgeAnyUse, ScopeUnderGuard, ReleaseGuardsResolve})
		}
	}
	if p.BypassRestriction {
		gs = append(gs, Gate{EdgeLoadUse, ScopeBypassingLoad, ReleaseStoreAddrsResolve})
	}
	if p.LoadRestriction {
		gs = append(gs, Gate{EdgeLoadUse, ScopeAlways, ReleaseEldest})
	}
	switch p.LoadVisibility {
	case InvisibleUntilResolved:
		gs = append(gs, Gate{EdgeFill, ScopeUnderGuard, ReleaseGuardsResolve})
	case InvisibleUntilRetire:
		gs = append(gs, Gate{EdgeFill, ScopeAlways, ReleaseRetire})
	}
	return gs
}

func (k EdgeKind) String() string {
	switch k {
	case EdgeLoadUse:
		return "load→use"
	case EdgeAnyUse:
		return "any→use"
	case EdgeFill:
		return "fill"
	}
	return "edge?"
}

func (s GateScope) String() string {
	switch s {
	case ScopeUnderGuard:
		return "under-guard"
	case ScopeBypassingLoad:
		return "bypassing-load"
	case ScopeAlways:
		return "always"
	}
	return "scope?"
}

func (e ReleaseEvent) String() string {
	switch e {
	case ReleaseGuardsResolve:
		return "guards-resolve"
	case ReleaseStoreAddrsResolve:
		return "store-addrs-resolve"
	case ReleaseEldest:
		return "eldest"
	case ReleaseRetire:
		return "retire"
	}
	return "event?"
}
