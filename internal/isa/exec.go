package isa

// This file defines the architectural semantics of the computational
// instructions as pure functions. Every core in the repository (the
// functional emulator, the in-order timing core, and the OoO core) evaluates
// instructions through these helpers, so their architectural behaviour
// cannot diverge — only timing differs.

// EvalALU computes the result of an ALU instruction (register-register,
// register-immediate, or LUI) given its source operand values. For
// immediate forms, pass the instruction's Imm as b.
//
// Division semantics follow RISC-V: division by zero yields all-ones
// (quotient) or the dividend (remainder); the INT64_MIN/-1 overflow case
// yields INT64_MIN (quotient) or 0 (remainder).
func EvalALU(op Op, a, b uint64) uint64 {
	switch op {
	case OpAdd, OpAddi:
		return a + b
	case OpSub:
		return a - b
	case OpAnd, OpAndi:
		return a & b
	case OpOr, OpOri:
		return a | b
	case OpXor, OpXori:
		return a ^ b
	case OpSll, OpSlli:
		return a << (b & 63)
	case OpSrl, OpSrli:
		return a >> (b & 63)
	case OpSra, OpSrai:
		return uint64(int64(a) >> (b & 63))
	case OpSlt, OpSlti:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	case OpSltu, OpSltiu:
		if a < b {
			return 1
		}
		return 0
	case OpMul:
		return a * b
	case OpDiv:
		x, y := int64(a), int64(b)
		switch {
		case y == 0:
			return ^uint64(0)
		case x == -1<<63 && y == -1:
			return uint64(x)
		default:
			return uint64(x / y)
		}
	case OpRem:
		x, y := int64(a), int64(b)
		switch {
		case y == 0:
			return a
		case x == -1<<63 && y == -1:
			return 0
		default:
			return uint64(x % y)
		}
	case OpLui:
		return b
	}
	panic("isa: EvalALU called with non-ALU op " + op.String())
}

// IsALU reports whether EvalALU accepts the op.
func IsALU(op Op) bool {
	switch op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpSll, OpSrl, OpSra, OpSlt, OpSltu,
		OpMul, OpDiv, OpRem,
		OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti, OpSltiu, OpLui:
		return true
	}
	return false
}

// ALUOperandB returns the second ALU operand for inst given the value of
// Rs2: immediate forms use Imm, register forms use rs2Val.
func ALUOperandB(inst Inst, rs2Val uint64) uint64 {
	switch inst.Op {
	case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti, OpSltiu, OpLui:
		return uint64(inst.Imm)
	default:
		return rs2Val
	}
}

// EvalBranch evaluates a conditional branch's direction given its operands.
func EvalBranch(op Op, a, b uint64) bool {
	switch op {
	case OpBeq:
		return a == b
	case OpBne:
		return a != b
	case OpBlt:
		return int64(a) < int64(b)
	case OpBge:
		return int64(a) >= int64(b)
	case OpBltu:
		return a < b
	case OpBgeu:
		return a >= b
	}
	panic("isa: EvalBranch called with non-branch op " + op.String())
}

// PrivilegedMSR reports whether user-mode access to the MSR faults. The trap
// and scratch MSRs are user-accessible; everything from MSRSecretKey up is
// privileged (the LazyFP / Meltdown-v3a analogue).
func PrivilegedMSR(msr uint16) bool { return msr >= MSRSecretKey }

// FaultKind identifies why an instruction faulted.
type FaultKind uint8

const (
	FaultNone         FaultKind = iota
	FaultKernelLoad             // user-mode load from a kernel-only page
	FaultKernelStore            // user-mode store to a kernel-only page
	FaultPrivilegeMSR           // user-mode access to a privileged MSR
	FaultBadFetch               // PC left the text segment on the committed path
	FaultBadOpcode              // committed an OpInvalid
)

// String names the fault kind.
func (f FaultKind) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultKernelLoad:
		return "kernel-load"
	case FaultKernelStore:
		return "kernel-store"
	case FaultPrivilegeMSR:
		return "privileged-msr"
	case FaultBadFetch:
		return "bad-fetch"
	case FaultBadOpcode:
		return "bad-opcode"
	}
	return "fault(?)"
}
