// Package isa defines the instruction set architecture simulated by this
// repository: a 64-bit RISC-style ISA with 32 general-purpose registers, a
// small model-specific-register (MSR) file, byte-addressed memory, and
// 4-byte instructions.
//
// The ISA is deliberately minimal but carries every instruction *class* that
// the NDA propagation policies distinguish (Weisse et al., MICRO 2019):
//
//   - loads and load-like operations (LD/LW/LBU and RDMSR), which under NDA
//     may be marked unsafe and restricted from waking dependents;
//   - stores, whose unresolved addresses act as speculation guards;
//   - conditional branches and indirect jumps (JAL/JALR), the steering
//     points of control-steering attacks;
//   - CLFLUSH and RDCYCLE, which attack proofs-of-concept use to prime and
//     probe timing covert channels;
//   - FENCE, a full serialization barrier used by software mitigations.
//
// Instructions are represented as structs rather than encoded words; the
// simulator is a micro-architecture model, not a binary-compatible CPU.
package isa

import "fmt"

// Reg names a general-purpose register x0..x31. x0 is hardwired to zero:
// reads return 0 and writes are discarded, as in RISC-V.
type Reg uint8

// NumGPR is the number of architectural general-purpose registers.
const NumGPR = 32

// Conventional register roles used by the assembler and code generators.
const (
	RegZero Reg = 0 // hardwired zero
	RegRA   Reg = 1 // return address (link register for calls)
	RegSP   Reg = 2 // stack pointer
	RegGP   Reg = 3 // global pointer
	RegTP   Reg = 4 // thread pointer
	RegT0   Reg = 5 // temporaries t0..t2 = x5..x7
	RegT1   Reg = 6
	RegT2   Reg = 7
	RegS0   Reg = 8 // saved s0..s1 = x8..x9
	RegS1   Reg = 9
	RegA0   Reg = 10 // arguments/results a0..a7 = x10..x17
	RegA1   Reg = 11
	RegA2   Reg = 12
	RegA3   Reg = 13
	RegA4   Reg = 14
	RegA5   Reg = 15
	RegA6   Reg = 16
	RegA7   Reg = 17
	RegS2   Reg = 18 // saved s2..s11 = x18..x27
	RegS3   Reg = 19
	RegS4   Reg = 20
	RegS5   Reg = 21
	RegS6   Reg = 22
	RegS7   Reg = 23
	RegS8   Reg = 24
	RegS9   Reg = 25
	RegS10  Reg = 26
	RegS11  Reg = 27
	RegT3   Reg = 28 // temporaries t3..t6 = x28..x31
	RegT4   Reg = 29
	RegT5   Reg = 30
	RegT6   Reg = 31
)

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumGPR }

// String returns the canonical xN name of the register.
func (r Reg) String() string { return fmt.Sprintf("x%d", uint8(r)) }

// MSR numbers. The MSR file stands in for the "special registers" of the
// paper's threat model (§4.3): AVX state abused by LazyFP and the
// model-specific registers abused by Meltdown v3a. RDMSR/WRMSR address this
// file by immediate.
const (
	MSRTrapHandler uint16 = 0x00 // PC of the fault handler; 0 = fault halts the machine
	MSRTrapCause   uint16 = 0x01 // cause of the last fault (FaultKind)
	MSRTrapAddr    uint16 = 0x02 // faulting address or PC of the last fault
	MSRScratch     uint16 = 0x03 // scratch register for software use
	MSRSecretKey   uint16 = 0x10 // a privileged secret (the LazyFP/v3a analogue)
	NumMSR                = 0x20
)

// Op enumerates the instruction opcodes.
type Op uint8

// Opcode space. Register-register ALU ops read Rs1 and Rs2 and write Rd.
// Immediate ALU ops read Rs1 and Imm. Loads read memory at Rs1+Imm into Rd.
// Stores write Rs2 to memory at Rs1+Imm. Conditional branches compare Rs1
// with Rs2 and jump to the absolute address Imm (the assembler resolves
// labels to absolute byte addresses).
const (
	OpInvalid Op = iota // unknown opcode; stalls dispatch if fetched on a wrong path

	// ALU register-register.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpSlt  // Rd = (int64(Rs1) < int64(Rs2)) ? 1 : 0
	OpSltu // Rd = (Rs1 < Rs2) ? 1 : 0
	OpMul
	OpDiv // signed; division by zero yields -1 (all ones), as in RISC-V
	OpRem // signed; remainder by zero yields Rs1

	// ALU register-immediate.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSrai
	OpSlti
	OpSltiu
	OpLui // Rd = Imm (full 64-bit immediate load; the assembler's "li")

	// Memory.
	OpLd  // 64-bit load
	OpLw  // 32-bit zero-extending load
	OpLbu // 8-bit zero-extending load
	OpSd  // 64-bit store
	OpSw  // 32-bit store
	OpSb  // 8-bit store

	// Control flow. Branch targets are absolute addresses in Imm.
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu
	OpJal  // Rd = PC+4; PC = Imm. Rd=ra is a call; Rd=x0 is a plain jump.
	OpJalr // Rd = PC+4; PC = (Rs1+Imm) &^ 1. Rs1=ra,Rd=x0 is a return.

	// System.
	OpRdcycle // Rd = current cycle count (rdtscp analogue; quasi-serializing)
	OpRdmsr   // Rd = MSR[Imm]; load-like for NDA purposes; privileged MSRs fault in user mode
	OpWrmsr   // MSR[Imm] = Rs1
	OpClflush // flush the cache line containing Rs1+Imm from the whole hierarchy
	OpFence   // full barrier: issues only when all older instructions completed
	OpSpecOff // disable speculative fetch past this point until OpSpecOn retires (§8, Listing 4)
	OpSpecOn  // re-enable speculation
	OpNop
	OpHalt // stop the machine

	numOps
)

var opNames = [numOps]string{
	OpInvalid: "invalid",
	OpAdd:     "add", OpSub: "sub", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpSll: "sll", OpSrl: "srl", OpSra: "sra", OpSlt: "slt", OpSltu: "sltu",
	OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAddi: "addi", OpAndi: "andi", OpOri: "ori", OpXori: "xori",
	OpSlli: "slli", OpSrli: "srli", OpSrai: "srai", OpSlti: "slti", OpSltiu: "sltiu",
	OpLui: "li",
	OpLd:  "ld", OpLw: "lw", OpLbu: "lbu", OpSd: "sd", OpSw: "sw", OpSb: "sb",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge", OpBltu: "bltu", OpBgeu: "bgeu",
	OpJal: "jal", OpJalr: "jalr",
	OpRdcycle: "rdcycle", OpRdmsr: "rdmsr", OpWrmsr: "wrmsr",
	OpClflush: "clflush", OpFence: "fence",
	OpSpecOff: "specoff", OpSpecOn: "specon",
	OpNop: "nop", OpHalt: "halt",
}

// String returns the assembler mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode other than OpInvalid.
func (o Op) Valid() bool { return o > OpInvalid && o < numOps }

// InstBytes is the architectural size of one instruction.
const InstBytes = 4

// Inst is one decoded instruction.
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int64
}

// Class partitions opcodes into the categories the NDA policies distinguish.
type Class uint8

const (
	ClassOther  Class = iota // ALU, fences, system ops with no special role
	ClassLoad                // memory loads and load-like ops (RDMSR): §5.2/§5.3
	ClassStore               // memory stores: unresolved addresses guard younger loads
	ClassBranch              // conditional branches and indirect jumps: steering points
)

// ClassOf returns the NDA class of the instruction. Direct unconditional
// jumps (JAL) are ClassOther: their target is architecturally determined at
// decode, so they are never unresolved and cannot be mis-steered. JALR is a
// branch (indirect target predicted via BTB/RAS). RDMSR is load-like per
// §4.3 of the paper.
func ClassOf(i Inst) Class {
	switch i.Op {
	case OpLd, OpLw, OpLbu, OpRdmsr:
		return ClassLoad
	case OpSd, OpSw, OpSb:
		return ClassStore
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu, OpJalr:
		return ClassBranch
	default:
		return ClassOther
	}
}

// IsLoad reports whether the instruction reads data memory.
func (i Inst) IsLoad() bool { return i.Op == OpLd || i.Op == OpLw || i.Op == OpLbu }

// IsStore reports whether the instruction writes data memory.
func (i Inst) IsStore() bool { return i.Op == OpSd || i.Op == OpSw || i.Op == OpSb }

// MemBytes returns the access width of a load or store, or 0.
func (i Inst) MemBytes() int {
	switch i.Op {
	case OpLd, OpSd:
		return 8
	case OpLw, OpSw:
		return 4
	case OpLbu, OpSb:
		return 1
	}
	return 0
}

// IsCondBranch reports whether the instruction is a conditional branch.
func (i Inst) IsCondBranch() bool {
	switch i.Op {
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return true
	}
	return false
}

// IsIndirect reports whether the instruction's target comes from a register.
func (i Inst) IsIndirect() bool { return i.Op == OpJalr }

// IsCall reports whether the instruction is a call by convention (writes ra).
func (i Inst) IsCall() bool { return (i.Op == OpJal || i.Op == OpJalr) && i.Rd == RegRA }

// IsReturn reports whether the instruction is a return by convention
// (jalr x0, 0(ra)).
func (i Inst) IsReturn() bool { return i.Op == OpJalr && i.Rd == RegZero && i.Rs1 == RegRA }

// IsControl reports whether the instruction can redirect fetch.
func (i Inst) IsControl() bool { return i.IsCondBranch() || i.Op == OpJal || i.Op == OpJalr }

// WritesReg reports whether the instruction produces a GPR result, and which.
// Writes to x0 are reported as no-writes.
func (i Inst) WritesReg() (Reg, bool) {
	switch i.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpSll, OpSrl, OpSra, OpSlt, OpSltu,
		OpMul, OpDiv, OpRem,
		OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti, OpSltiu, OpLui,
		OpLd, OpLw, OpLbu, OpJal, OpJalr, OpRdcycle, OpRdmsr:
		if i.Rd != RegZero {
			return i.Rd, true
		}
	}
	return 0, false
}

// SrcRegs returns the source registers the instruction reads. Reads of x0
// are included (they are always ready and read as zero).
func (i Inst) SrcRegs() (srcs [2]Reg, n int) {
	switch i.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpSll, OpSrl, OpSra, OpSlt, OpSltu,
		OpMul, OpDiv, OpRem,
		OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		srcs[0], srcs[1] = i.Rs1, i.Rs2
		return srcs, 2
	case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti, OpSltiu,
		OpLd, OpLw, OpLbu, OpJalr, OpWrmsr, OpClflush:
		srcs[0] = i.Rs1
		return srcs, 1
	case OpSd, OpSw, OpSb:
		srcs[0], srcs[1] = i.Rs1, i.Rs2 // address base, data
		return srcs, 2
	}
	return srcs, 0
}

// HasSideEffects reports whether the op touches state beyond its destination
// register (memory, MSRs, caches, or control flow).
func (i Inst) HasSideEffects() bool {
	return i.IsStore() || i.IsControl() || i.Op == OpWrmsr || i.Op == OpClflush ||
		i.Op == OpHalt || i.Op == OpSpecOff || i.Op == OpSpecOn
}

// String renders the instruction in assembler syntax.
func (i Inst) String() string {
	switch i.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpSll, OpSrl, OpSra, OpSlt, OpSltu, OpMul, OpDiv, OpRem:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, i.Rs2)
	case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti, OpSltiu:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case OpLui:
		return fmt.Sprintf("li %s, %d", i.Rd, i.Imm)
	case OpLd, OpLw, OpLbu:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Rs1)
	case OpSd, OpSw, OpSb:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return fmt.Sprintf("%s %s, %s, 0x%x", i.Op, i.Rs1, i.Rs2, uint64(i.Imm))
	case OpJal:
		return fmt.Sprintf("jal %s, 0x%x", i.Rd, uint64(i.Imm))
	case OpJalr:
		return fmt.Sprintf("jalr %s, %d(%s)", i.Rd, i.Imm, i.Rs1)
	case OpRdcycle:
		return fmt.Sprintf("rdcycle %s", i.Rd)
	case OpRdmsr:
		return fmt.Sprintf("rdmsr %s, 0x%x", i.Rd, uint64(i.Imm))
	case OpWrmsr:
		return fmt.Sprintf("wrmsr 0x%x, %s", uint64(i.Imm), i.Rs1)
	case OpClflush:
		return fmt.Sprintf("clflush %d(%s)", i.Imm, i.Rs1)
	default:
		return i.Op.String()
	}
}
