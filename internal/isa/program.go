package isa

import "fmt"

// DefaultTextBase is where program text is placed unless overridden.
const DefaultTextBase uint64 = 0x1000

// Segment is a chunk of initialized data memory.
type Segment struct {
	Addr   uint64
	Bytes  []byte
	Kernel bool // if set, the pages covering this segment are kernel-only
}

// Program is an assembled or generated program: a text segment of decoded
// instructions plus initialized data segments and a symbol table.
type Program struct {
	TextBase uint64
	Insts    []Inst
	Entry    uint64
	Data     []Segment
	Symbols  map[string]uint64
}

// At returns the instruction at byte address pc, if pc falls inside the text
// segment and is instruction-aligned. Fetches outside the text segment (as
// can happen on speculative wrong paths) return ok=false.
func (p *Program) At(pc uint64) (Inst, bool) {
	if pc < p.TextBase || (pc-p.TextBase)%InstBytes != 0 {
		return Inst{}, false
	}
	idx := (pc - p.TextBase) / InstBytes
	if idx >= uint64(len(p.Insts)) {
		return Inst{}, false
	}
	return p.Insts[idx], true
}

// End returns the first byte address past the text segment.
func (p *Program) End() uint64 {
	return p.TextBase + uint64(len(p.Insts))*InstBytes
}

// Symbol returns the address of a label defined by the program.
func (p *Program) Symbol(name string) (uint64, error) {
	if a, ok := p.Symbols[name]; ok {
		return a, nil
	}
	return 0, fmt.Errorf("isa: undefined symbol %q", name)
}

// MustSymbol is Symbol but panics on unknown names; for use in tests and
// generators where the label is statically known to exist.
func (p *Program) MustSymbol(name string) uint64 {
	a, err := p.Symbol(name)
	if err != nil {
		panic(err)
	}
	return a
}
