package isa

import (
	"testing"
	"testing/quick"
)

func TestOpStrings(t *testing.T) {
	for op := OpInvalid; op < numOps; op++ {
		if op.String() == "" {
			t.Errorf("op %d has empty name", op)
		}
	}
	if OpAdd.String() != "add" || OpJalr.String() != "jalr" {
		t.Errorf("unexpected mnemonics: %q %q", OpAdd.String(), OpJalr.String())
	}
	if Op(250).String() != "op(250)" {
		t.Errorf("out-of-range op name = %q", Op(250).String())
	}
}

func TestOpValid(t *testing.T) {
	if OpInvalid.Valid() {
		t.Error("OpInvalid must not be valid")
	}
	if !OpAdd.Valid() || !OpHalt.Valid() {
		t.Error("real ops must be valid")
	}
	if Op(200).Valid() {
		t.Error("out-of-range op must not be valid")
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		in   Inst
		want Class
	}{
		{Inst{Op: OpLd}, ClassLoad},
		{Inst{Op: OpLw}, ClassLoad},
		{Inst{Op: OpLbu}, ClassLoad},
		{Inst{Op: OpRdmsr}, ClassLoad}, // §4.3: rdmsr treated like a load
		{Inst{Op: OpSd}, ClassStore},
		{Inst{Op: OpSb}, ClassStore},
		{Inst{Op: OpBeq}, ClassBranch},
		{Inst{Op: OpJalr}, ClassBranch},
		{Inst{Op: OpJal}, ClassOther}, // direct jump: never unresolved
		{Inst{Op: OpAdd}, ClassOther},
		{Inst{Op: OpClflush}, ClassOther},
	}
	for _, c := range cases {
		if got := ClassOf(c.in); got != c.want {
			t.Errorf("ClassOf(%v) = %v, want %v", c.in.Op, got, c.want)
		}
	}
}

func TestCallReturnConventions(t *testing.T) {
	call := Inst{Op: OpJal, Rd: RegRA, Imm: 0x2000}
	if !call.IsCall() || call.IsReturn() {
		t.Error("jal ra is a call")
	}
	ret := Inst{Op: OpJalr, Rd: RegZero, Rs1: RegRA}
	if !ret.IsReturn() || ret.IsCall() {
		t.Error("jalr x0, 0(ra) is a return")
	}
	indirect := Inst{Op: OpJalr, Rd: RegRA, Rs1: RegT0}
	if !indirect.IsCall() || indirect.IsReturn() {
		t.Error("jalr ra, 0(t0) is an indirect call")
	}
}

func TestWritesRegZeroDiscarded(t *testing.T) {
	i := Inst{Op: OpAdd, Rd: RegZero, Rs1: RegT0, Rs2: RegT1}
	if _, ok := i.WritesReg(); ok {
		t.Error("writes to x0 must be discarded")
	}
	i.Rd = RegT2
	if rd, ok := i.WritesReg(); !ok || rd != RegT2 {
		t.Error("add must report its destination")
	}
	if _, ok := (Inst{Op: OpSd, Rs2: RegT0}).WritesReg(); ok {
		t.Error("stores write no register")
	}
	if _, ok := (Inst{Op: OpBeq}).WritesReg(); ok {
		t.Error("branches write no register")
	}
}

func TestSrcRegs(t *testing.T) {
	srcs, n := (Inst{Op: OpSd, Rs1: RegSP, Rs2: RegA0}).SrcRegs()
	if n != 2 || srcs[0] != RegSP || srcs[1] != RegA0 {
		t.Errorf("store sources = %v/%d", srcs, n)
	}
	_, n = (Inst{Op: OpLui}).SrcRegs()
	if n != 0 {
		t.Errorf("lui has no sources, got %d", n)
	}
	srcs, n = (Inst{Op: OpJalr, Rs1: RegT0}).SrcRegs()
	if n != 1 || srcs[0] != RegT0 {
		t.Errorf("jalr sources = %v/%d", srcs, n)
	}
}

func TestMemBytes(t *testing.T) {
	for _, c := range []struct {
		op   Op
		want int
	}{{OpLd, 8}, {OpLw, 4}, {OpLbu, 1}, {OpSd, 8}, {OpSw, 4}, {OpSb, 1}, {OpAdd, 0}} {
		if got := (Inst{Op: c.op}).MemBytes(); got != c.want {
			t.Errorf("MemBytes(%v) = %d, want %d", c.op, got, c.want)
		}
	}
}

func TestEvalALUBasics(t *testing.T) {
	cases := []struct {
		op      Op
		a, b, w uint64
	}{
		{OpAdd, 3, 4, 7},
		{OpSub, 3, 4, ^uint64(0)},
		{OpAnd, 0b1100, 0b1010, 0b1000},
		{OpOr, 0b1100, 0b1010, 0b1110},
		{OpXor, 0b1100, 0b1010, 0b0110},
		{OpSll, 1, 65, 2}, // shift amount masked to 6 bits
		{OpSrl, 0x8000000000000000, 63, 1},
		{OpSra, 0x8000000000000000, 63, ^uint64(0)},
		{OpSlt, ^uint64(0), 0, 1}, // -1 < 0 signed
		{OpSltu, ^uint64(0), 0, 0},
		{OpMul, 7, 6, 42},
		{OpLui, 99, 1234, 1234},
	}
	for _, c := range cases {
		if got := EvalALU(c.op, c.a, c.b); got != c.w {
			t.Errorf("EvalALU(%v, %#x, %#x) = %#x, want %#x", c.op, c.a, c.b, got, c.w)
		}
	}
}

func TestEvalALUDivisionEdgeCases(t *testing.T) {
	if got := EvalALU(OpDiv, 42, 0); got != ^uint64(0) {
		t.Errorf("div by zero = %#x, want all-ones", got)
	}
	if got := EvalALU(OpRem, 42, 0); got != 42 {
		t.Errorf("rem by zero = %d, want dividend", got)
	}
	minInt := uint64(1) << 63
	if got := EvalALU(OpDiv, minInt, ^uint64(0)); got != minInt {
		t.Errorf("INT64_MIN / -1 = %#x, want INT64_MIN", got)
	}
	if got := EvalALU(OpRem, minInt, ^uint64(0)); got != 0 {
		t.Errorf("INT64_MIN %% -1 = %#x, want 0", got)
	}
	if got := EvalALU(OpDiv, 7, ^uint64(0)); got != ^uint64(6) { // 7 / -1 = -7
		t.Errorf("7 / -1 = %#x, want -7", got)
	}
}

func TestEvalALUMatchesGoSemantics(t *testing.T) {
	f := func(a, b uint64) bool {
		if b == 0 || (int64(a) == -1<<63 && int64(b) == -1) {
			return true // edge cases covered above
		}
		return EvalALU(OpDiv, a, b) == uint64(int64(a)/int64(b)) &&
			EvalALU(OpRem, a, b) == uint64(int64(a)%int64(b)) &&
			EvalALU(OpAdd, a, b) == a+b &&
			EvalALU(OpXor, a, b) == a^b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalBranch(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want bool
	}{
		{OpBeq, 5, 5, true},
		{OpBne, 5, 5, false},
		{OpBlt, ^uint64(0), 0, true}, // -1 < 0 signed
		{OpBltu, ^uint64(0), 0, false},
		{OpBge, 0, ^uint64(0), true},
		{OpBgeu, 0, ^uint64(0), false},
	}
	for _, c := range cases {
		if got := EvalBranch(c.op, c.a, c.b); got != c.want {
			t.Errorf("EvalBranch(%v, %#x, %#x) = %v", c.op, c.a, c.b, got)
		}
	}
}

func TestEvalBranchComplementary(t *testing.T) {
	f := func(a, b uint64) bool {
		return EvalBranch(OpBeq, a, b) != EvalBranch(OpBne, a, b) &&
			EvalBranch(OpBlt, a, b) != EvalBranch(OpBge, a, b) &&
			EvalBranch(OpBltu, a, b) != EvalBranch(OpBgeu, a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrivilegedMSR(t *testing.T) {
	if PrivilegedMSR(MSRTrapHandler) || PrivilegedMSR(MSRScratch) {
		t.Error("trap/scratch MSRs must be user-accessible")
	}
	if !PrivilegedMSR(MSRSecretKey) {
		t.Error("the secret key MSR must be privileged")
	}
}

func TestProgramAt(t *testing.T) {
	p := &Program{
		TextBase: 0x1000,
		Insts:    []Inst{{Op: OpNop}, {Op: OpHalt}},
	}
	if _, ok := p.At(0x0FFC); ok {
		t.Error("fetch below text must fail")
	}
	if _, ok := p.At(0x1002); ok {
		t.Error("misaligned fetch must fail")
	}
	if in, ok := p.At(0x1004); !ok || in.Op != OpHalt {
		t.Error("aligned in-range fetch must succeed")
	}
	if _, ok := p.At(0x1008); ok {
		t.Error("fetch past end must fail")
	}
	if p.End() != 0x1008 {
		t.Errorf("End = %#x", p.End())
	}
}

func TestProgramSymbols(t *testing.T) {
	p := &Program{Symbols: map[string]uint64{"buf": 0x2000}}
	if a, err := p.Symbol("buf"); err != nil || a != 0x2000 {
		t.Errorf("Symbol(buf) = %#x, %v", a, err)
	}
	if _, err := p.Symbol("nope"); err == nil {
		t.Error("undefined symbol must error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSymbol must panic on unknown name")
		}
	}()
	p.MustSymbol("nope")
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpAdd, Rd: 5, Rs1: 6, Rs2: 7}, "add x5, x6, x7"},
		{Inst{Op: OpAddi, Rd: 5, Rs1: 6, Imm: -4}, "addi x5, x6, -4"},
		{Inst{Op: OpLd, Rd: 5, Rs1: 2, Imm: 16}, "ld x5, 16(x2)"},
		{Inst{Op: OpSd, Rs1: 2, Rs2: 5, Imm: 8}, "sd x5, 8(x2)"},
		{Inst{Op: OpBeq, Rs1: 5, Rs2: 6, Imm: 0x1000}, "beq x5, x6, 0x1000"},
		{Inst{Op: OpHalt}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestInstPredicates(t *testing.T) {
	if !(Inst{Op: OpLd}).IsLoad() || (Inst{Op: OpSd}).IsLoad() {
		t.Error("IsLoad")
	}
	if !(Inst{Op: OpSb}).IsStore() || (Inst{Op: OpLbu}).IsStore() {
		t.Error("IsStore")
	}
	if !(Inst{Op: OpBgeu}).IsCondBranch() || (Inst{Op: OpJal}).IsCondBranch() {
		t.Error("IsCondBranch")
	}
	if !(Inst{Op: OpJalr}).IsIndirect() || (Inst{Op: OpJal}).IsIndirect() {
		t.Error("IsIndirect")
	}
	for _, op := range []Op{OpBeq, OpJal, OpJalr} {
		if !(Inst{Op: op}).IsControl() {
			t.Errorf("%v must be control", op)
		}
	}
	if (Inst{Op: OpAdd}).IsControl() {
		t.Error("add is not control")
	}
}

func TestHasSideEffects(t *testing.T) {
	effectful := []Op{OpSd, OpBeq, OpJal, OpJalr, OpWrmsr, OpClflush, OpHalt, OpSpecOff, OpSpecOn}
	for _, op := range effectful {
		if !(Inst{Op: op}).HasSideEffects() {
			t.Errorf("%v must have side effects", op)
		}
	}
	for _, op := range []Op{OpAdd, OpLd, OpRdcycle, OpNop} {
		if (Inst{Op: op}).HasSideEffects() {
			t.Errorf("%v must not have (architectural) side effects", op)
		}
	}
}

func TestRegValid(t *testing.T) {
	if !Reg(0).Valid() || !Reg(31).Valid() || Reg(32).Valid() {
		t.Error("Reg.Valid")
	}
	if Reg(7).String() != "x7" {
		t.Error("Reg.String")
	}
}

func TestIsALUAndOperandB(t *testing.T) {
	for _, op := range []Op{OpAdd, OpAddi, OpLui, OpSrai, OpRem} {
		if !IsALU(op) {
			t.Errorf("%v must be ALU", op)
		}
	}
	for _, op := range []Op{OpLd, OpBeq, OpJal, OpFence, OpHalt} {
		if IsALU(op) {
			t.Errorf("%v must not be ALU", op)
		}
	}
	if ALUOperandB(Inst{Op: OpAddi, Imm: 7}, 99) != 7 {
		t.Error("immediate forms use Imm")
	}
	if ALUOperandB(Inst{Op: OpAdd, Imm: 7}, 99) != 99 {
		t.Error("register forms use rs2")
	}
}

func TestEvalPanicsOnWrongOp(t *testing.T) {
	for _, f := range []func(){
		func() { EvalALU(OpLd, 1, 2) },
		func() { EvalBranch(OpAdd, 1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFaultKindStrings(t *testing.T) {
	for f, want := range map[FaultKind]string{
		FaultNone:         "none",
		FaultKernelLoad:   "kernel-load",
		FaultKernelStore:  "kernel-store",
		FaultPrivilegeMSR: "privileged-msr",
		FaultBadFetch:     "bad-fetch",
		FaultBadOpcode:    "bad-opcode",
		FaultKind(99):     "fault(?)",
	} {
		if f.String() != want {
			t.Errorf("%d.String() = %q, want %q", f, f.String(), want)
		}
	}
}

func TestInstStringMoreForms(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpLui, Rd: 5, Imm: -7}, "li x5, -7"},
		{Inst{Op: OpJal, Rd: 1, Imm: 0x2000}, "jal x1, 0x2000"},
		{Inst{Op: OpJalr, Rd: 0, Rs1: 1}, "jalr x0, 0(x1)"},
		{Inst{Op: OpRdcycle, Rd: 6}, "rdcycle x6"},
		{Inst{Op: OpRdmsr, Rd: 6, Imm: 0x10}, "rdmsr x6, 0x10"},
		{Inst{Op: OpWrmsr, Rs1: 6, Imm: 3}, "wrmsr 0x3, x6"},
		{Inst{Op: OpClflush, Rs1: 2, Imm: 64}, "clflush 64(x2)"},
		{Inst{Op: OpFence}, "fence"},
		{Inst{Op: OpNop}, "nop"},
		{Inst{Op: OpSlli, Rd: 5, Rs1: 6, Imm: 3}, "slli x5, x6, 3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
