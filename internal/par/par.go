// Package par provides the worker pool the evaluation drivers use to fan
// independent simulations — the (policy, workload, sample) tuples of the
// SMARTS sweep and the (attack, policy) cells of the security matrix —
// out over the machine's cores.
//
// The pool is built for deterministic aggregation: jobs are identified by
// index, derive every input from that index, and write results only into
// index-addressed slots supplied by the caller. Under that contract the
// aggregate outcome is bit-identical for any worker count, because no job
// can observe scheduling order.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count setting: n > 0 is used as given; anything
// else means one worker per available CPU (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes n independent jobs, indexed 0..n-1, on up to workers
// goroutines (workers <= 0 means Workers(0)). Indices are handed out in
// ascending order, so with one worker the jobs run strictly sequentially.
//
// On failure the pool cancels the outstanding work: no queued job starts
// after an error is recorded, in-flight jobs run to completion, and Run
// returns the lowest-indexed error among the jobs that ran. With a single
// worker that is exactly the first error, matching a serial loop.
func Run(n, workers int, job func(i int) error) error {
	return RunCtx(context.Background(), n, workers, job)
}

// Sem is a counting semaphore with context-aware acquisition. The dispatch
// layers use it to bound in-flight work per resource — one Sem per remote
// worker caps how many cells the coordinator may have outstanding there —
// the same way the pool's worker count bounds local fan-out.
type Sem struct {
	ch chan struct{}
}

// NewSem returns a semaphore with n slots (n < 1 is treated as 1).
func NewSem(n int) *Sem {
	if n < 1 {
		n = 1
	}
	return &Sem{ch: make(chan struct{}, n)}
}

// Acquire takes a slot, blocking until one frees or ctx ends.
func (s *Sem) Acquire(ctx context.Context) error {
	select {
	case s.ch <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot only if one is free right now.
func (s *Sem) TryAcquire() bool {
	select {
	case s.ch <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release frees a slot taken by Acquire or TryAcquire.
func (s *Sem) Release() { <-s.ch }

// InUse reports how many slots are currently held (a queue-depth gauge).
func (s *Sem) InUse() int { return len(s.ch) }

// Cap reports the slot count.
func (s *Sem) Cap() int { return cap(s.ch) }

// RunCtx is Run with cancellation: once ctx is done, no queued job starts.
// In-flight jobs run to completion unless they observe ctx themselves (the
// simulation drivers pass ctx.Done() down to the cores, so long cells stop
// mid-simulation too). Job errors take precedence over the context error —
// RunCtx returns the lowest-indexed job error if any job failed, otherwise
// ctx.Err() if the context ended the run early, otherwise nil.
func RunCtx(ctx context.Context, n, workers int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	p := &pool{ctx: ctx, n: n, errs: make([]error, n), job: job}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.drain()
		}()
	}
	wg.Wait()
	for _, err := range p.errs {
		if err != nil {
			return err
		}
	}
	if p.cancelled.Load() {
		return ctx.Err()
	}
	return nil
}

// pool is the shared fan-out state of one RunCtx run: the claim counter
// the workers race on, the failure/cancellation latches, and the
// index-addressed error slots.
type pool struct {
	ctx       context.Context
	n         int
	next      atomic.Int64
	failed    atomic.Bool
	cancelled atomic.Bool
	errs      []error
	job       func(i int) error
}

// drain is one worker's slot fold: claim ascending indices off the shared
// counter and run each job into its own slot until the work runs out, a
// job fails, or the context ends. Every sweep cell and matrix cell in the
// repo funnels through this loop, so it must stay allocation-free.
//
//ndavet:hotpath
func (p *pool) drain() {
	for !p.failed.Load() {
		//ndavet:allow alloclint:call context.Err on stdlib contexts is allocation-free; the interface dispatch is opaque to the analyzer
		if p.ctx.Err() != nil {
			p.cancelled.Store(true)
			return
		}
		i := int(p.next.Add(1)) - 1
		if i >= p.n {
			return
		}
		//ndavet:allow alloclint:call the job func is the caller's fold; measured hot windows pass allocation-free jobs
		if err := p.job(i); err != nil {
			p.errs[i] = err
			p.failed.Store(true)
			return
		}
	}
}
