package par

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if Workers(4) != 4 {
		t.Error("explicit count must be honored")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("auto count must be at least 1")
	}
}

func TestRunAllJobs(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 100
		hits := make([]int32, n)
		err := Run(n, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	if err := Run(0, 8, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

// TestRunSerialErrorStopsQueue pins the cancellation contract exactly in
// the deterministic single-worker case: jobs after the failing index never
// start.
func TestRunSerialErrorStopsQueue(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	err := Run(10, 1, func(i int) error {
		ran = append(ran, i)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(ran) != 4 {
		t.Fatalf("jobs ran after the error: %v", ran)
	}
}

// TestRunConcurrentErrorCancels checks that a failure seen by one worker
// stops the others from draining the queue: with the first job failing
// instantly and every other job sleeping, only the handful of jobs already
// in flight may complete.
func TestRunConcurrentErrorCancels(t *testing.T) {
	var started atomic.Int64
	err := Run(1000, 4, func(i int) error {
		started.Add(1)
		if i == 0 {
			return fmt.Errorf("job %d failed", i)
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err == nil {
		t.Fatal("error must propagate")
	}
	if n := started.Load(); n > 100 {
		t.Errorf("%d jobs started after a failure on job 0", n)
	}
}

// TestRunLowestError: with several failures among the jobs that ran, the
// lowest-indexed one is returned no matter which worker saw it first.
func TestRunLowestError(t *testing.T) {
	err := Run(8, 8, func(i int) error {
		if i >= 4 {
			return fmt.Errorf("job %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "job 4" {
		t.Fatalf("err = %v, want job 4", err)
	}
}

// TestRunCtxCancelledBeforeStart: a context that is already dead means no
// job runs at all and the context's error comes back.
func TestRunCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := RunCtx(ctx, 100, 4, func(int) error {
		t.Error("job ran under a cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunCtxCancelMidway: cancelling during the run stops the queue — with
// one worker the indices after the cancelling job never start.
func TestRunCtxCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran []int
	err := RunCtx(ctx, 10, 1, func(i int) error {
		ran = append(ran, i)
		if i == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(ran) != 4 {
		t.Fatalf("jobs ran after cancellation: %v", ran)
	}
}

// TestRunCtxJobErrorBeatsCancel: when a job fails and the context dies in
// the same run, the job's error wins — it is the more specific diagnosis.
func TestRunCtxJobErrorBeatsCancel(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := RunCtx(ctx, 10, 1, func(i int) error {
		if i == 2 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestRunCtxBackgroundMatchesRun: RunCtx under a background context is
// exactly Run.
func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	var hits atomic.Int64
	if err := RunCtx(context.Background(), 50, 8, func(int) error {
		hits.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 50 {
		t.Fatalf("ran %d of 50 jobs", hits.Load())
	}
}
