package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if Workers(4) != 4 {
		t.Error("explicit count must be honored")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("auto count must be at least 1")
	}
}

func TestRunAllJobs(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 100
		hits := make([]int32, n)
		err := Run(n, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	if err := Run(0, 8, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

// TestRunSerialErrorStopsQueue pins the cancellation contract exactly in
// the deterministic single-worker case: jobs after the failing index never
// start.
func TestRunSerialErrorStopsQueue(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	err := Run(10, 1, func(i int) error {
		ran = append(ran, i)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(ran) != 4 {
		t.Fatalf("jobs ran after the error: %v", ran)
	}
}

// TestRunConcurrentErrorCancels checks that a failure seen by one worker
// stops the others from draining the queue: with the first job failing
// instantly and every other job sleeping, only the handful of jobs already
// in flight may complete.
func TestRunConcurrentErrorCancels(t *testing.T) {
	var started atomic.Int64
	err := Run(1000, 4, func(i int) error {
		started.Add(1)
		if i == 0 {
			return fmt.Errorf("job %d failed", i)
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err == nil {
		t.Fatal("error must propagate")
	}
	if n := started.Load(); n > 100 {
		t.Errorf("%d jobs started after a failure on job 0", n)
	}
}

// TestRunLowestError: with several failures among the jobs that ran, the
// lowest-indexed one is returned no matter which worker saw it first.
func TestRunLowestError(t *testing.T) {
	err := Run(8, 8, func(i int) error {
		if i >= 4 {
			return fmt.Errorf("job %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "job 4" {
		t.Fatalf("err = %v, want job 4", err)
	}
}
