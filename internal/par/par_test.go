package par

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if Workers(4) != 4 {
		t.Error("explicit count must be honored")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("auto count must be at least 1")
	}
}

func TestRunAllJobs(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 100
		hits := make([]int32, n)
		err := Run(n, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	if err := Run(0, 8, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

// TestRunSerialErrorStopsQueue pins the cancellation contract exactly in
// the deterministic single-worker case: jobs after the failing index never
// start.
func TestRunSerialErrorStopsQueue(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	err := Run(10, 1, func(i int) error {
		ran = append(ran, i)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(ran) != 4 {
		t.Fatalf("jobs ran after the error: %v", ran)
	}
}

// TestRunConcurrentErrorCancels checks that a failure seen by one worker
// stops the others from draining the queue: with the first job failing
// instantly and every other job sleeping, only the handful of jobs already
// in flight may complete.
func TestRunConcurrentErrorCancels(t *testing.T) {
	var started atomic.Int64
	err := Run(1000, 4, func(i int) error {
		started.Add(1)
		if i == 0 {
			return fmt.Errorf("job %d failed", i)
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err == nil {
		t.Fatal("error must propagate")
	}
	if n := started.Load(); n > 100 {
		t.Errorf("%d jobs started after a failure on job 0", n)
	}
}

// TestRunLowestError: with several failures among the jobs that ran, the
// lowest-indexed one is returned no matter which worker saw it first.
func TestRunLowestError(t *testing.T) {
	err := Run(8, 8, func(i int) error {
		if i >= 4 {
			return fmt.Errorf("job %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "job 4" {
		t.Fatalf("err = %v, want job 4", err)
	}
}

// TestRunCtxCancelledBeforeStart: a context that is already dead means no
// job runs at all and the context's error comes back.
func TestRunCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := RunCtx(ctx, 100, 4, func(int) error {
		t.Error("job ran under a cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunCtxCancelMidway: cancelling during the run stops the queue — with
// one worker the indices after the cancelling job never start.
func TestRunCtxCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran []int
	err := RunCtx(ctx, 10, 1, func(i int) error {
		ran = append(ran, i)
		if i == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(ran) != 4 {
		t.Fatalf("jobs ran after cancellation: %v", ran)
	}
}

// TestRunCtxJobErrorBeatsCancel: when a job fails and the context dies in
// the same run, the job's error wins — it is the more specific diagnosis.
func TestRunCtxJobErrorBeatsCancel(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := RunCtx(ctx, 10, 1, func(i int) error {
		if i == 2 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestRunCtxBackgroundMatchesRun: RunCtx under a background context is
// exactly Run.
func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	var hits atomic.Int64
	if err := RunCtx(context.Background(), 50, 8, func(int) error {
		hits.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 50 {
		t.Fatalf("ran %d of 50 jobs", hits.Load())
	}
}

// TestSemBoundsConcurrency: a Sem with n slots never admits more than n
// concurrent holders, and Acquire respects a dead context.
func TestSemBoundsConcurrency(t *testing.T) {
	s := NewSem(3)
	if s.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", s.Cap())
	}
	var cur, peak atomic.Int64
	if err := RunCtx(context.Background(), 64, 16, func(int) error {
		if err := s.Acquire(context.Background()); err != nil {
			return err
		}
		defer s.Release()
		n := cur.Add(1)
		defer cur.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("peak concurrency %d exceeds 3 slots", p)
	}
	if s.InUse() != 0 {
		t.Errorf("InUse = %d after all releases", s.InUse())
	}

	// Full semaphore: TryAcquire refuses, Acquire honors cancellation.
	for i := 0; i < 3; i++ {
		if !s.TryAcquire() {
			t.Fatal("TryAcquire failed on free slot")
		}
	}
	if s.TryAcquire() {
		t.Fatal("TryAcquire succeeded on full semaphore")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire on full sem = %v, want context.Canceled", err)
	}
}

// TestSemMinimumOneSlot: a non-positive size still admits one holder.
func TestSemMinimumOneSlot(t *testing.T) {
	s := NewSem(0)
	if s.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", s.Cap())
	}
}
