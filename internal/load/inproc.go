package load

import (
	"context"
	"net"
	"net/http"
	"time"

	"nda/internal/serve"
)

// StartLocal starts a fully-wired in-process ndaserve instance on an
// ephemeral loopback port, for self-contained load generation (ndaload
// -inproc) and tests. The generator still talks to it over real HTTP, so
// an in-process run measures the same serving path as a remote one.
// shutdown closes the listener and drains the manager.
func StartLocal(cfg serve.Config) (base string, mgr *serve.Manager, shutdown func(), err error) {
	m := serve.NewManager(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = m.Shutdown(context.Background())
		return "", nil, nil, err
	}
	srv := &http.Server{Handler: serve.NewHandler(m)}
	//ndavet:allow leaklint:leak srv.Serve returns when the shutdown func closes the listener; the goroutine's lifetime is the server's
	go func() { _ = srv.Serve(ln) }()
	shutdown = func() {
		_ = srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), m, shutdown, nil
}
