package load

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"nda/internal/serve"
	"nda/internal/tenant"
)

func TestParseLoads(t *testing.T) {
	loads, err := ParseLoads("alice:ka:4:hot:2.5:5, bob:kb:1", MixLongtail)
	if err != nil {
		t.Fatal(err)
	}
	want := []TenantLoad{
		{Name: "alice", Key: "ka", Workers: 4, Mix: MixHot, Rate: 2.5, Weight: 5},
		{Name: "bob", Key: "kb", Workers: 1, Mix: MixLongtail, Weight: 1},
	}
	if len(loads) != len(want) {
		t.Fatalf("parsed %d loads, want %d", len(loads), len(want))
	}
	for i := range want {
		if loads[i] != want[i] {
			t.Errorf("load[%d] = %+v, want %+v", i, loads[i], want[i])
		}
	}
	// Empty fields keep defaults; an empty key is allowed (untenanted).
	loads, err = ParseLoads("solo::2::0.5", MixHot)
	if err != nil || loads[0].Key != "" || loads[0].Mix != MixHot || loads[0].Rate != 0.5 {
		t.Errorf("defaults entry = %+v (%v)", loads, err)
	}

	for _, bad := range []string{
		"", "alice", "alice:ka", "alice:ka:0", "alice:ka:-1", "alice:ka:x",
		"alice:ka:1:nosuchmix", "alice:ka:1:hot:-2", "alice:ka:1:hot:1:0",
		"alice:ka:1,alice:kb:1", ":k:1", "a:k:1:hot:1:1:extra",
	} {
		if _, err := ParseLoads(bad, MixHot); err == nil {
			t.Errorf("ParseLoads(%q) accepted, want error", bad)
		}
	}
}

func TestParseMixAndAwait(t *testing.T) {
	if m, err := ParseMix(""); err != nil || m != MixHot {
		t.Errorf("ParseMix(\"\") = %v, %v", m, err)
	}
	if _, err := ParseMix("warmish"); err == nil {
		t.Error("bad mix accepted")
	}
	if a, err := ParseAwait(""); err != nil || a != AwaitWait {
		t.Errorf("ParseAwait(\"\") = %v, %v", a, err)
	}
	if _, err := ParseAwait("push"); err == nil {
		t.Error("bad await accepted")
	}
}

func TestJain(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 1},
		{[]float64{5}, 1},
		{[]float64{3, 3, 3, 3}, 1},
		{[]float64{1, 0, 0, 0}, 0.25},
		{[]float64{0, 0}, 1},
		{[]float64{4, 1}, (5 * 5) / (2.0 * 17)},
	}
	for _, c := range cases {
		if got := Jain(c.xs); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Jain(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
}

func TestQuantiles(t *testing.T) {
	var lat []time.Duration
	for i := 100; i >= 1; i-- { // 1ms..100ms, reversed to exercise sorting
		lat = append(lat, time.Duration(i)*time.Millisecond)
	}
	q := newQuantiles(lat)
	if q.P50 != 50 || q.P95 != 95 || q.P99 != 99 || q.Max != 100 {
		t.Errorf("quantiles = %+v, want 50/95/99/100", q)
	}
	if q := newQuantiles(nil); q != (Quantiles{}) {
		t.Errorf("empty quantiles = %+v", q)
	}
}

// TestMixDeterminism: a generator replays the identical request stream for
// the same coordinates.
func TestMixDeterminism(t *testing.T) {
	for _, mix := range []Mix{MixHot, MixLongtail, MixAttack, MixGadgets, MixCancel} {
		a := &gen{mix: mix, tenantIdx: 1, workerIdx: 2}
		b := &gen{mix: mix, tenantIdx: 1, workerIdx: 2}
		for i := 0; i < 20; i++ {
			ra, rb := a.next(), b.next()
			if ra.path != rb.path || string(ra.body) != string(rb.body) {
				t.Fatalf("mix %s diverged at step %d", mix, i)
			}
		}
	}
	// Long-tail streams differ across workers (fresh cells per worker).
	a := (&gen{mix: MixLongtail, tenantIdx: 0, workerIdx: 0}).next()
	b := (&gen{mix: MixLongtail, tenantIdx: 0, workerIdx: 1}).next()
	if string(a.body) == string(b.body) {
		t.Error("longtail workers generated identical first requests")
	}
}

func TestBenchLineFormat(t *testing.T) {
	r := &Report{
		Completed:    10,
		Throughput:   123.4,
		Latency:      Quantiles{P50: 1.5, P95: 2.5, P99: 3.5, Max: 4},
		JainWeighted: 0.875,
		Tenants:      []TenantReport{{Completed: 10, avg: 2 * time.Millisecond}},
	}
	line := BenchLine("Hot", r)
	if !strings.HasPrefix(line, "BenchmarkLoadHot 10 2000000 ns/op") {
		t.Errorf("bench line = %q", line)
	}
	// benchjson's parser wants name, iterations, then (value, unit) pairs.
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		t.Errorf("bench line has %d fields (odd pairing): %q", len(fields), line)
	}
	for _, unit := range []string{"p50-ms", "p95-ms", "p99-ms", "req/s", "jain"} {
		if !strings.Contains(line, unit) {
			t.Errorf("bench line missing %s unit: %q", unit, line)
		}
	}
}

// gadgetConfig is a small server whose gadget jobs need no simulation, so
// the e2e load tests stay fast.
func gadgetConfig() serve.Config {
	return serve.Config{QueueDepth: 16, JobWorkers: 2, SimWorkers: 2}
}

// TestRunAgainstLocalServer: the closed-loop wait path end to end against
// an in-process server.
func TestRunAgainstLocalServer(t *testing.T) {
	base, _, shutdown, err := StartLocal(gadgetConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	rep, err := Run(context.Background(), Config{
		BaseURL:  base,
		Loads:    []TenantLoad{{Name: "local", Workers: 2, Mix: MixGadgets, Weight: 1}},
		Duration: 300 * time.Millisecond,
		Warmup:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 || rep.Errors != 0 {
		t.Fatalf("report = %+v, want completions and no errors", rep)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 {
		t.Errorf("latency quantiles inconsistent: %+v", rep.Latency)
	}
	if rep.Jain != 1 {
		t.Errorf("single-tenant Jain = %g, want 1", rep.Jain)
	}
	if rep.Throughput <= 0 {
		t.Errorf("throughput = %g", rep.Throughput)
	}
}

// TestRunModesAndCancelMix: poll and SSE observation plus the cancel mix
// against a tenanted in-process server — every tenant completes work, and
// the cancel tenant's jobs count as cancelled, not errors.
func TestRunModesAndCancelMix(t *testing.T) {
	cfg := gadgetConfig()
	cfg.Tenants = []tenant.Tenant{
		{Name: "alice", Key: "ka", Weight: 4},
		{Name: "bob", Key: "kb", Weight: 1},
	}
	base, _, shutdown, err := StartLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	for _, await := range []Await{AwaitPoll, AwaitSSE} {
		rep, err := Run(context.Background(), Config{
			BaseURL: base,
			Loads: []TenantLoad{
				{Name: "alice", Key: "ka", Workers: 2, Mix: MixGadgets, Weight: 4},
				{Name: "bob", Key: "kb", Workers: 1, Mix: MixCancel, Weight: 1},
			},
			Duration: 300 * time.Millisecond,
			Await:    await,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Errors > 0 {
			t.Fatalf("await %s: %d errors: %+v", await, rep.Errors, rep.Tenants)
		}
		for _, tr := range rep.Tenants {
			if tr.Completed == 0 {
				t.Errorf("await %s: tenant %s completed nothing", await, tr.Name)
			}
		}
		if rep.Tenants[1].Cancelled == 0 {
			t.Errorf("await %s: cancel mix recorded no cancellations", await)
		}
	}
}

// TestOpenLoopRate: an open-loop tenant issues roughly rate*duration
// arrivals, not as many as it can.
func TestOpenLoopRate(t *testing.T) {
	base, _, shutdown, err := StartLocal(gadgetConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	rep, err := Run(context.Background(), Config{
		BaseURL:  base,
		Loads:    []TenantLoad{{Name: "local", Workers: 2, Mix: MixGadgets, Rate: 20, Weight: 1}},
		Duration: 500 * time.Millisecond,
		Warmup:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ~10 arrivals at 20/s over 0.5s; allow generous scheduling slop but
	// prove it is not closed-loop (which would push hundreds).
	if rep.Requests < 2 || rep.Requests > 20 {
		t.Errorf("open-loop requests = %d, want ~10", rep.Requests)
	}
}

// TestSaturateSearch: the doubling search runs and reports a knee.
func TestSaturateSearch(t *testing.T) {
	base, _, shutdown, err := StartLocal(gadgetConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	sat, err := Saturate(context.Background(), Config{
		BaseURL:  base,
		Loads:    []TenantLoad{{Name: "local", Workers: 1, Mix: MixGadgets, Weight: 1}},
		Duration: 150 * time.Millisecond,
		Warmup:   true,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sat.Points) == 0 || sat.Throughput <= 0 || sat.Workers < 1 {
		t.Errorf("saturation = %+v", sat)
	}
}

func TestRunValidation(t *testing.T) {
	bad := []Config{
		{},
		{BaseURL: "http://x"},
		{BaseURL: "http://x", Loads: []TenantLoad{{Name: "a", Workers: 1}}},
		{BaseURL: "http://x", Loads: []TenantLoad{{Name: "a", Workers: 0}}, Duration: time.Second},
		{BaseURL: "http://x", Loads: []TenantLoad{{Name: "a", Workers: 1}}, Duration: time.Second, Await: "push"},
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}
