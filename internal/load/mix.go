package load

import (
	"encoding/json"
	"fmt"

	"nda/internal/serve"
)

// Mix names a request-shape profile the generator replays. Each mix is a
// deterministic function of (tenant index, worker index, sequence number),
// so a seeded run issues the identical request stream every time.
type Mix string

const (
	// MixHot replays one identical quick sweep over and over: after the
	// first completion every cell is a RAM-cache hit, so hot latency
	// measures the serving path, not the simulator.
	MixHot Mix = "hot"
	// MixLongtail issues sweeps whose sampling windows vary per request:
	// almost every submission simulates fresh cells, the realistic
	// worst case for queue pressure.
	MixLongtail Mix = "longtail"
	// MixAttack alternates small security-matrix requests.
	MixAttack Mix = "attack"
	// MixGadgets alternates static gadget censuses — no simulation at all,
	// the cheapest job kind.
	MixGadgets Mix = "gadgets"
	// MixCancel submits long-tail sweeps and cancels them immediately,
	// exercising the queue-removal path under contention.
	MixCancel Mix = "cancel"
)

// ParseMix validates a mix name; the empty string means MixHot.
func ParseMix(s string) (Mix, error) {
	switch Mix(s) {
	case "", MixHot:
		return MixHot, nil
	case MixLongtail, MixAttack, MixGadgets, MixCancel:
		return Mix(s), nil
	}
	return "", fmt.Errorf("load: unknown mix %q (want hot, longtail, attack, gadgets, or cancel)", s)
}

// request is one generated submission.
type request struct {
	path       string // "/v1/sweep", "/v1/attack", "/v1/gadgets"
	body       []byte
	cancelling bool // submit async, then DELETE the job
}

// quickSampling is the reduced methodology every generated sweep runs
// under — small enough that a cell simulates in milliseconds.
func quickSampling() serve.SamplingSpec {
	return serve.SamplingSpec{
		Quick:        true,
		WarmInsts:    2_000,
		MeasureInsts: 2_000,
		SkipInsts:    1_000,
		Intervals:    3,
	}
}

// hotSweep is the single request body MixHot replays.
func hotSweep() serve.SweepRequest {
	return serve.SweepRequest{
		Workloads: []string{"exchange2"},
		Policies:  []string{"OoO", "Permissive"},
		Sampling:  quickSampling(),
	}
}

// longtailSweep varies the warm-up window so each request resolves to
// (mostly) fresh cache keys. The offset stays bounded: simulation cost per
// cell is constant-ish, and the key space wraps after a few thousand
// distinct cells — a long tail, not an infinite one.
func longtailSweep(tenantIdx, workerIdx, seq int) serve.SweepRequest {
	s := quickSampling()
	offset := uint64(tenantIdx*1009+workerIdx*101+seq*7) % 5000
	s.WarmInsts += offset
	return serve.SweepRequest{
		Workloads: []string{"exchange2"},
		Policies:  []string{"OoO"},
		NoInOrder: true,
		Sampling:  s,
	}
}

var attackNames = []string{"spectre-v1-cache", "meltdown"}

// gen produces one tenant worker's deterministic request stream.
type gen struct {
	mix                  Mix
	tenantIdx, workerIdx int
	seq                  int
}

// next returns the worker's next request.
func (g *gen) next() request {
	seq := g.seq
	g.seq++
	switch g.mix {
	case MixLongtail:
		return request{path: "/v1/sweep", body: mustJSON(longtailSweep(g.tenantIdx, g.workerIdx, seq))}
	case MixAttack:
		return request{path: "/v1/attack", body: mustJSON(serve.AttackRequest{
			Attacks:   []string{attackNames[seq%len(attackNames)]},
			Policies:  []string{"OoO"},
			NoInOrder: true,
		})}
	case MixGadgets:
		return request{path: "/v1/gadgets", body: mustJSON(serve.GadgetsRequest{
			Programs: []string{attackNames[seq%len(attackNames)]},
		})}
	case MixCancel:
		return request{
			path:       "/v1/sweep",
			body:       mustJSON(longtailSweep(g.tenantIdx, g.workerIdx, seq)),
			cancelling: true,
		}
	default: // MixHot
		return request{path: "/v1/sweep", body: mustJSON(hotSweep())}
	}
}

// warmupRequests enumerates the distinct request bodies a mix replays, for
// the unmeasured cache-warming pass. Long-tail and cancel mixes are
// deliberately unwarmable — their point is fresh work.
func warmupRequests(mix Mix) []request {
	switch mix {
	case MixHot:
		return []request{{path: "/v1/sweep", body: mustJSON(hotSweep())}}
	case MixAttack:
		var reqs []request
		for _, a := range attackNames {
			reqs = append(reqs, request{path: "/v1/attack", body: mustJSON(serve.AttackRequest{
				Attacks: []string{a}, Policies: []string{"OoO"}, NoInOrder: true,
			})})
		}
		return reqs
	case MixGadgets:
		var reqs []request
		for _, p := range attackNames {
			reqs = append(reqs, request{path: "/v1/gadgets", body: mustJSON(serve.GadgetsRequest{Programs: []string{p}})})
		}
		return reqs
	}
	return nil
}

// mustJSON marshals a request body; the types above cannot fail.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
