// Package load is the ndaload load-generator: it replays realistic
// multi-tenant request mixes against an ndaserve instance (closed- or
// open-loop), measures per-tenant latency quantiles, throughput, and
// Jain's fairness index, and can search for the server's saturation
// throughput. The generator is a pure HTTP client — everything it knows
// about the service goes through the public API — so a run against an
// in-process server (StartLocal) and a run against a remote fleet measure
// the same code path.
package load

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Await selects how a worker observes job completion.
type Await string

const (
	// AwaitWait blocks on POST ...?wait=1 — one round trip per job, the
	// interactive-client shape.
	AwaitWait Await = "wait"
	// AwaitPoll submits async and polls GET /v1/jobs/{id} until terminal.
	AwaitPoll Await = "poll"
	// AwaitSSE submits async and consumes GET /v1/jobs/{id}?stream=1
	// until the done event.
	AwaitSSE Await = "sse"
)

// ParseAwait validates an await mode; the empty string means AwaitWait.
func ParseAwait(s string) (Await, error) {
	switch Await(s) {
	case "", AwaitWait:
		return AwaitWait, nil
	case AwaitPoll, AwaitSSE:
		return Await(s), nil
	}
	return "", fmt.Errorf("load: unknown stream mode %q (want wait, poll, or sse)", s)
}

// TenantLoad is one tenant's generator: how many concurrent workers replay
// which mix, optionally at a fixed open-loop arrival rate.
type TenantLoad struct {
	Name    string  `json:"name"`
	Key     string  `json:"key,omitempty"`  // API key; empty on untenanted servers
	Workers int     `json:"workers"`        // concurrent request loops
	Mix     Mix     `json:"mix"`            // request shape
	Rate    float64 `json:"rate,omitempty"` // arrivals/s across the tenant; 0 = closed loop
	Weight  int     `json:"weight"`         // fair-share weight, for the weighted Jain index
}

// ParseLoads parses a comma-separated -load list. Each entry is
//
//	name:key:workers[:mix[:rate[:weight]]]
//
// with empty fields keeping their defaults (mix defMix, closed loop,
// weight 1). The key may be empty for untenanted servers.
func ParseLoads(csv string, defMix Mix) ([]TenantLoad, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, errors.New("load: empty -load list")
	}
	var loads []TenantLoad
	seen := make(map[string]bool)
	for _, entry := range strings.Split(csv, ",") {
		fields := strings.Split(entry, ":")
		if len(fields) < 3 || len(fields) > 6 {
			return nil, fmt.Errorf("load: entry %q: want name:key:workers[:mix[:rate[:weight]]]", entry)
		}
		for i := range fields {
			fields[i] = strings.TrimSpace(fields[i])
		}
		l := TenantLoad{Name: fields[0], Key: fields[1], Mix: defMix, Weight: 1}
		if l.Name == "" {
			return nil, fmt.Errorf("load: entry %q: empty tenant name", entry)
		}
		if seen[l.Name] {
			return nil, fmt.Errorf("load: duplicate tenant %q", l.Name)
		}
		seen[l.Name] = true
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("load: entry %q: workers %q invalid: want a positive count", entry, fields[2])
		}
		l.Workers = n
		if len(fields) > 3 && fields[3] != "" {
			if l.Mix, err = ParseMix(fields[3]); err != nil {
				return nil, fmt.Errorf("load: entry %q: %w", entry, err)
			}
		}
		if len(fields) > 4 && fields[4] != "" {
			r, err := strconv.ParseFloat(fields[4], 64)
			if err != nil || r < 0 {
				return nil, fmt.Errorf("load: entry %q: rate %q invalid: want 0 (closed loop) or arrivals/s", entry, fields[4])
			}
			l.Rate = r
		}
		if len(fields) > 5 && fields[5] != "" {
			w, err := strconv.Atoi(fields[5])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("load: entry %q: weight %q invalid: want a positive weight", entry, fields[5])
			}
			l.Weight = w
		}
		loads = append(loads, l)
	}
	return loads, nil
}

// Config describes one load run.
type Config struct {
	BaseURL  string        // ndaserve base URL, e.g. http://127.0.0.1:8090
	Loads    []TenantLoad  // at least one
	Duration time.Duration // measured window
	Seed     int64         // stream seed (reserved; the mixes are sequence-deterministic)
	Await    Await         // completion-observation mode; "" = wait
	Warmup   bool          // replay each warmable mix once, unmeasured, before the clock starts
	Client   *http.Client  // nil = a fresh client with no global timeout
}

func (c *Config) validate() error {
	if c.BaseURL == "" {
		return errors.New("load: missing base URL")
	}
	if len(c.Loads) == 0 {
		return errors.New("load: no tenant loads")
	}
	for _, l := range c.Loads {
		if l.Workers < 1 {
			return fmt.Errorf("load: tenant %q: workers %d invalid", l.Name, l.Workers)
		}
		if l.Rate < 0 {
			return fmt.Errorf("load: tenant %q: negative rate", l.Name)
		}
	}
	if c.Duration <= 0 {
		return errors.New("load: non-positive duration")
	}
	if _, err := ParseAwait(string(c.Await)); err != nil {
		return err
	}
	return nil
}

// collector accumulates one tenant's outcomes across its workers.
type collector struct {
	mu        sync.Mutex
	lat       []time.Duration
	latSum    time.Duration
	requests  int64
	completed int64
	cancelled int64
	rejected  int64 // queue-full 429s
	quota     int64 // quota 429s
	errs      int64
	lagged    int64 // open-loop arrivals dropped because every worker was busy
}

// outcome classifies one request's fate.
type outcome int

const (
	outOK outcome = iota
	outCancelled
	outRejected
	outQuota
	outErr
)

// runner executes one tenant's workers against the server.
type runner struct {
	cfg    *Config
	load   TenantLoad
	idx    int
	client *http.Client
	col    *collector
}

// Run executes the configured load and reports what happened. The context
// bounds the whole run (a cancelled context ends it early but still
// produces a report over what completed).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Await == "" {
		cfg.Await = AwaitWait
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}

	if cfg.Warmup {
		if err := warmup(ctx, client, &cfg); err != nil {
			return nil, fmt.Errorf("load: warmup: %w", err)
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	//ndavet:allow detlint load generation measures the serving path's wall-clock latency by design
	start := time.Now()

	cols := make([]*collector, len(cfg.Loads))
	var wg sync.WaitGroup
	for i, l := range cfg.Loads {
		cols[i] = &collector{}
		r := &runner{cfg: &cfg, load: l, idx: i, client: client, col: cols[i]}
		if l.Rate > 0 {
			r.runOpen(runCtx, &wg)
		} else {
			r.runClosed(runCtx, &wg)
		}
	}
	wg.Wait()
	//ndavet:allow detlint load generation measures the serving path's wall-clock latency by design
	elapsed := time.Since(start)
	return buildReport(cfg, cols, elapsed), nil
}

// runClosed starts the tenant's closed-loop workers: each issues its next
// request as soon as the previous one resolves.
func (r *runner) runClosed(ctx context.Context, wg *sync.WaitGroup) {
	for w := 0; w < r.load.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := &gen{mix: r.load.Mix, tenantIdx: r.idx, workerIdx: w}
			for ctx.Err() == nil {
				r.one(ctx, g.next())
			}
		}(w)
	}
}

// runOpen starts an open-loop dispatcher ticking at the tenant's arrival
// rate plus workers consuming its arrivals. Arrivals that find every
// worker busy and the backlog full are dropped and counted as lagged —
// the open-loop saturation signal.
func (r *runner) runOpen(ctx context.Context, wg *sync.WaitGroup) {
	arrivals := make(chan struct{}, r.load.Workers*4)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(arrivals)
		interval := time.Duration(float64(time.Second) / r.load.Rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				select {
				case arrivals <- struct{}{}:
				default:
					r.col.mu.Lock()
					r.col.lagged++
					r.col.mu.Unlock()
				}
			}
		}
	}()
	for w := 0; w < r.load.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := &gen{mix: r.load.Mix, tenantIdx: r.idx, workerIdx: w}
			for range arrivals {
				if ctx.Err() != nil {
					return
				}
				r.one(ctx, g.next())
			}
		}(w)
	}
}

// one issues a single request, waits for its completion per the await
// mode, and records the outcome. 429s honor Retry-After (bounded) before
// the worker continues.
func (r *runner) one(ctx context.Context, req request) {
	//ndavet:allow detlint load generation measures the serving path's wall-clock latency by design
	t0 := time.Now()
	out, retryAfter := r.issue(ctx, req)
	//ndavet:allow detlint load generation measures the serving path's wall-clock latency by design
	d := time.Since(t0)
	if out == outErr && ctx.Err() != nil {
		return // the run window closed mid-request: not an error, not a sample
	}

	r.col.mu.Lock()
	r.col.requests++
	switch out {
	case outOK:
		r.col.completed++
		r.col.lat = append(r.col.lat, d)
		r.col.latSum += d
	case outCancelled:
		r.col.completed++
		r.col.cancelled++
		r.col.lat = append(r.col.lat, d)
		r.col.latSum += d
	case outRejected:
		r.col.rejected++
	case outQuota:
		r.col.quota++
	case outErr:
		r.col.errs++
	}
	r.col.mu.Unlock()

	if out == outRejected || out == outQuota {
		if retryAfter <= 0 {
			retryAfter = 5 * time.Millisecond
		}
		if retryAfter > 2*time.Second {
			retryAfter = 2 * time.Second
		}
		select {
		case <-ctx.Done():
		case <-time.After(retryAfter):
		}
	}
}

// issue performs the HTTP exchange for one request.
func (r *runner) issue(ctx context.Context, req request) (outcome, time.Duration) {
	url := r.cfg.BaseURL + req.path
	if r.cfg.Await == AwaitWait && !req.cancelling {
		url += "?wait=1"
	}
	resp, body, err := r.do(ctx, http.MethodPost, url, req.body)
	if err != nil {
		return outErr, 0 // one() discards this when the run window closed
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		var after time.Duration
		if s := resp.Header.Get("Retry-After"); s != "" {
			if n, err := strconv.Atoi(s); err == nil {
				after = time.Duration(n) * time.Second
			}
			return outQuota, after
		}
		return outRejected, 0
	case http.StatusOK:
		return outOK, 0 // wait mode: the body is the result
	case http.StatusAccepted:
	default:
		return outErr, 0
	}

	// Async submission: find the job, then observe completion.
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(body, &st); err != nil || st.ID == "" {
		return outErr, 0
	}
	if req.cancelling {
		resp, _, err := r.do(ctx, http.MethodDelete, r.cfg.BaseURL+"/v1/jobs/"+st.ID, nil)
		if err != nil || resp.StatusCode != http.StatusOK {
			return outErr, 0
		}
		return outCancelled, 0
	}
	switch r.cfg.Await {
	case AwaitSSE:
		return r.awaitSSE(ctx, st.ID), 0
	default:
		return r.awaitPoll(ctx, st.ID), 0
	}
}

// awaitPoll polls the job status until it is terminal.
func (r *runner) awaitPoll(ctx context.Context, id string) outcome {
	for {
		resp, body, err := r.do(ctx, http.MethodGet, r.cfg.BaseURL+"/v1/jobs/"+id, nil)
		if err != nil || resp.StatusCode != http.StatusOK {
			return outErr
		}
		var st struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return outErr
		}
		switch st.State {
		case "done":
			return outOK
		case "failed", "cancelled":
			return outErr
		}
		select {
		case <-ctx.Done():
			return outErr
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// awaitSSE consumes the job's event stream until the done event.
func (r *runner) awaitSSE(ctx context.Context, id string) outcome {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.BaseURL+"/v1/jobs/"+id+"?stream=1", nil)
	if err != nil {
		return outErr
	}
	if r.load.Key != "" {
		hreq.Header.Set("X-API-Key", r.load.Key)
	}
	resp, err := r.client.Do(hreq)
	if err != nil {
		return outErr
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return outErr
	}
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case line == "" && event == "done":
			return outOK
		}
	}
	return outErr
}

// do performs one bounded HTTP exchange and returns the drained response.
func (r *runner) do(ctx context.Context, method, url string, body []byte) (*http.Response, []byte, error) {
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if r.load.Key != "" {
		hreq.Header.Set("X-API-Key", r.load.Key)
	}
	resp, err := r.client.Do(hreq)
	if err != nil {
		return nil, nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, nil, err
	}
	return resp, buf.Bytes(), nil
}

// warmup replays every warmable mix's distinct requests once, blocking,
// so the measured window starts against a warm cache. Warmup runs as the
// first configured tenant that replays the mix (quota charges apply — a
// warm run is service consumption like any other).
func warmup(ctx context.Context, client *http.Client, cfg *Config) error {
	done := make(map[Mix]bool)
	for i, l := range cfg.Loads {
		if done[l.Mix] {
			continue
		}
		done[l.Mix] = true
		r := &runner{cfg: cfg, load: l, idx: i, client: client, col: &collector{}}
		for _, req := range warmupRequests(l.Mix) {
			resp, body, err := r.do(ctx, http.MethodPost, cfg.BaseURL+req.path+"?wait=1", req.body)
			if err != nil {
				return err
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("%s answered %d: %s", req.path, resp.StatusCode, body)
			}
		}
	}
	return nil
}
