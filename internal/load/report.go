package load

import (
	"context"
	"fmt"
	"sort"
	"time"
)

// Quantiles are latency percentiles in milliseconds.
type Quantiles struct {
	P50 float64 `json:"p50_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// quantile returns the q-th percentile (0 < q <= 1) of a sorted sample by
// the nearest-rank method.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func newQuantiles(lat []time.Duration) Quantiles {
	if len(lat) == 0 {
		return Quantiles{}
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	return Quantiles{
		P50: ms(quantile(sorted, 0.50)),
		P95: ms(quantile(sorted, 0.95)),
		P99: ms(quantile(sorted, 0.99)),
		Max: ms(sorted[len(sorted)-1]),
	}
}

// Jain computes Jain's fairness index over per-tenant allocations:
// (Σx)² / (n·Σx²). 1.0 is perfectly fair; 1/n is one tenant taking
// everything. Empty or all-zero inputs report 1 (nothing was unfair).
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}

// TenantReport is one tenant's measured share of a run.
type TenantReport struct {
	Name       string    `json:"name"`
	Mix        Mix       `json:"mix"`
	Weight     int       `json:"weight"`
	Requests   int64     `json:"requests"`
	Completed  int64     `json:"completed"`
	Cancelled  int64     `json:"cancelled,omitempty"`
	Rejected   int64     `json:"rejected,omitempty"` // queue-full 429s
	Quota      int64     `json:"quota_429,omitempty"`
	Errors     int64     `json:"errors,omitempty"`
	Lagged     int64     `json:"lagged,omitempty"` // open-loop arrivals dropped client-side
	Throughput float64   `json:"throughput_rps"`   // completions per second
	Latency    Quantiles `json:"latency"`
	avg        time.Duration
}

// Report is one load run's result.
type Report struct {
	DurationSec  float64        `json:"duration_sec"`
	Await        Await          `json:"await"`
	Requests     int64          `json:"requests"`
	Completed    int64          `json:"completed"`
	Rejected     int64          `json:"rejected"`
	Errors       int64          `json:"errors"`
	Throughput   float64        `json:"throughput_rps"`
	Latency      Quantiles      `json:"latency"`
	Jain         float64        `json:"jain"`          // over raw per-tenant throughput
	JainWeighted float64        `json:"jain_weighted"` // over throughput normalized by weight
	Tenants      []TenantReport `json:"tenants"`
}

// buildReport folds the per-tenant collectors into the run report.
func buildReport(cfg Config, cols []*collector, elapsed time.Duration) *Report {
	secs := elapsed.Seconds()
	rep := &Report{DurationSec: secs, Await: cfg.Await}
	var all []time.Duration
	var raw, norm []float64
	for i, l := range cfg.Loads {
		c := cols[i]
		c.mu.Lock()
		tr := TenantReport{
			Name: l.Name, Mix: l.Mix, Weight: l.Weight,
			Requests: c.requests, Completed: c.completed, Cancelled: c.cancelled,
			Rejected: c.rejected, Quota: c.quota, Errors: c.errs, Lagged: c.lagged,
			Latency: newQuantiles(c.lat),
		}
		if secs > 0 {
			tr.Throughput = float64(c.completed) / secs
		}
		if c.completed > 0 {
			tr.avg = c.latSum / time.Duration(c.completed)
		}
		all = append(all, c.lat...)
		c.mu.Unlock()

		rep.Requests += tr.Requests
		rep.Completed += tr.Completed
		rep.Rejected += tr.Rejected + tr.Quota
		rep.Errors += tr.Errors
		raw = append(raw, tr.Throughput)
		w := tr.Weight
		if w < 1 {
			w = 1
		}
		norm = append(norm, tr.Throughput/float64(w))
		rep.Tenants = append(rep.Tenants, tr)
	}
	if secs > 0 {
		rep.Throughput = float64(rep.Completed) / secs
	}
	rep.Latency = newQuantiles(all)
	rep.Jain = Jain(raw)
	rep.JainWeighted = Jain(norm)
	return rep
}

// SatPoint is one step of the saturation search.
type SatPoint struct {
	Workers    int     `json:"workers"`
	Throughput float64 `json:"throughput_rps"`
}

// Saturation is the result of the doubling search: the measured
// throughput curve and the knee where adding concurrency stopped paying.
type Saturation struct {
	Points     []SatPoint `json:"points"`
	Workers    int        `json:"workers"`        // concurrency at the knee
	Throughput float64    `json:"throughput_rps"` // saturation throughput
}

// Saturate finds the server's saturation throughput for cfg's first load
// by doubling its closed-loop worker count until throughput stops
// improving by more than 5% (or maxWorkers is reached). Each step runs for
// cfg.Duration.
func Saturate(ctx context.Context, cfg Config, maxWorkers int) (*Saturation, error) {
	if len(cfg.Loads) != 1 {
		return nil, fmt.Errorf("load: saturation search wants exactly one tenant load, got %d", len(cfg.Loads))
	}
	if maxWorkers < 1 {
		maxWorkers = 64
	}
	cfg.Loads = append([]TenantLoad(nil), cfg.Loads...)
	cfg.Loads[0].Rate = 0 // closed loop: offered load is the worker count
	sat := &Saturation{}
	for w := 1; w <= maxWorkers; w *= 2 {
		cfg.Loads[0].Workers = w
		rep, err := Run(ctx, cfg)
		if err != nil {
			return nil, err
		}
		sat.Points = append(sat.Points, SatPoint{Workers: w, Throughput: rep.Throughput})
		if rep.Throughput > sat.Throughput {
			if sat.Throughput > 0 && rep.Throughput < sat.Throughput*1.05 {
				sat.Workers, sat.Throughput = w, rep.Throughput
				break
			}
			sat.Workers, sat.Throughput = w, rep.Throughput
		} else {
			break
		}
		if ctx.Err() != nil {
			break
		}
	}
	return sat, nil
}

// BenchLine renders the report as one `go test -bench`-style result line,
// which cmd/benchjson parses into the BENCH_<n>.json trajectory format:
//
//	BenchmarkLoadHot 812 2400000 ns/op 1.90 p50-ms 3.10 p95-ms 4.00 p99-ms 270.6 req/s 1.000 jain
//
// Iterations are completed requests, ns/op the mean end-to-end latency.
// No B/op or allocs/op are emitted — the trajectory gate reads them as a
// pinned-at-zero baseline, so the load lines gate on presence, not noise.
func BenchLine(name string, r *Report) string {
	var avg time.Duration
	if r.Completed > 0 {
		var sum time.Duration
		for _, tr := range r.Tenants {
			sum += tr.avg * time.Duration(tr.Completed)
		}
		avg = sum / time.Duration(r.Completed)
	}
	return fmt.Sprintf("BenchmarkLoad%s %d %d ns/op %.2f p50-ms %.2f p95-ms %.2f p99-ms %.1f req/s %.3f jain",
		name, r.Completed, avg.Nanoseconds(), r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Throughput, r.JainWeighted)
}
