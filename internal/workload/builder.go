// Package workload generates the programs the evaluation runs: 23 synthetic
// proxies named after the SPEC CPU 2017 benchmarks (each reproducing that
// benchmark's dominant micro-architectural bottleneck), a set of generic
// kernels, and seeded random programs used for differential testing of the
// timing cores against the reference emulator.
package workload

import (
	"fmt"

	"nda/internal/isa"
)

// Builder assembles an isa.Program instruction by instruction, with
// forward-reference patching for branch targets and helpers for data
// placement. Generators use it instead of textual assembly.
type Builder struct {
	textBase uint64
	insts    []isa.Inst
	data     []isa.Segment
	symbols  map[string]uint64
	entry    uint64
	hasEntry bool
}

// NewBuilder starts an empty program at the default text base.
func NewBuilder() *Builder {
	return &Builder{textBase: isa.DefaultTextBase, symbols: make(map[string]uint64)}
}

// PC returns the address of the next instruction to be emitted.
func (b *Builder) PC() uint64 { return b.textBase + uint64(len(b.insts))*isa.InstBytes }

// Emit appends an instruction and returns its index for later patching.
func (b *Builder) Emit(i isa.Inst) int {
	b.insts = append(b.insts, i)
	return len(b.insts) - 1
}

// PatchImm sets the Imm of a previously emitted instruction, resolving a
// forward branch target.
func (b *Builder) PatchImm(idx int, imm uint64) { b.insts[idx].Imm = int64(imm) }

// Label records the current PC under a name.
func (b *Builder) Label(name string) uint64 {
	pc := b.PC()
	b.symbols[name] = pc
	return pc
}

// SetEntry marks the current PC as the program entry point.
func (b *Builder) SetEntry() { b.entry, b.hasEntry = b.PC(), true }

// Data places a raw data segment.
func (b *Builder) Data(addr uint64, bytes []byte, kernel bool) {
	b.data = append(b.data, isa.Segment{Addr: addr, Bytes: bytes, Kernel: kernel})
}

// DataWords places 64-bit little-endian words at addr.
func (b *Builder) DataWords(addr uint64, words ...uint64) {
	buf := make([]byte, 8*len(words))
	for i, w := range words {
		for j := 0; j < 8; j++ {
			buf[i*8+j] = byte(w >> (8 * j))
		}
	}
	b.Data(addr, buf, false)
}

// Program finalizes the build.
func (b *Builder) Program() *isa.Program {
	entry := b.textBase
	if b.hasEntry {
		entry = b.entry
	}
	return &isa.Program{
		TextBase: b.textBase,
		Insts:    b.insts,
		Entry:    entry,
		Data:     b.data,
		Symbols:  b.symbols,
	}
}

// Convenience emitters; all addresses are absolute.

// Li loads a 64-bit immediate.
func (b *Builder) Li(rd isa.Reg, v uint64) { b.Emit(isa.Inst{Op: isa.OpLui, Rd: rd, Imm: int64(v)}) }

// Op3 emits a register-register ALU op.
func (b *Builder) Op3(op isa.Op, rd, rs1, rs2 isa.Reg) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// OpI emits a register-immediate ALU op.
func (b *Builder) OpI(op isa.Op, rd, rs1 isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Load emits a load of the given width.
func (b *Builder) Load(op isa.Op, rd, base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: base, Imm: off})
}

// Store emits a store of the given width.
func (b *Builder) Store(op isa.Op, data, base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: op, Rs1: base, Rs2: data, Imm: off})
}

// Branch emits a conditional branch to an absolute target.
func (b *Builder) Branch(op isa.Op, rs1, rs2 isa.Reg, target uint64) int {
	return b.Emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: int64(target)})
}

// Jump emits an unconditional direct jump.
func (b *Builder) Jump(target uint64) int {
	return b.Emit(isa.Inst{Op: isa.OpJal, Rd: isa.RegZero, Imm: int64(target)})
}

// Call emits a direct call.
func (b *Builder) Call(target uint64) int {
	return b.Emit(isa.Inst{Op: isa.OpJal, Rd: isa.RegRA, Imm: int64(target)})
}

// CallReg emits an indirect call through rs.
func (b *Builder) CallReg(rs isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpJalr, Rd: isa.RegRA, Rs1: rs})
}

// Ret emits a return.
func (b *Builder) Ret() { b.Emit(isa.Inst{Op: isa.OpJalr, Rd: isa.RegZero, Rs1: isa.RegRA}) }

// Halt emits a halt.
func (b *Builder) Halt() { b.Emit(isa.Inst{Op: isa.OpHalt}) }

// CountedLoop emits "for i := n; i > 0; i--" around body. The loop counter
// register must not be clobbered by body.
func (b *Builder) CountedLoop(counter isa.Reg, n uint64, body func()) {
	b.Li(counter, n)
	top := b.PC()
	body()
	b.OpI(isa.OpAddi, counter, counter, -1)
	b.Branch(isa.OpBne, counter, isa.RegZero, top)
}

// String summarizes the program size (for logs).
func (b *Builder) String() string {
	return fmt.Sprintf("program{%d insts, %d data segs}", len(b.insts), len(b.data))
}
