package workload

import (
	"math/rand"

	"nda/internal/isa"
)

// Random generates a seeded, terminating program exercising the whole ISA:
// ALU chains, loads/stores with aliasing (store-to-load forwarding and
// speculative store bypass), forward branches, counted loops, direct and
// indirect calls, fences, MSR round-trips, and cache flushes. Control flow
// is forward-only except counted loops and calls to leaf functions, so
// termination is guaranteed by construction.
//
// Random programs drive the differential tests: the OoO core (under every
// NDA policy), the in-order core, and the reference emulator must reach
// identical architectural state. RDCYCLE is deliberately not generated — it
// is the one instruction whose value is timing-dependent.
func Random(seed int64, segments int) *isa.Program {
	r := rand.New(rand.NewSource(seed))
	b := NewBuilder()

	const (
		bufBase = 0x100000
		bufSize = 8192
		tblBase = 0x110000
	)

	// Pool of general registers the random code mangles. s0 (x8) holds the
	// buffer base; x28..x31 are generator scratch.
	pool := []isa.Reg{5, 6, 7, 9, 10, 11, 12, 13, 14, 15, 16, 17}
	reg := func() isa.Reg { return pool[r.Intn(len(pool))] }
	const (
		base    = isa.RegS0
		scrA    = isa.Reg(28)
		scrB    = isa.Reg(29)
		scrC    = isa.Reg(30)
		counter = isa.Reg(31)
	)

	// Random initial buffer contents.
	buf := make([]byte, bufSize)
	r.Read(buf)
	b.Data(bufBase, buf, false)

	// Leaf functions, then an indirect-call table pointing at them.
	nFuncs := 4
	funcs := make([]uint64, nFuncs)
	for i := range funcs {
		funcs[i] = b.PC()
		for k, n := 0, 1+r.Intn(3); k < n; k++ {
			emitALU(b, r, reg(), reg(), reg())
		}
		if r.Intn(2) == 0 {
			emitMaskedAddr(b, r, scrA, reg(), base, bufSize, 8)
			b.Load(isa.OpLd, reg(), scrA, 0)
		}
		b.Ret()
	}
	b.DataWords(tblBase, funcs...)

	b.Label("main")
	b.SetEntry()
	b.Li(base, bufBase)
	for _, p := range pool {
		b.Li(p, r.Uint64())
	}

	for s := 0; s < segments; s++ {
		switch r.Intn(14) {
		case 0, 1, 2: // ALU register op
			emitALU(b, r, reg(), reg(), reg())
		case 3, 4: // ALU immediate op
			ops := []isa.Op{isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpSlti}
			b.OpI(ops[r.Intn(len(ops))], reg(), reg(), int64(int32(r.Uint32())))
		case 5: // shift immediate (bounded amount)
			ops := []isa.Op{isa.OpSlli, isa.OpSrli, isa.OpSrai}
			b.OpI(ops[r.Intn(len(ops))], reg(), reg(), int64(r.Intn(64)))
		case 6: // load (random width)
			op, align := loadOp(r)
			emitMaskedAddr(b, r, scrA, reg(), base, bufSize, align)
			b.Load(op, reg(), scrA, 0)
		case 7: // store (random width)
			op, align := storeOp(r)
			emitMaskedAddr(b, r, scrA, reg(), base, bufSize, align)
			b.Store(op, reg(), scrA, 0)
		case 8: // store-then-load aliasing pair (forwarding / bypass fodder)
			emitMaskedAddr(b, r, scrA, reg(), base, bufSize, 8)
			b.Store(isa.OpSd, reg(), scrA, 0)
			if r.Intn(2) == 0 {
				// Same address: must forward.
				b.Load(isa.OpLd, reg(), scrA, 0)
			} else {
				// Maybe-aliasing address computed after the store.
				emitMaskedAddr(b, r, scrB, reg(), base, bufSize, 8)
				b.Load(isa.OpLd, reg(), scrB, 0)
			}
		case 9: // forward branch over a small body
			cond := []isa.Op{isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu}
			br := b.Branch(cond[r.Intn(len(cond))], reg(), reg(), 0)
			for k, n := 0, 1+r.Intn(5); k < n; k++ {
				emitALU(b, r, reg(), reg(), reg())
			}
			b.PatchImm(br, b.PC())
		case 10: // counted loop
			n := uint64(1 + r.Intn(6))
			body := 1 + r.Intn(3)
			b.CountedLoop(counter, n, func() {
				for k := 0; k < body; k++ {
					emitALU(b, r, reg(), reg(), reg())
				}
			})
		case 11: // direct call
			b.Call(funcs[r.Intn(nFuncs)])
		case 12: // indirect call through the table
			b.Li(scrB, tblBase+uint64(r.Intn(nFuncs))*8)
			b.Load(isa.OpLd, scrC, scrB, 0)
			b.CallReg(scrC)
		case 13: // system ops with architectural round trips
			switch r.Intn(3) {
			case 0:
				b.Emit(isa.Inst{Op: isa.OpFence})
			case 1:
				emitMaskedAddr(b, r, scrA, reg(), base, bufSize, 1)
				b.Emit(isa.Inst{Op: isa.OpClflush, Rs1: scrA})
			case 2:
				b.Emit(isa.Inst{Op: isa.OpWrmsr, Rs1: reg(), Imm: int64(isa.MSRScratch)})
				b.Emit(isa.Inst{Op: isa.OpRdmsr, Rd: reg(), Imm: int64(isa.MSRScratch)})
			}
		}
	}
	b.Halt()
	return b.Program()
}

func emitALU(b *Builder, r *rand.Rand, rd, rs1, rs2 isa.Reg) {
	ops := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpSll, isa.OpSrl, isa.OpSra, isa.OpSlt, isa.OpSltu,
		isa.OpMul, isa.OpDiv, isa.OpRem}
	b.Op3(ops[r.Intn(len(ops))], rd, rs1, rs2)
}

// emitMaskedAddr computes dst = base + (src & mask) where the mask keeps the
// address inside [0, bufSize) at the given alignment.
func emitMaskedAddr(b *Builder, r *rand.Rand, dst, src, base isa.Reg, bufSize int, align int) {
	mask := int64(bufSize - align - (bufSize-align)%align)
	mask &^= int64(align - 1)
	b.OpI(isa.OpAndi, dst, src, mask)
	b.Op3(isa.OpAdd, dst, dst, base)
	_ = r
}

func loadOp(r *rand.Rand) (isa.Op, int) {
	switch r.Intn(3) {
	case 0:
		return isa.OpLd, 8
	case 1:
		return isa.OpLw, 4
	default:
		return isa.OpLbu, 1
	}
}

func storeOp(r *rand.Rand) (isa.Op, int) {
	switch r.Intn(3) {
	case 0:
		return isa.OpSd, 8
	case 1:
		return isa.OpSw, 4
	default:
		return isa.OpSb, 1
	}
}
