package workload

import (
	"testing"

	"nda/internal/emu"
	"nda/internal/isa"
)

func TestAllSpecsBuildAndRun(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			prog := s.Build(5)
			if len(prog.Insts) == 0 {
				t.Fatal("empty program")
			}
			m := emu.New(prog)
			if err := m.Run(2_000_000); err != nil {
				t.Fatalf("emu run: %v", err)
			}
			if !m.Halted {
				t.Error("program did not halt")
			}
		})
	}
}

func TestSpecsAreDeterministic(t *testing.T) {
	for _, s := range SPEC()[:4] {
		p1 := s.Build(3)
		p2 := s.Build(3)
		if len(p1.Insts) != len(p2.Insts) {
			t.Fatalf("%s: nondeterministic code size", s.Name)
		}
		for i := range p1.Insts {
			if p1.Insts[i] != p2.Insts[i] {
				t.Fatalf("%s: instruction %d differs", s.Name, i)
			}
		}
		m1, m2 := emu.New(p1), emu.New(p2)
		if err := m1.Run(2_000_000); err != nil {
			t.Fatal(err)
		}
		if err := m2.Run(2_000_000); err != nil {
			t.Fatal(err)
		}
		if m1.Regs != m2.Regs {
			t.Fatalf("%s: nondeterministic results", s.Name)
		}
	}
}

func TestIterationScaling(t *testing.T) {
	s, err := ByName("exchange2")
	if err != nil {
		t.Fatal(err)
	}
	short := emu.New(s.Build(2))
	long := emu.New(s.Build(20))
	if err := short.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if err := long.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if long.Retired <= short.Retired*5 {
		t.Errorf("iteration count must scale work: %d vs %d", short.Retired, long.Retired)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("mcf"); err != nil {
		t.Error("mcf must exist")
	}
	if _, err := ByName("doom"); err == nil {
		t.Error("unknown benchmark must error")
	}
}

func TestSuiteCounts(t *testing.T) {
	intN, fpN := 0, 0
	for _, s := range SPEC() {
		switch s.Suite {
		case "intrate":
			intN++
		case "fprate":
			fpN++
		default:
			t.Errorf("%s: bad suite %q", s.Name, s.Suite)
		}
	}
	if intN != 10 || fpN != 13 {
		t.Errorf("suite sizes: int=%d fp=%d, want 10/13", intN, fpN)
	}
}

func TestRandomTerminates(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		prog := Random(seed, 500)
		m := emu.New(prog)
		if err := m.Run(5_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, b := Random(7, 100), Random(7, 100)
	if len(a.Insts) != len(b.Insts) {
		t.Fatal("nondeterministic generation")
	}
	for i := range a.Insts {
		if a.Insts[i] != b.Insts[i] {
			t.Fatal("instruction streams differ")
		}
	}
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	if b.PC() != isa.DefaultTextBase {
		t.Errorf("initial PC = %#x", b.PC())
	}
	b.Li(isa.RegT0, 42)
	idx := b.Jump(0)
	b.Label("here")
	b.PatchImm(idx, b.PC())
	b.Halt()
	p := b.Program()
	if uint64(p.Insts[1].Imm) != p.MustSymbol("here") {
		t.Error("patching failed")
	}
	if p.Entry != p.TextBase {
		t.Error("default entry")
	}
}

func TestBuilderCountedLoop(t *testing.T) {
	b := NewBuilder()
	b.Label("main")
	b.SetEntry()
	b.Li(isa.RegT0, 0)
	b.CountedLoop(isa.RegT1, 10, func() {
		b.OpI(isa.OpAddi, isa.RegT0, isa.RegT0, 2)
	})
	b.Halt()
	m := emu.New(b.Program())
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if m.Regs[isa.RegT0] != 20 {
		t.Errorf("loop result = %d", m.Regs[isa.RegT0])
	}
}

func TestDataWords(t *testing.T) {
	b := NewBuilder()
	b.DataWords(0x5000, 0x1122334455667788, 42)
	b.Label("main")
	b.SetEntry()
	b.Halt()
	m := emu.New(b.Program())
	if m.Mem.Read(0x5000, 8) != 0x1122334455667788 || m.Mem.Read(0x5008, 8) != 42 {
		t.Error("DataWords layout wrong")
	}
}
