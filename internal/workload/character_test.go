package workload

import (
	"testing"

	"nda/internal/core"
	"nda/internal/ooo"
)

// These tests validate the proxy-design claims in DESIGN.md: each kernel
// family must actually exhibit the micro-architectural character its SPEC
// counterpart is chosen for. If a generator drifts (e.g. a wrap mask bug
// shrinks a working set), these catch it before it silently skews the
// Fig. 7 reproduction.

// profile runs a workload briefly on the baseline OoO core and returns its
// stats.
func profile(t *testing.T, name string) *ooo.Stats {
	t.Helper()
	s, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	c := ooo.NewFromProgram(s.Build(1<<40), core.Baseline(), ooo.DefaultParams())
	if err := c.RunInsts(8_000, 50_000_000); err != nil {
		t.Fatal(err)
	}
	c.ResetStats()
	if err := c.RunInsts(20_000, 50_000_000); err != nil {
		t.Fatal(err)
	}
	return c.Stats()
}

func TestStreamHasHighMLP(t *testing.T) {
	s := profile(t, "stream")
	if s.MLP() < 3 {
		t.Errorf("stream MLP = %.2f, want >= 3 (independent misses must overlap)", s.MLP())
	}
}

func TestPointerChaseHasSerialMisses(t *testing.T) {
	s := profile(t, "pchase-mem")
	if s.MLP() > 1.5 {
		t.Errorf("pointer-chase MLP = %.2f, want ~1 (dependent misses cannot overlap)", s.MLP())
	}
	if s.CPI() < 10 {
		t.Errorf("DRAM-resident chase CPI = %.2f, implausibly fast", s.CPI())
	}
}

func TestChaseL2FasterThanDRAM(t *testing.T) {
	l2 := profile(t, "pchase-l2")
	mem := profile(t, "pchase-mem")
	if l2.CPI() >= mem.CPI() {
		t.Errorf("L2-resident chase (%.2f CPI) must beat DRAM-resident (%.2f)", l2.CPI(), mem.CPI())
	}
}

func TestBranchyMispredicts(t *testing.T) {
	s := profile(t, "branchy")
	if s.MispredictRate() < 0.15 {
		t.Errorf("branchy mispredict rate = %.2f, want >= 0.15 (random directions)", s.MispredictRate())
	}
	if s.Squashes == 0 {
		t.Error("branchy must squash")
	}
}

func TestComputeHasHighIPC(t *testing.T) {
	s := profile(t, "compute")
	if s.IPC() < 1.2 {
		t.Errorf("compute IPC = %.2f, want >= 1.2 (no memory stalls)", s.IPC())
	}
	if s.MLPCycles > s.Cycles/20 {
		t.Error("compute must be nearly free of off-chip misses")
	}
}

func TestCallsResolveViaRAS(t *testing.T) {
	// Call/return-heavy code must keep its (RAS-predicted) control flow
	// nearly mispredict-free.
	s := profile(t, "calls")
	if s.MispredictRate() > 0.05 {
		t.Errorf("calls mispredict rate = %.2f, want ~0 (RAS-predicted)", s.MispredictRate())
	}
}

func TestGatherKeepsMLPDespiteMisses(t *testing.T) {
	s := profile(t, "gather")
	if s.MLP() < 2 {
		t.Errorf("gather MLP = %.2f, want >= 2 (independent random misses)", s.MLP())
	}
}

func TestSPECProxiesSpanRegimes(t *testing.T) {
	// The suite must contain clearly memory-bound, clearly compute-bound,
	// and clearly branchy members — otherwise Fig. 7's spread collapses.
	mcf := profile(t, "mcf")
	exch := profile(t, "exchange2")
	deep := profile(t, "deepsjeng")
	if mcf.CPI() < 3*exch.CPI() {
		t.Errorf("mcf (%.2f) must be far slower than exchange2 (%.2f)", mcf.CPI(), exch.CPI())
	}
	if deep.MispredictRate() < 0.2 {
		t.Errorf("deepsjeng mispredict rate = %.2f, want >= 0.2", deep.MispredictRate())
	}
	if exch.MispredictRate() > 0.02 {
		t.Errorf("exchange2 mispredict rate = %.2f, want ~0", exch.MispredictRate())
	}
}

func TestScatterCreatesBypasses(t *testing.T) {
	// Proxies with scatterIndirect must actually exercise speculative
	// store bypass — the behaviour Bypass Restriction prices.
	s := profile(t, "gcc")
	if s.BypassedLoads == 0 {
		t.Error("gcc proxy must bypass unresolved stores")
	}
}

func TestStoreHeavyStreamsCommitStores(t *testing.T) {
	s, err := ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	c := ooo.NewFromProgram(s.Build(50), core.Baseline(), ooo.DefaultParams())
	if err := c.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	// The stream's stores must have landed in memory.
	found := false
	for off := uint64(0); off < 4096 && !found; off += 8 {
		if c.Memory().Read(uint64(streamBase)+off, 8) != 0 {
			found = true
		}
	}
	if !found {
		t.Error("lbm's streaming stores never reached memory")
	}
}

func TestLoadRestrictionPreservesMLP(t *testing.T) {
	// Paper §6.3: "NDA does not typically restrict the issue time of
	// loads, only when they may wake dependents" — so streaming MLP must
	// survive even the restricted-loads policy.
	s, err := ByName("stream")
	if err != nil {
		t.Fatal(err)
	}
	mlp := func(pol core.Policy) float64 {
		c := ooo.NewFromProgram(s.Build(1<<40), pol, ooo.DefaultParams())
		if err := c.RunInsts(8_000, 50_000_000); err != nil {
			t.Fatal(err)
		}
		c.ResetStats()
		if err := c.RunInsts(20_000, 50_000_000); err != nil {
			t.Fatal(err)
		}
		return c.Stats().MLP()
	}
	base := mlp(core.Baseline())
	restricted := mlp(core.LoadRestrict())
	if restricted < 0.6*base {
		t.Errorf("load restriction collapsed MLP: %.2f vs baseline %.2f", restricted, base)
	}
	if restricted < 2 {
		t.Errorf("restricted-loads stream MLP = %.2f, must stay well above the in-order bound", restricted)
	}
}
