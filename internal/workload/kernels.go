package workload

import (
	"math/rand"

	"nda/internal/isa"
)

// This file implements the micro-kernels the SPEC CPU 2017 proxies are
// composed from. Each kernel emits one pass of work into the enclosing
// benchmark loop and owns a disjoint set of persistent s-registers;
// temporaries t0..t6 are shared and clobbered freely.
//
// Register map (persistent across iterations):
//
//	s2  pointer-chase cursor
//	s3  stream cursor
//	s4  LCG state (random access / branchy selector)
//	s5  accumulator
//	s6  table/array base (set once in the prologue)
//	s7  second base
//	s8  third base / secondary accumulator
//	s9  stencil cursor
//	s10 scratch persistent
//	s11 outer loop counter (owned by the benchmark wrapper)

// Data placement for kernels. Each region is sized by the kernel configs.
const (
	chaseBase   = 0x04000000
	streamBase  = 0x08000000
	tableBase   = 0x0C000000
	patternBase = 0x10000000
	outBase     = 0x14000000
)

// kern carries shared generation state.
type kern struct {
	b *Builder
	r *rand.Rand
}

// prologue initializes the persistent registers.
func (k *kern) prologue() {
	b := k.b
	b.Li(rChase, chaseBase)
	b.Li(rStream, streamBase)
	b.Li(rLCG, 0x9E3779B97F4A7C15)
	b.Li(rAcc, 0x9E37) // nonzero seed so store-heavy kernels leave visible traces
	b.Li(rTable, tableBase)
	b.Li(rPattern, patternBase)
	b.Li(rOut, outBase)
	b.Li(rStencil, streamBase)
	b.Li(rScratch, 0)
}

const (
	rChase   = isa.Reg(18) // s2
	rStream  = isa.Reg(19) // s3
	rLCG     = isa.Reg(20) // s4
	rAcc     = isa.Reg(21) // s5
	rTable   = isa.Reg(22) // s6
	rPattern = isa.Reg(23) // s7
	rOut     = isa.Reg(24) // s8
	rStencil = isa.Reg(25) // s9
	rScratch = isa.Reg(26) // s10
	rOuter   = isa.Reg(27) // s11
	t0       = isa.RegT0
	t1       = isa.RegT1
	t2       = isa.RegT2
	t3       = isa.Reg(28)
	t4       = isa.Reg(29)
	t5       = isa.Reg(30)
	t6       = isa.Reg(31)
)

// chaseData builds a cyclic random permutation linked list of nodes 64-byte
// nodes at chaseBase and leaves the cursor register pointing at node 0.
func (k *kern) chaseData(nodes int) {
	perm := k.r.Perm(nodes)
	// Build a single cycle: node perm[i] -> perm[i+1].
	buf := make([]byte, nodes*64)
	for i := 0; i < nodes; i++ {
		from := perm[i]
		to := perm[(i+1)%nodes]
		next := uint64(chaseBase + to*64)
		for j := 0; j < 8; j++ {
			buf[from*64+j] = byte(next >> (8 * j))
		}
	}
	k.b.Data(chaseBase, buf, false)
}

// chase emits hops serial pointer-chase steps: the classic mcf/omnetpp
// memory-latency-bound pattern (MLP ~= 1 on this chain).
func (k *kern) chase(hops int) {
	for i := 0; i < hops; i++ {
		k.b.Load(isa.OpLd, rChase, rChase, 0)
	}
}

// streamData zero-fills the stream array region (zero is fine: memory
// defaults to zero; nothing to emit) — kept for symmetry and to reserve the
// region size for documentation.
func (k *kern) streamData(bytes int) {
	// Sparse memory reads as zero; only the size matters for cache
	// behaviour, so no initialization is required.
	_ = bytes
}

// stream emits unroll independent loads (and optionally stores) with a
// 64-byte stride, then advances and wraps the cursor: the
// bwaves/lbm/fotonik3d pattern. High MLP: the loads are independent.
func (k *kern) stream(unroll int, bytes int, withStores bool) {
	b := k.b
	for i := 0; i < unroll; i++ {
		b.Load(isa.OpLd, t0, rStream, int64(i*64))
		b.Op3(isa.OpAdd, rAcc, rAcc, t0)
		if withStores {
			b.Store(isa.OpSd, rAcc, rStream, int64(i*64+8))
		}
	}
	b.OpI(isa.OpAddi, rStream, rStream, int64(unroll*64))
	// Wrap: cursor = base + (cursor-base) & (bytes-1).
	b.Li(t1, uint64(streamBase))
	b.Op3(isa.OpSub, t2, rStream, t1)
	b.OpI(isa.OpAndi, t2, t2, int64(bytes-1))
	b.Op3(isa.OpAdd, rStream, t1, t2)
}

// lcgStep advances the LCG state and leaves a pseudo-random value in dst.
func (k *kern) lcgStep(dst isa.Reg) {
	b := k.b
	b.Li(t6, 6364136223846793005)
	b.Op3(isa.OpMul, rLCG, rLCG, t6)
	b.OpI(isa.OpAddi, rLCG, rLCG, 1442695040888963407)
	b.OpI(isa.OpSrli, dst, rLCG, 29)
}

// randomAccess emits n dependent-index random table loads — the gcc/
// xalancbmk/omnetpp pointer-ish pattern. With tableBytes larger than L2 the
// kernel is DRAM-bound but (unlike chase) the accesses are independent, so
// MLP stays high.
func (k *kern) randomAccess(n int, tableBytes int) {
	b := k.b
	for i := 0; i < n; i++ {
		k.lcgStep(t0)
		b.OpI(isa.OpAndi, t0, t0, int64(tableBytes-8)&^7)
		b.Op3(isa.OpAdd, t0, t0, rTable)
		b.Load(isa.OpLd, t1, t0, 0)
		b.Op3(isa.OpXor, rAcc, rAcc, t1)
	}
}

// patternData fills the branch-pattern array with random bytes.
func (k *kern) patternData(bytes int) {
	buf := make([]byte, bytes)
	k.r.Read(buf)
	k.b.Data(patternBase, buf, false)
}

// branchy emits n data-dependent unpredictable branches driven by a
// sequentially scanned random byte array — the deepsjeng/leela/gcc control
// profile. The scan itself is cache-friendly; the branches are not
// predictable.
func (k *kern) branchy(n int, patternBytes int) {
	b := k.b
	for i := 0; i < n; i++ {
		b.Load(isa.OpLbu, t0, rPattern, 0)
		b.OpI(isa.OpAndi, t1, t0, 1)
		br := b.Branch(isa.OpBeq, t1, isa.RegZero, 0)
		b.OpI(isa.OpAddi, rAcc, rAcc, 3)
		b.Op3(isa.OpXor, rAcc, rAcc, t0)
		end := b.Jump(0)
		b.PatchImm(br, b.PC())
		b.OpI(isa.OpAddi, rAcc, rAcc, -1)
		b.PatchImm(end, b.PC())
		b.OpI(isa.OpAddi, rPattern, rPattern, 1)
	}
	// Wrap the scan cursor.
	b.Li(t1, uint64(patternBase))
	b.Op3(isa.OpSub, t2, rPattern, t1)
	b.OpI(isa.OpAndi, t2, t2, int64(patternBytes-1))
	b.Op3(isa.OpAdd, rPattern, t1, t2)
}

// compute emits a dependent arithmetic chain with some independent work —
// the exchange2/x264/imagick profile (ILP/latency bound, few memory ops).
func (k *kern) compute(chain int, withMul bool) {
	b := k.b
	for i := 0; i < chain; i++ {
		if withMul && i%3 == 0 {
			b.Op3(isa.OpMul, rAcc, rAcc, rLCG)
			b.OpI(isa.OpAddi, rAcc, rAcc, 0x5bd1)
		} else {
			b.OpI(isa.OpXori, rAcc, rAcc, 0x2545)
			b.OpI(isa.OpSlli, t0, rAcc, 13)
			b.Op3(isa.OpXor, rAcc, rAcc, t0)
		}
		// Independent work interleaved to expose ILP.
		b.OpI(isa.OpAddi, rScratch, rScratch, 1)
		b.Op3(isa.OpAnd, t2, rScratch, rLCG)
	}
}

// callsData/calls emit a call-heavy pattern: a loop body invoking small
// leaf and one-deep functions — the perlbench/povray/omnetpp profile.
// Functions are emitted once (on first use) after the main loop.
type callSet struct {
	fns []uint64
}

// emitCallFuncs generates nFns small functions and returns their addresses.
// Must be called where emission is allowed (after the benchmark loop).
func (k *kern) emitCallFuncs(nFns int) *callSet {
	b := k.b
	cs := &callSet{}
	// Leaf functions.
	leaves := make([]uint64, 0, nFns)
	for i := 0; i < nFns; i++ {
		addr := b.PC()
		n := 2 + k.r.Intn(4)
		for j := 0; j < n; j++ {
			b.OpI(isa.OpAddi, isa.RegA0, isa.RegA0, int64(j+1))
			b.OpI(isa.OpXori, isa.RegA1, isa.RegA0, 0x77)
		}
		b.Ret()
		leaves = append(leaves, addr)
	}
	// One-deep functions that call a leaf (saving ra in a callee reg by
	// convention: these are only called from the benchmark loop).
	for i := 0; i < nFns; i++ {
		addr := b.PC()
		b.OpI(isa.OpAddi, t5, isa.RegRA, 0) // save ra
		b.OpI(isa.OpAddi, isa.RegA0, isa.RegA0, 7)
		b.Call(leaves[i])
		b.Op3(isa.OpAdd, isa.RegA1, isa.RegA1, isa.RegA0)
		b.OpI(isa.OpAddi, isa.RegRA, t5, 0) // restore ra
		b.Ret()
		cs.fns = append(cs.fns, addr)
	}
	cs.fns = append(cs.fns, leaves...)
	return cs
}

// calls emits n calls cycling through the function set. The call targets
// are direct, exercising the RAS heavily.
func (k *kern) calls(cs *callSet, n int) {
	for i := 0; i < n; i++ {
		k.b.Call(cs.fns[i%len(cs.fns)])
	}
}

// dotProduct emits an inner-product step over two streams — the
// namd/parest/nab numeric profile: two loads, a multiply, an accumulate.
func (k *kern) dotProduct(unroll int, bytes int) {
	b := k.b
	for i := 0; i < unroll; i++ {
		b.Load(isa.OpLd, t0, rStream, int64(i*16))
		b.Load(isa.OpLd, t1, rTable, int64(i*16))
		b.Op3(isa.OpMul, t2, t0, t1)
		b.Op3(isa.OpAdd, rAcc, rAcc, t2)
	}
	b.OpI(isa.OpAddi, rStream, rStream, int64(unroll*16))
	b.Li(t1, uint64(streamBase))
	b.Op3(isa.OpSub, t2, rStream, t1)
	b.OpI(isa.OpAndi, t2, t2, int64(bytes-1))
	b.Op3(isa.OpAdd, rStream, t1, t2)
}

// stencil emits a 3-point stencil pass: overlapping neighbour loads (cache
// friendly), weighted arithmetic, and a store — the cactuBSSN/wrf/roms/cam4
// profile.
func (k *kern) stencil(unroll int, bytes int) {
	b := k.b
	for i := 0; i < unroll; i++ {
		off := int64(i * 8)
		b.Load(isa.OpLd, t0, rStencil, off)
		b.Load(isa.OpLd, t1, rStencil, off+8)
		b.Load(isa.OpLd, t2, rStencil, off+16)
		b.OpI(isa.OpSlli, t3, t1, 1)
		b.Op3(isa.OpAdd, t0, t0, t2)
		b.Op3(isa.OpAdd, t0, t0, t3)
		b.OpI(isa.OpSrai, t0, t0, 2)
		b.Store(isa.OpSd, t0, rOut, off)
	}
	b.OpI(isa.OpAddi, rStencil, rStencil, int64(unroll*8))
	b.Li(t1, uint64(streamBase))
	b.Op3(isa.OpSub, t2, rStencil, t1)
	b.OpI(isa.OpAndi, t2, t2, int64(bytes-1))
	b.Op3(isa.OpAdd, rStencil, t1, t2)
}

// bitops emits xz/x264-style bit manipulation plus a 2KB table lookup (a
// CRC-like profile: short dependent chains, L1-resident loads).
func (k *kern) bitops(n int) {
	b := k.b
	for i := 0; i < n; i++ {
		b.OpI(isa.OpSrli, t0, rAcc, 8)
		b.OpI(isa.OpAndi, t1, rAcc, 0x7F8)
		b.Op3(isa.OpAdd, t1, t1, rTable)
		b.Load(isa.OpLd, t2, t1, 0)
		b.Op3(isa.OpXor, rAcc, t0, t2)
	}
}

// tableData fills the random-access/bitops table with random bytes.
func (k *kern) tableData(bytes int) {
	// Fill only a prefix with random data (sparse memory reads as zero
	// elsewhere); 64KB of entropy is plenty for the XOR-accumulators.
	n := bytes
	if n > 64<<10 {
		n = 64 << 10
	}
	buf := make([]byte, n)
	k.r.Read(buf)
	k.b.Data(tableBase, buf, false)
}

// sortish emits a compare-and-swap scan step over an array — the
// xalancbmk/blender-ish mix of loads, branches, and stores.
func (k *kern) sortish(n int, bytes int) {
	b := k.b
	for i := 0; i < n; i++ {
		b.Load(isa.OpLd, t0, rStream, 0)
		b.Load(isa.OpLd, t1, rStream, 8)
		br := b.Branch(isa.OpBgeu, t1, t0, 0) // already ordered: skip swap
		b.Store(isa.OpSd, t1, rStream, 0)
		b.Store(isa.OpSd, t0, rStream, 8)
		b.PatchImm(br, b.PC())
		b.OpI(isa.OpAddi, rStream, rStream, 8)
	}
	b.Li(t1, uint64(streamBase))
	b.Op3(isa.OpSub, t2, rStream, t1)
	b.OpI(isa.OpAndi, t2, t2, int64(bytes-1)&^7)
	b.Op3(isa.OpAdd, rStream, t1, t2)
}

// scatterIndirect emits the hash-update pattern that makes Speculative
// Store Bypass windows real: an index load (which may miss) feeds a store's
// address, so the store stays unresolved for the load's full latency while
// younger independent loads speculatively bypass it. This is where Bypass
// Restriction's cost (and SSB's attack surface) comes from.
func (k *kern) scatterIndirect(n int, tableBytes int) {
	b := k.b
	for i := 0; i < n; i++ {
		// The index load comes from a hot 16KB region: the unresolved-store
		// window is usually an L1 hit (a few cycles), occasionally longer —
		// matching the modest Bypass Restriction cost the paper reports.
		k.lcgStep(t0)
		b.OpI(isa.OpAndi, t0, t0, int64(16<<10-1)&^7)
		b.Op3(isa.OpAdd, t0, t0, rTable)
		b.Load(isa.OpLd, t1, t0, 0) // index load: feeds the store's address
		b.OpI(isa.OpAndi, t1, t1, int64(tableBytes-1)&^7)
		b.Op3(isa.OpAdd, t1, t1, rOut)
		b.Store(isa.OpSd, rAcc, t1, 0) // address unresolved until the index returns
		// Younger loads that bypass the unresolved store:
		k.lcgStep(t2)
		b.OpI(isa.OpAndi, t2, t2, int64(tableBytes-1)&^7)
		b.Op3(isa.OpAdd, t2, t2, rOut)
		b.Load(isa.OpLd, t3, t2, 0)
		b.Op3(isa.OpXor, rAcc, rAcc, t3)
	}
}

// branchyGather emits branches whose conditions depend on random gathers —
// the search-tree pattern (deepsjeng/leela/mcf) where a node fetched from a
// large structure decides the direction. The long load-to-branch latency is
// what makes speculation shadows wide: under permissive propagation every
// load in the shadow defers its wake-up, and under load restriction the
// resolution itself waits for retirement.
func (k *kern) branchyGather(n int, tableBytes int) {
	b := k.b
	for i := 0; i < n; i++ {
		k.lcgStep(t0)
		b.OpI(isa.OpAndi, t0, t0, int64(tableBytes-1)&^7)
		b.Op3(isa.OpAdd, t0, t0, rTable)
		b.Load(isa.OpLd, t1, t0, 0) // slow condition load
		b.OpI(isa.OpAndi, t2, t1, 1)
		br := b.Branch(isa.OpBne, t2, isa.RegZero, 0)
		b.Op3(isa.OpAdd, rAcc, rAcc, t1)
		b.OpI(isa.OpXori, rAcc, rAcc, 0x3D)
		end := b.Jump(0)
		b.PatchImm(br, b.PC())
		b.OpI(isa.OpSlli, t3, t1, 1)
		b.Op3(isa.OpXor, rAcc, rAcc, t3)
		b.PatchImm(end, b.PC())
	}
}

// gather2hop emits dependent two-level gathers — load an index, then load
// through it — the pointer-style addressing that pervades SPEC. Each second
// hop's issue depends on the first hop's wake-up, so policies that defer
// load wake-ups (load restriction above all) pay the full commit-path delay
// per hop.
func (k *kern) gather2hop(n int, tableBytes int) {
	b := k.b
	for i := 0; i < n; i++ {
		k.lcgStep(t0)
		b.OpI(isa.OpAndi, t0, t0, int64(tableBytes-1)&^7)
		b.Op3(isa.OpAdd, t0, t0, rTable)
		b.Load(isa.OpLd, t1, t0, 0) // hop 1: index
		b.OpI(isa.OpAndi, t1, t1, int64(tableBytes-1)&^7)
		b.Op3(isa.OpAdd, t1, t1, rTable)
		b.Load(isa.OpLd, t2, t1, 0) // hop 2: through the loaded index
		b.Op3(isa.OpXor, rAcc, rAcc, t2)
	}
}
