package workload

import (
	"fmt"
	"math/rand"

	"nda/internal/isa"
)

// Spec is one benchmark: a named, deterministic program generator. Build
// returns a program whose main loop runs iters times; the sampling harness
// passes a huge count and stops by instruction budget, while tests pass
// small counts and run to the HALT.
type Spec struct {
	Name        string
	Suite       string // "intrate", "fprate", or "generic"
	Description string
	Build       func(iters uint64) *isa.Program
}

// build wraps a benchmark body in the standard harness: functions and data
// are emitted by setup (before main, so call targets are resolved), then the
// main loop runs the returned body iters times.
func build(seed int64, setup func(k *kern) func()) func(uint64) *isa.Program {
	return func(iters uint64) *isa.Program {
		b := NewBuilder()
		k := &kern{b: b, r: rand.New(rand.NewSource(seed))}
		body := setup(k)
		b.Label("main")
		b.SetEntry()
		k.prologue()
		b.Li(rOuter, iters)
		top := b.PC()
		body()
		b.OpI(isa.OpAddi, rOuter, rOuter, -1)
		b.Branch(isa.OpBne, rOuter, isa.RegZero, top)
		b.Halt()
		return b.Program()
	}
}

// Working-set sizes. The L2 is 2MB: "big" regions miss it, "small" ones
// live in L1.
const (
	wsL1  = 16 << 10
	wsL2  = 512 << 10
	wsBig = 8 << 20
)

// SPEC returns the 23 SPEC CPU 2017 proxy benchmarks used by the Fig. 7
// evaluation. Each is a synthetic kernel reproducing the named benchmark's
// dominant micro-architectural bottleneck — not the benchmark itself.
func SPEC() []Spec {
	return []Spec{
		// --- integer suite proxies ---
		{"perlbench", "intrate", "interpreter: call-heavy with unpredictable dispatch", build(101, func(k *kern) func() {
			cs := k.emitCallFuncs(6)
			k.patternData(wsL1)
			k.tableData(wsL2)
			return func() {
				k.calls(cs, 6)
				k.branchy(4, wsL1)
				k.gather2hop(1, wsL2)
				k.scatterIndirect(1, wsL2)
				k.compute(2, false)
			}
		})},
		{"gcc", "intrate", "compiler: branchy pointer-structure walks", build(102, func(k *kern) func() {
			k.patternData(wsL2)
			k.tableData(wsL2)
			return func() { k.branchy(4, wsL2); k.branchyGather(2, wsL2); k.scatterIndirect(1, wsL2); k.compute(2, false) }
		})},
		{"mcf", "intrate", "network simplex: pointer chasing over a large graph", build(103, func(k *kern) func() {
			k.chaseData(wsBig / 64)
			k.patternData(wsL2)
			return func() { k.chase(4); k.branchyGather(1, wsL2); k.compute(1, false) }
		})},
		{"omnetpp", "intrate", "discrete event simulation: chase + calls", build(104, func(k *kern) func() {
			cs := k.emitCallFuncs(4)
			k.chaseData(wsL2 / 64)
			k.patternData(wsL2)
			return func() { k.chase(3); k.calls(cs, 3); k.branchyGather(1, wsL2); k.compute(1, false) }
		})},
		{"xalancbmk", "intrate", "XML transform: irregular table lookups + branches", build(105, func(k *kern) func() {
			k.tableData(wsBig)
			k.patternData(wsL2)
			return func() {
				k.randomAccess(2, wsBig)
				k.branchyGather(1, wsL2)
				k.scatterIndirect(1, wsBig)
				k.sortish(2, wsL1)
			}
		})},
		{"x264", "intrate", "video encode: dense arithmetic over streams", build(106, func(k *kern) func() {
			return func() { k.stream(4, wsL2, false); k.compute(6, true); k.bitops(3) }
		})},
		{"deepsjeng", "intrate", "chess search: unpredictable branches", build(107, func(k *kern) func() {
			k.patternData(wsL2)
			return func() { k.branchy(6, wsL1); k.branchyGather(2, wsL2); k.compute(3, false) }
		})},
		{"leela", "intrate", "go engine: branchy tree walks with calls", build(108, func(k *kern) func() {
			cs := k.emitCallFuncs(3)
			k.patternData(wsL2)
			return func() { k.branchy(4, wsL1); k.branchyGather(2, wsL2); k.calls(cs, 2); k.compute(2, true) }
		})},
		{"exchange2", "intrate", "puzzle solver: pure integer compute, high IPC", build(109, func(k *kern) func() {
			return func() { k.compute(12, true) }
		})},
		{"xz", "intrate", "compression: bit twiddling + table lookups", build(110, func(k *kern) func() {
			k.tableData(wsL1)
			k.patternData(wsL1)
			return func() { k.bitops(6); k.gather2hop(1, wsL1); k.branchy(3, wsL1) }
		})},

		// --- floating-point suite proxies ---
		{"bwaves", "fprate", "explicit CFD: long unit-stride streams", build(201, func(k *kern) func() {
			return func() { k.stream(8, wsBig, false) }
		})},
		{"cactuBSSN", "fprate", "numerical relativity: wide stencils", build(202, func(k *kern) func() {
			return func() { k.stencil(6, wsBig); k.compute(2, true) }
		})},
		{"namd", "fprate", "molecular dynamics: dot products over pair lists", build(203, func(k *kern) func() {
			k.tableData(wsL2)
			return func() { k.dotProduct(5, wsL2); k.gather2hop(1, wsL2); k.compute(2, true) }
		})},
		{"parest", "fprate", "finite elements: sparse gather + dense math", build(204, func(k *kern) func() {
			k.tableData(wsBig)
			return func() { k.gather2hop(1, wsBig); k.scatterIndirect(1, wsBig); k.dotProduct(4, wsL2) }
		})},
		{"povray", "fprate", "ray tracing: compute + branches + calls", build(205, func(k *kern) func() {
			cs := k.emitCallFuncs(4)
			k.patternData(wsL1)
			return func() { k.compute(5, true); k.branchy(3, wsL1); k.calls(cs, 2) }
		})},
		{"lbm", "fprate", "lattice Boltzmann: streaming loads AND stores", build(206, func(k *kern) func() {
			return func() { k.stream(8, wsBig, true) }
		})},
		{"wrf", "fprate", "weather model: stencil + stream mix", build(207, func(k *kern) func() {
			return func() { k.stencil(4, wsBig); k.stream(3, wsL2, false) }
		})},
		{"blender", "fprate", "rendering: compute over irregular geometry", build(208, func(k *kern) func() {
			k.tableData(wsL2)
			return func() { k.compute(4, true); k.gather2hop(1, wsL2); k.scatterIndirect(1, wsL2) }
		})},
		{"cam4", "fprate", "atmosphere model: stencil + conditionals", build(209, func(k *kern) func() {
			k.patternData(wsL1)
			return func() { k.stencil(4, wsL2); k.branchy(3, wsL1) }
		})},
		{"imagick", "fprate", "image processing: dense per-pixel compute", build(210, func(k *kern) func() {
			return func() { k.compute(8, true); k.stream(2, wsL2, true) }
		})},
		{"nab", "fprate", "molecular modelling: compute + gathers", build(211, func(k *kern) func() {
			k.tableData(wsL2)
			return func() { k.compute(5, true); k.gather2hop(1, wsL2) }
		})},
		{"fotonik3d", "fprate", "electromagnetics: large streaming sweeps", build(212, func(k *kern) func() {
			return func() { k.stream(6, wsBig, true); k.stencil(2, wsBig) }
		})},
		{"roms", "fprate", "ocean model: stream + stencil", build(213, func(k *kern) func() {
			k.tableData(wsL2)
			return func() { k.stream(4, wsBig, false); k.stencil(4, wsL2); k.scatterIndirect(1, wsL2) }
		})},
	}
}

// Generic returns standalone single-kernel workloads, useful for targeted
// experiments and ablations.
func Generic() []Spec {
	return []Spec{
		{"pchase-l2", "generic", "pointer chase, L2-resident", build(301, func(k *kern) func() {
			k.chaseData(wsL2 / 64)
			return func() { k.chase(8) }
		})},
		{"pchase-mem", "generic", "pointer chase, DRAM-resident", build(302, func(k *kern) func() {
			k.chaseData(wsBig / 64)
			return func() { k.chase(8) }
		})},
		{"stream", "generic", "unit-stride streaming loads", build(303, func(k *kern) func() {
			return func() { k.stream(8, wsBig, false) }
		})},
		{"branchy", "generic", "data-dependent unpredictable branches", build(304, func(k *kern) func() {
			k.patternData(wsL1)
			return func() { k.branchy(8, wsL1) }
		})},
		{"compute", "generic", "dependent integer arithmetic", build(305, func(k *kern) func() {
			return func() { k.compute(10, true) }
		})},
		{"calls", "generic", "call/return heavy", build(306, func(k *kern) func() {
			cs := k.emitCallFuncs(8)
			return func() { k.calls(cs, 8) }
		})},
		{"gather", "generic", "random gathers from a DRAM-sized table", build(307, func(k *kern) func() {
			k.tableData(wsBig)
			return func() { k.randomAccess(6, wsBig) }
		})},
	}
}

// All returns SPEC() followed by Generic().
func All() []Spec { return append(SPEC(), Generic()...) }

// ByName finds a spec by name in All().
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}
