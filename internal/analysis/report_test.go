package analysis

import "testing"

// The CLIs share one exit convention; ExitCode is the single place that
// maps a report onto it.
func TestReportExitCode(t *testing.T) {
	cases := []struct {
		name     string
		findings []Finding
		want     int
	}{
		{"empty", nil, ExitClean},
		{"open finding", []Finding{
			{File: "a.go", Tool: "ndavet", Pass: "detlint", Message: "x"},
		}, ExitFindings},
		{"allowed only", []Finding{
			{File: "a.go", Tool: "ndavet", Pass: "detlint", Message: "x", Allowed: true, Reason: "ok"},
		}, ExitClean},
		{"allowed plus open", []Finding{
			{File: "a.go", Tool: "ndavet", Pass: "detlint", Message: "x", Allowed: true, Reason: "ok"},
			{File: "b.go", Tool: "ndavet", Pass: "errlint", Message: "y"},
		}, ExitFindings},
	}
	for _, c := range cases {
		r := NewReport("ndavet", c.findings)
		if got := r.ExitCode(); got != c.want {
			t.Errorf("%s: ExitCode() = %d, want %d", c.name, got, c.want)
		}
	}
}

// The three codes are an external contract (CI scripts match on them);
// pin the values.
func TestExitCodeValues(t *testing.T) {
	if ExitClean != 0 || ExitFindings != 1 || ExitToolError != 2 {
		t.Fatalf("exit codes moved: clean=%d findings=%d toolerror=%d", ExitClean, ExitFindings, ExitToolError)
	}
}
