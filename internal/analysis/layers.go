package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Class is a package's architectural role. It decides which ndavet passes
// apply and which standard-library dependencies are off limits.
type Class string

const (
	// Deterministic packages are the simulator core: byte-identical
	// outputs are their contract, so wall-clock reads, global randomness,
	// mutable package state, and any network/OS dependency are findings.
	Deterministic Class = "deterministic"
	// Concurrency packages (internal/par) are the leaf-like scheduling
	// utilities under the deterministic engine: same stdlib restrictions
	// as deterministic code, plus locklint.
	Concurrency Class = "concurrency"
	// Service packages (serve, dist) own goroutines, sockets, and locks;
	// locklint applies, the OS/network stdlib is fair game.
	Service Class = "service"
	// Tooling packages host the analyzers themselves; they read the
	// filesystem but must not reach the network.
	Tooling Class = "tooling"
	// CLI packages are the command mains and their flag/signal plumbing.
	CLI Class = "cli"
	// Example packages are the documentation programs under examples/.
	Example Class = "example"
)

// Rule declares one package's layer contract: its class and the exact set
// of module-internal packages it may import. Imports outside Allow — and,
// for restricted classes, imports of the forbidden stdlib surface — are
// layerlint findings.
type Rule struct {
	Path  string   // import path, e.g. "nda/internal/ooo"
	Class Class    // architectural role
	Allow []string // module-internal imports this package may use
}

// deniedStd lists the stdlib import prefixes each restricted class must
// not depend on. A package importing "net/http" matches the "net" prefix.
var deniedStd = map[Class][]string{
	Deterministic: {"net", "os", "syscall", "time"},
	Concurrency:   {"net", "os", "syscall", "time"},
	Tooling:       {"net", "syscall"},
}

// DefaultContract is the repo's declared import DAG: every package in the
// module, bottom layer first. Editing it without regenerating the README
// table (make contract-check / ndavet -contract) fails CI.
//
// The ordering convention mirrors the architecture: ISA and machine-state
// leaves, then the cores, then the evaluation drivers, then the service
// and CLI shells around them.
var DefaultContract = []Rule{
	// Leaves: no module-internal imports at all.
	{Path: "nda/internal/isa", Class: Deterministic},
	{Path: "nda/internal/bpred", Class: Deterministic},
	{Path: "nda/internal/cache", Class: Deterministic},
	{Path: "nda/internal/mem", Class: Deterministic},
	{Path: "nda/internal/stats", Class: Deterministic},
	{Path: "nda/internal/par", Class: Concurrency},
	{Path: "nda/internal/analysis", Class: Tooling},

	// ISA consumers.
	{Path: "nda/internal/asm", Class: Deterministic, Allow: []string{"nda/internal/isa"}},
	{Path: "nda/internal/core", Class: Deterministic, Allow: []string{"nda/internal/isa"}},
	{Path: "nda/internal/workload", Class: Deterministic, Allow: []string{"nda/internal/isa"}},
	{Path: "nda/internal/emu", Class: Deterministic, Allow: []string{"nda/internal/isa", "nda/internal/mem"}},

	// Cores.
	{Path: "nda/internal/inorder", Class: Deterministic, Allow: []string{
		"nda/internal/cache", "nda/internal/emu", "nda/internal/isa", "nda/internal/mem"}},
	{Path: "nda/internal/ooo", Class: Deterministic, Allow: []string{
		"nda/internal/bpred", "nda/internal/cache", "nda/internal/core", "nda/internal/emu",
		"nda/internal/isa", "nda/internal/mem"}},
	{Path: "nda/internal/checkpoint", Class: Deterministic, Allow: []string{
		"nda/internal/core", "nda/internal/emu", "nda/internal/inorder", "nda/internal/isa",
		"nda/internal/mem", "nda/internal/ooo"}},
	{Path: "nda/internal/trace", Class: Deterministic, Allow: []string{"nda/internal/ooo"}},

	// Evaluation drivers.
	{Path: "nda/internal/progen", Class: Deterministic, Allow: []string{
		"nda/internal/asm", "nda/internal/isa"}},
	{Path: "nda/internal/attack", Class: Deterministic, Allow: []string{
		"nda/internal/asm", "nda/internal/core", "nda/internal/inorder", "nda/internal/isa",
		"nda/internal/ooo", "nda/internal/par"}},
	{Path: "nda/internal/gadget", Class: Deterministic, Allow: []string{
		"nda/internal/analysis", "nda/internal/attack", "nda/internal/core", "nda/internal/isa",
		"nda/internal/par", "nda/internal/workload"}},
	{Path: "nda/internal/diffuzz", Class: Deterministic, Allow: []string{
		"nda/internal/core", "nda/internal/emu", "nda/internal/gadget", "nda/internal/isa",
		"nda/internal/mem", "nda/internal/ooo", "nda/internal/par", "nda/internal/progen"}},
	{Path: "nda/internal/harness", Class: Deterministic, Allow: []string{
		"nda/internal/asm", "nda/internal/cache", "nda/internal/checkpoint", "nda/internal/core",
		"nda/internal/inorder", "nda/internal/isa", "nda/internal/ooo", "nda/internal/par",
		"nda/internal/stats", "nda/internal/workload"}},

	// Public facade.
	{Path: "nda", Class: Deterministic, Allow: []string{
		"nda/internal/asm", "nda/internal/attack", "nda/internal/checkpoint", "nda/internal/core",
		"nda/internal/harness", "nda/internal/inorder", "nda/internal/isa", "nda/internal/ooo",
		"nda/internal/trace", "nda/internal/workload"}},

	// Service shell.
	{Path: "nda/internal/store", Class: Service},
	{Path: "nda/internal/tenant", Class: Service},
	{Path: "nda/internal/dist", Class: Service, Allow: []string{"nda/internal/par"}},
	{Path: "nda/internal/serve", Class: Service, Allow: []string{
		"nda/internal/attack", "nda/internal/core", "nda/internal/dist", "nda/internal/gadget",
		"nda/internal/harness", "nda/internal/ooo", "nda/internal/par", "nda/internal/store",
		"nda/internal/tenant", "nda/internal/workload"}},
	{Path: "nda/internal/load", Class: Service, Allow: []string{
		"nda/internal/serve", "nda/internal/tenant"}},

	// CLI shell.
	{Path: "nda/internal/cliutil", Class: CLI, Allow: []string{
		"nda/internal/dist", "nda/internal/tenant", "nda/internal/workload"}},
	{Path: "nda/cmd/ndasim", Class: CLI, Allow: []string{
		"nda/internal/asm", "nda/internal/cliutil", "nda/internal/core", "nda/internal/inorder",
		"nda/internal/isa", "nda/internal/ooo", "nda/internal/trace", "nda/internal/workload"}},
	{Path: "nda/cmd/ndabench", Class: CLI, Allow: []string{
		"nda/internal/cliutil", "nda/internal/core", "nda/internal/dist", "nda/internal/harness",
		"nda/internal/ooo", "nda/internal/serve", "nda/internal/workload"}},
	{Path: "nda/cmd/ndattack", Class: CLI, Allow: []string{
		"nda/internal/attack", "nda/internal/cliutil", "nda/internal/core", "nda/internal/harness",
		"nda/internal/ooo"}},
	{Path: "nda/cmd/ndalint", Class: CLI, Allow: []string{
		"nda/internal/analysis", "nda/internal/diffuzz", "nda/internal/gadget"}},
	{Path: "nda/cmd/ndavet", Class: CLI, Allow: []string{"nda/internal/analysis", "nda/internal/cliutil"}},
	{Path: "nda/cmd/ndaserve", Class: CLI, Allow: []string{
		"nda/internal/cliutil", "nda/internal/dist", "nda/internal/serve", "nda/internal/store",
		"nda/internal/tenant"}},
	{Path: "nda/cmd/ndaload", Class: CLI, Allow: []string{
		"nda/internal/cliutil", "nda/internal/load", "nda/internal/serve", "nda/internal/tenant"}},
	{Path: "nda/cmd/benchjson", Class: CLI},

	// Documentation programs.
	{Path: "nda/examples/quickstart", Class: Example, Allow: []string{"nda"}},
	{Path: "nda/examples/spectre", Class: Example, Allow: []string{"nda"}},
	{Path: "nda/examples/btbchannel", Class: Example, Allow: []string{"nda"}},
	{Path: "nda/examples/policysweep", Class: Example, Allow: []string{"nda"}},
}

// contractIndex maps a contract by import path, rejecting duplicates.
func contractIndex(contract []Rule) (map[string]*Rule, error) {
	idx := make(map[string]*Rule, len(contract))
	for i := range contract {
		r := &contract[i]
		if _, dup := idx[r.Path]; dup {
			return nil, fmt.Errorf("layer contract lists %s twice", r.Path)
		}
		idx[r.Path] = r
	}
	return idx, nil
}

// contractCycle looks for a cycle in the declared Allow graph itself — a
// contract that permits a cycle is wrong even before any code exists to
// exploit it. It returns the cycle as "a -> b -> a", or "" if acyclic.
func contractCycle(contract []Rule) string {
	idx, err := contractIndex(contract)
	if err != nil {
		return err.Error()
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(idx))
	var stack []string
	var found string
	var visit func(path string)
	visit = func(path string) {
		if found != "" {
			return
		}
		color[path] = gray
		stack = append(stack, path)
		r := idx[path]
		if r != nil {
			for _, dep := range r.Allow {
				switch color[dep] {
				case gray:
					i := 0
					for j, p := range stack {
						if p == dep {
							i = j
						}
					}
					found = strings.Join(append(stack[i:], dep), " -> ")
					return
				case white:
					visit(dep)
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[path] = black
	}
	paths := make([]string, 0, len(idx))
	for p := range idx {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if color[p] == white {
			visit(p)
		}
	}
	return found
}

// ContractTable renders the contract as the markdown table embedded in the
// README between the ndavet:contract markers. make contract-check diffs
// the two, so the in-source contract and the documented one cannot drift.
func ContractTable(contract []Rule) string {
	var b strings.Builder
	b.WriteString("| Package | Class | May import (module-internal) |\n")
	b.WriteString("|---|---|---|\n")
	for i := range contract {
		r := &contract[i]
		deps := "—"
		if len(r.Allow) > 0 {
			short := make([]string, len(r.Allow))
			for j, d := range r.Allow {
				short[j] = "`" + strings.TrimPrefix(d, "nda/") + "`"
			}
			sort.Strings(short)
			deps = strings.Join(short, ", ")
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s |\n", strings.TrimPrefix(r.Path, "nda/"), r.Class, deps)
	}
	return b.String()
}
