package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// locklint flags sync.Mutex/RWMutex critical sections that span blocking
// operations in the service and concurrency layers (serve, dist, store,
// tenant, load, par). A lock held across a channel operation, a select
// without a default, a WaitGroup/Cond Wait, a semaphore Acquire, an HTTP
// round-trip, disk I/O, or a time.Sleep turns every other goroutine
// contending for that lock into a hostage of the slow path — the classic
// way a "bounded" service seizes up under load.
//
// v2 (the interprocedural upgrade): a critical section is still lexical —
// from X.Lock() to the next X.Unlock() on the same receiver expression in
// source order, or to the end of the function when the unlock is deferred
// (or absent) — but the blocking events inside it now include calls to
// module functions that *transitively* block, resolved through the call
// graph's static edges with the dataflow blocks summary. Channel
// operations guarded by a select that has a default case remain
// non-blocking and are not flagged.
//
// Kinds: "lexical" (the operation is in the locked body itself),
// "transitive" (the operation is below a static call made under the lock).
func runLocklint(m *Module, idx map[string]*Rule, g *CallGraph) []Finding {
	var out []Finding
	for _, n := range g.Nodes {
		switch classOf(idx, n.Pkg.Path) {
		case Service, Concurrency:
		default:
			continue
		}
		out = append(out, lockSections(m, n)...)
	}
	return out
}

type lockEvent struct {
	pos      token.Pos
	recv     string // receiver expression, e.g. "c.mu"
	unlock   bool
	read     bool // RLock/RUnlock
	deferred bool
}

type blockEvent struct {
	node ast.Node
	kind string
	desc string
}

// lockSections scans one function body and reports blocking operations
// positioned inside a lexical critical section.
func lockSections(m *Module, n *FuncNode) []Finding {
	p := n.Pkg
	fname := "func literal"
	if n.Decl != nil {
		fname = n.Decl.Name.Name
	}

	var locks []lockEvent
	noteLock := func(call *ast.CallExpr, deferred bool) bool {
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		selection, ok := p.Info.Selections[sel]
		if !ok || pkgPathOf(selection.Obj()) != "sync" {
			return false
		}
		name := selection.Obj().Name()
		if name != "Lock" && name != "Unlock" && name != "RLock" && name != "RUnlock" {
			return false
		}
		locks = append(locks, lockEvent{
			pos:      call.Pos(),
			recv:     types.ExprString(sel.X),
			unlock:   strings.HasSuffix(name, "nlock"),
			read:     strings.HasPrefix(name, "R"),
			deferred: deferred,
		})
		return true
	}
	walkSkipFuncLit(n.Body, func(c ast.Node) bool {
		switch s := c.(type) {
		case *ast.DeferStmt:
			noteLock(s.Call, true)
		case *ast.CallExpr:
			noteLock(s, false)
		}
		return true
	})

	// Blocking events: the shared lexical scanner (select-with-default
	// guards already filtered), plus transitive events at static calls to
	// module functions whose dataflow summary says they can block.
	var blocks []blockEvent
	for _, op := range blockingOpsIn(p, n.Body) {
		blocks = append(blocks, blockEvent{op.node, "lexical", op.desc})
	}
	for _, cs := range n.Calls {
		// A go statement returns immediately: the spawned work does not
		// extend the critical section (leaklint owns the spawned side).
		if cs.Go || cs.Static == nil || blockingCall(p.Info, cs.Call) != "" {
			continue
		}
		if w := cs.Static.summary.blocks; w != nil {
			blocks = append(blocks, blockEvent{cs.Call, "transitive",
				"a call to " + shortName(m, cs.Static.Name) + ", which can block: " + w.describe(m)})
		}
	}

	var out []Finding
	for i, lk := range locks {
		if lk.unlock {
			continue
		}
		// Find the matching unlock: nearest later Unlock/RUnlock on the
		// same receiver. Deferred unlocks hold until the function returns.
		end := n.Body.End()
		for j := i + 1; j < len(locks); j++ {
			u := locks[j]
			if u.unlock && u.recv == lk.recv && u.read == lk.read {
				if !u.deferred {
					end = u.pos
				}
				break
			}
		}
		_, lockLine, _ := m.Rel(lk.pos)
		for _, b := range blocks {
			if b.node.Pos() <= lk.pos || b.node.Pos() >= end {
				continue
			}
			out = append(out, m.kfinding("locklint", b.kind, b.node,
				lk.recv+" (locked at line "+strconv.Itoa(lockLine)+" in "+fname+") is held across "+b.desc+
					"; blocking under a mutex stalls every contender"))
		}
	}
	return out
}

// blockingCall classifies calls that can block indefinitely: Wait and
// Acquire methods (sync.WaitGroup, sync.Cond, par.Sem, semaphores in
// general), HTTP round-trips and serve loops, disk and stream I/O,
// network dials, and time.Sleep.
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	obj, _ := calleeOf(info, call)
	if obj == nil {
		return ""
	}
	name := obj.Name()
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch name {
		case "Wait", "Acquire", "RoundTrip":
			return name + " call"
		}
		recvT := sig.Recv().Type().String()
		switch {
		case strings.Contains(recvT, "net/http.Client") && name == "Do":
			return "HTTP round-trip (http.Client.Do)"
		case strings.Contains(recvT, "net/http.Server"):
			switch name {
			case "Serve", "ListenAndServe", "ListenAndServeTLS":
				return "HTTP serve loop (http.Server." + name + ")"
			}
		case strings.Contains(recvT, "os.File"):
			switch name {
			case "Read", "Write", "WriteString", "ReadAt", "WriteAt", "Sync":
				return "disk I/O (os.File." + name + ")"
			}
		}
		return ""
	}
	switch pkgPathOf(obj) {
	case "net/http":
		switch name {
		case "Get", "Post", "PostForm", "Head":
			return "HTTP round-trip (http." + name + ")"
		}
	case "net":
		switch name {
		case "Dial", "DialTimeout", "Listen":
			return "network dial (net." + name + ")"
		}
	case "os":
		switch name {
		case "ReadFile", "WriteFile", "Open", "OpenFile", "Create", "ReadDir", "Remove", "Rename":
			return "disk I/O (os." + name + ")"
		}
	case "io":
		switch name {
		case "ReadAll", "Copy":
			return "stream I/O (io." + name + ")"
		}
	case "path/filepath":
		switch name {
		case "Walk", "WalkDir":
			return "disk I/O (filepath." + name + ")"
		}
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	}
	return ""
}
