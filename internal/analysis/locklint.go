package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// locklint flags sync.Mutex/RWMutex critical sections that span blocking
// operations in the service and concurrency layers (serve, dist, par). A
// lock held across a channel operation, a select without a default, a
// WaitGroup/Cond Wait, a semaphore Acquire, an HTTP round-trip, or a
// time.Sleep turns every other goroutine contending for that lock into a
// hostage of the slow path — the classic way a "bounded" service seizes
// up under load.
//
// The analysis is lexical and intra-procedural: a critical section runs
// from X.Lock() to the next X.Unlock() on the same receiver expression in
// source order, or to the end of the function when the unlock is
// deferred (or absent). Channel operations guarded by a select that has a
// default case are non-blocking and not flagged.
func runLocklint(m *Module, idx map[string]*Rule) []Finding {
	var out []Finding
	for _, p := range m.Pkgs {
		switch classOf(idx, p.Path) {
		case Service, Concurrency:
		default:
			continue
		}
		eachFuncBody(p, func(name string, body *ast.BlockStmt) {
			out = append(out, lockSections(m, p, name, body)...)
		})
	}
	return out
}

type lockEvent struct {
	pos      token.Pos
	recv     string // receiver expression, e.g. "c.mu"
	unlock   bool
	read     bool // RLock/RUnlock
	deferred bool
}

type blockEvent struct {
	node ast.Node
	desc string
}

// lockSections scans one function body and reports blocking operations
// positioned inside a lexical critical section.
func lockSections(m *Module, p *Pkg, fname string, body *ast.BlockStmt) []Finding {
	var locks []lockEvent
	var blocks []blockEvent

	noteLock := func(call *ast.CallExpr, deferred bool) bool {
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		selection, ok := p.Info.Selections[sel]
		if !ok || pkgPathOf(selection.Obj()) != "sync" {
			return false
		}
		name := selection.Obj().Name()
		if name != "Lock" && name != "Unlock" && name != "RLock" && name != "RUnlock" {
			return false
		}
		locks = append(locks, lockEvent{
			pos:      call.Pos(),
			recv:     types.ExprString(sel.X),
			unlock:   strings.HasSuffix(name, "nlock"),
			read:     strings.HasPrefix(name, "R"),
			deferred: deferred,
		})
		return true
	}

	// selects tracks the spans of select statements that have a default
	// case; channel operations inside their comm guards are non-blocking.
	type span struct{ lo, hi token.Pos }
	var nonBlockingComms []span

	walkSkipFuncLit(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeferStmt:
			noteLock(s.Call, true)
			return true
		case *ast.CallExpr:
			if noteLock(s, false) {
				return true
			}
			if desc := blockingCall(p.Info, s); desc != "" {
				blocks = append(blocks, blockEvent{s, desc})
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				blocks = append(blocks, blockEvent{s, "select with no default case"})
			}
			// Comm guards are never flagged on their own: with a default
			// they are non-blocking, without one the select event above
			// already reports the wait. Clause bodies run after the select
			// fires and block like any other code.
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
					nonBlockingComms = append(nonBlockingComms, span{cc.Comm.Pos(), cc.Comm.End()})
				}
			}
		case *ast.SendStmt:
			blocks = append(blocks, blockEvent{s, "channel send"})
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				blocks = append(blocks, blockEvent{s, "channel receive"})
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(s.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					blocks = append(blocks, blockEvent{s, "range over channel"})
				}
			}
		}
		return true
	})

	var out []Finding
	for i, lk := range locks {
		if lk.unlock {
			continue
		}
		// Find the matching unlock: nearest later Unlock/RUnlock on the
		// same receiver. Deferred unlocks hold until the function returns.
		end := body.End()
		for j := i + 1; j < len(locks); j++ {
			u := locks[j]
			if u.unlock && u.recv == lk.recv && u.read == lk.read {
				if !u.deferred {
					end = u.pos
				}
				break
			}
		}
		_, lockLine, _ := m.Rel(lk.pos)
		for _, b := range blocks {
			if b.node.Pos() <= lk.pos || b.node.Pos() >= end {
				continue
			}
			guarded := false
			for _, sp := range nonBlockingComms {
				if b.node.Pos() >= sp.lo && b.node.End() <= sp.hi {
					guarded = true
					break
				}
			}
			if guarded {
				continue
			}
			out = append(out, m.finding("locklint", b.node,
				lk.recv+" (locked at line "+strconv.Itoa(lockLine)+" in "+fname+") is held across "+b.desc+
					"; blocking under a mutex stalls every contender"))
		}
	}
	return out
}

// blockingCall classifies calls that can block indefinitely: Wait and
// Acquire methods (sync.WaitGroup, sync.Cond, par.Sem, semaphores in
// general), HTTP round-trips, and time.Sleep.
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	obj, _ := calleeOf(info, call)
	if obj == nil {
		return ""
	}
	name := obj.Name()
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch name {
		case "Wait", "Acquire", "RoundTrip":
			return name + " call"
		case "Do":
			if recvT := sig.Recv().Type(); strings.Contains(recvT.String(), "net/http.Client") {
				return "HTTP round-trip (http.Client.Do)"
			}
		}
		return ""
	}
	switch pkgPathOf(obj) {
	case "net/http":
		switch name {
		case "Get", "Post", "PostForm", "Head":
			return "HTTP round-trip (http." + name + ")"
		}
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	}
	return ""
}
