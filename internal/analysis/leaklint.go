package analysis

// leaklint checks that every goroutine spawned in the service and
// concurrency layers has a visible termination path. A go statement is
// accepted when the spawned function (or, for dynamic spawns, every
// enumerated module candidate):
//
//   - has a cancellation signal in scope — a context.Context, channel, or
//     *http.Request parameter, receiver field, or captured variable (the
//     ctx/done idiom), or
//   - joins a WaitGroup ((*sync.WaitGroup).Done in its body), or
//   - provably terminates on its own: no unbounded loop and no blocking
//     operation, transitively.
//
// Anything else is a goroutine that can outlive its work invisibly — the
// scheduler/SSE/coordinator leak class this pass exists to catch.
//
// Precision note: a spawn through an interface or func value restricts
// itself to the call graph's enumerated module candidates; a dynamic
// spawn with no candidates at all is reported as kind "dynamic" rather
// than silently trusted. Kinds: "leak", "dynamic".
func runLeaklint(m *Module, idx map[string]*Rule, g *CallGraph) []Finding {
	var out []Finding
	for _, n := range g.Nodes {
		switch classOf(idx, n.Pkg.Path) {
		case Service, Concurrency:
		default:
			continue
		}
		for _, cs := range n.Calls {
			if !cs.Go {
				continue
			}
			targets := cs.Targets()
			if len(targets) == 0 {
				out = append(out, m.kfinding("leaklint", "dynamic", cs.Call,
					"go statement spawns "+cs.Desc+"; the target cannot be resolved, so no termination path is visible"))
				continue
			}
			for _, t := range targets {
				if w := leakWitness(t); w != nil {
					out = append(out, m.kfinding("leaklint", "leak", cs.Call,
						"go statement spawns "+shortName(m, t.Name)+" with no visible termination path: "+
							w.describe(m)+"; give it a ctx/done parameter, a bound, or a WaitGroup join"))
					break // one finding per go statement
				}
			}
		}
	}
	return out
}

// leakWitness returns why the spawned function may never terminate, or
// nil when a termination path is visible.
func leakWitness(t *FuncNode) *xWitness {
	s := t.summary
	if s.hasCtx || s.wgDone {
		return nil
	}
	if s.loops != nil {
		return s.loops
	}
	if s.blocks != nil {
		return s.blocks
	}
	return nil
}

func shortName(m *Module, name string) string {
	return chainString(m, name, nil)
}
