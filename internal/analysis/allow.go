package analysis

import (
	"go/ast"
	"sort"
	"strconv"
	"strings"
)

// The annotation grammar, one comment per exception:
//
//	//ndavet:allow <pass>[:<kind>] <reason>
//
// placed on the flagged line or on its own line immediately above it. The
// pass name must be one of the registered passes, the optional kind one of
// that pass's finding kinds (see PassKinds), and the reason is mandatory —
// every sanctioned exception documents itself in-source. An annotation
// that grants nothing is itself a finding ("allow" pass), so stale
// exceptions cannot linger after the code they excused is fixed; a
// kind-pinned annotation goes stale as soon as its line stops producing
// that exact finding kind, even if the pass still fires there.
const allowPrefix = "ndavet:allow"

// allowEntry is one parsed //ndavet:allow annotation.
type allowEntry struct {
	file   string
	line   int
	pass   string
	kind   string // "" grants any kind of the pass
	reason string
	used   bool
}

// collectAllows parses every annotation in the module. Malformed ones are
// returned as findings immediately.
func collectAllows(m *Module, passNames map[string]bool) (entries []*allowEntry, malformed []Finding) {
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimPrefix(text, "/*")
					text = strings.TrimSuffix(text, "*/")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, allowPrefix) {
						continue
					}
					file, line, col := m.Rel(c.Pos())
					rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
					spec, reason, _ := strings.Cut(rest, " ")
					reason = strings.TrimSpace(reason)
					pass, kind, _ := strings.Cut(spec, ":")
					switch {
					case !passNames[pass]:
						malformed = append(malformed, Finding{
							File: file, Line: line, Col: col, Tool: "ndavet", Pass: "allow",
							Message: "malformed annotation: want //ndavet:allow <pass>[:<kind>] <reason> with pass one of " +
								passList(passNames) + ", got pass " + quoteOr(pass),
						})
					case kind != "" && !validKind(pass, kind):
						malformed = append(malformed, Finding{
							File: file, Line: line, Col: col, Tool: "ndavet", Pass: "allow",
							Message: "malformed annotation: pass " + pass + " has no finding kind \"" + kind +
								"\" (have " + strings.Join(PassKinds[pass], "|") + ")",
						})
					case reason == "":
						malformed = append(malformed, Finding{
							File: file, Line: line, Col: col, Tool: "ndavet", Pass: "allow",
							Message: "malformed annotation: //ndavet:allow " + spec + " needs a reason",
						})
					default:
						entries = append(entries, &allowEntry{file: file, line: line, pass: pass, kind: kind, reason: reason})
					}
				}
			}
		}
	}
	return entries, malformed
}

func quoteOr(s string) string {
	if s == "" {
		return "nothing"
	}
	return "\"" + s + "\""
}

func passList(passNames map[string]bool) string {
	names := make([]string, 0, len(passNames))
	for n := range passNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, "|")
}

// applyAllows marks findings granted by an annotation on the same line or
// the line above, then reports every annotation that granted nothing.
func applyAllows(findings []Finding, entries []*allowEntry) []Finding {
	byKey := map[string][]*allowEntry{}
	key := func(file string, line int, pass string) string {
		return file + "\x00" + pass + "\x00" + strconv.Itoa(line)
	}
	for _, e := range entries {
		// An annotation on line L grants line L (trailing comment) and
		// line L+1 (comment on its own line above the flagged statement).
		byKey[key(e.file, e.line, e.pass)] = append(byKey[key(e.file, e.line, e.pass)], e)
		byKey[key(e.file, e.line+1, e.pass)] = append(byKey[key(e.file, e.line+1, e.pass)], e)
	}
	for i := range findings {
		f := &findings[i]
		if f.Pass == "allow" {
			continue
		}
		for _, e := range byKey[key(f.File, f.Line, f.Pass)] {
			if e.kind != "" && e.kind != f.Kind {
				continue
			}
			e.used = true
			f.Allowed = true
			f.Reason = e.reason
			break
		}
	}
	for _, e := range entries {
		if !e.used {
			spec := e.pass
			if e.kind != "" {
				spec += ":" + e.kind
			}
			findings = append(findings, Finding{
				File: e.file, Line: e.line, Tool: "ndavet", Pass: "allow",
				Message: "unused //ndavet:allow " + spec + " annotation: no " + spec +
					" finding on this or the next line (fixed code? drop or re-pin the annotation)",
			})
		}
	}
	return findings
}

// validKind reports whether kind is registered for pass in PassKinds.
func validKind(pass, kind string) bool {
	for _, k := range PassKinds[pass] {
		if k == kind {
			return true
		}
	}
	return false
}

// nodeLine is a convenience for passes placing findings at a node.
func (m *Module) finding(pass string, node ast.Node, msg string) Finding {
	file, line, col := m.Rel(node.Pos())
	return Finding{File: file, Line: line, Col: col, Tool: "ndavet", Pass: pass, Message: msg}
}

// kfinding is the kind-carrying variant every pass uses; finding (above)
// remains for the corpus-less "allow" pass plumbing.
func (m *Module) kfinding(pass, kind string, node ast.Node, msg string) Finding {
	f := m.finding(pass, node, msg)
	f.Kind = kind
	return f
}
