package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// PassNames lists the eight ndavet passes in census order.
var PassNames = []string{
	"alloclint", "ctxlint", "detlint", "errlint",
	"globlint", "layerlint", "leaklint", "locklint",
}

// PassDocs gives each pass its one-line description (ndavet -list-passes).
var PassDocs = map[string]string{
	"alloclint": "//ndavet:hotpath functions must not reach an allocating operation (interprocedural)",
	"ctxlint":   "blocking work reachable from a handler entry point must see a cancellation signal (interprocedural)",
	"detlint":   "no wall-clock reads, global randomness, or map-iteration-ordered output",
	"errlint":   "no silently dropped error returns in the service layer",
	"globlint":  "no mutable package-level state in deterministic packages",
	"layerlint": "imports must follow the declared layer contract",
	"leaklint":  "every go statement needs a visible termination path (interprocedural)",
	"locklint":  "no blocking operations — lexical or transitive — under a held mutex",
}

// PassKinds registers each pass's finding kinds. //ndavet:allow
// annotations may pin themselves to one (<pass>:<kind>); an annotation
// naming an unregistered kind is malformed.
var PassKinds = map[string][]string{
	"alloclint": {"call", "op", "roster"},
	"ctxlint":   {"noctx"},
	"detlint":   {"maporder", "rand", "wallclock"},
	"errlint":   {"drop"},
	"globlint":  {"addr", "write"},
	"layerlint": {"contract", "import"},
	"leaklint":  {"dynamic", "leak"},
	"locklint":  {"lexical", "transitive"},
}

// Config selects what a run checks.
type Config struct {
	// Contract is the layer contract to enforce; nil means DefaultContract.
	Contract []Rule
	// Passes restricts the run to a subset of PassNames; nil means all.
	Passes []string
	// HotPathRoster lists function node names that must carry the
	// //ndavet:hotpath annotation (alloclint's tamper check). nil means
	// DefaultHotPathRoster when analyzing this repo's own module, and an
	// empty roster for any other module.
	HotPathRoster []string
}

// RunAll executes the configured passes over a loaded module and returns
// the combined report: every finding (allowed ones marked), sorted, with
// the per-pass census. The error return is for configuration problems
// (unknown pass, duplicate contract entries), not for findings.
func RunAll(m *Module, cfg Config) (*Report, error) {
	contract := cfg.Contract
	if contract == nil {
		contract = DefaultContract
	}
	idx, err := contractIndex(contract)
	if err != nil {
		return nil, err
	}
	all := map[string]bool{}
	for _, n := range PassNames {
		all[n] = true
	}
	selected := map[string]bool{}
	if cfg.Passes == nil {
		selected = all
	} else {
		for _, n := range cfg.Passes {
			if !all[n] {
				return nil, fmt.Errorf("unknown pass %q (have %s)", n, passList(all))
			}
			selected[n] = true
		}
	}

	// The interprocedural passes share one call graph (and its dataflow
	// summaries); build it only when one of them is selected.
	var g *CallGraph
	if selected["alloclint"] || selected["ctxlint"] || selected["leaklint"] || selected["locklint"] {
		g = BuildCallGraph(m)
	}

	var findings []Finding
	if selected["alloclint"] {
		findings = append(findings, runAlloclint(m, g, cfg.HotPathRoster)...)
	}
	if selected["ctxlint"] {
		findings = append(findings, runCtxlint(m, idx, g)...)
	}
	if selected["detlint"] {
		findings = append(findings, runDetlint(m)...)
	}
	if selected["errlint"] {
		findings = append(findings, runErrlint(m, idx)...)
	}
	if selected["globlint"] {
		findings = append(findings, runGloblint(m, idx)...)
	}
	if selected["layerlint"] {
		findings = append(findings, runLayerlint(m, contract, idx)...)
	}
	if selected["leaklint"] {
		findings = append(findings, runLeaklint(m, idx, g)...)
	}
	if selected["locklint"] {
		findings = append(findings, runLocklint(m, idx, g)...)
	}

	entries, malformed := collectAllows(m, all)
	findings = append(findings, malformed...)
	// Annotations for passes not selected this run are neither applied nor
	// reported unused — a -pass subset must not invent complaints about
	// the other passes' exceptions.
	kept := entries[:0]
	for _, e := range entries {
		if selected[e.pass] {
			kept = append(kept, e)
		}
	}
	findings = applyAllows(findings, kept)
	return NewReport("ndavet", findings), nil
}

// classOf returns the contract class for a package path, or "" when the
// package is not in the contract (layerlint reports that separately).
func classOf(idx map[string]*Rule, path string) Class {
	if r := idx[path]; r != nil {
		return r.Class
	}
	return ""
}

// --- shared AST/type helpers used by the passes ---

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeOf resolves a call's target object. For method calls recv is the
// receiver expression; for package-qualified or local calls recv is nil.
func calleeOf(info *types.Info, call *ast.CallExpr) (obj types.Object, recv ast.Expr) {
	switch fn := unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn], nil
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj(), fn.X
		}
		return info.Uses[fn.Sel], nil
	}
	return nil, nil
}

// pkgPathOf returns the defining package path of obj, or "".
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// rootIdent walks to the base identifier of an lvalue-ish expression:
// x, x.f, x[i], *x, (x), x.f[i].g all root at x. Selector chains whose
// base is a package name root at the selected identifier instead
// (pkg.Var roots at Var).
func rootIdent(info *types.Info, e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.SelectorExpr:
			if id, ok := unparen(v.X).(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					return v.Sel
				}
			}
			e = v.X
		default:
			return nil
		}
	}
}

// isPackageLevelVar reports whether obj is a package-scope variable.
func isPackageLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// eachFuncBody invokes fn once per function or method body and once per
// function literal in the package, so analyses that must not leak across
// function boundaries get exactly one call per body.
func eachFuncBody(p *Pkg, fn func(name string, body *ast.BlockStmt)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d.Name.Name, d.Body)
				}
			case *ast.FuncLit:
				fn("func literal", d.Body)
			}
			return true
		})
	}
}

// walkSkipFuncLit walks the statements under n in source order, not
// descending into nested function literals (each gets its own analysis).
// The literal node itself is still visited, so callers can note that a
// closure exists without seeing inside it.
func walkSkipFuncLit(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok && c != n {
			visit(c)
			return false
		}
		return visit(c)
	})
}
