package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Pkg is one typechecked package of the module under analysis.
type Pkg struct {
	Path  string      // full import path, e.g. "nda/internal/ooo"
	Dir   string      // absolute directory
	Files []*ast.File // non-test files, sorted by filename
	Types *types.Package
	Info  *types.Info
	// Internal lists the module-internal imports, sorted; Std the rest.
	Internal []string
	Std      []string
}

// Module is a loaded, fully typechecked module: every non-test package,
// in dependency order (imported packages strictly before importers).
type Module struct {
	Root   string // absolute module root (directory holding go.mod)
	Path   string // module path from go.mod
	Fset   *token.FileSet
	Pkgs   []*Pkg
	ByPath map[string]*Pkg
}

// Rel renders a token position with the file path relative to the module
// root — the stable form findings are reported in.
func (m *Module) Rel(pos token.Pos) (file string, line, col int) {
	p := m.Fset.Position(pos)
	file = p.Filename
	if r, err := filepath.Rel(m.Root, p.Filename); err == nil {
		file = filepath.ToSlash(r)
	}
	return file, p.Line, p.Column
}

// The standard-library importer is shared across Loads: it typechecks
// stdlib packages from source ($GOROOT/src) — the only importer that
// needs no toolchain-generated export data — and caches them per process.
// srcimporter is not safe for concurrent use, so loads serialize on stdMu.
var (
	stdMu   sync.Mutex
	stdFset = token.NewFileSet()
	stdImp  = importer.ForCompiler(stdFset, "source", nil)
)

// moduleImporter resolves module-internal paths from the packages already
// typechecked this load (dependency order guarantees they exist) and
// delegates everything else to the shared stdlib source importer.
type moduleImporter struct {
	modPath string
	done    map[string]*types.Package
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == mi.modPath || strings.HasPrefix(path, mi.modPath+"/") {
		p := mi.done[path]
		if p == nil {
			return nil, fmt.Errorf("internal package %s not yet typechecked (dependency order bug)", path)
		}
		return p, nil
	}
	return stdImp.Import(path)
}

// Load parses and typechecks every non-test package under the module
// containing dir, in dependency order, and returns the typed module.
// Import cycles among module packages and type errors fail the load.
func Load(dir string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	stdMu.Lock()
	defer stdMu.Unlock()

	m := &Module{Root: root, Path: modPath, Fset: stdFset, ByPath: map[string]*Pkg{}}
	if err := m.parseAll(); err != nil {
		return nil, err
	}
	order, err := m.depOrder()
	if err != nil {
		return nil, err
	}
	mi := &moduleImporter{modPath: modPath, done: map[string]*types.Package{}}
	for _, p := range order {
		if err := m.typecheck(p, mi); err != nil {
			return nil, err
		}
	}
	m.Pkgs = order
	return m, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			path := moduleLine(string(data))
			if path == "" {
				return "", "", fmt.Errorf("%s: no module line", filepath.Join(d, "go.mod"))
			}
			return d, path, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found in or above %s", abs)
		}
		d = parent
	}
}

func moduleLine(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			rest = strings.TrimSpace(rest)
			if p, err := strconv.Unquote(rest); err == nil {
				return p
			}
			return rest
		}
	}
	return ""
}

// parseAll walks the module tree and parses every non-test .go file,
// grouping files into packages by directory. testdata, hidden, and nested-
// module directories are skipped, matching the go tool's conventions.
func (m *Module) parseAll() error {
	return filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != m.Root {
				if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
					return filepath.SkipDir
				}
				if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
					return filepath.SkipDir // nested module
				}
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(m.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(m.Root, dir)
		if err != nil {
			return err
		}
		ipath := m.Path
		if rel != "." {
			ipath = m.Path + "/" + filepath.ToSlash(rel)
		}
		p := m.ByPath[ipath]
		if p == nil {
			p = &Pkg{Path: ipath, Dir: dir}
			m.ByPath[ipath] = p
		}
		p.Files = append(p.Files, file)
		return nil
	})
}

// depOrder topologically sorts the packages over their module-internal
// imports and fills each Pkg's Internal/Std import lists. A cycle is an
// error naming its members in order.
func (m *Module) depOrder() ([]*Pkg, error) {
	for _, p := range m.ByPath {
		seen := map[string]bool{}
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil || seen[ip] {
					continue
				}
				seen[ip] = true
				if ip == m.Path || strings.HasPrefix(ip, m.Path+"/") {
					p.Internal = append(p.Internal, ip)
				} else {
					p.Std = append(p.Std, ip)
				}
			}
		}
		sort.Strings(p.Internal)
		sort.Strings(p.Std)
	}

	paths := make([]string, 0, len(m.ByPath))
	for path := range m.ByPath {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(paths))
	var order []*Pkg
	var stack []string
	var cycle []string
	var visit func(path string)
	visit = func(path string) {
		if cycle != nil {
			return
		}
		p := m.ByPath[path]
		if p == nil {
			return // unresolvable import; typecheck will report it
		}
		color[path] = gray
		stack = append(stack, path)
		for _, dep := range p.Internal {
			switch color[dep] {
			case gray:
				i := 0
				for j, s := range stack {
					if s == dep {
						i = j
					}
				}
				cycle = append(append([]string{}, stack[i:]...), dep)
				return
			case white:
				visit(dep)
			}
		}
		stack = stack[:len(stack)-1]
		color[path] = black
		order = append(order, p)
	}
	for _, path := range paths {
		if color[path] == white {
			visit(path)
		}
	}
	if cycle != nil {
		return nil, fmt.Errorf("import cycle among module packages: %s", strings.Join(cycle, " -> "))
	}
	return order, nil
}

// typecheck runs go/types over one package with full use/def/selection
// info, resolving its module-internal imports from mi.
func (m *Module) typecheck(p *Pkg, mi *moduleImporter) error {
	sort.Slice(p.Files, func(i, j int) bool {
		return m.Fset.Position(p.Files[i].Pos()).Filename < m.Fset.Position(p.Files[j].Pos()).Filename
	})
	var errs []string
	conf := types.Config{
		Importer: mi,
		Error: func(err error) {
			if len(errs) < 10 {
				errs = append(errs, err.Error())
			}
		},
	}
	p.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tpkg, err := conf.Check(p.Path, m.Fset, p.Files, p.Info)
	if len(errs) > 0 {
		return fmt.Errorf("typecheck %s: %s", p.Path, strings.Join(errs, "; "))
	}
	if err != nil {
		return fmt.Errorf("typecheck %s: %v", p.Path, err)
	}
	p.Types = tpkg
	mi.done[p.Path] = tpkg
	return nil
}
