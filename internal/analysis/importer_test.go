package analysis

import (
	"strings"
	"testing"
)

// TestLoadDependencyOrder proves the source importer typechecks the
// fixture module bottom-up: the leaf before the middle, the middle before
// the root, with cross-package types resolved for real.
func TestLoadDependencyOrder(t *testing.T) {
	m, err := Load("testdata/module_ok")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if m.Path != "fixtureok" {
		t.Fatalf("module path = %q, want fixtureok", m.Path)
	}
	pos := map[string]int{}
	for i, p := range m.Pkgs {
		pos[p.Path] = i
		if p.Types == nil || p.Info == nil {
			t.Errorf("%s: not typechecked", p.Path)
		}
	}
	for _, dep := range [][2]string{
		{"fixtureok/c", "fixtureok/b"},
		{"fixtureok/b", "fixtureok/a"},
		{"fixtureok/c", "fixtureok/a"},
	} {
		ic, okc := pos[dep[0]]
		ia, oka := pos[dep[1]]
		if !okc || !oka {
			t.Fatalf("missing packages in %v (have %v)", dep, pos)
		}
		if ic >= ia {
			t.Errorf("%s typechecked at %d, after its importer %s at %d", dep[0], ic, dep[1], ia)
		}
	}

	// Cross-package resolution: a.V = b.Sum(c.Mk()) must land as an int.
	a := m.ByPath["fixtureok/a"]
	v := a.Types.Scope().Lookup("V")
	if v == nil {
		t.Fatal("fixtureok/a has no V")
	}
	if got := v.Type().String(); got != "int" {
		t.Errorf("a.V type = %s, want int (cross-package inference failed)", got)
	}
	if got := a.Internal; len(got) != 2 || got[0] != "fixtureok/b" || got[1] != "fixtureok/c" {
		t.Errorf("a.Internal = %v, want [fixtureok/b fixtureok/c]", got)
	}
}

// TestLoadTypeError proves a deliberate type error fails the load with a
// diagnostic naming the package and position.
func TestLoadTypeError(t *testing.T) {
	_, err := Load("testdata/module_typeerr")
	if err == nil {
		t.Fatal("type error not detected")
	}
	msg := err.Error()
	if !strings.Contains(msg, "fixturebad/p") {
		t.Errorf("error does not name the package: %v", err)
	}
	if !strings.Contains(msg, "p.go") {
		t.Errorf("error does not carry a file position: %v", err)
	}
}

// TestLoadImportCycle proves a module-internal import cycle fails the
// load naming the cycle members.
func TestLoadImportCycle(t *testing.T) {
	_, err := Load("testdata/module_cycle")
	if err == nil {
		t.Fatal("import cycle not detected")
	}
	msg := err.Error()
	if !strings.Contains(msg, "import cycle") ||
		!strings.Contains(msg, "fixturecycle/a") || !strings.Contains(msg, "fixturecycle/b") {
		t.Errorf("cycle diagnostic incomplete: %v", err)
	}
}

// TestLoadFindsModuleFromSubdir proves go.mod discovery walks upward.
func TestLoadFindsModuleFromSubdir(t *testing.T) {
	m, err := Load("testdata/module_ok/b")
	if err != nil {
		t.Fatalf("load from subdir: %v", err)
	}
	if m.Path != "fixtureok" || len(m.Pkgs) != 3 {
		t.Errorf("subdir load saw path=%q pkgs=%d, want fixtureok/3", m.Path, len(m.Pkgs))
	}
}
