// Package s exercises the call-graph shapes the resolver has to get
// right: mutual recursion, interface dispatch with multiple
// implementers, method values, go-spawned literals capturing locals,
// and generic instantiation.
package s

// Even and Odd are mutually recursive: one SCC.
func Even(n int) bool {
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

// Odd is Even's partner.
func Odd(n int) bool {
	if n == 0 {
		return false
	}
	return Even(n - 1)
}

// Runner has two module implementers, one value and one pointer receiver.
type Runner interface{ Run() int }

// A implements Runner by value.
type A struct{}

// Run returns a tag.
func (A) Run() int { return 1 }

// B implements Runner by pointer.
type B struct{}

// Run returns a tag.
func (*B) Run() int { return 2 }

// Dispatch calls through the interface: CHA candidates, Unknown mark.
func Dispatch(r Runner) int { return r.Run() }

// Counter is the method-value receiver.
type Counter struct{ n int }

// Inc bumps the counter.
func (c *Counter) Inc() { c.n++ }

// TakeMethodValue lifts Inc into a func value, making it address-taken.
func TakeMethodValue(c *Counter) func() {
	return c.Inc
}

// CallValue invokes an arbitrary func(): the candidates must include
// every address-taken module function of that signature.
func CallValue(f func()) { f() }

// SpawnCapture go-spawns a literal capturing two locals.
func SpawnCapture() chan int {
	ch := make(chan int)
	total := 0
	go func() {
		total++
		ch <- total
	}()
	return ch
}

// Map is the generic the instantiation test resolves through Origin.
func Map[T any](xs []T, f func(T) T) []T {
	out := make([]T, 0, len(xs))
	for _, x := range xs {
		out = append(out, f(x))
	}
	return out
}

// UseMap instantiates Map[int] and passes double as a func value.
func UseMap(xs []int) []int {
	return Map(xs, double)
}

func double(x int) int { return x * 2 }
