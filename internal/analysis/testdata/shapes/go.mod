module shapes

go 1.22
