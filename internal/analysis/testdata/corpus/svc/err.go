// The errlint cases: dropped error returns in a service-class package.
package svc

import (
	"crypto/sha256"
	"fmt"
	"strings"
)

func fail() error { return nil }

func failPair() (int, error) { return 0, nil }

func noError() int { return 0 }

// DropsBare discards the error of a bare call statement.
func DropsBare() {
	fail() // want "call drops its error return"
}

// DropsPair discards a trailing error behind two results.
func DropsPair() {
	failPair() // want "call drops its error return"
}

// DropsDeferred hides the drop behind defer.
func DropsDeferred() {
	defer fail() // want "defer call drops its error return"
}

// DropsInGoroutine hides the drop behind go.
func DropsInGoroutine() {
	go fail() // want "go call drops its error return"
}

// BlankIsVisible acknowledges the drop explicitly: clean.
func BlankIsVisible() {
	_ = fail()
	_, _ = failPair()
}

// NoErrorIsClean calls something with no error to drop: clean.
func NoErrorIsClean() {
	noError()
}

// NeverFailsWriters exercises the documented-nil-error exemptions: the
// strings.Builder methods, fmt.Fprint aimed at one, and hash.Hash writes.
func NeverFailsWriters() string {
	var b strings.Builder
	b.WriteString("x")
	fmt.Fprintf(&b, "%d", 1)
	h := sha256.New()
	h.Write([]byte(b.String()))
	return fmt.Sprintf("%x", h.Sum(nil))
}

// AllowedDrop is the sanctioned errlint exception, annotated in-source.
func AllowedDrop() {
	//ndavet:allow errlint corpus example of a fire-and-forget notification
	fail()
}
