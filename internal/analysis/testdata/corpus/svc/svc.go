// Package svc is the corpus stand-in for a service-class package: the
// locklint cases live here.
package svc

import (
	"net/http"
	"sync"
)

// S carries the lock and the blocking machinery the cases exercise.
type S struct {
	mu  sync.Mutex
	ch  chan int
	wg  sync.WaitGroup
	cli *http.Client
}

// RecvUnderLock blocks on a channel receive inside the critical section.
func (s *S) RecvUnderLock() int {
	s.mu.Lock()
	v := <-s.ch // want "held across channel receive"
	s.mu.Unlock()
	return v
}

// SendUnderLock blocks on a channel send inside the critical section.
func (s *S) SendUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want "held across channel send"
}

// WaitUnderDeferredLock holds the lock to function end via defer, so the
// Wait sits inside the critical section.
func (s *S) WaitUnderDeferredLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait() // want "held across Wait call"
}

// SelectUnderLock parks on a select with no default while locked.
func (s *S) SelectUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select with no default"
	case v := <-s.ch:
		return v
	}
}

// HTTPUnderLock holds the lock across a network round-trip.
func (s *S) HTTPUnderLock(req *http.Request) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp, err := s.cli.Do(req) // want "HTTP round-trip"
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// TrySendUnderLock is the non-blocking idiom: a select with a default is
// clean even inside the critical section.
func (s *S) TrySendUnderLock(v int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v:
		return true
	default:
		return false
	}
}

// RecvAfterUnlock releases the lock before blocking: clean.
func (s *S) RecvAfterUnlock() int {
	s.mu.Lock()
	n := cap(s.ch)
	s.mu.Unlock()
	return n + <-s.ch
}

// AllowedWaitUnderLock is the sanctioned exception, annotated in-source.
func (s *S) AllowedWaitUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//ndavet:allow locklint corpus example of a startup-only barrier with no contention
	s.wg.Wait()
}
