// Package progen is the corpus stand-in for the fuzz program generator:
// errlint covers it by path suffix even though its class is deterministic,
// because a dropped assembly error there becomes a nil-program crash far
// from the cause.
package progen

func build() error { return nil }

// Emit discards the build error.
func Emit() {
	build() // want "call drops its error return"
}

// EmitChecked consumes it: clean.
func EmitChecked() error {
	return build()
}
