// Package detdep is the leaf the det package is contractually allowed to
// import — the negative case for layerlint.
package detdep

// Value is referenced from corpus/det.
func Value() int { return 42 }
