// Package badlayer is contract-declared deterministic but reaches for the
// service layer and the network — the layerlint positives.
package badlayer

import (
	"net/http" // want "must not import net/http"

	//ndavet:allow layerlint corpus example of a sanctioned layering exception
	"os"

	"corpus/svc" // want "must not import corpus/svc"
)

// Probe uses every import so the file typechecks.
func Probe() int {
	_ = new(svc.S)
	return http.StatusOK + os.Getpid()
}
