// Package jobs is the corpus stand-in for the serving layer's job
// machinery: the leaklint spawn cases, the ctxlint entry-point cases,
// and locklint's transitive (interprocedural) upgrade live here.
package jobs

import (
	"net/http"
	"sync"
	"time"
)

// SpawnLeaky fires a worker that spins forever with no signal in scope.
func SpawnLeaky() {
	go spin() // want "no visible termination path"
}

func spin() {
	for {
	}
}

// SpawnBounded hands the worker its stop signal: clean.
func SpawnBounded(done chan struct{}) {
	go waitDone(done)
}

func waitDone(done chan struct{}) {
	<-done
}

// SpawnJoined joins through a WaitGroup: clean.
func SpawnJoined(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// SpawnDynamic spawns through a func value no module function matches:
// nothing to analyze, which is itself the finding.
func SpawnDynamic(f func(int8)) {
	go f(0) // want "cannot be resolved"
}

// SpawnAllowed is the sanctioned fire-and-forget exception.
func SpawnAllowed() {
	//ndavet:allow leaklint:leak corpus example of a process-lifetime pump that dies with the program
	go spin()
}

// Handle is the handler-shaped entry point; the uncancellable wait it
// reaches through waitForTurn is the finding, reported at the wait.
func Handle(w http.ResponseWriter, r *http.Request) {
	waitForTurn()
}

func waitForTurn() {
	time.Sleep(time.Millisecond) // want "no context or done channel in scope"
}

// HandleAllowed reaches a sanctioned uncancellable wait.
func HandleAllowed(w http.ResponseWriter, r *http.Request) {
	napBriefly()
}

func napBriefly() {
	//ndavet:allow ctxlint:noctx corpus example of a bounded settle delay accepted by design
	time.Sleep(time.Millisecond)
}

// Gauge carries the lock for locklint's transitive case.
type Gauge struct {
	mu sync.Mutex
	n  int
}

// Bump holds the lock across a call that transitively sleeps.
func (g *Gauge) Bump() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
	settle() // want "held across a call to jobs.settle"
}

func settle() {
	time.Sleep(time.Millisecond)
}
