// Package hot is the alloclint corpus: //ndavet:hotpath functions over
// allocating operations, clean operations, the cold-span exemption, and
// the opaque dispatch frontier. NotAnnotated exists for the roster
// tamper-check test, which supplies a caller roster naming it.
package hot

import (
	"fmt"
	"math"
	"strconv"
)

// HotAlloc allocates directly in the annotated body.
//
//ndavet:hotpath
func HotAlloc(n int) int {
	xs := make([]int, n) // want "make allocates"
	return len(xs)
}

// HotGrow appends in the annotated body.
//
//ndavet:hotpath
func HotGrow(xs []int, v int) []int {
	return append(xs, v) // want "append may grow its backing array"
}

// HotTransitive is clean itself; the witness sits two static calls down.
//
//ndavet:hotpath
func HotTransitive(n int) string {
	return helperConcat(n)
}

func helperConcat(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "x" // want "string concatenation allocates"
	}
	return s
}

// HotCold allocates only while constructing its error return: the
// cold-span exemption keeps the failure path out of the hot window.
//
//ndavet:hotpath
func HotCold(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("hot: bad n %d", n)
	}
	return n, nil
}

// HotExternal crosses the dispatch frontier into unknown stdlib code.
//
//ndavet:hotpath
func HotExternal(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64) // want "external, assumed allocating"
}

// HotClean calls a known-allocation-free stdlib package: clean.
//
//ndavet:hotpath
func HotClean(x float64) float64 {
	return math.Sqrt(x)
}

// HotDynamic calls through a func value: the frontier itself is the
// finding, and the walk does not fan out over candidates.
//
//ndavet:hotpath
func HotDynamic(f func() int) int {
	return f() // want "dynamic, may reach unknown code"
}

// HotClosure builds a capturing closure and calls it.
//
//ndavet:hotpath
func HotClosure(n int) int {
	f := func() int { return n } // want "closure captures enclosing variables and allocates"
	return f()                   // want "dynamic, may reach unknown code"
}

// HotSpawn allocates a goroutine.
//
//ndavet:hotpath
func HotSpawn(done chan int) {
	go post(done) // want "go statement allocates a goroutine"
}

func post(done chan int) { done <- 1 }

// HotAllowed is the sanctioned exception, annotated in-source.
//
//ndavet:hotpath
func HotAllowed(n int) []int {
	//ndavet:allow alloclint:op corpus example of a sanctioned warm-up allocation in a pinned window
	return make([]int, n)
}

// NotAnnotated is deliberately missing the annotation; the roster test
// names it to prove a deleted //ndavet:hotpath comment turns lint red.
func NotAnnotated() {}
