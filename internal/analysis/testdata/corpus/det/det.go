// Package det is the corpus stand-in for a deterministic simulator
// package: detlint and globlint findings here are true positives, and the
// sorted/seeded/annotated variants must stay clean.
package det

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time" // want "must not import time"

	"corpus/detdep"
)

// Stamp reads the wall clock: the canonical detlint positive.
func Stamp() int64 {
	return time.Now().Unix() // want "time.Now reads the wall clock"
}

// Elapsed reads the wall clock through time.Since.
func Elapsed(t0 time.Time) float64 {
	return time.Since(t0).Seconds() // want "time.Since reads the wall clock"
}

// AllowedStamp is the sanctioned exception: same call, annotated.
func AllowedStamp() int64 {
	//ndavet:allow detlint corpus example of a documented wall-clock exception
	return time.Now().Unix()
}

// GlobalRand draws from the process-global source.
func GlobalRand() int {
	return rand.Intn(10) // want "draws from the process-global source"
}

// SeededRand draws from an explicit seeded source: deterministic, clean.
func SeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10) + detdep.Value()
}

// PrintAll prints during map iteration: order leaks straight to stdout.
func PrintAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "iteration order is random"
	}
}

// Keys collects map keys and returns them unsorted.
func Keys(m map[string]int) []string {
	keys := []string{}
	for k := range m {
		keys = append(keys, k) // want "never sorted in this function"
	}
	return keys
}

// SortedKeys is the idiomatic fix: collect, then sort. Clean.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Join concatenates a string across map iteration.
func Join(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want "string built up across iteration"
	}
	return s
}

// Sum accumulates an int across map iteration: commutative, clean.
func Sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Render writes during map iteration through an ordered sink method.
func Render(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want "iteration order is random"
	}
}

// StaleKindPin carries an annotation pinned to the wrong finding kind:
// the pass fires on the next line, but as "wallclock", so the pinned
// grant lapses and both the finding and the stale annotation surface.
func StaleKindPin() int64 {
	//ndavet:allow detlint:rand pinned to a kind the line no longer produces; want "unused //ndavet:allow detlint:rand"
	return time.Now().Unix() // want "time.Now reads the wall clock"
}

// Stale annotation: grants nothing, so it is itself a finding.
/*ndavet:allow detlint the call this excused was fixed long ago*/ // want "unused"

// Malformed annotations: missing reason, unknown pass.
/*ndavet:allow detlint*/ // want "needs a reason"
/*ndavet:allow nosuchpass because reasons*/ // want "malformed annotation"
