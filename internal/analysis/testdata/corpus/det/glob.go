package det

import "errors"

// hits is written by Bump: mutable package state, the globlint positive.
var hits int // want "is mutated"

// Bump is the write that convicts hits.
func Bump() { hits++ }

// seen is mutated through an index write.
var seen = map[string]bool{} // want "is mutated"

// Mark writes through seen's index.
func Mark(k string) { seen[k] = true }

// buf escapes by address, so writes to it cannot be tracked.
var buf []byte // want "has its address taken"

// Fill hands buf's address to grow.
func Fill() { grow(&buf) }

func grow(b *[]byte) { *b = append(*b, 0) }

// Tally is mutable state the corpus sanctions via annotation.
//
//ndavet:allow globlint corpus example of a documented mutable global
var Tally int

// AddTally writes the sanctioned global.
func AddTally() { Tally++ }

// ErrCorpus is a write-never sentinel: clean.
var ErrCorpus = errors.New("corpus")

// table is a read-only lookup table: clean.
var table = []int{1, 2, 3}

// Lookup only reads table.
func Lookup(i int) int { return table[i%len(table)] }
