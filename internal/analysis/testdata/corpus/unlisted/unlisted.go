// Package unlisted is deliberately missing from the corpus layer
// contract.
package unlisted // want "not declared in the layer contract"

// N exists so the package is non-empty.
const N = 1
