module fixturebad

go 1.22
