// Package p carries a deliberate type error for the importer test.
package p

// X parses fine but cannot typecheck.
var X int = "not an int"
