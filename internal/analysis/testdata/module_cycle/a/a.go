// Package a half of the deliberate import cycle.
package a

import "fixturecycle/b"

// A references b so the import is used.
const A = b.B + 1
