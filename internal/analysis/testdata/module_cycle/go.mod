module fixturecycle

go 1.22
