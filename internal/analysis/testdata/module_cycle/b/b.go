// Package b half of the deliberate import cycle.
package b

import "fixturecycle/a"

// B references a so the import is used.
const B = a.A + 1
