// Package a is the root of the fixture chain: it must typecheck last.
package a

import (
	"fixtureok/b"
	"fixtureok/c"
)

// V exercises cross-package resolution through both b and c.
var V = b.Sum(c.Mk())
