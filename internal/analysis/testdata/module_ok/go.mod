module fixtureok

go 1.22
