// Package b sits between a and c: it must typecheck after c.
package b

import "fixtureok/c"

// Sum reads through the c.T type imported from the leaf.
func Sum(t c.T) int { return t.N }
