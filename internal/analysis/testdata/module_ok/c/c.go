// Package c is the leaf of the fixture module's dependency chain.
package c

// T is a type the downstream packages must resolve through the importer.
type T struct{ N int }

// Mk returns a fresh T.
func Mk() T { return T{N: 1} }
