package analysis

import (
	"strings"
	"testing"
)

// TestHotPathRoster proves the tamper check: a caller-supplied roster
// entry whose function exists but lost its //ndavet:hotpath annotation
// is a finding, and so is a roster entry naming nothing (a silently
// renamed hot function). This is what makes deleting an annotation turn
// make lint red instead of quietly un-pinning the 0 B/op window.
func TestHotPathRoster(t *testing.T) {
	m, err := Load("testdata/corpus")
	if err != nil {
		t.Fatalf("load corpus: %v", err)
	}
	report, err := RunAll(m, Config{
		Contract: corpusContract,
		Passes:   []string{"alloclint"},
		HotPathRoster: []string{
			"corpus/hot.NotAnnotated", // exists, not annotated
			"corpus/hot.Vanished",     // no such function
		},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var missing, unknown bool
	for _, f := range report.Open() {
		if f.Kind != "roster" {
			continue
		}
		switch {
		case strings.Contains(f.Message, "corpus/hot.NotAnnotated") &&
			strings.Contains(f.Message, "missing its //ndavet:hotpath annotation"):
			missing = true
		case strings.Contains(f.Message, "corpus/hot.Vanished") &&
			strings.Contains(f.Message, "no such function"):
			unknown = true
		}
	}
	if !missing {
		t.Error("deleted annotation on a rostered function produced no roster finding")
	}
	if !unknown {
		t.Error("roster entry naming a vanished function produced no roster finding")
	}
}

// TestDefaultRosterCoversRepo pins the production roster itself: every
// DefaultHotPathRoster entry must resolve to an annotated function in
// this repository, so renames cannot silently drop the static gate.
func TestDefaultRosterCoversRepo(t *testing.T) {
	m, err := Load("../..")
	if err != nil {
		t.Fatalf("load repo: %v", err)
	}
	g := BuildCallGraph(m)
	for _, name := range DefaultHotPathRoster {
		n := g.NodeByName(name)
		if n == nil {
			t.Errorf("roster entry %s names no function in the repo", name)
			continue
		}
		if !n.HotPath {
			t.Errorf("roster entry %s is missing its //ndavet:hotpath annotation", name)
		}
	}
}
