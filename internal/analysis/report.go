// Package analysis is the static-analysis layer shared by the repo's two
// analyzers: ndalint (the speculative-gadget analyzer over ISA programs)
// and ndavet (the determinism/layering analyzer over the Go source
// itself). It provides the common finding/report plumbing both tools emit
// through, plus ndavet's module loader, source importer, layer contract,
// and the four ndavet passes.
//
// The module has no external dependencies, so everything here is built on
// the standard library's go/parser, go/ast, and go/types.
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Finding is one diagnostic from a static-analysis pass, in the shared
// format both ndalint and ndavet emit:
//
//	file:line:col: [tool/pass] message
//
// For source-level tools File is a path relative to the module root; for
// program-level tools (ndalint's Table 2 cross-check) File names the ISA
// program and Line/Col are zero and elided from the text rendering.
type Finding struct {
	File string `json:"file"`
	Line int    `json:"line,omitempty"`
	Col  int    `json:"col,omitempty"`
	Tool string `json:"tool"`
	Pass string `json:"pass"`
	// Kind subdivides a pass's findings (see PassKinds). An
	// //ndavet:allow annotation may pin itself to a kind with
	// <pass>:<kind>, so a refactor that swaps one finding kind for
	// another on the same line cannot silently reuse the old exemption.
	Kind    string `json:"kind,omitempty"`
	Message string `json:"message"`
	// Allowed marks a finding granted by an explicit //ndavet:allow
	// annotation; allowed findings are reported in the census but do not
	// fail the run.
	Allowed bool `json:"allowed,omitempty"`
	// Reason is the annotation's justification when Allowed is set.
	Reason string `json:"reason,omitempty"`
}

// String renders the finding in the canonical one-line format.
func (f *Finding) String() string {
	pos := f.File
	if f.Line > 0 {
		pos = fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col)
	}
	s := fmt.Sprintf("%s: [%s/%s] %s", pos, f.Tool, f.Pass, f.Message)
	if f.Allowed {
		s += fmt.Sprintf(" (allowed: %s)", f.Reason)
	}
	return s
}

// Exit codes shared by the analysis CLIs (ndalint, ndavet): clean runs
// exit ExitClean, runs that complete but surface open findings exit
// ExitFindings — including under -json — and tool failures (bad flags,
// unloadable modules, broken builtins) exit ExitToolError, so CI can tell
// "the tree is dirty" from "the analyzer broke".
const (
	ExitClean     = 0
	ExitFindings  = 1
	ExitToolError = 2
)

// ExitCode maps a report onto the shared convention: ExitFindings when
// any finding is open, ExitClean otherwise.
func (r *Report) ExitCode() int {
	if len(r.Open()) > 0 {
		return ExitFindings
	}
	return ExitClean
}

// Report is a tool run's full finding set plus its census.
type Report struct {
	Tool     string    `json:"tool"`
	Findings []Finding `json:"findings"`
	// Counts maps "pass" to the number of findings from that pass,
	// including allowed ones; Allowed maps "pass" to how many of those
	// were granted by annotations.
	Counts  map[string]int `json:"counts"`
	Allowed map[string]int `json:"allowed"`
}

// NewReport builds a report over findings: sorted by position, with the
// per-pass census filled in.
func NewReport(tool string, findings []Finding) *Report {
	r := &Report{Tool: tool, Findings: findings, Counts: map[string]int{}, Allowed: map[string]int{}}
	SortFindings(r.Findings)
	for i := range r.Findings {
		f := &r.Findings[i]
		r.Counts[f.Pass]++
		if f.Allowed {
			r.Allowed[f.Pass]++
		}
	}
	return r
}

// Open returns the findings not granted by an annotation — the set that
// should fail a clean-tree check.
func (r *Report) Open() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if !f.Allowed {
			out = append(out, f)
		}
	}
	return out
}

// Text renders every finding one per line, open findings first.
func (r *Report) Text() string {
	var b strings.Builder
	for i := range r.Findings {
		if !r.Findings[i].Allowed {
			fmt.Fprintln(&b, r.Findings[i].String())
		}
	}
	for i := range r.Findings {
		if r.Findings[i].Allowed {
			fmt.Fprintln(&b, r.Findings[i].String())
		}
	}
	return b.String()
}

// JSON renders the report in the shared machine-readable shape.
func (r *Report) JSON() ([]byte, error) { return MarshalReport(r) }

// SortFindings orders findings by file, line, column, pass, message — the
// stable order every rendering uses.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := &fs[i], &fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Message < b.Message
	})
}

// MarshalReport is the shared JSON rendering for analysis reports:
// indented, newline-terminated, deterministic (Go's encoder sorts map
// keys). ndalint's gadget census and ndavet's finding report both emit
// through it so the two tools' -json outputs stay uniform.
func MarshalReport(v any) ([]byte, error) {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
