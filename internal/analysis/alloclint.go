package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"
)

// alloclint statically pins the allocation-free hot paths that the
// bench-trajectory gate (BENCH_*.json allocs/op) only checks dynamically.
// A function annotated //ndavet:hotpath must not reach an allocating
// operation — make/new, append growth, reference-type composite literals,
// capturing closures, map writes, string concatenation, boxing
// conversions, or a go statement — in its own body or in any module
// function it reaches through static calls. The pass is worst-case at the
// dispatch frontier: a call to an external function not on the known-clean
// list, an interface method, or a func value is itself a finding, because
// the analysis cannot see past it.
//
// DefaultHotPathRoster is the tamper check: those functions MUST carry the
// annotation, so deleting a //ndavet:hotpath comment (quietly un-pinning
// the invariant) is a finding, not a silent downgrade.
//
// Cold error paths are exempt: an allocation lexically inside a return
// statement of an error-returning function, or inside a panic call,
// constructs the failure report — by definition off the measured path.
//
// Finding kinds: "op" (allocating operation), "call" (opaque call
// frontier), "roster" (missing annotation).

// DefaultHotPathRoster names the functions whose //ndavet:hotpath
// annotation is load-bearing: the PR 6 event-driven sim window and the
// worker-pool slot fold and store read-hit path that serve every request.
var DefaultHotPathRoster = []string{
	"nda/internal/ooo.(*Core).Run",
	"nda/internal/ooo.(*Core).RunInsts",
	"nda/internal/ooo.(*Core).Step",
	"nda/internal/par.(*pool).drain",
	"nda/internal/store.(*Store).Has",
}

// allocCleanPkgs are external packages whose calls never allocate on the
// caller's behalf.
var allocCleanPkgs = map[string]bool{
	"math": true, "math/bits": true, "sync/atomic": true,
	"unicode": true, "unicode/utf8": true,
}

// allocCleanSyncMethods are the sync methods that neither allocate nor
// call back into user code.
var allocCleanSyncMethods = map[string]bool{
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true,
	"TryLock": true, "Add": true, "Done": true, "Wait": true,
}

func runAlloclint(m *Module, g *CallGraph, roster []string) []Finding {
	var out []Finding
	if roster == nil && m.Path == "nda" {
		roster = DefaultHotPathRoster
	}
	for _, name := range roster {
		n := g.NodeByName(name)
		switch {
		case n == nil:
			out = append(out, Finding{
				File: "internal/analysis/alloclint.go", Tool: "ndavet", Pass: "alloclint", Kind: "roster",
				Message: "hot-path roster names " + name + " but the module has no such function (renamed? update DefaultHotPathRoster)",
			})
		case !n.HotPath:
			out = append(out, m.kfinding("alloclint", "roster", n.Decl,
				name+" is on the hot-path roster but is missing its //ndavet:hotpath annotation; restore it — the annotation is what pins the 0 B/op window"))
		}
	}

	// Hot roots in deterministic node order.
	var roots []*FuncNode
	for _, n := range g.Nodes {
		if n.HotPath {
			roots = append(roots, n)
		}
	}

	// One finding per witness position: the first root (node order) to
	// reach an operation claims it, so one //ndavet:allow covers the op
	// however many hot paths lead there.
	type witness struct {
		kind string
		node ast.Node
		msg  string
	}
	seen := map[string]bool{}
	cold := map[*FuncNode][][2]ast.Node{}
	spansOf := func(n *FuncNode) [][2]ast.Node {
		s, ok := cold[n]
		if !ok {
			s = coldSpans(n)
			cold[n] = s
		}
		return s
	}
	for _, root := range roots {
		chains := hotReachable(root, spansOf)
		// Deterministic node iteration: graph order filtered to reached.
		for _, n := range g.Nodes {
			chain, ok := chains[n]
			if !ok {
				continue
			}
			suffix := ""
			if len(chain) > 0 {
				suffix = ", reachable from hot path " + chainString(m, root.Name, chain)
			} else {
				suffix = " in hot path " + chainString(m, root.Name, nil)
			}
			var ws []witness
			sp := spansOf(n)
			for _, op := range n.summary.allocOps {
				if inSpans(sp, op.node) {
					continue
				}
				ws = append(ws, witness{"op", op.node, op.desc + suffix})
			}
			for _, cs := range n.Calls {
				if inSpans(sp, cs.Call) {
					continue
				}
				if d := opaqueCallDesc(cs); d != "" {
					ws = append(ws, witness{"call", cs.Call, d + suffix})
				}
			}
			for _, w := range ws {
				file, line, col := m.Rel(w.node.Pos())
				k := file + ":" + strconv.Itoa(line) + ":" + strconv.Itoa(col)
				if seen[k] {
					continue
				}
				seen[k] = true
				out = append(out, m.kfinding("alloclint", w.kind, w.node, w.msg))
			}
		}
	}
	return out
}

// hotReachable walks static call edges from a hot root, skipping edges
// whose call site sits in a cold span (failure construction is off the
// measured path, so the walk must not drag its callees in). Dynamic
// edges are never followed — the dynamic call site is itself alloclint's
// finding. Chains are deterministic: BFS with name-sorted expansion.
func hotReachable(root *FuncNode, spansOf func(*FuncNode) [][2]ast.Node) map[*FuncNode][]string {
	chains := map[*FuncNode][]string{root: {}}
	queue := []*FuncNode{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		sp := spansOf(n)
		var nexts []*FuncNode
		for _, cs := range n.Calls {
			if cs.Static != nil && !inSpans(sp, cs.Call) {
				nexts = append(nexts, cs.Static)
			}
		}
		sort.Slice(nexts, func(i, j int) bool { return nexts[i].Name < nexts[j].Name })
		for _, t := range nexts {
			if _, ok := chains[t]; ok {
				continue
			}
			chains[t] = append(append([]string{}, chains[n]...), t.Name)
			queue = append(queue, t)
		}
	}
	return chains
}

// opaqueCallDesc classifies a call site the hot-path walk cannot see
// through; "" means the call is safe to cross (module-static, followed by
// the reachability walk) or known clean.
func opaqueCallDesc(cs *CallSite) string {
	if cs.Static != nil {
		return "" // followed by the walk
	}
	if cs.External != nil && !cs.Unknown {
		fn := cs.External
		pkg := ""
		if fn.Pkg() != nil {
			pkg = fn.Pkg().Path()
		}
		if allocCleanPkgs[pkg] {
			return ""
		}
		if pkg == "sync" && allocCleanSyncMethods[fn.Name()] {
			return ""
		}
		if pkg == "encoding/binary" {
			// The ByteOrder implementations (littleEndian/bigEndian
			// methods) shuffle bytes in caller-provided buffers and never
			// allocate; binary.Read/Write (reflective, allocating) are
			// package functions, not methods, so they stay opaque.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return ""
			}
		}
		return cs.Desc + " (external, assumed allocating)"
	}
	return cs.Desc + " (dynamic, may reach unknown code)"
}

// coldSpans collects the lexical spans of n's body that are off the
// measured path: return statements of error-returning functions (failure
// construction) and panic arguments.
func coldSpans(n *FuncNode) [][2]ast.Node {
	var spans [][2]ast.Node
	errReturning := false
	var sig *types.Signature
	if n.Obj != nil {
		sig, _ = n.Obj.Type().(*types.Signature)
	} else if n.Lit != nil {
		if t := n.Pkg.Info.TypeOf(n.Lit); t != nil {
			sig, _ = t.(*types.Signature)
		}
	}
	if sig != nil {
		for i := 0; i < sig.Results().Len(); i++ {
			if isErrorType(sig.Results().At(i).Type()) {
				errReturning = true
			}
		}
	}
	walkSkipFuncLit(n.Body, func(c ast.Node) bool {
		switch s := c.(type) {
		case *ast.ReturnStmt:
			if errReturning {
				spans = append(spans, [2]ast.Node{s, s})
			}
		case *ast.CallExpr:
			if id, ok := unparen(s.Fun).(*ast.Ident); ok {
				if b, ok := n.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					spans = append(spans, [2]ast.Node{s, s})
				}
			}
		}
		return true
	})
	return spans
}

func inSpans(spans [][2]ast.Node, node ast.Node) bool {
	for _, sp := range spans {
		if node.Pos() >= sp[0].Pos() && node.End() <= sp[1].End() {
			return true
		}
	}
	return false
}
