package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the interprocedural dataflow layer: per-function facts
// scanned from each body, then transitive summaries folded bottom-up over
// the SCC-condensed call graph. Passes consume the summaries:
//
//   - locklint v2 asks "can this call block, transitively?"
//   - ctxlint asks "is a blocking operation reachable that sits in a
//     function with no cancellation signal in scope?"
//   - leaklint asks "can this goroutine run forever, and does it see a
//     termination signal?"
//   - alloclint does its own reachability walk over the graph and uses
//     the per-body allocation-operation facts directly.
//
// Recursion is handled by iterating each SCC to a fixpoint (the facts are
// monotone booleans and first-witness records, so this converges in at
// most a handful of rounds); dynamic dispatch contributes the call site's
// enumerated candidates (see callgraph.go for the soundness story).

// opWitness is one operation of interest found lexically in a body.
type opWitness struct {
	node ast.Node
	desc string // human description, e.g. "channel send", "disk I/O (os.ReadFile)"
}

// xWitness is a transitive witness: the ultimate operation plus the call
// chain (node names, from the summarized function exclusive to the
// witness's owner inclusive; empty means the op is in the own body).
type xWitness struct {
	pos  token.Pos
	desc string
	via  []string
}

// describe renders "desc" or "desc in callee (via a -> b)" for findings.
func (w *xWitness) describe(m *Module) string {
	if len(w.via) == 0 {
		return w.desc
	}
	file, line, _ := m.Rel(w.pos)
	return w.desc + " at " + file + ":" + itoa(line) + " (via " + chainString(m, w.via[0], w.via[1:]) + ")"
}

func itoa(n int) string {
	// strconv-free tiny helper keeps the import set stable.
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// summary is the transitive dataflow summary of one function node.
type summary struct {
	// blocks is set when some execution of the function may block
	// indefinitely (own operation or transitively through a callee).
	blocks *xWitness
	// noCtxBlock is set when a blocking operation is (transitively)
	// reachable inside a function that has no cancellation signal — no
	// context, channel, or *http.Request value in scope. This is the
	// ctxlint witness.
	noCtxBlock *xWitness
	// loops is set when the function may loop without bound: a for-loop
	// with no range clause and no signal operation in its body, own or
	// transitive.
	loops *xWitness
	// hasCtx reports a cancellation signal in scope: a parameter,
	// receiver field, captured variable, or any touched expression of
	// type context.Context, a channel type, or *net/http.Request.
	hasCtx bool
	// wgDone reports a (*sync.WaitGroup).Done call in the own body — the
	// goroutine-is-joined marker leaklint accepts.
	wgDone bool
	// allocOps lists the own-body allocation operations in source order;
	// alloclint expands these over reachability itself.
	allocOps []opWitness
	// blockOps lists the own-body blocking operations in source order
	// (shared with locklint's lexical critical-section scan).
	blockOps []opWitness
}

// Summary returns the node's dataflow summary (computed by BuildCallGraph).
func (n *FuncNode) Summary() *summary { return n.summary }

// Blocks reports whether the node may block, with its witness.
func (n *FuncNode) Blocks() *xWitness { return n.summary.blocks }

// computeSummaries scans every body, then folds summaries bottom-up in
// SCC order, iterating mutually recursive components to a fixpoint.
func (g *CallGraph) computeSummaries() {
	for _, n := range g.Nodes {
		n.summary = scanBody(n)
	}
	// Group nodes by SCC, in condensation order (callees first).
	bySCC := make([][]*FuncNode, g.sccCount)
	for _, n := range g.Nodes {
		bySCC[n.scc] = append(bySCC[n.scc], n)
	}
	for _, group := range bySCC {
		for changed, rounds := true, 0; changed && rounds < len(group)+1; rounds++ {
			changed = false
			for _, n := range group {
				if g.foldCallees(n) {
					changed = true
				}
			}
		}
	}
}

// foldCallees merges callee summaries into n's and reports whether
// anything changed. Witnesses prefer the earliest call site; the merge is
// deterministic because call sites are in source order and candidate
// lists are name-sorted.
func (g *CallGraph) foldCallees(n *FuncNode) bool {
	s := n.summary
	changed := false
	inherit := func(dst **xWitness, from *FuncNode, w *xWitness) {
		if *dst != nil || w == nil {
			return
		}
		via := make([]string, 0, len(w.via)+1)
		via = append(via, from.Name)
		via = append(via, w.via...)
		*dst = &xWitness{pos: w.pos, desc: w.desc, via: via}
		changed = true
	}
	for _, cs := range n.Calls {
		for _, t := range cs.Targets() {
			if t.summary == nil {
				continue
			}
			inherit(&s.blocks, t, t.summary.blocks)
			inherit(&s.noCtxBlock, t, t.summary.noCtxBlock)
			inherit(&s.loops, t, t.summary.loops)
		}
	}
	return changed
}

// scanBody computes the non-transitive facts of one node.
func scanBody(n *FuncNode) *summary {
	s := &summary{}
	p := n.Pkg
	s.hasCtx = signatureHasSignal(n)

	// Ops and signal references, lexically in this body only.
	blockOps := blockingOpsIn(p, n.Body)
	s.blockOps = blockOps
	walkSkipFuncLit(n.Body, func(c ast.Node) bool {
		switch e := c.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			if !s.hasCtx && isSignalType(p.Info.TypeOf(c.(ast.Expr))) {
				s.hasCtx = true
			}
			_ = e
		case *ast.CallExpr:
			if isWgDone(p.Info, e) {
				s.wgDone = true
			}
		}
		return true
	})
	s.allocOps = allocOpsIn(n)

	if first := firstOp(blockOps); first != nil {
		s.blocks = &xWitness{pos: first.node.Pos(), desc: first.desc}
	}
	if !s.hasCtx && s.blocks != nil {
		s.noCtxBlock = s.blocks
	}
	if lw := unboundedLoopIn(p, n.Body); lw != nil {
		s.loops = &xWitness{pos: lw.node.Pos(), desc: lw.desc}
	}
	return s
}

func firstOp(ops []opWitness) *opWitness {
	if len(ops) == 0 {
		return nil
	}
	return &ops[0]
}

// signatureHasSignal checks the declared inputs — receiver and parameters
// — for a cancellation-capable type.
func signatureHasSignal(n *FuncNode) bool {
	var sig *types.Signature
	if n.Obj != nil {
		sig, _ = n.Obj.Type().(*types.Signature)
	} else if n.Lit != nil {
		if t := n.Pkg.Info.TypeOf(n.Lit); t != nil {
			sig, _ = t.(*types.Signature)
		}
	}
	if sig == nil {
		return false
	}
	if r := sig.Recv(); r != nil && receiverHasSignalField(r.Type()) {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isSignalType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// receiverHasSignalField reports whether the receiver's struct type (one
// pointer deref) directly carries a context or channel field — the stored
// cancellation idiom (ooo.Core.Cancel, serve.Manager.baseCtx).
func receiverHasSignalField(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isSignalType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// isSignalType recognizes cancellation-capable values: context.Context,
// any channel, or *net/http.Request (which carries r.Context()).
func isSignalType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "context.Context", "net/http.Request":
		return true
	}
	return false
}

// isWgDone matches (*sync.WaitGroup).Done.
func isWgDone(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return false
	}
	obj := selection.Obj()
	return obj != nil && obj.Name() == "Done" && pkgPathOf(obj) == "sync"
}

// blockingOpsIn scans one body (literals excluded) for operations that
// can block indefinitely, in source order. Channel operations guarded by
// a select's comm clauses are not reported on their own: with a default
// the select is non-blocking, without one the select itself is the op.
func blockingOpsIn(p *Pkg, body ast.Node) []opWitness {
	var out []opWitness
	type span struct{ lo, hi token.Pos }
	var commGuards []span
	walkSkipFuncLit(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				out = append(out, opWitness{s, "select with no default case"})
			}
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
					commGuards = append(commGuards, span{cc.Comm.Pos(), cc.Comm.End()})
				}
			}
		case *ast.SendStmt:
			out = append(out, opWitness{s, "channel send"})
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				out = append(out, opWitness{s, "channel receive"})
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(s.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					out = append(out, opWitness{s, "range over channel"})
				}
			}
		case *ast.CallExpr:
			if desc := blockingCall(p.Info, s); desc != "" {
				out = append(out, opWitness{s, desc})
			}
		}
		return true
	})
	kept := out[:0]
	for _, op := range out {
		guarded := false
		for _, sp := range commGuards {
			if op.node.Pos() >= sp.lo && op.node.End() <= sp.hi {
				guarded = true
				break
			}
		}
		if !guarded {
			kept = append(kept, op)
		}
	}
	return kept
}

// unboundedLoopIn finds a for-loop that can spin forever with no signal
// operation in its body: no range clause (or a range over a channel-free
// iterable is bounded), and no select, channel op, or Wait/Acquire call
// anywhere inside. Such a loop has no visible termination or park point.
func unboundedLoopIn(p *Pkg, body ast.Node) *opWitness {
	var found *opWitness
	walkSkipFuncLit(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		f, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		// A classic bounded loop: for init; cond; post — assume the post
		// clause advances toward the condition.
		if f.Cond != nil && f.Post != nil {
			return true
		}
		if f.Cond == nil && (f.Init != nil || f.Post != nil) {
			return true
		}
		// for {} or for cond {}: look for a signal in the body.
		signal := false
		walkSkipFuncLit(f.Body, func(c ast.Node) bool {
			switch s := c.(type) {
			case *ast.SelectStmt, *ast.SendStmt, *ast.RangeStmt:
				signal = true
			case *ast.UnaryExpr:
				if s.Op == token.ARROW {
					signal = true
				}
			case *ast.CallExpr:
				if desc := blockingCall(p.Info, s); desc != "" && !strings.Contains(desc, "time.Sleep") {
					signal = true
				}
			}
			return !signal
		})
		if !signal {
			kind := "for-loop with no bound"
			if f.Cond == nil {
				kind = "unconditional for-loop"
			}
			found = &opWitness{f, kind + " and no channel/select/wait operation inside"}
		}
		return true
	})
	return found
}

// allocOpsIn scans one body for operations that allocate: make/new,
// append, reference-type and escaping composite literals, capturing
// closures, map writes, non-constant string concatenation, string/slice
// conversions, conversions to interface types, and go statements.
func allocOpsIn(n *FuncNode) []opWitness {
	p := n.Pkg
	var out []opWitness
	add := func(node ast.Node, desc string) { out = append(out, opWitness{node, desc}) }
	walkSkipFuncLit(n.Body, func(c ast.Node) bool {
		switch e := c.(type) {
		case *ast.GoStmt:
			add(e, "go statement allocates a goroutine")
		case *ast.FuncLit:
			if capturesOuter(n, e) {
				add(e, "closure captures enclosing variables and allocates")
			}
			return true
		case *ast.CompositeLit:
			switch p.Info.TypeOf(e).Underlying().(type) {
			case *types.Slice:
				add(e, "slice literal allocates")
			case *types.Map:
				add(e, "map literal allocates")
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := unparen(e.X).(*ast.CompositeLit); ok {
					add(e, "&composite-literal allocates")
				}
			}
		case *ast.CallExpr:
			fun := unparen(e.Fun)
			if tv, ok := p.Info.Types[fun]; ok && tv.IsType() {
				if d := conversionAlloc(p.Info, e); d != "" {
					add(e, d)
				}
				return true
			}
			if id, ok := fun.(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						add(e, "make allocates")
					case "new":
						add(e, "new allocates")
					case "append":
						add(e, "append may grow its backing array")
					}
					return true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				if ix, ok := unparen(lhs).(*ast.IndexExpr); ok {
					if t := p.Info.TypeOf(ix.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							add(e, "map write may grow the table")
						}
					}
				}
			}
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 && isStringType(p.Info.TypeOf(e.Lhs[0])) {
				add(e, "string concatenation allocates")
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isStringType(p.Info.TypeOf(e)) {
				if tv, ok := p.Info.Types[e]; !ok || tv.Value == nil {
					add(e, "string concatenation allocates")
				}
			}
		}
		return true
	})
	return out
}

// conversionAlloc classifies allocating conversions: string <-> byte/rune
// slices and boxing a non-interface value into an interface.
func conversionAlloc(info *types.Info, call *ast.CallExpr) string {
	if len(call.Args) != 1 {
		return ""
	}
	dst := info.TypeOf(call)
	src := info.TypeOf(call.Args[0])
	if dst == nil || src == nil {
		return ""
	}
	dstU, srcU := dst.Underlying(), src.Underlying()
	if isStringType(dst) {
		if _, ok := srcU.(*types.Slice); ok {
			return "conversion to string copies and allocates"
		}
	}
	if _, ok := dstU.(*types.Slice); ok && isStringType(src) {
		return "conversion from string copies and allocates"
	}
	if _, ok := dstU.(*types.Interface); ok {
		if _, srcIface := srcU.(*types.Interface); !srcIface {
			if b, ok := srcU.(*types.Basic); !ok || b.Kind() != types.UntypedNil {
				return "conversion to interface may box and allocate"
			}
		}
	}
	return ""
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// capturesOuter reports whether a literal nested in n's body references
// variables declared in an enclosing function (which forces a heap-
// allocated closure).
func capturesOuter(n *FuncNode, lit *ast.FuncLit) bool {
	p := n.Pkg
	captured := false
	ast.Inspect(lit.Body, func(c ast.Node) bool {
		if captured {
			return false
		}
		id, ok := c.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || isPackageLevelVar(v) || v.IsField() {
			return true
		}
		// Declared before the literal but inside some function: captured.
		if v.Pos() < lit.Pos() && v.Parent() != nil && v.Parent() != p.Types.Scope() {
			captured = true
		}
		return true
	})
	return captured
}
