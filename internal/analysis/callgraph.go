package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the whole-program call graph the interprocedural
// passes (alloclint, leaklint, ctxlint, locklint v2) walk. One node per
// function body — declared functions, methods, and function literals all
// get their own node — and one edge per call site, resolved as precisely
// as go/types allows:
//
//   - Direct calls to module functions and methods are static edges.
//   - Interface method calls resolve by class-hierarchy analysis: an edge
//     to every module type that implements the interface, plus the
//     Unknown mark, because an exported interface can always gain
//     implementers outside the module.
//   - Calls through func values (parameters, fields, locals, method
//     values) resolve to every address-taken module function with an
//     identical signature, plus the Unknown mark.
//   - Calls to functions outside the module keep the callee object so the
//     passes can classify the stdlib surface (blocking, allocating).
//
// The Unknown mark is the soundness valve: a pass that must be
// conservative (alloclint on a pinned hot path) treats an Unknown edge as
// worst-case; precision-oriented passes (leaklint, ctxlint) restrict
// themselves to the enumerated candidates and say so in their docs.

// FuncNode is one function body in the call graph.
type FuncNode struct {
	Name string        // stable display name, e.g. "nda/internal/ooo.(*Core).Step"
	Pkg  *Pkg          // defining package
	Decl *ast.FuncDecl // non-nil for declared functions and methods
	Lit  *ast.FuncLit  // non-nil for function literals
	Obj  *types.Func   // declared object; nil for literals
	Body *ast.BlockStmt

	// Calls lists the node's call sites in source order.
	Calls []*CallSite

	// Encl is the enclosing declared function for literals (nil for the
	// rare package-scope literal in a var initializer).
	Encl *FuncNode

	// HotPath records a //ndavet:hotpath annotation on the declaration.
	HotPath bool

	summary *summary // filled by dataflow.go
	scc     int      // SCC index (condensation order: callees before callers)
}

// CallSite is one resolved call expression (including go/defer calls).
type CallSite struct {
	Call  *ast.CallExpr
	Go    bool // spawned via a go statement
	Defer bool

	// Static is the unique callee when the call is direct; nil otherwise.
	Static *FuncNode
	// Candidates enumerates the possible module-internal callees of a
	// dynamic call (interface dispatch, func value), sorted by name.
	Candidates []*FuncNode
	// Unknown marks calls that may target code the module cannot see:
	// every dynamic call, plus direct calls to unexported-body externals.
	Unknown bool
	// External is the callee object when it resolves outside the module
	// (stdlib); nil for module callees and unresolvable dynamics.
	External *types.Func
	// Desc says what kind of call site this is, for findings: "call to
	// os.ReadFile", "interface call net/http.RoundTripper.RoundTrip",
	// "call through func value job".
	Desc string
}

// Targets returns every module-internal callee the site may reach.
func (cs *CallSite) Targets() []*FuncNode {
	if cs.Static != nil {
		return []*FuncNode{cs.Static}
	}
	return cs.Candidates
}

// CallGraph is the module-wide graph plus its resolution indexes.
type CallGraph struct {
	Mod   *Module
	Nodes []*FuncNode // deterministic: source position order

	byObj  map[*types.Func]*FuncNode
	byLit  map[*ast.FuncLit]*FuncNode
	byName map[string]*FuncNode

	// taken lists address-taken functions (referenced outside call
	// position) — the candidate set for func-value dispatch.
	taken []*FuncNode

	sccCount int
}

// NodeByName looks a node up by its display name.
func (g *CallGraph) NodeByName(name string) *FuncNode { return g.byName[name] }

// NodeOf returns the node for a declared function object, if any.
func (g *CallGraph) NodeOf(obj *types.Func) *FuncNode {
	if obj == nil {
		return nil
	}
	return g.byObj[obj.Origin()]
}

// LitNode returns the node for a function literal.
func (g *CallGraph) LitNode(lit *ast.FuncLit) *FuncNode { return g.byLit[lit] }

// nodeName renders the stable display name for a declared function.
func nodeName(p *Pkg, decl *ast.FuncDecl, obj *types.Func) string {
	if obj != nil {
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv := sig.Recv().Type()
			s := types.TypeString(recv, func(tp *types.Package) string { return "" })
			// Strip generic type arguments so the name stays readable:
			// (*Ring[T]).Push names as (*Ring).Push.
			if i := strings.IndexByte(s, '['); i >= 0 {
				j := strings.LastIndexByte(s, ']')
				if j > i {
					s = s[:i] + s[j+1:]
				}
			}
			return p.Path + ".(" + s + ")." + obj.Name()
		}
	}
	return p.Path + "." + decl.Name.Name
}

// litName renders a literal's name from its enclosing function and
// position: "<encl>.func@file:line".
func litName(m *Module, encl string, lit *ast.FuncLit) string {
	file, line, _ := m.Rel(lit.Pos())
	return fmt.Sprintf("%s.func@%s:%d", encl, file, line)
}

// BuildCallGraph constructs the call graph for a loaded module. The
// result is deterministic: node order follows source position, candidate
// lists are name-sorted.
func BuildCallGraph(m *Module) *CallGraph {
	g := &CallGraph{
		Mod:    m,
		byObj:  map[*types.Func]*FuncNode{},
		byLit:  map[*ast.FuncLit]*FuncNode{},
		byName: map[string]*FuncNode{},
	}
	g.createNodes()
	g.resolveEdges()
	g.condense()
	g.computeSummaries()
	return g
}

// createNodes adds a node for every function body in the module, and
// records which declared functions carry the //ndavet:hotpath annotation.
func (g *CallGraph) createNodes() {
	for _, p := range g.Mod.Pkgs {
		for _, f := range p.Files {
			hot := hotPathMarkers(g.Mod.Fset, f)
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := p.Info.Defs[fd.Name].(*types.Func)
				n := &FuncNode{
					Name: nodeName(p, fd, obj),
					Pkg:  p, Decl: fd, Obj: obj, Body: fd.Body,
					HotPath: isHotPath(g.Mod.Fset, fd, hot),
				}
				g.addNode(n)
				if obj != nil {
					g.byObj[obj.Origin()] = n
				}
				// Literals nested in this declaration.
				g.createLitNodes(p, n, fd.Body)
			}
			// Package-scope literals (var initializers).
			for _, d := range f.Decls {
				if gd, ok := d.(*ast.GenDecl); ok {
					ast.Inspect(gd, func(c ast.Node) bool {
						if lit, ok := c.(*ast.FuncLit); ok {
							if g.byLit[lit] == nil {
								ln := &FuncNode{
									Name: litName(g.Mod, p.Path+".init", lit),
									Pkg:  p, Lit: lit, Body: lit.Body,
								}
								g.addNode(ln)
								g.byLit[lit] = ln
								g.createLitNodes(p, ln, lit.Body)
							}
							return false
						}
						return true
					})
				}
			}
		}
	}
}

// createLitNodes adds a node for every literal directly nested in body
// (each literal then recurses for its own nested literals).
func (g *CallGraph) createLitNodes(p *Pkg, encl *FuncNode, body *ast.BlockStmt) {
	ast.Inspect(body, func(c ast.Node) bool {
		lit, ok := c.(*ast.FuncLit)
		if !ok {
			return true
		}
		ln := &FuncNode{
			Name: litName(g.Mod, encl.Name, lit),
			Pkg:  p, Lit: lit, Body: lit.Body, Encl: encl,
		}
		g.addNode(ln)
		g.byLit[lit] = ln
		g.createLitNodes(p, ln, lit.Body)
		return false
	})
}

func (g *CallGraph) addNode(n *FuncNode) {
	g.Nodes = append(g.Nodes, n)
	g.byName[n.Name] = n
}

// hotPathMarkers collects the source lines of //ndavet:hotpath comments
// in a file. A marker annotates the function declaration whose doc
// comment contains it, or whose func keyword sits on the next line.
func hotPathMarkers(fset *token.FileSet, f *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == "ndavet:hotpath" {
				out[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}

// isHotPath reports whether a declaration carries the hotpath marker:
// any marker line inside the doc comment group, or directly above the
// func keyword.
func isHotPath(fset *token.FileSet, fd *ast.FuncDecl, markers map[int]bool) bool {
	if len(markers) == 0 {
		return false
	}
	if markers[fset.Position(fd.Pos()).Line-1] {
		return true
	}
	if fd.Doc != nil {
		lo := fset.Position(fd.Doc.Pos()).Line
		hi := fset.Position(fd.Doc.End()).Line
		for l := lo; l <= hi; l++ {
			if markers[l] {
				return true
			}
		}
	}
	return false
}

// resolveEdges fills every node's call-site list.
func (g *CallGraph) resolveEdges() {
	g.collectTaken()
	for _, n := range g.Nodes {
		n.Calls = g.resolveBody(n)
	}
}

// collectTaken finds every module function referenced as a value — the
// address-taken set that seeds func-value dispatch. A reference is "in
// call position" only when it is exactly the callee expression.
func (g *CallGraph) collectTaken() {
	seen := map[*FuncNode]bool{}
	for _, p := range g.Mod.Pkgs {
		for _, f := range p.Files {
			callees := map[ast.Expr]bool{}
			selIdents := map[*ast.Ident]bool{}
			ast.Inspect(f, func(c ast.Node) bool {
				switch e := c.(type) {
				case *ast.CallExpr:
					callees[unparen(e.Fun)] = true
				case *ast.SelectorExpr:
					// The Sel ident is owned by its selector: a method
					// mention is a value only via the SelectorExpr case
					// below, never via the bare ident the walk also visits.
					selIdents[e.Sel] = true
				}
				return true
			})
			ast.Inspect(f, func(c ast.Node) bool {
				switch e := c.(type) {
				case *ast.FuncLit:
					if !callees[ast.Expr(e)] {
						if ln := g.byLit[e]; ln != nil && !seen[ln] {
							seen[ln] = true
							g.taken = append(g.taken, ln)
						}
					}
				case *ast.Ident:
					if callees[ast.Expr(e)] || selIdents[e] {
						return true
					}
					if fn, ok := p.Info.Uses[e].(*types.Func); ok {
						if n := g.byObj[fn.Origin()]; n != nil && !seen[n] {
							seen[n] = true
							g.taken = append(g.taken, n)
						}
					}
				case *ast.SelectorExpr:
					if callees[ast.Expr(e)] {
						return true
					}
					if sel, ok := p.Info.Selections[e]; ok && sel.Kind() == types.MethodVal {
						if fn, ok := sel.Obj().(*types.Func); ok {
							if n := g.byObj[fn.Origin()]; n != nil && !seen[n] {
								seen[n] = true
								g.taken = append(g.taken, n)
							}
						}
					}
				}
				return true
			})
		}
	}
	sort.Slice(g.taken, func(i, j int) bool { return g.taken[i].Name < g.taken[j].Name })
}

// resolveBody resolves the call sites lexically inside n's own body
// (nested literals excluded — they have their own nodes). go and defer
// statements claim their call expression so it carries the right flags.
func (g *CallGraph) resolveBody(n *FuncNode) []*CallSite {
	claimed := map[*ast.CallExpr]struct{ goStmt, deferStmt bool }{}
	walkSkipFuncLit(n.Body, func(c ast.Node) bool {
		switch s := c.(type) {
		case *ast.GoStmt:
			claimed[s.Call] = struct{ goStmt, deferStmt bool }{true, false}
		case *ast.DeferStmt:
			claimed[s.Call] = struct{ goStmt, deferStmt bool }{false, true}
		}
		return true
	})
	var out []*CallSite
	walkSkipFuncLit(n.Body, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok {
			if cs := g.resolveCall(n.Pkg, call); cs != nil {
				flags := claimed[call]
				cs.Go, cs.Defer = flags.goStmt, flags.deferStmt
				out = append(out, cs)
			}
		}
		return true
	})
	sort.SliceStable(out, func(i, j int) bool { return out[i].Call.Pos() < out[j].Call.Pos() })
	return out
}

// resolveCall classifies one call expression. Returns nil for conversions
// and builtin calls — they are operations, not edges.
func (g *CallGraph) resolveCall(p *Pkg, call *ast.CallExpr) *CallSite {
	fun := unparen(call.Fun)
	// A conversion: T(x).
	if tv, ok := p.Info.Types[fun]; ok && tv.IsType() {
		return nil
	}
	// A directly invoked literal: static edge to its node.
	if lit, ok := fun.(*ast.FuncLit); ok {
		if ln := g.byLit[lit]; ln != nil {
			return &CallSite{Call: call, Static: ln, Desc: "call to " + ln.Name}
		}
	}
	obj, _ := calleeOf(p.Info, call)
	switch o := obj.(type) {
	case *types.Builtin:
		return nil
	case *types.Func:
		fn := o.Origin()
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
				return g.resolveInterfaceCall(p, call, fn)
			}
		}
		if n := g.byObj[fn]; n != nil {
			return &CallSite{Call: call, Static: n, Desc: "call to " + n.Name}
		}
		return &CallSite{Call: call, External: fn, Desc: "call to " + externalName(fn)}
	}
	// Everything else is a call through a func-typed value.
	return g.resolveFuncValueCall(p, call)
}

// externalName renders "pkg.Func" or "pkg.(T).Method" for a non-module
// callee.
func externalName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := types.TypeString(sig.Recv().Type(), func(tp *types.Package) string { return "" })
		return fn.Pkg().Path() + ".(" + recv + ")." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// resolveInterfaceCall enumerates the module types implementing the
// called interface method — class-hierarchy analysis — and marks the site
// Unknown, since external implementers are always possible.
func (g *CallGraph) resolveInterfaceCall(p *Pkg, call *ast.CallExpr, m *types.Func) *CallSite {
	cs := &CallSite{Call: call, Unknown: true, External: m,
		Desc: "interface call " + externalName(m)}
	iface, _ := m.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	if iface == nil {
		return cs
	}
	seen := map[*FuncNode]bool{}
	for _, pkg := range g.Mod.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			for _, t := range []types.Type{named, types.NewPointer(named)} {
				if _, isIface := named.Underlying().(*types.Interface); isIface {
					continue
				}
				if !types.Implements(t, iface) {
					continue
				}
				impl, _, _ := types.LookupFieldOrMethod(t, true, m.Pkg(), m.Name())
				if fn, ok := impl.(*types.Func); ok {
					if n := g.byObj[fn.Origin()]; n != nil && !seen[n] {
						seen[n] = true
						cs.Candidates = append(cs.Candidates, n)
					}
				}
			}
		}
	}
	sort.Slice(cs.Candidates, func(i, j int) bool { return cs.Candidates[i].Name < cs.Candidates[j].Name })
	return cs
}

// resolveFuncValueCall matches a call through a func value against the
// address-taken set by identical signature.
func (g *CallGraph) resolveFuncValueCall(p *Pkg, call *ast.CallExpr) *CallSite {
	cs := &CallSite{Call: call, Unknown: true,
		Desc: "call through func value " + types.ExprString(unparen(call.Fun))}
	sig, _ := p.Info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		if t := p.Info.TypeOf(call.Fun); t != nil {
			sig, _ = t.Underlying().(*types.Signature)
		}
	}
	if sig == nil {
		return cs
	}
	for _, cand := range g.taken {
		var candSig *types.Signature
		if cand.Obj != nil {
			candSig, _ = cand.Obj.Type().(*types.Signature)
			if candSig != nil && candSig.Recv() != nil {
				// A method value's signature drops the receiver.
				candSig = types.NewSignatureType(nil, nil, nil, candSig.Params(), candSig.Results(), candSig.Variadic())
			}
		} else if cand.Lit != nil {
			if t := cand.Pkg.Info.TypeOf(cand.Lit); t != nil {
				candSig, _ = t.(*types.Signature)
			}
		}
		if candSig != nil && funcSigMatches(sig, candSig) {
			cs.Candidates = append(cs.Candidates, cand)
		}
	}
	return cs
}

// funcSigMatches reports whether an address-taken function of type cand
// could flow into a func value of type sig. Exact identity for ordinary
// signatures; when sig mentions type parameters (a call through a
// generic's func-typed parameter), fall back to arity matching — the
// over-approximation keeps the candidate set sound for the passes that
// enumerate it.
func funcSigMatches(sig, cand *types.Signature) bool {
	if types.Identical(types.Type(sig), types.Type(cand)) {
		return true
	}
	if !mentionsTypeParam(sig) {
		return false
	}
	return sig.Params().Len() == cand.Params().Len() &&
		sig.Results().Len() == cand.Results().Len() &&
		sig.Variadic() == cand.Variadic()
}

// mentionsTypeParam reports whether any parameter or result of sig is or
// contains a type parameter (shallow walk over the common containers).
func mentionsTypeParam(sig *types.Signature) bool {
	var any func(t types.Type, depth int) bool
	any = func(t types.Type, depth int) bool {
		if depth > 4 {
			return false
		}
		switch u := t.(type) {
		case *types.TypeParam:
			return true
		case *types.Pointer:
			return any(u.Elem(), depth+1)
		case *types.Slice:
			return any(u.Elem(), depth+1)
		case *types.Array:
			return any(u.Elem(), depth+1)
		case *types.Map:
			return any(u.Key(), depth+1) || any(u.Elem(), depth+1)
		case *types.Chan:
			return any(u.Elem(), depth+1)
		case *types.Signature:
			for i := 0; i < u.Params().Len(); i++ {
				if any(u.Params().At(i).Type(), depth+1) {
					return true
				}
			}
			for i := 0; i < u.Results().Len(); i++ {
				if any(u.Results().At(i).Type(), depth+1) {
					return true
				}
			}
		}
		return false
	}
	return any(types.Type(sig), 0)
}

// condense runs Tarjan's SCC algorithm over the graph (static edges plus
// dynamic candidates) and numbers components in reverse topological
// order: a node's callees are always in the same or a lower-numbered SCC.
func (g *CallGraph) condense() {
	index := map[*FuncNode]int{}
	low := map[*FuncNode]int{}
	onStack := map[*FuncNode]bool{}
	var stack []*FuncNode
	next := 0

	type frame struct {
		n    *FuncNode
		succ []*FuncNode
		i    int
	}
	succs := func(n *FuncNode) []*FuncNode {
		var out []*FuncNode
		for _, cs := range n.Calls {
			out = append(out, cs.Targets()...)
		}
		return out
	}
	// Iterative Tarjan: the module has deep call chains and recursion.
	var visit func(root *FuncNode)
	visit = func(root *FuncNode) {
		frames := []frame{{n: root, succ: succs(root)}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succ) {
				w := f.succ[f.i]
				f.i++
				if _, ok := index[w]; !ok {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{n: w, succ: succs(w)})
				} else if onStack[w] {
					if index[w] < low[f.n] {
						low[f.n] = index[w]
					}
				}
				continue
			}
			// Pop the frame.
			n := f.n
			frames = frames[:len(frames)-1]
			if low[n] == index[n] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					w.scc = g.sccCount
					if w == n {
						break
					}
				}
				g.sccCount++
			}
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[n] < low[p.n] {
					low[p.n] = low[n]
				}
			}
		}
	}
	for _, n := range g.Nodes {
		if _, ok := index[n]; !ok {
			visit(n)
		}
	}
}

// SameSCC reports whether two nodes are mutually recursive (share a
// strongly connected component).
func (g *CallGraph) SameSCC(a, b *FuncNode) bool { return a != nil && b != nil && a.scc == b.scc }

// ReachableFrom walks the graph from root over static edges and dynamic
// candidates, returning every reachable node with one deterministic
// shortest call chain (names from root, exclusive) per node. Order is BFS
// with name-sorted expansion, so chains are stable across runs.
func (g *CallGraph) ReachableFrom(root *FuncNode) map[*FuncNode][]string {
	return g.reachable(root, false)
}

// StaticReachableFrom is ReachableFrom restricted to static edges: the
// walk stops at dynamic dispatch instead of fanning out over candidates.
// alloclint uses it — the dynamic call site itself is its finding, so
// walking past it would charge unrelated candidates to the hot path.
func (g *CallGraph) StaticReachableFrom(root *FuncNode) map[*FuncNode][]string {
	return g.reachable(root, true)
}

func (g *CallGraph) reachable(root *FuncNode, staticOnly bool) map[*FuncNode][]string {
	chains := map[*FuncNode][]string{root: {}}
	queue := []*FuncNode{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		var nexts []*FuncNode
		for _, cs := range n.Calls {
			if staticOnly {
				if cs.Static != nil {
					nexts = append(nexts, cs.Static)
				}
				continue
			}
			nexts = append(nexts, cs.Targets()...)
		}
		sort.Slice(nexts, func(i, j int) bool { return nexts[i].Name < nexts[j].Name })
		for _, w := range nexts {
			if _, ok := chains[w]; ok {
				continue
			}
			chain := append(append([]string{}, chains[n]...), w.Name)
			chains[w] = chain
			queue = append(queue, w)
		}
	}
	return chains
}

// chainString renders a call chain for a finding message. Module paths
// are shortened by the module-path prefix to keep messages readable.
func chainString(mod *Module, root string, chain []string) string {
	short := make([]string, 0, len(chain)+1)
	for _, s := range append([]string{root}, chain...) {
		short = append(short, strings.TrimPrefix(s, mod.Path+"/"))
	}
	return strings.Join(short, " -> ")
}
