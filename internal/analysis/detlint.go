package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// detlint is the determinism pass. It enforces, module-wide, the property
// the golden sweep tests check end-to-end: identical inputs produce
// identical bytes. Two families of findings:
//
//  1. Wall-clock reads (time.Now, time.Since) and draws from math/rand's
//     process-global source (rand.Intn, rand.Int63n, ... — anything but
//     the explicit-source constructors rand.New/rand.NewSource). Both
//     make output depend on when or where the process runs. Legitimate
//     uses — retry jitter in the dispatch layer, uptime metrics, CLI
//     progress stamps — carry //ndavet:allow detlint annotations.
//
//  2. Map iteration whose per-element results reach an ordering-sensitive
//     sink: a direct print/write/encode inside the loop, a string
//     concatenation, or an append whose slice is never sorted afterwards
//     in the same function. Go randomizes map iteration order per run, so
//     any of these leaks scheduling into the output bytes.
func runDetlint(m *Module) []Finding {
	var out []Finding
	for _, p := range m.Pkgs {
		out = append(out, detClockAndRand(m, p)...)
		eachFuncBody(p, func(name string, body *ast.BlockStmt) {
			out = append(out, detMapOrder(m, p, body)...)
		})
	}
	return out
}

// detClockAndRand flags wall-clock reads and global-source randomness in
// every file of the package, including package-level initializers.
func detClockAndRand(m *Module, p *Pkg) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj, _ := calleeOf(p.Info, call)
			switch pkgPathOf(obj) {
			case "time":
				if name := obj.Name(); name == "Now" || name == "Since" {
					out = append(out, m.kfinding("detlint", "wallclock", call,
						"time."+name+" reads the wall clock; deterministic outputs must not depend on it"))
				}
			case "math/rand", "math/rand/v2":
				if _, isFunc := obj.(*types.Func); !isFunc {
					return true
				}
				if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods on an explicit *rand.Rand are seeded and fine
				}
				if name := obj.Name(); name != "New" && name != "NewSource" {
					out = append(out, m.kfinding("detlint", "rand", call,
						"math/rand."+obj.Name()+" draws from the process-global source; use rand.New(rand.NewSource(seed)) for replayable randomness"))
				}
			}
			return true
		})
	}
	return out
}

// orderedPrintFns are the fmt functions that serialize their arguments to
// an ordered destination.
var orderedPrintFns = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// orderedWriteMethods are methods that emit bytes in call order, whatever
// the receiver (io.Writer, strings.Builder, hash.Hash, *json.Encoder...).
var orderedWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

// detMapOrder analyzes one function body: every range over a map-typed
// expression is checked for ordering-sensitive sinks in its body, and for
// appends whose target is never sorted later in the same function.
func detMapOrder(m *Module, p *Pkg, body *ast.BlockStmt) []Finding {
	var out []Finding
	walkSkipFuncLit(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		mapStr := types.ExprString(rng.X)
		// One record per distinct append target, first site wins. A slice,
		// not a map: ndavet's own output must not depend on map order.
		type appendRec struct {
			target string
			site   ast.Node
		}
		var appends []appendRec
		noteAppend := func(target string, site ast.Node) {
			for _, a := range appends {
				if a.target == target {
					return
				}
			}
			appends = append(appends, appendRec{target, site})
		}
		walkSkipFuncLit(rng.Body, func(c ast.Node) bool {
			switch s := c.(type) {
			case *ast.AssignStmt:
				if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 {
					if lt := p.Info.TypeOf(s.Lhs[0]); lt != nil {
						if b, ok := lt.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
							out = append(out, m.kfinding("detlint", "maporder", s,
								"string built up across iteration of map "+mapStr+"; iteration order is random — collect and sort instead"))
						}
					}
				}
				for i, rhs := range s.Rhs {
					call, ok := unparen(rhs).(*ast.CallExpr)
					if !ok || !isBuiltinAppend(p.Info, call) || i >= len(s.Lhs) {
						continue
					}
					noteAppend(types.ExprString(s.Lhs[i]), call)
				}
			case *ast.CallExpr:
				obj, _ := calleeOf(p.Info, s)
				if obj == nil {
					return true
				}
				if pkgPathOf(obj) == "fmt" && orderedPrintFns[obj.Name()] {
					out = append(out, m.kfinding("detlint", "maporder", s,
						"fmt."+obj.Name()+" inside iteration of map "+mapStr+"; iteration order is random — sort the keys first"))
					return true
				}
				if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil && orderedWriteMethods[obj.Name()] {
					out = append(out, m.kfinding("detlint", "maporder", s,
						obj.Name()+" inside iteration of map "+mapStr+"; iteration order is random — sort the keys first"))
				}
			}
			return true
		})
		for _, a := range appends {
			if !sortedAfter(p.Info, body, a.site, a.target) {
				out = append(out, m.kfinding("detlint", "maporder", a.site,
					"values from iteration of map "+mapStr+" are appended to "+a.target+
						", which is never sorted in this function; the slice order is random"))
			}
		}
		return true
	})
	return out
}

// isBuiltinAppend reports whether call is the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether, somewhere after the append site, the
// enclosing function calls a sort/slices function with the collected
// target among its arguments. The sort may sit inside the loop body (the
// per-iteration collect-then-sort idiom) or after it.
func sortedAfter(info *types.Info, body *ast.BlockStmt, site ast.Node, target string) bool {
	found := false
	walkSkipFuncLit(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < site.End() {
			return true
		}
		obj, _ := calleeOf(info, call)
		if obj == nil {
			return true
		}
		switch pkgPathOf(obj) {
		case "sort", "slices":
		default:
			// A helper like sortGadgets(gs) counts too: any callee whose
			// name says it sorts, applied to the collected slice.
			if !strings.Contains(strings.ToLower(obj.Name()), "sort") {
				return true
			}
		}
		for _, arg := range call.Args {
			if strings.Contains(types.ExprString(arg), target) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
