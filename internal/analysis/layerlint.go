package analysis

import (
	"strconv"
	"strings"
)

// layerlint enforces the import DAG declared in layers.go as a contract:
// every module package must be listed, may only import the module-internal
// packages its rule allows, and — for the restricted classes — must stay
// off the forbidden stdlib surface (a deterministic core package importing
// net/http is an architecture bug whatever the code does with it). The
// declared contract itself is checked for cycles, and entries naming
// packages that no longer exist are reported so the table tracks reality.
func runLayerlint(m *Module, contract []Rule, idx map[string]*Rule) []Finding {
	var out []Finding

	if cyc := contractCycle(contract); cyc != "" {
		out = append(out, Finding{
			File: "internal/analysis/layers.go", Tool: "ndavet", Pass: "layerlint", Kind: "contract",
			Message: "layer contract declares an import cycle: " + cyc,
		})
	}
	for i := range contract {
		r := &contract[i]
		if m.ByPath[r.Path] == nil {
			out = append(out, Finding{
				File: "internal/analysis/layers.go", Tool: "ndavet", Pass: "layerlint", Kind: "contract",
				Message: "layer contract lists " + r.Path + " but the module has no such package",
			})
		}
		for _, dep := range r.Allow {
			if idx[dep] == nil {
				out = append(out, Finding{
					File: "internal/analysis/layers.go", Tool: "ndavet", Pass: "layerlint", Kind: "contract",
					Message: "layer contract for " + r.Path + " allows " + dep + ", which the contract does not declare",
				})
			}
		}
	}

	for _, p := range m.Pkgs {
		rule := idx[p.Path]
		if rule == nil {
			if len(p.Files) > 0 {
				out = append(out, m.kfinding("layerlint", "contract", p.Files[0].Name,
					"package "+p.Path+" is not declared in the layer contract (internal/analysis/layers.go)"))
			}
			continue
		}
		allowed := map[string]bool{}
		for _, dep := range rule.Allow {
			allowed[dep] = true
		}
		denied := deniedStd[rule.Class]
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if ip == m.Path || strings.HasPrefix(ip, m.Path+"/") {
					if !allowed[ip] {
						out = append(out, m.kfinding("layerlint", "import", imp,
							p.Path+" must not import "+ip+" (not in its layer contract; class "+string(rule.Class)+")"))
					}
					continue
				}
				for _, prefix := range denied {
					if ip == prefix || strings.HasPrefix(ip, prefix+"/") {
						out = append(out, m.kfinding("layerlint", "import", imp,
							p.Path+" ("+string(rule.Class)+" class) must not import "+ip))
						break
					}
				}
			}
		}
	}
	return out
}
