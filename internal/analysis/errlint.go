package analysis

import (
	"go/ast"
	"go/types"
)

// errlint flags silently dropped error returns: a call whose (possibly
// tuple-trailing) result type is error, used as a bare expression
// statement or discarded behind defer/go. In the service layer a dropped
// error turns a failed send or a half-written response into silent data
// loss; in the program generator it turns an assembly failure into a
// nil-program crash far from the cause. Writing `_ = f()` stays legal —
// the blank assignment is a visible, greppable acknowledgment — and
// sanctioned drops carry //ndavet:allow errlint annotations.
//
// The pass runs over Service-class packages and the fuzz program
// generator (path suffix "/progen"), not module-wide: the deterministic
// core returns errors it always consumes, and gofmt-style blanket
// enforcement elsewhere would bury the signal in test scaffolding.
//
// Exemptions: methods on *strings.Builder, *bytes.Buffer, and hash.Hash
// (their Write* methods are documented to always return a nil error), and
// the fmt.Fprint family when the destination argument is statically one
// of those types, for the same reason.
func runErrlint(m *Module, idx map[string]*Rule) []Finding {
	var out []Finding
	for _, p := range m.Pkgs {
		if classOf(idx, p.Path) != Service && !hasSuffix(p.Path, "/progen") {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.ExprStmt:
					if call, ok := unparen(s.X).(*ast.CallExpr); ok {
						out = append(out, errlintCall(m, p, call, "")...)
					}
				case *ast.DeferStmt:
					out = append(out, errlintCall(m, p, s.Call, "defer ")...)
				case *ast.GoStmt:
					out = append(out, errlintCall(m, p, s.Call, "go ")...)
				}
				return true
			})
		}
	}
	return out
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// errlintCall reports the call if it returns a dropped error and is not
// exempt.
func errlintCall(m *Module, p *Pkg, call *ast.CallExpr, ctx string) []Finding {
	if !returnsError(p.Info, call) || exemptWriter(p.Info, call) {
		return nil
	}
	return []Finding{m.kfinding("errlint", "drop", call,
		ctx+"call drops its error return; handle it or assign to _ explicitly")}
}

// returnsError reports whether the call's result is an error or a tuple
// whose last element is an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() == nil && obj.Name() == "error"
}

// exemptWriter recognizes the never-fails writers: a method call whose
// receiver is *strings.Builder or *bytes.Buffer, or an fmt.Fprint-family
// call whose writer argument is one of those.
func exemptWriter(info *types.Info, call *ast.CallExpr) bool {
	obj, recv := calleeOf(info, call)
	if recv != nil && isNeverFailsBuffer(info.TypeOf(recv)) {
		return true
	}
	if pkgPathOf(obj) == "fmt" && orderedPrintFns[obj.Name()] && len(call.Args) > 0 {
		if obj.Name()[0] == 'F' && isNeverFailsBuffer(info.TypeOf(call.Args[0])) {
			return true
		}
	}
	return false
}

// isNeverFailsBuffer matches *strings.Builder, *bytes.Buffer (and the
// bare value types, which cannot satisfy io.Writer but can still receive
// method calls through addressable receivers), and the hash.Hash
// interface — all three document that Write never returns an error.
func isNeverFailsBuffer(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "strings.Builder", "bytes.Buffer", "hash.Hash":
		return true
	}
	return false
}
