package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// ctxlint checks that blocking work reachable from a service entry point
// can actually be cancelled. An entry point is a function in a
// Service-class package that already holds a cancellation signal — an
// http.Handler-shaped function or literal (it has r.Context()), or an
// exported function taking a context.Context. From each entry the pass
// follows the call graph; a blocking operation (channel op outside a
// defaulted select, select without default, Wait/Acquire, network or
// disk I/O, time.Sleep) that sits in a function with NO signal in scope
// is a finding: the request context stopped being plumbed somewhere
// above it, so that wait cannot be interrupted when the caller gives up.
//
// The dataflow layer computes this as the noCtxBlock summary bit, folded
// bottom-up, so the pass itself is a lookup: entry reachable to a
// ctx-less blocking witness → report at the witness, with the chain.
// Dynamic dispatch contributes the enumerated module candidates
// (documented precision tradeoff; alloclint is the worst-case pass).
//
// Kind: "noctx".
func runCtxlint(m *Module, idx map[string]*Rule, g *CallGraph) []Finding {
	var out []Finding
	seen := map[string]bool{}
	for _, n := range g.Nodes {
		if classOf(idx, n.Pkg.Path) != Service || !isEntryPoint(n) {
			continue
		}
		if n.summary.noCtxBlock == nil {
			continue
		}
		w := n.summary.noCtxBlock
		file, line, col := m.Rel(w.pos)
		k := file + ":" + strconv.Itoa(line) + ":" + strconv.Itoa(col)
		if seen[k] {
			continue
		}
		seen[k] = true
		owner := shortName(m, n.Name)
		if len(w.via) > 0 {
			owner = shortName(m, w.via[len(w.via)-1])
		}
		f := Finding{
			File: file, Line: line, Col: col, Tool: "ndavet", Pass: "ctxlint", Kind: "noctx",
			Message: w.desc + " in " + owner + " has no context or done channel in scope, but is reachable from entry point " +
				chainString(m, n.Name, w.via) + "; plumb the request context down so the wait can be cancelled",
		}
		out = append(out, f)
	}
	return out
}

// isEntryPoint recognizes the functions where a request context is born
// or handed in: handler-shaped functions and literals (an
// http.ResponseWriter plus *http.Request parameter pair), and exported
// declared functions with a context.Context parameter.
func isEntryPoint(n *FuncNode) bool {
	var sig *types.Signature
	switch {
	case n.Obj != nil:
		sig, _ = n.Obj.Type().(*types.Signature)
	case n.Lit != nil:
		if t := n.Pkg.Info.TypeOf(n.Lit); t != nil {
			sig, _ = t.(*types.Signature)
		}
	}
	if sig == nil {
		return false
	}
	if isHandlerShape(sig) {
		return true
	}
	if n.Obj == nil || !ast.IsExported(n.Obj.Name()) {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isHandlerShape matches func(w http.ResponseWriter, r *http.Request).
func isHandlerShape(sig *types.Signature) bool {
	p := sig.Params()
	if p.Len() != 2 {
		return false
	}
	return isNamedType(p.At(0).Type(), "net/http", "ResponseWriter") &&
		isNamedPtrType(p.At(1).Type(), "net/http", "Request")
}

func isContextType(t types.Type) bool { return isNamedType(t, "context", "Context") }

func isNamedType(t types.Type, path, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == name
}

func isNamedPtrType(t types.Type, path, name string) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && isNamedType(ptr.Elem(), path, name)
}
