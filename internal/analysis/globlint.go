package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// globlint flags mutable package-level state in deterministic (and
// concurrency) packages. A package-level var is mutable state when any
// code in the module writes to it after initialization — assigns to it,
// assigns through an index/field/deref rooted at it, increments it — or
// takes its address (which makes writes untrackable). Read-only lookup
// tables, sentinel errors, and other write-never vars pass: the sin is
// the mutation, not the declaration.
func runGloblint(m *Module, idx map[string]*Rule) []Finding {
	// First sweep the whole module for writes and address-takes, so a
	// service package mutating a core package's exported var still counts
	// against the core package's contract.
	writes := map[types.Object]token.Pos{}
	addrs := map[types.Object]token.Pos{}
	note := func(dst map[types.Object]token.Pos, info *types.Info, e ast.Expr) {
		id := rootIdent(info, e)
		if id == nil {
			return
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if !isPackageLevelVar(obj) {
			return
		}
		if _, seen := dst[obj]; !seen {
			dst[obj] = e.Pos()
		}
	}
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range s.Lhs {
						note(writes, p.Info, lhs)
					}
				case *ast.IncDecStmt:
					note(writes, p.Info, s.X)
				case *ast.UnaryExpr:
					if s.Op == token.AND {
						note(addrs, p.Info, s.X)
					}
				}
				return true
			})
		}
	}

	var out []Finding
	for _, p := range m.Pkgs {
		switch classOf(idx, p.Path) {
		case Deterministic, Concurrency:
		default:
			continue
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if name.Name == "_" {
							continue
						}
						obj := p.Info.Defs[name]
						if obj == nil || !isPackageLevelVar(obj) {
							continue
						}
						if pos, ok := writes[obj]; ok {
							file, line, _ := m.Rel(pos)
							out = append(out, m.kfinding("globlint", "write", name,
								"package-level var "+name.Name+" is mutated (e.g. at "+file+":"+strconv.Itoa(line)+
									"); deterministic packages must not carry mutable state"))
						} else if pos, ok := addrs[obj]; ok {
							file, line, _ := m.Rel(pos)
							out = append(out, m.kfinding("globlint", "addr", name,
								"package-level var "+name.Name+" has its address taken (at "+file+":"+strconv.Itoa(line)+
									"), so it may be mutated; deterministic packages must not carry mutable state"))
						}
					}
				}
			}
		}
	}
	return out
}
