package analysis

import (
	"fmt"
	"regexp"
	"testing"
)

// corpusContract declares the corpus module's layers: det/detdep are
// deterministic (detlint, globlint, stdlib restrictions), svc is service
// (locklint, errlint), jobs is service (leaklint, ctxlint, transitive
// locklint), hot is deterministic (alloclint's hot-path cases), progen
// is deterministic but errlint-covered by path suffix, badlayer is
// deterministic but sins on purpose, and unlisted is deliberately
// absent.
var corpusContract = []Rule{
	{Path: "corpus/detdep", Class: Deterministic},
	{Path: "corpus/det", Class: Deterministic, Allow: []string{"corpus/detdep"}},
	{Path: "corpus/svc", Class: Service},
	{Path: "corpus/jobs", Class: Service},
	{Path: "corpus/hot", Class: Deterministic},
	{Path: "corpus/progen", Class: Deterministic},
	{Path: "corpus/badlayer", Class: Deterministic},
}

var wantRe = regexp.MustCompile(`want "([^"]*)"`)

// TestCorpus runs every pass over the expectation corpus: each // want
// comment must match exactly one reported finding on its line, every
// reported finding must be wanted, and the sanctioned (annotated)
// exceptions must be granted — one per pass.
func TestCorpus(t *testing.T) {
	m, err := Load("testdata/corpus")
	if err != nil {
		t.Fatalf("load corpus: %v", err)
	}
	report, err := RunAll(m, Config{Contract: corpusContract})
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string][]*want{} // "file:line" -> expectations
	key := func(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					ms := wantRe.FindStringSubmatch(c.Text)
					if ms == nil {
						continue
					}
					file, line, _ := m.Rel(c.Pos())
					wants[key(file, line)] = append(wants[key(file, line)], &want{re: regexp.MustCompile(ms[1])})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("corpus has no want comments; the expectation harness is broken")
	}

	for _, f := range report.Open() {
		k := key(f.File, f.Line)
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f.String())
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: wanted finding matching %q, got none", k, w.re)
			}
		}
	}

	// The corpus carries exactly one sanctioned exception per pass; the
	// census must show each as allowed, proving the annotation grammar
	// grants findings rather than hiding them.
	for _, pass := range PassNames {
		if got := report.Allowed[pass]; got != 1 {
			t.Errorf("allowed census for %s = %d, want 1", pass, got)
		}
	}
}

// TestCorpusPassSubset proves -pass filtering does not invent unused-
// annotation findings for the passes that were not run.
func TestCorpusPassSubset(t *testing.T) {
	m, err := Load("testdata/corpus")
	if err != nil {
		t.Fatalf("load corpus: %v", err)
	}
	report, err := RunAll(m, Config{Contract: corpusContract, Passes: []string{"locklint"}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range report.Open() {
		if f.Pass == "allow" && f.File != "det/det.go" {
			t.Errorf("pass-subset run invented an annotation finding: %s", f.String())
		}
		if f.Pass != "allow" && f.Pass != "locklint" {
			t.Errorf("pass-subset run leaked a %s finding: %s", f.Pass, f.String())
		}
	}
	if got := report.Allowed["locklint"]; got != 1 {
		t.Errorf("allowed locklint census = %d, want 1", got)
	}
}

// TestRunAllRejectsUnknownPass covers the config error path.
func TestRunAllRejectsUnknownPass(t *testing.T) {
	m, err := Load("testdata/corpus")
	if err != nil {
		t.Fatalf("load corpus: %v", err)
	}
	if _, err := RunAll(m, Config{Contract: corpusContract, Passes: []string{"nope"}}); err == nil {
		t.Fatal("unknown pass accepted")
	}
}
