package analysis

import (
	"strings"
	"testing"
)

// loadShapes builds the call graph over the shapes corpus once per test.
func loadShapes(t *testing.T) *CallGraph {
	t.Helper()
	m, err := Load("testdata/shapes")
	if err != nil {
		t.Fatalf("load shapes: %v", err)
	}
	return BuildCallGraph(m)
}

// node is a fatal-on-missing NodeByName lookup.
func node(t *testing.T, g *CallGraph, name string) *FuncNode {
	t.Helper()
	n := g.NodeByName(name)
	if n == nil {
		t.Fatalf("call graph has no node %q", name)
	}
	return n
}

func TestCallGraphMutualRecursion(t *testing.T) {
	g := loadShapes(t)
	even := node(t, g, "shapes/s.Even")
	odd := node(t, g, "shapes/s.Odd")
	if !g.SameSCC(even, odd) {
		t.Error("Even and Odd are mutually recursive but landed in different SCCs")
	}
	reach := g.StaticReachableFrom(even)
	if _, ok := reach[odd]; !ok {
		t.Error("Odd not statically reachable from Even")
	}
	if chain, ok := reach[even]; !ok || len(chain) != 0 {
		t.Errorf("root chain = %v, want present and empty", chain)
	}
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	g := loadShapes(t)
	disp := node(t, g, "shapes/s.Dispatch")
	if len(disp.Calls) != 1 {
		t.Fatalf("Dispatch has %d call sites, want 1", len(disp.Calls))
	}
	cs := disp.Calls[0]
	if cs.Static != nil {
		t.Error("interface call resolved to a static target")
	}
	if !cs.Unknown {
		t.Error("interface call not marked Unknown (external implementers are always possible)")
	}
	want := map[string]bool{"shapes/s.(A).Run": false, "shapes/s.(*B).Run": false}
	for _, c := range cs.Candidates {
		if _, ok := want[c.Name]; ok {
			want[c.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("CHA candidates missing implementer %s (have %d candidates)", name, len(cs.Candidates))
		}
	}

	// The dynamic site fans out in ReachableFrom but not in the
	// static-only walk alloclint uses.
	if _, ok := g.ReachableFrom(disp)[node(t, g, "shapes/s.(A).Run")]; !ok {
		t.Error("ReachableFrom did not follow the interface candidates")
	}
	if _, ok := g.StaticReachableFrom(disp)[node(t, g, "shapes/s.(A).Run")]; ok {
		t.Error("StaticReachableFrom followed a dynamic edge")
	}
}

func TestCallGraphMethodValue(t *testing.T) {
	g := loadShapes(t)
	cv := node(t, g, "shapes/s.CallValue")
	if len(cv.Calls) != 1 {
		t.Fatalf("CallValue has %d call sites, want 1", len(cv.Calls))
	}
	cs := cv.Calls[0]
	if cs.Static != nil {
		t.Error("func-value call resolved to a static target")
	}
	found := false
	for _, c := range cs.Candidates {
		if c.Name == "shapes/s.(*Counter).Inc" {
			found = true
		}
	}
	if !found {
		t.Errorf("func() candidates missing the method value (*Counter).Inc; have %d candidates", len(cs.Candidates))
	}
}

func TestCallGraphGoLiteralCapture(t *testing.T) {
	g := loadShapes(t)
	sc := node(t, g, "shapes/s.SpawnCapture")
	var spawn *CallSite
	for _, cs := range sc.Calls {
		if cs.Go {
			spawn = cs
		}
	}
	if spawn == nil {
		t.Fatal("SpawnCapture's go statement produced no call site")
	}
	if spawn.Static == nil || spawn.Static.Lit == nil {
		t.Fatal("go func(){...}() did not resolve statically to the literal's node")
	}
	if !strings.Contains(spawn.Static.Name, "SpawnCapture.func@") {
		t.Errorf("literal node name = %q, want enclosing-scoped func@ name", spawn.Static.Name)
	}
	// The capture is charged to the enclosing function's summary.
	foundCapture := false
	for _, op := range sc.summary.allocOps {
		if strings.Contains(op.desc, "closure captures") {
			foundCapture = true
		}
	}
	if !foundCapture {
		t.Error("capturing literal not recorded as an allocation in the enclosing summary")
	}
}

func TestCallGraphGenericInstantiation(t *testing.T) {
	g := loadShapes(t)
	use := node(t, g, "shapes/s.UseMap")
	mp := node(t, g, "shapes/s.Map")
	if _, ok := g.StaticReachableFrom(use)[mp]; !ok {
		t.Error("Map[int] instantiation did not resolve to the generic's node via Origin")
	}
	// double is passed as a func value to Map's f parameter; Map's f(x)
	// call must list it as a candidate.
	var dyn *CallSite
	for _, cs := range mp.Calls {
		if cs.Static == nil && cs.External == nil {
			dyn = cs
		}
	}
	if dyn == nil {
		t.Fatal("Map has no dynamic call site for f(x)")
	}
	found := false
	for _, c := range dyn.Candidates {
		if c.Name == "shapes/s.double" {
			found = true
		}
	}
	if !found {
		t.Errorf("f(x) candidates missing address-taken double; have %d candidates", len(dyn.Candidates))
	}
}
