package dist_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"nda/internal/dist"
)

// faultRig is a FaultProxy in front of a trivial backend that counts the
// requests actually reaching it.
type faultRig struct {
	proxy   *dist.FaultProxy
	url     string
	reached *atomic.Int64
}

func newFaultRig(t *testing.T) *faultRig {
	t.Helper()
	var reached atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reached.Add(1)
		io.WriteString(w, "ok:"+r.URL.Path)
	}))
	t.Cleanup(backend.Close)
	proxy, err := dist.NewFaultProxy(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(proxy)
	t.Cleanup(front.Close)
	return &faultRig{proxy: proxy, url: front.URL, reached: &reached}
}

func (f *faultRig) get(t *testing.T) (int, string, error) {
	t.Helper()
	resp, err := http.Get(f.url + "/healthz")
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body), nil
}

// TestFaultProxyTransparent: with no faults armed the proxy forwards
// verbatim, path included.
func TestFaultProxyTransparent(t *testing.T) {
	f := newFaultRig(t)
	code, body, err := f.get(t)
	if err != nil || code != http.StatusOK || body != "ok:/healthz" {
		t.Fatalf("proxied GET = %d %q, %v", code, body, err)
	}
	if f.reached.Load() != 1 || f.proxy.Requests() != 1 || f.proxy.Faulted() != 0 {
		t.Errorf("counters: backend=%d requests=%d faulted=%d", f.reached.Load(), f.proxy.Requests(), f.proxy.Faulted())
	}
}

// TestFaultProxyFail: Fail(n) answers 500 exactly n times without touching
// the backend, then recovers.
func TestFaultProxyFail(t *testing.T) {
	f := newFaultRig(t)
	f.proxy.Fail(2)
	for i := 0; i < 2; i++ {
		code, _, err := f.get(t)
		if err != nil || code != http.StatusInternalServerError {
			t.Fatalf("fault %d: %d, %v; want injected 500", i, code, err)
		}
	}
	if f.reached.Load() != 0 {
		t.Errorf("injected 500s reached the backend %d times", f.reached.Load())
	}
	if code, _, err := f.get(t); err != nil || code != http.StatusOK {
		t.Fatalf("after Fail budget: %d, %v; want recovery", code, err)
	}
	if f.proxy.Faulted() != 2 {
		t.Errorf("Faulted = %d, want 2", f.proxy.Faulted())
	}
}

// TestFaultProxyDrop: Drop(n) aborts the connection so the client sees a
// transport error, not an HTTP status.
func TestFaultProxyDrop(t *testing.T) {
	f := newFaultRig(t)
	f.proxy.Drop(1)
	if _, _, err := f.get(t); err == nil {
		t.Fatal("dropped request produced a response; want a transport error")
	}
	if code, _, err := f.get(t); err != nil || code != http.StatusOK {
		t.Fatalf("after Drop budget: %d, %v; want recovery", code, err)
	}
}

// TestFaultProxyKillRevive: Kill aborts everything until Revive.
func TestFaultProxyKillRevive(t *testing.T) {
	f := newFaultRig(t)
	f.proxy.Kill()
	for i := 0; i < 3; i++ {
		if _, _, err := f.get(t); err == nil {
			t.Fatalf("request %d during Kill succeeded", i)
		}
	}
	f.proxy.Revive()
	if code, _, err := f.get(t); err != nil || code != http.StatusOK {
		t.Fatalf("after Revive: %d, %v", code, err)
	}
	if f.proxy.Faulted() != 3 {
		t.Errorf("Faulted = %d, want 3", f.proxy.Faulted())
	}
}

// TestFaultProxyDelay: Delay adds at least the configured latency.
func TestFaultProxyDelay(t *testing.T) {
	f := newFaultRig(t)
	f.proxy.Delay(50 * time.Millisecond)
	start := time.Now()
	if code, _, err := f.get(t); err != nil || code != http.StatusOK {
		t.Fatalf("delayed GET = %d, %v", code, err)
	}
	if took := time.Since(start); took < 50*time.Millisecond {
		t.Errorf("delayed request returned in %v, want >= 50ms", took)
	}
	f.proxy.Delay(0)
	start = time.Now()
	f.get(t)
	if took := time.Since(start); took > 40*time.Millisecond {
		t.Errorf("request after Delay(0) took %v; delay not removed", took)
	}
}
