package dist_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"nda/internal/serve"
	"nda/internal/store"
)

// TestFleetSharedStoreTier proves the fleet-wide tier end to end: one
// coordinator runs the 92-cell sweep through real workers and persists
// every cell into a shared store; a second coordinator — fresh process
// state, fresh RAM cache, different workers — serves the same sweep
// byte-identically from the shared store without dispatching a single
// cell. The store is deliberately never closed between the two
// (coordinator replicas crash; the tier must not care).
func TestFleetSharedStoreTier(t *testing.T) {
	want := goldenSweep(t)
	dir := t.TempDir()

	shared1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts1 := fleetOpts()
	opts1.SharedStore = shared1
	coord1, fleet1 := startCoordinator(t, opts1, startWorker(t), startWorker(t))

	code, body := post(t, coord1+"/v1/sweep", sweep92())
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	var st serve.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	st = waitJob(t, coord1, st.ID)
	if st.Tiers.Computed != 92 || st.Tiers.FleetShared != 0 {
		t.Fatalf("cold fleet pass tiers = %+v, want 92 computed", st.Tiers)
	}
	if hits, _, puts := fleet1.SharedStats(); hits != 0 || puts != 92 {
		t.Fatalf("cold pass shared stats: hits=%d puts=%d, want 0/92", hits, puts)
	}
	code, got := get(t, coord1+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("cold fleet sweep (code %d) differs from single-process run", code)
	}

	// A second coordinator replica over the same store directory. shared1
	// was never closed — every Put is already durable on its own.
	shared2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts2 := fleetOpts()
	opts2.SharedStore = shared2
	coord2, fleet2 := startCoordinator(t, opts2, startWorker(t))

	code, body = post(t, coord2+"/v1/sweep", sweep92())
	if code != http.StatusAccepted {
		t.Fatalf("replica submit = %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	st = waitJob(t, coord2, st.ID)

	if st.Tiers.FleetShared != 92 || st.Tiers.Computed != 0 {
		t.Errorf("replica tiers = %+v, want 92 fleet_shared / 0 computed", st.Tiers)
	}
	for _, ws := range fleet2.Stats() {
		if ws.Dispatched != 0 {
			t.Errorf("fleet-shared hit dispatched to %s anyway (%d attempts)", ws.Worker, ws.Dispatched)
		}
	}
	if hits, misses, _ := fleet2.SharedStats(); hits != 92 || misses != 0 {
		t.Errorf("replica shared stats: hits=%d misses=%d, want 92/0", hits, misses)
	}
	code, got = get(t, coord2+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("replica result = %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("shared-store replay differs from single-process run:\nreplay: %.200s\nlocal:  %.200s", got, want)
	}

	// The shared counters surface on the replica's /metrics.
	_, metrics := get(t, coord2+"/metrics")
	if !strings.Contains(string(metrics), "nda_dist_shared_hits_total 92") {
		t.Error("/metrics missing nda_dist_shared_hits_total 92")
	}
}
