package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"nda/internal/par"
)

// Coordinator shards cells over a fixed fleet of workers. It is safe for
// concurrent use: the sweep runners issue one Do per cell from their
// parallel pool, and the coordinator bounds what each worker sees.
type Coordinator struct {
	opts    Options
	workers []*worker
	rr      atomic.Int64 // round-robin cursor for tie-breaking picks

	// Fleet-shared tier counters (Options.SharedStore).
	sharedHits   atomic.Int64 // keyed cells served from the shared store, no dispatch
	sharedMisses atomic.Int64 // keyed cells the shared store did not hold
	sharedPuts   atomic.Int64 // completed cells written back to the shared store

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a coordinator over the given worker base URLs and starts its
// health-probe loop. At least one URL is required; each must be a valid
// absolute http/https URL (see ParseWorkerURL). Call Close when done.
func New(urls []string, opts Options) (*Coordinator, error) {
	if len(urls) < 1 {
		return nil, errors.New("dist: need at least one worker URL")
	}
	opts = opts.withDefaults()
	c := &Coordinator{opts: opts, stop: make(chan struct{})}
	seen := make(map[string]bool, len(urls))
	for _, raw := range urls {
		u, err := ParseWorkerURL(raw)
		if err != nil {
			return nil, err
		}
		if seen[u] {
			return nil, fmt.Errorf("dist: duplicate worker URL %q", u)
		}
		seen[u] = true
		w := &worker{url: u, sem: par.NewSem(opts.Window)}
		w.healthy.Store(true) // optimistic: the first probe or dispatch corrects it
		c.workers = append(c.workers, w)
	}
	c.wg.Add(1)
	go c.healthLoop()
	return c, nil
}

// Close stops the health loop. In-flight Do calls are unaffected.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// Workers lists the fleet's base URLs in registration order.
func (c *Coordinator) Workers() []string {
	out := make([]string, len(c.workers))
	for i, w := range c.workers {
		out[i] = w.url
	}
	return out
}

// Capacity is the fleet-wide in-flight window: workers x per-worker
// window. Callers size their dispatch pools to it so the fleet saturates.
func (c *Coordinator) Capacity() int {
	return len(c.workers) * c.opts.Window
}

// Attempt records one dispatch of a cell to one worker.
type Attempt struct {
	Worker string // base URL
	OK     bool   // answered 2xx
	Retry  bool   // re-dispatch of a previously failed cell
	Hedge  bool   // issued as a hedge against a straggler
}

// Stat summarizes how one cell was served: every attempt in completion
// order, and the worker whose response won. SharedHit marks a cell the
// fleet-shared store answered — no attempt was made and no worker touched.
type Stat struct {
	Worker    string
	SharedHit bool
	Attempts  []Attempt
}

// Do resolves one cell — an HTTP POST of body to path on some worker —
// and returns the winning response body. key is the cell's content
// address: when a shared store is configured and key is non-empty, the
// store is consulted first (a hit skips the fleet entirely) and a
// successfully dispatched cell's response is written back under key. An
// empty key bypasses the shared tier. Dispatch retries with exponential
// backoff and jitter across workers, hedges stragglers, and fails only
// after Options.Retries re-dispatches have been exhausted or ctx ends.
func (c *Coordinator) Do(ctx context.Context, path, key string, body []byte) ([]byte, Stat, error) {
	var stat Stat
	shared := c.opts.SharedStore
	if shared != nil && key != "" {
		if b, ok := shared.Get(key); ok {
			c.sharedHits.Add(1)
			stat.SharedHit = true
			return b, stat, nil
		}
		c.sharedMisses.Add(1)
	}
	backoff := c.opts.BaseBackoff
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			// Full jitter: sleep a uniform fraction of the backoff so
			// retries from many cells don't re-converge on one worker.
			//ndavet:allow detlint retry backoff jitter; affects scheduling only, merges stay byte-identical
			d := time.Duration(rand.Int63n(int64(backoff)) + 1)
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, stat, ctx.Err()
			}
			if backoff *= 2; backoff > c.opts.MaxBackoff {
				backoff = c.opts.MaxBackoff
			}
		}
		res, attempts, err := c.tryHedged(ctx, path, body, attempt > 0)
		stat.Attempts = append(stat.Attempts, attempts...)
		if err == nil {
			for _, a := range attempts {
				if a.OK {
					stat.Worker = a.Worker
				}
			}
			if shared != nil && key != "" {
				shared.Put(key, res)
				c.sharedPuts.Add(1)
			}
			return res, stat, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, stat, ctx.Err()
		}
	}
	return nil, stat, fmt.Errorf("dist: cell failed after %d attempts: %w", len(stat.Attempts), lastErr)
}

// tryHedged runs one dispatch round: a primary attempt, plus — if the
// primary is still in flight after HedgeAfter — one hedge on a different
// worker. The first success wins and cancels the other.
func (c *Coordinator) tryHedged(ctx context.Context, path string, body []byte, isRetry bool) ([]byte, []Attempt, error) {
	type reply struct {
		body []byte
		err  error
		w    *worker
		hdg  bool
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan reply, 2) // buffered: losers never block
	launch := func(w *worker, hedge bool) {
		w.dispatched.Add(1)
		if isRetry {
			w.retried.Add(1)
		}
		if hedge {
			w.hedged.Add(1)
		}
		go func() {
			b, err := c.post(rctx, w, path, body)
			ch <- reply{body: b, err: err, w: w, hdg: hedge}
		}()
	}

	primary := c.pick(nil)
	launch(primary, false)
	inFlight := 1

	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if c.opts.HedgeAfter > 0 && len(c.workers) > 1 {
		hedgeTimer = time.NewTimer(c.opts.HedgeAfter)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}

	var attempts []Attempt
	var firstErr error
	for inFlight > 0 {
		select {
		case r := <-ch:
			inFlight--
			attempts = append(attempts, Attempt{Worker: r.w.url, OK: r.err == nil, Retry: isRetry, Hedge: r.hdg})
			if r.err == nil {
				return r.body, attempts, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
		case <-hedgeC:
			hedgeC = nil
			if w := c.pick(primary); w != nil && w != primary {
				launch(w, true)
				inFlight++
			}
		case <-ctx.Done():
			// The buffered channel lets the in-flight goroutines finish
			// into it; rctx's cancel aborts their requests promptly.
			return nil, attempts, ctx.Err()
		}
	}
	return nil, attempts, firstErr
}

// pick chooses the dispatch target: the least-loaded healthy worker, with
// a rotating tie-break so equal loads spread evenly. If every worker is
// evicted it falls back to the full fleet — a fleet that is temporarily
// all-down recovers by retry rather than failing instantly — and it only
// returns exclude when there is no alternative.
func (c *Coordinator) pick(exclude *worker) *worker {
	offset := int(c.rr.Add(1))
	best := func(healthyOnly bool) *worker {
		var b *worker
		bLoad := 0
		for i := range c.workers {
			w := c.workers[(offset+i)%len(c.workers)]
			if w == exclude || (healthyOnly && !w.healthy.Load()) {
				continue
			}
			if load := w.sem.InUse(); b == nil || load < bLoad {
				b, bLoad = w, load
			}
		}
		return b
	}
	if w := best(true); w != nil {
		return w
	}
	if w := best(false); w != nil {
		return w
	}
	return exclude
}

// post sends one attempt to one worker, bounded by the worker's in-flight
// window and the per-attempt timeout. Any transport error or non-2xx
// status is a failed attempt (and counts toward eviction).
func (c *Coordinator) post(ctx context.Context, w *worker, path string, body []byte) ([]byte, error) {
	if err := w.sem.Acquire(ctx); err != nil {
		return nil, err
	}
	defer w.sem.Release()
	actx, cancel := context.WithTimeout(ctx, c.opts.CellTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, w.url+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		w.noteFailure(c.opts.EvictAfter)
		return nil, fmt.Errorf("dist: %s%s: %w", w.url, path, err)
	}
	//ndavet:allow errlint close of a fully read response body has nothing left to report
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, maxCellResponse))
	if err != nil {
		w.noteFailure(c.opts.EvictAfter)
		return nil, fmt.Errorf("dist: %s%s: reading response: %w", w.url, path, err)
	}
	if resp.StatusCode/100 != 2 {
		w.noteFailure(c.opts.EvictAfter)
		return nil, fmt.Errorf("dist: %s%s: %s: %s", w.url, path, resp.Status, truncate(out, 200))
	}
	w.noteSuccess()
	w.succeeded.Add(1)
	return out, nil
}

// maxCellResponse bounds one cell's response body; the largest cell (a
// full gadget report) is a few tens of KB.
const maxCellResponse = 16 << 20

func truncate(b []byte, n int) string {
	if len(b) > n {
		return string(b[:n]) + "..."
	}
	return string(b)
}

// healthLoop probes every worker's /healthz on a fixed period, feeding the
// same eviction/re-admission accounting the dispatch path uses: an evicted
// worker that recovers is re-admitted by its next successful probe without
// any dispatch having to risk it first.
func (c *Coordinator) healthLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			for _, w := range c.workers {
				c.probe(w)
			}
		}
	}
}

// probeTimeoutFloor is the minimum probe timeout, whatever the probe
// period. A dead worker fails its probe instantly (refused or aborted
// connection), so a short HealthEvery still detects death quickly; the
// floor only keeps a loaded-but-alive worker — slow to schedule the
// /healthz handler while its cores simulate — from being probe-evicted.
const probeTimeoutFloor = time.Second

func (c *Coordinator) probe(w *worker) {
	tmo := c.opts.HealthEvery
	if tmo < probeTimeoutFloor {
		tmo = probeTimeoutFloor
	}
	ctx, cancel := context.WithTimeout(context.Background(), tmo)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/healthz", nil)
	if err != nil {
		w.noteFailure(c.opts.EvictAfter)
		return
	}
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		w.noteFailure(c.opts.EvictAfter)
		return
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		w.noteFailure(c.opts.EvictAfter)
		return
	}
	w.noteSuccess()
}
