package dist

import (
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// FaultProxy is the in-process fault-injection harness: an http.Handler
// that fronts one worker and misbehaves on command. Tests mount it in an
// httptest.Server, register the proxy's URL with the coordinator instead
// of the worker's, and then prove that dropped connections, injected 500s,
// added latency, and a worker "killed" mid-sweep change wall-clock and
// retry counts but never the bytes of the merged result.
//
// Faults apply to every proxied request, /healthz included, so eviction
// and re-admission see exactly what a real sick worker would show them.
type FaultProxy struct {
	backend *url.URL
	client  *http.Client

	mu     sync.Mutex
	fail   int           // next n requests answer 500 without reaching the backend
	drop   int           // next n requests abort the connection mid-request
	delay  time.Duration // added latency before every proxied request
	killed bool          // all requests abort, as if the process were gone

	requests atomic.Int64 // every request seen, fault-injected or proxied
	faulted  atomic.Int64 // requests that were failed, dropped, or killed
}

// NewFaultProxy returns a proxy forwarding to the worker at backendURL.
func NewFaultProxy(backendURL string) (*FaultProxy, error) {
	base, err := ParseWorkerURL(backendURL)
	if err != nil {
		return nil, err
	}
	u, err := url.Parse(base)
	if err != nil {
		return nil, err
	}
	return &FaultProxy{backend: u, client: &http.Client{}}, nil
}

// Fail makes the next n requests answer 500 without reaching the backend.
func (p *FaultProxy) Fail(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fail = n
}

// Drop makes the next n requests abort their connection mid-request — the
// client sees a transport error, as when a process dies with the request
// in flight.
func (p *FaultProxy) Drop(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.drop = n
}

// Delay adds fixed latency before every proxied request (0 removes it).
func (p *FaultProxy) Delay(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.delay = d
}

// Kill makes every request abort its connection until Revive — the worker
// is dead as far as the fleet can tell.
func (p *FaultProxy) Kill() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.killed = true
}

// Revive undoes Kill.
func (p *FaultProxy) Revive() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.killed = false
}

// Requests reports how many requests the proxy has seen.
func (p *FaultProxy) Requests() int64 { return p.requests.Load() }

// Faulted reports how many requests were failed, dropped, or killed.
func (p *FaultProxy) Faulted() int64 { return p.faulted.Load() }

// next decides the fate of one request under the current fault settings.
func (p *FaultProxy) next() (verdict string, delay time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch {
	case p.killed:
		return "kill", 0
	case p.drop > 0:
		p.drop--
		return "drop", p.delay
	case p.fail > 0:
		p.fail--
		return "fail", p.delay
	default:
		return "proxy", p.delay
	}
}

func (p *FaultProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.requests.Add(1)
	verdict, delay := p.next()
	if delay > 0 && verdict != "kill" {
		select {
		case <-time.After(delay):
		case <-r.Context().Done():
			return
		}
	}
	switch verdict {
	case "kill", "drop":
		p.faulted.Add(1)
		// ErrAbortHandler resets the connection: the client sees a
		// transport error, not an HTTP status.
		panic(http.ErrAbortHandler)
	case "fail":
		p.faulted.Add(1)
		http.Error(w, `{"error":"injected fault"}`, http.StatusInternalServerError)
		return
	}

	out := *r.URL
	out.Scheme = p.backend.Scheme
	out.Host = p.backend.Host
	req, err := http.NewRequestWithContext(r.Context(), r.Method, out.String(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	//ndavet:allow errlint close of a fully proxied response body has nothing left to report
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	// A copy error here means the client hung up mid-stream; the status
	// line is already on the wire, so there is no one left to tell.
	_, _ = io.Copy(w, resp.Body)
}
