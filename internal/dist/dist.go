// Package dist scales the sweep engine across a fleet of machines: a
// coordinator shards a job's independent cells over N remote ndaserve
// workers and merges the results byte-identically to a local run.
//
// The unit of distribution is the same unit the local engine and the
// result cache already use — one (workload, policy, sampling) sweep cell,
// one (attack, policy) matrix cell, one program's gadget census — shipped
// to a worker as a POST /v1/cell request and returned as the cell's
// canonical JSON. Because a cell's result is a pure function of its
// request, and because the caller assembles cells into the final table in
// request order (internal/par's index-addressed contract), the merged
// output is bit-identical no matter how many workers served it, which
// worker served each cell, or how many retries and hedges it took.
//
// The coordinator owns the real-world failure modes so the caller never
// sees them:
//
//   - bounded in-flight windows per worker (Options.Window), so a slow
//     worker queues instead of being buried;
//   - per-attempt timeouts with retry, exponential backoff, and jitter;
//   - health probing with eviction after consecutive failures and
//     re-admission when /healthz recovers;
//   - hedged dispatch for straggler cells: after Options.HedgeAfter the
//     cell is issued to a second worker and the first response wins.
//
// A worker killed mid-sweep therefore costs wall-clock, never bytes: its
// in-flight cells fail, retry on surviving workers, and land in the same
// index-addressed slots.
package dist

import (
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"nda/internal/par"
)

// Defaults for the zero Options fields.
const (
	DefaultWindow      = 4
	DefaultCellTimeout = 2 * time.Minute
	DefaultRetries     = 3
	DefaultBaseBackoff = 50 * time.Millisecond
	DefaultMaxBackoff  = 2 * time.Second
	DefaultHealthEvery = 2 * time.Second
	DefaultEvictAfter  = 3
)

// SharedStore is a fleet-wide result tier the coordinator consults before
// dispatching a cell and writes back after one completes — in practice the
// persistent store (internal/store) on storage every coordinator replica
// can reach. Both methods are best-effort: a miss or a failed write only
// costs a dispatch, never correctness, because values are content-addressed
// by the same keys the result cache uses.
type SharedStore interface {
	Get(key string) ([]byte, bool)
	Put(key string, val []byte)
}

// Options tunes the coordinator. The zero value of each field selects the
// matching Default constant; HedgeAfter <= 0 disables hedging.
type Options struct {
	// Window caps in-flight cells per worker.
	Window int
	// CellTimeout bounds one dispatch attempt of one cell.
	CellTimeout time.Duration
	// Retries is how many times a failed cell is re-dispatched after its
	// first attempt before the job fails.
	Retries int
	// BaseBackoff and MaxBackoff shape the exponential backoff (with
	// jitter) between a cell's attempts.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// HedgeAfter issues a straggling cell to a second worker after this
	// long; the first response wins. <= 0 disables hedging.
	HedgeAfter time.Duration
	// HealthEvery is the period of the background /healthz probe.
	HealthEvery time.Duration
	// EvictAfter is how many consecutive failures (dispatch or probe)
	// evict a worker from the rotation.
	EvictAfter int
	// Client is the HTTP client used for dispatch and probing; nil means
	// a dedicated client with sane connection reuse.
	Client *http.Client
	// SharedStore, when non-nil, is the fleet-shared result tier: Do
	// serves keyed cells straight from it when they are present (no worker
	// is touched) and persists completed cells back into it. nil disables
	// the tier.
	SharedStore SharedStore
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.CellTimeout <= 0 {
		o.CellTimeout = DefaultCellTimeout
	}
	if o.Retries < 0 {
		o.Retries = DefaultRetries
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = DefaultBaseBackoff
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = DefaultMaxBackoff
	}
	if o.HealthEvery <= 0 {
		o.HealthEvery = DefaultHealthEvery
	}
	if o.EvictAfter <= 0 {
		o.EvictAfter = DefaultEvictAfter
	}
	if o.Client == nil {
		o.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 2 * o.Window,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return o
}

// worker is one remote ndaserve endpoint and its dispatch state.
type worker struct {
	url string   // base URL, no trailing slash
	sem *par.Sem // bounded in-flight window

	healthy     atomic.Bool
	consecFails atomic.Int64

	// Lifetime counters, exported per worker on /metrics.
	dispatched atomic.Int64 // attempts sent (including retries and hedges)
	succeeded  atomic.Int64 // attempts answered 2xx
	retried    atomic.Int64 // attempts that were retries of a failed cell
	hedged     atomic.Int64 // attempts issued as hedges against a straggler
	evicted    atomic.Int64 // transitions healthy -> evicted
	readmitted atomic.Int64 // transitions evicted -> healthy
}

// noteFailure records one failed attempt or probe; the worker is evicted
// after EvictAfter consecutive failures.
func (w *worker) noteFailure(evictAfter int) {
	if w.consecFails.Add(1) >= int64(evictAfter) && w.healthy.CompareAndSwap(true, false) {
		w.evicted.Add(1)
	}
}

// noteSuccess records one successful attempt or probe, re-admitting an
// evicted worker.
func (w *worker) noteSuccess() {
	w.consecFails.Store(0)
	if w.healthy.CompareAndSwap(false, true) {
		w.readmitted.Add(1)
	}
}

// ParseWorkerURL validates one worker base URL: absolute http/https with a
// host and no query/fragment. The returned form has no trailing slash.
func ParseWorkerURL(raw string) (string, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return "", errors.New("dist: empty worker URL")
	}
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("dist: worker URL %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("dist: worker URL %q: scheme must be http or https", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("dist: worker URL %q: missing host", raw)
	}
	if u.RawQuery != "" || u.Fragment != "" {
		return "", fmt.Errorf("dist: worker URL %q: must not carry a query or fragment", raw)
	}
	return strings.TrimRight(u.String(), "/"), nil
}
