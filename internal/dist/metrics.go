package dist

import (
	"fmt"
	"strings"
)

// WorkerStats is a point-in-time snapshot of one worker's fleet counters.
type WorkerStats struct {
	Worker     string `json:"worker"`
	Healthy    bool   `json:"healthy"`
	InFlight   int    `json:"in_flight"`
	Dispatched int64  `json:"dispatched"`
	Succeeded  int64  `json:"succeeded"`
	Retried    int64  `json:"retried"`
	Hedged     int64  `json:"hedged"`
	Evicted    int64  `json:"evicted"`
	Readmitted int64  `json:"readmitted"`
}

// Stats snapshots every worker in registration order.
func (c *Coordinator) Stats() []WorkerStats {
	out := make([]WorkerStats, len(c.workers))
	for i, w := range c.workers {
		out[i] = WorkerStats{
			Worker:     w.url,
			Healthy:    w.healthy.Load(),
			InFlight:   w.sem.InUse(),
			Dispatched: w.dispatched.Load(),
			Succeeded:  w.succeeded.Load(),
			Retried:    w.retried.Load(),
			Hedged:     w.hedged.Load(),
			Evicted:    w.evicted.Load(),
			Readmitted: w.readmitted.Load(),
		}
	}
	return out
}

// SharedStats snapshots the fleet-shared tier's counters: cells served
// without a dispatch, cells the store lacked, and cells written back.
func (c *Coordinator) SharedStats() (hits, misses, puts int64) {
	return c.sharedHits.Load(), c.sharedMisses.Load(), c.sharedPuts.Load()
}

// RenderMetrics emits the fleet counters in the Prometheus text exposition
// format, one labelled series per worker; ndaserve appends it to the
// service's own /metrics block when running as a coordinator.
func (c *Coordinator) RenderMetrics() string {
	stats := c.Stats()
	var b strings.Builder
	if c.opts.SharedStore != nil {
		hits, misses, puts := c.SharedStats()
		for _, s := range []struct {
			name, help string
			v          int64
		}{
			{"nda_dist_shared_hits_total", "cells served from the fleet-shared store without dispatching", hits},
			{"nda_dist_shared_misses_total", "cells the fleet-shared store did not hold", misses},
			{"nda_dist_shared_puts_total", "completed cells written back to the fleet-shared store", puts},
		} {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", s.name, s.help, s.name, s.name, s.v)
		}
	}
	series := func(name, help, typ string, value func(WorkerStats) string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, s := range stats {
			fmt.Fprintf(&b, "%s{worker=%q} %s\n", name, s.Worker, value(s))
		}
	}
	counter := func(name, help string, get func(WorkerStats) int64) {
		series(name, help, "counter", func(s WorkerStats) string { return fmt.Sprint(get(s)) })
	}
	counter("nda_dist_dispatched_total", "cell attempts dispatched to this worker", func(s WorkerStats) int64 { return s.Dispatched })
	counter("nda_dist_succeeded_total", "cell attempts this worker answered successfully", func(s WorkerStats) int64 { return s.Succeeded })
	counter("nda_dist_retried_total", "retry attempts dispatched to this worker", func(s WorkerStats) int64 { return s.Retried })
	counter("nda_dist_hedged_total", "hedge attempts dispatched to this worker", func(s WorkerStats) int64 { return s.Hedged })
	counter("nda_dist_evicted_total", "times this worker was evicted from the rotation", func(s WorkerStats) int64 { return s.Evicted })
	counter("nda_dist_readmitted_total", "times this worker was re-admitted after eviction", func(s WorkerStats) int64 { return s.Readmitted })
	series("nda_dist_inflight", "cells currently in flight to this worker (queue depth)", "gauge",
		func(s WorkerStats) string { return fmt.Sprint(s.InFlight) })
	series("nda_dist_healthy", "1 if the worker is in the dispatch rotation", "gauge", func(s WorkerStats) string {
		if s.Healthy {
			return "1"
		}
		return "0"
	})
	return b.String()
}
