// Package dist_test proves the fleet's headline guarantee end to end: a
// sweep sharded over real ndaserve workers — healthy, flaky, or killed
// mid-run — merges to the exact bytes a single-process run produces.
// Workers are real serve.Managers behind httptest servers; faults are
// injected with dist.FaultProxy sitting between coordinator and worker.
package dist_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nda/internal/core"
	"nda/internal/dist"
	"nda/internal/harness"
	"nda/internal/serve"
)

// tinySampling mirrors the serve e2e tests' reduced methodology: small
// enough that a 92-cell sweep finishes in seconds even under -race, large
// enough to exercise warmup, intervals, and skip phases.
func tinySampling() serve.SamplingSpec {
	return serve.SamplingSpec{
		Quick:        true,
		WarmInsts:    2_000,
		MeasureInsts: 2_000,
		SkipInsts:    1_000,
		Intervals:    3,
	}
}

// sweep92 is the acceptance sweep: all 23 SPEC proxies under three
// policies plus the in-order bound — 23 x 4 = 92 cells.
func sweep92() serve.SweepRequest {
	var pols []string
	for _, p := range core.All()[:3] {
		pols = append(pols, p.Name)
	}
	return serve.SweepRequest{Policies: pols, Sampling: tinySampling()}
}

// startWorker runs a simulating ndaserve in-process and returns its URL.
func startWorker(t *testing.T) string {
	t.Helper()
	m := serve.NewManager(serve.Config{JobWorkers: 1, SimWorkers: 2})
	srv := httptest.NewServer(serve.NewHandler(m))
	t.Cleanup(func() {
		srv.Close()
		shutdown(t, m)
	})
	return srv.URL
}

func shutdown(t *testing.T, m *serve.Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Errorf("manager shutdown: %v", err)
	}
}

// startCoordinator runs a coordinator-mode manager over the given worker
// URLs and returns its HTTP base URL plus the fleet for stats assertions.
func startCoordinator(t *testing.T, opts dist.Options, urls ...string) (string, *dist.Coordinator) {
	t.Helper()
	fleet, err := dist.New(urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	m := serve.NewManager(serve.Config{JobWorkers: 2, Fleet: fleet})
	srv := httptest.NewServer(serve.NewHandler(m))
	t.Cleanup(func() {
		srv.Close()
		shutdown(t, m)
		fleet.Close()
	})
	return srv.URL, fleet
}

// post submits a request body and returns status and response bytes.
func post(t *testing.T, url string, req any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// golden computes a result once per process on a private single-process
// manager; every fleet test diffs its merged bytes against this.
var golden struct {
	once  sync.Once
	sweep []byte
}

func goldenSweep(t *testing.T) []byte {
	t.Helper()
	golden.once.Do(func() {
		m := serve.NewManager(serve.Config{JobWorkers: 1})
		defer func() { shutdown(t, m) }()
		srv := httptest.NewServer(serve.NewHandler(m))
		defer srv.Close()
		code, body := post(t, srv.URL+"/v1/sweep?wait=1", sweep92())
		if code != http.StatusOK {
			t.Fatalf("golden sweep = %d: %s", code, body)
		}
		golden.sweep = body
	})
	if golden.sweep == nil {
		t.Fatal("golden sweep unavailable (earlier failure)")
	}
	return golden.sweep
}

// fleetOpts is the baseline test tuning: generous per-attempt timeout (no
// accidental timeouts under -race), fast retries, no hedging unless a test
// asks for it.
func fleetOpts() dist.Options {
	return dist.Options{
		Window:      4,
		CellTimeout: 30 * time.Second,
		Retries:     5,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		HealthEvery: 50 * time.Millisecond,
		EvictAfter:  2,
	}
}

// TestFleetSweepByteIdentical: the headline acceptance test. The 92-cell
// sweep sharded over two healthy workers merges byte-identically to the
// single-process run, both workers actually serve cells, and the job's
// per-worker progress breakdown accounts for every cell.
func TestFleetSweepByteIdentical(t *testing.T) {
	want := goldenSweep(t)
	w1, w2 := startWorker(t), startWorker(t)
	coord, fleet := startCoordinator(t, fleetOpts(), w1, w2)

	// Submit async so the per-worker breakdown is observable on the job.
	code, body := post(t, coord+"/v1/sweep", sweep92())
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	var st serve.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	st = waitJob(t, coord, st.ID)
	if st.TotalCells != 92 {
		t.Fatalf("sweep has %d cells, want 92", st.TotalCells)
	}

	code, got := get(t, coord+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result = %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet-merged sweep differs from single-process run:\nfleet: %.200s\nlocal: %.200s", got, want)
	}

	// Satellite: per-worker cell counts on the job status.
	if len(st.Workers) != 2 {
		t.Fatalf("job reports %d workers, want 2: %+v", len(st.Workers), st.Workers)
	}
	var done int64
	for _, wc := range st.Workers {
		if wc.Done == 0 {
			t.Errorf("worker %s served no cells; sharding is lopsided", wc.Worker)
		}
		if wc.Dispatched < wc.Done {
			t.Errorf("worker %s: dispatched %d < done %d", wc.Worker, wc.Dispatched, wc.Done)
		}
		done += wc.Done
	}
	if done != 92 {
		t.Errorf("per-worker done cells sum to %d, want 92", done)
	}
	for _, ws := range fleet.Stats() {
		if ws.Dispatched == 0 {
			t.Errorf("fleet stats: worker %s was never dispatched to", ws.Worker)
		}
	}
}

// waitJob polls the job endpoint until the job is terminal.
func waitJob(t *testing.T, base, id string) serve.Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		code, body := get(t, base+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("job poll = %d: %s", code, body)
		}
		var st serve.Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case serve.JobDone:
			return st
		case serve.JobFailed, serve.JobCancelled:
			t.Fatalf("job %s reached %s: %s", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %d/%d cells", id, st.DoneCells, st.TotalCells)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFleetWorkerKilledMidSweep: one of two workers dies (connections
// abort, health probes included) once the sweep is underway. The fleet
// evicts it, retries its cells on the survivor, and still merges the
// exact single-process bytes.
func TestFleetWorkerKilledMidSweep(t *testing.T) {
	want := goldenSweep(t)
	w1, w2 := startWorker(t), startWorker(t)
	proxy, err := dist.NewFaultProxy(w2)
	if err != nil {
		t.Fatal(err)
	}
	psrv := httptest.NewServer(proxy)
	defer psrv.Close()
	coord, fleet := startCoordinator(t, fleetOpts(), w1, psrv.URL)

	code, body := post(t, coord+"/v1/sweep", sweep92())
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	var st serve.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	// Let the doomed worker serve part of the sweep, then kill it with
	// cells still outstanding.
	killDeadline := time.Now().Add(time.Minute)
	for proxy.Requests() < 8 {
		if time.Now().After(killDeadline) {
			t.Fatalf("proxy saw only %d requests; sweep never ramped up", proxy.Requests())
		}
		time.Sleep(time.Millisecond)
	}
	proxy.Kill()

	st = waitJob(t, coord, st.ID)
	code, got := get(t, coord+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result = %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("sweep with a worker killed mid-run is not byte-identical to the single-process run")
	}

	var retried, evicted int64
	for _, ws := range fleet.Stats() {
		retried += ws.Retried
		evicted += ws.Evicted
	}
	if retried == 0 {
		t.Error("killing a worker mid-sweep caused no retries; the kill landed too late to test anything")
	}
	if evicted == 0 {
		t.Error("dead worker was never evicted from the rotation")
	}
	var done int64
	for _, wc := range st.Workers {
		done += wc.Done
	}
	if done != 92 {
		t.Errorf("per-worker done cells sum to %d, want 92", done)
	}
}

// TestFleetFlakyWorker: injected 500s, dropped connections, and added
// latency on one worker are absorbed by retries — same bytes, retry
// counters prove the faults actually fired.
func TestFleetFlakyWorker(t *testing.T) {
	want := goldenSweep(t)
	w1, w2 := startWorker(t), startWorker(t)
	proxy, err := dist.NewFaultProxy(w2)
	if err != nil {
		t.Fatal(err)
	}
	psrv := httptest.NewServer(proxy)
	defer psrv.Close()

	opts := fleetOpts()
	opts.HealthEvery = time.Hour // keep probes out of the Fail/Drop budgets
	opts.EvictAfter = 100        // recovery by retry alone, not eviction
	coord, fleet := startCoordinator(t, opts, w1, psrv.URL)

	proxy.Fail(3)
	proxy.Drop(2)
	proxy.Delay(2 * time.Millisecond)

	code, got := post(t, coord+"/v1/sweep?wait=1", sweep92())
	if code != http.StatusOK {
		t.Fatalf("sweep = %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("sweep through a flaky worker is not byte-identical to the single-process run")
	}
	if proxy.Faulted() < 5 {
		t.Errorf("proxy injected %d faults, want 5 (3 x 500 + 2 drops)", proxy.Faulted())
	}
	var retried int64
	for _, ws := range fleet.Stats() {
		retried += ws.Retried
	}
	if retried == 0 {
		t.Error("injected faults caused no retries")
	}
}

// TestFleetHedging: when every worker is slow, the straggler hedge fires
// and the cell still resolves correctly to the first response.
func TestFleetHedging(t *testing.T) {
	var proxies []*dist.FaultProxy
	var urls []string
	for i := 0; i < 2; i++ {
		p, err := dist.NewFaultProxy(startWorker(t))
		if err != nil {
			t.Fatal(err)
		}
		p.Delay(150 * time.Millisecond)
		srv := httptest.NewServer(p)
		defer srv.Close()
		proxies = append(proxies, p)
		urls = append(urls, srv.URL)
	}
	opts := fleetOpts()
	opts.HedgeAfter = 20 * time.Millisecond
	opts.HealthEvery = time.Hour
	fleet, err := dist.New(urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	req, _ := json.Marshal(serve.CellRequest{
		Kind: "sweep", Workload: "exchange2", InOrder: true, Sampling: tinySampling(),
	})
	raw, stat, err := fleet.Do(context.Background(), "/v1/cell", "", req)
	if err != nil {
		t.Fatal(err)
	}
	var m harness.Measurement
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("hedged cell response undecodable: %v", err)
	}
	var hedged int64
	for _, ws := range fleet.Stats() {
		hedged += ws.Hedged
	}
	if hedged == 0 {
		t.Errorf("no hedge fired for a 150ms cell with a 20ms hedge trigger; attempts: %+v", stat.Attempts)
	}
}

// TestEvictionAndReadmission: a killed worker leaves the rotation after
// consecutive health-probe failures and rejoins once revived.
func TestEvictionAndReadmission(t *testing.T) {
	proxy, err := dist.NewFaultProxy(startWorker(t))
	if err != nil {
		t.Fatal(err)
	}
	psrv := httptest.NewServer(proxy)
	defer psrv.Close()

	opts := fleetOpts()
	opts.HealthEvery = 10 * time.Millisecond
	fleet, err := dist.New([]string{psrv.URL}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	waitHealthy := func(want bool, phase string) dist.WorkerStats {
		deadline := time.Now().Add(10 * time.Second)
		for {
			ws := fleet.Stats()[0]
			if ws.Healthy == want {
				return ws
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: worker health stuck at %v, want %v (%+v)", phase, ws.Healthy, want, ws)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	waitHealthy(true, "startup")
	proxy.Kill()
	ws := waitHealthy(false, "after kill")
	if ws.Evicted == 0 {
		t.Error("worker marked unhealthy but eviction counter is 0")
	}
	proxy.Revive()
	ws = waitHealthy(true, "after revive")
	if ws.Readmitted == 0 {
		t.Error("worker re-admitted but readmission counter is 0")
	}

	// The readmitted worker serves again.
	req, _ := json.Marshal(serve.CellRequest{Kind: "gadget", Program: "meltdown"})
	if _, _, err := fleet.Do(context.Background(), "/v1/cell", "", req); err != nil {
		t.Fatalf("cell after readmission: %v", err)
	}
}

// TestFleetAttackAndGadgets: the other two cell kinds round-trip through
// the fleet byte-identically too.
func TestFleetAttackAndGadgets(t *testing.T) {
	local := startWorker(t)
	w1, w2 := startWorker(t), startWorker(t)
	coord, _ := startCoordinator(t, fleetOpts(), w1, w2)

	attackReq := serve.AttackRequest{Attacks: []string{"spectre-v1-cache"}, Policies: []string{"OoO", "Permissive"}}
	gadgetReq := serve.GadgetsRequest{Programs: []string{"meltdown", "gcc"}}
	for _, c := range []struct {
		path string
		req  any
	}{
		{"/v1/attack?wait=1", attackReq},
		{"/v1/gadgets?wait=1", gadgetReq},
	} {
		code, want := post(t, local+c.path, c.req)
		if code != http.StatusOK {
			t.Fatalf("local %s = %d: %s", c.path, code, want)
		}
		code, got := post(t, coord+c.path, c.req)
		if code != http.StatusOK {
			t.Fatalf("fleet %s = %d: %s", c.path, code, got)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("fleet %s differs from single-process run", c.path)
		}
	}
}

// TestFleetMetricsExposed: a coordinator's /metrics carries the per-worker
// fleet series alongside the service's own counters.
func TestFleetMetricsExposed(t *testing.T) {
	w1 := startWorker(t)
	coord, _ := startCoordinator(t, fleetOpts(), w1)
	code, got := post(t, coord+"/v1/gadgets?wait=1", serve.GadgetsRequest{Programs: []string{"meltdown"}})
	if code != http.StatusOK {
		t.Fatalf("gadgets = %d: %s", code, got)
	}
	code, body := get(t, coord+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	text := string(body)
	for _, series := range []string{
		"nda_dist_dispatched_total", "nda_dist_succeeded_total", "nda_dist_retried_total",
		"nda_dist_hedged_total", "nda_dist_evicted_total", "nda_dist_readmitted_total",
		"nda_dist_inflight", "nda_dist_healthy",
	} {
		if !strings.Contains(text, series+`{worker="`+w1+`"}`) {
			t.Errorf("metrics missing per-worker series %s", series)
		}
	}
	if !strings.Contains(text, fmt.Sprintf("nda_dist_dispatched_total{worker=%q} 1", w1)) {
		t.Errorf("dispatched counter not 1 after one cold cell:\n%s", text)
	}
}

// TestCoordinatorValidation: New refuses empty and duplicate fleets, and
// ParseWorkerURL normalizes trailing slashes.
func TestCoordinatorValidation(t *testing.T) {
	if _, err := dist.New(nil, dist.Options{}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := dist.New([]string{"http://a:1", "http://a:1/"}, dist.Options{}); err == nil {
		t.Error("duplicate fleet (modulo trailing slash) accepted")
	}
	u, err := dist.ParseWorkerURL("http://a:1/")
	if err != nil || u != "http://a:1" {
		t.Errorf("ParseWorkerURL trailing slash = %q, %v", u, err)
	}
}
