package tenant

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseListFull(t *testing.T) {
	ts, err := ParseList("alice:ka:4:2.5:5:3, bob:kb")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("got %d tenants, want 2", len(ts))
	}
	a := ts[0]
	if a.Name != "alice" || a.Key != "ka" || a.Weight != 4 || a.Rate != 2.5 || a.Burst != 5 || a.MaxInFlight != 3 {
		t.Fatalf("alice parsed wrong: %+v", a)
	}
	b := ts[1]
	if b.Name != "bob" || b.Key != "kb" || b.Weight != 1 || b.Rate != 0 || b.MaxInFlight != 0 {
		t.Fatalf("bob defaults wrong: %+v", b)
	}
}

func TestParseListEmptyFieldsKeepDefaults(t *testing.T) {
	ts, err := ParseList("alice:ka::10")
	if err != nil {
		t.Fatal(err)
	}
	a := ts[0]
	if a.Weight != 1 || a.Rate != 10 {
		t.Fatalf("got weight=%d rate=%g, want weight=1 rate=10", a.Weight, a.Rate)
	}
	// Burst defaults to max(1, Rate).
	if a.Burst != 10 {
		t.Fatalf("got burst=%g, want 10", a.Burst)
	}
}

func TestParseListEmptyStringIsNoTenants(t *testing.T) {
	ts, err := ParseList("  ")
	if err != nil || ts != nil {
		t.Fatalf("got %v, %v; want nil, nil", ts, err)
	}
}

func TestParseListRejections(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"alice", "want name:key"},
		{"alice:ka:x", "bad weight"},
		{"alice:ka:0:-1", "rate -1 invalid"},
		{"alice:ka:1:1:0:-2", "max in-flight -2 invalid"},
		{"alice:ka:1001", "weight 1001 invalid"},
		{":ka", "empty tenant name"},
		{"alice:", "empty API key"},
		{"local:ka", "reserved"},
		{"alice:ka,alice:kb", "duplicate tenant name"},
		{"alice:ka,bob:ka", "duplicate API key"},
		{",,", "no tenant entries"},
	}
	for _, c := range cases {
		_, err := ParseList(c.in)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseList(%q) = %v, want error containing %q", c.in, err, c.want)
		}
	}
}

func TestParseClass(t *testing.T) {
	for in, want := range map[string]Class{"": Batch, "interactive": Interactive, "batch": Batch, "warm": Warm} {
		got, err := ParseClass(in)
		if err != nil || got != want {
			t.Errorf("ParseClass(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseClass("bulk"); err == nil {
		t.Error("ParseClass(bulk) accepted")
	}
}

func TestBucketAdmitAndRetryAfter(t *testing.T) {
	s := NewScheduler([]Tenant{{Name: "a", Key: "k", Rate: 2, Burst: 2}}, 8)
	t0 := time.Unix(1000, 0)
	// A fresh bucket starts full: burst of 2 admits twice.
	for i := 0; i < 2; i++ {
		if err := s.Admit("a", t0); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	err := s.Admit("a", t0)
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("got %v, want QuotaError", err)
	}
	// Empty bucket at rate 2/s: a full token takes 500ms.
	if qe.Tenant != "a" || qe.RetryAfter != 500*time.Millisecond {
		t.Fatalf("got %+v, want tenant a, retry 500ms", qe)
	}
	// After the advertised wait the token is there.
	if err := s.Admit("a", t0.Add(qe.RetryAfter)); err != nil {
		t.Fatalf("admit after retry-after: %v", err)
	}
	// Refill is capped at burst: a long sleep doesn't bank unlimited tokens.
	t1 := t0.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if err := s.Admit("a", t1); err != nil {
			t.Fatalf("post-idle admit %d: %v", i, err)
		}
	}
	if err := s.Admit("a", t1); err == nil {
		t.Fatal("burst cap not enforced after idle refill")
	}
}

func TestAdmitUnlimitedAndUnknown(t *testing.T) {
	s := NewScheduler([]Tenant{{Name: "a", Key: "k"}}, 4)
	now := time.Unix(0, 0)
	for i := 0; i < 100; i++ {
		if err := s.Admit("a", now); err != nil {
			t.Fatalf("unlimited tenant rejected: %v", err)
		}
	}
	if err := s.Admit("ghost", now); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("got %v, want ErrUnknownTenant", err)
	}
	if err := s.Admit(LocalName, now); err != nil {
		t.Fatalf("local tenant rejected: %v", err)
	}
}

func TestQuotaErrorMessage(t *testing.T) {
	e := &QuotaError{Tenant: "a", RetryAfter: time.Second}
	if !strings.Contains(e.Error(), "a") || !strings.Contains(e.Error(), "1s") {
		t.Fatalf("unhelpful error: %q", e.Error())
	}
}

// TestBurstBelowOneClampsToOne: bucket.take caps tokens at the burst
// depth, so a configured depth in (0,1) would reject every submission
// forever while advertising Retry-After times that never help. normalize
// clamps such depths to one token, and the advertised retry then works.
func TestBurstBelowOneClampsToOne(t *testing.T) {
	ts, err := ParseList("alice:ka:1:2:0.25")
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].Burst != 1 {
		t.Fatalf("burst 0.25 normalized to %g, want clamp to 1", ts[0].Burst)
	}
	// The same clamp applies to the defaulted depth at sub-1 rates.
	ts, err = ParseList("bob:kb:1:0.5")
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].Burst != 1 {
		t.Fatalf("defaulted burst at rate 0.5 = %g, want 1", ts[0].Burst)
	}

	s := NewScheduler([]Tenant{{Name: "a", Key: "k", Rate: 2, Burst: 0.5}}, 8)
	t0 := time.Unix(1000, 0)
	if err := s.Admit("a", t0); err != nil {
		t.Fatalf("first admit with clamped burst: %v", err)
	}
	err = s.Admit("a", t0)
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("got %v, want QuotaError", err)
	}
	if err := s.Admit("a", t0.Add(qe.RetryAfter)); err != nil {
		t.Fatalf("admit at the advertised retry time: %v", err)
	}
}
