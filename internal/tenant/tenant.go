// Package tenant gives the serving layer a multi-tenancy story: API-key
// tenants with token-bucket admission quotas, per-tenant in-flight caps,
// and a deterministic weighted fair-share scheduler with priority classes
// that replaces the job queue's FIFO order.
//
// The package is pure policy: it never reads the wall clock (callers pass
// `now` explicitly, so quota arithmetic is testable and detlint-clean),
// owns no goroutines, and takes no locks — the serving layer serializes
// access under its own mutex. Scheduling state is all integer stride
// arithmetic, so the dispatch order for a given arrival sequence is a
// deterministic function of the configured weights, never of timing.
package tenant

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// LocalName is the implicit tenant every scheduler carries: untenanted
// submissions (single-tenant deployments, -warm-from boot jobs, in-process
// tests) are accounted against it. It has weight 1, no API key, no rate
// quota, and no in-flight cap, so a scheduler with no configured tenants
// degenerates to the plain FIFO queue the service always had.
const LocalName = "local"

// Sentinel errors the serving layer maps onto HTTP statuses.
var (
	// ErrQueueFull is the global backpressure signal: the bounded queue
	// has no free slot for any tenant (429).
	ErrQueueFull = errors.New("tenant: job queue full")
	// ErrUnknownTenant marks a submission for a tenant the scheduler does
	// not know (programming error on the caller's side).
	ErrUnknownTenant = errors.New("tenant: unknown tenant")
)

// QuotaError reports an admission rejected by the tenant's rate quota,
// carrying the earliest time a retry can succeed (HTTP 429 + Retry-After).
type QuotaError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("tenant %s: rate quota exhausted, retry after %v", e.Tenant, e.RetryAfter)
}

// Class is a job's priority class. Classes multiply the tenant's
// fair-share weight rather than preempting absolutely, so a backlogged
// warm job is delayed — possibly a lot — but never starved: stride
// scheduling guarantees every backlogged flow with a positive weight a
// bounded wait.
type Class string

const (
	// Interactive is client-facing blocking work (?wait=1 submissions,
	// small probes): weight ×100.
	Interactive Class = "interactive"
	// Batch is the default for asynchronous submissions: weight ×10.
	Batch Class = "batch"
	// Warm is background precomputation (cache warming): weight ×1.
	Warm Class = "warm"
)

// classOrder fixes the deterministic scan order; it also breaks pass ties
// (higher class first).
var classOrder = [...]Class{Interactive, Batch, Warm}

// ClassWeight returns the class's weight multiplier.
func ClassWeight(c Class) uint64 {
	switch c {
	case Interactive:
		return 100
	case Batch:
		return 10
	case Warm:
		return 1
	}
	return 0
}

// ParseClass resolves a class name; "" means Batch.
func ParseClass(s string) (Class, error) {
	switch Class(s) {
	case "":
		return Batch, nil
	case Interactive, Batch, Warm:
		return Class(s), nil
	}
	return "", fmt.Errorf("tenant: unknown class %q (want interactive, batch, or warm)", s)
}

// MaxWeight bounds fair-share weights so stride arithmetic stays exact.
const MaxWeight = 1000

// Tenant declares one paying (or internal) client of the service.
type Tenant struct {
	// Name identifies the tenant in metrics and job accounting.
	Name string `json:"name"`
	// Key is the API key presented as `Authorization: Bearer <key>` or
	// `X-API-Key: <key>`. Empty means the tenant cannot authenticate over
	// HTTP (only the implicit local tenant runs keyless).
	Key string `json:"key"`
	// Weight is the fair-share weight, 1..MaxWeight; 0 means 1. A weight-4
	// tenant backlogged against a weight-1 tenant receives 4 of every 5
	// dispatches.
	Weight int `json:"weight,omitempty"`
	// Rate is the admission quota in jobs per second; 0 means unlimited.
	Rate float64 `json:"rate,omitempty"`
	// Burst is the token bucket's depth; 0 means max(1, Rate), and any
	// depth below one token clamps to 1 (a shallower bucket could never
	// admit a submission).
	Burst float64 `json:"burst,omitempty"`
	// MaxInFlight caps this tenant's concurrently running jobs; 0 means
	// unlimited. Queued jobs beyond the cap wait without blocking other
	// tenants' dispatches.
	MaxInFlight int `json:"max_in_flight,omitempty"`
}

// normalize applies defaults and validates one tenant declaration.
func (t *Tenant) normalize() error {
	if t.Name == "" {
		return errors.New("tenant: empty tenant name")
	}
	if t.Name == LocalName {
		return fmt.Errorf("tenant: name %q is reserved for untenanted submissions", LocalName)
	}
	if strings.ContainsAny(t.Name, `:,"{}`) {
		return fmt.Errorf("tenant %s: name must not contain ':', ',', or quote characters", t.Name)
	}
	if t.Key == "" {
		return fmt.Errorf("tenant %s: empty API key", t.Name)
	}
	if t.Weight == 0 {
		t.Weight = 1
	}
	if t.Weight < 1 || t.Weight > MaxWeight {
		return fmt.Errorf("tenant %s: weight %d invalid: want 1..%d", t.Name, t.Weight, MaxWeight)
	}
	if t.Rate < 0 {
		return fmt.Errorf("tenant %s: rate %g invalid: want 0 (unlimited) or jobs/sec", t.Name, t.Rate)
	}
	if t.Burst < 0 {
		return fmt.Errorf("tenant %s: burst %g invalid: want 0 (default) or a positive depth", t.Name, t.Burst)
	}
	if t.Burst == 0 && t.Rate > 0 {
		t.Burst = t.Rate
	}
	if t.Burst > 0 && t.Burst < 1 {
		// bucket.take caps tokens at the burst depth, so a depth below one
		// token could never admit anything and would promise Retry-After
		// times at which admission still fails. One token is the smallest
		// depth at which a submission can succeed; clamp configured and
		// defaulted depths alike.
		t.Burst = 1
	}
	if t.MaxInFlight < 0 {
		return fmt.Errorf("tenant %s: max in-flight %d invalid: want 0 (unlimited) or a positive cap", t.Name, t.MaxInFlight)
	}
	return nil
}

// ParseList parses the -tenants CLI syntax: a comma-separated list of
//
//	name:key:weight[:rate[:burst[:inflight]]]
//
// with weight and every later field optional (empty fields keep their
// defaults, so "alice:k1::10" is weight 1, rate 10/s). Duplicate names or
// API keys are rejected.
func ParseList(csv string) ([]Tenant, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	var out []Tenant
	for _, raw := range strings.Split(csv, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		f := strings.Split(raw, ":")
		if len(f) < 2 || len(f) > 6 {
			return nil, fmt.Errorf("tenant entry %q: want name:key:weight[:rate[:burst[:inflight]]]", raw)
		}
		t := Tenant{Name: strings.TrimSpace(f[0]), Key: strings.TrimSpace(f[1])}
		intField := func(i int, dst *int, label string) error {
			if len(f) <= i || strings.TrimSpace(f[i]) == "" {
				return nil
			}
			v, err := strconv.Atoi(strings.TrimSpace(f[i]))
			if err != nil {
				return fmt.Errorf("tenant entry %q: bad %s %q", raw, label, f[i])
			}
			*dst = v
			return nil
		}
		floatField := func(i int, dst *float64, label string) error {
			if len(f) <= i || strings.TrimSpace(f[i]) == "" {
				return nil
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(f[i]), 64)
			if err != nil {
				return fmt.Errorf("tenant entry %q: bad %s %q", raw, label, f[i])
			}
			*dst = v
			return nil
		}
		if err := intField(2, &t.Weight, "weight"); err != nil {
			return nil, err
		}
		if err := floatField(3, &t.Rate, "rate"); err != nil {
			return nil, err
		}
		if err := floatField(4, &t.Burst, "burst"); err != nil {
			return nil, err
		}
		if err := intField(5, &t.MaxInFlight, "inflight"); err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, errors.New("tenant: -tenants given but no tenant entries in it")
	}
	if err := ValidateList(out); err != nil {
		return nil, err
	}
	return out, nil
}

// ValidateList normalizes every tenant in place and rejects duplicates.
func ValidateList(tenants []Tenant) error {
	names := make(map[string]bool, len(tenants))
	keys := make(map[string]bool, len(tenants))
	for i := range tenants {
		t := &tenants[i]
		if err := t.normalize(); err != nil {
			return err
		}
		if names[t.Name] {
			return fmt.Errorf("tenant: duplicate tenant name %q", t.Name)
		}
		if keys[t.Key] {
			return fmt.Errorf("tenant %s: duplicate API key", t.Name)
		}
		names[t.Name] = true
		keys[t.Key] = true
	}
	return nil
}

// bucket is a token bucket over caller-supplied time. The zero value
// (rate 0) admits everything.
type bucket struct {
	rate, burst float64
	tokens      float64
	last        time.Time
}

// take refills for the elapsed time and spends one token. When the bucket
// is empty it reports the wait until a full token accumulates.
func (b *bucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	if !b.last.IsZero() {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * b.rate
			if b.tokens > b.burst {
				b.tokens = b.burst
			}
		}
	} else {
		b.tokens = b.burst // first touch: a fresh bucket starts full
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}
