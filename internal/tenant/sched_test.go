package tenant

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// drain dispatches until no flow is eligible, returning the tenant order.
func drain(s *Scheduler) []string {
	var order []string
	for {
		_, name, _, ok := s.Next()
		if !ok {
			return order
		}
		order = append(order, name)
		s.Release(name)
	}
}

func fill(t *testing.T, s *Scheduler, name string, class Class, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Enqueue(name, class, fmt.Sprintf("%s/%s/%d", name, class, i)); err != nil {
			t.Fatalf("enqueue %s: %v", name, err)
		}
	}
}

func TestWeightedShares(t *testing.T) {
	s := NewScheduler([]Tenant{
		{Name: "heavy", Key: "kh", Weight: 4},
		{Name: "light", Key: "kl", Weight: 1},
	}, 100)
	fill(t, s, "heavy", Batch, 50)
	fill(t, s, "light", Batch, 50)
	order := drain(s)
	// Over the window where both are backlogged (first 50 light dispatches
	// interleaved), heavy gets 4 of every 5 slots. Count heavy dispatches
	// before light's backlog drains.
	heavyBefore := 0
	lightSeen := 0
	for _, n := range order {
		if n == "light" {
			lightSeen++
			if lightSeen == 10 {
				break
			}
		} else {
			heavyBefore++
		}
	}
	// 10 light dispatches should bracket ~40 heavy ones (±1 for phase).
	if heavyBefore < 36 || heavyBefore > 44 {
		t.Fatalf("heavy got %d dispatches per 10 light, want ~40", heavyBefore)
	}
}

func TestDeterministicDispatchOrder(t *testing.T) {
	build := func(seed int64) []string {
		s := NewScheduler([]Tenant{
			{Name: "a", Key: "ka", Weight: 3},
			{Name: "b", Key: "kb", Weight: 2},
			{Name: "c", Key: "kc", Weight: 1},
		}, 1000)
		rng := rand.New(rand.NewSource(seed))
		names := []string{"a", "b", "c"}
		classes := []Class{Interactive, Batch, Warm}
		for i := 0; i < 300; i++ {
			n := names[rng.Intn(len(names))]
			c := classes[rng.Intn(len(classes))]
			if err := s.Enqueue(n, c, i); err != nil {
				t.Fatalf("enqueue: %v", err)
			}
		}
		return drain(s)
	}
	a, b := build(42), build(42)
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatal("same seeded arrival sequence produced different dispatch orders")
	}
	if len(a) != 300 {
		t.Fatalf("drained %d, want 300", len(a))
	}
}

func TestPinnedDispatchOrder(t *testing.T) {
	// A golden micro-trace: any change to tie-breaking or stride arithmetic
	// shows up as a loud diff here.
	s := NewScheduler([]Tenant{
		{Name: "a", Key: "ka", Weight: 2},
		{Name: "b", Key: "kb", Weight: 1},
	}, 32)
	fill(t, s, "b", Batch, 4)
	fill(t, s, "a", Batch, 4)
	fill(t, s, "a", Warm, 2)
	fill(t, s, "b", Interactive, 1)
	got := strings.Join(drain(s), ",")
	// All flows start at pass 0; ties go to scan order (sorted tenant name,
	// then interactive > batch > warm), after which strides separate them:
	// a/batch (stride 2^30/20) runs 2× as often as b/batch (2^30/10),
	// b/interactive jumps the line once, and a's warm jobs trail.
	want := "a,a,b,b,a,a,b,a,b,b,a"
	if got != want {
		t.Fatalf("dispatch order\n got %s\nwant %s", got, want)
	}
}

func TestNoStarvationOfLowestWeightTenant(t *testing.T) {
	s := NewScheduler([]Tenant{
		{Name: "greedy", Key: "kg", Weight: MaxWeight},
		{Name: "meek", Key: "km", Weight: 1},
	}, 100000)
	fill(t, s, "greedy", Interactive, 50000)
	fill(t, s, "meek", Warm, 1)
	// The meek warm job (effective weight 1) against greedy interactive
	// (effective weight 100 000) must still dispatch within one full stride
	// ratio: ≤ strideScale/1 virtual time ⇒ ≤ 100 000 greedy dispatches.
	for i := 0; i < 100001; i++ {
		_, name, _, ok := s.Next()
		if !ok {
			t.Fatal("queue drained before meek dispatched")
		}
		s.Release(name)
		if name == "meek" {
			if i == 0 {
				t.Fatal("meek dispatched first; expected greedy to lead")
			}
			return
		}
	}
	t.Fatal("meek tenant starved beyond the stride bound")
}

func TestClassPriorityWithoutStarvation(t *testing.T) {
	s := NewScheduler([]Tenant{{Name: "a", Key: "ka"}}, 4000)
	fill(t, s, "a", Warm, 5)
	fill(t, s, "a", Interactive, 1000)
	var warmAt []int
	pos := 0
	for {
		_, _, class, ok := s.Next()
		if !ok {
			break
		}
		s.Release("a")
		if class == Warm {
			warmAt = append(warmAt, pos)
		}
		pos++
	}
	// Warm is never starved: all 5 warm jobs dispatch before the 1000
	// interactive ones drain.
	if len(warmAt) != 5 {
		t.Fatalf("drained %d warm jobs, want 5", len(warmAt))
	}
	if last := warmAt[4]; last >= pos-1 && pos > 1005 {
		t.Fatalf("last warm dispatch at %d of %d: starved to the end", last, pos)
	}
	// Priority holds in steady state: interactive (×100) outruns warm (×1)
	// by ~100 dispatches per warm slot.
	gap := warmAt[2] - warmAt[1]
	if gap < 80 || gap > 120 {
		t.Fatalf("steady-state warm gap %d interactive jobs, want ~100", gap)
	}
}

func TestQueueBoundAndDropAccounting(t *testing.T) {
	s := NewScheduler([]Tenant{{Name: "a", Key: "ka"}}, 2)
	fill(t, s, "a", Batch, 2)
	if !s.Full() {
		t.Fatal("queue should be full at depth")
	}
	if err := s.Enqueue("a", Batch, "x"); err != ErrQueueFull {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
	st := s.TenantStats()
	var a *Stats
	for i := range st {
		if st[i].Name == "a" {
			a = &st[i]
		}
	}
	if a == nil || a.Dropped != 1 || a.Queued != 2 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

func TestInFlightCap(t *testing.T) {
	s := NewScheduler([]Tenant{
		{Name: "capped", Key: "kc", MaxInFlight: 1},
		{Name: "free", Key: "kf"},
	}, 16)
	fill(t, s, "capped", Batch, 3)
	fill(t, s, "free", Batch, 2)
	_, n1, _, ok := s.Next()
	if !ok {
		t.Fatal("no first dispatch")
	}
	// Whichever went first, capped can hold at most one slot; draining
	// without releases must eventually stall with capped work left.
	dispatched := []string{n1}
	for {
		_, n, _, ok := s.Next()
		if !ok {
			break
		}
		dispatched = append(dispatched, n)
	}
	cappedRunning := 0
	for _, n := range dispatched {
		if n == "capped" {
			cappedRunning++
		}
	}
	if cappedRunning != 1 {
		t.Fatalf("capped tenant has %d in flight, cap is 1", cappedRunning)
	}
	if s.QueuedLen() != 2 {
		t.Fatalf("queued=%d, want 2 capped jobs waiting", s.QueuedLen())
	}
	// Releasing unblocks exactly one more capped dispatch.
	s.Release("capped")
	_, n, _, ok := s.Next()
	if !ok || n != "capped" {
		t.Fatalf("after release got %q ok=%v, want capped", n, ok)
	}
}

func TestRemoveCancelsQueuedJob(t *testing.T) {
	s := NewScheduler(nil, 8)
	v1, v2 := "j1", "j2"
	if err := s.Enqueue(LocalName, Batch, v1); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(LocalName, Batch, v2); err != nil {
		t.Fatal(err)
	}
	if !s.Remove(LocalName, Batch, v1) {
		t.Fatal("Remove did not find queued job")
	}
	if s.Remove(LocalName, Batch, v1) {
		t.Fatal("Remove found an already-removed job")
	}
	got, _, _, ok := s.Next()
	if !ok || got != v2 {
		t.Fatalf("got %v, want j2", got)
	}
	if _, _, _, ok := s.Next(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestIdleFlowBanksNoCredit(t *testing.T) {
	s := NewScheduler([]Tenant{
		{Name: "a", Key: "ka"},
		{Name: "b", Key: "kb"},
	}, 1000)
	// a runs alone for a while, advancing the virtual clock.
	fill(t, s, "a", Batch, 100)
	for i := 0; i < 100; i++ {
		_, n, _, _ := s.Next()
		s.Release(n)
	}
	// b arrives late; it must share 50/50 from here on, not get 100
	// catch-up dispatches.
	fill(t, s, "a", Batch, 20)
	fill(t, s, "b", Batch, 20)
	first10 := drain(s)[:10]
	bCount := 0
	for _, n := range first10 {
		if n == "b" {
			bCount++
		}
	}
	if bCount < 4 || bCount > 6 {
		t.Fatalf("late-arriving tenant got %d of first 10 slots, want ~5", bCount)
	}
}

func TestLocalOnlySchedulerIsFIFO(t *testing.T) {
	s := NewScheduler(nil, 16)
	if s.Tenanted() {
		t.Fatal("scheduler with no tenants reports Tenanted")
	}
	for i := 0; i < 10; i++ {
		if err := s.Enqueue(LocalName, Batch, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		v, name, _, ok := s.Next()
		if !ok || v.(int) != i || name != LocalName {
			t.Fatalf("dispatch %d: got %v from %q", i, v, name)
		}
		s.Release(name)
	}
}

func TestTenantForKey(t *testing.T) {
	s := NewScheduler([]Tenant{{Name: "a", Key: "secret"}}, 4)
	if n, ok := s.TenantForKey("secret"); !ok || n != "a" {
		t.Fatalf("got %q, %v", n, ok)
	}
	if _, ok := s.TenantForKey("wrong"); ok {
		t.Fatal("unknown key resolved")
	}
	if !s.Tenanted() {
		t.Fatal("Tenanted false with a configured tenant")
	}
}

func TestTenantStatsSortedAndLocalHidden(t *testing.T) {
	s := NewScheduler([]Tenant{
		{Name: "zeta", Key: "kz"},
		{Name: "alpha", Key: "kA"},
	}, 8)
	st := s.TenantStats()
	if len(st) != 2 || st[0].Name != "alpha" || st[1].Name != "zeta" {
		t.Fatalf("stats not sorted or local leaked: %+v", st)
	}
	// Local appears once it sees traffic.
	if err := s.Enqueue(LocalName, Batch, "x"); err != nil {
		t.Fatal(err)
	}
	st = s.TenantStats()
	if len(st) != 3 || st[1].Name != LocalName {
		t.Fatalf("local tenant missing after traffic: %+v", st)
	}
}

func TestNewSchedulerPanicsOnBadConfig(t *testing.T) {
	for _, f := range []func(){
		func() { NewScheduler(nil, 0) },
		func() { NewScheduler([]Tenant{{Name: "a"}}, 4) }, // empty key
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad scheduler config did not panic")
				}
			}()
			f()
		}()
	}
}

// TestReserveCountsTowardCap: slots claimed outside the queue (the
// store-admission bypass path) share the in-flight accounting with
// dispatched jobs — a reserved slot is refused by HasSlot at the cap,
// blocks Next for that tenant, shows up in the stats, and is freed by the
// same Release the worker path uses.
func TestReserveCountsTowardCap(t *testing.T) {
	s := NewScheduler([]Tenant{{Name: "capped", Key: "kc", MaxInFlight: 1}}, 8)
	if !s.HasSlot("capped") {
		t.Fatal("fresh tenant reports no free slot")
	}
	s.Reserve("capped")
	if s.HasSlot("capped") {
		t.Fatal("HasSlot true at the cap")
	}
	// A queued job cannot dispatch while the bypass job holds the slot.
	fill(t, s, "capped", Batch, 1)
	if _, _, _, ok := s.Next(); ok {
		t.Fatal("Next dispatched past the in-flight cap")
	}
	for _, st := range s.TenantStats() {
		if st.Name == "capped" && (st.Running != 1 || st.Dispatched != 1) {
			t.Fatalf("stats running=%d dispatched=%d, want 1/1", st.Running, st.Dispatched)
		}
	}
	s.Release("capped")
	if _, n, _, ok := s.Next(); !ok || n != "capped" {
		t.Fatalf("after release got %q ok=%v, want capped", n, ok)
	}
	// Uncapped tenants always have a slot; unknown names never do.
	if !s.HasSlot(LocalName) {
		t.Fatal("uncapped local tenant reports no slot")
	}
	if s.HasSlot("ghost") {
		t.Fatal("HasSlot true for unknown tenant")
	}
}
