package tenant

import (
	"fmt"
	"sort"
	"time"
)

// strideScale is the stride numerator. The largest effective weight is
// MaxWeight×ClassWeight(Interactive) = 100 000, so the smallest stride is
// still ~10 000 virtual-time units — coarse enough that integer division
// keeps the weighted shares within a fraction of a percent of exact.
const strideScale = 1 << 30

// flow is one (tenant, class) backlog: a FIFO of queued items advancing a
// stride-scheduled virtual clock. Higher weight ⇒ smaller stride ⇒ more
// frequent dispatches.
type flow struct {
	tenant *state
	class  Class
	stride uint64
	pass   uint64
	queue  []any
}

// state is the per-tenant runtime: configuration plus quota bucket and
// in-flight accounting shared across the tenant's class flows.
type state struct {
	cfg      Tenant
	bucket   bucket
	inFlight int
	queued   int
	// Monotonic counters for /metrics.
	admitted   uint64
	dispatched uint64
	dropped    uint64
}

// Stats is a point-in-time snapshot of one tenant's scheduler state,
// rendered into the per-tenant /metrics gauges.
type Stats struct {
	Name       string
	Weight     int
	Queued     int
	Running    int
	Admitted   uint64
	Dispatched uint64
	Dropped    uint64
}

// Scheduler is the weighted fair-share job queue. It is NOT safe for
// concurrent use: the serving layer owns a mutex and a condition variable
// around it, which keeps this type pure, allocation-light, and exactly
// unit-testable — Next()'s dispatch order is a deterministic function of
// the Enqueue sequence and the configured weights.
//
// Fairness model: every (tenant, class) pair is a flow with
// stride = strideScale / (tenantWeight × classWeight). Dispatch picks the
// backlogged, uncapped flow with the smallest pass value (ties broken by
// sorted tenant name, then interactive > batch > warm) and advances that
// flow's pass by its stride. A flow going from idle to backlogged joins at
// max(its old pass, the global virtual clock), so sleeping never banks
// credit. Because every configured weight is positive and strides are
// bounded, any backlogged flow's pass is overtaken within a bounded number
// of dispatches: starvation-freedom by construction, priority classes
// included (a warm flow waits up to ~100× longer than an interactive one,
// but never forever).
type Scheduler struct {
	depth   int // global queue bound across all tenants
	clock   uint64
	queued  int
	tenants map[string]*state
	byKey   map[string]string // API key -> tenant name
	flows   map[string]map[Class]*flow
	order   []string // tenant names, sorted: the deterministic scan order
}

// NewScheduler builds a scheduler over the given tenants plus the implicit
// local tenant. depth bounds the total queued (not yet dispatched) jobs
// across all tenants; depth <= 0 panics, as does an invalid tenant list —
// CLI input is validated by cliutil before it reaches here, so a bad list
// is a programming error.
func NewScheduler(tenants []Tenant, depth int) *Scheduler {
	if depth <= 0 {
		panic(fmt.Sprintf("tenant: scheduler depth %d invalid", depth))
	}
	ts := make([]Tenant, len(tenants))
	copy(ts, tenants)
	if err := ValidateList(ts); err != nil {
		panic("tenant: invalid tenant list: " + err.Error())
	}
	s := &Scheduler{
		depth:   depth,
		tenants: make(map[string]*state, len(ts)+1),
		byKey:   make(map[string]string, len(ts)),
		flows:   make(map[string]map[Class]*flow, len(ts)+1),
	}
	add := func(cfg Tenant) {
		st := &state{cfg: cfg, bucket: bucket{rate: cfg.Rate, burst: cfg.Burst}}
		s.tenants[cfg.Name] = st
		fs := make(map[Class]*flow, len(classOrder))
		for _, c := range classOrder {
			fs[c] = &flow{
				tenant: st,
				class:  c,
				stride: strideScale / (uint64(cfg.Weight) * ClassWeight(c)),
			}
		}
		s.flows[cfg.Name] = fs
		s.order = append(s.order, cfg.Name)
		if cfg.Key != "" {
			s.byKey[cfg.Key] = cfg.Name
		}
	}
	add(Tenant{Name: LocalName, Weight: 1})
	for _, t := range ts {
		add(t)
	}
	sort.Strings(s.order)
	return s
}

// TenantForKey resolves an API key to a tenant name.
func (s *Scheduler) TenantForKey(key string) (string, bool) {
	name, ok := s.byKey[key]
	return name, ok
}

// Tenanted reports whether any real (non-local) tenants are configured.
func (s *Scheduler) Tenanted() bool { return len(s.byKey) > 0 }

// Full reports whether the global queue bound is reached. Checked before
// Admit so a doomed request never burns a quota token.
func (s *Scheduler) Full() bool { return s.queued >= s.depth }

// QueuedLen returns the total queued (undispatched) jobs.
func (s *Scheduler) QueuedLen() int { return s.queued }

// Admit spends one of the tenant's quota tokens at the given time. It
// returns a *QuotaError (with Retry-After) when the bucket is empty, and
// ErrUnknownTenant for names the scheduler was not built with.
func (s *Scheduler) Admit(name string, now time.Time) error {
	st, ok := s.tenants[name]
	if !ok {
		return ErrUnknownTenant
	}
	if ok, retry := st.bucket.take(now); !ok {
		st.dropped++
		return &QuotaError{Tenant: name, RetryAfter: retry}
	}
	st.admitted++
	return nil
}

// Enqueue appends v to the tenant's class flow, or returns ErrQueueFull
// when the global bound is reached (counted as a drop for the tenant).
func (s *Scheduler) Enqueue(name string, class Class, v any) error {
	st, ok := s.tenants[name]
	if !ok {
		return ErrUnknownTenant
	}
	if ClassWeight(class) == 0 {
		return fmt.Errorf("tenant: enqueue with invalid class %q", class)
	}
	if s.queued >= s.depth {
		st.dropped++
		return ErrQueueFull
	}
	f := s.flows[name][class]
	if len(f.queue) == 0 && f.pass < s.clock {
		// Newly backlogged: join at the current virtual time so an idle
		// flow cannot bank credit and then monopolize the queue.
		f.pass = s.clock
	}
	f.queue = append(f.queue, v)
	st.queued++
	s.queued++
	return nil
}

// Next dispatches the next job under the fairness policy: the eligible
// (backlogged, in-flight-cap-free) flow with the smallest pass. ok is
// false when no flow is eligible — either the queue is empty or every
// backlogged tenant is at its in-flight cap; the caller's Release will
// make progress possible again.
func (s *Scheduler) Next() (v any, name string, class Class, ok bool) {
	var best *flow
	for _, tn := range s.order {
		st := s.tenants[tn]
		if st.queued == 0 {
			continue
		}
		if st.cfg.MaxInFlight > 0 && st.inFlight >= st.cfg.MaxInFlight {
			continue
		}
		for _, c := range classOrder {
			f := s.flows[tn][c]
			if len(f.queue) == 0 {
				continue
			}
			if best == nil || f.pass < best.pass {
				best = f
			}
		}
	}
	if best == nil {
		return nil, "", "", false
	}
	v = best.queue[0]
	best.queue[0] = nil // release the reference for GC
	best.queue = best.queue[1:]
	if len(best.queue) == 0 && cap(best.queue) == 0 {
		best.queue = nil
	}
	if best.pass > s.clock {
		// Monotonic: a capped flow re-becoming eligible can carry an old
		// pass; the global clock never runs backwards because of it.
		s.clock = best.pass
	}
	best.pass += best.stride
	st := best.tenant
	st.queued--
	st.inFlight++
	st.dispatched++
	s.queued--
	return v, st.cfg.Name, best.class, true
}

// Release returns one of the tenant's in-flight slots after its job
// finishes (any terminal state). Slots claimed by Next and by Reserve are
// released the same way.
func (s *Scheduler) Release(name string) {
	if st, ok := s.tenants[name]; ok && st.inFlight > 0 {
		st.inFlight--
	}
}

// HasSlot reports whether the tenant is known and below its in-flight
// cap, i.e. whether a Reserve would respect MaxInFlight.
func (s *Scheduler) HasSlot(name string) bool {
	st, ok := s.tenants[name]
	return ok && (st.cfg.MaxInFlight <= 0 || st.inFlight < st.cfg.MaxInFlight)
}

// Reserve claims one of the tenant's in-flight slots without going
// through the queue: store-admission bypass jobs run outside the worker
// pool but still count toward MaxInFlight and the dispatch metrics. The
// caller must have checked HasSlot under the same lock that serializes
// scheduler access, and owes a Release when the job finishes.
func (s *Scheduler) Reserve(name string) {
	if st, ok := s.tenants[name]; ok {
		st.inFlight++
		st.dispatched++
	}
}

// Remove deletes v from the tenant's class flow if it is still queued
// (used by job cancellation). It reports whether v was found; a removed
// job never occupied an in-flight slot, so no Release is owed.
func (s *Scheduler) Remove(name string, class Class, v any) bool {
	st, ok := s.tenants[name]
	if !ok {
		return false
	}
	f, ok := s.flows[name][class]
	if !ok {
		return false
	}
	for i := range f.queue {
		if f.queue[i] == v {
			copy(f.queue[i:], f.queue[i+1:])
			f.queue[len(f.queue)-1] = nil
			f.queue = f.queue[:len(f.queue)-1]
			st.queued--
			s.queued--
			return true
		}
	}
	return false
}

// TenantStats returns a snapshot per tenant, sorted by name, for the
// /metrics per-tenant gauges. The implicit local tenant is included only
// when it has ever seen traffic, so tenanted deployments don't render a
// dead series.
func (s *Scheduler) TenantStats() []Stats {
	out := make([]Stats, 0, len(s.order))
	for _, tn := range s.order {
		st := s.tenants[tn]
		if tn == LocalName && st.admitted == 0 && st.dispatched == 0 && st.queued == 0 && st.inFlight == 0 {
			continue
		}
		out = append(out, Stats{
			Name:       tn,
			Weight:     st.cfg.Weight,
			Queued:     st.queued,
			Running:    st.inFlight,
			Admitted:   st.admitted,
			Dispatched: st.dispatched,
			Dropped:    st.dropped,
		})
	}
	return out
}
