package ooo

import (
	"nda/internal/bpred"
	"nda/internal/core"
	"nda/internal/isa"
)

// noPReg marks an absent physical register operand.
const noPReg = -1

// Entry is one reorder-buffer entry: a dispatched micro-op and all of its
// in-flight state. Entries live in a fixed ring; the issue queue and the
// load/store queues refer to them by ring slot (Entry.Slot), which is stable
// for an entry's whole lifetime, so the schedulers are plain index slices
// with no per-dispatch allocation.
type Entry struct {
	Seq  uint64 // global age; assigned at fetch, monotonically increasing
	PC   uint64
	Inst isa.Inst

	// Slot is the entry's fixed position in the ROB ring backing array;
	// assigned once at core construction and preserved across reset.
	Slot int32

	// Renaming.
	DestP int // destination physical register, or noPReg
	PrevP int // previous mapping of the destination arch register
	Src1P int // physical sources, or noPReg
	Src2P int

	// Scheduling state.
	InIQ       bool
	Issued     bool
	RetryAt    uint64 // earliest re-issue cycle after a forwarding replay
	CompleteAt uint64 // cycle execution finishes; valid when Issued
	Result     uint64

	// Branch state. Predictions and checkpoints are recorded at fetch.
	Predicted  bool // fetch made a target/direction prediction
	PredTaken  bool
	PredTarget uint64
	GshCkpt    uint64 // gshare history before this branch's own update
	HasGshCkpt bool
	RASBefore  bpred.RASSnapshot // RAS state before this instruction's own push/pop
	HasRASCkpt bool
	Taken      bool
	Target     uint64

	// Memory state.
	Addr      uint64
	AddrKnown bool
	// ForwardSeq is the store this load forwarded from (0 = none).
	ForwardSeq uint64
	// bypassed holds the ROB slots of older stores whose addresses were
	// unknown when this load executed; used for Bypass Restriction and
	// violation tracking. A bypassed store is always older than the load,
	// so a squash that frees the store's slot frees the load's too.
	bypassed []int32
	OffChip  bool // load serviced by DRAM (counts toward MLP while in flight)
	Inflight bool // load access outstanding (between issue and completion)

	// InvisiSpec state.
	Invisible  bool // fill hidden at access time
	WasPresent bool // line was cached when the hidden access was made
	Exposed    bool // fill has been installed at the safe point

	Fault isa.FaultKind

	// NDA safety state (the paper's unsafe/exec/bcast bits).
	Node core.Node
	// SafeSince is the cycle the entry first became broadcast-eligible
	// after completion, for the ExtraBroadcastDelay sensitivity knob.
	SafeSince    uint64
	HasSafeSince bool
	// BcastCycle is the cycle the tag broadcast happened.
	BcastCycle uint64

	// Timing statistics.
	FetchedAt    uint64
	DispatchedAt uint64
	IssuedAt     uint64
}

// TraceEvent is the per-instruction life-cycle record emitted to
// Core.TraceRetire: the cycle of each pipeline milestone (paper Fig. 2's
// steps, plus fetch and retire).
type TraceEvent struct {
	Seq       uint64
	PC        uint64
	Inst      isa.Inst
	Fetch     uint64
	Dispatch  uint64
	Issue     uint64
	Complete  uint64
	Broadcast uint64 // 0 if the instruction produced no register
	Retire    uint64
}

// reset clears an entry for reuse, preserving its backing storage: the
// bypassed slice, the RAS snapshot's array (its contents are stale but
// HasRASCkpt is cleared), and the fixed ring slot.
func (e *Entry) reset() {
	bypassed := e.bypassed[:0]
	ras := e.RASBefore
	slot := e.Slot
	*e = Entry{bypassed: bypassed, RASBefore: ras, Slot: slot, DestP: noPReg, PrevP: noPReg, Src1P: noPReg, Src2P: noPReg}
}

// isMem reports whether the entry is a data-memory operation.
func (e *Entry) isMem() bool { return e.Inst.IsLoad() || e.Inst.IsStore() }

// overlaps reports whether two byte ranges [a,a+as) and [b,b+bs) intersect.
func overlaps(a uint64, as int, b uint64, bs int) bool {
	return a < b+uint64(bs) && b < a+uint64(as)
}

// covers reports whether store range [sa,sa+ss) fully contains load range
// [la,la+ls) — the store-to-load forwarding condition.
func covers(sa uint64, ss int, la uint64, ls int) bool {
	return sa <= la && la+uint64(ls) <= sa+uint64(ss)
}

// fetchSlot is one decoded instruction travelling from fetch to dispatch.
type fetchSlot struct {
	seq     uint64
	pc      uint64
	inst    isa.Inst
	valid   bool // false: fetched bytes did not decode (wrong-path into data)
	readyAt uint64

	predicted  bool
	predTaken  bool
	predTarget uint64
	gshCkpt    uint64
	hasGshCkpt bool
	rasBefore  bpred.RASSnapshot
	hasRASCkpt bool
}
