package ooo

import (
	"fmt"
	"testing"

	"nda/internal/asm"
	"nda/internal/core"
	"nda/internal/emu"
	"nda/internal/isa"
	"nda/internal/workload"
)

const maxCycles = 5_000_000

func runOoO(t *testing.T, src string, pol core.Policy) *Core {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	c := NewFromProgram(p, pol, DefaultParams())
	if err := c.Run(maxCycles); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStraightLine(t *testing.T) {
	c := runOoO(t, `
main:   li   t0, 40
        addi t1, t0, 2
        add  t2, t0, t1
        halt
`, core.Baseline())
	if got := c.Reg(isa.RegT2); got != 82 {
		t.Errorf("t2 = %d, want 82", got)
	}
	if c.Retired() != 4 {
		t.Errorf("retired = %d", c.Retired())
	}
}

func TestLoop(t *testing.T) {
	c := runOoO(t, `
main:   li   t0, 0
        li   t1, 1
loop:   add  t0, t0, t1
        addi t1, t1, 1
        slti t2, t1, 101
        bne  t2, zero, loop
        halt
`, core.Baseline())
	if got := c.Reg(isa.RegT0); got != 5050 {
		t.Errorf("sum = %d, want 5050", got)
	}
}

func TestMemoryBasics(t *testing.T) {
	c := runOoO(t, `
        .data
        .org 0x10000
arr:    .word64 10, 20, 30
        .text
main:   la   s0, arr
        ld   t0, 8(s0)
        addi t0, t0, 5
        sd   t0, 16(s0)
        ld   t1, 16(s0)
        lbu  t2, 16(s0)
        halt
`, core.Baseline())
	if c.Reg(isa.RegT1) != 25 || c.Reg(isa.RegT2) != 25 {
		t.Errorf("t1=%d t2=%d, want 25", c.Reg(isa.RegT1), c.Reg(isa.RegT2))
	}
	if c.Memory().Read(0x10010, 8) != 25 {
		t.Error("store must commit to memory")
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	// The cold DRAM load at the head blocks commit for ~140 cycles, pinning
	// the store in the store queue; the younger load must forward from it.
	c := runOoO(t, `
        .data
        .org 0x10000
arr:    .word64 10, 20, 30
        .org 0x40000
far:    .word64 7
        .text
main:   la   s0, arr
        la   s1, far
        ld   t3, (s1)       # cold miss: blocks retirement of everything below
        li   t0, 25
        sd   t0, 16(s0)
        ld   t1, 16(s0)     # must forward from the pinned store
        lbu  t2, 16(s0)
        halt
`, core.Baseline())
	if c.Reg(isa.RegT1) != 25 || c.Reg(isa.RegT2) != 25 {
		t.Errorf("t1=%d t2=%d, want 25", c.Reg(isa.RegT1), c.Reg(isa.RegT2))
	}
	if c.Stats().LoadForwards == 0 {
		t.Error("expected store-to-load forwarding")
	}
}

func TestCallsAndReturns(t *testing.T) {
	c := runOoO(t, `
main:   li   a0, 5
        call double
        call double
        call double
        halt
double: add  a0, a0, a0
        ret
`, core.Baseline())
	if got := c.Reg(isa.RegA0); got != 40 {
		t.Errorf("a0 = %d, want 40", got)
	}
}

func TestIndirectCallThroughTable(t *testing.T) {
	c := runOoO(t, `
        .data
        .org 0x10000
tbl:    .word64 f0, f1
        .text
main:   la   s0, tbl
        ld   t0, 8(s0)
        callr t0
        ld   t1, (s0)
        callr t1
        halt
f0:     addi a0, a0, 1
        ret
f1:     addi a0, a0, 100
        ret
`, core.Baseline())
	if got := c.Reg(isa.RegA0); got != 101 {
		t.Errorf("a0 = %d, want 101", got)
	}
}

func TestFaultVectorsToHandler(t *testing.T) {
	c := runOoO(t, `
        .data
        .org 0x20000
        .kernel
secret: .word64 0x1337
        .text
main:   la   t0, handler
        wrmsr 0x0, t0
        la   t1, secret
        ld   t2, (t1)
        li   t3, 111        # must be squashed
        halt
handler:
        li   t4, 222
        halt
`, core.Baseline())
	if c.Reg(isa.Reg(28)) != 0 {
		t.Error("post-fault instruction leaked into architectural state")
	}
	if c.Reg(isa.Reg(29)) != 222 {
		t.Error("handler did not run")
	}
	if c.Reg(isa.RegT2) != 0 {
		t.Error("faulting load wrote its architectural register")
	}
	if c.Stats().Faults != 1 {
		t.Errorf("faults = %d", c.Stats().Faults)
	}
}

func TestMispredictRecovery(t *testing.T) {
	// A data-dependent unpredictable-ish branch pattern with side effects
	// on both paths; correctness requires clean squash.
	c := runOoO(t, `
main:   li   t0, 0       # i
        li   t1, 0       # acc
        li   t2, 1
loop:   andi t3, t0, 5
        beq  t3, zero, even
        addi t1, t1, 7
        j    next
even:   addi t1, t1, 1
next:   addi t0, t0, 1
        slti t4, t0, 200
        bne  t4, zero, loop
        halt
`, core.Baseline())
	// Of i in [0,200): i&5==0 for i%8 in {0,2} -> 50 times... compute in
	// the reference emulator instead to avoid hand-arithmetic mistakes.
	p := asm.MustAssemble(`
main:   li   t0, 0
        li   t1, 0
        li   t2, 1
loop:   andi t3, t0, 5
        beq  t3, zero, even
        addi t1, t1, 7
        j    next
even:   addi t1, t1, 1
next:   addi t0, t0, 1
        slti t4, t0, 200
        bne  t4, zero, loop
        halt
`)
	m := emu.New(p)
	if err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	if c.Reg(isa.RegT1) != m.Regs[isa.RegT1] {
		t.Errorf("acc = %d, want %d", c.Reg(isa.RegT1), m.Regs[isa.RegT1])
	}
	if c.Stats().Mispredicts == 0 {
		t.Error("expected at least one mispredict")
	}
}

func TestWrongPathStoreDoesNotCommit(t *testing.T) {
	// The branch is mis-trained taken, then falls through; the wrong path
	// contains a store that must never reach memory.
	c := runOoO(t, `
        .data
        .org 0x10000
flag:   .word64 0
slot:   .word64 0
        .text
main:   la   s0, flag
        li   t0, 10
train:  addi t0, t0, -1
        beq  t0, zero, out   # not taken 9x, taken last
        li   t1, 99
        sd   t1, 8(s0)       # executes (wrong-path on final iteration? no: correct path)
        j    train
out:    halt
`, core.Baseline())
	if c.Memory().Read(0x10008, 8) != 99 {
		t.Error("correct-path store lost")
	}
	_ = c
}

// differential runs a program on the reference emulator and on the OoO core
// under every policy (plus checks retired counts), requiring identical
// architectural results.
func differential(t *testing.T, prog *isa.Program, policies []core.Policy) {
	t.Helper()
	golden := emu.New(prog)
	if err := golden.Run(5_000_000); err != nil {
		t.Fatalf("emu: %v", err)
	}

	for _, pol := range policies {
		pol := pol
		t.Run(pol.Name, func(t *testing.T) {
			c := NewFromProgram(prog, pol, DefaultParams())
			if err := c.Run(maxCycles); err != nil {
				t.Fatalf("ooo[%s]: %v", pol.Name, err)
			}
			if c.Retired() != golden.Retired {
				t.Errorf("retired = %d, want %d", c.Retired(), golden.Retired)
			}
			regs := c.Regs()
			for i := range regs {
				if regs[i] != golden.Regs[i] {
					t.Errorf("x%d = %#x, want %#x", i, regs[i], golden.Regs[i])
				}
			}
			for addr := uint64(0x100000); addr < 0x102000; addr += 8 {
				if got, want := c.Memory().Read(addr, 8), golden.Mem.Read(addr, 8); got != want {
					t.Errorf("mem[%#x] = %#x, want %#x", addr, got, want)
					break
				}
			}
		})
	}
}

func TestDifferentialRandomBaseline(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			differential(t, workload.Random(seed, 120), []core.Policy{core.Baseline()})
		})
	}
}

func TestDifferentialRandomAllPolicies(t *testing.T) {
	policies := core.All()
	for seed := int64(100); seed <= 106; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			differential(t, workload.Random(seed, 100), policies)
		})
	}
}

func TestDifferentialLong(t *testing.T) {
	if testing.Short() {
		t.Skip("long differential")
	}
	differential(t, workload.Random(424242, 2000), []core.Policy{
		core.Baseline(), core.FullProtection(),
	})
}

// --- timing sanity ---

func TestDependentChainCPI(t *testing.T) {
	src := "main: li t0, 1\n"
	for i := 0; i < 2000; i++ {
		src += "add t0, t0, t0\n"
	}
	src += "halt\n"
	c := runOoO(t, src, core.Baseline())
	cpi := c.Stats().CPI()
	if cpi > 1.25 {
		t.Errorf("dependent ALU chain CPI = %.2f, want ~1", cpi)
	}
}

func TestIndependentALUIPC(t *testing.T) {
	src := "main: li t0, 1\nli t1, 2\nli t2, 3\nli t3, 4\n"
	for i := 0; i < 1000; i++ {
		src += "add t4, t0, t1\nadd t5, t0, t2\nadd t6, t1, t2\nadd s2, t0, t3\n"
	}
	src += "halt\n"
	c := runOoO(t, src, core.Baseline())
	if ipc := c.Stats().IPC(); ipc < 2.5 {
		t.Errorf("independent ALU IPC = %.2f, want > 2.5", ipc)
	}
}

func TestStrictSlowerThanBaselineOnBranchyLoads(t *testing.T) {
	src := `
        .data
        .org 0x100000
buf:    .space 8192
        .text
main:   li   s0, 0x100000
        li   s1, 0          # i
        li   s2, 0          # acc
loop:   andi t0, s1, 1016
        add  t0, t0, s0
        ld   t1, (t0)       # load under an unresolved branch shadow
        add  s2, s2, t1
        addi s1, s1, 8
        slti t2, s1, 4000
        bne  t2, zero, loop
        halt
`
	base := runOoO(t, src, core.Baseline())
	strict := runOoO(t, src, core.Strict())
	if base.Stats().CPI() >= strict.Stats().CPI() {
		t.Errorf("strict CPI (%.2f) must exceed baseline CPI (%.2f)",
			strict.Stats().CPI(), base.Stats().CPI())
	}
	if strict.Stats().DeferredBroadcasts == 0 {
		t.Error("strict must defer broadcasts")
	}
}

func TestLoadRestrictionDelaysWakeup(t *testing.T) {
	src := `
        .data
        .org 0x100000
buf:    .word64 1, 2, 3, 4, 5, 6, 7, 8
        .text
main:   li   s0, 0x100000
        ld   t0, (s0)
        add  t1, t0, t0     # dependent on the load
        ld   t2, 8(s0)
        add  t3, t2, t2
        halt
`
	base := runOoO(t, src, core.Baseline())
	lr := runOoO(t, src, core.LoadRestrict())
	if lr.Cycles() <= base.Cycles() {
		t.Errorf("load restriction (%d cycles) must be slower than baseline (%d)",
			lr.Cycles(), base.Cycles())
	}
	if lr.Reg(isa.RegT1) != 2 || lr.Reg(isa.Reg(28)) != 4 {
		t.Error("architectural results must be unaffected")
	}
}

func TestFenceSerializes(t *testing.T) {
	c := runOoO(t, `
main:   li t0, 1
        fence
        li t1, 2
        fence
        li t2, 3
        halt
`, core.Baseline())
	if c.Reg(isa.RegT2) != 3 {
		t.Error("fence program wrong result")
	}
}

func TestRdcycleMonotonic(t *testing.T) {
	c := runOoO(t, `
main:   rdcycle t0
        li  s1, 500
spin:   addi s1, s1, -1
        bne s1, zero, spin
        rdcycle t1
        sltu t2, t0, t1
        halt
`, core.Baseline())
	if c.Reg(isa.RegT2) != 1 {
		t.Errorf("rdcycle must increase: t0=%d t1=%d", c.Reg(isa.RegT0), c.Reg(isa.RegT1))
	}
	// ~500 iterations of a 3-instruction dependent loop: the delta must be
	// at least the loop's trip count.
	if delta := c.Reg(isa.RegT1) - c.Reg(isa.RegT0); delta < 500 {
		t.Errorf("rdcycle delta = %d, implausibly small", delta)
	}
}

func TestInvisiSpecArchitecturallyIdentical(t *testing.T) {
	prog := workload.Random(777, 150)
	differential(t, prog, []core.Policy{core.InvisiSpecSpectre(), core.InvisiSpecFuture()})
}

func TestStatsBreakdownAccountsEveryCycle(t *testing.T) {
	c := runOoO(t, `
        .data
        .org 0x100000
buf:    .space 4096
        .text
main:   li   s0, 0x100000
        li   s1, 512
loop:   ld   t0, (s0)
        add  t1, t0, t0
        addi s0, s0, 8
        addi s1, s1, -1
        bne  s1, zero, loop
        halt
`, core.Baseline())
	s := c.Stats()
	sum := s.CommitCycles + s.MemStallCycles + s.BackendStalls + s.FrontendStalls
	if sum != s.Cycles {
		t.Errorf("breakdown sum %d != cycles %d", sum, s.Cycles)
	}
	if s.Cycles != c.Cycles() {
		t.Errorf("stats cycles %d != core cycles %d", s.Cycles, c.Cycles())
	}
}
