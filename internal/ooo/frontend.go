package ooo

import (
	"nda/internal/cache"
	"nda/internal/isa"
)

// dispatchStage renames instructions from the fetch queue into the ROB,
// issue queue, and load/store queues. Dispatch stalls on resource
// exhaustion and on undecodable fetches: a micro-op whose opcode is unknown
// sits at the head of the queue until a squash discards it, which is why
// phantom branches are not a steering threat (§4.1 of the paper).
func (c *Core) dispatchStage() {
	for budget := c.p.DispatchWidth; budget > 0 && c.fqLen > 0; budget-- {
		s := c.fqAt(0)
		if s.readyAt > c.cycle {
			return
		}
		if !s.valid {
			return // phantom: stalls until the wrong path squashes
		}
		inst := s.inst
		if c.robLen == len(c.rob) || len(c.iq) >= c.p.IQSize ||
			(inst.IsLoad() && len(c.lq) >= c.p.LQSize) ||
			(inst.IsStore() && len(c.sq) >= c.p.SQSize) ||
			len(c.freeList) == 0 {
			return
		}

		e := c.robAlloc()
		e.Seq = s.seq
		e.PC = s.pc
		e.Inst = inst
		e.FetchedAt = s.readyAt - uint64(c.p.FrontEndDepth)
		e.DispatchedAt = c.cycle
		e.Predicted = s.predicted
		e.PredTaken = s.predTaken
		e.PredTarget = s.predTarget
		e.GshCkpt = s.gshCkpt
		e.HasGshCkpt = s.hasGshCkpt
		if s.hasRASCkpt {
			// Copy (not alias) the snapshot: the ring slot's backing array
			// is reused as soon as the slot is, while the entry's
			// checkpoint must survive until retirement or squash.
			s.rasBefore.CopyInto(&e.RASBefore)
		}
		e.HasRASCkpt = s.hasRASCkpt

		// Rename sources before the destination so "add x1, x1, x1" reads
		// the old mapping.
		srcs, n := inst.SrcRegs()
		if n >= 1 && srcs[0] != isa.RegZero {
			e.Src1P = c.rat[srcs[0]]
		}
		if n >= 2 && srcs[1] != isa.RegZero {
			e.Src2P = c.rat[srcs[1]]
		}
		if rd, ok := inst.WritesReg(); ok {
			p := c.freeList[len(c.freeList)-1]
			c.freeList = c.freeList[:len(c.freeList)-1]
			e.PrevP = c.rat[rd]
			c.rat[rd] = p
			e.DestP = p
			c.regReady[p] = false
		}

		e.Node.Class = isa.ClassOf(inst)
		e.Node.UnderGuard = c.unresolvedBranches > 0
		if e.Node.Class == isa.ClassBranch {
			c.unresolvedBranches++
		}

		e.InIQ = true
		//ndavet:allow alloclint:op queue append; backing arrays reach steady capacity during warm-up (bench-gated 0 B/op)
		c.iq = append(c.iq, e.Slot)
		if inst.IsLoad() {
			//ndavet:allow alloclint:op queue append; backing arrays reach steady capacity during warm-up
			c.lq = append(c.lq, e.Slot)
		}
		if inst.IsStore() {
			//ndavet:allow alloclint:op queue append; backing arrays reach steady capacity during warm-up
			c.sq = append(c.sq, e.Slot)
		}
		if inst.Op == isa.OpFence {
			c.fencesInFlight++
		}
		c.fqPop()
		c.progress = true
	}
}

// fetchStage fetches and pre-decodes up to FetchWidth instructions along
// the predicted path, charging the I-cache per line. Conditional branches
// are predicted by gshare; indirect jumps by the BTB (or the RAS for
// returns); on a BTB miss — or in a SpecOff window, for every control
// transfer — fetch stalls until the branch resolves, as the paper's ~16
// cycle BTB-miss sequence describes (Fig. 5).
func (c *Core) fetchStage() {
	if c.fetchStall > c.cycle || c.fetchWait || c.fetchDead || c.halted {
		return
	}
	lineMask := ^uint64(c.hier.LineBytes() - 1)
	pc := c.fetchPC

	for budget := c.p.FetchWidth; budget > 0 && c.fqLen < c.p.FetchQSize; budget-- {
		if line := pc & lineMask; line != c.lastFetchLine {
			res := c.hier.Inst(pc)
			c.lastFetchLine = line
			c.progress = true
			if res.Level != cache.LevelL1 {
				c.fetchStall = c.cycle + uint64(res.Latency)
				c.fetchPC = pc
				return
			}
		}

		inst, ok := c.prog.At(pc)
		s := c.fqPush()
		s.seq = c.nextSeq
		s.pc = pc
		s.inst = inst
		s.valid = ok && inst.Op.Valid()
		s.readyAt = c.cycle + uint64(c.p.FrontEndDepth)
		c.nextSeq++
		c.progress = true

		if !s.valid {
			// Fetch ran off the rails (wrong-path into data or past the
			// text segment). Leave the undecodable slot enqueued — it
			// blocks dispatch — and stop fetching until a redirect.
			c.fetchDead = true
			c.fetchPC = pc
			return
		}

		next := pc + isa.InstBytes
		wait := false
		switch {
		case inst.IsCondBranch():
			if c.noSpec {
				wait = true
			} else {
				taken, ckpt := c.gsh.Predict(pc)
				s.predicted = true
				s.predTaken = taken
				s.gshCkpt = ckpt
				s.hasGshCkpt = true
				if taken {
					s.predTarget = uint64(inst.Imm)
				} else {
					s.predTarget = next
				}
				next = s.predTarget
			}

		case inst.Op == isa.OpJal:
			if inst.IsCall() {
				c.ras.SnapshotInto(&s.rasBefore)
				s.hasRASCkpt = true
				c.ras.Push(next)
			}
			s.predicted = true
			s.predTaken = true
			s.predTarget = uint64(inst.Imm)
			next = s.predTarget

		case inst.Op == isa.OpJalr:
			c.ras.SnapshotInto(&s.rasBefore)
			s.hasRASCkpt = true
			switch {
			case c.noSpec:
				wait = true
			case inst.IsReturn():
				if tgt, ok := c.ras.Pop(); ok {
					s.predicted = true
					s.predTaken = true
					s.predTarget = tgt
					next = tgt
				} else {
					wait = true
				}
			default:
				if inst.IsCall() {
					c.ras.Push(next)
				}
				if tgt, ok := c.btb.Lookup(pc); ok {
					s.predicted = true
					s.predTaken = true
					s.predTarget = tgt
					next = tgt
				} else {
					wait = true
				}
			}

		case inst.Op == isa.OpHalt:
			// Stop fetching past a halt; if it was wrong-path, the squash
			// redirects fetch anyway.
			c.fetchDead = true
			c.fetchPC = pc + isa.InstBytes
			return

		case inst.Op == isa.OpSpecOff:
			// SpecOff serializes the front end: nothing is fetched past it
			// until it retires (Listing 4 of the paper needs the very next
			// instruction to already run under the no-speculation regime).
			// retire() resumes fetch; a squash discards the stall.
			c.fetchDead = true
			c.fetchPC = pc + isa.InstBytes
			return
		}

		if wait {
			c.fetchWait = true
			c.fetchWaitSq = s.seq
			c.fetchPC = next
			return
		}
		pc = next
	}
	c.fetchPC = pc
}
