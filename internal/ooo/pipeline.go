package ooo

import (
	"fmt"

	"nda/internal/cache"
	"nda/internal/core"
	"nda/internal/isa"
)

// Step advances the simulation by one cycle. Stages run back-to-front so
// that results flow between stages with realistic single-cycle visibility:
// completions and broadcasts happen before commit, commit before issue, and
// newly fetched instructions cannot dispatch until FrontEndDepth cycles
// after fetch.
//
//ndavet:hotpath
func (c *Core) Step() error {
	c.cycle++
	c.progress = false

	completed := c.completeExecution()
	c.recomputeSafety()
	c.broadcastStage(completed)
	if err := c.commitStage(); err != nil {
		return err
	}
	if c.halted {
		c.checkInvariants()
		return nil
	}
	c.issueStage()
	c.dispatchStage()
	c.fetchStage()
	c.checkInvariants()

	if c.cycle-c.lastCommit > c.p.DeadlockCycles {
		return c.deadlockErr()
	}
	return nil
}

// deadlockErr builds the no-commit diagnostic. Step calls it only inside
// its error return, so the formatting stays off the measured hot path
// (alloclint's cold-span exemption covers return statements of
// error-returning functions).
func (c *Core) deadlockErr() error {
	head := "empty"
	if c.robLen > 0 {
		e := c.robAt(0)
		head = fmt.Sprintf("%v @%#x issued=%v completed=%v bcast=%v fault=%v",
			e.Inst, e.PC, e.Issued, e.Node.Completed, e.Node.Broadcast, e.Fault)
	}
	return fmt.Errorf("ooo: no commit for %d cycles at cycle %d (head: %s)", c.p.DeadlockCycles, c.cycle, head)
}

func (c *Core) readP(p int) uint64 {
	if p == noPReg {
		return 0
	}
	return c.regVal[p]
}

func (c *Core) pReady(p int) bool {
	if p == noPReg {
		return true
	}
	return c.regReady[p]
}

// ---- completion ----

// completeExecution finishes every issued entry whose execution latency
// elapsed this cycle: results are written to the physical register file
// (without marking it ready — that is the broadcast's job), branches
// resolve (possibly squashing), and store addresses resolve (possibly
// detecting memory-order violations). Returns the completed entries in age
// order for broadcast arbitration.
func (c *Core) completeExecution() []*Entry {
	// Nothing in execution, or nothing due yet: skip the ROB scan.
	// nextCompleteAt may be stale-low after a squash (costing one wasted
	// scan), never stale-high.
	if c.execOutstanding == 0 || c.nextCompleteAt > c.cycle {
		return nil
	}
	done := c.doneBuf[:0]
	nextDue := ^uint64(0)
	for i := 0; i < c.robLen; i++ {
		e := c.robAt(i)
		if !e.Issued || e.Node.Completed {
			continue
		}
		if e.CompleteAt > c.cycle {
			if e.CompleteAt < nextDue {
				nextDue = e.CompleteAt
			}
			continue
		}
		e.Node.Completed = true
		c.execOutstanding--
		if e.DestP != noPReg {
			c.regVal[e.DestP] = e.Result
			c.pendingBcast++
		} else {
			// Nothing to propagate: destination-less micro-ops are
			// trivially "broadcast".
			e.Node.Broadcast = true
		}
		if e.Inst.Op == isa.OpFence {
			c.fencesInFlight--
		}
		if e.Inflight {
			e.Inflight = false
			if e.OffChip {
				c.offChipLoads--
			}
		}

		switch {
		case e.Inst.IsCondBranch() || e.Inst.Op == isa.OpJalr:
			c.resolveBranch(e)
			// A squash inside resolveBranch may have removed younger
			// completed-this-cycle entries; the robLen bound shrinks and
			// iteration remains valid because only younger entries die.
		case e.Inst.Op == isa.OpJal:
			// Direct jump: fetch already followed it; nothing to resolve.
			e.Node.GuardResolved = true
		case e.Inst.IsStore():
			c.resolveStore(e)
		}

		//ndavet:allow alloclint:op appends into doneBuf, preallocated to ROBSize at reset; never grows
		done = append(done, e)
	}
	c.nextCompleteAt = nextDue
	if len(done) > 0 {
		c.progress = true
	}
	return done
}

// resolveBranch trains the predictors with the branch's actual outcome,
// resumes a waiting front end, and squashes on misprediction. BTB updates
// happen here — at execution, on speculative and wrong paths alike — and
// are never rolled back: the paper's §3 covert channel.
func (c *Core) resolveBranch(e *Entry) {
	e.Node.GuardResolved = true
	if e.Node.Class == isa.ClassBranch {
		if c.unresolvedBranches > 0 {
			c.unresolvedBranches--
		}
	}
	c.stats.BranchesResolved++

	if e.Inst.IsCondBranch() && e.HasGshCkpt {
		c.gsh.Update(e.PC, e.Taken, e.GshCkpt)
	}
	if e.Inst.Op == isa.OpJalr && c.p.SpeculativeBTBUpdate {
		c.btb.Update(e.PC, e.Target)
		c.traceChannel(ChanBTBUpdate, e.PC, e.Target)
	}

	if !e.Predicted {
		// The front end stalled waiting for this branch (BTB miss,
		// RAS underflow, or SpecOff mode): resume, no squash.
		if c.fetchWait && c.fetchWaitSq == e.Seq {
			c.fetchWait = false
			c.fetchDead = false
			c.fetchPC = e.Target
			if c.fetchStall < c.cycle+1 {
				c.fetchStall = c.cycle + 1
			}
		}
		return
	}

	mispredicted := e.PredTaken != e.Taken || (e.Taken && e.PredTarget != e.Target)
	if !mispredicted {
		return
	}
	c.stats.Mispredicts++
	next := e.Target
	if !e.Taken {
		next = e.PC + isa.InstBytes
	}
	c.squashFrom(e.Seq+1, next)
	if e.Inst.IsCondBranch() && e.HasGshCkpt {
		// The squash rewound history to just after this branch's
		// (wrong) predicted bit; replace it with the actual outcome.
		c.gsh.Restore(e.GshCkpt, e.Taken)
	}
}

// resolveStore publishes a store's now-known address: younger loads that
// already executed with stale data are squashed (memory-order violation),
// and surviving loads drop their bypass guards on this store.
func (c *Core) resolveStore(e *Entry) {
	e.AddrKnown = true
	e.Node.GuardResolved = true

	// Violation scan: the eldest younger load that read overlapping data
	// from anywhere older than this store observed a stale value.
	var victim *Entry
	size := e.Inst.MemBytes()
	for _, li := range c.lq {
		ld := c.entryAt(li)
		if ld.Seq <= e.Seq || !ld.Issued || !ld.AddrKnown {
			continue
		}
		if overlaps(e.Addr, size, ld.Addr, ld.Inst.MemBytes()) && ld.ForwardSeq < e.Seq {
			if victim == nil || ld.Seq < victim.Seq {
				victim = ld
			}
		}
	}
	if victim != nil {
		c.stats.OrderViolations++
		c.squashFrom(victim.Seq, victim.PC)
	}
	// Clear the bypass guards this store held on surviving loads. This must
	// happen even on the violation path: the store resolves exactly once,
	// and loads older than the squash point live on.
	for _, li := range c.lq {
		ld := c.entryAt(li)
		for i, s := range ld.bypassed {
			if s == e.Slot {
				//ndavet:allow alloclint:op removal via append to a prefix reslice; the result is shorter than the original, so no growth
				ld.bypassed = append(ld.bypassed[:i], ld.bypassed[i+1:]...)
				ld.Node.BypassGuards--
				break
			}
		}
	}
}

// ---- safety & broadcast ----

// recomputeSafety runs the NDA resolve-walk over the ROB and applies
// InvisiSpec-Spectre exposures for loads that left the speculative shadow.
func (c *Core) recomputeSafety() {
	if !c.policy.GuardBranches {
		return
	}
	nodes := c.nodeBuf[:0]
	for i := 0; i < c.robLen; i++ {
		//ndavet:allow alloclint:op appends into nodeBuf, preallocated to ROBSize at reset; never grows
		nodes = append(nodes, &c.robAt(i).Node)
	}
	c.policy.RecomputeGuards(nodes)

	if c.policy.LoadVisibility == core.InvisibleUntilResolved {
		for i := 0; i < c.robLen; i++ {
			e := c.robAt(i)
			if e.Invisible && !e.Exposed && e.Node.Completed && !e.Node.UnderGuard {
				c.hier.InstallData(e.Addr)
				c.traceChannel(ChanDCacheExpose, e.Addr, 0)
				e.Exposed = true
				c.stats.Exposures++
				c.progress = true
			}
		}
	}
}

// broadcastStage arbitrates the tag broadcast ports: instructions completing
// this cycle have priority; deferred (completed earlier, newly safe)
// instructions compete for the remaining ports in age order (§5.1).
func (c *Core) broadcastStage(completedNow []*Entry) {
	if c.pendingBcast == 0 {
		return
	}
	ports := c.p.BroadcastPorts

	for _, e := range completedNow {
		if ports == 0 {
			break
		}
		if e.DestP == noPReg || e.Node.Broadcast {
			continue
		}
		if c.policy.MayBroadcast(&e.Node, c.atHead(e)) {
			c.doBroadcast(e)
			ports--
		}
	}
	if ports == 0 || c.pendingBcast == 0 {
		return
	}
	for i := 0; i < c.robLen && ports > 0; i++ {
		e := c.robAt(i)
		if e.DestP == noPReg || !e.Node.Completed || e.Node.Broadcast {
			continue
		}
		if !c.policy.MayBroadcast(&e.Node, c.atHead(e)) {
			continue
		}
		if !e.HasSafeSince {
			e.HasSafeSince = true
			e.SafeSince = c.cycle
			c.progress = true
		}
		if c.cycle < e.SafeSince+uint64(c.policy.ExtraBroadcastDelay) {
			continue
		}
		c.doBroadcast(e)
		ports--
	}
}

func (c *Core) doBroadcast(e *Entry) {
	c.regReady[e.DestP] = true
	e.Node.Broadcast = true
	e.BcastCycle = c.cycle
	c.pendingBcast--
	c.progress = true
	if c.cycle > e.CompleteAt {
		c.stats.DeferredBroadcasts++
		c.stats.DeferralCycles += c.cycle - e.CompleteAt
	}
}

func (c *Core) atHead(e *Entry) bool {
	return c.robLen > 0 && c.robAt(0) == e
}

// ---- commit ----

func (c *Core) commitStage() error {
	committed, err := c.commitInsts()
	// The per-cycle stall accounting. skipTo replicates the committed==0
	// arm for bulk-skipped dead cycles; the two must stay in lockstep.
	switch {
	case committed > 0:
		c.stats.CommitCycles++
		c.lastCommit = c.cycle
		c.progress = true
	case c.robLen == 0:
		c.stats.FrontendStalls++
	case c.robAt(0).isMem() && !c.robAt(0).Node.Completed:
		c.stats.MemStallCycles++
	default:
		c.stats.BackendStalls++
	}
	c.stats.Cycles++
	c.stats.Committed += uint64(committed)
	if c.offChipLoads > 0 {
		c.stats.MLPSum += uint64(c.offChipLoads)
		c.stats.MLPCycles++
	}
	return err
}

// commitInsts retires up to CommitWidth ready instructions from the ROB
// head and reports how many retired (commitStage wraps it with the stall
// accounting the old deferred closure used to do).
func (c *Core) commitInsts() (int, error) {
	committed := 0

	if c.commitValidate > c.cycle {
		return committed, nil // InvisiSpec validation in progress blocks retirement
	}

	for budget := c.p.CommitWidth; budget > 0 && c.robLen > 0; budget-- {
		e := c.robAt(0)
		if !e.Node.Completed {
			return committed, nil
		}

		// A completed faulting head delivers its fault now, before any
		// wait for its own tag broadcast and before InvisiSpec exposure:
		// the fault squashes the dependents instead of waking them, and a
		// squashed invisible load is never exposed or validated. Waiting
		// on an NDA-deferred broadcast first would invert that order —
		// the eldest-unretired wake-up would land a cycle before the
		// squash, giving a direct dependent of the faulting load one
		// cycle to issue and fill the cache.
		if e.Fault != isa.FaultNone {
			if c.TraceCommit != nil {
				//ndavet:allow alloclint:call trace hook; nil in measured runs
				c.TraceCommit(e.PC, e.Inst)
			}
			c.retired++
			committed++
			c.stats.Faults++
			return committed, c.deliverFault(e)
		}

		if e.DestP != noPReg && !e.Node.Broadcast {
			return committed, nil // waiting for a (possibly NDA-deferred) broadcast
		}
		if c.policy.LoadRestriction && e.Node.Class == isa.ClassLoad &&
			e.DestP != noPReg && e.BcastCycle == c.cycle {
			// Load restriction: the head-of-ROB wake-up and the retirement
			// are sequential commit-stage actions — the load retires the
			// cycle after it wakes its dependents (§5.3).
			return committed, nil
		}

		// InvisiSpec exposure/validation at the retirement safe point.
		if e.Invisible && !e.Exposed {
			c.hier.InstallData(e.Addr)
			c.traceChannel(ChanDCacheExpose, e.Addr, 0)
			e.Exposed = true
			c.stats.Exposures++
			c.progress = true
			if !e.WasPresent {
				lat := uint64(c.hier.Params().L1D.HitLatency)
				c.commitValidate = c.cycle + lat
				c.stats.ValidationStall += lat
				return committed, nil // retire after validation completes
			}
		}

		if err := c.retire(e); err != nil {
			return committed, err
		}
		committed++
		if c.halted {
			return committed, nil
		}
	}
	return committed, nil
}

// retire commits the head entry's architectural side effects and frees it.
func (c *Core) retire(e *Entry) error {
	if c.TraceCommit != nil {
		//ndavet:allow alloclint:call trace hook; nil in measured runs
		c.TraceCommit(e.PC, e.Inst)
	}
	if c.TraceRetire != nil {
		ev := TraceEvent{
			Seq: e.Seq, PC: e.PC, Inst: e.Inst,
			Fetch: e.FetchedAt, Dispatch: e.DispatchedAt,
			Issue: e.IssuedAt, Complete: e.CompleteAt, Retire: c.cycle,
		}
		if e.DestP != noPReg {
			ev.Broadcast = e.BcastCycle
		}
		//ndavet:allow alloclint:call trace hook; nil in measured runs
		c.TraceRetire(ev)
	}
	inst := e.Inst
	switch {
	case inst.IsStore():
		c.mem.Write(e.Addr, inst.MemBytes(), c.readP(e.Src2P))
		c.hier.Data(e.Addr) // timing side effect of the store's fill
		c.traceChannel(ChanDCacheFill, e.Addr, 0)
		if len(c.sq) > 0 && c.sq[0] == e.Slot {
			c.sq = popFront(c.sq)
		}
	case inst.IsLoad():
		if len(c.lq) > 0 && c.lq[0] == e.Slot {
			c.lq = popFront(c.lq)
		}
	case inst.Op == isa.OpWrmsr:
		c.msr[uint16(inst.Imm)] = c.readP(e.Src1P)
	case inst.Op == isa.OpSpecOff:
		c.noSpec = true
		// The front end stopped at this instruction; resume it now that
		// the no-speculation window is architecturally active.
		if c.fetchDead {
			c.fetchDead = false
			c.fetchPC = e.PC + isa.InstBytes
			if c.fetchStall < c.cycle+1 {
				c.fetchStall = c.cycle + 1
			}
			c.lastFetchLine = ^uint64(0)
		}
	case inst.Op == isa.OpSpecOn:
		c.noSpec = false
	case inst.Op == isa.OpJalr && !c.p.SpeculativeBTBUpdate:
		c.btb.Update(e.PC, e.Target)
		c.traceChannel(ChanBTBUpdate, e.PC, e.Target)
	case inst.Op == isa.OpInvalid:
		return fmt.Errorf("ooo: committed invalid instruction at pc=%#x", e.PC)
	case inst.Op == isa.OpHalt:
		c.halted = true
	}

	if e.DestP != noPReg && e.PrevP != noPReg {
		//ndavet:allow alloclint:op free-list append; the list never exceeds PhysRegs, whose backing array is allocated at reset
		c.freeList = append(c.freeList, e.PrevP)
	}
	if e.Issued {
		c.stats.DispatchToIssueSum += e.IssuedAt - e.DispatchedAt
		c.stats.DispatchToIssueCount++
	}
	c.retired++
	e.reset()
	c.robHead = (c.robHead + 1) % len(c.rob)
	c.robLen--
	return nil
}

// deliverFault takes the architectural fault at the head of the ROB:
// everything from the faulting instruction on is squashed and fetch vectors
// to the trap handler. Without a handler the fault is fatal.
func (c *Core) deliverFault(e *Entry) error {
	handler := c.msr[isa.MSRTrapHandler]
	if handler == 0 {
		return fmt.Errorf("ooo: unhandled fault %v at pc=%#x addr=%#x", e.Fault, e.PC, e.Addr)
	}
	c.msr[isa.MSRTrapCause] = uint64(e.Fault)
	c.msr[isa.MSRTrapAddr] = e.Addr
	if e.Inst.Op == isa.OpRdmsr || e.Inst.Op == isa.OpWrmsr {
		c.msr[isa.MSRTrapAddr] = uint64(uint16(e.Inst.Imm))
	}
	c.squashFrom(e.Seq, handler)
	return nil
}

// popFront drops q's head in place, keeping the slice anchored to the start
// of its backing array so the queue's fixed capacity is never lost to
// re-slicing (the queues are at most 32 entries; the copy is cheaper than a
// ring's index arithmetic on every scan).
func popFront(q []int32) []int32 {
	copy(q, q[1:])
	return q[:len(q)-1]
}

// ---- squash ----

// squashFrom removes every instruction with sequence number >= seq from the
// pipeline — fetch queue and ROB — restoring the rename table, free list,
// and predictor checkpoints, then redirects fetch to newPC.
func (c *Core) squashFrom(seq, newPC uint64) {
	c.stats.Squashes++
	c.progress = true

	// Fetch queue slots are the youngest instructions; rewind their
	// predictor checkpoints youngest-first, then drop them all (their seqs
	// are always >= any ROB seq, and squash points never land inside the
	// fetch queue's seq range with entries to keep). Slot seqs ascend with
	// queue position, so dropping is a tail truncation of the ring.
	for i := c.fqLen - 1; i >= 0; i-- {
		s := c.fqAt(i)
		if s.seq < seq {
			continue
		}
		if s.hasGshCkpt {
			c.gsh.SetHistory(s.gshCkpt)
		}
		if s.hasRASCkpt {
			c.ras.Restore(s.rasBefore)
		}
	}
	for c.fqLen > 0 && c.fqAt(c.fqLen-1).seq >= seq {
		c.fqLen--
	}

	// Drop squashed entries from the schedulers before the ROB walk resets
	// them (reset zeroes Seq, which the queue filter keys on).
	c.filterQueues(seq)

	for c.robLen > 0 {
		e := c.robAt(c.robLen - 1)
		if e.Seq < seq {
			break
		}
		if e.DestP != noPReg {
			rd, _ := e.Inst.WritesReg()
			c.rat[rd] = e.PrevP
			//ndavet:allow alloclint:op free-list append; the list never exceeds PhysRegs, whose backing array is allocated at reset
			c.freeList = append(c.freeList, e.DestP)
			if e.Node.Completed && !e.Node.Broadcast {
				c.pendingBcast--
			}
		}
		if e.Issued && !e.Node.Completed {
			c.execOutstanding--
		}
		if e.Inst.Op == isa.OpFence && !e.Node.Completed {
			c.fencesInFlight--
		}
		if e.HasGshCkpt {
			c.gsh.SetHistory(e.GshCkpt)
		}
		if e.HasRASCkpt {
			c.ras.Restore(e.RASBefore)
		}
		if e.Node.Class == isa.ClassBranch && !e.Node.GuardResolved && c.unresolvedBranches > 0 {
			c.unresolvedBranches--
		}
		if e.Inflight && e.OffChip {
			c.offChipLoads--
		}
		c.stats.SquashedInsts++
		e.reset()
		c.robLen--
	}

	if c.fetchWait && c.fetchWaitSq >= seq {
		c.fetchWait = false
	}
	c.fetchDead = false
	c.fetchPC = newPC
	if s := c.cycle + uint64(c.p.RedirectPenalty); s > c.fetchStall {
		c.fetchStall = s
	}
	c.lastFetchLine = ^uint64(0)
}

func (c *Core) filterQueues(seq uint64) {
	c.iq = c.filterQueue(c.iq, seq)
	c.lq = c.filterQueue(c.lq, seq)
	c.sq = c.filterQueue(c.sq, seq)
}

// filterQueue drops the slots at or above the squash point. A method
// rather than a closure inside filterQueues so the squash path stays
// visible to the static hot-path walk.
func (c *Core) filterQueue(q []int32, seq uint64) []int32 {
	kept := q[:0]
	for _, si := range q {
		if c.rob[si].Seq < seq {
			//ndavet:allow alloclint:op compaction into q[:0] appends at most len(q) elements, so it can never grow the backing array
			kept = append(kept, si)
		}
	}
	return kept
}

// ---- issue & execute ----

func (c *Core) issueStage() {
	budget := c.p.IssueWidth
	issued := 0
	anyRemoved := false
	for i := 0; i < len(c.iq) && budget > 0; i++ {
		e := c.entryAt(c.iq[i])
		if e.RetryAt > c.cycle {
			continue
		}
		if !c.operandsReady(e) {
			continue
		}
		if c.serializeBlocked(e) {
			continue
		}
		if !c.execute(e) {
			// Replay scheduled: RetryAt moved, so the cycle is not dead
			// even though nothing issued.
			c.progress = true
			continue
		}
		e.Issued = true
		e.IssuedAt = c.cycle
		e.InIQ = false
		c.execOutstanding++
		if e.CompleteAt < c.nextCompleteAt || c.execOutstanding == 1 {
			c.nextCompleteAt = e.CompleteAt
		}
		c.iq[i] = -1
		anyRemoved = true
		budget--
		issued++
	}
	if anyRemoved {
		kept := c.iq[:0]
		for _, si := range c.iq {
			if si >= 0 {
				//ndavet:allow alloclint:op compaction into iq[:0] appends at most len(iq) elements, so it can never grow the backing array
				kept = append(kept, si)
			}
		}
		c.iq = kept
	}
	if issued > 0 {
		c.stats.ILPSum += uint64(issued)
		c.stats.ILPCycles++
		c.progress = true
	}
}

// operandsReady checks source readiness. Stores only need their address
// base to issue address generation; the data register is read at forwarding
// time and at commit.
func (c *Core) operandsReady(e *Entry) bool {
	if e.Inst.IsStore() {
		return c.pReady(e.Src1P)
	}
	return c.pReady(e.Src1P) && c.pReady(e.Src2P)
}

// serializeBlocked enforces FENCE (no younger instruction may issue until
// the fence completes; the fence itself waits for all older instructions to
// complete) and RDCYCLE (waits for all older instructions to complete, like
// rdtscp's pseudo-serialization).
func (c *Core) serializeBlocked(e *Entry) bool {
	switch e.Inst.Op {
	case isa.OpFence, isa.OpRdcycle, isa.OpSpecOff, isa.OpSpecOn, isa.OpHalt:
		return !c.oldersCompleted(e)
	case isa.OpRdmsr:
		// WRMSR takes architectural effect at commit, so an MSR read must
		// wait for older in-flight writes to the same MSR to drain. It may
		// still issue speculatively otherwise — the LazyFP/v3a leak path.
		if c.olderMSRWritePending(e) {
			return true
		}
	}
	return c.olderFencePending(e)
}

// olderMSRWritePending reports whether an older un-retired WRMSR targets the
// same MSR as the read e.
func (c *Core) olderMSRWritePending(e *Entry) bool {
	for i := 0; i < c.robLen; i++ {
		o := c.robAt(i)
		if o.Seq >= e.Seq {
			return false
		}
		if o.Inst.Op == isa.OpWrmsr && o.Inst.Imm == e.Inst.Imm {
			return true
		}
	}
	return false
}

func (c *Core) oldersCompleted(e *Entry) bool {
	for i := 0; i < c.robLen; i++ {
		o := c.robAt(i)
		if o.Seq >= e.Seq {
			return true
		}
		if !o.Node.Completed {
			return false
		}
	}
	return true
}

func (c *Core) olderFencePending(e *Entry) bool {
	if c.fencesInFlight == 0 {
		// No un-completed FENCE anywhere in the ROB — the common case, and
		// the reason this check is a counter test instead of a scan per
		// issue candidate per cycle.
		return false
	}
	for i := 0; i < c.robLen; i++ {
		o := c.robAt(i)
		if o.Seq >= e.Seq {
			return false
		}
		if o.Inst.Op == isa.OpFence && !o.Node.Completed {
			return true
		}
	}
	return false
}

// execute begins execution of e this cycle: operands are read, the result
// (and any fault) is computed, and CompleteAt is scheduled. Loads perform
// their forwarding scan and cache access here — wrong-path fills included.
// Returns false if the instruction must replay (store-to-load conflict not
// yet forwardable).
func (c *Core) execute(e *Entry) bool {
	inst := e.Inst
	lat := c.p.execLatency(inst.Op)

	switch {
	case isa.IsALU(inst.Op):
		a := c.readP(e.Src1P)
		if inst.Op == isa.OpLui {
			a = 0
		}
		e.Result = isa.EvalALU(inst.Op, a, isa.ALUOperandB(inst, c.readP(e.Src2P)))

	case inst.IsCondBranch():
		e.Taken = isa.EvalBranch(inst.Op, c.readP(e.Src1P), c.readP(e.Src2P))
		if e.Taken {
			e.Target = uint64(inst.Imm)
		} else {
			e.Target = e.PC + isa.InstBytes
		}

	case inst.Op == isa.OpJal:
		e.Result = e.PC + isa.InstBytes
		e.Taken = true
		e.Target = uint64(inst.Imm)

	case inst.Op == isa.OpJalr:
		e.Result = e.PC + isa.InstBytes
		e.Taken = true
		e.Target = (c.readP(e.Src1P) + uint64(inst.Imm)) &^ 1

	case inst.IsLoad():
		return c.executeLoad(e)

	case inst.IsStore():
		e.Addr = c.readP(e.Src1P) + uint64(inst.Imm)
		if c.userMode && !c.mem.UserAccessOK(e.Addr, inst.MemBytes()) {
			e.Fault = isa.FaultKernelStore
		}

	case inst.Op == isa.OpRdcycle:
		e.Result = c.cycle

	case inst.Op == isa.OpRdmsr:
		msr := uint16(inst.Imm)
		if msr >= isa.NumMSR || (c.userMode && isa.PrivilegedMSR(msr)) {
			e.Fault = isa.FaultPrivilegeMSR
			if c.p.MeltdownVulnerable && msr < isa.NumMSR {
				e.Result = c.msr[msr] // the LazyFP/v3a flaw: data flows anyway
			}
		} else {
			e.Result = c.msr[msr]
		}

	case inst.Op == isa.OpWrmsr:
		msr := uint16(inst.Imm)
		if msr >= isa.NumMSR || (c.userMode && isa.PrivilegedMSR(msr)) {
			e.Fault = isa.FaultPrivilegeMSR
		}

	case inst.Op == isa.OpClflush:
		e.Addr = c.readP(e.Src1P) + uint64(inst.Imm)
		c.hier.Flush(e.Addr)
		c.traceChannel(ChanDCacheFlush, e.Addr, 0)

	case inst.Op == isa.OpFence, inst.Op == isa.OpNop, inst.Op == isa.OpHalt,
		inst.Op == isa.OpSpecOff, inst.Op == isa.OpSpecOn:
		// Nothing to compute.
	}

	e.CompleteAt = c.cycle + uint64(lat)
	return true
}

// executeLoad performs address generation, the store-queue scan
// (forwarding, replay, or speculative bypass), the protection check, and
// the cache access.
func (c *Core) executeLoad(e *Entry) bool {
	inst := e.Inst
	e.Addr = c.readP(e.Src1P) + uint64(inst.Imm)
	e.AddrKnown = true
	size := inst.MemBytes()

	// Scan older stores youngest-first. The first address-known overlap
	// decides: full coverage with ready data forwards; anything else
	// replays until the store drains. Address-unknown older stores are
	// speculatively bypassed and recorded.
	var fwd *Entry
	e.bypassed = e.bypassed[:0]
	for i := len(c.sq) - 1; i >= 0; i-- {
		s := c.entryAt(c.sq[i])
		if s.Seq > e.Seq {
			continue
		}
		if !s.Issued || !s.AddrKnown {
			//ndavet:allow alloclint:op the bypass set is bounded by store-queue length; backing arrays reach steady capacity at warm-up
			e.bypassed = append(e.bypassed, s.Slot)
			continue
		}
		ssize := s.Inst.MemBytes()
		if !overlaps(s.Addr, ssize, e.Addr, size) {
			continue
		}
		if covers(s.Addr, ssize, e.Addr, size) && c.pReady(s.Src2P) {
			fwd = s
		} else {
			// Partial overlap or data not yet propagatable: replay.
			e.bypassed = e.bypassed[:0]
			e.RetryAt = c.cycle + 2
			c.stats.LoadReplays++
			return false
		}
		break
	}

	e.Node.BypassGuards = len(e.bypassed)
	if len(e.bypassed) > 0 {
		c.stats.BypassedLoads++
	}

	if c.userMode && !c.mem.UserAccessOK(e.Addr, size) {
		e.Fault = isa.FaultKernelLoad
	}

	if fwd != nil {
		c.stats.LoadForwards++
		e.ForwardSeq = fwd.Seq
		val := c.readP(fwd.Src2P) >> (8 * (e.Addr - fwd.Addr))
		e.Result = truncate(val, size)
		e.CompleteAt = c.cycle + uint64(c.p.AGULatency+c.p.ForwardLatency)
	} else {
		var res cache.Result
		invisible := false
		switch c.policy.LoadVisibility {
		case core.InvisibleUntilResolved:
			// InvisiSpec-Spectre: a load is speculative iff some OLDER
			// branch is unresolved; younger branches are irrelevant.
			invisible = c.olderUnresolvedBranch(e)
		case core.InvisibleUntilRetire:
			invisible = true
		}
		if invisible {
			res = c.hier.DataNoInstall(e.Addr)
			e.Invisible = true
			e.WasPresent = res.Level == cache.LevelL1
			c.stats.InvisibleLoads++
		} else {
			res = c.hier.Data(e.Addr)
			c.traceChannel(ChanDCacheFill, e.Addr, 0)
		}
		e.Result = truncate(c.mem.Read(e.Addr, size), size)
		e.CompleteAt = c.cycle + uint64(c.p.AGULatency+res.Latency)
		if res.OffChip() {
			e.OffChip = true
			c.offChipLoads++
		}
		e.Inflight = true
	}

	if e.Fault != isa.FaultNone && !c.p.MeltdownVulnerable {
		e.Result = 0 // a fixed core zeroes the faulting load's data
	}
	return true
}

// olderUnresolvedBranch reports whether a branch older than e has not yet
// resolved its direction and target.
func (c *Core) olderUnresolvedBranch(e *Entry) bool {
	if c.unresolvedBranches == 0 {
		return false
	}
	for i := 0; i < c.robLen; i++ {
		o := c.robAt(i)
		if o.Seq >= e.Seq {
			return false
		}
		if o.Node.Class == isa.ClassBranch && !o.Node.GuardResolved {
			return true
		}
	}
	return false
}

func truncate(v uint64, size int) uint64 {
	switch size {
	case 1:
		return v & 0xFF
	case 4:
		return v & 0xFFFFFFFF
	}
	return v
}
