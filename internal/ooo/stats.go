package ooo

// Stats aggregates everything the paper's evaluation reports. Counters are
// reset by Core.ResetStats at the end of a warm-up window, so a measurement
// covers exactly the SMARTS-style measurement interval.
type Stats struct {
	Cycles    uint64
	Committed uint64

	// Cycle breakdown (Fig. 9a). Every simulated cycle lands in exactly
	// one bucket:
	//   CommitCycles   — at least one instruction retired;
	//   MemStallCycles — no retirement and the ROB head is an incomplete
	//                    memory operation;
	//   BackendStalls  — no retirement, ROB non-empty, head not an
	//                    incomplete memory op (includes cycles where a
	//                    completed head is waiting for a deferred NDA
	//                    broadcast);
	//   FrontendStalls — no retirement and the ROB is empty (fetch refill
	//                    and squash recovery).
	CommitCycles   uint64
	MemStallCycles uint64
	BackendStalls  uint64
	FrontendStalls uint64

	// MLP (Fig. 9b): average outstanding off-chip misses over cycles with
	// at least one outstanding, after Chou et al.
	MLPSum    uint64
	MLPCycles uint64

	// ILP (Fig. 9c): average instructions entering execution per cycle
	// over cycles with at least one issue.
	ILPSum    uint64
	ILPCycles uint64

	// Dispatch→issue latency (Fig. 9d), accumulated at commit.
	DispatchToIssueSum   uint64
	DispatchToIssueCount uint64

	// Broadcast accounting: how many broadcasts were deferred past
	// completion by NDA, and the total deferral (completion → broadcast).
	DeferredBroadcasts uint64
	DeferralCycles     uint64

	// Speculation accounting.
	BranchesResolved uint64
	Mispredicts      uint64
	Squashes         uint64
	SquashedInsts    uint64
	OrderViolations  uint64
	LoadForwards     uint64
	LoadReplays      uint64
	BypassedLoads    uint64 // loads that executed past ≥1 unresolved store address
	Faults           uint64

	// InvisiSpec accounting.
	InvisibleLoads  uint64 // loads whose fill was hidden at access time
	Exposures       uint64 // hidden fills later installed at the safe point
	ValidationStall uint64 // commit cycles spent validating invisible loads
}

// CPI returns cycles per committed instruction.
func (s *Stats) CPI() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Committed)
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// MLP returns the average outstanding off-chip misses over cycles with at
// least one outstanding (1.0 lower bound when any misses occurred).
func (s *Stats) MLP() float64 {
	if s.MLPCycles == 0 {
		return 0
	}
	return float64(s.MLPSum) / float64(s.MLPCycles)
}

// ILP returns the average issue burst width over cycles that issued.
func (s *Stats) ILP() float64 {
	if s.ILPCycles == 0 {
		return 0
	}
	return float64(s.ILPSum) / float64(s.ILPCycles)
}

// DispatchToIssue returns the mean dispatch→issue latency in cycles.
func (s *Stats) DispatchToIssue() float64 {
	if s.DispatchToIssueCount == 0 {
		return 0
	}
	return float64(s.DispatchToIssueSum) / float64(s.DispatchToIssueCount)
}

// MispredictRate returns mispredicts per resolved branch.
func (s *Stats) MispredictRate() float64 {
	if s.BranchesResolved == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.BranchesResolved)
}
