package ooo

// ChannelEventKind names one class of attacker-observable state mutation.
type ChannelEventKind uint8

const (
	// ChanDCacheFill is a demand d-cache install: a visible load's access
	// or a retiring store's fill.
	ChanDCacheFill ChannelEventKind = iota
	// ChanDCacheExpose is an InvisiSpec exposure: a formerly invisible
	// load's line installed at its safe point.
	ChanDCacheExpose
	// ChanDCacheFlush is a clflush eviction.
	ChanDCacheFlush
	// ChanBTBUpdate is a BTB insertion (speculative at branch resolution,
	// or architectural at an indirect jump's retirement).
	ChanBTBUpdate
)

// ChannelEvent is one attacker-observable state mutation, delivered to
// Core.TraceChannel in simulation order.
type ChannelEvent struct {
	Cycle uint64
	Kind  ChannelEventKind
	// Addr is the memory address for d-cache events and the branch PC for
	// BTB updates.
	Addr uint64
	// Aux is the branch target for BTB updates; 0 otherwise.
	Aux uint64
}

func (c *Core) traceChannel(k ChannelEventKind, addr, aux uint64) {
	if c.TraceChannel != nil {
		//ndavet:allow alloclint:call trace hook; nil in measured runs, and the nil guard keeps it off the hot path
		c.TraceChannel(ChannelEvent{Cycle: c.cycle, Kind: k, Addr: addr, Aux: aux})
	}
}
