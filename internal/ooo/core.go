package ooo

import (
	"errors"
	"fmt"

	"nda/internal/bpred"
	"nda/internal/cache"
	"nda/internal/core"
	"nda/internal/emu"
	"nda/internal/isa"
	"nda/internal/mem"
)

// Core is one out-of-order processor instance executing one program.
type Core struct {
	p      Params
	policy core.Policy

	prog *isa.Program
	mem  *mem.Memory
	hier *cache.Hierarchy
	gsh  *bpred.Gshare
	btb  *bpred.BTB
	ras  *bpred.RAS

	cycle   uint64
	nextSeq uint64

	// Physical register file.
	regVal   []uint64
	regReady []bool
	freeList []int
	rat      [isa.NumGPR]int

	// Reorder buffer: fixed ring.
	rob     []Entry
	robHead int
	robLen  int

	// Schedulers, in age order.
	iq []*Entry
	lq []*Entry
	sq []*Entry

	// Front end.
	fetchQ      []fetchSlot
	fetchPC     uint64
	fetchStall  uint64 // fetch idle until this cycle
	fetchWait   bool   // fetch blocked on an unresolved control instruction
	fetchWaitSq uint64 // seq of the instruction fetch waits on
	fetchDead   bool   // fetch ran off the text segment or past a halt; waits for redirect
	noSpec      bool   // SpecOff window active (committed)

	// lastFetchLine caches the line address most recently charged to L1I,
	// so sequential fetch within a line pays the I-cache once.
	lastFetchLine uint64
	// unresolvedBranches counts in-flight ClassBranch entries that have not
	// resolved; used to initialize UnderGuard at dispatch and to decide
	// InvisiSpec speculative-load visibility.
	unresolvedBranches int

	msr      [isa.NumMSR]uint64
	userMode bool
	halted   bool

	// Cancel, when non-nil, aborts Run/RunInsts with ErrCancelled shortly
	// after the channel closes (checked every cancelStride cycles). The
	// evaluation drivers wire ctx.Done() here so in-flight simulations stop
	// promptly on timeout or job cancellation.
	Cancel <-chan struct{}

	// TraceCommit, when non-nil, is called for every committed instruction
	// (including faulting ones) in program order. Used by differential
	// tests and the ndasim -trace flag.
	TraceCommit func(pc uint64, inst isa.Inst)

	// TraceRetire, when non-nil, receives a full per-instruction timing
	// record at retirement; package trace renders these into pipeline
	// diagrams.
	TraceRetire func(ev TraceEvent)

	retired      uint64
	lastCommit   uint64 // cycle of the last commit (deadlock guard)
	offChipLoads int    // currently outstanding DRAM loads

	// commitValidate models InvisiSpec validation: commit is blocked until
	// this cycle while an exposed load validates.
	commitValidate uint64

	// Propagation-sanitizer state (sanitizer.go); inert unless p.Sanitize.
	sanCount       uint64
	sanLog         []Violation
	sanWriterMark  []uint64
	sanWriterSeq   []uint64
	sanWriterBcast []bool

	stats Stats
}

// New builds a core executing prog on the given memory image (which must
// already contain the program's data; see emu.Load) under the given policy.
func New(prog *isa.Program, m *mem.Memory, pol core.Policy, p Params) *Core {
	c := &Core{
		p:      p,
		policy: pol,
		prog:   prog,
		mem:    m,
		hier:   cache.NewHierarchy(cache.DefaultHierarchyParams()),
		gsh:    bpred.NewGshare(p.GshareBits),
		btb:    bpred.NewBTB(p.BTBEntries, p.BTBWays),
		ras:    bpred.NewRAS(p.RASEntries),

		regVal:        make([]uint64, p.PhysRegs),
		regReady:      make([]bool, p.PhysRegs),
		rob:           make([]Entry, p.ROBSize),
		fetchPC:       prog.Entry,
		lastFetchLine: ^uint64(0),
		userMode:      true,
		nextSeq:       1,
	}
	for i := range c.rob {
		c.rob[i].reset()
	}
	// Map arch registers to the first NumGPR physical registers; the rest
	// form the free list.
	for i := 0; i < isa.NumGPR; i++ {
		c.rat[i] = i
		c.regReady[i] = true
	}
	for i := isa.NumGPR; i < p.PhysRegs; i++ {
		c.freeList = append(c.freeList, i)
	}
	return c
}

// NewFromProgram builds a core with a fresh memory initialized from the
// program's data segments.
func NewFromProgram(prog *isa.Program, pol core.Policy, p Params) *Core {
	m := mem.New()
	emu.Load(m, prog)
	return New(prog, m, pol, p)
}

// robAt returns the i-th oldest in-flight entry (0 = head).
func (c *Core) robAt(i int) *Entry {
	return &c.rob[(c.robHead+i)%len(c.rob)]
}

// robAlloc appends a new entry at the tail and returns it.
func (c *Core) robAlloc() *Entry {
	e := c.robAt(c.robLen)
	c.robLen++
	return e
}

// Cycles returns the number of cycles simulated so far.
func (c *Core) Cycles() uint64 { return c.cycle }

// Retired returns the number of committed instructions.
func (c *Core) Retired() uint64 { return c.retired }

// Halted reports whether a HALT has committed.
func (c *Core) Halted() bool { return c.halted }

// Stats returns the statistics accumulated since the last reset.
func (c *Core) Stats() *Stats { return &c.stats }

// Hierarchy exposes the cache hierarchy (attack PoCs and tests inspect it).
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// BTB exposes the branch target buffer.
func (c *Core) BTB() *bpred.BTB { return c.btb }

// Policy returns the propagation policy the core runs under.
func (c *Core) Policy() core.Policy { return c.policy }

// ResetStats zeroes the statistics counters (end of a warm-up window)
// without disturbing micro-architectural state.
func (c *Core) ResetStats() {
	c.stats = Stats{}
	c.hier.ResetStats()
}

// Reg returns the committed architectural value of r.
//
// Between commits the rename table also covers in-flight instructions, so
// Reg is intended to be read when the pipeline is drained (halted), as the
// differential tests do.
func (c *Core) Reg(r isa.Reg) uint64 {
	if r == isa.RegZero {
		return 0
	}
	return c.regVal[c.rat[r]]
}

// Regs returns the architectural register file (pipeline should be drained).
func (c *Core) Regs() [isa.NumGPR]uint64 {
	var out [isa.NumGPR]uint64
	for i := range out {
		out[i] = c.Reg(isa.Reg(i))
	}
	return out
}

// MSR returns a model-specific register's committed value.
func (c *Core) MSR(n uint16) uint64 { return c.msr[n] }

// SetMSR plants a value in a model-specific register before the program
// runs; attack PoCs use it to install the privileged secret (the LazyFP /
// Meltdown-v3a scenario, where another context left a secret behind).
func (c *Core) SetMSR(n uint16, v uint64) { c.msr[n] = v }

// Memory returns the memory image the core operates on.
func (c *Core) Memory() *mem.Memory { return c.mem }

// ErrCancelled is returned by Run/RunInsts when the core's Cancel channel
// closes mid-simulation. Callers holding the context that fed the channel
// translate it back into ctx.Err().
var ErrCancelled = errors.New("ooo: simulation cancelled")

// cancelStride is how many cycles may elapse between Cancel-channel polls;
// a power of two so the check is a mask, not a division.
const cancelStride = 1 << 12

// cancelled polls the Cancel channel at most once per cancelStride cycles.
func (c *Core) cancelled() bool {
	if c.Cancel == nil || c.cycle&(cancelStride-1) != 0 {
		return false
	}
	select {
	case <-c.Cancel:
		return true
	default:
		return false
	}
}

// Run simulates until HALT commits or maxCycles elapse, whichever is first.
// Exceeding maxCycles or deadlocking returns an error.
func (c *Core) Run(maxCycles uint64) error {
	for !c.halted {
		if c.cycle >= maxCycles {
			return fmt.Errorf("ooo: exceeded %d cycles without halting (pc=%#x, rob=%d)", maxCycles, c.fetchPC, c.robLen)
		}
		if c.cancelled() {
			return ErrCancelled
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunInsts simulates until at least n more instructions commit, HALT
// commits, or maxCycles elapse. Used by the sampling harness for fixed
// instruction windows.
func (c *Core) RunInsts(n, maxCycles uint64) error {
	target := c.retired + n
	for !c.halted && c.retired < target {
		if c.cycle >= maxCycles {
			return fmt.Errorf("ooo: exceeded %d cycles with %d/%d instructions committed", maxCycles, c.retired, target)
		}
		if c.cancelled() {
			return ErrCancelled
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}

// DebugState renders a one-line pipeline snapshot for diagnostics.
func (c *Core) DebugState() string {
	head := "rob-empty"
	if c.robLen > 0 {
		e := c.robAt(0)
		head = fmt.Sprintf("head{seq=%d pc=%#x %v issued=%v comp=%v}", e.Seq, e.PC, e.Inst, e.Issued, e.Node.Completed)
	}
	fq := "fq-empty"
	if len(c.fetchQ) > 0 {
		s := c.fetchQ[0]
		fq = fmt.Sprintf("fq[%d]{pc=%#x %v valid=%v ready@%d}", len(c.fetchQ), s.pc, s.inst, s.valid, s.readyAt)
	}
	return fmt.Sprintf("cyc=%d rob=%d iq=%d lq=%d sq=%d fetchPC=%#x wait=%v dead=%v stall>%d validate>%d %s %s",
		c.cycle, c.robLen, len(c.iq), len(c.lq), len(c.sq), c.fetchPC, c.fetchWait, c.fetchDead, c.fetchStall, c.commitValidate, head, fq)
}

// DebugROB lists the in-flight entries (diagnostics).
func (c *Core) DebugROB() string {
	s := ""
	for i := 0; i < c.robLen; i++ {
		e := c.robAt(i)
		flag := " "
		if e.Node.Completed {
			flag = "C"
		} else if e.Issued {
			flag = "I"
		}
		s += fmt.Sprintf("  [%3d] seq=%d pc=%#x %s %v\n", i, e.Seq, e.PC, flag, e.Inst)
	}
	return s
}

// NewFromState builds a core resuming from an architectural snapshot:
// registers, MSRs, and the program counter are installed and execution
// starts at pc on the given memory image. Retired counts from zero, so
// instruction-budget runs measure relative progress. Used by the
// checkpoint-based SMARTS sampling path.
func NewFromState(prog *isa.Program, m *mem.Memory, regs [isa.NumGPR]uint64, msrs [isa.NumMSR]uint64, pc uint64, pol core.Policy, p Params) *Core {
	c := New(prog, m, pol, p)
	for i := 1; i < isa.NumGPR; i++ {
		c.regVal[c.rat[i]] = regs[i]
	}
	c.msr = msrs
	c.fetchPC = pc
	return c
}
