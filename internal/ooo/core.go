package ooo

import (
	"errors"
	"fmt"

	"nda/internal/bpred"
	"nda/internal/cache"
	"nda/internal/core"
	"nda/internal/emu"
	"nda/internal/isa"
	"nda/internal/mem"
)

// Core is one out-of-order processor instance executing one program.
type Core struct {
	p      Params
	policy core.Policy

	prog *isa.Program
	mem  *mem.Memory
	hier *cache.Hierarchy
	gsh  *bpred.Gshare
	btb  *bpred.BTB
	ras  *bpred.RAS

	cycle   uint64
	nextSeq uint64

	// Physical register file.
	regVal   []uint64
	regReady []bool
	freeList []int
	rat      [isa.NumGPR]int

	// Reorder buffer: fixed ring.
	rob     []Entry
	robHead int
	robLen  int

	// Schedulers, in age order: ROB ring slots (Entry.Slot). Capacity is
	// fixed at construction, so dispatch and squash never allocate.
	iq []int32
	lq []int32
	sq []int32

	// Front end. fetchQ is a fixed ring of FetchQSize slots.
	fetchQ      []fetchSlot
	fqHead      int
	fqLen       int
	fetchPC     uint64
	fetchStall  uint64 // fetch idle until this cycle
	fetchWait   bool   // fetch blocked on an unresolved control instruction
	fetchWaitSq uint64 // seq of the instruction fetch waits on
	fetchDead   bool   // fetch ran off the text segment or past a halt; waits for redirect
	noSpec      bool   // SpecOff window active (committed)

	// lastFetchLine caches the line address most recently charged to L1I,
	// so sequential fetch within a line pays the I-cache once.
	lastFetchLine uint64
	// unresolvedBranches counts in-flight ClassBranch entries that have not
	// resolved; used to initialize UnderGuard at dispatch and to decide
	// InvisiSpec speculative-load visibility.
	unresolvedBranches int

	msr      [isa.NumMSR]uint64
	userMode bool
	halted   bool

	// Cancel, when non-nil, aborts Run/RunInsts with ErrCancelled shortly
	// after the channel closes (checked every cancelStride cycles). The
	// evaluation drivers wire ctx.Done() here so in-flight simulations stop
	// promptly on timeout or job cancellation.
	Cancel <-chan struct{}

	// TraceCommit, when non-nil, is called for every committed instruction
	// (including faulting ones) in program order. Used by differential
	// tests and the ndasim -trace flag.
	TraceCommit func(pc uint64, inst isa.Inst)

	// TraceRetire, when non-nil, receives a full per-instruction timing
	// record at retirement; package trace renders these into pipeline
	// diagrams.
	TraceRetire func(ev TraceEvent)

	// TraceChannel, when non-nil, receives every attacker-observable
	// microarchitectural state mutation: d-cache installs (demand fills
	// and InvisiSpec exposures), flushes, and BTB updates. InvisiSpec's
	// DataNoInstall accesses are deliberately absent — their whole point
	// is to leave no measurable state. The differential fuzzing harness
	// (internal/diffuzz) hashes this stream for two runs that differ only
	// in planted secret bytes; a hash mismatch is a covert-channel
	// transmission.
	TraceChannel func(ev ChannelEvent)

	retired      uint64
	lastCommit   uint64 // cycle of the last commit (deadlock guard)
	offChipLoads int    // currently outstanding DRAM loads

	// Event-loop bookkeeping. progress is cleared at the top of every Step
	// and set by any stage that changes simulator state; a cycle that ends
	// with it clear is provably identical to the next one except for
	// time-gated events, so Run/RunInsts jump c.cycle to the next event
	// horizon (nextEventCycle) instead of stepping through dead cycles.
	progress bool
	// execOutstanding counts issued-but-incomplete entries and
	// nextCompleteAt their earliest CompleteAt (may be stale-low after a
	// squash, never stale-high), so completeExecution can skip its ROB scan
	// on cycles with nothing due.
	execOutstanding int
	nextCompleteAt  uint64
	// pendingBcast counts completed register-writing entries awaiting their
	// tag broadcast; broadcastStage skips its deferred scan when zero.
	pendingBcast int
	// fencesInFlight counts un-completed FENCEs in the ROB, the early-out
	// for olderFencePending's per-issue-candidate scan.
	fencesInFlight int
	// lastCancelPoll is the cycle of the most recent Cancel-channel poll;
	// polls trigger on elapsed distance so event jumps cannot starve them.
	lastCancelPoll uint64

	// Reusable scratch buffers (capacity fixed at construction) so the
	// per-cycle stages allocate nothing.
	nodeBuf []*core.Node
	doneBuf []*Entry

	// commitValidate models InvisiSpec validation: commit is blocked until
	// this cycle while an exposed load validates.
	commitValidate uint64

	// Propagation-sanitizer state (sanitizer.go); inert unless p.Sanitize.
	sanCount       uint64
	sanLog         []Violation
	sanWriterMark  []uint64
	sanWriterSeq   []uint64
	sanWriterBcast []bool

	stats Stats
}

// New builds a core executing prog on the given memory image (which must
// already contain the program's data; see emu.Load) under the given policy.
func New(prog *isa.Program, m *mem.Memory, pol core.Policy, p Params) *Core {
	c := &Core{
		p:      p,
		policy: pol,
		prog:   prog,
		mem:    m,
		hier:   cache.NewHierarchy(cache.DefaultHierarchyParams()),
		gsh:    bpred.NewGshare(p.GshareBits),
		btb:    bpred.NewBTB(p.BTBEntries, p.BTBWays),
		ras:    bpred.NewRAS(p.RASEntries),

		regVal:        make([]uint64, p.PhysRegs),
		regReady:      make([]bool, p.PhysRegs),
		freeList:      make([]int, 0, p.PhysRegs),
		rob:           make([]Entry, p.ROBSize),
		iq:            make([]int32, 0, p.IQSize),
		lq:            make([]int32, 0, p.LQSize),
		sq:            make([]int32, 0, p.SQSize),
		fetchQ:        make([]fetchSlot, p.FetchQSize),
		fetchPC:       prog.Entry,
		lastFetchLine: ^uint64(0),
		userMode:      true,
		nextSeq:       1,
		nodeBuf:       make([]*core.Node, 0, p.ROBSize),
		doneBuf:       make([]*Entry, 0, p.ROBSize),
	}
	for i := range c.rob {
		e := &c.rob[i]
		e.Slot = int32(i)
		// Pre-size the per-entry backing stores so the hot path never
		// allocates: a load can bypass at most SQSize stores, and the RAS
		// snapshot array matches the stack's entry count.
		e.bypassed = make([]int32, 0, p.SQSize)
		c.ras.SnapshotInto(&e.RASBefore)
		e.reset()
	}
	for i := range c.fetchQ {
		c.ras.SnapshotInto(&c.fetchQ[i].rasBefore)
	}
	// Map arch registers to the first NumGPR physical registers; the rest
	// form the free list.
	for i := 0; i < isa.NumGPR; i++ {
		c.rat[i] = i
		c.regReady[i] = true
	}
	for i := isa.NumGPR; i < p.PhysRegs; i++ {
		c.freeList = append(c.freeList, i)
	}
	return c
}

// NewFromProgram builds a core with a fresh memory initialized from the
// program's data segments.
func NewFromProgram(prog *isa.Program, pol core.Policy, p Params) *Core {
	m := mem.New()
	emu.Load(m, prog)
	return New(prog, m, pol, p)
}

// robAt returns the i-th oldest in-flight entry (0 = head).
func (c *Core) robAt(i int) *Entry {
	return &c.rob[(c.robHead+i)%len(c.rob)]
}

// entryAt returns the entry in the given ROB ring slot.
func (c *Core) entryAt(slot int32) *Entry {
	return &c.rob[slot]
}

// robAlloc appends a new entry at the tail and returns it.
func (c *Core) robAlloc() *Entry {
	e := c.robAt(c.robLen)
	c.robLen++
	return e
}

// fqAt returns the i-th oldest fetch-queue slot (0 = head).
func (c *Core) fqAt(i int) *fetchSlot {
	return &c.fetchQ[(c.fqHead+i)%len(c.fetchQ)]
}

// fqPush appends a fresh slot at the fetch queue's tail, preserving the
// slot's RAS-snapshot backing array across reuse.
func (c *Core) fqPush() *fetchSlot {
	s := &c.fetchQ[(c.fqHead+c.fqLen)%len(c.fetchQ)]
	c.fqLen++
	ras := s.rasBefore
	*s = fetchSlot{rasBefore: ras}
	return s
}

// fqPop drops the fetch queue's head slot.
func (c *Core) fqPop() {
	c.fqHead = (c.fqHead + 1) % len(c.fetchQ)
	c.fqLen--
}

// Cycles returns the number of cycles simulated so far.
func (c *Core) Cycles() uint64 { return c.cycle }

// Retired returns the number of committed instructions.
func (c *Core) Retired() uint64 { return c.retired }

// Halted reports whether a HALT has committed.
func (c *Core) Halted() bool { return c.halted }

// Stats returns the statistics accumulated since the last reset.
func (c *Core) Stats() *Stats { return &c.stats }

// Hierarchy exposes the cache hierarchy (attack PoCs and tests inspect it).
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// BTB exposes the branch target buffer.
func (c *Core) BTB() *bpred.BTB { return c.btb }

// Policy returns the propagation policy the core runs under.
func (c *Core) Policy() core.Policy { return c.policy }

// ResetStats zeroes the statistics counters (end of a warm-up window)
// without disturbing micro-architectural state.
func (c *Core) ResetStats() {
	c.stats = Stats{}
	c.hier.ResetStats()
}

// Reg returns the committed architectural value of r.
//
// Between commits the rename table also covers in-flight instructions, so
// Reg is intended to be read when the pipeline is drained (halted), as the
// differential tests do.
func (c *Core) Reg(r isa.Reg) uint64 {
	if r == isa.RegZero {
		return 0
	}
	return c.regVal[c.rat[r]]
}

// Regs returns the architectural register file (pipeline should be drained).
func (c *Core) Regs() [isa.NumGPR]uint64 {
	var out [isa.NumGPR]uint64
	for i := range out {
		out[i] = c.Reg(isa.Reg(i))
	}
	return out
}

// MSR returns a model-specific register's committed value.
func (c *Core) MSR(n uint16) uint64 { return c.msr[n] }

// SetMSR plants a value in a model-specific register before the program
// runs; attack PoCs use it to install the privileged secret (the LazyFP /
// Meltdown-v3a scenario, where another context left a secret behind).
func (c *Core) SetMSR(n uint16, v uint64) { c.msr[n] = v }

// Memory returns the memory image the core operates on.
func (c *Core) Memory() *mem.Memory { return c.mem }

// ErrCancelled is returned by Run/RunInsts when the core's Cancel channel
// closes mid-simulation. Callers holding the context that fed the channel
// translate it back into ctx.Err().
var ErrCancelled = errors.New("ooo: simulation cancelled")

// cancelStride is how many cycles may elapse between Cancel-channel polls.
const cancelStride = 1 << 12

// cancelled polls the Cancel channel at most once per cancelStride elapsed
// cycles. The poll triggers on distance since the last poll — not on a cycle
// mask — so event-horizon jumps that skip over every stride-aligned cycle
// still cannot starve cancellation.
func (c *Core) cancelled() bool {
	if c.Cancel == nil || c.cycle-c.lastCancelPoll < cancelStride {
		return false
	}
	c.lastCancelPoll = c.cycle
	select {
	case <-c.Cancel:
		return true
	default:
		return false
	}
}

// Run simulates until HALT commits or maxCycles elapse, whichever is first.
// Exceeding maxCycles or deadlocking returns an error.
//
// Run is event-driven: after a cycle in which no stage changed any state, it
// jumps c.cycle to the next event horizon (earliest pending completion,
// replay, deferred broadcast, validation end, fetch-queue readiness, or
// fetch-stall expiry) instead of stepping through the dead cycles one by
// one. Statistics, timing, and outputs are byte-identical to per-cycle
// stepping; only wall-clock time changes.
//
//ndavet:hotpath
func (c *Core) Run(maxCycles uint64) error {
	jump := !c.p.Sanitize
	for !c.halted {
		if c.cycle >= maxCycles {
			return fmt.Errorf("ooo: exceeded %d cycles without halting (pc=%#x, rob=%d)", maxCycles, c.fetchPC, c.robLen)
		}
		if c.cancelled() {
			return ErrCancelled
		}
		if err := c.Step(); err != nil {
			return err
		}
		if jump && !c.progress && !c.halted {
			c.skipAhead(maxCycles)
		}
	}
	return nil
}

// RunInsts simulates until at least n more instructions commit, HALT
// commits, or maxCycles elapse. Used by the sampling harness for fixed
// instruction windows. Like Run, it jumps over provably dead cycles.
//
//ndavet:hotpath
func (c *Core) RunInsts(n, maxCycles uint64) error {
	jump := !c.p.Sanitize
	target := c.retired + n
	for !c.halted && c.retired < target {
		if c.cycle >= maxCycles {
			return fmt.Errorf("ooo: exceeded %d cycles with %d/%d instructions committed", maxCycles, c.retired, target)
		}
		if c.cancelled() {
			return ErrCancelled
		}
		if err := c.Step(); err != nil {
			return err
		}
		if jump && !c.progress && !c.halted {
			c.skipAhead(maxCycles)
		}
	}
	return nil
}

// skipAhead advances a quiescent core to just before the next cycle at
// which any stage could act. Called only after a Step that set no progress
// flag: by induction every skipped cycle would have repeated the same
// no-op stage walk and the same commit-stage stall accounting, so the
// bulk-accounted statistics are exactly what per-cycle stepping produces.
//
// The horizon is capped at the deadlock bound (so a genuinely dead core
// still reports its deadlock at the identical cycle) and at maxCycles+1 (so
// a budget overrun leaves c.cycle and the statistics exactly where the
// per-cycle loop would have stopped).
func (c *Core) skipAhead(maxCycles uint64) {
	h := c.nextEventCycle()
	if d := c.lastCommit + c.p.DeadlockCycles + 1; h > d {
		h = d
	}
	if h > maxCycles+1 && maxCycles+1 > maxCycles {
		h = maxCycles + 1
	}
	if h <= c.cycle+1 {
		return
	}
	c.skipTo(h)
}

// skipTo bulk-accounts the dead cycles c.cycle+1 .. h-1 and moves the clock
// to h-1, so the next Step simulates cycle h. The accounting mirrors
// commitStage's zero-commit path: the stall classification cannot change
// while no stage acts, and neither can the outstanding off-chip load count.
func (c *Core) skipTo(h uint64) {
	k := h - 1 - c.cycle
	switch {
	case c.robLen == 0:
		c.stats.FrontendStalls += k
	case c.robAt(0).isMem() && !c.robAt(0).Node.Completed:
		c.stats.MemStallCycles += k
	default:
		c.stats.BackendStalls += k
	}
	c.stats.Cycles += k
	if c.offChipLoads > 0 {
		c.stats.MLPSum += uint64(c.offChipLoads) * k
		c.stats.MLPCycles += k
	}
	c.cycle = h - 1
}

// nextEventCycle returns the earliest future cycle at which a stage of a
// currently quiescent core could act: an execution completing, a replay
// retrying, a deferred broadcast's delay expiring, InvisiSpec validation
// ending, the fetch queue's head reaching dispatch depth, or a fetch stall
// elapsing. Waits with no intrinsic timer (operand readiness, guard
// resolution, resource exhaustion) are all unblocked by one of these, so
// they need no terms of their own. Returns c.cycle+1 if no timed event is
// pending (the deadlock bound in skipAhead still guarantees termination).
func (c *Core) nextEventCycle() uint64 {
	const never = ^uint64(0)
	h := never
	for i := 0; i < c.robLen; i++ {
		e := c.robAt(i)
		if e.Issued && !e.Node.Completed {
			h = earlierEvent(h, c.cycle, e.CompleteAt)
		} else if e.InIQ && e.RetryAt > c.cycle {
			h = earlierEvent(h, c.cycle, e.RetryAt)
		}
		if e.Node.Completed && !e.Node.Broadcast && e.DestP != noPReg && e.HasSafeSince {
			h = earlierEvent(h, c.cycle, e.SafeSince+uint64(c.policy.ExtraBroadcastDelay))
		}
	}
	if c.commitValidate > c.cycle {
		h = earlierEvent(h, c.cycle, c.commitValidate)
	}
	if c.fqLen > 0 {
		h = earlierEvent(h, c.cycle, c.fqAt(0).readyAt)
	}
	if !c.fetchWait && !c.fetchDead && !c.halted && c.fetchStall > c.cycle {
		h = earlierEvent(h, c.cycle, c.fetchStall)
	}
	if h == never {
		return c.cycle + 1
	}
	return h
}

// earlierEvent folds one candidate into the event horizon: v replaces h
// when it is a strictly future cycle (relative to now) earlier than h.
// A plain function rather than a closure so the skip-ahead scan stays
// allocation-free (a capturing closure would be an alloclint finding).
func earlierEvent(h, now, v uint64) uint64 {
	if v > now && v < h {
		return v
	}
	return h
}

// DebugState renders a one-line pipeline snapshot for diagnostics.
func (c *Core) DebugState() string {
	head := "rob-empty"
	if c.robLen > 0 {
		e := c.robAt(0)
		head = fmt.Sprintf("head{seq=%d pc=%#x %v issued=%v comp=%v}", e.Seq, e.PC, e.Inst, e.Issued, e.Node.Completed)
	}
	fq := "fq-empty"
	if c.fqLen > 0 {
		s := c.fqAt(0)
		fq = fmt.Sprintf("fq[%d]{pc=%#x %v valid=%v ready@%d}", c.fqLen, s.pc, s.inst, s.valid, s.readyAt)
	}
	return fmt.Sprintf("cyc=%d rob=%d iq=%d lq=%d sq=%d fetchPC=%#x wait=%v dead=%v stall>%d validate>%d %s %s",
		c.cycle, c.robLen, len(c.iq), len(c.lq), len(c.sq), c.fetchPC, c.fetchWait, c.fetchDead, c.fetchStall, c.commitValidate, head, fq)
}

// DebugROB lists the in-flight entries (diagnostics).
func (c *Core) DebugROB() string {
	s := ""
	for i := 0; i < c.robLen; i++ {
		e := c.robAt(i)
		flag := " "
		if e.Node.Completed {
			flag = "C"
		} else if e.Issued {
			flag = "I"
		}
		s += fmt.Sprintf("  [%3d] seq=%d pc=%#x %s %v\n", i, e.Seq, e.PC, flag, e.Inst)
	}
	return s
}

// NewFromState builds a core resuming from an architectural snapshot:
// registers, MSRs, and the program counter are installed and execution
// starts at pc on the given memory image. Retired counts from zero, so
// instruction-budget runs measure relative progress. Used by the
// checkpoint-based SMARTS sampling path.
func NewFromState(prog *isa.Program, m *mem.Memory, regs [isa.NumGPR]uint64, msrs [isa.NumMSR]uint64, pc uint64, pol core.Policy, p Params) *Core {
	c := New(prog, m, pol, p)
	for i := 1; i < isa.NumGPR; i++ {
		c.regVal[c.rat[i]] = regs[i]
	}
	c.msr = msrs
	c.fetchPC = pc
	return c
}
