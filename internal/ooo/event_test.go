package ooo

import (
	"testing"

	"nda/internal/asm"
	"nda/internal/core"
	"nda/internal/workload"
)

// The event-driven Run loop rests on two claims, tested here:
//
//  1. nextEventCycle returns the minimum over every pending time-gated
//     event (cache fills completing, replays retrying, deferred-broadcast
//     delays expiring, InvisiSpec validation ending, fetch-queue readiness,
//     fetch-stall expiry) — unit-tested on hand-built pipeline states;
//  2. jumping over quiescent cycles is invisible: Run/RunInsts produce
//     byte-identical statistics, cycle counts, and architectural state to
//     stepping the very same program one cycle at a time — property-tested
//     over random programs under every policy.

// quiesce builds a core whose pipeline is empty and whose front end is
// parked, so nextEventCycle sees only the events a test plants.
func quiesce(t *testing.T) *Core {
	t.Helper()
	p, err := asm.Assemble("main: halt\n")
	if err != nil {
		t.Fatal(err)
	}
	c := NewFromProgram(p, core.Baseline(), DefaultParams())
	c.fetchDead = true // park fetch: no fetch-stall event unless planted
	c.cycle = 100
	return c
}

func TestNextEventCompletionIsMinimum(t *testing.T) {
	c := quiesce(t)
	for i, at := range []uint64{900, 350, 4000} {
		e := c.robAlloc()
		e.Seq = uint64(i + 1)
		e.Issued = true
		e.CompleteAt = at
	}
	if h := c.nextEventCycle(); h != 350 {
		t.Errorf("horizon = %d, want 350 (earliest CompleteAt)", h)
	}
}

func TestNextEventReplayRetry(t *testing.T) {
	c := quiesce(t)
	e := c.robAlloc()
	e.Seq = 1
	e.InIQ = true
	e.RetryAt = 102
	if h := c.nextEventCycle(); h != 102 {
		t.Errorf("horizon = %d, want 102 (RetryAt)", h)
	}
}

func TestNextEventDeferredBroadcastDelay(t *testing.T) {
	c := quiesce(t)
	c.policy = core.Permissive()
	c.policy.ExtraBroadcastDelay = 7
	e := c.robAlloc()
	e.Seq = 1
	e.Issued = true
	e.Node.Completed = true
	e.DestP = 10
	e.HasSafeSince = true
	e.SafeSince = 98
	if h := c.nextEventCycle(); h != 105 {
		t.Errorf("horizon = %d, want 105 (SafeSince 98 + delay 7)", h)
	}
}

func TestNextEventCommitValidate(t *testing.T) {
	c := quiesce(t)
	c.commitValidate = 140
	if h := c.nextEventCycle(); h != 140 {
		t.Errorf("horizon = %d, want 140 (commitValidate)", h)
	}
}

func TestNextEventFetchQueueReadiness(t *testing.T) {
	c := quiesce(t)
	s := c.fqPush()
	s.seq = 1
	s.readyAt = 108
	if h := c.nextEventCycle(); h != 108 {
		t.Errorf("horizon = %d, want 108 (fetch-queue head readyAt)", h)
	}
}

func TestNextEventFetchStall(t *testing.T) {
	c := quiesce(t)
	c.fetchDead = false
	c.fetchStall = 300
	if h := c.nextEventCycle(); h != 300 {
		t.Errorf("horizon = %d, want 300 (fetch stall expiry)", h)
	}
	// A waiting or dead front end has no stall event: the wake-up comes
	// from a branch resolution or a squash, which are completion events.
	c.fetchWait = true
	if h := c.nextEventCycle(); h != c.cycle+1 {
		t.Errorf("horizon = %d, want %d (no event: fall back one cycle)", h, c.cycle+1)
	}
}

func TestNextEventMinAcrossSources(t *testing.T) {
	c := quiesce(t)
	c.commitValidate = 500
	e := c.robAlloc()
	e.Seq = 1
	e.Issued = true
	e.CompleteAt = 410
	s := c.fqPush()
	s.seq = 2
	s.readyAt = 430
	if h := c.nextEventCycle(); h != 410 {
		t.Errorf("horizon = %d, want 410 (min across sources)", h)
	}
}

// TestStalledCoreSkipsToFill drives a core with Step until it goes
// quiescent behind an off-chip load, then checks the horizon is exactly the
// load's fill cycle — the event-loop claim on the paper's dominant stall.
func TestStalledCoreSkipsToFill(t *testing.T) {
	p, err := asm.Assemble(`
main:   li   t0, 4096
        ld   t1, 0(t0)
        addi t1, t1, 1
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	c := NewFromProgram(p, core.Baseline(), DefaultParams())
	for i := 0; i < 200_000; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		if c.progress {
			continue
		}
		var load *Entry
		for j := 0; j < c.robLen; j++ {
			if e := c.robAt(j); e.Inst.IsLoad() && e.Issued && !e.Node.Completed {
				load = e
			}
		}
		if load == nil {
			continue // quiescent on something else (e.g. front-end depth)
		}
		if h := c.nextEventCycle(); h != load.CompleteAt {
			t.Fatalf("cycle %d: horizon = %d, want the DRAM fill at %d", c.cycle, h, load.CompleteAt)
		}
		return
	}
	t.Fatal("core never went quiescent behind the off-chip load")
}

// stepReference replicates the pre-event-loop Run: one Step per cycle, no
// jumping. It is the oracle the property test compares against.
func stepReference(t *testing.T, c *Core, maxCycles uint64) {
	t.Helper()
	for !c.halted {
		if c.cycle >= maxCycles {
			t.Fatalf("reference run exceeded %d cycles", maxCycles)
		}
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRunMatchesPerCycleStepping is the property test: for random programs
// under every policy, the jumping Run and the per-cycle reference must agree
// on every statistic, the final cycle count, and the architectural state.
func TestRunMatchesPerCycleStepping(t *testing.T) {
	params := DefaultParams()
	for _, pol := range core.All() {
		for seed := int64(0); seed < 3; seed++ {
			prog := workload.Random(4200+seed, 400)
			jumped := NewFromProgram(prog, pol, params)
			if err := jumped.Run(maxCycles); err != nil {
				t.Fatalf("%s seed %d: %v", pol.Name, seed, err)
			}
			stepped := NewFromProgram(prog, pol, params)
			stepReference(t, stepped, maxCycles)

			if jumped.Cycles() != stepped.Cycles() {
				t.Errorf("%s seed %d: cycles %d (jumped) != %d (stepped)",
					pol.Name, seed, jumped.Cycles(), stepped.Cycles())
			}
			if jumped.Retired() != stepped.Retired() {
				t.Errorf("%s seed %d: retired %d != %d",
					pol.Name, seed, jumped.Retired(), stepped.Retired())
			}
			if *jumped.Stats() != *stepped.Stats() {
				t.Errorf("%s seed %d: stats diverge:\n jumped:  %+v\n stepped: %+v",
					pol.Name, seed, *jumped.Stats(), *stepped.Stats())
			}
			if jumped.Regs() != stepped.Regs() {
				t.Errorf("%s seed %d: architectural registers diverge", pol.Name, seed)
			}
		}
	}
}

// TestRunInstsMatchesPerCycleStepping checks the same property on the
// sampling-harness path: fixed instruction windows with warm-up resets.
func TestRunInstsMatchesPerCycleStepping(t *testing.T) {
	params := DefaultParams()
	prog := workload.Random(777, 4000)
	for _, pol := range core.All() {
		jumped := NewFromProgram(prog, pol, params)
		if err := jumped.RunInsts(500, maxCycles); err != nil {
			t.Fatalf("%s: %v", pol.Name, err)
		}
		jumped.ResetStats()
		if err := jumped.RunInsts(1000, maxCycles); err != nil {
			t.Fatalf("%s: %v", pol.Name, err)
		}

		stepped := NewFromProgram(prog, pol, params)
		for !stepped.halted && stepped.retired < 500 {
			if err := stepped.Step(); err != nil {
				t.Fatal(err)
			}
		}
		stepped.ResetStats()
		target := stepped.retired + 1000
		for !stepped.halted && stepped.retired < target {
			if err := stepped.Step(); err != nil {
				t.Fatal(err)
			}
		}

		if jumped.Cycles() != stepped.Cycles() {
			t.Errorf("%s: cycles %d != %d", pol.Name, jumped.Cycles(), stepped.Cycles())
		}
		if *jumped.Stats() != *stepped.Stats() {
			t.Errorf("%s: measurement-window stats diverge:\n jumped:  %+v\n stepped: %+v",
				pol.Name, *jumped.Stats(), *stepped.Stats())
		}
	}
}
