package ooo

import (
	"testing"

	"nda/internal/asm"
	"nda/internal/core"
	"nda/internal/isa"
)

func collectTrace(t *testing.T, src string, pol core.Policy, secret uint64) []ChannelEvent {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	c := NewFromProgram(p, pol, DefaultParams())
	var evs []ChannelEvent
	c.TraceChannel = func(ev ChannelEvent) { evs = append(evs, ev) }
	c.SetMSR(isa.MSRSecretKey, secret)
	if err := c.Run(maxCycles); err != nil {
		t.Fatal(err)
	}
	return evs
}

func tracesEqual(a, b []ChannelEvent) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// A transmitter that consumes the faulting value DIRECTLY — no intermediate
// producer — leaks through a one-cycle gap if the core broadcasts a deferred
// faulting head before delivering its fault: the wake-up lands, the
// dependent load issues and fills the cache, and only then does the squash
// arrive. The fault must deliver first. The secret is the lbu's address, so
// two runs with different planted MSR secrets must produce byte-identical
// channel traces under every policy that claims to block LazyFP-style
// chosen-code leaks, and must differ under the policies Table 2 says leak.
const faultDirectSrc = `
main:   la    t0, handler
        wrmsr 0x0, t0
        rdmsr t1, 0x10
        lbu   t2, 0(t1)
resume: halt
handler:
        j     resume
`

func TestFaultDeliversBeforeBroadcast(t *testing.T) {
	leak := map[string]bool{
		"OoO":                true,
		"Permissive":         true,
		"Permissive+BR":      true,
		"Strict":             true,
		"Strict+BR":          true,
		"RestrictedLoads":    false,
		"FullProtection":     false,
		"InvisiSpec-Spectre": true,
		"InvisiSpec-Future":  false,
	}
	for _, pol := range core.All() {
		a := collectTrace(t, faultDirectSrc, pol, 0x200100)
		b := collectTrace(t, faultDirectSrc, pol, 0x204180)
		if eq := tracesEqual(a, b); eq != !leak[pol.Name] {
			t.Errorf("%s: channel traces equal=%v, want leak=%v (%d/%d events)",
				pol.Name, eq, leak[pol.Name], len(a), len(b))
		}
	}
}

// Store-to-load forwarding under the sanitizer: a correct pipeline forwards
// only broadcast data, so check 4 (forward-before-broadcast) must stay
// silent under every policy while the forwarded value still arrives.
func TestForwardingSanitizerClean(t *testing.T) {
	const src = `
main:   li   t0, 0x2000
        li   t1, 77
        sd   t1, 0(t0)
        ld   t2, 0(t0)
        addi t3, t2, 1
        halt
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range core.All() {
		params := DefaultParams()
		params.Sanitize = true
		c := NewFromProgram(p, pol, params)
		if err := c.Run(maxCycles); err != nil {
			t.Fatalf("%s: %v", pol.Name, err)
		}
		if n := c.SanitizerViolations(); n != 0 {
			t.Errorf("%s: %d sanitizer violations: %v", pol.Name, n, c.SanitizerLog())
		}
		if got := c.Reg(isa.RegT3); got != 78 {
			t.Errorf("%s: t3 = %d, want 78", pol.Name, got)
		}
	}
}
