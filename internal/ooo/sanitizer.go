package ooo

import "fmt"

// The propagation sanitizer is a per-cycle oracle for the NDA invariant the
// whole defense rests on (paper §5): a value produced by an instruction that
// is unsafe under the active policy must not wake or feed any consumer until
// the instruction becomes safe and its tag is broadcast. The checks run over
// architecturally visible simulator state only — they recompute nothing from
// the policy's internals beyond core.Policy.Unsafe — so a bug in either the
// pipeline's broadcast plumbing or the policy bookkeeping trips them.
//
// Enabled by Params.Sanitize; off by default because the checks cost a ROB
// scan per cycle. cmd/ndalint's cross-validation tests and the workload
// sanity tests run with it on.
//
// Checks, at the end of every cycle:
//
//  1. ready-without-broadcast: no in-flight producer's destination physical
//     register is marked ready before the producer's tag broadcast. The
//     broadcast is the single point NDA defers, so a ready bit appearing any
//     other way is a propagation leak.
//  2. unsafe-broadcast: no instruction whose tag broadcast happened this
//     cycle is still unsafe under the policy at end of cycle. Guards only
//     resolve (never un-resolve) and bypass guards only drop within a
//     cycle, so an end-of-cycle unsafe verdict proves the broadcast-time
//     one.
//  3. issued-before-broadcast: no instruction that entered execution this
//     cycle has an in-flight older producer (for any of its source
//     operands; store data is read at forwarding/commit time, not issue)
//     whose tag has not been broadcast.
//  4. forward-before-broadcast: no load that entered execution this cycle
//     took its value from an in-flight store whose DATA producer has not
//     broadcast. Store-to-load forwarding is the one dataflow edge that
//     does not go through a register read at issue, so check 3 cannot see
//     it; an unbroadcast value reaching a younger load through the store
//     queue is exactly the memory-laundering propagation leak.

// Violation is one sanitizer finding.
type Violation struct {
	Cycle  uint64
	Check  string
	PC     uint64
	Seq    uint64
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: %s at pc=%#x seq=%d: %s", v.Cycle, v.Check, v.PC, v.Seq, v.Detail)
}

// maxSanitizerLog bounds the retained violation records; the count is exact.
const maxSanitizerLog = 32

// SanitizerViolations returns how many invariant violations the sanitizer
// observed (0 when Params.Sanitize is off).
func (c *Core) SanitizerViolations() uint64 { return c.sanCount }

// SanitizerLog returns up to maxSanitizerLog retained violations.
func (c *Core) SanitizerLog() []Violation { return c.sanLog }

func (c *Core) sanViolate(check string, pc, seq uint64, format string, args ...any) {
	c.sanCount++
	if len(c.sanLog) < maxSanitizerLog {
		//ndavet:allow alloclint:op sanitizer log append; runs only with Params.Sanitize set, and measured windows run with it off
		c.sanLog = append(c.sanLog, Violation{
			Cycle: c.cycle, Check: check, PC: pc, Seq: seq,
			//ndavet:allow alloclint:call sanitizer detail formatting; measured windows run with the sanitizer off
			Detail: fmt.Sprintf(format, args...),
		})
	}
}

// checkInvariants runs the checks over the ROB. Called at the end of Step
// (both the halted early-exit and the normal path).
func (c *Core) checkInvariants() {
	if !c.p.Sanitize {
		return
	}
	if c.sanWriterMark == nil {
		//ndavet:allow alloclint:op one-time sanitizer scratch allocation, and only with Params.Sanitize set
		c.sanWriterMark = make([]uint64, c.p.PhysRegs)
		//ndavet:allow alloclint:op one-time sanitizer scratch allocation, and only with Params.Sanitize set
		c.sanWriterSeq = make([]uint64, c.p.PhysRegs)
		//ndavet:allow alloclint:op one-time sanitizer scratch allocation, and only with Params.Sanitize set
		c.sanWriterBcast = make([]bool, c.p.PhysRegs)
	}

	// Pass 1: per-producer checks, and index the in-flight writer of every
	// destination physical register (unique: the free list hands each preg
	// to at most one in-flight instruction).
	for i := 0; i < c.robLen; i++ {
		e := c.robAt(i)
		if e.DestP == noPReg {
			continue
		}
		c.sanWriterMark[e.DestP] = c.cycle
		c.sanWriterSeq[e.DestP] = e.Seq
		c.sanWriterBcast[e.DestP] = e.Node.Broadcast
		if !e.Node.Broadcast && c.regReady[e.DestP] {
			c.sanViolate("ready-without-broadcast", e.PC, e.Seq,
				"p%d is ready but %v has not broadcast (completed=%v)",
				e.DestP, e.Inst, e.Node.Completed)
		}
		if e.Node.Broadcast && e.BcastCycle == c.cycle &&
			c.policy.Unsafe(&e.Node, c.atHead(e)) {
			c.sanViolate("unsafe-broadcast", e.PC, e.Seq,
				"%v broadcast this cycle while unsafe under %s (underGuard=%v bypassGuards=%d class=%d)",
				e.Inst, c.policy.Name, e.Node.UnderGuard, e.Node.BypassGuards, e.Node.Class)
		}
	}

	// Pass 2: consumers that entered execution this cycle.
	for i := 0; i < c.robLen; i++ {
		e := c.robAt(i)
		if !e.Issued || e.IssuedAt != c.cycle {
			continue
		}
		c.sanCheckSource(e, e.Src1P)
		if !e.Inst.IsStore() {
			c.sanCheckSource(e, e.Src2P)
		}
		if e.Inst.IsLoad() && e.ForwardSeq != 0 {
			c.sanCheckForward(e)
		}
	}
}

// sanCheckForward applies check 4: the load e took its value from the store
// with sequence number e.ForwardSeq this cycle; the store's data operand
// must trace to a broadcast (or retired) producer.
func (c *Core) sanCheckForward(e *Entry) {
	for i := 0; i < c.robLen; i++ {
		s := c.robAt(i)
		if s.Seq != e.ForwardSeq {
			continue
		}
		if src := s.Src2P; src != noPReg && c.sanWriterMark[src] == c.cycle &&
			c.sanWriterSeq[src] < s.Seq && !c.sanWriterBcast[src] {
			c.sanViolate("forward-before-broadcast", e.PC, e.Seq,
				"%v forwarded from store seq %d whose data producer (seq %d, p%d) has not broadcast",
				e.Inst, s.Seq, c.sanWriterSeq[src], src)
		}
		return
	}
}

func (c *Core) sanCheckSource(e *Entry, src int) {
	if src == noPReg {
		return
	}
	if c.sanWriterMark[src] != c.cycle {
		return // producer already retired: broadcast long done
	}
	if c.sanWriterSeq[src] < e.Seq && !c.sanWriterBcast[src] {
		c.sanViolate("issued-before-broadcast", e.PC, e.Seq,
			"%v issued reading p%d before its producer (seq %d) broadcast",
			e.Inst, src, c.sanWriterSeq[src])
	}
}
