package ooo

import "fmt"

// The propagation sanitizer is a per-cycle oracle for the NDA invariant the
// whole defense rests on (paper §5): a value produced by an instruction that
// is unsafe under the active policy must not wake or feed any consumer until
// the instruction becomes safe and its tag is broadcast. The checks run over
// architecturally visible simulator state only — they recompute nothing from
// the policy's internals beyond core.Policy.Unsafe — so a bug in either the
// pipeline's broadcast plumbing or the policy bookkeeping trips them.
//
// Enabled by Params.Sanitize; off by default because the checks cost a ROB
// scan per cycle. cmd/ndalint's cross-validation tests and the workload
// sanity tests run with it on.
//
// Checks, at the end of every cycle:
//
//  1. ready-without-broadcast: no in-flight producer's destination physical
//     register is marked ready before the producer's tag broadcast. The
//     broadcast is the single point NDA defers, so a ready bit appearing any
//     other way is a propagation leak.
//  2. unsafe-broadcast: no instruction whose tag broadcast happened this
//     cycle is still unsafe under the policy at end of cycle. Guards only
//     resolve (never un-resolve) and bypass guards only drop within a
//     cycle, so an end-of-cycle unsafe verdict proves the broadcast-time
//     one.
//  3. issued-before-broadcast: no instruction that entered execution this
//     cycle has an in-flight older producer (for any of its source
//     operands; store data is read at forwarding/commit time, not issue)
//     whose tag has not been broadcast.

// Violation is one sanitizer finding.
type Violation struct {
	Cycle  uint64
	Check  string
	PC     uint64
	Seq    uint64
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: %s at pc=%#x seq=%d: %s", v.Cycle, v.Check, v.PC, v.Seq, v.Detail)
}

// maxSanitizerLog bounds the retained violation records; the count is exact.
const maxSanitizerLog = 32

// SanitizerViolations returns how many invariant violations the sanitizer
// observed (0 when Params.Sanitize is off).
func (c *Core) SanitizerViolations() uint64 { return c.sanCount }

// SanitizerLog returns up to maxSanitizerLog retained violations.
func (c *Core) SanitizerLog() []Violation { return c.sanLog }

func (c *Core) sanViolate(check string, pc, seq uint64, format string, args ...any) {
	c.sanCount++
	if len(c.sanLog) < maxSanitizerLog {
		c.sanLog = append(c.sanLog, Violation{
			Cycle: c.cycle, Check: check, PC: pc, Seq: seq,
			Detail: fmt.Sprintf(format, args...),
		})
	}
}

// checkInvariants runs the three checks over the ROB. Called at the end of
// Step (both the halted early-exit and the normal path).
func (c *Core) checkInvariants() {
	if !c.p.Sanitize {
		return
	}
	if c.sanWriterMark == nil {
		c.sanWriterMark = make([]uint64, c.p.PhysRegs)
		c.sanWriterSeq = make([]uint64, c.p.PhysRegs)
		c.sanWriterBcast = make([]bool, c.p.PhysRegs)
	}

	// Pass 1: per-producer checks, and index the in-flight writer of every
	// destination physical register (unique: the free list hands each preg
	// to at most one in-flight instruction).
	for i := 0; i < c.robLen; i++ {
		e := c.robAt(i)
		if e.DestP == noPReg {
			continue
		}
		c.sanWriterMark[e.DestP] = c.cycle
		c.sanWriterSeq[e.DestP] = e.Seq
		c.sanWriterBcast[e.DestP] = e.Node.Broadcast
		if !e.Node.Broadcast && c.regReady[e.DestP] {
			c.sanViolate("ready-without-broadcast", e.PC, e.Seq,
				"p%d is ready but %v has not broadcast (completed=%v)",
				e.DestP, e.Inst, e.Node.Completed)
		}
		if e.Node.Broadcast && e.BcastCycle == c.cycle &&
			c.policy.Unsafe(&e.Node, c.atHead(e)) {
			c.sanViolate("unsafe-broadcast", e.PC, e.Seq,
				"%v broadcast this cycle while unsafe under %s (underGuard=%v bypassGuards=%d class=%d)",
				e.Inst, c.policy.Name, e.Node.UnderGuard, e.Node.BypassGuards, e.Node.Class)
		}
	}

	// Pass 2: consumers that entered execution this cycle.
	for i := 0; i < c.robLen; i++ {
		e := c.robAt(i)
		if !e.Issued || e.IssuedAt != c.cycle {
			continue
		}
		c.sanCheckSource(e, e.Src1P)
		if !e.Inst.IsStore() {
			c.sanCheckSource(e, e.Src2P)
		}
	}
}

func (c *Core) sanCheckSource(e *Entry, src int) {
	if src == noPReg {
		return
	}
	if c.sanWriterMark[src] != c.cycle {
		return // producer already retired: broadcast long done
	}
	if c.sanWriterSeq[src] < e.Seq && !c.sanWriterBcast[src] {
		c.sanViolate("issued-before-broadcast", e.PC, e.Seq,
			"%v issued reading p%d before its producer (seq %d) broadcast",
			e.Inst, src, c.sanWriterSeq[src])
	}
}
