package ooo

import (
	"testing"

	"nda/internal/asm"
	"nda/internal/core"
	"nda/internal/workload"
)

// TestSanitizerCleanOnWorkloads runs every workload kernel under Full
// Protection with the propagation sanitizer enabled: benign code must never
// trip the invariant ("no consumer issues on a value whose producer was
// unsafe at broadcast-defer time"), whatever the kernel's mix of
// load-dependent loads, branches, and calls.
func TestSanitizerCleanOnWorkloads(t *testing.T) {
	params := DefaultParams()
	params.Sanitize = true
	for _, s := range workload.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			c := NewFromProgram(s.Build(2), core.FullProtection(), params)
			if err := c.Run(maxCycles); err != nil {
				t.Fatal(err)
			}
			if n := c.SanitizerViolations(); n != 0 {
				t.Errorf("%d sanitizer violations under FullProtection", n)
				for _, v := range c.SanitizerLog() {
					t.Log(v)
				}
			}
		})
	}
}

// TestSanitizerCatchesForcedLeak is the negative oracle: if a ready bit
// appears on an in-flight producer's destination register before its tag
// broadcast — the exact plumbing bug NDA's deferral exists to rule out —
// the sanitizer must flag it. The test forces that state by hand and runs
// the end-of-cycle checks directly.
func TestSanitizerCatchesForcedLeak(t *testing.T) {
	prog, err := asm.Assemble(`
main:   li   t0, 1
        addi t1, t0, 1
        addi t2, t1, 1
        addi t3, t2, 1
        addi t4, t3, 1
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.Sanitize = true
	c := NewFromProgram(prog, core.FullProtection(), params)
	for cycles := 0; cycles < 1000 && !c.halted; cycles++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < c.robLen; i++ {
			e := c.robAt(i)
			if e.DestP == noPReg || e.Node.Broadcast || c.regReady[e.DestP] {
				continue
			}
			before := c.sanCount
			c.regReady[e.DestP] = true // the injected plumbing bug
			c.checkInvariants()
			c.regReady[e.DestP] = false
			if c.sanCount == before {
				t.Fatalf("sanitizer missed forced ready-without-broadcast on p%d (seq %d)", e.DestP, e.Seq)
			}
			log := c.SanitizerLog()
			last := log[len(log)-1]
			if last.Check != "ready-without-broadcast" || last.Seq != e.Seq {
				t.Fatalf("logged %v, want ready-without-broadcast at seq %d", last, e.Seq)
			}
			return
		}
	}
	t.Fatal("never observed an in-flight producer awaiting broadcast")
}
