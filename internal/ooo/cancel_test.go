package ooo

import (
	"errors"
	"testing"

	"nda/internal/core"
	"nda/internal/workload"
)

// TestCancelStopsRun: with the Cancel channel already closed, the core must
// give up within one polling stride instead of burning its cycle budget.
func TestCancelStopsRun(t *testing.T) {
	prog := workload.Random(99, 5_000)
	c := NewFromProgram(prog, core.Baseline(), DefaultParams())
	done := make(chan struct{})
	close(done)
	c.Cancel = done
	if err := c.Run(500_000_000); !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if c.Cycles() > 2*cancelStride {
		t.Errorf("core ran %d cycles after cancellation (stride %d)", c.Cycles(), cancelStride)
	}
}

// TestCancelNilChannelIsFree: the default (no Cancel channel) must behave
// exactly as before — the program runs to completion.
func TestCancelNilChannelIsFree(t *testing.T) {
	prog := workload.Random(99, 200)
	c := NewFromProgram(prog, core.Baseline(), DefaultParams())
	if err := c.Run(500_000_000); err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Error("program did not finish")
	}
}
