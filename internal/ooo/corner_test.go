package ooo

import (
	"fmt"
	"math/rand"
	"testing"

	"nda/internal/asm"
	"nda/internal/core"
	"nda/internal/emu"
	"nda/internal/isa"
	"nda/internal/workload"
)

// TestDifferentialTinyMachines runs random programs on drastically reduced
// machine shapes — tiny ROB/IQ/LQ/SQ, narrow widths, one broadcast port —
// so every structural-stall path (dispatch stalls, port starvation, queue
// pressure) is exercised while architectural results must stay golden.
func TestDifferentialTinyMachines(t *testing.T) {
	shapes := []func(p *Params){
		func(p *Params) { p.ROBSize = 16; p.IQSize = 8; p.LQSize = 4; p.SQSize = 4; p.PhysRegs = 64 },
		func(p *Params) { p.FetchWidth = 1; p.DispatchWidth = 1; p.IssueWidth = 1; p.CommitWidth = 1 },
		func(p *Params) { p.BroadcastPorts = 1 },
		func(p *Params) { p.FetchQSize = 2; p.FrontEndDepth = 1; p.RedirectPenalty = 0 },
		func(p *Params) {
			p.ROBSize = 8
			p.IQSize = 4
			p.LQSize = 2
			p.SQSize = 2
			p.PhysRegs = 48
			p.FetchWidth = 2
			p.IssueWidth = 2
			p.CommitWidth = 2
			p.BroadcastPorts = 2
		},
	}
	for si, shape := range shapes {
		for seed := int64(0); seed < 4; seed++ {
			t.Run(fmt.Sprintf("shape%d/seed%d", si, seed), func(t *testing.T) {
				prog := workload.Random(9000+seed, 80)
				golden := emu.New(prog)
				if err := golden.Run(2_000_000); err != nil {
					t.Fatal(err)
				}
				for _, pol := range []core.Policy{core.Baseline(), core.FullProtection()} {
					p := DefaultParams()
					shape(&p)
					c := NewFromProgram(prog, pol, p)
					if err := c.Run(20_000_000); err != nil {
						t.Fatalf("%s: %v", pol.Name, err)
					}
					if c.Retired() != golden.Retired {
						t.Errorf("%s: retired %d, want %d", pol.Name, c.Retired(), golden.Retired)
					}
					for i, want := range golden.Regs {
						if got := c.Reg(isa.Reg(i)); got != want {
							t.Errorf("%s: x%d = %#x, want %#x", pol.Name, i, got, want)
						}
					}
				}
			})
		}
	}
}

// TestDifferentialRandomParams fuzzes machine shapes entirely.
func TestDifferentialRandomParams(t *testing.T) {
	r := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 10; trial++ {
		p := DefaultParams()
		p.ROBSize = 8 + r.Intn(64)
		p.IQSize = 4 + r.Intn(32)
		p.LQSize = 2 + r.Intn(16)
		p.SQSize = 2 + r.Intn(16)
		p.PhysRegs = isa.NumGPR + p.ROBSize + 4 + r.Intn(32)
		p.FetchWidth = 1 + r.Intn(8)
		p.DispatchWidth = 1 + r.Intn(8)
		p.IssueWidth = 1 + r.Intn(8)
		p.CommitWidth = 1 + r.Intn(8)
		p.BroadcastPorts = 1 + r.Intn(8)
		p.FrontEndDepth = 1 + r.Intn(10)
		p.RedirectPenalty = r.Intn(6)
		prog := workload.Random(7000+int64(trial), 60)
		golden := emu.New(prog)
		if err := golden.Run(2_000_000); err != nil {
			t.Fatal(err)
		}
		c := NewFromProgram(prog, core.StrictBR(), p)
		if err := c.Run(50_000_000); err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, p, err)
		}
		if c.Retired() != golden.Retired {
			t.Errorf("trial %d: retired %d, want %d", trial, c.Retired(), golden.Retired)
		}
		for i, want := range golden.Regs {
			if got := c.Reg(isa.Reg(i)); got != want {
				t.Errorf("trial %d: x%d = %#x, want %#x", trial, i, got, want)
				break
			}
		}
	}
}

func TestBTBMissStallsAndResolves(t *testing.T) {
	// A cold indirect call: the BTB misses, fetch must stall until the
	// JALR resolves, then continue at the right target (Fig. 5 mechanism).
	c := runOoO(t, `
        .data
        .org 0x10000
tbl:    .word64 target
        .text
main:   la   t0, tbl
        ld   t1, (t0)
        jr   t1
        halt                # skipped
target: li   a0, 99
        halt
`, core.Baseline())
	if c.Reg(isa.RegA0) != 99 {
		t.Errorf("a0 = %d", c.Reg(isa.RegA0))
	}
	if c.Stats().Mispredicts != 0 {
		t.Errorf("a BTB-miss stall is not a mispredict, got %d", c.Stats().Mispredicts)
	}
}

func TestBTBHitMispredictSquashes(t *testing.T) {
	// Train the BTB on one target, then jump elsewhere through the same
	// site: the stale prediction must squash cleanly.
	c := runOoO(t, `
        .data
        .org 0x10000
tbl:    .word64 f1, f2
        .text
main:   la   s0, tbl
        li   s1, 6
loop:   andi t0, s1, 1
        slli t0, t0, 3
        add  t0, t0, s0
        ld   t1, (t0)
        mv   a0, s1
site:   callr t1            # alternating targets -> mispredicts
        addi s1, s1, -1
        bne  s1, zero, loop
        halt
f1:     addi s2, s2, 1
        ret
f2:     addi s3, s3, 100
        ret
`, core.Baseline())
	if c.Reg(isa.Reg(18)) != 3 || c.Reg(isa.Reg(19)) != 300 {
		t.Errorf("s2=%d s3=%d, want 3/300", c.Reg(isa.Reg(18)), c.Reg(isa.Reg(19)))
	}
	if c.Stats().Mispredicts == 0 {
		t.Error("alternating indirect targets must mispredict")
	}
}

func TestPartialStoreLoadOverlapReplays(t *testing.T) {
	// A byte store under a wider load cannot forward; the load must replay
	// until the store drains and still see the merged bytes.
	c := runOoO(t, `
        .data
        .org 0x10000
slot:   .word64 0x1111111111111111
        .org 0x40000
far:    .word64 0
        .text
main:   la   s0, slot
        la   s1, far
        ld   t3, (s1)        # cold miss pins the store in the SQ
        li   t0, 0xAB
        sb   t0, 2(s0)       # partial overlap under the ld below
        ld   t1, (s0)        # cannot forward: replays, then reads merged value
        halt
`, core.Baseline())
	if got := c.Reg(isa.RegT1); got != 0x111111111_1AB_1111 {
		t.Errorf("merged load = %#x", got)
	}
	if c.Stats().LoadReplays == 0 {
		t.Error("partial overlap must force replays")
	}
}

func TestStoreBypassViolationSquash(t *testing.T) {
	// A load that bypasses an unresolved aliasing store must be squashed
	// and re-executed when the store's address resolves.
	c := runOoO(t, `
        .data
        .org 0x10000
slot:   .word64 7
        .org 0x40000
far:    .word64 0
        .text
main:   la   s0, slot
        la   s1, far
        ld   t4, (s0)        # warm the slot line
        ld   t3, (s1)        # cold: delays the address chain below
        andi t3, t3, 0
        add  t5, s0, t3      # = slot, late
        li   t0, 99
        sd   t0, (t5)        # unresolved address
        ld   t1, (s0)        # bypasses; stale 7; must re-execute to 99
        halt
`, core.Baseline())
	if got := c.Reg(isa.RegT1); got != 99 {
		t.Errorf("t1 = %d, want 99 (stale value must not survive)", got)
	}
	if c.Stats().OrderViolations == 0 {
		t.Error("expected a memory-order violation")
	}
	if c.Stats().BypassedLoads == 0 {
		t.Error("expected a speculative bypass")
	}
}

func TestKernelStoreFaults(t *testing.T) {
	c := runOoO(t, `
        .data
        .org 0x20000
        .kernel
prot:   .word64 1
        .text
main:   la t0, handler
        wrmsr 0x0, t0
        la t1, prot
        li t2, 5
        sd t2, (t1)          # faults
        halt
handler: li t3, 77
        halt
`, core.Baseline())
	if c.Reg(isa.Reg(28)) != 77 {
		t.Error("kernel store must fault to the handler")
	}
	if c.Memory().Read(0x20000, 8) != 1 {
		t.Error("faulting store must not write memory")
	}
}

func TestPrivilegedWrmsrFaults(t *testing.T) {
	c := runOoO(t, `
main:   la t0, handler
        wrmsr 0x0, t0
        li t1, 123
        wrmsr 0x10, t1       # privileged: faults
        halt
handler: li t2, 1
        halt
`, core.Baseline())
	if c.Reg(isa.RegT2) != 1 {
		t.Error("privileged wrmsr must fault")
	}
	if c.MSR(isa.MSRSecretKey) != 0 {
		t.Error("privileged wrmsr must not take effect")
	}
}

func TestSpecOffWindowSerializes(t *testing.T) {
	// Inside a SPECOFF window, branches stall fetch until resolution: more
	// cycles, zero mispredicts on unpredictable branches, same results.
	src := func(spec bool) string {
		on, off := "", ""
		if spec {
			on, off = "        specoff\n", "        specon\n"
		}
		return `
        .data
        .org 0x10000
pat:    .byte 1, 0, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0, 1, 0, 0
        .text
main:   la   s0, pat
        li   s1, 16
        li   s2, 0
` + on + `
loop:   lbu  t0, (s0)
        beq  t0, zero, skip
        addi s2, s2, 5
skip:   addi s0, s0, 1
        addi s1, s1, -1
        bne  s1, zero, loop
` + off + `
        halt
`
	}
	base := runOoO(t, src(false), core.Baseline())
	fenced := runOoO(t, src(true), core.Baseline())
	if base.Reg(isa.Reg(19)) != fenced.Reg(isa.Reg(19)) {
		t.Error("SPECOFF must not change architectural results")
	}
	if fenced.Cycles() <= base.Cycles() {
		t.Errorf("SPECOFF window must cost cycles: %d vs %d", fenced.Cycles(), base.Cycles())
	}
	if fenced.Stats().Mispredicts > 0 {
		t.Errorf("no speculation means no mispredicts, got %d", fenced.Stats().Mispredicts)
	}
	if base.Stats().Mispredicts == 0 {
		t.Error("the unfenced run should mispredict on this pattern")
	}
}

func TestExtraBroadcastDelayCostsCycles(t *testing.T) {
	prog := workload.Random(555, 150)
	var prev uint64
	for _, d := range []int{0, 2} {
		pol := core.Strict()
		pol.ExtraBroadcastDelay = d
		c := NewFromProgram(prog, pol, DefaultParams())
		if err := c.Run(maxCycles); err != nil {
			t.Fatal(err)
		}
		if d > 0 && c.Cycles() < prev {
			t.Errorf("delay %d ran faster: %d < %d", d, c.Cycles(), prev)
		}
		prev = c.Cycles()
	}
}

func TestRdcycleSerializesAfterLoads(t *testing.T) {
	// rdcycle must not complete before an older in-flight DRAM load: the
	// measured delta over a cold load must be at least the DRAM round trip.
	c := runOoO(t, `
        .data
        .org 0x40000
far:    .word64 9
        .text
main:   la   s0, far
        clflush (s0)
        fence
        rdcycle t0
        ld   t1, (s0)
        rdcycle t2
        sub  t2, t2, t0
        halt
`, core.Baseline())
	if delta := c.Reg(isa.RegT2); delta < 100 {
		t.Errorf("rdcycle pair around a DRAM miss = %d cycles, want >= 100", delta)
	}
}

func TestWrongPathFaultDoesNotFire(t *testing.T) {
	// A faulting load on the wrong path must be squashed without ever
	// delivering its fault.
	c := runOoO(t, `
        .data
        .org 0x10000
size:   .word64 16
        .org 0x20000
        .kernel
ksec:   .word64 1
        .text
main:   li   s1, 10
train:  la   t0, size
        clflush (t0)
        ld   t1, (t0)
        li   a0, 0
        bge  a0, t1, out     # not taken on the correct path
        addi s2, s2, 1
        j    next
out:    la   t2, ksec
        ld   t3, (t2)        # only ever on the wrong path
next:   addi s1, s1, -1
        bne  s1, zero, train
        halt
`, core.Baseline())
	if c.Stats().Faults != 0 {
		t.Errorf("wrong-path kernel load delivered %d faults", c.Stats().Faults)
	}
	if c.Reg(isa.Reg(18)) != 10 {
		t.Errorf("s2 = %d", c.Reg(isa.Reg(18)))
	}
}

func TestHaltOnWrongPathIgnored(t *testing.T) {
	// A mis-trained branch fetches a wrong-path HALT; the machine must not
	// stop.
	c := runOoO(t, `
        .data
        .org 0x10000
size:   .word64 100
        .text
main:   li   s1, 20
loop:   la   t0, size
        clflush (t0)
        ld   t1, (t0)
        li   a0, 200
        blt  a0, t1, dead    # never taken architecturally; mis-trains taken? no: a0>t1
        addi s2, s2, 1
        addi s1, s1, -1
        bne  s1, zero, loop
        li   a1, 555
        halt
dead:   halt
`, core.Baseline())
	if c.Reg(isa.RegA1) != 555 || c.Reg(isa.Reg(18)) != 20 {
		t.Errorf("a1=%d s2=%d", c.Reg(isa.RegA1), c.Reg(isa.Reg(18)))
	}
}

func TestDeadlockGuardReportsInvalidCommit(t *testing.T) {
	// Architecturally falling off the end of the text segment must surface
	// as an error, not an infinite loop.
	p, err := asm.Assemble("main: nop\nnop")
	if err != nil {
		t.Fatal(err)
	}
	c := NewFromProgram(p, core.Baseline(), DefaultParams())
	if err := c.Run(3_000_000); err == nil {
		t.Error("running off the text segment must error")
	}
}

func TestStatsAfterReset(t *testing.T) {
	prog := workload.Random(808, 200)
	c := NewFromProgram(prog, core.Baseline(), DefaultParams())
	if err := c.RunInsts(500, maxCycles); err != nil {
		t.Fatal(err)
	}
	c.ResetStats()
	if c.Stats().Cycles != 0 || c.Stats().Committed != 0 {
		t.Error("ResetStats must zero counters")
	}
	if err := c.Run(maxCycles); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Committed >= c.Retired() {
		t.Error("post-reset counters must exclude the warm-up")
	}
	sum := c.Stats().CommitCycles + c.Stats().MemStallCycles + c.Stats().BackendStalls + c.Stats().FrontendStalls
	if sum != c.Stats().Cycles {
		t.Errorf("breakdown %d != cycles %d after reset", sum, c.Stats().Cycles)
	}
}
