// Package ooo implements a cycle-level out-of-order core with physical
// register renaming, a reorder buffer, an issue queue woken by tag
// broadcasts, load/store queues with store-to-load forwarding and
// speculative store bypass, branch prediction with wrong-path execution,
// and precise exceptions at commit.
//
// The core executes real wrong-path instructions: on a mispredicted branch
// it fetches and executes the attacker-visible wrong path, including cache
// fills and BTB updates that survive the squash — the micro-architectural
// side effects speculative execution attacks rely on. The NDA propagation
// policies (package core) plug into the single point the paper modifies:
// the tag-broadcast stage between instruction completion and dependent
// wake-up.
package ooo

import "nda/internal/isa"

// Params configures the core. DefaultParams reproduces Table 3 of the
// paper: an 8-issue Haswell-like machine with a 192-entry ROB, 32-entry
// load and store queues, a 4096-entry BTB, and a 16-entry RAS.
type Params struct {
	FetchWidth    int // instructions fetched per cycle
	DispatchWidth int // instructions renamed/dispatched per cycle
	IssueWidth    int // instructions entering execution per cycle
	CommitWidth   int // instructions retired per cycle

	// BroadcastPorts bounds tag broadcasts per cycle. NDA does not add
	// ports: deferred broadcasts compete with completing instructions,
	// and completing instructions win (paper §5.1).
	BroadcastPorts int

	ROBSize    int
	IQSize     int
	LQSize     int
	SQSize     int
	PhysRegs   int
	FetchQSize int

	// FrontEndDepth is the fetch-to-dispatch pipeline depth in cycles; it
	// dominates the mispredict/squash penalty.
	FrontEndDepth int
	// RedirectPenalty is the additional delay before fetch resumes after a
	// squash or a front-end redirect.
	RedirectPenalty int

	// BTBEntries/BTBWays/RASEntries/GshareBits size the predictors.
	BTBEntries int
	BTBWays    int
	RASEntries int
	GshareBits uint

	// Execution latencies (cycles). Loads pay AGULatency plus the cache
	// round trip; forwarded loads pay AGULatency plus ForwardLatency.
	ALULatency     int
	MulLatency     int
	DivLatency     int
	BranchLatency  int
	AGULatency     int
	ForwardLatency int
	MSRLatency     int
	FlushLatency   int

	// MeltdownVulnerable selects whether a faulting load (or privileged
	// RDMSR) forwards the real value to dependents before the fault is
	// taken at commit — the implementation flaw Meltdown-class attacks
	// exploit. When false, faulting accesses forward zero.
	MeltdownVulnerable bool

	// SpeculativeBTBUpdate controls whether indirect branches executing on
	// (possibly wrong) speculative paths update the BTB. True matches real
	// hardware and enables the paper's §3 BTB covert channel.
	SpeculativeBTBUpdate bool

	// DeadlockCycles aborts the simulation if no instruction commits for
	// this many consecutive cycles (a simulator bug guard).
	DeadlockCycles uint64

	// Sanitize enables the per-cycle propagation sanitizer (sanitizer.go):
	// an oracle asserting that no consumer issues on a value whose producer
	// was unsafe at broadcast-defer time. Costs a ROB scan per cycle; used
	// by the static/dynamic cross-validation tests.
	Sanitize bool
}

// DefaultParams returns the Table 3 configuration.
func DefaultParams() Params {
	return Params{
		FetchWidth:    8,
		DispatchWidth: 8,
		IssueWidth:    8,
		CommitWidth:   8,

		BroadcastPorts: 8,

		ROBSize:    192,
		IQSize:     60,
		LQSize:     32,
		SQSize:     32,
		PhysRegs:   256,
		FetchQSize: 32,

		FrontEndDepth:   8,
		RedirectPenalty: 4,

		BTBEntries: 4096,
		BTBWays:    4,
		RASEntries: 16,
		GshareBits: 14,

		ALULatency:     1,
		MulLatency:     3,
		DivLatency:     20,
		BranchLatency:  1,
		AGULatency:     1,
		ForwardLatency: 3,
		MSRLatency:     4,
		FlushLatency:   4,

		MeltdownVulnerable:   true,
		SpeculativeBTBUpdate: true,

		DeadlockCycles: 200_000,
	}
}

// execLatency returns the fixed execution latency for non-load ops.
func (p *Params) execLatency(op isa.Op) int {
	switch op {
	case isa.OpMul:
		return p.MulLatency
	case isa.OpDiv, isa.OpRem:
		return p.DivLatency
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu,
		isa.OpJal, isa.OpJalr:
		return p.BranchLatency
	case isa.OpSd, isa.OpSw, isa.OpSb:
		return p.AGULatency
	case isa.OpRdmsr, isa.OpWrmsr:
		return p.MSRLatency
	case isa.OpClflush:
		return p.FlushLatency
	default:
		return p.ALULatency
	}
}
