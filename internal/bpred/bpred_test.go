package bpred

import (
	"testing"
	"testing/quick"
)

// train runs one predict/resolve round the way the core does: the counter is
// trained with the actual outcome, and on a misprediction the speculative
// history bit is repaired (the core does this during the squash).
func train(g *Gshare, pc uint64, outcome bool) (predicted bool) {
	pred, ck := g.Predict(pc)
	g.Update(pc, outcome, ck)
	if pred != outcome {
		g.Restore(ck, outcome)
	}
	return pred
}

func TestGshareLearnsBias(t *testing.T) {
	g := NewGshare(10)
	pc := uint64(0x1000)
	for i := 0; i < 100; i++ {
		train(g, pc, true)
	}
	taken, _ := g.Predict(pc)
	if !taken {
		t.Error("gshare must learn an always-taken branch")
	}
}

func TestGshareLearnsAlternatingWithHistory(t *testing.T) {
	// A strictly alternating branch is predictable from one bit of global
	// history; train until warm, then expect correct predictions.
	g := NewGshare(12)
	pc := uint64(0x2000)
	outcome := false
	correct := 0
	for i := 0; i < 200; i++ {
		pred := train(g, pc, outcome)
		if i >= 100 && pred == outcome {
			correct++
		}
		outcome = !outcome
	}
	if correct < 95 {
		t.Errorf("alternating branch predicted correctly only %d/100 times", correct)
	}
}

func TestGshareCheckpointRestore(t *testing.T) {
	g := NewGshare(10)
	h0 := g.History()
	_, ck := g.Predict(0x1000)
	if ck != h0 {
		t.Error("checkpoint must capture pre-prediction history")
	}
	g.Predict(0x1004)
	g.Predict(0x1008)
	g.Restore(ck, true)
	if g.History() != (h0<<1)|1 {
		t.Errorf("Restore must re-apply the actual outcome: %b", g.History())
	}
	g.SetHistory(h0)
	if g.History() != h0 {
		t.Error("SetHistory must rewind exactly")
	}
}

func TestBTBInsertLookup(t *testing.T) {
	b := NewBTB(64, 4)
	if _, ok := b.Lookup(0x1000); ok {
		t.Error("empty BTB must miss")
	}
	b.Update(0x1000, 0x2000)
	if tgt, ok := b.Lookup(0x1000); !ok || tgt != 0x2000 {
		t.Errorf("lookup = %#x, %v", tgt, ok)
	}
	b.Update(0x1000, 0x3000)
	if tgt, _ := b.Lookup(0x1000); tgt != 0x3000 {
		t.Error("update must replace the target")
	}
	if b.Lookups != 3 || b.Hits != 2 {
		t.Errorf("stats: lookups=%d hits=%d", b.Lookups, b.Hits)
	}
}

func TestBTBConflictEviction(t *testing.T) {
	// 16 sets x 4 ways; PCs with identical set index conflict.
	b := NewBTB(64, 4)
	base := uint64(0x1000)
	stride := uint64(16 * 4) // one set stride in bytes (sets indexed by pc>>2)
	for i := uint64(0); i < 5; i++ {
		b.Update(base+i*stride, 0x100+i)
	}
	if _, ok := b.Peek(base); ok {
		t.Error("LRU entry must be evicted after overfilling the set")
	}
	for i := uint64(1); i < 5; i++ {
		if tgt, ok := b.Peek(base + i*stride); !ok || tgt != 0x100+i {
			t.Errorf("entry %d lost: %#x %v", i, tgt, ok)
		}
	}
}

func TestBTBPeekNoStats(t *testing.T) {
	b := NewBTB(64, 4)
	b.Update(0x1000, 0x2000)
	lookups := b.Lookups
	b.Peek(0x1000)
	if b.Lookups != lookups {
		t.Error("Peek must not count as a lookup")
	}
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS must underflow")
	}
	r.Push(0x100)
	r.Push(0x200)
	if a, ok := r.Pop(); !ok || a != 0x200 {
		t.Errorf("pop = %#x", a)
	}
	if a, ok := r.Pop(); !ok || a != 0x100 {
		t.Errorf("pop = %#x", a)
	}
	if _, ok := r.Pop(); ok {
		t.Error("RAS must be empty again")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if a, _ := r.Pop(); a != 3 {
		t.Errorf("pop = %d, want 3", a)
	}
	if a, _ := r.Pop(); a != 2 {
		t.Errorf("pop = %d, want 2", a)
	}
	if _, ok := r.Pop(); ok {
		t.Error("entry 1 was overwritten; stack must be empty")
	}
}

func TestRASSnapshotRestore(t *testing.T) {
	r := NewRAS(8)
	r.Push(0xA)
	r.Push(0xB)
	snap := r.Snapshot()
	r.Pop()
	r.Push(0xC)
	r.Push(0xD)
	r.Restore(snap)
	if r.Depth() != 2 {
		t.Fatalf("depth = %d", r.Depth())
	}
	if a, _ := r.Pop(); a != 0xB {
		t.Errorf("post-restore pop = %#x, want 0xB", a)
	}
}

func TestRASSnapshotProperty(t *testing.T) {
	f := func(ops []uint8, addrs []uint64) bool {
		r := NewRAS(16)
		for i, op := range ops {
			if op%2 == 0 && i < len(addrs) {
				r.Push(addrs[i])
			} else {
				r.Pop()
			}
		}
		snap := r.Snapshot()
		depth := r.Depth()
		// Arbitrary mutation...
		r.Push(0xFFFF)
		r.Pop()
		r.Pop()
		// ...must be fully undone by Restore.
		r.Restore(snap)
		if r.Depth() != depth {
			return false
		}
		r2 := NewRAS(16)
		r2.Restore(snap)
		for r.Depth() > 0 {
			a1, _ := r.Pop()
			a2, _ := r2.Pop()
			if a1 != a2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewBTB(48, 4) }, // 12 sets: not a power of two
		func() { NewRAS(0) },
	} {
		func() {
			defer func() { recover() }()
			f()
			t.Error("constructor must panic on invalid sizing")
		}()
	}
}
