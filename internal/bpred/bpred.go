// Package bpred implements the branch prediction structures of the simulated
// front end: a gshare direction predictor, a set-associative branch target
// buffer (BTB), and a return address stack (RAS).
//
// Two properties matter for the NDA reproduction beyond raw accuracy:
//
//  1. The BTB is updated when branches *execute*, including on speculative
//     wrong paths, and those updates are never rolled back on a squash —
//     exactly the behaviour §3 of the paper exploits to build the BTB covert
//     channel.
//  2. The direction predictor's global history is checkpointed per branch
//     and restored on mis-speculation, so timing is deterministic and
//     wrong-path pollution of the history does not accumulate.
package bpred

// Gshare is a global-history direction predictor with a table of 2-bit
// saturating counters indexed by PC xor history.
type Gshare struct {
	pht     []uint8
	mask    uint64
	history uint64
	bits    uint
	// Stats
	Lookups    uint64
	Mispredict uint64
}

// NewGshare builds a predictor with 2^bits counters. Counters start weakly
// not-taken (01).
func NewGshare(bits uint) *Gshare {
	g := &Gshare{pht: make([]uint8, 1<<bits), mask: (1 << bits) - 1, bits: bits}
	for i := range g.pht {
		g.pht[i] = 1
	}
	return g
}

func (g *Gshare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// Predict returns the predicted direction for the branch at pc and
// speculatively updates the global history with that prediction. The
// returned checkpoint restores the history if the branch squashes.
func (g *Gshare) Predict(pc uint64) (taken bool, checkpoint uint64) {
	g.Lookups++
	checkpoint = g.history
	taken = g.pht[g.index(pc)] >= 2
	g.history = (g.history << 1) | b2u(taken)
	return taken, checkpoint
}

// Update trains the counter for the branch at pc with its actual direction.
// histAtPredict must be the checkpoint returned by Predict for this branch,
// so training indexes the same counter the prediction used.
func (g *Gshare) Update(pc uint64, taken bool, histAtPredict uint64) {
	saved := g.history
	g.history = histAtPredict
	idx := g.index(pc)
	g.history = saved
	c := g.pht[idx]
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	g.pht[idx] = c
}

// Restore rewinds the global history to a checkpoint taken at a squashed
// branch and re-applies the branch's actual outcome.
func (g *Gshare) Restore(checkpoint uint64, actualTaken bool) {
	g.history = (checkpoint << 1) | b2u(actualTaken)
}

// History returns the current global history register (for tests).
func (g *Gshare) History() uint64 { return g.history }

// SetHistory rewinds the global history register to a previously captured
// checkpoint; used when squashing wrong-path fetches.
func (g *Gshare) SetHistory(h uint64) { g.history = h }

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BTB is a set-associative branch target buffer mapping branch PCs to
// predicted targets. Updates are applied at branch execution — including on
// wrong paths — and never reverted, which is what makes it usable as a
// covert channel (paper §3).
type BTB struct {
	sets  [][]btbEntry
	ways  int
	mask  uint64
	clock uint64
	// Stats
	Lookups uint64
	Hits    uint64
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	stamp  uint64
}

// NewBTB builds a BTB with the given total entry count and associativity.
// entries/ways must be a power of two.
func NewBTB(entries, ways int) *BTB {
	numSets := entries / ways
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic("bpred: BTB set count must be a positive power of two")
	}
	sets := make([][]btbEntry, numSets)
	backing := make([]btbEntry, numSets*ways)
	for i := range sets {
		sets[i], backing = backing[:ways], backing[ways:]
	}
	return &BTB{sets: sets, ways: ways, mask: uint64(numSets - 1)}
}

func (b *BTB) index(pc uint64) (int, uint64) {
	line := pc >> 2
	return int(line & b.mask), line >> 1 // tag keeps the set bits' upper part plus more
}

// Lookup returns the predicted target for the branch at pc.
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	b.Lookups++
	set, tag := b.index(pc)
	b.clock++
	for i := range b.sets[set] {
		e := &b.sets[set][i]
		if e.valid && e.tag == tag {
			e.stamp = b.clock
			b.Hits++
			return e.target, true
		}
	}
	return 0, false
}

// Update installs or refreshes the mapping pc -> target, evicting LRU.
func (b *BTB) Update(pc, target uint64) {
	set, tag := b.index(pc)
	b.clock++
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range b.sets[set] {
		e := &b.sets[set][i]
		if e.valid && e.tag == tag {
			e.target = target
			e.stamp = b.clock
			return
		}
		if !e.valid {
			victim, oldest = i, 0
		} else if e.stamp < oldest {
			victim, oldest = i, e.stamp
		}
	}
	b.sets[set][victim] = btbEntry{valid: true, tag: tag, target: target, stamp: b.clock}
}

// Peek returns the target for pc without touching LRU state or stats.
func (b *BTB) Peek(pc uint64) (uint64, bool) {
	set, tag := b.index(pc)
	for i := range b.sets[set] {
		e := &b.sets[set][i]
		if e.valid && e.tag == tag {
			return e.target, true
		}
	}
	return 0, false
}

// RAS is a circular return address stack. Overflow silently wraps (oldest
// entries are overwritten); underflow returns ok=false.
type RAS struct {
	entries []uint64
	top     int // index of the most recent push
	depth   int // number of live entries, capped at len(entries)
}

// NewRAS builds a stack with the given entry count.
func NewRAS(entries int) *RAS {
	if entries <= 0 {
		panic("bpred: RAS must have at least one entry")
	}
	return &RAS{entries: make([]uint64, entries), top: -1}
}

// Push records a return address at a call.
func (r *RAS) Push(addr uint64) {
	r.top = (r.top + 1) % len(r.entries)
	r.entries[r.top] = addr
	if r.depth < len(r.entries) {
		r.depth++
	}
}

// Pop predicts the target of a return.
func (r *RAS) Pop() (addr uint64, ok bool) {
	if r.depth == 0 {
		return 0, false
	}
	addr = r.entries[r.top]
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	r.depth--
	return addr, true
}

// Snapshot captures the full RAS state; branches checkpoint it so a squash
// can restore the stack exactly.
func (r *RAS) Snapshot() RASSnapshot {
	s := RASSnapshot{top: r.top, depth: r.depth, entries: make([]uint64, len(r.entries))}
	copy(s.entries, r.entries)
	return s
}

// SnapshotInto captures the RAS state into dst, reusing dst's backing array
// when it is already the right size. The allocation-free equivalent of
// Snapshot for callers that checkpoint on every call/return.
func (r *RAS) SnapshotInto(dst *RASSnapshot) {
	if len(dst.entries) != len(r.entries) {
		//ndavet:allow alloclint:op resizes the checkpoint buffer only when the configured RAS depth changed; steady-state snapshots reuse it (bench-gated 0 B/op)
		dst.entries = make([]uint64, len(r.entries))
	}
	dst.top, dst.depth = r.top, r.depth
	copy(dst.entries, r.entries)
}

// CopyInto copies the snapshot into dst, reusing dst's backing array when it
// is already the right size. dst shares no storage with s afterwards.
func (s RASSnapshot) CopyInto(dst *RASSnapshot) {
	if len(dst.entries) != len(s.entries) {
		//ndavet:allow alloclint:op resizes the copy target only on first use; steady-state checkpoint copies reuse the buffer
		dst.entries = make([]uint64, len(s.entries))
	}
	dst.top, dst.depth = s.top, s.depth
	copy(dst.entries, s.entries)
}

// Restore rewinds the RAS to a snapshot.
func (r *RAS) Restore(s RASSnapshot) {
	r.top, r.depth = s.top, s.depth
	copy(r.entries, s.entries)
}

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return r.depth }

// RASSnapshot is an immutable copy of RAS state.
type RASSnapshot struct {
	entries []uint64
	top     int
	depth   int
}
