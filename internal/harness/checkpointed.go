package harness

import (
	"context"
	"fmt"

	"nda/internal/checkpoint"
	"nda/internal/core"
	"nda/internal/isa"
	"nda/internal/ooo"
	"nda/internal/par"
	"nda/internal/stats"
	"nda/internal/workload"
)

// Checkpoint-based SMARTS sampling: instead of simulating the whole region
// between measurement intervals in detail (the continuous mode of
// MeasureOoO), the functional emulator fast-forwards to sampling points
// spread CheckpointStride instructions apart, captures an architectural
// checkpoint at each (the Lapidary role), and the timing core runs only the
// warm-up + measurement window from every checkpoint. This both cuts
// detailed-simulation cost and samples more distant program phases, like
// the paper's methodology.
//
// Every sample is an independent simulation seeded entirely by its
// checkpoint (restoring clones the checkpoint's memory), so the samples of
// one measurement fan out over cfg.Workers goroutines, and one workload's
// series is shared read-only by every policy's measurement of it — or, via
// internal/serve's content-addressed cache, by every *request* that ever
// asks for that (workload, sampling spec) again.

// SampleSeries is a workload's sampling points: the generated program plus
// the checkpoints the timing cores restore from. It is immutable once
// taken, so any number of concurrent measurements may share it.
type SampleSeries struct {
	prog *isa.Program
	cps  []*checkpoint.Checkpoint
}

// TakeSamples builds the workload's program and captures cfg.Intervals
// checkpoints starting after cfg.WarmInsts instructions, spaced
// cfg.CheckpointStride apart (0 = 10x the warm+measure window).
func TakeSamples(spec workload.Spec, cfg Config) (*SampleSeries, error) {
	prog := spec.Build(hugeIters)
	stride := cfg.CheckpointStride
	if stride == 0 {
		stride = 10 * (cfg.WarmInsts + cfg.MeasureInsts)
	}
	cps, err := checkpoint.TakeSeries(prog, cfg.WarmInsts, stride, cfg.Intervals)
	if err != nil {
		return nil, fmt.Errorf("harness: %s checkpoints: %w", spec.Name, err)
	}
	return &SampleSeries{prog: prog, cps: cps}, nil
}

// oooSample is one detailed-simulation sample, snapshotted by value so the
// fold below never aliases a live core's counters.
type oooSample struct {
	cpi float64
	s   ooo.Stats
}

// MeasureOoOSamples runs the timing samples of one (workload, policy) cell
// over the shared series, up to cfg.Workers at a time, and folds them in
// sample order — the fold is identical no matter which samples finish
// first. Cancellation: queued samples stop starting and running cores stop
// mid-simulation once ctx is done.
func MeasureOoOSamples(ctx context.Context, spec workload.Spec, pol core.Policy, cfg Config, ss *SampleSeries) (*Measurement, error) {
	out := make([]oooSample, len(ss.cps))
	err := par.RunCtx(ctx, len(ss.cps), cfg.workerCount(), func(i int) error {
		c := ss.cps[i].OoO(ss.prog, pol, cfg.Params)
		c.Cancel = ctx.Done()
		if err := c.RunInsts(cfg.WarmInsts, cfg.MaxCycles); err != nil {
			return ctxErr(ctx, fmt.Errorf("harness: %s/%s sample %d warm-up: %w", spec.Name, pol.Name, i, err))
		}
		c.ResetStats()
		if err := c.RunInsts(cfg.MeasureInsts, cfg.MaxCycles); err != nil {
			return ctxErr(ctx, fmt.Errorf("harness: %s/%s sample %d: %w", spec.Name, pol.Name, i, err))
		}
		s := *c.Stats()
		out[i] = oooSample{cpi: s.CPI(), s: s}
		return nil
	})
	if err != nil {
		return nil, err
	}
	m := &Measurement{Workload: spec.Name, Config: pol.Name}
	var cpis []float64
	var agg ooo.Stats
	for _, smp := range out {
		cpis = append(cpis, smp.cpi)
		addStats(&agg, smp.s)
	}
	m.CPI = stats.Summarize(cpis)
	fillFromStats(m, &agg)
	return m, nil
}

// MeasureOoOCheckpointed measures one benchmark under one policy using
// checkpoint sampling (cfg.Intervals samples, each warmed for cfg.WarmInsts
// detailed instructions and measured for cfg.MeasureInsts, run up to
// cfg.Workers at a time).
func MeasureOoOCheckpointed(spec workload.Spec, pol core.Policy, cfg Config) (*Measurement, error) {
	ss, err := TakeSamples(spec, cfg)
	if err != nil {
		return nil, err
	}
	return MeasureOoOSamples(context.Background(), spec, pol, cfg, ss)
}

// inOrderSample mirrors oooSample for the blocking core.
type inOrderSample struct {
	cpi                                               float64
	cycles, committed, mlpSum, mlpCyc, ilpSum, ilpCyc uint64
}

// MeasureInOrderSamples is the in-order counterpart of MeasureOoOSamples.
func MeasureInOrderSamples(ctx context.Context, spec workload.Spec, cfg Config, ss *SampleSeries) (*Measurement, error) {
	out := make([]inOrderSample, len(ss.cps))
	err := par.RunCtx(ctx, len(ss.cps), cfg.workerCount(), func(i int) error {
		c := ss.cps[i].InOrder(ss.prog, cfg.IOParams)
		c.Cancel = ctx.Done()
		if err := c.RunInsts(cfg.WarmInsts); err != nil {
			return ctxErr(ctx, fmt.Errorf("harness: %s/in-order sample %d warm-up: %w", spec.Name, i, err))
		}
		c.ResetStats()
		if err := c.RunInsts(cfg.MeasureInsts); err != nil {
			return ctxErr(ctx, fmt.Errorf("harness: %s/in-order sample %d: %w", spec.Name, i, err))
		}
		s := c.Stats()
		out[i] = inOrderSample{
			cpi:    s.CPI(),
			cycles: s.Cycles, committed: s.Committed,
			mlpSum: s.MLPSum, mlpCyc: s.MLPCycles,
			ilpSum: s.ILPSum, ilpCyc: s.ILPCycles,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	m := &Measurement{Workload: spec.Name, Config: InOrderName}
	var cpis []float64
	var cycles, committed, mlpSum, mlpCyc, ilpSum, ilpCyc uint64
	for _, smp := range out {
		cpis = append(cpis, smp.cpi)
		cycles += smp.cycles
		committed += smp.committed
		mlpSum += smp.mlpSum
		mlpCyc += smp.mlpCyc
		ilpSum += smp.ilpSum
		ilpCyc += smp.ilpCyc
	}
	m.CPI = stats.Summarize(cpis)
	m.Cycles, m.Committed = cycles, committed
	if mlpCyc > 0 {
		m.MLP = float64(mlpSum) / float64(mlpCyc)
	}
	if ilpCyc > 0 {
		m.ILP = float64(ilpSum) / float64(ilpCyc)
	}
	m.CommitFrac = 1
	return m, nil
}

// MeasureInOrderCheckpointed is the in-order counterpart of
// MeasureOoOCheckpointed.
func MeasureInOrderCheckpointed(spec workload.Spec, cfg Config) (*Measurement, error) {
	ss, err := TakeSamples(spec, cfg)
	if err != nil {
		return nil, err
	}
	return MeasureInOrderSamples(context.Background(), spec, cfg, ss)
}
