package harness

import (
	"fmt"

	"nda/internal/checkpoint"
	"nda/internal/core"
	"nda/internal/ooo"
	"nda/internal/stats"
	"nda/internal/workload"
)

// Checkpoint-based SMARTS sampling: instead of simulating the whole region
// between measurement intervals in detail (the continuous mode of
// MeasureOoO), the functional emulator fast-forwards to sampling points
// spread CheckpointStride instructions apart, captures an architectural
// checkpoint at each (the Lapidary role), and the timing core runs only the
// warm-up + measurement window from every checkpoint. This both cuts
// detailed-simulation cost and samples more distant program phases, like
// the paper's methodology.

// MeasureOoOCheckpointed measures one benchmark under one policy using
// checkpoint sampling. cfg.Intervals checkpoints are taken starting after
// cfg.WarmInsts instructions, spaced cfg.CheckpointStride apart; each is
// warmed for cfg.WarmInsts detailed instructions and measured for
// cfg.MeasureInsts.
func MeasureOoOCheckpointed(spec workload.Spec, pol core.Policy, cfg Config) (*Measurement, error) {
	prog := spec.Build(hugeIters)
	stride := cfg.CheckpointStride
	if stride == 0 {
		stride = 10 * (cfg.WarmInsts + cfg.MeasureInsts)
	}
	cps, err := checkpoint.TakeSeries(prog, cfg.WarmInsts, stride, cfg.Intervals)
	if err != nil {
		return nil, fmt.Errorf("harness: %s checkpoints: %w", spec.Name, err)
	}

	m := &Measurement{Workload: spec.Name, Config: pol.Name}
	var cpis []float64
	var agg ooo.Stats
	for i, cp := range cps {
		c := cp.OoO(prog, pol, cfg.Params)
		if err := c.RunInsts(cfg.WarmInsts, cfg.MaxCycles); err != nil {
			return nil, fmt.Errorf("harness: %s/%s sample %d warm-up: %w", spec.Name, pol.Name, i, err)
		}
		c.ResetStats()
		if err := c.RunInsts(cfg.MeasureInsts, cfg.MaxCycles); err != nil {
			return nil, fmt.Errorf("harness: %s/%s sample %d: %w", spec.Name, pol.Name, i, err)
		}
		s := c.Stats()
		cpis = append(cpis, s.CPI())
		addStats(&agg, s)
	}
	m.CPI = stats.Summarize(cpis)
	fillFromStats(m, &agg)
	return m, nil
}

// MeasureInOrderCheckpointed is the in-order counterpart.
func MeasureInOrderCheckpointed(spec workload.Spec, cfg Config) (*Measurement, error) {
	prog := spec.Build(hugeIters)
	stride := cfg.CheckpointStride
	if stride == 0 {
		stride = 10 * (cfg.WarmInsts + cfg.MeasureInsts)
	}
	cps, err := checkpoint.TakeSeries(prog, cfg.WarmInsts, stride, cfg.Intervals)
	if err != nil {
		return nil, fmt.Errorf("harness: %s checkpoints: %w", spec.Name, err)
	}
	m := &Measurement{Workload: spec.Name, Config: InOrderName}
	var cpis []float64
	var cycles, committed, mlpSum, mlpCyc, ilpSum, ilpCyc uint64
	for i, cp := range cps {
		c := cp.InOrder(prog, cfg.IOParams)
		if err := c.RunInsts(cfg.WarmInsts); err != nil {
			return nil, fmt.Errorf("harness: %s/in-order sample %d warm-up: %w", spec.Name, i, err)
		}
		c.ResetStats()
		if err := c.RunInsts(cfg.MeasureInsts); err != nil {
			return nil, err
		}
		s := c.Stats()
		cpis = append(cpis, s.CPI())
		cycles += s.Cycles
		committed += s.Committed
		mlpSum += s.MLPSum
		mlpCyc += s.MLPCycles
		ilpSum += s.ILPSum
		ilpCyc += s.ILPCycles
	}
	m.CPI = stats.Summarize(cpis)
	m.Cycles, m.Committed = cycles, committed
	if mlpCyc > 0 {
		m.MLP = float64(mlpSum) / float64(mlpCyc)
	}
	if ilpCyc > 0 {
		m.ILP = float64(ilpSum) / float64(ilpCyc)
	}
	m.CommitFrac = 1
	return m, nil
}
