// Package harness drives the paper's performance evaluation: it runs the
// SPEC CPU 2017 proxy benchmarks on every core configuration with a
// SMARTS-like sampling methodology (warm-up, then alternating measurement
// and skip intervals), aggregates the statistics each figure needs, and
// renders the tables and series of Fig. 7, Table 2/3, and Fig. 9a–e as
// text.
package harness

import (
	"fmt"

	"nda/internal/core"
	"nda/internal/inorder"
	"nda/internal/ooo"
	"nda/internal/stats"
	"nda/internal/workload"
)

// InOrderName is the configuration label of the in-order baseline.
const InOrderName = "In-Order"

// Config controls the sampling methodology. The defaults mirror the paper's
// SMARTS setup in miniature: warm the micro-architecture, then measure
// fixed instruction windows at intervals and report a CPI confidence
// interval across them.
type Config struct {
	WarmInsts    uint64
	MeasureInsts uint64
	SkipInsts    uint64
	Intervals    int
	MaxCycles    uint64 // per full benchmark run; guards runaway configs

	// UseCheckpoints switches RunSweep to checkpoint-based sampling (see
	// MeasureOoOCheckpointed): the emulator fast-forwards between sampling
	// points instead of the timing core simulating the gaps.
	UseCheckpoints bool
	// CheckpointStride is the functional distance between sampling points;
	// 0 means 10x the warm+measure window.
	CheckpointStride uint64

	Params   ooo.Params
	IOParams inorder.Params
}

// DefaultConfig returns the standard methodology: 20k warm-up, 8 intervals
// of 10k measured instructions separated by 10k skipped instructions.
func DefaultConfig() Config {
	return Config{
		WarmInsts:    20_000,
		MeasureInsts: 10_000,
		SkipInsts:    10_000,
		Intervals:    8,
		MaxCycles:    80_000_000,
		Params:       ooo.DefaultParams(),
		IOParams:     inorder.DefaultParams(),
	}
}

// Quick returns a reduced methodology for tests and smoke runs.
func Quick() Config {
	c := DefaultConfig()
	c.WarmInsts = 5_000
	c.MeasureInsts = 4_000
	c.SkipInsts = 2_000
	c.Intervals = 4
	return c
}

// Measurement aggregates one (benchmark, configuration) cell.
type Measurement struct {
	Workload string
	Config   string

	CPI stats.Summary // across measurement intervals

	// Aggregates over all measured intervals.
	Cycles    uint64
	Committed uint64
	MLP       float64
	ILP       float64
	D2I       float64 // mean dispatch->issue latency

	// Cycle breakdown fractions (Fig. 9a), of measured cycles.
	CommitFrac, MemFrac, BackendFrac, FrontendFrac float64

	// NDA bookkeeping.
	DeferredPerKilo float64 // deferred broadcasts per 1000 instructions
	MispredictRate  float64
}

// hugeIters makes benchmark loops effectively unbounded; the harness stops
// by instruction budget.
const hugeIters = 1 << 40

// MeasureOoO runs one benchmark under one policy.
func MeasureOoO(spec workload.Spec, pol core.Policy, cfg Config) (*Measurement, error) {
	prog := spec.Build(hugeIters)
	c := ooo.NewFromProgram(prog, pol, cfg.Params)
	if err := c.RunInsts(cfg.WarmInsts, cfg.MaxCycles); err != nil {
		return nil, fmt.Errorf("harness: %s/%s warm-up: %w", spec.Name, pol.Name, err)
	}

	m := &Measurement{Workload: spec.Name, Config: pol.Name}
	var cpis []float64
	var agg ooo.Stats
	for i := 0; i < cfg.Intervals; i++ {
		c.ResetStats()
		if err := c.RunInsts(cfg.MeasureInsts, cfg.MaxCycles); err != nil {
			return nil, fmt.Errorf("harness: %s/%s interval %d: %w", spec.Name, pol.Name, i, err)
		}
		s := c.Stats()
		cpis = append(cpis, s.CPI())
		addStats(&agg, s)
		if i < cfg.Intervals-1 && cfg.SkipInsts > 0 {
			c.ResetStats()
			if err := c.RunInsts(cfg.SkipInsts, cfg.MaxCycles); err != nil {
				return nil, fmt.Errorf("harness: %s/%s skip %d: %w", spec.Name, pol.Name, i, err)
			}
		}
	}
	m.CPI = stats.Summarize(cpis)
	fillFromStats(m, &agg)
	return m, nil
}

// MeasureInOrder runs one benchmark on the in-order core.
func MeasureInOrder(spec workload.Spec, cfg Config) (*Measurement, error) {
	prog := spec.Build(hugeIters)
	c := inorder.NewFromProgram(prog, cfg.IOParams)
	if err := c.RunInsts(cfg.WarmInsts); err != nil {
		return nil, fmt.Errorf("harness: %s/in-order warm-up: %w", spec.Name, err)
	}
	m := &Measurement{Workload: spec.Name, Config: InOrderName}
	var cpis []float64
	var cycles, committed uint64
	var mlpSum, mlpCyc, ilpSum, ilpCyc uint64
	for i := 0; i < cfg.Intervals; i++ {
		c.ResetStats()
		if err := c.RunInsts(cfg.MeasureInsts); err != nil {
			return nil, err
		}
		s := c.Stats()
		cpis = append(cpis, s.CPI())
		cycles += s.Cycles
		committed += s.Committed
		mlpSum += s.MLPSum
		mlpCyc += s.MLPCycles
		ilpSum += s.ILPSum
		ilpCyc += s.ILPCycles
		if i < cfg.Intervals-1 && cfg.SkipInsts > 0 {
			c.ResetStats()
			if err := c.RunInsts(cfg.SkipInsts); err != nil {
				return nil, err
			}
		}
	}
	m.CPI = stats.Summarize(cpis)
	m.Cycles, m.Committed = cycles, committed
	if mlpCyc > 0 {
		m.MLP = float64(mlpSum) / float64(mlpCyc)
	}
	if ilpCyc > 0 {
		m.ILP = float64(ilpSum) / float64(ilpCyc)
	}
	// The whole cycle is "commit" from the blocking core's perspective.
	m.CommitFrac = 1
	return m, nil
}

func addStats(dst, src *ooo.Stats) {
	dst.Cycles += src.Cycles
	dst.Committed += src.Committed
	dst.CommitCycles += src.CommitCycles
	dst.MemStallCycles += src.MemStallCycles
	dst.BackendStalls += src.BackendStalls
	dst.FrontendStalls += src.FrontendStalls
	dst.MLPSum += src.MLPSum
	dst.MLPCycles += src.MLPCycles
	dst.ILPSum += src.ILPSum
	dst.ILPCycles += src.ILPCycles
	dst.DispatchToIssueSum += src.DispatchToIssueSum
	dst.DispatchToIssueCount += src.DispatchToIssueCount
	dst.DeferredBroadcasts += src.DeferredBroadcasts
	dst.DeferralCycles += src.DeferralCycles
	dst.BranchesResolved += src.BranchesResolved
	dst.Mispredicts += src.Mispredicts
}

func fillFromStats(m *Measurement, s *ooo.Stats) {
	m.Cycles, m.Committed = s.Cycles, s.Committed
	m.MLP = s.MLP()
	m.ILP = s.ILP()
	m.D2I = s.DispatchToIssue()
	if s.Cycles > 0 {
		total := float64(s.Cycles)
		m.CommitFrac = float64(s.CommitCycles) / total
		m.MemFrac = float64(s.MemStallCycles) / total
		m.BackendFrac = float64(s.BackendStalls) / total
		m.FrontendFrac = float64(s.FrontendStalls) / total
	}
	if s.Committed > 0 {
		m.DeferredPerKilo = 1000 * float64(s.DeferredBroadcasts) / float64(s.Committed)
	}
	m.MispredictRate = s.MispredictRate()
}

// Sweep is the full evaluation grid: every benchmark under every
// configuration (policies plus optionally the in-order core).
type Sweep struct {
	Workloads []string
	Configs   []string
	Cells     map[string]map[string]*Measurement // config -> workload -> cell
}

// Get returns one cell (nil if missing).
func (s *Sweep) Get(config, workload string) *Measurement {
	if m, ok := s.Cells[config]; ok {
		return m[workload]
	}
	return nil
}

// Baseline returns the insecure OoO measurement for a workload.
func (s *Sweep) Baseline(workload string) *Measurement {
	return s.Get(core.Baseline().Name, workload)
}

// NormalizedCPI returns config CPI / baseline-OoO CPI for a workload.
func (s *Sweep) NormalizedCPI(config, workload string) float64 {
	base := s.Baseline(workload)
	m := s.Get(config, workload)
	if base == nil || m == nil || base.CPI.Mean == 0 {
		return 0
	}
	return m.CPI.Mean / base.CPI.Mean
}

// MeanNormalizedCPI averages NormalizedCPI over all workloads (the
// rightmost bars of Fig. 7 and the overhead column of Table 2).
func (s *Sweep) MeanNormalizedCPI(config string) float64 {
	var xs []float64
	for _, w := range s.Workloads {
		if v := s.NormalizedCPI(config, w); v > 0 {
			xs = append(xs, v)
		}
	}
	return stats.Mean(xs)
}

// Overhead returns the average slowdown vs insecure OoO in percent.
func (s *Sweep) Overhead(config string) float64 {
	return (s.MeanNormalizedCPI(config) - 1) * 100
}

// RunSweep measures every benchmark under every policy (and, when
// includeInOrder is set, the in-order core). progress, if non-nil, receives
// one line per completed cell.
func RunSweep(specs []workload.Spec, policies []core.Policy, includeInOrder bool, cfg Config, progress func(string)) (*Sweep, error) {
	sw := &Sweep{Cells: make(map[string]map[string]*Measurement)}
	for _, spec := range specs {
		sw.Workloads = append(sw.Workloads, spec.Name)
	}
	note := func(m *Measurement) {
		if progress != nil {
			progress(fmt.Sprintf("%-18s %-14s CPI %s", m.Config, m.Workload, m.CPI))
		}
	}
	for _, pol := range policies {
		sw.Configs = append(sw.Configs, pol.Name)
		sw.Cells[pol.Name] = make(map[string]*Measurement)
		for _, spec := range specs {
			measure := MeasureOoO
			if cfg.UseCheckpoints {
				measure = MeasureOoOCheckpointed
			}
			m, err := measure(spec, pol, cfg)
			if err != nil {
				return nil, err
			}
			sw.Cells[pol.Name][spec.Name] = m
			note(m)
		}
	}
	if includeInOrder {
		sw.Configs = append(sw.Configs, InOrderName)
		sw.Cells[InOrderName] = make(map[string]*Measurement)
		for _, spec := range specs {
			measure := MeasureInOrder
			if cfg.UseCheckpoints {
				measure = MeasureInOrderCheckpointed
			}
			m, err := measure(spec, cfg)
			if err != nil {
				return nil, err
			}
			sw.Cells[InOrderName][spec.Name] = m
			note(m)
		}
	}
	return sw, nil
}
