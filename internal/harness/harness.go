// Package harness drives the paper's performance evaluation: it runs the
// SPEC CPU 2017 proxy benchmarks on every core configuration with a
// SMARTS-like sampling methodology (warm-up, then alternating measurement
// and skip intervals), aggregates the statistics each figure needs, and
// renders the tables and series of Fig. 7, Table 2/3, and Fig. 9a–e as
// text.
package harness

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"nda/internal/core"
	"nda/internal/inorder"
	"nda/internal/ooo"
	"nda/internal/par"
	"nda/internal/stats"
	"nda/internal/workload"
)

// InOrderName is the configuration label of the in-order baseline.
const InOrderName = "In-Order"

// Config controls the sampling methodology. The defaults mirror the paper's
// SMARTS setup in miniature: warm the micro-architecture, then measure
// fixed instruction windows at intervals and report a CPI confidence
// interval across them.
type Config struct {
	WarmInsts    uint64
	MeasureInsts uint64
	SkipInsts    uint64
	Intervals    int
	MaxCycles    uint64 // per full benchmark run; guards runaway configs

	// UseCheckpoints switches RunSweep to checkpoint-based sampling (see
	// MeasureOoOCheckpointed): the emulator fast-forwards between sampling
	// points instead of the timing core simulating the gaps.
	UseCheckpoints bool
	// CheckpointStride is the functional distance between sampling points;
	// 0 means 10x the warm+measure window.
	CheckpointStride uint64

	// Workers bounds the goroutines the sweep engine fans (policy,
	// workload, sample) jobs out over; 0 means one per available CPU.
	// Every job derives its inputs from its tuple alone, so the results
	// are bit-identical for any worker count.
	Workers int

	Params   ooo.Params
	IOParams inorder.Params
}

// DefaultConfig returns the standard methodology: 20k warm-up, 8 intervals
// of 10k measured instructions separated by 10k skipped instructions.
func DefaultConfig() Config {
	return Config{
		WarmInsts:    20_000,
		MeasureInsts: 10_000,
		SkipInsts:    10_000,
		Intervals:    8,
		MaxCycles:    80_000_000,
		Params:       ooo.DefaultParams(),
		IOParams:     inorder.DefaultParams(),
	}
}

// Quick returns a reduced methodology for tests and smoke runs.
func Quick() Config {
	c := DefaultConfig()
	c.WarmInsts = 5_000
	c.MeasureInsts = 4_000
	c.SkipInsts = 2_000
	c.Intervals = 4
	return c
}

// workerCount resolves Config.Workers (0 = one per CPU).
func (c Config) workerCount() int { return par.Workers(c.Workers) }

// Measurement aggregates one (benchmark, configuration) cell.
type Measurement struct {
	Workload string
	Config   string

	CPI stats.Summary // across measurement intervals

	// Aggregates over all measured intervals.
	Cycles    uint64
	Committed uint64
	MLP       float64
	ILP       float64
	D2I       float64 // mean dispatch->issue latency

	// Cycle breakdown fractions (Fig. 9a), of measured cycles.
	CommitFrac, MemFrac, BackendFrac, FrontendFrac float64

	// NDA bookkeeping.
	DeferredPerKilo float64 // deferred broadcasts per 1000 instructions
	MispredictRate  float64
}

// hugeIters makes benchmark loops effectively unbounded; the harness stops
// by instruction budget.
const hugeIters = 1 << 40

// ctxErr prefers the context's error once the context is done: the cores
// surface cancellation as ooo.ErrCancelled, but callers want the standard
// context.Canceled / context.DeadlineExceeded identity back.
func ctxErr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// MeasureOoO runs one benchmark under one policy.
func MeasureOoO(spec workload.Spec, pol core.Policy, cfg Config) (*Measurement, error) {
	return MeasureOoOCtx(context.Background(), spec, pol, cfg)
}

// MeasureOoOCtx is MeasureOoO with cancellation: the core polls ctx.Done()
// while it runs, so a timeout or job cancellation stops the simulation
// mid-interval rather than after the cell completes.
func MeasureOoOCtx(ctx context.Context, spec workload.Spec, pol core.Policy, cfg Config) (*Measurement, error) {
	prog := spec.Build(hugeIters)
	c := ooo.NewFromProgram(prog, pol, cfg.Params)
	c.Cancel = ctx.Done()
	if err := c.RunInsts(cfg.WarmInsts, cfg.MaxCycles); err != nil {
		return nil, ctxErr(ctx, fmt.Errorf("harness: %s/%s warm-up: %w", spec.Name, pol.Name, err))
	}

	m := &Measurement{Workload: spec.Name, Config: pol.Name}
	var cpis []float64
	var agg ooo.Stats
	for i := 0; i < cfg.Intervals; i++ {
		c.ResetStats()
		if err := c.RunInsts(cfg.MeasureInsts, cfg.MaxCycles); err != nil {
			return nil, ctxErr(ctx, fmt.Errorf("harness: %s/%s interval %d: %w", spec.Name, pol.Name, i, err))
		}
		s := *c.Stats()
		cpis = append(cpis, s.CPI())
		addStats(&agg, s)
		if i < cfg.Intervals-1 && cfg.SkipInsts > 0 {
			c.ResetStats()
			if err := c.RunInsts(cfg.SkipInsts, cfg.MaxCycles); err != nil {
				return nil, ctxErr(ctx, fmt.Errorf("harness: %s/%s skip %d: %w", spec.Name, pol.Name, i, err))
			}
		}
	}
	m.CPI = stats.Summarize(cpis)
	fillFromStats(m, &agg)
	return m, nil
}

// MeasureInOrder runs one benchmark on the in-order core.
func MeasureInOrder(spec workload.Spec, cfg Config) (*Measurement, error) {
	return MeasureInOrderCtx(context.Background(), spec, cfg)
}

// MeasureInOrderCtx is MeasureInOrder with cancellation (see MeasureOoOCtx).
func MeasureInOrderCtx(ctx context.Context, spec workload.Spec, cfg Config) (*Measurement, error) {
	prog := spec.Build(hugeIters)
	c := inorder.NewFromProgram(prog, cfg.IOParams)
	c.Cancel = ctx.Done()
	if err := c.RunInsts(cfg.WarmInsts); err != nil {
		return nil, ctxErr(ctx, fmt.Errorf("harness: %s/in-order warm-up: %w", spec.Name, err))
	}
	m := &Measurement{Workload: spec.Name, Config: InOrderName}
	var cpis []float64
	var cycles, committed uint64
	var mlpSum, mlpCyc, ilpSum, ilpCyc uint64
	for i := 0; i < cfg.Intervals; i++ {
		c.ResetStats()
		if err := c.RunInsts(cfg.MeasureInsts); err != nil {
			return nil, ctxErr(ctx, err)
		}
		s := c.Stats()
		cpis = append(cpis, s.CPI())
		cycles += s.Cycles
		committed += s.Committed
		mlpSum += s.MLPSum
		mlpCyc += s.MLPCycles
		ilpSum += s.ILPSum
		ilpCyc += s.ILPCycles
		if i < cfg.Intervals-1 && cfg.SkipInsts > 0 {
			c.ResetStats()
			if err := c.RunInsts(cfg.SkipInsts); err != nil {
				return nil, ctxErr(ctx, err)
			}
		}
	}
	m.CPI = stats.Summarize(cpis)
	m.Cycles, m.Committed = cycles, committed
	if mlpCyc > 0 {
		m.MLP = float64(mlpSum) / float64(mlpCyc)
	}
	if ilpCyc > 0 {
		m.ILP = float64(ilpSum) / float64(ilpCyc)
	}
	// The whole cycle is "commit" from the blocking core's perspective.
	m.CommitFrac = 1
	return m, nil
}

// addStats folds one measurement interval into an aggregate. src is a value
// snapshot, never a pointer into a live core: Core.Stats returns the core's
// internal counter block, which keeps mutating as the core runs, so
// aggregating through the alias would tie the fold to simulation timing.
func addStats(dst *ooo.Stats, src ooo.Stats) {
	dst.Cycles += src.Cycles
	dst.Committed += src.Committed
	dst.CommitCycles += src.CommitCycles
	dst.MemStallCycles += src.MemStallCycles
	dst.BackendStalls += src.BackendStalls
	dst.FrontendStalls += src.FrontendStalls
	dst.MLPSum += src.MLPSum
	dst.MLPCycles += src.MLPCycles
	dst.ILPSum += src.ILPSum
	dst.ILPCycles += src.ILPCycles
	dst.DispatchToIssueSum += src.DispatchToIssueSum
	dst.DispatchToIssueCount += src.DispatchToIssueCount
	dst.DeferredBroadcasts += src.DeferredBroadcasts
	dst.DeferralCycles += src.DeferralCycles
	dst.BranchesResolved += src.BranchesResolved
	dst.Mispredicts += src.Mispredicts
}

func fillFromStats(m *Measurement, s *ooo.Stats) {
	m.Cycles, m.Committed = s.Cycles, s.Committed
	m.MLP = s.MLP()
	m.ILP = s.ILP()
	m.D2I = s.DispatchToIssue()
	if s.Cycles > 0 {
		total := float64(s.Cycles)
		m.CommitFrac = float64(s.CommitCycles) / total
		m.MemFrac = float64(s.MemStallCycles) / total
		m.BackendFrac = float64(s.BackendStalls) / total
		m.FrontendFrac = float64(s.FrontendStalls) / total
	}
	if s.Committed > 0 {
		m.DeferredPerKilo = 1000 * float64(s.DeferredBroadcasts) / float64(s.Committed)
	}
	m.MispredictRate = s.MispredictRate()
}

// Sweep is the full evaluation grid: every benchmark under every
// configuration (policies plus optionally the in-order core).
type Sweep struct {
	Workloads []string
	Configs   []string
	Cells     map[string]map[string]*Measurement // config -> workload -> cell
}

// NewSweep returns an empty grid with the given axes. Both the local sweep
// engine and the distributed merge path build their result through this
// and Set, so a fleet-assembled sweep has exactly the shape a local run
// produces.
func NewSweep(workloads, configs []string) *Sweep {
	return &Sweep{
		Workloads: append([]string(nil), workloads...),
		Configs:   append([]string(nil), configs...),
		Cells:     make(map[string]map[string]*Measurement),
	}
}

// Set stores one cell.
func (s *Sweep) Set(config, workload string, m *Measurement) {
	cells := s.Cells[config]
	if cells == nil {
		cells = make(map[string]*Measurement)
		s.Cells[config] = cells
	}
	cells[workload] = m
}

// Get returns one cell (nil if missing).
func (s *Sweep) Get(config, workload string) *Measurement {
	if m, ok := s.Cells[config]; ok {
		return m[workload]
	}
	return nil
}

// Baseline returns the insecure OoO measurement for a workload.
func (s *Sweep) Baseline(workload string) *Measurement {
	return s.Get(core.Baseline().Name, workload)
}

// NormalizedCPI returns config CPI / baseline-OoO CPI for a workload.
func (s *Sweep) NormalizedCPI(config, workload string) float64 {
	base := s.Baseline(workload)
	m := s.Get(config, workload)
	if base == nil || m == nil || base.CPI.Mean == 0 {
		return 0
	}
	return m.CPI.Mean / base.CPI.Mean
}

// MeanNormalizedCPI averages NormalizedCPI over all workloads (the
// rightmost bars of Fig. 7 and the overhead column of Table 2).
func (s *Sweep) MeanNormalizedCPI(config string) float64 {
	var xs []float64
	for _, w := range s.Workloads {
		if v := s.NormalizedCPI(config, w); v > 0 {
			xs = append(xs, v)
		}
	}
	return stats.Mean(xs)
}

// Overhead returns the average slowdown vs insecure OoO in percent.
func (s *Sweep) Overhead(config string) float64 {
	return (s.MeanNormalizedCPI(config) - 1) * 100
}

// cellJob is one (configuration, workload) cell of the sweep matrix.
type cellJob struct {
	config  string
	pol     core.Policy // unused when inOrder is set
	inOrder bool
	spec    workload.Spec
	specIdx int
}

// RunSweep measures every benchmark under every policy (and, when
// includeInOrder is set, the in-order core), fanning the cells out over
// cfg.Workers goroutines. progress, if non-nil, receives one line per
// completed cell; it is called from at most one goroutine at a time, in
// completion order.
//
// Determinism: every cell simulation derives all of its state from its
// (policy, workload) tuple — fresh program, memory image, core, and
// checkpoint series — and results land in index-addressed slots, so the
// returned Sweep is bit-identical for any worker count.
func RunSweep(specs []workload.Spec, policies []core.Policy, includeInOrder bool, cfg Config, progress func(string)) (*Sweep, error) {
	return RunSweepCtx(context.Background(), specs, policies, includeInOrder, cfg, progress)
}

// RunSweepCtx is RunSweep with cancellation: once ctx is done, no queued
// cell starts, in-flight cells stop mid-simulation (the cores poll
// ctx.Done()), no further progress lines are emitted, and the ctx error is
// returned. Job errors from cells that ran take precedence.
func RunSweepCtx(ctx context.Context, specs []workload.Spec, policies []core.Policy, includeInOrder bool, cfg Config, progress func(string)) (*Sweep, error) {
	var workloads, configs []string
	for _, spec := range specs {
		workloads = append(workloads, spec.Name)
	}
	for _, pol := range policies {
		configs = append(configs, pol.Name)
	}
	if includeInOrder {
		configs = append(configs, InOrderName)
	}
	sw := NewSweep(workloads, configs)

	// In checkpoint mode the sampling points depend only on the workload,
	// so each workload's series is captured once (in parallel) and shared
	// read-only by all of its cells; restoring clones the memory, so the
	// series itself is never written after this phase.
	var series []*SampleSeries
	var seriesLeft []atomic.Int64 // cells still to run per workload
	if cfg.UseCheckpoints {
		series = make([]*SampleSeries, len(specs))
		seriesLeft = make([]atomic.Int64, len(specs))
		perWorkload := int64(len(policies))
		if includeInOrder {
			perWorkload++
		}
		for i := range seriesLeft {
			seriesLeft[i].Store(perWorkload)
		}
		if err := par.RunCtx(ctx, len(specs), cfg.workerCount(), func(i int) error {
			ss, err := TakeSamples(specs[i], cfg)
			if err != nil {
				return err
			}
			series[i] = ss
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// One job per cell, ordered workload-major: indices are handed out in
	// order, so a workload's cells cluster in time and its checkpoint
	// series can be released as soon as the last one finishes.
	var jobs []cellJob
	for si, spec := range specs {
		for _, pol := range policies {
			jobs = append(jobs, cellJob{config: pol.Name, pol: pol, spec: spec, specIdx: si})
		}
		if includeInOrder {
			jobs = append(jobs, cellJob{config: InOrderName, inOrder: true, spec: spec, specIdx: si})
		}
	}

	// Cells saturate the pool on their own; the per-sample fan-out inside
	// the checkpointed measurements stays serial to avoid nested pools.
	cellCfg := cfg
	cellCfg.Workers = 1

	results := make([]*Measurement, len(jobs))
	var (
		progressMu sync.Mutex
		done       int
	)
	note := func(m *Measurement) {
		if progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		// Once the context is done the caller is tearing down (a timeout
		// fired or the job was cancelled); late cells finish silently so no
		// progress line races the caller's own output. Checking under the
		// lock makes that strict: a cancellation observed by one callback
		// suppresses every later one.
		if ctx.Err() != nil {
			return
		}
		done++
		progress(fmt.Sprintf("[%3d/%3d] %-18s %-14s CPI %s", done, len(jobs), m.Config, m.Workload, m.CPI))
	}
	err := par.RunCtx(ctx, len(jobs), cfg.workerCount(), func(i int) error {
		j := jobs[i]
		var m *Measurement
		var err error
		switch {
		case cfg.UseCheckpoints && j.inOrder:
			m, err = MeasureInOrderSamples(ctx, j.spec, cellCfg, series[j.specIdx])
		case cfg.UseCheckpoints:
			m, err = MeasureOoOSamples(ctx, j.spec, j.pol, cellCfg, series[j.specIdx])
		case j.inOrder:
			m, err = MeasureInOrderCtx(ctx, j.spec, cellCfg)
		default:
			m, err = MeasureOoOCtx(ctx, j.spec, j.pol, cellCfg)
		}
		if err != nil {
			return err
		}
		if cfg.UseCheckpoints && seriesLeft[j.specIdx].Add(-1) == 0 {
			// Last cell of this workload: drop the series so its cloned
			// memory pages can be reclaimed while the sweep continues.
			series[j.specIdx] = nil
		}
		results[i] = m
		note(m)
		return nil
	})
	if err != nil {
		return nil, err
	}

	for i, j := range jobs {
		sw.Set(j.config, j.spec.Name, results[i])
	}
	return sw, nil
}
