package harness

import (
	"fmt"

	"nda/internal/asm"
	"nda/internal/core"
	"nda/internal/ooo"
	"nda/internal/workload"
)

func byName(name string) (workload.Spec, error) { return workload.ByName(name) }

func policyByName(name string) (core.Policy, error) { return core.ByName(name) }

// Fig5Result quantifies the BTB misprediction overhead (paper Fig. 5): the
// total time of 64 back-to-back indirect calls when the BTB predicts every
// one correctly vs when every one mispredicts.
type Fig5Result struct {
	Calls      int
	HitCycles  uint64
	MissCycles uint64
}

// Penalty is the per-call mispredict cost — ~16 cycles in the paper's setup.
func (r Fig5Result) Penalty() int64 {
	if r.Calls == 0 {
		return 0
	}
	return (int64(r.MissCycles) - int64(r.HitCycles)) / int64(r.Calls)
}

// fig5Program times 16 back-to-back indirect calls through one call site,
// first with the BTB always predicting correctly (every call targets fA),
// then with every call mispredicting (targets alternate fA/fB, so the BTB —
// updated by each execution — always holds the other function). The
// per-call difference is the misprediction overhead: squash plus front-end
// redirect (paper: ~16 cycles).
func fig5Source() string {
	return `
        .data
        .org 0x100000
tgt:    .word64 fA, fB
        .org 0x240000
results: .space 16
        .text
main:   la   s0, tgt
        ld   s1, (s0)        # fA
        ld   s2, 8(s0)       # fB
        xor  s5, s1, s2      # fA ^ fB (toggle mask)
        li   s3, 8           # warm the BTB entry and the code paths
warm:   mv   a0, s1
        callr a0
        addi s3, s3, -1
        bne  s3, zero, warm
        fence

        # Phase 1: 64 calls, every prediction correct.
        li   s3, 64
        rdcycle s6
hits:   mv   a0, s1
        callr a0             # single fixed call site: the BTB entry
        addi s3, s3, -1
        bne  s3, zero, hits
        rdcycle s7
        fence
        sub  s7, s7, s6
        la   t5, results
        sd   s7, (t5)

        # Phase 2: 64 calls, targets alternate fA/fB so the BTB (updated by
        # each execution) always predicts the other target: every call
        # mispredicts and squashes.
        li   s3, 64
        li   s4, 0
        rdcycle s6
miss:   xor  a0, s1, s4
        xor  s4, s4, s5
        callr a0
        addi s3, s3, -1
        bne  s3, zero, miss
        rdcycle s7
        fence
        sub  s7, s7, s6
        la   t5, results
        sd   s7, 8(t5)
        halt

fA:     ret
fB:     ret
`
}

// MeasureFig5 runs the BTB-penalty micro-measurement on an insecure OoO
// core.
func MeasureFig5(params ooo.Params) (Fig5Result, error) {
	prog, err := asm.Assemble(fig5Source())
	if err != nil {
		return Fig5Result{}, err
	}
	c := ooo.NewFromProgram(prog, core.Baseline(), params)
	if err := c.Run(1_000_000); err != nil {
		return Fig5Result{}, err
	}
	return Fig5Result{
		Calls:      64,
		HitCycles:  c.Memory().Read(0x240000, 8),
		MissCycles: c.Memory().Read(0x240008, 8),
	}, nil
}

// RenderFig5 renders the measurement.
func RenderFig5(r Fig5Result) string {
	return fmt.Sprintf("Fig. 5 — BTB misprediction overhead\n\n"+
		"%d indirect calls, BTB predicted correctly: %4d cycles\n"+
		"%d indirect calls, every one mispredicted:  %4d cycles\n"+
		"squash + redirect penalty per call:         %4d cycles (paper: ~16)\n",
		r.Calls, r.HitCycles, r.Calls, r.MissCycles, r.Penalty())
}
