package harness

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"nda/internal/core"
	"nda/internal/ooo"
	"nda/internal/workload"
)

func tinyConfig() Config {
	c := Quick()
	c.WarmInsts = 2_000
	c.MeasureInsts = 2_000
	c.SkipInsts = 1_000
	c.Intervals = 3
	return c
}

func tinySpecs(t *testing.T, names ...string) []workload.Spec {
	t.Helper()
	var out []workload.Spec
	for _, n := range names {
		s, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

func TestMeasureOoO(t *testing.T) {
	s, _ := workload.ByName("exchange2")
	m, err := MeasureOoO(s, core.Baseline(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.CPI.Mean <= 0 || m.CPI.N != 3 {
		t.Errorf("CPI = %+v", m.CPI)
	}
	// RunInsts may overshoot by up to CommitWidth-1 per interval.
	if m.Committed < 3*2000 || m.Committed > 3*2000+3*8 {
		t.Errorf("committed = %d", m.Committed)
	}
	sum := m.CommitFrac + m.MemFrac + m.BackendFrac + m.FrontendFrac
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("breakdown fractions sum to %.4f", sum)
	}
}

func TestMeasureInOrder(t *testing.T) {
	s, _ := workload.ByName("exchange2")
	m, err := MeasureInOrder(s, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.CPI.Mean < 1 {
		t.Errorf("in-order CPI = %v, must be >= 1", m.CPI.Mean)
	}
	if m.ILP > 1.0001 || m.MLP > 1.0001 {
		t.Errorf("in-order ILP/MLP must be bounded by 1: %v %v", m.ILP, m.MLP)
	}
}

func TestSweepOrderingHolds(t *testing.T) {
	// The central performance claim on a small but discriminating
	// workload pair: baseline <= permissive <= full protection << in-order.
	specs := tinySpecs(t, "gcc", "xalancbmk")
	pols := []core.Policy{core.Baseline(), core.Permissive(), core.FullProtection()}
	sw, err := RunSweep(specs, pols, true, tinyConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ooo := sw.MeanNormalizedCPI("OoO")
	perm := sw.MeanNormalizedCPI("Permissive")
	full := sw.MeanNormalizedCPI("FullProtection")
	inord := sw.MeanNormalizedCPI(InOrderName)
	if !(ooo <= perm && perm < full && full < inord) {
		t.Errorf("ordering violated: ooo=%.2f perm=%.2f full=%.2f inorder=%.2f", ooo, perm, full, inord)
	}
	// NDA must recover most of the in-order gap even at full protection.
	if closure := (inord - full) / (inord - ooo); closure < 0.5 {
		t.Errorf("full protection closes only %.0f%% of the gap", closure*100)
	}
}

func TestRenderers(t *testing.T) {
	specs := tinySpecs(t, "exchange2", "xz")
	pols := []core.Policy{core.Baseline(), core.Permissive()}
	sw, err := RunSweep(specs, pols, true, tinyConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	fig7 := RenderFig7(sw)
	if !strings.Contains(fig7, "exchange2") || !strings.Contains(fig7, "mean") {
		t.Errorf("fig7 output incomplete:\n%s", fig7)
	}
	t2 := RenderTable2(sw)
	if !strings.Contains(t2, "overhead") || !strings.Contains(t2, "Permissive") {
		t.Errorf("table2 output incomplete:\n%s", t2)
	}
	t3 := RenderTable3(ooo.DefaultParams())
	if !strings.Contains(t3, "192 ROB") || !strings.Contains(t3, "50ns") {
		t.Errorf("table3 output incomplete:\n%s", t3)
	}
	f9a := RenderFig9a(sw)
	if !strings.Contains(f9a, "commit") {
		t.Errorf("fig9a output incomplete:\n%s", f9a)
	}
	f9bcd := RenderFig9bcd(sw)
	if !strings.Contains(f9bcd, "MLP") {
		t.Errorf("fig9bcd output incomplete:\n%s", f9bcd)
	}
}

func TestFig5BTBPenalty(t *testing.T) {
	r, err := MeasureFig5(ooo.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Penalty() < 5 || r.Penalty() > 40 {
		t.Errorf("BTB mispredict penalty = %d cycles, expected on the order of ~16", r.Penalty())
	}
	if !strings.Contains(RenderFig5(r), "squash") {
		t.Error("fig5 render incomplete")
	}
}

func TestFig9eSensitivity(t *testing.T) {
	rs, err := RunFig9e("Permissive", []int{0, 1, 2}, []string{"gcc"}, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d results", len(rs))
	}
	if rs[0].CPI <= 0 {
		t.Error("zero CPI")
	}
	// The paper's claim is that the impact of NDA wake-up logic latency is
	// small (<3.6% per cycle of delay); scheduling-order noise can swing
	// the tiny deltas either way, so assert the magnitude only.
	for _, r := range rs[1:] {
		if d := r.CPI/rs[0].CPI - 1; d < -0.10 || d > 0.15 {
			t.Errorf("%d-cycle delay changed CPI by %+.1f%%, implausibly large", r.Delay, d*100)
		}
	}
	if !strings.Contains(RenderFig9e(rs), "delay") {
		t.Error("fig9e render incomplete")
	}
}

func TestStatsHelpers(t *testing.T) {
	sw := &Sweep{Cells: map[string]map[string]*Measurement{}}
	if sw.Get("x", "y") != nil {
		t.Error("missing cell must be nil")
	}
	if sw.NormalizedCPI("x", "y") != 0 {
		t.Error("missing normalization must be 0")
	}
}

// TestRunSweepDeterministicAcrossWorkers is the parallel engine's central
// guarantee: one worker and eight workers must produce bit-identical Sweep
// tables — every cell, CI, and derived aggregate — in both continuous and
// checkpointed sampling modes.
func TestRunSweepDeterministicAcrossWorkers(t *testing.T) {
	specs := tinySpecs(t, "gcc", "exchange2", "xz")
	pols := []core.Policy{core.Baseline(), core.Permissive(), core.FullProtection()}
	for _, checkpoints := range []bool{false, true} {
		cfg := tinyConfig()
		cfg.UseCheckpoints = checkpoints

		cfg.Workers = 1
		serial, err := RunSweep(specs, pols, true, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = 8
		var lines []string
		parallel, err := RunSweep(specs, pols, true, cfg, func(s string) { lines = append(lines, s) })
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("checkpoints=%v: Workers=1 and Workers=8 sweeps differ", checkpoints)
		}
		if len(lines) != (len(pols)+1)*len(specs) {
			t.Errorf("checkpoints=%v: %d progress lines, want %d", checkpoints, len(lines), (len(pols)+1)*len(specs))
		}
		if g1, g8 := serial.MeanNormalizedCPI("FullProtection"), parallel.MeanNormalizedCPI("FullProtection"); g1 != g8 {
			t.Errorf("checkpoints=%v: geomean drifted: %v vs %v", checkpoints, g1, g8)
		}
	}
}

// TestRunSweepErrorCancels: a measurement failure mid-sweep must stop the
// pool (no new cells start) and propagate the error to the caller.
func TestRunSweepErrorCancels(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxCycles = 1 // every cell blows its cycle budget during warm-up
	cfg.Workers = 4
	var progressed int
	sw, err := RunSweep(tinySpecs(t, "gcc", "xz"), []core.Policy{core.Baseline(), core.Permissive()}, false, cfg,
		func(string) { progressed++ })
	if err == nil {
		t.Fatal("cycle-budget error must propagate out of the sweep")
	}
	if !strings.Contains(err.Error(), "warm-up") {
		t.Errorf("error lost its context: %v", err)
	}
	if sw != nil {
		t.Error("failed sweep must return a nil table")
	}
	if progressed != 0 {
		t.Errorf("%d cells reported progress despite every cell failing", progressed)
	}
}

// TestRunSweepCtxCancelledBeforeStart: a dead context yields the context's
// error immediately — no cells measure, no progress prints.
func TestRunSweepCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var progressed int
	sw, err := RunSweepCtx(ctx, tinySpecs(t, "gcc"), []core.Policy{core.Baseline()}, false, tinyConfig(),
		func(string) { progressed++ })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sw != nil {
		t.Error("cancelled sweep must return a nil table")
	}
	if progressed != 0 {
		t.Errorf("%d progress lines printed under a cancelled context", progressed)
	}
}

// TestRunSweepCtxCancelMidway: cancelling from the progress callback stops
// the sweep promptly — queued cells never start, in-flight cores bail out —
// and no further progress lines appear after the cancellation (the
// cancellation-safe progress contract the CLI drivers rely on).
func TestRunSweepCtxCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := tinyConfig()
	cfg.Workers = 2
	var after int
	var cancelled bool
	specs := tinySpecs(t, "gcc", "xz", "mcf", "exchange2")
	sw, err := RunSweepCtx(ctx, specs, core.All(), true, cfg, func(string) {
		if cancelled {
			after++
			return
		}
		cancelled = true
		cancel()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sw != nil {
		t.Error("cancelled sweep must return a nil table")
	}
	if after != 0 {
		t.Errorf("%d progress lines printed after cancellation", after)
	}
}

// TestMeasureOoOCtxCancelled: the per-measurement entry point honors a dead
// context too (it is what the serve cache calls directly).
func TestMeasureOoOCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, _ := workload.ByName("gcc")
	if _, err := MeasureOoOCtx(ctx, s, core.Baseline(), tinyConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCheckpointedSamplingAgrees(t *testing.T) {
	// Continuous and checkpoint-based sampling measure the same workload
	// under the same policy; the CPIs must land in the same ballpark.
	s, _ := workload.ByName("exchange2")
	cfg := tinyConfig()
	cont, err := MeasureOoO(s, core.Baseline(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.UseCheckpoints = true
	cfg.CheckpointStride = 20_000
	ckpt, err := MeasureOoOCheckpointed(s, core.Baseline(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.CPI.Mean < cont.CPI.Mean*0.7 || ckpt.CPI.Mean > cont.CPI.Mean*1.3 {
		t.Errorf("checkpointed CPI %.3f vs continuous %.3f: methodologies disagree",
			ckpt.CPI.Mean, cont.CPI.Mean)
	}
	io, err := MeasureInOrderCheckpointed(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if io.CPI.Mean <= ckpt.CPI.Mean {
		t.Error("in-order must be slower")
	}
}

func TestCheckpointedSweep(t *testing.T) {
	cfg := tinyConfig()
	cfg.UseCheckpoints = true
	sw, err := RunSweep(tinySpecs(t, "xz"), []core.Policy{core.Baseline(), core.FullProtection()}, true, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sw.MeanNormalizedCPI("FullProtection") < 1.0 {
		t.Errorf("full protection normalized CPI = %.2f", sw.MeanNormalizedCPI("FullProtection"))
	}
}
