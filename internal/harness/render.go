package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"nda/internal/cache"
	"nda/internal/ooo"
	"nda/internal/par"
	"nda/internal/stats"
	"nda/internal/workload"
)

// RenderFig7 renders the per-benchmark CPI table normalized to the insecure
// OoO baseline, with 95% confidence intervals — the textual form of Fig. 7.
func RenderFig7(sw *Sweep) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 — CPI normalized to OoO (mean of %d-interval samples, ±95%% CI of raw CPI)\n\n", intervalsIn(sw))
	fmt.Fprintf(&b, "%-12s", "benchmark")
	for _, c := range sw.Configs {
		fmt.Fprintf(&b, " %12s", shorten(c))
	}
	fmt.Fprintln(&b)
	for _, w := range sw.Workloads {
		fmt.Fprintf(&b, "%-12s", w)
		for _, c := range sw.Configs {
			m := sw.Get(c, w)
			if m == nil {
				fmt.Fprintf(&b, " %12s", "-")
				continue
			}
			base := sw.Baseline(w)
			rel := 0.0
			ci := 0.0
			if base != nil && base.CPI.Mean > 0 {
				rel = m.CPI.Mean / base.CPI.Mean
				ci = m.CPI.CI95 / base.CPI.Mean
			}
			fmt.Fprintf(&b, " %7.2f±%-4.2f", rel, ci)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "%-12s", "mean")
	for _, c := range sw.Configs {
		fmt.Fprintf(&b, " %12.2f", sw.MeanNormalizedCPI(c))
	}
	fmt.Fprintln(&b)
	return b.String()
}

func intervalsIn(sw *Sweep) int {
	for _, ws := range sw.Cells {
		for _, m := range ws {
			return m.CPI.N
		}
	}
	return 0
}

func shorten(c string) string {
	r := strings.NewReplacer("Permissive", "Perm", "InvisiSpec", "IS", "Protection", "Prot", "Restricted", "Restr")
	s := r.Replace(c)
	if len(s) > 12 {
		s = s[:12]
	}
	return s
}

// SecurityColumns is the Table 2 security legend per configuration.
var SecurityColumns = map[string]string{
	"OoO":                "none (insecure baseline)",
	"Permissive":         "control-steering (memory); not SSB",
	"Permissive+BR":      "control-steering (memory) incl. SSB",
	"Strict":             "control-steering (memory+GPRs); not SSB",
	"Strict+BR":          "control-steering (memory+GPRs) incl. SSB",
	"RestrictedLoads":    "chosen-code (memory+special regs)",
	"FullProtection":     "all control-steering + chosen-code",
	"InvisiSpec-Spectre": "d-cache control-steering only",
	"InvisiSpec-Future":  "d-cache attacks only",
	InOrderName:          "everything (no speculation)",
}

// RenderTable2 renders the overhead column of Table 2 with the threat-model
// legend.
func RenderTable2(sw *Sweep) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — average overhead vs insecure OoO, and what each policy defeats\n\n")
	fmt.Fprintf(&b, "%-20s %10s   %s\n", "configuration", "overhead", "defeats")
	for _, c := range sw.Configs {
		fmt.Fprintf(&b, "%-20s %+9.1f%%   %s\n", c, sw.Overhead(c), SecurityColumns[c])
	}
	oooN := sw.MeanNormalizedCPI("OoO")
	inN := sw.MeanNormalizedCPI(InOrderName)
	if inN > oooN {
		fmt.Fprintln(&b)
		for _, c := range sw.Configs {
			if c == "OoO" || c == InOrderName {
				continue
			}
			v := sw.MeanNormalizedCPI(c)
			fmt.Fprintf(&b, "%-20s closes %3.0f%% of the In-Order/OoO gap; %.1fx faster than in-order\n",
				c, 100*(inN-v)/(inN-oooN), inN/v)
		}
	}
	return b.String()
}

// RenderTable3 renders the simulated machine configuration.
func RenderTable3(p ooo.Params) string {
	h := cache.DefaultHierarchyParams()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 — simulated machine configuration\n\n")
	fmt.Fprintf(&b, "%-18s %s\n", "Architecture", "custom RISC-style 64-bit ISA at 2.0 GHz (cycle-level model)")
	fmt.Fprintf(&b, "%-18s %d-issue, no SMT, %d LQ, %d SQ, %d ROB entries, %d IQ,\n",
		"Core (OoO)", p.IssueWidth, p.LQSize, p.SQSize, p.ROBSize, p.IQSize)
	fmt.Fprintf(&b, "%-18s %d BTB entries (%d-way), %d RAS entries, gshare 2^%d,\n", "",
		p.BTBEntries, p.BTBWays, p.RASEntries, p.GshareBits)
	fmt.Fprintf(&b, "%-18s %d broadcast ports, %d physical registers\n", "", p.BroadcastPorts, p.PhysRegs)
	fmt.Fprintf(&b, "%-18s single-issue blocking pipeline (TimingSimpleCPU analogue)\n", "Core (in-order)")
	fmt.Fprintf(&b, "%-18s %dkB, %dB line, %d-way SA, %d cycle RT latency\n", "L1-I/L1-D",
		h.L1D.SizeBytes>>10, h.L1D.LineBytes, h.L1D.Ways, h.L1D.HitLatency)
	fmt.Fprintf(&b, "%-18s %dMB, %dB line, %d-way SA, %d cycle RT latency\n", "L2",
		h.L2.SizeBytes>>20, h.L2.LineBytes, h.L2.Ways, h.L2.HitLatency)
	fmt.Fprintf(&b, "%-18s %d cycle (50ns) response latency\n", "DRAM", h.DRAMLatency)
	return b.String()
}

// RenderFig9a renders the cycle breakdown per configuration, with each bar
// scaled by the configuration's normalized CPI (as in the paper, where the
// stacks grow with overhead).
func RenderFig9a(sw *Sweep) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9a — cycle breakdown, normalized to OoO total cycles\n\n")
	fmt.Fprintf(&b, "%-20s %8s %8s %8s %8s %8s\n", "configuration", "commit", "memory", "backend", "frontend", "total")
	for _, c := range sw.Configs {
		if c == InOrderName {
			continue
		}
		scale := sw.MeanNormalizedCPI(c)
		var cf, mf, bf, ff []float64
		for _, w := range sw.Workloads {
			if m := sw.Get(c, w); m != nil {
				cf = append(cf, m.CommitFrac)
				mf = append(mf, m.MemFrac)
				bf = append(bf, m.BackendFrac)
				ff = append(ff, m.FrontendFrac)
			}
		}
		fmt.Fprintf(&b, "%-20s %8.2f %8.2f %8.2f %8.2f %8.2f\n", c,
			stats.Mean(cf)*scale, stats.Mean(mf)*scale, stats.Mean(bf)*scale, stats.Mean(ff)*scale, scale)
	}
	return b.String()
}

// RenderFig9bcd renders MLP, ILP, and dispatch→issue latency aggregates
// (Fig. 9b, 9c, 9d).
func RenderFig9bcd(sw *Sweep) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9b/9c/9d — memory-level parallelism, instruction-level parallelism,\n")
	fmt.Fprintf(&b, "and dispatch→issue latency (geomean MLP/ILP, mean latency over benchmarks)\n\n")
	fmt.Fprintf(&b, "%-20s %8s %8s %14s\n", "configuration", "MLP", "ILP", "disp→issue")
	for _, c := range sw.Configs {
		var mlp, ilp, d2i []float64
		for _, w := range sw.Workloads {
			if m := sw.Get(c, w); m != nil {
				mlp = append(mlp, m.MLP)
				ilp = append(ilp, m.ILP)
				d2i = append(d2i, m.D2I)
			}
		}
		fmt.Fprintf(&b, "%-20s %8.2f %8.2f %11.1f cy\n", c, stats.Geomean(mlp), stats.Geomean(ilp), stats.Mean(d2i))
	}
	return b.String()
}

// Fig9eResult is one point of the NDA logic-latency sensitivity study.
type Fig9eResult struct {
	Policy string
	Delay  int
	CPI    float64
}

// RunFig9e measures CPI sensitivity to extra NDA wake-up latency (0, 1, and
// 2 cycles of delayed broadcast for newly-safe instructions) for the given
// base policy across the benchmark list. The (delay, benchmark) points fan
// out over cfg.Workers goroutines; each point's CPI lands in a slot indexed
// by its tuple, so the results are independent of scheduling.
func RunFig9e(policyName string, delays []int, specNames []string, cfg Config) ([]Fig9eResult, error) {
	return RunFig9eCtx(context.Background(), policyName, delays, specNames, cfg)
}

// RunFig9eCtx is RunFig9e with cancellation (see RunSweepCtx).
func RunFig9eCtx(ctx context.Context, policyName string, delays []int, specNames []string, cfg Config) ([]Fig9eResult, error) {
	specs := make([]workload.Spec, len(specNames))
	for i, name := range specNames {
		s, err := byName(name)
		if err != nil {
			return nil, err
		}
		specs[i] = s
	}
	basePol, err := policyByName(policyName)
	if err != nil {
		return nil, err
	}
	cpis := make([]float64, len(delays)*len(specs))
	err = par.RunCtx(ctx, len(cpis), cfg.workerCount(), func(i int) error {
		pol := basePol
		pol.ExtraBroadcastDelay = delays[i/len(specs)]
		m, err := MeasureOoOCtx(ctx, specs[i%len(specs)], pol, cfg)
		if err != nil {
			return err
		}
		cpis[i] = m.CPI.Mean
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Fig9eResult, len(delays))
	for di, d := range delays {
		out[di] = Fig9eResult{
			Policy: policyName,
			Delay:  d,
			CPI:    stats.Mean(cpis[di*len(specs) : (di+1)*len(specs)]),
		}
	}
	return out, nil
}

// RenderFig9e renders the sensitivity results.
func RenderFig9e(rs []Fig9eResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9e — impact of NDA wake-up logic latency on CPI\n\n")
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].Delay < rs[j].Delay })
	var base float64
	for _, r := range rs {
		if r.Delay == 0 {
			base = r.CPI
		}
	}
	for _, r := range rs {
		delta := 0.0
		if base > 0 {
			delta = (r.CPI/base - 1) * 100
		}
		fmt.Fprintf(&b, "%s, %d-cycle delay: CPI %.3f (%+.1f%%)\n", r.Policy, r.Delay, r.CPI, delta)
	}
	return b.String()
}
