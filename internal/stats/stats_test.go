package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.CI95 != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.Mean != 3.5 || s.CI95 != 0 || s.Stddev != 0 {
		t.Errorf("single-sample summary = %+v", s)
	}
}

func TestSummarizeKnownSample(t *testing.T) {
	// Sample {2,4,4,4,5,5,7,9}: mean 5, sample stddev ~2.138.
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("mean = %v", s.Mean)
	}
	if !approx(s.Stddev, 2.1380899, 1e-6) {
		t.Errorf("stddev = %v", s.Stddev)
	}
	// t(7, 95%) = 2.365; CI = t * s / sqrt(8).
	if want := 2.365 * s.Stddev / math.Sqrt(8); !approx(s.CI95, want, 1e-9) {
		t.Errorf("CI95 = %v, want %v", s.CI95, want)
	}
	if s.String() == "" {
		t.Error("empty string form")
	}
}

func TestSummarizeLargeSampleUsesNormal(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 10)
	}
	s := Summarize(xs)
	if want := 1.96 * s.Stddev / 10; !approx(s.CI95, want, 1e-9) {
		t.Errorf("large-sample CI = %v, want %v", s.CI95, want)
	}
}

func TestSummarizeConstantSample(t *testing.T) {
	s := Summarize([]float64{7, 7, 7, 7})
	if s.Stddev != 0 || s.CI95 != 0 || s.Mean != 7 {
		t.Errorf("constant sample = %+v", s)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean")
	}
}

func TestGeomean(t *testing.T) {
	if Geomean(nil) != 0 {
		t.Error("empty geomean")
	}
	if !approx(Geomean([]float64{2, 8}), 4, 1e-9) {
		t.Errorf("geomean(2,8) = %v", Geomean([]float64{2, 8}))
	}
	// Zero and negative values are skipped.
	if !approx(Geomean([]float64{0, -3, 2, 8}), 4, 1e-9) {
		t.Error("geomean must skip non-positive values")
	}
	if Geomean([]float64{0, -1}) != 0 {
		t.Error("all-skipped geomean must be 0")
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		s := Summarize(xs)
		if len(xs) == 0 {
			return s.Mean == 0
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		// The mean lies within the sample range; CI and stddev are
		// non-negative.
		return s.Mean >= lo-1e-6 && s.Mean <= hi+1e-6 && s.CI95 >= 0 && s.Stddev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if x > 1e-6 && x < 1e12 && !math.IsNaN(x) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		return g >= lo*(1-1e-9) && g <= hi*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
