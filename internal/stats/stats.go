// Package stats provides the small statistical toolkit the evaluation
// harness uses: sample means with 95% confidence intervals (the error bars
// of Fig. 7) and geometric means (the aggregates of Fig. 9).
package stats

import (
	"fmt"
	"math"
)

// tTable95 holds two-sided 95% critical values of Student's t distribution
// for small degrees of freedom; larger samples fall back to the normal 1.96.
var tTable95 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
}

// Summary describes a sample: its mean and the half-width of the 95%
// confidence interval of the mean.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	CI95   float64 // half-width; Mean ± CI95 is the interval
}

// String renders "mean ± ci".
func (s Summary) String() string { return fmt.Sprintf("%.3f ± %.3f", s.Mean, s.CI95) }

// Summarize computes the sample summary. With fewer than two samples the
// interval is zero (no variance estimate).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) < 2 {
		return s
	}
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	df := len(xs) - 1
	t := 1.96
	if df < len(tTable95) {
		t = tTable95[df]
	}
	s.CI95 = t * s.Stddev / math.Sqrt(float64(len(xs)))
	return s
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Geomean returns the geometric mean of positive values; zero or negative
// inputs are skipped (they would be log-domain poison), and an empty or
// fully skipped sample yields 0.
func Geomean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}
