// Package checkpoint captures and restores architectural machine state —
// the role Lapidary's gdb-snapshot-to-gem5-checkpoint pipeline plays in the
// paper's methodology (§6.1). A checkpoint is taken by fast-forwarding the
// functional emulator (cheap), and any timing core can be constructed from
// it, so SMARTS measurement intervals can be distributed across a long
// execution without paying detailed-simulation cost between them.
//
// Checkpoints serialize to a compact binary format (magic, architectural
// registers, MSRs, then the populated memory pages), so sampled program
// phases can be stored and re-simulated later.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"io"

	"nda/internal/core"
	"nda/internal/emu"
	"nda/internal/inorder"
	"nda/internal/isa"
	"nda/internal/mem"
	"nda/internal/ooo"
)

// Checkpoint is a complete architectural snapshot.
type Checkpoint struct {
	PC      uint64
	Retired uint64
	Regs    [isa.NumGPR]uint64
	MSR     [isa.NumMSR]uint64
	Mem     *mem.Memory
}

// Capture snapshots a running emulator (deep-copying its memory).
func Capture(m *emu.Machine) *Checkpoint {
	c := &Checkpoint{
		PC:      m.PC,
		Retired: m.Retired,
		Regs:    m.Regs,
		MSR:     m.MSR,
		Mem:     m.Mem.Clone(),
	}
	return c
}

// Take fast-forwards a fresh functional execution of prog by skipInsts
// instructions and captures the state there. It fails if the program halts
// or errors before the target.
func Take(prog *isa.Program, skipInsts uint64) (*Checkpoint, error) {
	m := emu.New(prog)
	if err := m.RunN(skipInsts); err != nil {
		return nil, fmt.Errorf("checkpoint: fast-forward: %w", err)
	}
	if m.Halted {
		return nil, fmt.Errorf("checkpoint: program halted after %d instructions, before the %d-instruction target", m.Retired, skipInsts)
	}
	return Capture(m), nil
}

// TakeSeries fast-forwards once and captures n checkpoints at the given
// stride, amortizing the functional execution (the SMARTS sampling points).
func TakeSeries(prog *isa.Program, first, stride uint64, n int) ([]*Checkpoint, error) {
	m := emu.New(prog)
	if err := m.RunN(first); err != nil {
		return nil, fmt.Errorf("checkpoint: fast-forward: %w", err)
	}
	var out []*Checkpoint
	for i := 0; i < n; i++ {
		if m.Halted {
			return nil, fmt.Errorf("checkpoint: program halted after %d instructions (wanted %d samples)", m.Retired, n)
		}
		out = append(out, Capture(m))
		if i < n-1 {
			if err := m.RunN(stride); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Emu builds a functional machine resuming from the checkpoint. The
// checkpoint's memory is cloned, so the checkpoint stays reusable.
func (c *Checkpoint) Emu(prog *isa.Program) *emu.Machine {
	m := emu.NewWithMemory(prog, c.Mem.Clone())
	m.PC = c.PC
	m.Retired = c.Retired
	m.Regs = c.Regs
	m.MSR = c.MSR
	return m
}

// Clone deep-copies the checkpoint.
func (c *Checkpoint) Clone() *Checkpoint {
	out := *c
	out.Mem = c.Mem.Clone()
	return &out
}

// Serialization format:
//
//	magic "NDACKPT1"
//	u64 pc, u64 retired
//	32 x u64 regs, NumMSR x u64 msrs
//	u64 nKernelPages, then page numbers
//	u64 nPages, then (u64 pageNum, PageSize bytes) each

var magic = [8]byte{'N', 'D', 'A', 'C', 'K', 'P', 'T', '1'}

// Save writes the checkpoint to w.
func (c *Checkpoint) Save(w io.Writer) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	write := func(vs ...uint64) error {
		for _, v := range vs {
			if err := binary.Write(w, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write(c.PC, c.Retired); err != nil {
		return err
	}
	if err := write(c.Regs[:]...); err != nil {
		return err
	}
	if err := write(c.MSR[:]...); err != nil {
		return err
	}
	kp := c.Mem.KernelPages()
	if err := write(uint64(len(kp))); err != nil {
		return err
	}
	if err := write(kp...); err != nil {
		return err
	}
	pages := c.Mem.PageNums()
	if err := write(uint64(len(pages))); err != nil {
		return err
	}
	for _, pn := range pages {
		if err := write(pn); err != nil {
			return err
		}
		if _, err := w.Write(c.Mem.PageData(pn)); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a checkpoint written by Save.
func Load(r io.Reader) (*Checkpoint, error) {
	var m [8]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, err
	}
	if m != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", m[:])
	}
	read := func(vs ...*uint64) error {
		for _, v := range vs {
			if err := binary.Read(r, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	c := &Checkpoint{Mem: mem.New()}
	if err := read(&c.PC, &c.Retired); err != nil {
		return nil, err
	}
	for i := range c.Regs {
		if err := read(&c.Regs[i]); err != nil {
			return nil, err
		}
	}
	for i := range c.MSR {
		if err := read(&c.MSR[i]); err != nil {
			return nil, err
		}
	}
	var nk uint64
	if err := read(&nk); err != nil {
		return nil, err
	}
	for i := uint64(0); i < nk; i++ {
		var pn uint64
		if err := read(&pn); err != nil {
			return nil, err
		}
		c.Mem.SetKernel(pn<<mem.PageBits, mem.PageSize)
	}
	var np uint64
	if err := read(&np); err != nil {
		return nil, err
	}
	buf := make([]byte, mem.PageSize)
	for i := uint64(0); i < np; i++ {
		var pn uint64
		if err := read(&pn); err != nil {
			return nil, err
		}
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		c.Mem.SetPageData(pn, buf)
	}
	return c, nil
}

// OoO builds an out-of-order core resuming from the checkpoint under the
// given policy (memory cloned; the checkpoint stays reusable).
func (c *Checkpoint) OoO(prog *isa.Program, pol core.Policy, p ooo.Params) *ooo.Core {
	return ooo.NewFromState(prog, c.Mem.Clone(), c.Regs, c.MSR, c.PC, pol, p)
}

// InOrder builds an in-order core resuming from the checkpoint.
func (c *Checkpoint) InOrder(prog *isa.Program, p inorder.Params) *inorder.Machine {
	m := inorder.New(prog, c.Mem.Clone(), p)
	e := m.Emu()
	e.PC = c.PC
	e.Retired = 0
	e.Regs = c.Regs
	e.MSR = c.MSR
	return m
}
