package checkpoint

import (
	"bytes"
	"fmt"
	"testing"

	"nda/internal/core"
	"nda/internal/emu"
	"nda/internal/inorder"
	"nda/internal/isa"
	"nda/internal/ooo"
	"nda/internal/workload"
)

// runToHalt finishes a program on the emulator and returns final state.
func runToHalt(t *testing.T, m *emu.Machine) *emu.Machine {
	t.Helper()
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCaptureResumeEquivalence(t *testing.T) {
	// Uninterrupted execution and checkpoint-then-resume must reach
	// identical final state.
	for seed := int64(1); seed <= 5; seed++ {
		prog := workload.Random(seed, 200)
		full := runToHalt(t, emu.New(prog))

		cp, err := Take(prog, full.Retired/2)
		if err != nil {
			t.Fatal(err)
		}
		resumed := runToHalt(t, cp.Emu(prog))

		if resumed.Retired != full.Retired {
			t.Errorf("seed %d: retired %d, want %d", seed, resumed.Retired, full.Retired)
		}
		if resumed.Regs != full.Regs {
			t.Errorf("seed %d: register state diverged", seed)
		}
		for _, pn := range full.Mem.PageNums() {
			want := full.Mem.PageData(pn)
			got := resumed.Mem.PageData(pn)
			if !bytes.Equal(want, got) {
				t.Errorf("seed %d: page %#x diverged", seed, pn)
				break
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	prog := workload.Random(77, 150)
	cp, err := Take(prog, 300)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cp2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.PC != cp.PC || cp2.Retired != cp.Retired || cp2.Regs != cp.Regs || cp2.MSR != cp.MSR {
		t.Error("scalar state lost in round trip")
	}
	for _, pn := range cp.Mem.PageNums() {
		if !bytes.Equal(cp.Mem.PageData(pn), cp2.Mem.PageData(pn)) {
			t.Fatalf("page %#x lost in round trip", pn)
		}
	}
	// Both resume to the same final state.
	a := runToHalt(t, cp.Emu(prog))
	b := runToHalt(t, cp2.Emu(prog))
	if a.Regs != b.Regs || a.Retired != b.Retired {
		t.Error("loaded checkpoint resumes differently")
	}
}

func TestSaveLoadKernelPages(t *testing.T) {
	prog := workload.Random(3, 50)
	m := emu.New(prog)
	m.Mem.SetKernel(0x77000, 16)
	m.Mem.Write(0x77000, 8, 42)
	cp := Capture(m)
	var buf bytes.Buffer
	if err := cp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cp2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !cp2.Mem.KernelOnly(0x77000) {
		t.Error("kernel protection lost")
	}
	if cp2.Mem.Read(0x77000, 8) != 42 {
		t.Error("kernel data lost")
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("NOTACKPT-----"))); err == nil {
		t.Error("bad magic must be rejected")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input must be rejected")
	}
}

func TestTakeRejectsHaltingPrograms(t *testing.T) {
	prog := workload.Random(5, 10)
	full := runToHalt(t, emu.New(prog))
	if _, err := Take(prog, full.Retired+100); err == nil {
		t.Error("fast-forward past the program's end must fail")
	}
}

func TestTakeSeries(t *testing.T) {
	prog := workload.Random(11, 400)
	cps, err := TakeSeries(prog, 100, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 4 {
		t.Fatalf("got %d checkpoints", len(cps))
	}
	for i := 1; i < len(cps); i++ {
		if cps[i].Retired != cps[i-1].Retired+200 {
			t.Errorf("stride wrong: %d -> %d", cps[i-1].Retired, cps[i].Retired)
		}
	}
	// Each point must independently resume to the same final state.
	want := runToHalt(t, emu.New(prog)).Regs
	for i, cp := range cps {
		got := runToHalt(t, cp.Emu(prog)).Regs
		if got != want {
			t.Errorf("checkpoint %d resumes to different state", i)
		}
	}
}

func TestOoOFromCheckpointMatchesGolden(t *testing.T) {
	// Run the first half functionally, the second half on the OoO core
	// under every policy: the final state must match an uninterrupted
	// functional run.
	prog := workload.Random(21, 250)
	full := runToHalt(t, emu.New(prog))
	cp, err := Take(prog, full.Retired/2)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range core.All() {
		t.Run(pol.Name, func(t *testing.T) {
			c := cp.OoO(prog, pol, ooo.DefaultParams())
			if err := c.Run(20_000_000); err != nil {
				t.Fatal(err)
			}
			if got := cp.Retired + c.Retired(); got != full.Retired {
				t.Errorf("retired %d, want %d", got, full.Retired)
			}
			for i := 0; i < isa.NumGPR; i++ {
				if c.Reg(isa.Reg(i)) != full.Regs[i] {
					t.Errorf("x%d = %#x, want %#x", i, c.Reg(isa.Reg(i)), full.Regs[i])
				}
			}
		})
	}
}

func TestInOrderFromCheckpointMatchesGolden(t *testing.T) {
	prog := workload.Random(22, 250)
	full := runToHalt(t, emu.New(prog))
	cp, err := Take(prog, full.Retired/3)
	if err != nil {
		t.Fatal(err)
	}
	m := cp.InOrder(prog, inorder.DefaultParams())
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Emu().Regs != full.Regs {
		t.Error("in-order resume diverged")
	}
}

func TestCheckpointReusable(t *testing.T) {
	// Building a core from a checkpoint must not mutate it.
	prog := workload.Random(33, 200)
	cp, err := Take(prog, 300)
	if err != nil {
		t.Fatal(err)
	}
	before := cp.Mem.Read(0x100000, 8)
	c := cp.OoO(prog, core.Baseline(), ooo.DefaultParams())
	if err := c.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if cp.Mem.Read(0x100000, 8) != before {
		t.Error("checkpoint memory mutated by a run")
	}
	// A second core from the same checkpoint reaches the same state.
	c2 := cp.OoO(prog, core.Strict(), ooo.DefaultParams())
	if err := c2.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < isa.NumGPR; i++ {
		if c.Reg(isa.Reg(i)) != c2.Reg(isa.Reg(i)) {
			t.Fatalf("x%d differs across reuses", i)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	prog := workload.Random(44, 100)
	cp, err := Take(prog, 100)
	if err != nil {
		t.Fatal(err)
	}
	cl := cp.Clone()
	cl.Mem.Write(0x100000, 8, 999)
	if cp.Mem.Read(0x100000, 8) == 999 {
		t.Error("clone shares memory with the original")
	}
}

func ExampleTake() {
	prog := workload.Random(1, 100)
	cp, _ := Take(prog, 200)
	fmt.Println(cp.Retired)
	// Output: 200
}
