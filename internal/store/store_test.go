package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func open(t *testing.T, dir string, max int64) *Store {
	t.Helper()
	s, err := Open(dir, Options{MaxBytes: max})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestPutGetRoundtrip: stored values come back bit-exact, misses report
// cleanly, and both show up on the counters.
func TestPutGetRoundtrip(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	val := []byte(`{"cycles":123,"cpi":1.5}`)
	s.Put("sweep-cell:abc", val)
	got, ok := s.Get("sweep-cell:abc")
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := s.Get("sweep-cell:other"); ok {
		t.Fatal("missing key reported a hit")
	}
	c := s.Counters()
	if c.Entries != 1 || c.Hits != 1 || c.Misses != 1 || c.Puts != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if c.Bytes <= int64(len(val)) {
		t.Fatalf("Bytes = %d, want > value size (header + key included)", c.Bytes)
	}
}

// TestPersistsAcrossOpen: the point of the package — a second Open over
// the same directory serves everything the first one stored, without the
// first having been closed (kill -9 never calls Close).
func TestPersistsAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir, 0)
	for i := 0; i < 10; i++ {
		s1.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("value-%d", i)))
	}
	// No Close: simulate an abrupt death after the Puts landed.
	s2 := open(t, dir, 0)
	if s2.Len() != 10 {
		t.Fatalf("reopened store holds %d entries, want 10", s2.Len())
	}
	for i := 0; i < 10; i++ {
		got, ok := s2.Get(fmt.Sprintf("k%d", i))
		if !ok || string(got) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("k%d after reopen = %q, %v", i, got, ok)
		}
	}
}

// TestPutIdempotent: re-putting an existing key only touches recency; the
// byte accounting and file set do not change.
func TestPutIdempotent(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	s.Put("k", []byte("v"))
	before := s.Counters()
	s.Put("k", []byte("v"))
	after := s.Counters()
	if after.Puts != before.Puts || after.Bytes != before.Bytes || after.Entries != 1 {
		t.Fatalf("re-put changed accounting: %+v -> %+v", before, after)
	}
}

// TestByteBudgetGC: eviction is sized in bytes and orders by recency — a
// Get shields an old entry, the untouched one goes first.
func TestByteBudgetGC(t *testing.T) {
	// Each entry is headerLen + len(key) + len(val); keys "a".."d" are 1
	// byte, values 100 bytes, so entries are 121 bytes. Budget three.
	const budget = 3*121 + 10
	s := open(t, t.TempDir(), budget)
	val := bytes.Repeat([]byte("x"), 100)
	s.Put("a", val)
	s.Put("b", val)
	s.Put("c", val)
	if c := s.Counters(); c.Evictions != 0 || c.Entries != 3 {
		t.Fatalf("under-budget store evicted: %+v", c)
	}
	if _, ok := s.Get("a"); !ok { // touch: "b" is now least recent
		t.Fatal("a missing before budget pressure")
	}
	s.Put("d", val)
	c := s.Counters()
	if c.Entries != 3 || c.Evictions != 1 || c.EvictedBytes != 121 {
		t.Fatalf("budget eviction accounting: %+v", c)
	}
	if c.Bytes > budget {
		t.Fatalf("Bytes = %d over budget %d", c.Bytes, budget)
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("least-recently-used entry survived the byte budget")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("recently-used entry %q was evicted", k)
		}
	}
}

// TestOversizedValueNotWedged: a value larger than the whole budget must
// not permanently pin the store over budget.
func TestOversizedValueNotWedged(t *testing.T) {
	s := open(t, t.TempDir(), 64)
	s.Put("huge", bytes.Repeat([]byte("x"), 1024))
	if c := s.Counters(); c.Bytes > 64 || c.Entries != 0 {
		t.Fatalf("oversized value stuck in the store: %+v", c)
	}
}

// TestRecencySurvivesReopen: the access log carries LRU order across a
// restart — after reopening, budget pressure still evicts the entry that
// was least recently used before the restart.
func TestRecencySurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir, 0)
	val := bytes.Repeat([]byte("x"), 100)
	s1.Put("a", val)
	s1.Put("b", val)
	s1.Put("c", val)
	if _, ok := s1.Get("a"); !ok { // "b" is now oldest
		t.Fatal("a missing")
	}

	s2 := open(t, dir, 3*121+10)
	s2.Put("d", val)
	if _, ok := s2.Get("b"); ok {
		t.Fatal("pre-restart LRU order lost: b survived, so something fresher was evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := s2.Get(k); !ok {
			t.Fatalf("%q evicted despite being fresher than b", k)
		}
	}
}

// TestOpenEnforcesBudget: a store reopened under a smaller budget than
// its contents sheds the excess immediately.
func TestOpenEnforcesBudget(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir, 0)
	val := bytes.Repeat([]byte("x"), 100)
	for _, k := range []string{"a", "b", "c", "d"} {
		s1.Put(k, val)
	}
	s2 := open(t, dir, 2*121+10)
	if c := s2.Counters(); c.Bytes > 2*121+10 || c.Entries != 2 {
		t.Fatalf("reopen did not enforce the byte budget: %+v", c)
	}
}

// TestVersionMismatchDropped: an entry written by a different format
// version is deleted on Open, not served.
func TestVersionMismatchDropped(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir, 0)
	s1.Put("k", []byte("old-format-value"))
	s1.Close()

	// Rewrite the entry with a bumped version field; everything else,
	// checksum included, stays valid.
	name := entryName("k")
	path := filepath.Join(dir, name)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[4]++ // low byte of the little-endian version
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, 0)
	if _, ok := s2.Get("k"); ok {
		t.Fatal("entry from another format version was served")
	}
	if c := s2.Counters(); c.DroppedOnOpen != 1 {
		t.Fatalf("DroppedOnOpen = %d, want 1", c.DroppedOnOpen)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("stale-version entry file not deleted")
	}
}

// TestKeyPrefixCollision: a file whose header key does not match the
// requested key (hash-prefix collision or tampering) reads as a miss.
func TestKeyPrefixCollision(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir, 0)
	s1.Put("honest", []byte("v"))
	s1.Close()
	// Rename the entry file to the address of a different key.
	if err := os.Rename(filepath.Join(dir, entryName("honest")), filepath.Join(dir, entryName("impostor"))); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, 0)
	if _, ok := s2.Get("impostor"); ok {
		t.Fatal("entry served under a key its header does not carry")
	}
}

// TestLogCompaction: heavy touching keeps the access log bounded.
func TestLogCompaction(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	s.Put("a", []byte("v"))
	s.Put("b", []byte("v"))
	for i := 0; i < 2000; i++ {
		s.Get("a")
		s.Get("b")
	}
	info, err := os.Stat(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() > 16<<10 {
		t.Fatalf("access log grew to %d bytes over 4000 touches; compaction broken", info.Size())
	}
	// Order is still correct after compaction cycles.
	s.Get("a")
	s2 := open(t, dir, int64(2*(headerLen+1+1))+1)
	s2.Put("c", []byte("v"))
	if _, ok := s2.Get("b"); ok {
		t.Fatal("compacted log lost recency order")
	}
}
