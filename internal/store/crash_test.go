package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// These tests inject the crash artifacts a kill -9 (or a full disk, or a
// stray editor) can leave in a store directory and prove Open's recovery
// contract: bad entries are dropped and recomputed, never served; good
// entries are untouched.

// seedStore fills dir with n entries and returns their keys and values.
// The store is deliberately never closed — a crashed process would not
// have closed it either.
func seedStore(t *testing.T, dir string, n int) (keys []string, vals [][]byte) {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("cell:%04d", i)
		v := bytes.Repeat([]byte{byte('a' + i%26)}, 64+i)
		s.Put(k, v)
		keys = append(keys, k)
		vals = append(vals, v)
	}
	return keys, vals
}

// TestTruncatedEntryRecovered: a torn value file (half a write that
// somehow bypassed the atomic rename — e.g. filesystem corruption) is
// dropped on Open; every other entry still serves.
func TestTruncatedEntryRecovered(t *testing.T) {
	dir := t.TempDir()
	keys, vals := seedStore(t, dir, 5)

	victim := filepath.Join(dir, entryName(keys[2]))
	b, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if c := s.Counters(); c.DroppedOnOpen != 1 || c.Entries != 4 {
		t.Fatalf("recovery counters = %+v, want 1 dropped / 4 live", c)
	}
	if _, ok := s.Get(keys[2]); ok {
		t.Fatal("torn entry was served")
	}
	for i, k := range keys {
		if i == 2 {
			continue
		}
		got, ok := s.Get(k)
		if !ok || !bytes.Equal(got, vals[i]) {
			t.Fatalf("intact entry %q lost in recovery: %q, %v", k, got, ok)
		}
	}
	// The dropped slot recomputes: a fresh Put serves again.
	s.Put(keys[2], vals[2])
	if got, ok := s.Get(keys[2]); !ok || !bytes.Equal(got, vals[2]) {
		t.Fatal("recomputed entry did not store")
	}
}

// TestCorruptedValueRecovered: a bit-flip in the value body fails the CRC
// and the entry is dropped, not served corrupt.
func TestCorruptedValueRecovered(t *testing.T) {
	dir := t.TempDir()
	keys, _ := seedStore(t, dir, 3)
	victim := filepath.Join(dir, entryName(keys[0]))
	b, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(victim, b, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok := s.Get(keys[0]); ok {
		t.Fatal("checksum-failing entry was served")
	}
	if c := s.Counters(); c.DroppedOnOpen != 1 {
		t.Fatalf("DroppedOnOpen = %d, want 1", c.DroppedOnOpen)
	}
}

// TestDanglingTempFilesSwept: temp files from writes interrupted by a
// crash are deleted on Open and never surface as entries.
func TestDanglingTempFilesSwept(t *testing.T) {
	dir := t.TempDir()
	keys, _ := seedStore(t, dir, 2)
	for _, name := range []string{tmpPrefix + "123456", tmpPrefix + "crashed", logTmpName} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("half-written garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 2 {
		t.Fatalf("store holds %d entries, want the 2 real ones", s.Len())
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if de.Name() != logName && de.Name() != entryName(keys[0]) && de.Name() != entryName(keys[1]) {
			t.Errorf("unexpected file survived recovery: %s", de.Name())
		}
	}
}

// TestTornAccessLogTolerated: a log whose final line was cut mid-write
// still replays its intact prefix; the store opens and serves everything.
func TestTornAccessLogTolerated(t *testing.T) {
	dir := t.TempDir()
	keys, _ := seedStore(t, dir, 3)
	logPath := filepath.Join(dir, logName)
	b, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, b[:len(b)-3], 0o644); err != nil { // cut into the last line
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, k := range keys {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("entry %q lost to a torn access log", k)
		}
	}
}

// TestGarbageEntryFileDropped: an entry-suffixed file that was never ours
// (bad magic) is removed, not trusted.
func TestGarbageEntryFileDropped(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 1)
	alien := filepath.Join(dir, "deadbeefdeadbeefdeadbeefdeadbeef"+entrySuffix)
	if err := os.WriteFile(alien, []byte("not an NDST entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 1 {
		t.Fatalf("alien file indexed: %d entries", s.Len())
	}
	if _, err := os.Stat(alien); !os.IsNotExist(err) {
		t.Fatal("alien entry file not removed")
	}
}
